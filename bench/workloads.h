#ifndef DATASPREAD_BENCH_WORKLOADS_H_
#define DATASPREAD_BENCH_WORKLOADS_H_

#include <cstdint>
#include <string>

#include "core/dataspread.h"

namespace dataspread::bench {

/// Deterministic synthetic stand-in for the demo's IMDB-style data
/// (MOVIES, MOVIES2ACTORS, ACTORS — see DESIGN.md §2 substitution table).
/// `movies` rows, `actors` ≈ movies/2, and ~3 cast links per movie.
void LoadMovieWorkload(Database* db, size_t movies, uint32_t seed = 42);

/// Populates `table_name` with `rows` of (id INT PRIMARY KEY, v TEXT,
/// amount REAL) through the catalog (fast path for large tables).
void LoadWideTable(Database* db, const std::string& table_name, size_t rows,
                   uint32_t seed = 7);

/// Fills a sheet rectangle with typed data: col 0 ids, col 1 text, others
/// numeric. With `header`, row `top` gets column names id/name/v1/v2/...
void FillSheetTable(Sheet* sheet, int64_t top, int64_t left, int64_t rows,
                    int64_t cols, bool header, uint32_t seed = 3);

/// Builds a chain of formulas B[i] = B[i-1] + A[i] of the given length
/// starting at (0, 1); column A holds literals.
void BuildFormulaChain(DataSpread* ds, Sheet* sheet, int64_t length);

}  // namespace dataspread::bench

#endif  // DATASPREAD_BENCH_WORKLOADS_H_
