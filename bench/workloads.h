#ifndef DATASPREAD_BENCH_WORKLOADS_H_
#define DATASPREAD_BENCH_WORKLOADS_H_

#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/dataspread.h"

namespace dataspread::bench {

/// Buffer-pool policy for bench runs, from the environment:
///   DS_MAX_RESIDENT_PAGES — frame cap; when set it overrides `default_cap`
///                           entirely (an explicit 0 forces unbounded),
///   DS_SPILL_DIR          — directory for named spill files (unset =
///                           anonymous temp files, which is always clean).
/// Every call yields a distinct spill path, so the pagers of concurrently
/// loaded tables never collide on one file.
storage::PagerConfig PagerConfigFromEnv(size_t default_cap = 0);

/// Execution-pipeline batch size for bench runs: DS_EXEC_BATCH overrides
/// `default_size` (0 keeps the engine default, kDefaultExecBatchSize). The
/// shared knob every exec bench threads into DatabaseOptions.exec.
size_t ExecBatchSizeFromEnv(size_t default_size = 0);

/// Morsel-parallel worker count for bench runs: DS_EXEC_THREADS overrides
/// `default_threads` (0 keeps the serial pipeline). Mirrors DS_EXEC_BATCH —
/// the knob the serial-vs-parallel A/B families thread into
/// DatabaseOptions.exec.num_threads.
size_t ExecThreadsFromEnv(size_t default_threads = 0);

/// Appends one JSON object line to `BENCH_<bench>.json` under
/// DS_BENCH_JSON_DIR (default: current directory): the per-run trajectory
/// record (fault/eviction/spill counters, timings) that accumulates across
/// PRs. Failures to open the file are silently ignored — recording must
/// never break a bench run.
void AppendBenchJsonLine(
    const std::string& bench, const std::string& run,
    const std::vector<std::pair<std::string, double>>& fields);

/// Fraction of slot accesses (reads + writes) served without a demand page
/// fault between two PagerStats snapshots — the buffer-pool hit rate of the
/// measured window. 1.0 when the window had no slot accesses.
double HitRate(const storage::PagerStats& before,
               const storage::PagerStats& after);

/// The shared tail of every pager-reporting bench: sets the physical
/// buffer-pool counters (faults / readaheads / evictions / spill_bytes) on
/// `state` and appends the JSON trajectory line carrying them plus
/// `iterations`, the applied pool cap, the measured window's `hit_rate`
/// (computed against the `before` stats snapshot the caller took at the top
/// of its measured op), and the bench-specific `fields` (dirty_blocks,
/// pages_read, ... — already set as state counters by the caller).
void ReportPoolCountersAndJson(
    benchmark::State& state, storage::Pager& pager, const std::string& bench,
    const std::string& run, const storage::PagerStats& before,
    std::vector<std::pair<std::string, double>> fields);

/// Deterministic synthetic stand-in for the demo's IMDB-style data
/// (MOVIES, MOVIES2ACTORS, ACTORS — see DESIGN.md §2 substitution table).
/// `movies` rows, `actors` ≈ movies/2, and ~3 cast links per movie.
void LoadMovieWorkload(Database* db, size_t movies, uint32_t seed = 42);

/// Populates `table_name` with `rows` of (id INT PRIMARY KEY, v TEXT,
/// amount REAL) through the catalog (fast path for large tables).
void LoadWideTable(Database* db, const std::string& table_name, size_t rows,
                   uint32_t seed = 7);

/// Fills a sheet rectangle with typed data: col 0 ids, col 1 text, others
/// numeric. With `header`, row `top` gets column names id/name/v1/v2/...
void FillSheetTable(Sheet* sheet, int64_t top, int64_t left, int64_t rows,
                    int64_t cols, bool header, uint32_t seed = 3);

/// Builds a chain of formulas B[i] = B[i-1] + A[i] of the given length
/// starting at (0, 1); column A holds literals.
void BuildFormulaChain(DataSpread* ds, Sheet* sheet, int64_t length);

}  // namespace dataspread::bench

#endif  // DATASPREAD_BENCH_WORKLOADS_H_
