// The workload the paper's presentational storage argument is really about:
// a user scrolls through a big table (sequential full scan) while the
// application keeps touching a small hot set (point lookups into the rows
// backing the visible pane, indexes, headers). Under the PR 2 clock-only
// policy a scan through a small pool flushes the hot set over and over; the
// scan-resistant ring (DESIGN.md §5a "Scan resistance & cursors") routes the
// scan's pages through a dedicated FIFO so hot-set faults stay flat.
//
// Each benchmark interleaves chunked GetRows scans with batches of hot-set
// point lookups behind a 64-frame pool and reports
//   hot_faults  — demand faults incurred by the point-lookup batches alone
//                 (the number the eviction policy is judged on),
//   faults / readaheads / hit_rate — the physical traffic of the whole run.
// The *_Clock variants disable scan resistance + readahead (the PR 2
// baseline policy) so every BENCH_mixed_workload.json snapshot carries its
// own A/B; ci/check.sh gates on the scan-resistant hot_faults budget and on
// the >= 2x policy win.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <random>
#include <vector>

#include "storage/table_storage.h"
#include "workloads.h"

namespace dataspread {
namespace {

using bench::PagerConfigFromEnv;

constexpr size_t kCols = 8;
constexpr size_t kRowsPerPage =
    storage::Pager::kSlotsPerPage / kCols;  // 32 row-major tuples per page
constexpr size_t kScanChunkRows = 1024;
constexpr size_t kHotPages = 24;  // hot set: fits the pool beside the ring
constexpr size_t kHotRows = kHotPages * kRowsPerPage;
constexpr size_t kLookupsPerChunk = 64;

std::unique_ptr<TableStorage> MakeLoaded(StorageModel model, size_t rows,
                                         size_t pool_cap,
                                         bool scan_resistant) {
  storage::PagerConfig config = PagerConfigFromEnv(pool_cap);
  config.scan_resistant = scan_resistant;
  config.readahead = scan_resistant;
  auto s = CreateStorage(model, kCols, nullptr, config);
  s->pager().set_accounting_enabled(false);
  Row r(kCols);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t c = 0; c < kCols; ++c) {
      r[c] = Value::Int(static_cast<int64_t>(i * kCols + c));
    }
    (void)s->AppendRow(r);
  }
  return s;
}

struct MixedResult {
  int64_t checksum = 0;
  uint64_t hot_faults = 0;  // demand faults during point-lookup batches
};

/// One pass: chunked full scan, a batch of hot point lookups after every
/// chunk. The hot block sits in the middle of the table so the scan streams
/// straight through it.
MixedResult RunMixedPass(TableStorage& s, size_t rows, std::mt19937& rng) {
  const size_t hot_start = (rows / 2 / kRowsPerPage) * kRowsPerPage;
  // stats() returns a snapshot by value (it merges backend counters), so
  // the fault delta brackets each lookup batch with two snapshots.
  MixedResult result;
  for (size_t i = 0; i < rows; i += kScanChunkRows) {
    int64_t chunk_sum = 0;
    (void)s.VisitRows(i, std::min(kScanChunkRows, rows - i),
                      [&chunk_sum](size_t, const Value* values) {
                        chunk_sum += values[0].int_value();
                      });
    result.checksum += chunk_sum;
    uint64_t faults_before = s.pager().stats().faults;
    for (size_t k = 0; k < kLookupsPerChunk; ++k) {
      size_t row = hot_start + rng() % kHotRows;
      result.checksum += s.Get(row, rng() % kCols).ValueOrDie().int_value();
    }
    result.hot_faults += s.pager().stats().faults - faults_before;
  }
  return result;
}

void RunMixed(benchmark::State& state, StorageModel model,
              bool scan_resistant) {
  size_t rows = static_cast<size_t>(state.range(0));
  size_t pool = static_cast<size_t>(state.range(1));
  auto s = MakeLoaded(model, rows, pool, scan_resistant);
  storage::Pager& pager = s->pager();
  std::mt19937 rng(29);
  MixedResult last;
  for (auto _ : state) {
    last = RunMixedPass(*s, rows, rng);
    benchmark::DoNotOptimize(last.checksum);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(rows));
  state.counters["hot_faults"] = static_cast<double>(last.hot_faults);

  // Measured pass outside the timing loop, accounting on, for the JSON line.
  pager.set_accounting_enabled(true);
  pager.BeginEpoch();
  storage::PagerStats before = pager.stats();
  auto pass_start = std::chrono::steady_clock::now();
  MixedResult measured = RunMixedPass(*s, rows, rng);
  state.counters["pass_ms"] =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - pass_start)
          .count();
  state.counters["hot_faults"] = static_cast<double>(measured.hot_faults);
  state.counters["pages_read"] = static_cast<double>(pager.EpochPagesRead());
  const char* policy = scan_resistant ? "scanres" : "clock";
  bench::ReportPoolCountersAndJson(
      state, pager, "mixed_workload",
      "MixedScanPoint/" + std::string(StorageModelName(model)) + "/" +
          std::to_string(rows) + "/pool" +
          std::to_string(pager.max_resident_pages()) + "/" + policy,
      before,
      {{"hot_faults", state.counters["hot_faults"]},
       {"pages_read", state.counters["pages_read"]},
       {"hot_pages", static_cast<double>(kHotPages)},
       {"pass_ms", state.counters["pass_ms"]}});
  state.SetLabel(std::string(StorageModelName(model)) + ", pool=" +
                 std::to_string(pager.max_resident_pages()) + ", " + policy);
}

void BM_Mixed_ScanWithHotLookups_Row_Clock(benchmark::State& state) {
  RunMixed(state, StorageModel::kRow, /*scan_resistant=*/false);
}
void BM_Mixed_ScanWithHotLookups_Row_ScanResistant(benchmark::State& state) {
  RunMixed(state, StorageModel::kRow, /*scan_resistant=*/true);
}
void BM_Mixed_ScanWithHotLookups_Hybrid_Clock(benchmark::State& state) {
  RunMixed(state, StorageModel::kHybrid, /*scan_resistant=*/false);
}
void BM_Mixed_ScanWithHotLookups_Hybrid_ScanResistant(
    benchmark::State& state) {
  RunMixed(state, StorageModel::kHybrid, /*scan_resistant=*/true);
}
BENCHMARK(BM_Mixed_ScanWithHotLookups_Row_Clock)
    ->Args({200000, 64})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Mixed_ScanWithHotLookups_Row_ScanResistant)
    ->Args({200000, 64})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Mixed_ScanWithHotLookups_Hybrid_Clock)
    ->Args({200000, 64})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Mixed_ScanWithHotLookups_Hybrid_ScanResistant)
    ->Args({200000, 64})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dataspread
