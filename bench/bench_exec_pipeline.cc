// Execution-pipeline A/B: the vectorized batch-at-a-time pipeline against
// the row-at-a-time Volcano baseline and the morsel-parallel leaf, over
// identical plans and data. Series: scan→filter→aggregate (row vs batch vs
// parallel at 1/2/4 threads) and the Figure-2a join shape at 1k/10k/100k
// rows, unbounded and bounded (64-frame) pools. The recorded op_ms of the
// "/row/", "/batch/" and "/parN/" runs back the ci/check.sh exec perf gates
// (batch ≥2x over row; parallel ≥1.8x over batch at 4 threads on ≥4 cores;
// par1 within 10% of batch).
#include <benchmark/benchmark.h>

#include <chrono>
#include <string>

#include "workloads.h"

namespace dataspread::bench {
namespace {

/// One timed evaluation of `query` after the benchmark loop, bracketed with
/// pager epoch + stats snapshots, reported as op_ms / rows_per_s (throughput
/// in *input* rows of the driving relation).
void ReportTimedQuery(benchmark::State& state, Database& db,
                      const std::string& bench, const std::string& run,
                      const std::string& query, size_t input_rows) {
  storage::Pager& pager = db.pager();
  pager.BeginEpoch();
  storage::PagerStats before = pager.stats();
  auto t0 = std::chrono::steady_clock::now();
  auto rs = db.Execute(query);
  auto t1 = std::chrono::steady_clock::now();
  if (!rs.ok()) {
    state.SkipWithError(rs.status().message().c_str());
    return;
  }
  double op_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
          t1 - t0)
          .count();
  double rows_per_s =
      op_ms > 0 ? static_cast<double>(input_rows) / (op_ms / 1000.0) : 0.0;
  state.counters["op_ms"] = op_ms;
  state.counters["rows_per_s"] = rows_per_s;
  state.counters["pages_read"] = static_cast<double>(pager.EpochPagesRead());
  size_t batch = db.exec_options().row_at_a_time
                     ? 0
                     : EffectiveBatchSize(db.exec_options());
  size_t threads = db.exec_options().num_threads;  // 0 = serial pipeline
  ReportPoolCountersAndJson(
      state, pager, bench, run, before,
      {{"op_ms", op_ms},
       {"rows_per_s", rows_per_s},
       {"rows", static_cast<double>(input_rows)},
       {"batch_size", static_cast<double>(batch)},
       {"threads", static_cast<double>(threads)},
       {"pages_read", state.counters["pages_read"]}});
}

/// Args: {rows, row_mode (0 = batch, 1 = row), pool cap (0 = unbounded),
/// threads (0 = serial)}.
std::string RunName(const std::string& series, const benchmark::State& state) {
  std::string run = series;
  if (state.range(3) != 0) {
    run += "/par" + std::to_string(state.range(3)) + "/";
  } else {
    run += state.range(1) != 0 ? "/row/" : "/batch/";
  }
  run += std::to_string(state.range(0));
  if (state.range(2) != 0) run += "/pool" + std::to_string(state.range(2));
  return run;
}

std::string ModeLabel(const benchmark::State& state) {
  if (state.range(3) != 0) return "par" + std::to_string(state.range(3));
  return state.range(1) != 0 ? "row" : "batch";
}

DatabaseOptions OptionsFor(const benchmark::State& state) {
  DatabaseOptions opts;
  opts.pager = PagerConfigFromEnv(static_cast<size_t>(state.range(2)));
  opts.exec.row_at_a_time = state.range(1) != 0;
  opts.exec.batch_size = ExecBatchSizeFromEnv();
  opts.exec.num_threads =
      ExecThreadsFromEnv(static_cast<size_t>(state.range(3)));
  return opts;
}

void BM_ScanFilterAggregate(benchmark::State& state) {
  size_t rows = static_cast<size_t>(state.range(0));
  Database db(OptionsFor(state));
  LoadWideTable(&db, "t", rows);
  const std::string query =
      "SELECT COUNT(*), SUM(amount), AVG(amount) FROM t "
      "WHERE amount >= 25.0 AND id % 4 <> 0";
  for (auto _ : state) {
    auto rs = db.Execute(query);
    if (!rs.ok()) {
      state.SkipWithError(rs.status().message().c_str());
      return;
    }
    benchmark::DoNotOptimize(rs.value().rows);
  }
  ReportTimedQuery(state, db, "exec_pipeline",
                   RunName("ScanFilterAggregate", state), query, rows);
  state.SetLabel(std::to_string(rows) + " rows, " + ModeLabel(state));
}
BENCHMARK(BM_ScanFilterAggregate)
    ->Args({1000, 0, 0, 0})
    ->Args({1000, 1, 0, 0})
    ->Args({10000, 0, 0, 0})
    ->Args({10000, 1, 0, 0})
    ->Args({10000, 0, 0, 4})
    ->Args({100000, 0, 0, 0})
    ->Args({100000, 1, 0, 0})
    ->Args({100000, 0, 0, 1})
    ->Args({100000, 0, 0, 2})
    ->Args({100000, 0, 0, 4})
    ->Args({100000, 0, 64, 0})
    ->Args({100000, 1, 64, 0})
    ->Args({100000, 0, 64, 4})
    ->Unit(benchmark::kMillisecond);

// The Figure-2a join shape (three-relation NATURAL JOIN + filter + top-k),
// minus the spreadsheet wrapping: pure engine, row vs batch. Joins are not
// morsel-eligible (the parallel leaf covers single-table shapes), so these
// families record threads = 0.
void BM_JoinFilterTopK(benchmark::State& state) {
  size_t movies = static_cast<size_t>(state.range(0));
  Database db(OptionsFor(state));
  LoadMovieWorkload(&db, movies);
  const std::string query =
      "SELECT title, name FROM movies NATURAL JOIN movies2actors "
      "NATURAL JOIN actors WHERE year >= 1980 ORDER BY title LIMIT 8";
  for (auto _ : state) {
    auto rs = db.Execute(query);
    if (!rs.ok()) {
      state.SkipWithError(rs.status().message().c_str());
      return;
    }
    benchmark::DoNotOptimize(rs.value().rows);
  }
  ReportTimedQuery(state, db, "exec_pipeline", RunName("JoinFilterTopK", state),
                   query, movies);
  state.SetLabel(std::to_string(movies) + " movies, " + ModeLabel(state));
}
BENCHMARK(BM_JoinFilterTopK)
    ->Args({1000, 0, 0, 0})
    ->Args({1000, 1, 0, 0})
    ->Args({10000, 0, 0, 0})
    ->Args({10000, 1, 0, 0})
    ->Args({100000, 0, 0, 0})
    ->Args({100000, 1, 0, 0})
    ->Args({100000, 0, 64, 0})
    ->Args({100000, 1, 64, 0})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dataspread::bench
