// Experiment A1 (design ablation, DESIGN.md §4): ROM vs COM vs RCV vs hybrid
// attribute groups across the access patterns the unified system needs —
// full scans (queries), point tuple reads (pane fill), point updates (sync),
// row appends (imports), and sparse data. All tables honor the
// DS_MAX_RESIDENT_PAGES / DS_SPILL_DIR environment (bounded-pool runs), and
// the BoundedFullScan family drives million-row scans through a 256-frame
// pool explicitly. Every pager-reporting run appends a JSON trajectory line
// (see AppendBenchJsonLine).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <functional>
#include <random>
#include <vector>

#include "storage/table_storage.h"
#include "workloads.h"

namespace dataspread {
namespace {

using bench::PagerConfigFromEnv;

constexpr size_t kCols = 8;

std::unique_ptr<TableStorage> MakeLoaded(StorageModel model, size_t rows,
                                         size_t pool_cap = 0) {
  auto s = CreateStorage(model, kCols, nullptr, PagerConfigFromEnv(pool_cap));
  s->pager().set_accounting_enabled(false);
  Row r(kCols);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t c = 0; c < kCols; ++c) {
      r[c] = Value::Int(static_cast<int64_t>(i * kCols + c));
    }
    (void)s->AppendRow(r);
  }
  return s;
}

/// Reports the pager-measured block I/O of one `op` (run outside the timing
/// loop with accounting re-enabled), the table's resident page footprint,
/// the measured op's buffer-pool hit rate, and the physical fault/eviction/
/// spill traffic of the whole run; also appends the JSON trajectory line for
/// this bench run.
void ReportPagerCounters(benchmark::State& state, const std::string& run,
                         TableStorage& s, const std::function<void()>& op) {
  storage::Pager& pager = s.pager();
  pager.set_accounting_enabled(true);
  pager.BeginEpoch();
  storage::PagerStats before = pager.stats();
  auto op_start = std::chrono::steady_clock::now();
  op();
  state.counters["op_ms"] =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - op_start)
          .count();
  state.counters["pages_read"] = static_cast<double>(pager.EpochPagesRead());
  state.counters["pages_written"] =
      static_cast<double>(pager.EpochPagesWritten());
  state.counters["resident_pages"] =
      static_cast<double>(pager.resident_pages());
  bench::ReportPoolCountersAndJson(
      state, pager, "storage_models", run, before,
      {{"pages_read", state.counters["pages_read"]},
       {"pages_written", state.counters["pages_written"]},
       {"resident_pages", state.counters["resident_pages"]},
       {"op_ms", state.counters["op_ms"]}});
}

/// Full scan through the zero-materialization VisitRows (PageCursor) path:
/// tuples are consumed straight out of the pinned pages, no Row per tuple.
int64_t ScanAll(TableStorage& s, size_t rows) {
  int64_t sum = 0;
  (void)s.VisitRows(0, rows, [&sum](size_t, const Value* values) {
    sum += values[0].int_value();
  });
  return sum;
}

void RunScan(benchmark::State& state, StorageModel model) {
  size_t rows = static_cast<size_t>(state.range(0));
  auto s = MakeLoaded(model, rows);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ScanAll(*s, rows));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(rows));
  ReportPagerCounters(
      state,
      "FullScan/" + std::string(StorageModelName(model)) + "/" +
          std::to_string(rows),
      *s, [&] { benchmark::DoNotOptimize(ScanAll(*s, rows)); });
  state.SetLabel(StorageModelName(model));
}

// The paper's billion-cell premise: the same full scan, but the table lives
// behind a genuinely bounded pool (default 256 frames for a ~31k-page
// million-row heap), so cold pages are spilled and faulted back for real.
void RunBoundedScan(benchmark::State& state, StorageModel model) {
  size_t rows = static_cast<size_t>(state.range(0));
  size_t pool = static_cast<size_t>(state.range(1));
  auto s = MakeLoaded(model, rows, pool);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ScanAll(*s, rows));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(rows));
  // The run key records the cap actually applied (DS_MAX_RESIDENT_PAGES
  // overrides the benchmark arg), so trajectory lines never mislabel runs.
  ReportPagerCounters(
      state,
      "BoundedFullScan/" + std::string(StorageModelName(model)) + "/" +
          std::to_string(rows) + "/pool" +
          std::to_string(s->pager().max_resident_pages()),
      *s, [&] { benchmark::DoNotOptimize(ScanAll(*s, rows)); });
  state.SetLabel(std::string(StorageModelName(model)) + ", pool=" +
                 std::to_string(s->pager().max_resident_pages()));
}

void RunPointUpdate(benchmark::State& state, StorageModel model) {
  size_t rows = static_cast<size_t>(state.range(0));
  auto s = MakeLoaded(model, rows);
  std::mt19937 rng(3);
  for (auto _ : state) {
    (void)s->Set(rng() % rows, rng() % kCols, Value::Int(1));
  }
  ReportPagerCounters(state,
                      "PointUpdate/" + std::string(StorageModelName(model)) +
                          "/" + std::to_string(rows),
                      *s,
                      [&] { (void)s->Set(rng() % rows, 0, Value::Int(1)); });
  state.SetLabel(StorageModelName(model));
}

void RunAppend(benchmark::State& state, StorageModel model) {
  auto s = CreateStorage(model, kCols);
  s->pager().set_accounting_enabled(false);
  Row r(kCols, Value::Int(7));
  for (auto _ : state) {
    (void)s->AppendRow(r);
  }
  ReportPagerCounters(state,
                      "Append/" + std::string(StorageModelName(model)), *s,
                      [&] { (void)s->AppendRow(r); });
  state.SetLabel(StorageModelName(model));
}

void RunSparseColumnScan(benchmark::State& state, StorageModel model) {
  // 90% NULL data: RCV's home turf.
  size_t rows = static_cast<size_t>(state.range(0));
  auto s = CreateStorage(model, kCols);
  s->pager().set_accounting_enabled(false);
  std::mt19937 rng(5);
  Row r(kCols);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t c = 0; c < kCols; ++c) {
      r[c] = (rng() % 10 == 0) ? Value::Int(1) : Value::Null();
    }
    (void)s->AppendRow(r);
  }
  for (auto _ : state) {
    int64_t non_null = 0;
    for (size_t i = 0; i < rows; ++i) {
      if (!s->Get(i, 2).ValueOrDie().is_null()) ++non_null;
    }
    benchmark::DoNotOptimize(non_null);
  }
  ReportPagerCounters(
      state,
      "SparseColumnScan/" + std::string(StorageModelName(model)) + "/" +
          std::to_string(rows),
      *s, [&] {
        for (size_t i = 0; i < rows; ++i) (void)s->Get(i, 2);
      });
  state.SetLabel(StorageModelName(model));
}

#define DS_STORAGE_BENCH(runner, name)                                  \
  void BM_Storage_##name##_Row(benchmark::State& s) {                   \
    runner(s, StorageModel::kRow);                                      \
  }                                                                     \
  void BM_Storage_##name##_Column(benchmark::State& s) {                \
    runner(s, StorageModel::kColumn);                                   \
  }                                                                     \
  void BM_Storage_##name##_Rcv(benchmark::State& s) {                   \
    runner(s, StorageModel::kRcv);                                      \
  }                                                                     \
  void BM_Storage_##name##_Hybrid(benchmark::State& s) {                \
    runner(s, StorageModel::kHybrid);                                   \
  }                                                                     \
  BENCHMARK(BM_Storage_##name##_Row)->Arg(100000);                      \
  BENCHMARK(BM_Storage_##name##_Column)->Arg(100000);                   \
  BENCHMARK(BM_Storage_##name##_Rcv)->Arg(100000);                      \
  BENCHMARK(BM_Storage_##name##_Hybrid)->Arg(100000)

DS_STORAGE_BENCH(RunScan, FullScan);
DS_STORAGE_BENCH(RunPointUpdate, PointUpdate);
DS_STORAGE_BENCH(RunAppend, Append);
DS_STORAGE_BENCH(RunSparseColumnScan, SparseColumnScan);

// Million-row scans through a few hundred frames: args are {rows, pool cap}.
void BM_Storage_BoundedFullScan_Row(benchmark::State& s) {
  RunBoundedScan(s, StorageModel::kRow);
}
void BM_Storage_BoundedFullScan_Hybrid(benchmark::State& s) {
  RunBoundedScan(s, StorageModel::kHybrid);
}
BENCHMARK(BM_Storage_BoundedFullScan_Row)
    ->Args({1000000, 256})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Storage_BoundedFullScan_Hybrid)
    ->Args({1000000, 256})
    ->Unit(benchmark::kMillisecond);

// The legacy row-at-a-time path (GetRow per row: one chain hash lookup per
// tuple, no cursor, no readahead hint) over the same bounded table — kept so
// every BENCH_storage_models.json snapshot records the cursor path's
// wall-time and fault win against it.
void BM_Storage_BoundedFullScanRowAtATime_Row(benchmark::State& state) {
  size_t rows = static_cast<size_t>(state.range(0));
  size_t pool = static_cast<size_t>(state.range(1));
  auto s = MakeLoaded(StorageModel::kRow, rows, pool);
  for (auto _ : state) {
    int64_t sum = 0;
    for (size_t i = 0; i < rows; ++i) {
      Row r = s->GetRow(i).ValueOrDie();
      sum += r[0].int_value();
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(rows));
  ReportPagerCounters(
      state,
      "BoundedFullScanRowAtATime/row/" + std::to_string(rows) + "/pool" +
          std::to_string(s->pager().max_resident_pages()),
      *s, [&] {
        for (size_t i = 0; i < rows; ++i) (void)s->GetRow(i);
      });
  state.SetLabel("row (GetRow loop), pool=" +
                 std::to_string(s->pager().max_resident_pages()));
}
BENCHMARK(BM_Storage_BoundedFullScanRowAtATime_Row)
    ->Args({1000000, 256})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dataspread
