// Transaction commit costs (DESIGN.md §7): the group-commit A/B.
//
//   BM_Txn_PagerCommit_*  — the barrier mechanism in isolation: each
//                           committer brackets a handful of slot writes
//                           (BeginStatement/EndStatement) and then makes the
//                           commit durable — serial: fsync inside the writer
//                           lock, one per commit; group: the barrier runs
//                           outside the lock (Pager::SyncWalThrough), so
//                           concurrent committers park on one leader's fsync
//                           and release together (Wal::SyncThrough).
//   BM_Txn_Commit_*       — the same A/B end to end through Database::
//                           Execute with sync_on_commit: full SQL parse +
//                           plan + DML per commit. The statement CPU bounds
//                           the visible win here, so this pair is the
//                           realistic trajectory, not the gate.
//   BM_Txn_Multi          — multi-statement transactions (DESIGN.md §7):
//                           one writer groups K INSERTs per durable COMMIT
//                           (K = 1 is plain autocommit, one fsync per
//                           statement; K > 1 is BEGIN..COMMIT, one fsync
//                           per K statements).
//
// The wins to protect: at 8 committer threads, pager-level group commit
// must sustain >= 2x the commits/s of the fsync-per-commit baseline, and
// K=8 statement batching must sustain >= 1.5x the committed statements/s
// of K=1 — ci/check.sh gates both via BENCH_txn.json.
//
// Every run appends a JSON line to BENCH_txn.json (DS_BENCH_JSON_DIR) with
// threads / commits / wal_syncs / commits_per_sync / commits_per_sec (the
// Multi family adds k / statements / statements_per_sec) — the cross-PR
// trajectory for the commit path.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "db/database.h"
#include "storage/pager.h"
#include "workloads.h"

namespace dataspread {
namespace {

/// A scratch durable base path under DS_SPILL_DIR (or /tmp), removed on
/// destruction (durable files outlive the database by design).
struct ScratchBase {
  explicit ScratchBase(const std::string& tag) {
    const char* dir = std::getenv("DS_SPILL_DIR");
    base = std::string(dir != nullptr ? dir : "/tmp") + "/ds-bench-txn-" +
           std::to_string(::getpid()) + "-" + tag;
    Remove();
  }
  ~ScratchBase() { Remove(); }
  void Remove() {
    std::remove((base + ".wal").c_str());
    std::remove((base + ".pages").c_str());
    std::remove((base + ".wal.lock").c_str());
  }
  std::string base;
};

constexpr int kCommitsPerThread = 24;

void RunCommitAB(benchmark::State& state, bool group, const std::string& run) {
  const int threads = static_cast<int>(state.range(0));
  ScratchBase files(run + "-t" + std::to_string(threads));
  DatabaseOptions options;
  options.sync_on_commit = true;
  options.group_commit = group;
  auto db = Database::Open(files.base, options);
  if (!db->Execute("CREATE TABLE t (a INT, b INT)").ok()) {
    state.SkipWithError("CREATE TABLE failed");
    return;
  }
  const uint64_t syncs_before = db->pager().stats().wal_syncs;
  std::atomic<int64_t> next{0};
  uint64_t commits = 0;
  double seconds = 0;
  for (auto _ : state) {
    auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> committers;
    committers.reserve(static_cast<size_t>(threads));
    for (int th = 0; th < threads; ++th) {
      committers.emplace_back([&] {
        for (int i = 0; i < kCommitsPerThread; ++i) {
          int64_t v = next.fetch_add(1);
          auto r = db->Execute("INSERT INTO t VALUES (" + std::to_string(v) +
                               ", " + std::to_string(v * 3) + ")");
          benchmark::DoNotOptimize(r.ok());
        }
      });
    }
    for (std::thread& t : committers) t.join();
    seconds += std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             t0)
                   .count();
    commits += static_cast<uint64_t>(threads) * kCommitsPerThread;
  }
  const uint64_t syncs = db->pager().stats().wal_syncs - syncs_before;
  const double commits_per_sync =
      syncs > 0 ? static_cast<double>(commits) / static_cast<double>(syncs) : 0;
  const double commits_per_sec =
      seconds > 0 ? static_cast<double>(commits) / seconds : 0;
  state.SetItemsProcessed(static_cast<int64_t>(commits));
  state.counters["commits"] = static_cast<double>(commits);
  state.counters["wal_syncs"] = static_cast<double>(syncs);
  state.counters["commits_per_sync"] = commits_per_sync;
  state.counters["commits_per_sec"] = commits_per_sec;
  bench::AppendBenchJsonLine(
      "txn", "Commit/" + run + "/t" + std::to_string(threads),
      {{"iterations", static_cast<double>(state.iterations())},
       {"threads", static_cast<double>(threads)},
       {"commits", static_cast<double>(commits)},
       {"wal_syncs", static_cast<double>(syncs)},
       {"commits_per_sync", commits_per_sync},
       {"commits_per_sec", commits_per_sec}});
  db->pager().CrashForTesting();  // bench done; skip the destructor checkpoint
}

/// The barrier mechanism in isolation: statement brackets over raw pager
/// writes, one writer at a time (an external mutex stands in for the
/// database's statement lock), committers made durable serially or via the
/// shared SyncThrough barrier.
void RunPagerCommitAB(benchmark::State& state, bool group,
                      const std::string& run) {
  const int threads = static_cast<int>(state.range(0));
  constexpr uint64_t kSlotsPerCommit = 4;
  ScratchBase files("pager-" + run + "-t" + std::to_string(threads));
  storage::PagerConfig config;
  config.max_resident_pages = 256;
  config.spill_path = files.base + ".pages";
  config.wal_path = files.base + ".wal";
  config.durable_spill = true;
  storage::Pager pager(config);
  storage::FileId f = pager.CreateFile();
  const uint64_t syncs_before = pager.stats().wal_syncs;
  std::mutex statement_mu;
  std::atomic<uint64_t> next{0};
  uint64_t commits = 0;
  double seconds = 0;
  for (auto _ : state) {
    auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> committers;
    committers.reserve(static_cast<size_t>(threads));
    for (int th = 0; th < threads; ++th) {
      committers.emplace_back([&] {
        for (int i = 0; i < kCommitsPerThread; ++i) {
          uint64_t base = next.fetch_add(1) * kSlotsPerCommit;
          uint64_t commit_end = 0;
          {
            std::lock_guard<std::mutex> lock(statement_mu);
            pager.BeginStatement();
            for (uint64_t s = 0; s < kSlotsPerCommit; ++s) {
              pager.Write(f, (base + s) % (1u << 16),
                          Value::Int(static_cast<int64_t>(base + s)));
            }
            commit_end = pager.EndStatement(/*commit=*/true);
            if (!group) pager.SyncWal();  // fsync-per-commit, inside the lock
          }
          if (group) pager.SyncWalThrough(commit_end);
          benchmark::DoNotOptimize(commit_end);
        }
      });
    }
    for (std::thread& t : committers) t.join();
    seconds += std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             t0)
                   .count();
    commits += static_cast<uint64_t>(threads) * kCommitsPerThread;
  }
  const uint64_t syncs = pager.stats().wal_syncs - syncs_before;
  const double commits_per_sync =
      syncs > 0 ? static_cast<double>(commits) / static_cast<double>(syncs) : 0;
  const double commits_per_sec =
      seconds > 0 ? static_cast<double>(commits) / seconds : 0;
  state.SetItemsProcessed(static_cast<int64_t>(commits));
  state.counters["commits"] = static_cast<double>(commits);
  state.counters["wal_syncs"] = static_cast<double>(syncs);
  state.counters["commits_per_sync"] = commits_per_sync;
  state.counters["commits_per_sec"] = commits_per_sec;
  bench::AppendBenchJsonLine(
      "txn", "PagerCommit/" + run + "/t" + std::to_string(threads),
      {{"iterations", static_cast<double>(state.iterations())},
       {"threads", static_cast<double>(threads)},
       {"commits", static_cast<double>(commits)},
       {"wal_syncs", static_cast<double>(syncs)},
       {"commits_per_sync", commits_per_sync},
       {"commits_per_sec", commits_per_sec}});
  pager.CrashForTesting();
}

void BM_Txn_PagerCommit_Serial(benchmark::State& state) {
  RunPagerCommitAB(state, /*group=*/false, "serial");
}
BENCHMARK(BM_Txn_PagerCommit_Serial)
    ->Arg(1)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

void BM_Txn_PagerCommit_Group(benchmark::State& state) {
  RunPagerCommitAB(state, /*group=*/true, "group");
}
BENCHMARK(BM_Txn_PagerCommit_Group)
    ->Arg(1)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

void BM_Txn_Commit_Serial(benchmark::State& state) {
  RunCommitAB(state, /*group=*/false, "serial");
}
BENCHMARK(BM_Txn_Commit_Serial)
    ->Arg(1)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

void BM_Txn_Commit_Group(benchmark::State& state) {
  RunCommitAB(state, /*group=*/true, "group");
}
BENCHMARK(BM_Txn_Commit_Group)
    ->Arg(1)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

/// Multi-statement transactions: one writer, K INSERT statements per
/// durable commit. K = 1 runs plain autocommit (every statement pays the
/// commit fsync); K > 1 wraps each batch in BEGIN..COMMIT so the fsync
/// lands once per K statements — the amortization multi-statement
/// transactions exist to buy on the write path.
void BM_Txn_Multi(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  constexpr int kStatementsPerIter = 192;  // divisible by every K
  ScratchBase files("multi-k" + std::to_string(k));
  DatabaseOptions options;
  options.sync_on_commit = true;
  options.group_commit = true;
  auto db = Database::Open(files.base, options);
  if (!db->Execute("CREATE TABLE t (a INT, b INT)").ok()) {
    state.SkipWithError("CREATE TABLE failed");
    return;
  }
  const uint64_t syncs_before = db->pager().stats().wal_syncs;
  int64_t next = 0;
  uint64_t commits = 0;
  uint64_t statements = 0;
  double seconds = 0;
  for (auto _ : state) {
    auto t0 = std::chrono::steady_clock::now();
    for (int c = 0; c < kStatementsPerIter / k; ++c) {
      if (k > 1) {
        auto r = db->Execute("BEGIN");
        benchmark::DoNotOptimize(r.ok());
      }
      for (int i = 0; i < k; ++i) {
        int64_t v = next++;
        auto r = db->Execute("INSERT INTO t VALUES (" + std::to_string(v) +
                             ", " + std::to_string(v * 3) + ")");
        benchmark::DoNotOptimize(r.ok());
      }
      if (k > 1) {
        auto r = db->Execute("COMMIT");
        benchmark::DoNotOptimize(r.ok());
      }
    }
    seconds += std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             t0)
                   .count();
    commits += static_cast<uint64_t>(kStatementsPerIter / k);
    statements += kStatementsPerIter;
  }
  const uint64_t syncs = db->pager().stats().wal_syncs - syncs_before;
  const double commits_per_sec =
      seconds > 0 ? static_cast<double>(commits) / seconds : 0;
  const double statements_per_sec =
      seconds > 0 ? static_cast<double>(statements) / seconds : 0;
  state.SetItemsProcessed(static_cast<int64_t>(statements));
  state.counters["k"] = static_cast<double>(k);
  state.counters["commits"] = static_cast<double>(commits);
  state.counters["statements"] = static_cast<double>(statements);
  state.counters["wal_syncs"] = static_cast<double>(syncs);
  state.counters["commits_per_sec"] = commits_per_sec;
  state.counters["statements_per_sec"] = statements_per_sec;
  bench::AppendBenchJsonLine(
      "txn", "Multi/k" + std::to_string(k),
      {{"iterations", static_cast<double>(state.iterations())},
       {"k", static_cast<double>(k)},
       {"commits", static_cast<double>(commits)},
       {"statements", static_cast<double>(statements)},
       {"wal_syncs", static_cast<double>(syncs)},
       {"commits_per_sec", commits_per_sec},
       {"statements_per_sec", statements_per_sec}});
  db->pager().CrashForTesting();
}
BENCHMARK(BM_Txn_Multi)
    ->Arg(1)
    ->Arg(8)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

/// Multi-writer transactions over the partitioned write latches
/// (DESIGN.md §7): N writer sessions each run BEGIN + K INSERTs + COMMIT
/// loops concurrently. Disjoint mode gives every writer its own table, so
/// the per-table latches never serialize them and group commit batches
/// their commit fsyncs — the win the latch partitioning exists to buy,
/// gated by ci/check.sh at >= 2x statements/s for 4 writers over 1 on
/// >= 4-core machines. Contended mode points every writer at one table:
/// the latch serializes them (blocking, never aborting — a transaction
/// holding nothing may always wait), the honest baseline the disjoint
/// numbers are read against.
void RunMultiWriter(benchmark::State& state, bool disjoint,
                    const std::string& run) {
  const int writers = static_cast<int>(state.range(0));
  constexpr int kTxnsPerWriter = 24;
  constexpr int kInsertsPerTxn = 4;
  ScratchBase files("mw-" + run + "-w" + std::to_string(writers));
  DatabaseOptions options;
  options.sync_on_commit = true;
  options.group_commit = true;
  auto db = Database::Open(files.base, options);
  const int tables = disjoint ? writers : 1;
  for (int t = 0; t < tables; ++t) {
    if (!db->Execute("CREATE TABLE t" + std::to_string(t) +
                     " (a INT, b INT)")
             .ok()) {
      state.SkipWithError("CREATE TABLE failed");
      return;
    }
  }
  std::vector<std::unique_ptr<Session>> sessions;
  for (int w = 0; w < writers; ++w) sessions.push_back(db->CreateSession());
  const uint64_t syncs_before = db->pager().stats().wal_syncs;
  std::atomic<int64_t> next{0};
  uint64_t commits = 0;
  uint64_t statements = 0;
  double seconds = 0;
  for (auto _ : state) {
    auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(writers));
    for (int w = 0; w < writers; ++w) {
      threads.emplace_back([&, w] {
        Session* s = sessions[static_cast<size_t>(w)].get();
        const std::string table = "t" + std::to_string(disjoint ? w : 0);
        for (int txn = 0; txn < kTxnsPerWriter; ++txn) {
          auto r = s->Execute("BEGIN");
          benchmark::DoNotOptimize(r.ok());
          for (int i = 0; i < kInsertsPerTxn; ++i) {
            int64_t v = next.fetch_add(1);
            r = s->Execute("INSERT INTO " + table + " VALUES (" +
                           std::to_string(v) + ", " + std::to_string(v * 3) +
                           ")");
            benchmark::DoNotOptimize(r.ok());
          }
          r = s->Execute("COMMIT");
          benchmark::DoNotOptimize(r.ok());
        }
      });
    }
    for (std::thread& t : threads) t.join();
    seconds += std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             t0)
                   .count();
    commits += static_cast<uint64_t>(writers) * kTxnsPerWriter;
    statements +=
        static_cast<uint64_t>(writers) * kTxnsPerWriter * kInsertsPerTxn;
  }
  const uint64_t syncs = db->pager().stats().wal_syncs - syncs_before;
  const double commits_per_sec =
      seconds > 0 ? static_cast<double>(commits) / seconds : 0;
  const double statements_per_sec =
      seconds > 0 ? static_cast<double>(statements) / seconds : 0;
  state.SetItemsProcessed(static_cast<int64_t>(statements));
  state.counters["writers"] = static_cast<double>(writers);
  state.counters["commits"] = static_cast<double>(commits);
  state.counters["statements"] = static_cast<double>(statements);
  state.counters["wal_syncs"] = static_cast<double>(syncs);
  state.counters["commits_per_sec"] = commits_per_sec;
  state.counters["statements_per_sec"] = statements_per_sec;
  bench::AppendBenchJsonLine(
      "txn", "MultiWriter/" + run + "/w" + std::to_string(writers),
      {{"iterations", static_cast<double>(state.iterations())},
       {"writers", static_cast<double>(writers)},
       {"commits", static_cast<double>(commits)},
       {"statements", static_cast<double>(statements)},
       {"wal_syncs", static_cast<double>(syncs)},
       {"commits_per_sec", commits_per_sec},
       {"statements_per_sec", statements_per_sec}});
  sessions.clear();  // sessions must die before the database
  db->pager().CrashForTesting();
}

void BM_Txn_MultiWriter_Disjoint(benchmark::State& state) {
  RunMultiWriter(state, /*disjoint=*/true, "disjoint");
}
BENCHMARK(BM_Txn_MultiWriter_Disjoint)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

void BM_Txn_MultiWriter_Contended(benchmark::State& state) {
  RunMultiWriter(state, /*disjoint=*/false, "contended");
}
BENCHMARK(BM_Txn_MultiWriter_Contended)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace
}  // namespace dataspread
