// Experiment F1 (paper Figure 1): end-to-end pass through every shaded
// architecture component — import (Interface Manager + Relational Storage
// Manager), query (Query Processor with positional addressing), edit
// (two-way sync), pan (Window Manager + Positional Index), recalculation
// (Compute Engine + Interface Storage Manager).
#include <benchmark/benchmark.h>

#include "workloads.h"

namespace dataspread::bench {
namespace {

void BM_Architecture_FullInteractionLoop(benchmark::State& state) {
  size_t rows = static_cast<size_t>(state.range(0));
  DataSpreadOptions opts;
  opts.auto_pump = false;
  opts.binding_window = 64;
  DataSpread ds(opts);
  LoadWideTable(&ds.db(), "t", rows);
  Sheet* sheet = ds.AddSheet("S").ValueOrDie();
  (void)ds.ImportTable("S", "A1", "t");                       // Fig 2b
  (void)ds.SetCellAt(sheet, 0, 5,
                     "=DBSQL(\"SELECT AVG(amount) FROM t\")");  // Fig 2a
  (void)ds.SetCellAt(sheet, 1, 5, "=F1*2");                     // formula
  ds.Pump();
  double v = 0;
  int64_t pan = 0;
  for (auto _ : state) {
    // One interactive beat: edit a bound cell, pan the pane, read results.
    (void)ds.SetCellAt(sheet, 2, 2, std::to_string(++v));      // sync front->back
    (void)ds.ScrollTo("S", (pan = (pan + 97) % static_cast<int64_t>(rows)), 0);
    ds.Pump();
    benchmark::DoNotOptimize(ds.GetValueAt(sheet, 1, 5));
  }
  state.SetLabel(std::to_string(rows) + " backing rows");
}
BENCHMARK(BM_Architecture_FullInteractionLoop)
    ->Arg(1000)->Arg(100000)->Unit(benchmark::kMillisecond);

void BM_Architecture_ColdStartToFirstPane(benchmark::State& state) {
  // From empty engine to a visible, queryable pane over `rows` tuples.
  size_t rows = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    DataSpreadOptions opts;
    opts.auto_pump = false;
    opts.binding_window = 64;
    DataSpread ds(opts);
    LoadWideTable(&ds.db(), "t", rows);
    (void)ds.AddSheet("S");
    (void)ds.ImportTable("S", "A1", "t");
    ds.Pump();
    benchmark::DoNotOptimize(
        ds.GetValue("S", "A2").ValueOr(Value::Null()));
  }
  state.SetLabel(std::to_string(rows) + " rows to first pane");
}
BENCHMARK(BM_Architecture_ColdStartToFirstPane)
    ->Arg(10000)->Arg(100000)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dataspread::bench
