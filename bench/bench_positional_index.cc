// Experiment C3 (paper §3): "We introduce a new type of index, positional,
// which makes interface-oriented operations, e.g., ordered presentation,
// efficient." Series: get-by-position / insert-at / erase-at / window fetch,
// counted B+-tree vs the shifting-array baseline, vs element count.
#include <benchmark/benchmark.h>

#include <random>

#include "index/offset_array.h"
#include "index/positional_index.h"

namespace dataspread {
namespace {

template <typename Index>
Index MakeFilled(size_t n) {
  std::vector<uint64_t> payloads(n);
  for (size_t i = 0; i < n; ++i) payloads[i] = i;
  Index idx;
  idx.Build(payloads);
  return idx;
}

template <typename Index>
void RunRandomGet(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Index idx = MakeFilled<Index>(n);
  std::mt19937 rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(idx.Get(rng() % n));
  }
  state.SetLabel(std::to_string(n) + " elements");
}

template <typename Index>
void RunRandomInsertErase(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Index idx = MakeFilled<Index>(n);
  std::mt19937 rng(7);
  for (auto _ : state) {
    size_t pos = rng() % (idx.size() + 1);
    (void)idx.InsertAt(pos, pos);
    (void)idx.EraseAt(rng() % idx.size());
  }
  state.SetLabel(std::to_string(n) + " elements");
}

template <typename Index>
void RunWindowFetch(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Index idx = MakeFilled<Index>(n);
  std::mt19937 rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(idx.GetRange(rng() % n, 50));
  }
  state.SetLabel(std::to_string(n) + " elements, 50-row window");
}

void BM_Positional_Get_Tree(benchmark::State& s) {
  RunRandomGet<PositionalIndex>(s);
}
void BM_Positional_Get_Array(benchmark::State& s) {
  RunRandomGet<OffsetArray>(s);
}
void BM_Positional_InsertErase_Tree(benchmark::State& s) {
  RunRandomInsertErase<PositionalIndex>(s);
}
void BM_Positional_InsertErase_Array(benchmark::State& s) {
  RunRandomInsertErase<OffsetArray>(s);
}
void BM_Positional_Window_Tree(benchmark::State& s) {
  RunWindowFetch<PositionalIndex>(s);
}
void BM_Positional_Window_Array(benchmark::State& s) {
  RunWindowFetch<OffsetArray>(s);
}

BENCHMARK(BM_Positional_Get_Tree)->Arg(1000)->Arg(100000)->Arg(1000000);
BENCHMARK(BM_Positional_Get_Array)->Arg(1000)->Arg(100000)->Arg(1000000);
BENCHMARK(BM_Positional_InsertErase_Tree)
    ->Arg(1000)->Arg(100000)->Arg(1000000);
BENCHMARK(BM_Positional_InsertErase_Array)
    ->Arg(1000)->Arg(100000)->Arg(1000000);
BENCHMARK(BM_Positional_Window_Tree)->Arg(100000)->Arg(1000000);
BENCHMARK(BM_Positional_Window_Array)->Arg(100000)->Arg(1000000);

// Bulk build cost (table load path).
void BM_Positional_BulkBuild(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<uint64_t> payloads(n);
  for (size_t i = 0; i < n; ++i) payloads[i] = i;
  for (auto _ : state) {
    PositionalIndex idx;
    idx.Build(payloads);
    benchmark::DoNotOptimize(idx.size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_Positional_BulkBuild)->Arg(1000000)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dataspread
