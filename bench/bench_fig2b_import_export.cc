// Experiment F2b (paper Figure 2b): create-table-from-range (export with
// schema inference) and DBTABLE import. Series: latency vs range height.
#include <benchmark/benchmark.h>

#include "workloads.h"

namespace dataspread::bench {
namespace {

void BM_Fig2b_CreateTableFromRange(benchmark::State& state) {
  int64_t rows = state.range(0);
  DataSpreadOptions opts;
  opts.auto_pump = false;
  DataSpread ds(opts);
  Sheet* sheet = ds.AddSheet("S").ValueOrDie();
  FillSheetTable(sheet, 0, 0, rows, 4, /*header=*/true);
  std::string range = "A1:D" + std::to_string(rows + 1);
  int generation = 0;
  for (auto _ : state) {
    std::string name = "export_" + std::to_string(generation++);
    auto table = ds.CreateTableFromRange("S", range, name, "id");
    benchmark::DoNotOptimize(table);
    state.PauseTiming();
    (void)ds.db().catalog().DropTable(name);
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * rows);
  state.SetLabel(std::to_string(rows) + " rows exported");
}
BENCHMARK(BM_Fig2b_CreateTableFromRange)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void BM_Fig2b_DbtableImport(benchmark::State& state) {
  size_t rows = static_cast<size_t>(state.range(0));
  DataSpreadOptions opts;
  opts.auto_pump = false;
  opts.binding_window = 64;  // pane-sized materialization
  DataSpread ds(opts);
  LoadWideTable(&ds.db(), "t", rows);
  Sheet* sheet = ds.AddSheet("S").ValueOrDie();
  for (auto _ : state) {
    auto binding = ds.ImportTable("S", "A1", "t");
    benchmark::DoNotOptimize(binding);
    state.PauseTiming();
    (void)ds.interface_manager().Unbind(binding.value()->id());
    (void)ds.SetCellAt(sheet, 0, 0, "");
    ds.Pump();
    state.ResumeTiming();
  }
  state.SetLabel(std::to_string(rows) +
                 " table rows (window of 64 materialized)");
}
BENCHMARK(BM_Fig2b_DbtableImport)
    ->Arg(100)
    ->Arg(10000)
    ->Arg(1000000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dataspread::bench
