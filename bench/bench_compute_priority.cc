// Experiment C4 (paper §3 Compute Engine): "improves the interface's
// interactivity by prioritizing the computation for visible cells."
// Series: time until the visible pane is consistent, visible-first
// (RecalcWindow then background) vs FIFO (single full RecalcDirty), under a
// growing backlog of off-screen dirty formulas.
#include <benchmark/benchmark.h>

#include "workloads.h"

namespace dataspread::bench {
namespace {

struct Backlog {
  explicit Backlog(int64_t total_rows) {
    DataSpreadOptions opts;
    opts.auto_pump = false;
    ds = std::make_unique<DataSpread>(opts);
    sheet = ds->AddSheet("S").ValueOrDie();
    for (int64_t r = 0; r < total_rows; ++r) {
      (void)sheet->SetValue(r, 0, Value::Int(r));
      (void)sheet->SetFormula(r, 1,
                              "=A" + std::to_string(r + 1) + "*2+SUM(A" +
                                  std::to_string(r + 1) + ":A" +
                                  std::to_string(r + 1) + ")");
    }
  }
  void DirtyEverything() {
    for (int64_t r = 0; r < static_cast<int64_t>(ds->engine().formula_count());
         ++r) {
      ds->engine().MarkDirty(sheet, r, 1);
    }
  }
  std::unique_ptr<DataSpread> ds;
  Sheet* sheet;
};

constexpr int64_t kVisibleRows = 50;

void BM_ComputePriority_VisibleFirst(benchmark::State& state) {
  Backlog b(state.range(0));
  (void)b.ds->RecalcNow();
  for (auto _ : state) {
    state.PauseTiming();
    b.DirtyEverything();
    state.ResumeTiming();
    // Time-to-visible-consistent: only the pane needs to be recomputed.
    (void)b.ds->engine().RecalcWindow(b.sheet, 0, 0, kVisibleRows - 1, 2);
    state.PauseTiming();
    (void)b.ds->engine().RecalcDirty();  // background completion, untimed
    state.ResumeTiming();
  }
  state.SetLabel(std::to_string(state.range(0)) + " dirty formulas, pane=" +
                 std::to_string(kVisibleRows));
}
BENCHMARK(BM_ComputePriority_VisibleFirst)
    ->Arg(1000)->Arg(10000)->Arg(50000)->Unit(benchmark::kMillisecond);

void BM_ComputePriority_FifoBaseline(benchmark::State& state) {
  Backlog b(state.range(0));
  (void)b.ds->RecalcNow();
  for (auto _ : state) {
    state.PauseTiming();
    b.DirtyEverything();
    state.ResumeTiming();
    // FIFO baseline: the pane is consistent only after everything ran.
    (void)b.ds->engine().RecalcDirty();
  }
  state.SetLabel(std::to_string(state.range(0)) + " dirty formulas, pane=" +
                 std::to_string(kVisibleRows));
}
BENCHMARK(BM_ComputePriority_FifoBaseline)
    ->Arg(1000)->Arg(10000)->Arg(50000)->Unit(benchmark::kMillisecond);

// Scheduler mechanics: a visible task never waits behind background tasks.
void BM_ComputePriority_SchedulerBands(benchmark::State& state) {
  Scheduler scheduler;
  int64_t background = state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    int done = 0;
    for (int64_t i = 0; i < background; ++i) {
      scheduler.Enqueue(Priority::kBackground, [&done] { ++done; });
    }
    bool visible_ran = false;
    scheduler.Enqueue(Priority::kVisible,
                      [&visible_ran] { visible_ran = true; });
    state.ResumeTiming();
    // Time until the *visible* task completes.
    scheduler.RunOne();
    state.PauseTiming();
    benchmark::DoNotOptimize(visible_ran);
    scheduler.RunUntilIdle();
    state.ResumeTiming();
  }
  state.SetLabel(std::to_string(background) + " queued background tasks");
}
BENCHMARK(BM_ComputePriority_SchedulerBands)->Arg(10000);

}  // namespace
}  // namespace dataspread::bench
