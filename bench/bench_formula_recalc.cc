// Experiment C5 (paper §2.2 value-at-a-time + §3 shared computation):
// dirty-set dependency-driven recalculation vs full recompute, across chain /
// fan-in / grid topologies; plus shared-computation reuse for identical
// DBSQL cells.
#include <benchmark/benchmark.h>

#include "workloads.h"

namespace dataspread::bench {
namespace {

void BM_Recalc_ChainSingleEditDirty(benchmark::State& state) {
  int64_t n = state.range(0);
  DataSpreadOptions opts;
  opts.auto_pump = false;
  DataSpread ds(opts);
  Sheet* sheet = ds.AddSheet("S").ValueOrDie();
  BuildFormulaChain(&ds, sheet, n);
  int64_t v = 1;
  for (auto _ : state) {
    // Editing the middle of the chain dirties only the downstream half.
    (void)sheet->SetValue(n / 2, 0, Value::Int(++v));
    (void)ds.RecalcNow();
  }
  state.SetLabel("chain " + std::to_string(n) + ", edit at n/2");
}
BENCHMARK(BM_Recalc_ChainSingleEditDirty)
    ->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);

void BM_Recalc_ChainFullRecompute(benchmark::State& state) {
  int64_t n = state.range(0);
  DataSpreadOptions opts;
  opts.auto_pump = false;
  DataSpread ds(opts);
  Sheet* sheet = ds.AddSheet("S").ValueOrDie();
  BuildFormulaChain(&ds, sheet, n);
  for (auto _ : state) {
    // The naive engine recomputes everything after any edit.
    (void)ds.engine().RecalcAll();
  }
  state.SetLabel("chain " + std::to_string(n) + ", recompute all");
}
BENCHMARK(BM_Recalc_ChainFullRecompute)
    ->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);

void BM_Recalc_FanInAggregate(benchmark::State& state) {
  int64_t n = state.range(0);
  DataSpreadOptions opts;
  opts.auto_pump = false;
  DataSpread ds(opts);
  Sheet* sheet = ds.AddSheet("S").ValueOrDie();
  for (int64_t i = 0; i < n; ++i) {
    (void)sheet->SetValue(i, 0, Value::Int(1));
  }
  (void)sheet->SetFormula(0, 1, "=SUM(A1:A" + std::to_string(n) + ")");
  (void)ds.RecalcNow();
  int64_t v = 1;
  for (auto _ : state) {
    ++v;
    (void)sheet->SetValue((v - 1) % n, 0, Value::Int(v));
    (void)ds.RecalcNow();  // one aggregate recomputes over n inputs
  }
  state.SetLabel("fan-in " + std::to_string(n));
}
BENCHMARK(BM_Recalc_FanInAggregate)
    ->Arg(1000)->Arg(100000)->Unit(benchmark::kMillisecond);

void BM_Recalc_GridOfRowSums(benchmark::State& state) {
  // r x 8 literal grid, one SUM per row: an edit dirties exactly one SUM.
  int64_t rows = state.range(0);
  DataSpreadOptions opts;
  opts.auto_pump = false;
  DataSpread ds(opts);
  Sheet* sheet = ds.AddSheet("S").ValueOrDie();
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < 8; ++c) {
      (void)sheet->SetValue(r, c, Value::Int(c));
    }
    (void)sheet->SetFormula(r, 8,
                            "=SUM(A" + std::to_string(r + 1) + ":H" +
                                std::to_string(r + 1) + ")");
  }
  (void)ds.RecalcNow();
  int64_t v = 0;
  for (auto _ : state) {
    ++v;
    (void)sheet->SetValue(v % rows, 3, Value::Int(v));
    (void)ds.RecalcNow();
  }
  state.SetLabel(std::to_string(rows) + " row-sums, single edit");
}
BENCHMARK(BM_Recalc_GridOfRowSums)
    ->Arg(1000)->Arg(10000)->Unit(benchmark::kMicrosecond);

void BM_Recalc_SharedDbsqlComputation(benchmark::State& state) {
  // k identical DBSQL cells: the shared-result cache executes the SQL once.
  int64_t k = state.range(0);
  DataSpreadOptions opts;
  opts.auto_pump = false;
  DataSpread ds(opts);
  LoadWideTable(&ds.db(), "t", 10000);
  Sheet* sheet = ds.AddSheet("S").ValueOrDie();
  for (int64_t i = 0; i < k; ++i) {
    (void)sheet->SetFormula(i * 2, 4,
                            "=DBSQL(\"SELECT SUM(amount) FROM t\")");
  }
  ds.Pump();
  for (auto _ : state) {
    (void)ds.Sql("UPDATE t SET amount = amount + 1 WHERE id = 0");
    ds.Pump();
  }
  state.counters["sql_executions"] =
      static_cast<double>(ds.interface_manager().dbsql_executions());
  state.counters["cache_hits"] =
      static_cast<double>(ds.interface_manager().dbsql_cache_hits());
  state.SetLabel(std::to_string(k) + " identical DBSQL cells");
}
BENCHMARK(BM_Recalc_SharedDbsqlComputation)
    ->Arg(1)->Arg(8)->Arg(32)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dataspread::bench
