#include "workloads.h"

#include <random>

namespace dataspread::bench {

namespace {
const char* kTitleWords[] = {"Blue", "Night", "Iron", "Last", "Silent",
                             "Golden", "Lost", "Wild", "Broken", "Red"};
const char* kNameWords[] = {"Adams", "Brooks", "Chen", "Diaz", "Evans",
                            "Fischer", "Garcia", "Hoffman", "Ito", "Jones"};
}  // namespace

void LoadMovieWorkload(Database* db, size_t movies, uint32_t seed) {
  std::mt19937 rng(seed);
  auto movies_table =
      db->CreateTable("movies",
                      Schema({ColumnDef{"movieid", DataType::kInt, true},
                              ColumnDef{"title", DataType::kText, false},
                              ColumnDef{"year", DataType::kInt, false}}))
          .ValueOrDie();
  size_t actors = movies / 2 + 1;
  auto actors_table =
      db->CreateTable("actors",
                      Schema({ColumnDef{"actorid", DataType::kInt, true},
                              ColumnDef{"name", DataType::kText, false}}))
          .ValueOrDie();
  auto links_table =
      db->CreateTable("movies2actors",
                      Schema({ColumnDef{"movieid", DataType::kInt, false},
                              ColumnDef{"actorid", DataType::kInt, false}}))
          .ValueOrDie();
  for (size_t i = 0; i < movies; ++i) {
    std::string title = std::string(kTitleWords[rng() % 10]) + " " +
                        kTitleWords[rng() % 10] + " " + std::to_string(i);
    (void)movies_table->AppendRow(
        {Value::Int(static_cast<int64_t>(i)), Value::Text(title),
         Value::Int(static_cast<int64_t>(1950 + rng() % 75))});
  }
  for (size_t i = 0; i < actors; ++i) {
    std::string name = std::string(kNameWords[rng() % 10]) + " " +
                       std::to_string(i);
    (void)actors_table->AppendRow(
        {Value::Int(static_cast<int64_t>(i)), Value::Text(name)});
  }
  for (size_t i = 0; i < movies; ++i) {
    size_t cast = 1 + rng() % 4;
    for (size_t j = 0; j < cast; ++j) {
      (void)links_table->AppendRow(
          {Value::Int(static_cast<int64_t>(i)),
           Value::Int(static_cast<int64_t>(rng() % actors))});
    }
  }
}

void LoadWideTable(Database* db, const std::string& table_name, size_t rows,
                   uint32_t seed) {
  std::mt19937 rng(seed);
  auto table =
      db->CreateTable(table_name,
                      Schema({ColumnDef{"id", DataType::kInt, true},
                              ColumnDef{"v", DataType::kText, false},
                              ColumnDef{"amount", DataType::kReal, false}}))
          .ValueOrDie();
  for (size_t i = 0; i < rows; ++i) {
    (void)table->AppendRow(
        {Value::Int(static_cast<int64_t>(i)),
         Value::Text("row" + std::to_string(i)),
         Value::Real(static_cast<double>(rng() % 10000) / 100.0)});
  }
}

void FillSheetTable(Sheet* sheet, int64_t top, int64_t left, int64_t rows,
                    int64_t cols, bool header, uint32_t seed) {
  std::mt19937 rng(seed);
  int64_t r0 = top;
  if (header) {
    (void)sheet->SetValue(top, left, Value::Text("id"));
    if (cols > 1) (void)sheet->SetValue(top, left + 1, Value::Text("name"));
    for (int64_t c = 2; c < cols; ++c) {
      (void)sheet->SetValue(top, left + c,
                            Value::Text("v" + std::to_string(c - 1)));
    }
    r0 += 1;
  }
  for (int64_t r = 0; r < rows; ++r) {
    (void)sheet->SetValue(r0 + r, left, Value::Int(r));
    if (cols > 1) {
      (void)sheet->SetValue(r0 + r, left + 1,
                            Value::Text("n" + std::to_string(r)));
    }
    for (int64_t c = 2; c < cols; ++c) {
      (void)sheet->SetValue(r0 + r, left + c,
                            Value::Int(static_cast<int64_t>(rng() % 1000)));
    }
  }
}

void BuildFormulaChain(DataSpread* ds, Sheet* sheet, int64_t length) {
  for (int64_t i = 0; i < length; ++i) {
    (void)sheet->SetValue(i, 0, Value::Int(1));
  }
  (void)sheet->SetFormula(0, 1, "=A1");
  for (int64_t i = 1; i < length; ++i) {
    (void)sheet->SetFormula(
        i, 1, "=B" + std::to_string(i) + "+A" + std::to_string(i + 1));
  }
  (void)ds->RecalcNow();
}

}  // namespace dataspread::bench
