#include "workloads.h"

#include <cstdio>
#include <cstdlib>
#include <random>

#include <unistd.h>

namespace dataspread::bench {

namespace {
const char* kTitleWords[] = {"Blue", "Night", "Iron", "Last", "Silent",
                             "Golden", "Lost", "Wild", "Broken", "Red"};
const char* kNameWords[] = {"Adams", "Brooks", "Chen", "Diaz", "Evans",
                            "Fischer", "Garcia", "Hoffman", "Ito", "Jones"};

/// JSON string escaping for the small label/name strings we emit.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out.push_back(' ');
    } else {
      out.push_back(c);
    }
  }
  return out;
}
}  // namespace

storage::PagerConfig PagerConfigFromEnv(size_t default_cap) {
  storage::PagerConfig config;
  config.max_resident_pages = default_cap;
  if (const char* cap = std::getenv("DS_MAX_RESIDENT_PAGES")) {
    config.max_resident_pages = static_cast<size_t>(std::strtoull(cap, nullptr, 10));
  }
  if (const char* dir = std::getenv("DS_SPILL_DIR")) {
    static int counter = 0;
    config.spill_path = std::string(dir) + "/ds-bench-spill-" +
                        std::to_string(::getpid()) + "-" +
                        std::to_string(counter++) + ".bin";
  }
  return config;
}

size_t ExecBatchSizeFromEnv(size_t default_size) {
  if (const char* b = std::getenv("DS_EXEC_BATCH")) {
    return static_cast<size_t>(std::strtoull(b, nullptr, 10));
  }
  return default_size;
}

size_t ExecThreadsFromEnv(size_t default_threads) {
  if (const char* t = std::getenv("DS_EXEC_THREADS")) {
    return static_cast<size_t>(std::strtoull(t, nullptr, 10));
  }
  return default_threads;
}

namespace {

/// Google Benchmark re-invokes each benchmark function several times while
/// calibrating the iteration count, and every invocation reaches the
/// reporting tail. Writing immediately would record one line per calibration
/// trial; instead lines are keyed by (bench, run), later trials overwrite
/// earlier ones, and everything flushes once at process exit — exactly one
/// (final) record per run per bench execution.
class BenchJsonRegistry {
 public:
  void Record(const std::string& bench, const std::string& run,
              std::string line) {
    for (auto& entry : lines_) {
      if (entry.bench == bench && entry.run == run) {
        entry.line = std::move(line);
        return;
      }
    }
    lines_.push_back({bench, run, std::move(line)});
  }

  ~BenchJsonRegistry() {
    const char* dir = std::getenv("DS_BENCH_JSON_DIR");
    std::string base = std::string(dir != nullptr ? dir : ".") + "/BENCH_";
    for (const auto& entry : lines_) {
      std::FILE* f = std::fopen((base + entry.bench + ".json").c_str(), "ab");
      if (f == nullptr) continue;  // recording must never break a bench run
      std::fputs(entry.line.c_str(), f);
      std::fclose(f);
    }
  }

 private:
  struct Entry {
    std::string bench, run, line;
  };
  std::vector<Entry> lines_;  // insertion order = registration order
};

}  // namespace

void AppendBenchJsonLine(
    const std::string& bench, const std::string& run,
    const std::vector<std::pair<std::string, double>>& fields) {
  static BenchJsonRegistry registry;  // flushed by its destructor at exit
  std::string line = "{\"bench\":\"" + JsonEscape(bench) + "\",\"run\":\"" +
                     JsonEscape(run) + "\"";
  char buf[64];
  for (const auto& [key, value] : fields) {
    // Counters are exact integers (faults, bytes) — keep every digit; only
    // genuinely fractional values (timings) go through floating formatting.
    if (value == static_cast<double>(static_cast<long long>(value))) {
      std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(value));
    } else {
      std::snprintf(buf, sizeof buf, "%.17g", value);
    }
    line += ",\"" + JsonEscape(key) + "\":" + buf;
  }
  line += "}\n";
  registry.Record(bench, run, std::move(line));
}

double HitRate(const storage::PagerStats& before,
               const storage::PagerStats& after) {
  double accesses =
      static_cast<double>((after.slot_reads - before.slot_reads) +
                          (after.slot_writes - before.slot_writes));
  if (accesses <= 0) return 1.0;
  double faults = static_cast<double>(after.faults - before.faults);
  double served = accesses - faults;
  return served > 0 ? served / accesses : 0.0;
}

void ReportPoolCountersAndJson(
    benchmark::State& state, storage::Pager& pager, const std::string& bench,
    const std::string& run, const storage::PagerStats& before,
    std::vector<std::pair<std::string, double>> fields) {
  const storage::PagerStats& stats = pager.stats();
  state.counters["faults"] = static_cast<double>(stats.faults);
  state.counters["readaheads"] = static_cast<double>(stats.readaheads);
  state.counters["evictions"] = static_cast<double>(stats.evictions);
  state.counters["spill_bytes"] =
      static_cast<double>(stats.spill_bytes_written + stats.spill_bytes_read);
  state.counters["hit_rate"] = HitRate(before, stats);
  fields.insert(
      fields.begin(),
      {{"iterations", static_cast<double>(state.iterations())},
       {"pool", static_cast<double>(pager.max_resident_pages())},
       {"faults", state.counters["faults"]},
       {"readaheads", state.counters["readaheads"]},
       {"evictions", state.counters["evictions"]},
       {"scan_evictions", static_cast<double>(stats.scan_evictions)},
       {"spill_bytes", state.counters["spill_bytes"]},
       {"hit_rate", state.counters["hit_rate"]}});
  AppendBenchJsonLine(bench, run, fields);
}

void LoadMovieWorkload(Database* db, size_t movies, uint32_t seed) {
  std::mt19937 rng(seed);
  auto movies_table =
      db->CreateTable("movies",
                      Schema({ColumnDef{"movieid", DataType::kInt, true},
                              ColumnDef{"title", DataType::kText, false},
                              ColumnDef{"year", DataType::kInt, false}}))
          .ValueOrDie();
  size_t actors = movies / 2 + 1;
  auto actors_table =
      db->CreateTable("actors",
                      Schema({ColumnDef{"actorid", DataType::kInt, true},
                              ColumnDef{"name", DataType::kText, false}}))
          .ValueOrDie();
  auto links_table =
      db->CreateTable("movies2actors",
                      Schema({ColumnDef{"movieid", DataType::kInt, false},
                              ColumnDef{"actorid", DataType::kInt, false}}))
          .ValueOrDie();
  for (size_t i = 0; i < movies; ++i) {
    std::string title = std::string(kTitleWords[rng() % 10]) + " " +
                        kTitleWords[rng() % 10] + " " + std::to_string(i);
    (void)movies_table->AppendRow(
        {Value::Int(static_cast<int64_t>(i)), Value::Text(title),
         Value::Int(static_cast<int64_t>(1950 + rng() % 75))});
  }
  for (size_t i = 0; i < actors; ++i) {
    std::string name = std::string(kNameWords[rng() % 10]) + " " +
                       std::to_string(i);
    (void)actors_table->AppendRow(
        {Value::Int(static_cast<int64_t>(i)), Value::Text(name)});
  }
  for (size_t i = 0; i < movies; ++i) {
    size_t cast = 1 + rng() % 4;
    for (size_t j = 0; j < cast; ++j) {
      (void)links_table->AppendRow(
          {Value::Int(static_cast<int64_t>(i)),
           Value::Int(static_cast<int64_t>(rng() % actors))});
    }
  }
}

void LoadWideTable(Database* db, const std::string& table_name, size_t rows,
                   uint32_t seed) {
  std::mt19937 rng(seed);
  auto table =
      db->CreateTable(table_name,
                      Schema({ColumnDef{"id", DataType::kInt, true},
                              ColumnDef{"v", DataType::kText, false},
                              ColumnDef{"amount", DataType::kReal, false}}))
          .ValueOrDie();
  for (size_t i = 0; i < rows; ++i) {
    (void)table->AppendRow(
        {Value::Int(static_cast<int64_t>(i)),
         Value::Text("row" + std::to_string(i)),
         Value::Real(static_cast<double>(rng() % 10000) / 100.0)});
  }
}

void FillSheetTable(Sheet* sheet, int64_t top, int64_t left, int64_t rows,
                    int64_t cols, bool header, uint32_t seed) {
  std::mt19937 rng(seed);
  int64_t r0 = top;
  if (header) {
    (void)sheet->SetValue(top, left, Value::Text("id"));
    if (cols > 1) (void)sheet->SetValue(top, left + 1, Value::Text("name"));
    for (int64_t c = 2; c < cols; ++c) {
      (void)sheet->SetValue(top, left + c,
                            Value::Text("v" + std::to_string(c - 1)));
    }
    r0 += 1;
  }
  for (int64_t r = 0; r < rows; ++r) {
    (void)sheet->SetValue(r0 + r, left, Value::Int(r));
    if (cols > 1) {
      (void)sheet->SetValue(r0 + r, left + 1,
                            Value::Text("n" + std::to_string(r)));
    }
    for (int64_t c = 2; c < cols; ++c) {
      (void)sheet->SetValue(r0 + r, left + c,
                            Value::Int(static_cast<int64_t>(rng() % 1000)));
    }
  }
}

void BuildFormulaChain(DataSpread* ds, Sheet* sheet, int64_t length) {
  for (int64_t i = 0; i < length; ++i) {
    (void)sheet->SetValue(i, 0, Value::Int(1));
  }
  (void)sheet->SetFormula(0, 1, "=A1");
  for (int64_t i = 1; i < length; ++i) {
    (void)sheet->SetFormula(
        i, 1, "=B" + std::to_string(i) + "+A" + std::to_string(i + 1));
  }
  (void)ds->RecalcNow();
}

}  // namespace dataspread::bench
