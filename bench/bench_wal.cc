// Durability costs (DESIGN.md §6): WAL append throughput — buffered vs
// fsync-per-batch — and recovery time per MB of replayed log.
//
//   BM_Wal_Append_Buffered    — redo generation cost alone: records are
//                               framed, CRC'd, and drained to the OS, but
//                               fsync happens only at the checkpoint the
//                               timing loop takes when the log passes the
//                               auto-checkpoint bound.
//   BM_Wal_Append_SyncEach    — a durability barrier after every batch of
//                               rows ("commit" cadence): the fsync ceiling.
//   BM_Wal_Recovery           — Pager construction over a crashed pair with
//                               ~arg MB of redo tail; manual timing, with
//                               the file copies kept outside the clock.
//                               Reports recovery_ms_per_mb — the number the
//                               ci/check.sh recovery smoke gates.
//
// Every run appends a JSON line to BENCH_wal.json (DS_BENCH_JSON_DIR) with
// wal_records / wal_bytes / wal_syncs and the derived throughput, the
// cross-PR trajectory for the durability path.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>

#include <unistd.h>

#include "storage/pager.h"
#include "workloads.h"

namespace dataspread {
namespace {

using storage::FileId;
using storage::Pager;
using storage::PagerConfig;

constexpr uint64_t kSlots = Pager::kSlotsPerPage;
constexpr uint64_t kBatchSlots = 1024;

/// A scratch durable pair under DS_SPILL_DIR (or /tmp), unique per use;
/// removed on destruction — durable files outlive pagers by design, so the
/// bench cleans up after itself.
struct ScratchPair {
  explicit ScratchPair(const std::string& tag) {
    const char* dir = std::getenv("DS_SPILL_DIR");
    std::string base = std::string(dir != nullptr ? dir : "/tmp") +
                       "/ds-bench-wal-" + std::to_string(::getpid()) + "-" +
                       tag;
    wal = base + ".wal";
    spill = base + ".spill";
    Remove();
  }
  ~ScratchPair() { Remove(); }
  void Remove() {
    std::remove(wal.c_str());
    std::remove(spill.c_str());
  }
  PagerConfig Config(size_t cap) const {
    PagerConfig config;
    config.max_resident_pages = cap;
    config.spill_path = spill;
    config.wal_path = wal;
    config.durable_spill = true;
    return config;
  }
  std::string wal, spill;
};

Value BenchValue(uint64_t s) {
  if (s % 8 == 0) return Value::Text("payload-" + std::to_string(s));
  return Value::Int(static_cast<int64_t>(s) * 17);
}

void RunAppend(benchmark::State& state, bool sync_each,
               const std::string& run) {
  ScratchPair pair(run);
  PagerConfig config = pair.Config(/*cap=*/256);
  // Keep the log (and memory of the test machine) bounded: checkpoint once
  // 64 MB of redo accumulates. The checkpoint cost is part of the durable
  // write path and stays inside the timing loop on purpose.
  config.wal_auto_checkpoint_bytes = 64ull << 20;
  Pager pager(config);
  FileId f = pager.CreateFile();
  storage::PagerStats before = pager.stats();
  uint64_t slot = 0;
  for (auto _ : state) {
    for (uint64_t k = 0; k < kBatchSlots; ++k, ++slot) {
      pager.Write(f, slot, BenchValue(slot));
    }
    if (sync_each) pager.SyncWal();
    benchmark::DoNotOptimize(slot);
  }
  storage::PagerStats after = pager.stats();
  uint64_t records = after.wal_records - before.wal_records;
  uint64_t bytes = after.wal_bytes - before.wal_bytes;
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kBatchSlots));
  state.SetBytesProcessed(static_cast<int64_t>(bytes));
  state.counters["wal_records"] = static_cast<double>(records);
  state.counters["wal_bytes"] = static_cast<double>(bytes);
  state.counters["wal_syncs"] =
      static_cast<double>(after.wal_syncs - before.wal_syncs);
  bench::AppendBenchJsonLine(
      "wal", "Append/" + run,
      {{"iterations", static_cast<double>(state.iterations())},
       {"slots", static_cast<double>(state.iterations() *
                                     static_cast<int64_t>(kBatchSlots))},
       {"wal_records", static_cast<double>(records)},
       {"wal_bytes", static_cast<double>(bytes)},
       {"wal_syncs", static_cast<double>(after.wal_syncs - before.wal_syncs)},
       {"spill_dead_bytes", static_cast<double>(after.spill_dead_bytes)}});
  pager.CrashForTesting();  // skip the destructor checkpoint: bench is done
}

void BM_Wal_Append_Buffered(benchmark::State& state) {
  RunAppend(state, /*sync_each=*/false, "buffered");
}
BENCHMARK(BM_Wal_Append_Buffered)->Unit(benchmark::kMicrosecond);

void BM_Wal_Append_SyncEach(benchmark::State& state) {
  RunAppend(state, /*sync_each=*/true, "sync_each");
}
BENCHMARK(BM_Wal_Append_SyncEach)->Unit(benchmark::kMicrosecond);

std::string ReadAll(const std::string& path) {
  std::string out;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return out;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

void WriteAll(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return;
  std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
}

/// Recovery cost: replays a crashed pair whose log tail holds ~range(0) MB
/// of redo. Manual time measures only the Pager constructor (the copies
/// that reset the pair between iterations stay off the clock).
void BM_Wal_Recovery(benchmark::State& state) {
  const uint64_t target_bytes = static_cast<uint64_t>(state.range(0)) << 20;
  ScratchPair pair("recovery-" + std::to_string(state.range(0)));
  {
    Pager pager(pair.Config(/*cap=*/256));
    FileId f = pager.CreateFile();
    uint64_t slot = 0;
    while (pager.wal()->bytes_since_checkpoint() < target_bytes) {
      pager.Write(f, slot, BenchValue(slot));
      ++slot;
    }
    pager.CrashForTesting();
  }
  const std::string wal_image = ReadAll(pair.wal);
  const std::string spill_image = ReadAll(pair.spill);
  const double mb = static_cast<double>(wal_image.size()) / (1 << 20);

  double total_ms = 0;
  uint64_t replayed = 0;
  for (auto _ : state) {
    WriteAll(pair.wal, wal_image);
    WriteAll(pair.spill, spill_image);
    auto t0 = std::chrono::steady_clock::now();
    Pager pager(pair.Config(/*cap=*/256));
    auto t1 = std::chrono::steady_clock::now();
    double seconds = std::chrono::duration<double>(t1 - t0).count();
    state.SetIterationTime(seconds);
    total_ms += seconds * 1e3;
    replayed = pager.recovery_records();
    pager.CrashForTesting();  // recovery itself is what is being timed
  }
  double ms_per_mb =
      state.iterations() > 0 && mb > 0
          ? total_ms / static_cast<double>(state.iterations()) / mb
          : 0;
  state.counters["wal_mb"] = mb;
  state.counters["recovery_ms_per_mb"] = ms_per_mb;
  state.counters["replayed_records"] = static_cast<double>(replayed);
  bench::AppendBenchJsonLine(
      "wal", "Recovery/" + std::to_string(state.range(0)) + "mb",
      {{"iterations", static_cast<double>(state.iterations())},
       {"wal_mb", mb},
       {"replayed_records", static_cast<double>(replayed)},
       {"recovery_ms_per_mb", ms_per_mb}});
}
BENCHMARK(BM_Wal_Recovery)->Arg(1)->Arg(8)->UseManualTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dataspread
