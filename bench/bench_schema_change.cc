// Experiment C2 (paper §3 Relational Storage Manager): "data is structured
// along a collection of attribute groups, thereby radically reducing the disk
// blocks that need an update during a schema change." Series: ALTER TABLE
// ADD/DROP COLUMN latency and dirty-block counts per storage model vs rows;
// plus the single-tuple-update yardstick the paper compares against.
#include <benchmark/benchmark.h>

#include "storage/table_storage.h"
#include "workloads.h"

namespace dataspread::bench {
namespace {

std::unique_ptr<TableStorage> MakeLoaded(StorageModel model, size_t rows,
                                         size_t pool_cap = 0) {
  auto s = CreateStorage(model, 4, nullptr, PagerConfigFromEnv(pool_cap));
  s->pager().set_accounting_enabled(false);
  for (size_t i = 0; i < rows; ++i) {
    (void)s->AppendRow({Value::Int(static_cast<int64_t>(i)), Value::Int(1),
                        Value::Int(2), Value::Int(3)});
  }
  return s;
}

void RunAddColumn(benchmark::State& state, StorageModel model,
                  size_t pool_cap = 0) {
  size_t rows = static_cast<size_t>(state.range(0));
  auto s = MakeLoaded(model, rows, pool_cap);
  for (auto _ : state) {
    (void)s->AddColumn(Value::Int(0));
    state.PauseTiming();
    (void)s->DropColumn(s->num_columns() - 1);
    state.ResumeTiming();
  }
  // Blocks dirtied by one ADD COLUMN (measured outside the timing loop),
  // straight from the pager's distinct-page accounting.
  storage::Pager& pager = s->pager();
  pager.set_accounting_enabled(true);
  pager.BeginEpoch();
  storage::PagerStats before = pager.stats();
  (void)s->AddColumn(Value::Int(0));
  state.counters["dirty_blocks"] =
      static_cast<double>(pager.EpochPagesWritten());
  state.counters["pages_read"] = static_cast<double>(pager.EpochPagesRead());
  state.counters["resident_pages"] =
      static_cast<double>(pager.resident_pages());
  ReportPoolCountersAndJson(
      state, pager, "schema_change",
      "AddColumn/" + std::string(StorageModelName(model)) + "/" +
          std::to_string(rows) +
          (pager.max_resident_pages() > 0
               ? "/pool" + std::to_string(pager.max_resident_pages())
               : ""),
      before,
      {{"dirty_blocks", state.counters["dirty_blocks"]},
       {"pages_read", state.counters["pages_read"]},
       {"resident_pages", state.counters["resident_pages"]}});
  state.SetLabel(std::string(StorageModelName(model)) + ", " +
                 std::to_string(rows) + " rows" +
                 (pager.max_resident_pages() > 0
                      ? ", pool=" + std::to_string(pager.max_resident_pages())
                      : ""));
}

void BM_SchemaChange_AddColumn_Row(benchmark::State& state) {
  RunAddColumn(state, StorageModel::kRow);
}
void BM_SchemaChange_AddColumn_Column(benchmark::State& state) {
  RunAddColumn(state, StorageModel::kColumn);
}
void BM_SchemaChange_AddColumn_Hybrid(benchmark::State& state) {
  RunAddColumn(state, StorageModel::kHybrid);
}
void BM_SchemaChange_AddColumn_Rcv(benchmark::State& state) {
  RunAddColumn(state, StorageModel::kRcv);
}
BENCHMARK(BM_SchemaChange_AddColumn_Row)
    ->Arg(1000)->Arg(100000)->Arg(1000000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SchemaChange_AddColumn_Column)
    ->Arg(1000)->Arg(100000)->Arg(1000000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SchemaChange_AddColumn_Hybrid)
    ->Arg(1000)->Arg(100000)->Arg(1000000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SchemaChange_AddColumn_Rcv)
    ->Arg(1000)->Arg(100000)->Arg(1000000)->Unit(benchmark::kMillisecond);

// The paper's schema-change claim under real memory pressure: the same ALTER
// on a million-row table behind a 256-frame pool. Hybrid still writes only
// fresh pages (evicting almost nothing it has to fault back); the row store
// restrides the whole spilled heap through the tiny pool.
void BM_SchemaChange_AddColumn_Row_BoundedPool(benchmark::State& state) {
  RunAddColumn(state, StorageModel::kRow, /*pool_cap=*/256);
}
void BM_SchemaChange_AddColumn_Hybrid_BoundedPool(benchmark::State& state) {
  RunAddColumn(state, StorageModel::kHybrid, /*pool_cap=*/256);
}
BENCHMARK(BM_SchemaChange_AddColumn_Row_BoundedPool)
    ->Arg(1000000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SchemaChange_AddColumn_Hybrid_BoundedPool)
    ->Arg(1000000)->Unit(benchmark::kMillisecond);

// Drop of a previously added column: pure metadata for hybrid.
void RunDropAddedColumn(benchmark::State& state, StorageModel model) {
  size_t rows = static_cast<size_t>(state.range(0));
  auto s = MakeLoaded(model, rows);
  for (auto _ : state) {
    state.PauseTiming();
    (void)s->AddColumn(Value::Int(0));
    state.ResumeTiming();
    (void)s->DropColumn(s->num_columns() - 1);
  }
  state.SetLabel(std::string(StorageModelName(model)) + ", " +
                 std::to_string(rows) + " rows");
}
void BM_SchemaChange_DropAddedColumn_Row(benchmark::State& state) {
  RunDropAddedColumn(state, StorageModel::kRow);
}
void BM_SchemaChange_DropAddedColumn_Hybrid(benchmark::State& state) {
  RunDropAddedColumn(state, StorageModel::kHybrid);
}
BENCHMARK(BM_SchemaChange_DropAddedColumn_Row)
    ->Arg(100000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SchemaChange_DropAddedColumn_Hybrid)
    ->Arg(100000)->Unit(benchmark::kMillisecond);

// The paper's yardstick: "the database should be able to handle this schema
// change with an efficiency similar to tuple updates."
void BM_SchemaChange_SingleTupleUpdateYardstick(benchmark::State& state) {
  size_t rows = static_cast<size_t>(state.range(0));
  auto s = MakeLoaded(StorageModel::kHybrid, rows);
  size_t r = 0;
  for (auto _ : state) {
    (void)s->Set(r % rows, 1, Value::Int(static_cast<int64_t>(r)));
    ++r;
  }
  state.SetLabel("hybrid, " + std::to_string(rows) + " rows");
}
BENCHMARK(BM_SchemaChange_SingleTupleUpdateYardstick)
    ->Arg(1000000)->Unit(benchmark::kMillisecond);

// End-to-end: ALTER TABLE through the SQL layer on the hybrid engine.
void BM_SchemaChange_SqlAlterTable(benchmark::State& state) {
  size_t rows = static_cast<size_t>(state.range(0));
  DataSpreadOptions opts;
  opts.auto_pump = false;
  opts.pager = PagerConfigFromEnv();
  DataSpread ds(opts);
  LoadWideTable(&ds.db(), "t", rows);
  int gen = 0;
  for (auto _ : state) {
    std::string col = "extra" + std::to_string(gen++);
    (void)ds.Sql("ALTER TABLE t ADD COLUMN " + col + " INT DEFAULT 0");
    state.PauseTiming();
    (void)ds.Sql("ALTER TABLE t DROP COLUMN " + col);
    state.ResumeTiming();
  }
  // Whole-database pager view of one ALTER TABLE: all tables share the pool.
  storage::Pager& pager = ds.db().pager();
  pager.BeginEpoch();
  storage::PagerStats before = pager.stats();
  (void)ds.Sql("ALTER TABLE t ADD COLUMN extra_probe INT DEFAULT 0");
  state.counters["dirty_blocks"] =
      static_cast<double>(pager.EpochPagesWritten());
  state.counters["resident_pages"] =
      static_cast<double>(pager.resident_pages());
  ReportPoolCountersAndJson(
      state, pager, "schema_change",
      "SqlAlterTable/hybrid/" + std::to_string(rows), before,
      {{"dirty_blocks", state.counters["dirty_blocks"]},
       {"resident_pages", state.counters["resident_pages"]}});
  state.SetLabel(std::to_string(rows) + " rows (hybrid via SQL)");
}
BENCHMARK(BM_SchemaChange_SqlAlterTable)
    ->Arg(100000)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dataspread::bench
