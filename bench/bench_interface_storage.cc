// Experiment C6 (paper §3 Interface Storage Manager): cells "grouped by
// proximity ... indexed by a two-dimensional indexing method" to "enable
// efficient retrieval for a given range". Series: pane-sized range reads and
// writes on sparse sheets, tiled grid index vs a flat ordered-map baseline.
#include <benchmark/benchmark.h>

#include <map>
#include <random>

#include "sheet/sheet.h"

namespace dataspread {
namespace {

constexpr int64_t kSpread = 100000;  // cells scattered over 100k x 100 area

Sheet MakeSparseSheet(size_t cells) {
  Sheet sheet("S", 64, 64);
  std::mt19937 rng(11);
  for (size_t i = 0; i < cells; ++i) {
    (void)sheet.SetValue(static_cast<int64_t>(rng() % kSpread),
                         static_cast<int64_t>(rng() % 100),
                         Value::Int(static_cast<int64_t>(i)));
  }
  return sheet;
}

void BM_InterfaceStorage_PaneReadTiled(benchmark::State& state) {
  Sheet sheet = MakeSparseSheet(static_cast<size_t>(state.range(0)));
  std::mt19937 rng(13);
  for (auto _ : state) {
    int64_t top = static_cast<int64_t>(rng() % kSpread);
    int64_t sum = 0;
    sheet.VisitRange(top, 0, top + 49, 9,
                     [&](int64_t, int64_t, const Cell& cell) {
                       if (cell.value.type() == DataType::kInt) {
                         sum += cell.value.int_value();
                       }
                     });
    benchmark::DoNotOptimize(sum);
  }
  state.SetLabel(std::to_string(state.range(0)) + " cells, 50x10 pane");
}
BENCHMARK(BM_InterfaceStorage_PaneReadTiled)
    ->Arg(10000)->Arg(100000)->Arg(500000);

// Baseline: one flat ordered map over (row, col) — range read must scan the
// row span with lower_bound per row or the whole map.
void BM_InterfaceStorage_PaneReadFlatMap(benchmark::State& state) {
  std::map<std::pair<int64_t, int64_t>, Value> cells;
  std::mt19937 rng(11);
  for (int64_t i = 0; i < state.range(0); ++i) {
    cells[{static_cast<int64_t>(rng() % kSpread),
           static_cast<int64_t>(rng() % 100)}] = Value::Int(i);
  }
  std::mt19937 probe(13);
  for (auto _ : state) {
    int64_t top = static_cast<int64_t>(probe() % kSpread);
    int64_t sum = 0;
    auto it = cells.lower_bound({top, 0});
    auto end = cells.lower_bound({top + 50, 0});
    for (; it != end; ++it) {
      if (it->first.second < 10 && it->second.type() == DataType::kInt) {
        sum += it->second.int_value();
      }
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetLabel(std::to_string(state.range(0)) + " cells, 50x10 pane");
}
BENCHMARK(BM_InterfaceStorage_PaneReadFlatMap)
    ->Arg(10000)->Arg(100000)->Arg(500000);

void BM_InterfaceStorage_PointWrites(benchmark::State& state) {
  Sheet sheet("S", 64, 64);
  std::mt19937 rng(17);
  int64_t i = 0;
  for (auto _ : state) {
    (void)sheet.SetValue(static_cast<int64_t>(rng() % kSpread),
                         static_cast<int64_t>(rng() % 100), Value::Int(++i));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InterfaceStorage_PointWrites);

void BM_InterfaceStorage_RowInsertHugeSheet(benchmark::State& state) {
  // The positional-axis payoff: middle insertion with a million rows.
  Sheet sheet("S", state.range(0), 8);
  for (int64_t r = 0; r < state.range(0); r += 997) {
    (void)sheet.SetValue(r, 3, Value::Int(r));
  }
  for (auto _ : state) {
    (void)sheet.InsertRows(state.range(0) / 2, 1);
  }
  state.SetLabel(std::to_string(state.range(0)) + "-row sheet");
}
BENCHMARK(BM_InterfaceStorage_RowInsertHugeSheet)
    ->Arg(1000)->Arg(100000)->Arg(1000000);

}  // namespace
}  // namespace dataspread
