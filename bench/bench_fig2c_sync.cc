// Experiment F2c (paper Figure 2c): two-way synchronization latency.
// Series: (i) front-end edit -> keyed UPDATE -> refreshed region + dependent
// DBSQL; (ii) back-end UPDATE -> sheet refresh. Swept over bound table size.
#include <benchmark/benchmark.h>

#include "workloads.h"

namespace dataspread::bench {
namespace {

struct SyncFixture {
  explicit SyncFixture(size_t rows) {
    DataSpreadOptions opts;
    opts.auto_pump = false;
    opts.binding_window = 64;
    ds = std::make_unique<DataSpread>(opts);
    LoadWideTable(&ds->db(), "t", rows);
    sheet = ds->AddSheet("S").ValueOrDie();
    (void)ds->ImportTable("S", "A1", "t");
    // A dependent aggregate over the bound amount column (Figure 2c's DBSQL
    // region that must update "immediately").
    (void)ds->SetCellAt(sheet, 0, 5, "=DBSQL(\"SELECT SUM(amount) FROM t\")");
    ds->Pump();
  }
  std::unique_ptr<DataSpread> ds;
  Sheet* sheet = nullptr;
};

void BM_Fig2c_FrontEndEditPropagation(benchmark::State& state) {
  SyncFixture fx(static_cast<size_t>(state.range(0)));
  double amount = 1.0;
  for (auto _ : state) {
    amount += 1.0;
    // Edit a bound cell (row 2 = table position 1, amount column).
    (void)fx.ds->SetCellAt(fx.sheet, 2, 2, std::to_string(amount));
    fx.ds->Pump();
    benchmark::DoNotOptimize(fx.ds->GetValueAt(fx.sheet, 0, 5));
  }
  state.SetLabel(std::to_string(state.range(0)) + " bound rows");
}
BENCHMARK(BM_Fig2c_FrontEndEditPropagation)
    ->Arg(100)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void BM_Fig2c_BackEndUpdatePropagation(benchmark::State& state) {
  SyncFixture fx(static_cast<size_t>(state.range(0)));
  double amount = 1.0;
  for (auto _ : state) {
    amount += 1.0;
    (void)fx.ds->Sql("UPDATE t SET amount = " + std::to_string(amount) +
                     " WHERE id = 3");
    fx.ds->Pump();
    benchmark::DoNotOptimize(fx.ds->GetValueAt(fx.sheet, 4, 2));
  }
  state.SetLabel(std::to_string(state.range(0)) + " bound rows");
}
BENCHMARK(BM_Fig2c_BackEndUpdatePropagation)
    ->Arg(100)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void BM_Fig2c_BackEndInsertBurst(benchmark::State& state) {
  // Many inserts coalescing into one binding refresh per pump.
  SyncFixture fx(static_cast<size_t>(state.range(0)));
  int64_t next_id = 10000000;
  for (auto _ : state) {
    for (int i = 0; i < 10; ++i) {
      (void)fx.ds->Sql("INSERT INTO t VALUES (" + std::to_string(next_id++) +
                       ", 'x', 1.0)");
    }
    fx.ds->Pump();
  }
  state.SetLabel(std::to_string(state.range(0)) +
                 " bound rows, 10 inserts/iter");
}
BENCHMARK(BM_Fig2c_BackEndInsertBurst)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dataspread::bench
