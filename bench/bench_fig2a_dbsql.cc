// Experiment F2a (paper Figure 2a): DBSQL querying three relations with
// relative cell references (RANGEVALUE). Series: latency of entering and
// computing the DBSQL cell vs database size; plus the re-parameterization
// latency when the referenced cell changes.
#include <benchmark/benchmark.h>

#include <chrono>

#include "workloads.h"

namespace dataspread::bench {
namespace {

void BM_Fig2a_DbsqlJoinWithRangeValue(benchmark::State& state) {
  size_t movies = static_cast<size_t>(state.range(0));
  DataSpreadOptions opts;
  opts.auto_pump = false;
  // Bounded-pool runs (DS_MAX_RESIDENT_PAGES): the three relations share one
  // capped pager, so the join's block traffic shows up as faults/evictions.
  opts.pager = PagerConfigFromEnv();
  DataSpread ds(opts);
  LoadMovieWorkload(&ds.db(), movies);
  Sheet* sheet = ds.AddSheet("S").ValueOrDie();
  (void)ds.SetCellAt(sheet, 0, 1, "1980");  // B1: year threshold
  ds.Pump();
  const std::string formula =
      "=DBSQL(\"SELECT title, name FROM movies NATURAL JOIN movies2actors "
      "NATURAL JOIN actors WHERE year >= RANGEVALUE(B1) "
      "ORDER BY title LIMIT 8\")";
  for (auto _ : state) {
    (void)ds.SetCellAt(sheet, 2, 1, formula);
    ds.Pump();
    benchmark::DoNotOptimize(ds.GetValueAt(sheet, 2, 1));
    state.PauseTiming();
    (void)ds.SetCellAt(sheet, 2, 1, "");  // reset for the next iteration
    ds.Pump();
    state.ResumeTiming();
  }
  // Block-level cost of one DBSQL evaluation against the database's shared
  // pager pool (all three relations draw from it).
  storage::Pager& pager = ds.db().pager();
  pager.BeginEpoch();
  storage::PagerStats before = pager.stats();
  auto t0 = std::chrono::steady_clock::now();
  (void)ds.SetCellAt(sheet, 2, 1, formula);
  ds.Pump();
  auto t1 = std::chrono::steady_clock::now();
  double op_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
          t1 - t0)
          .count();
  state.counters["op_ms"] = op_ms;
  state.counters["rows_per_s"] =
      op_ms > 0 ? static_cast<double>(movies) / (op_ms / 1000.0) : 0.0;
  state.counters["pages_read"] = static_cast<double>(pager.EpochPagesRead());
  state.counters["pages_written"] =
      static_cast<double>(pager.EpochPagesWritten());
  state.counters["resident_pages"] =
      static_cast<double>(pager.resident_pages());
  ReportPoolCountersAndJson(
      state, pager, "fig2a_dbsql",
      "DbsqlJoinWithRangeValue/" + std::to_string(movies), before,
      {{"op_ms", op_ms},
       {"rows_per_s", state.counters["rows_per_s"]},
       {"pages_read", state.counters["pages_read"]},
       {"pages_written", state.counters["pages_written"]},
       {"resident_pages", state.counters["resident_pages"]}});
  state.SetLabel(std::to_string(movies) + " movies");
}
BENCHMARK(BM_Fig2a_DbsqlJoinWithRangeValue)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void BM_Fig2a_ReparameterizeViaCellEdit(benchmark::State& state) {
  size_t movies = static_cast<size_t>(state.range(0));
  DataSpreadOptions opts;
  opts.auto_pump = false;
  DataSpread ds(opts);
  LoadMovieWorkload(&ds.db(), movies);
  Sheet* sheet = ds.AddSheet("S").ValueOrDie();
  (void)ds.SetCellAt(sheet, 0, 1, "1980");
  (void)ds.SetCellAt(
      sheet, 2, 1,
      "=DBSQL(\"SELECT title FROM movies WHERE year >= RANGEVALUE(B1) "
      "ORDER BY title LIMIT 8\")");
  ds.Pump();
  int year = 1960;
  for (auto _ : state) {
    year = 1960 + (year - 1959) % 40;  // vary the parameter each iteration
    (void)ds.SetCellAt(sheet, 0, 1, std::to_string(year));
    ds.Pump();
    benchmark::DoNotOptimize(ds.GetValueAt(sheet, 2, 1));
  }
  state.SetLabel(std::to_string(movies) + " movies");
}
BENCHMARK(BM_Fig2a_ReparameterizeViaCellEdit)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dataspread::bench
