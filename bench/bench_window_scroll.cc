// Experiment C1 (intro claim): spreadsheets die "beyond a few 100s of
// thousands of rows"; DataSpread's pane stays responsive because "the burden
// of supplying or refreshing the current window is placed on the relational
// database". Series: pane-move latency vs table size, DataSpread windowed
// fetch vs an Excel-like baseline that materializes the whole table.
#include <benchmark/benchmark.h>

#include <random>

#include "workloads.h"

namespace dataspread::bench {
namespace {

void BM_WindowScroll_DataSpreadPane(benchmark::State& state) {
  size_t rows = static_cast<size_t>(state.range(0));
  DataSpreadOptions opts;
  opts.auto_pump = false;
  opts.binding_window = 64;
  opts.viewport_rows = 50;
  DataSpread ds(opts);
  LoadWideTable(&ds.db(), "t", rows);
  Sheet* sheet = ds.AddSheet("S").ValueOrDie();
  (void)ds.ImportTable("S", "A1", "t");
  ds.Pump();
  std::mt19937 rng(1);
  for (auto _ : state) {
    int64_t top = static_cast<int64_t>(rng() % rows);
    (void)ds.ScrollTo("S", top, 0);
    ds.Pump();
    benchmark::DoNotOptimize(ds.GetValueAt(sheet, top, 0));
  }
  state.SetLabel(std::to_string(rows) + " rows, random pans");
}
BENCHMARK(BM_WindowScroll_DataSpreadPane)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Arg(1000000)
    ->Unit(benchmark::kMicrosecond);

// Excel-like baseline: every displayed row is a materialized sheet cell, so
// "opening" the data set costs O(table) before the first pan is possible.
void BM_WindowScroll_NaiveFullMaterialization(benchmark::State& state) {
  size_t rows = static_cast<size_t>(state.range(0));
  DataSpreadOptions opts;
  opts.auto_pump = false;
  DataSpread ds(opts);
  LoadWideTable(&ds.db(), "t", rows);
  Table* table = ds.db().catalog().GetTable("t").ValueOrDie();
  for (auto _ : state) {
    // Materialize all rows into a fresh sheet (what a classic spreadsheet
    // must do to show the data at all), then "pan" (reads are free after).
    static int gen = 0;
    Sheet* sheet = ds.AddSheet("naive" + std::to_string(gen++)).ValueOrDie();
    table->Scan([&](size_t pos, const Row& row) {
      for (size_t c = 0; c < row.size(); ++c) {
        (void)sheet->SetValue(static_cast<int64_t>(pos) + 1,
                              static_cast<int64_t>(c), row[c]);
      }
      return true;
    });
    benchmark::DoNotOptimize(sheet->cell_count());
    state.PauseTiming();
    (void)ds.workbook().RemoveSheet(sheet->name());
    state.ResumeTiming();
  }
  state.SetLabel(std::to_string(rows) + " rows fully materialized");
}
BENCHMARK(BM_WindowScroll_NaiveFullMaterialization)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

// The positional-index window fetch that powers the pane (SQL pushdown path).
void BM_WindowScroll_SqlWindowFetch(benchmark::State& state) {
  size_t rows = static_cast<size_t>(state.range(0));
  DataSpreadOptions opts;
  opts.auto_pump = false;
  DataSpread ds(opts);
  LoadWideTable(&ds.db(), "t", rows);
  std::mt19937 rng(1);
  for (auto _ : state) {
    size_t offset = rng() % rows;
    auto rs = ds.Sql("SELECT * FROM t LIMIT 50 OFFSET " +
                     std::to_string(offset));
    benchmark::DoNotOptimize(rs);
  }
  state.SetLabel(std::to_string(rows) + " rows, LIMIT 50 window");
}
BENCHMARK(BM_WindowScroll_SqlWindowFetch)
    ->Arg(1000)
    ->Arg(100000)
    ->Arg(1000000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace dataspread::bench
