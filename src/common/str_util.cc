#include "common/str_util.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace dataspread {

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string_view TrimView(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() && std::isspace(static_cast<unsigned char>(s[begin]))) ++begin;
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) --end;
  return s.substr(begin, end - begin);
}

std::string Trim(std::string_view s) { return std::string(TrimView(s)); }

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::optional<int64_t> ParseInt64(std::string_view s) {
  s = TrimView(s);
  if (s.empty()) return std::nullopt;
  int64_t value = 0;
  const char* first = s.data();
  const char* last = s.data() + s.size();
  // std::from_chars accepts a leading '-' but not '+'; normalize.
  if (s[0] == '+') ++first;
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last) return std::nullopt;
  return value;
}

std::optional<double> ParseDouble(std::string_view s) {
  s = TrimView(s);
  if (s.empty()) return std::nullopt;
  std::string buf(s);  // strtod needs NUL termination.
  const char* begin = buf.c_str();
  char* end = nullptr;
  double value = std::strtod(begin, &end);
  if (end != begin + buf.size()) return std::nullopt;
  if (std::isnan(value)) return std::nullopt;
  return value;
}

std::string FormatDouble(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "Inf" : "-Inf";
  // Integral values within int64 range display without a fraction.
  if (v == std::floor(v) && std::fabs(v) < 9.2e18) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  // %.17g always round-trips; prefer the shortest of %.15g/%.16g that does.
  for (int precision : {15, 16, 17}) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    double back = std::strtod(buf, nullptr);
    if (back == v) return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace dataspread
