#ifndef DATASPREAD_COMMON_STR_UTIL_H_
#define DATASPREAD_COMMON_STR_UTIL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace dataspread {

/// ASCII lower-cased copy of `s`.
std::string ToLower(std::string_view s);

/// ASCII upper-cased copy of `s`.
std::string ToUpper(std::string_view s);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// `s` with leading and trailing ASCII whitespace removed.
std::string_view TrimView(std::string_view s);
std::string Trim(std::string_view s);

/// Splits on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins `parts` with `sep` between elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Strict whole-string integer parse (optional sign, decimal digits only).
std::optional<int64_t> ParseInt64(std::string_view s);

/// Strict whole-string floating-point parse.
std::optional<double> ParseDouble(std::string_view s);

/// Shortest decimal text that round-trips `v`; integral doubles print without
/// a trailing ".0" (spreadsheet display convention).
std::string FormatDouble(double v);

}  // namespace dataspread

#endif  // DATASPREAD_COMMON_STR_UTIL_H_
