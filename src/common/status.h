#ifndef DATASPREAD_COMMON_STATUS_H_
#define DATASPREAD_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace dataspread {

/// Error category for a failed operation. The project does not use C++
/// exceptions; every fallible public API returns a Status or Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,     ///< Caller passed a malformed or out-of-contract value.
  kNotFound,            ///< Named table/column/cell/binding does not exist.
  kAlreadyExists,       ///< Create collided with an existing object.
  kOutOfRange,          ///< Position/index outside the valid domain.
  kParseError,          ///< SQL or formula text failed to parse.
  kTypeError,           ///< Value of the wrong type for the operation.
  kConstraintViolation, ///< Primary-key or arity constraint broken.
  kCycleDetected,       ///< Formula dependency graph contains a cycle.
  kUnimplemented,       ///< Feature intentionally outside the supported subset.
  kInternal,            ///< Invariant breach; indicates a bug in DataSpread.
  kSerializationConflict, ///< Write-latch conflict; the losing transaction was
                          ///< rolled back and the statement is safe to retry.
};

/// Human-readable name of a StatusCode (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// Result of an operation that can fail without returning a value.
///
/// Cheap to copy when OK (no allocation). Construct errors through the named
/// factories: `Status::InvalidArgument("bad range")`.
class Status {
 public:
  /// Default-constructed Status is OK.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status ConstraintViolation(std::string msg) {
    return Status(StatusCode::kConstraintViolation, std::move(msg));
  }
  static Status CycleDetected(std::string msg) {
    return Status(StatusCode::kCycleDetected, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status SerializationConflict(std::string msg) {
    return Status(StatusCode::kSerializationConflict, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Evaluates `expr` (a Status expression) and returns it from the enclosing
/// function if it is not OK.
#define DS_RETURN_IF_ERROR(expr)                   \
  do {                                             \
    ::dataspread::Status _ds_status = (expr);      \
    if (!_ds_status.ok()) return _ds_status;       \
  } while (false)

}  // namespace dataspread

#endif  // DATASPREAD_COMMON_STATUS_H_
