#ifndef DATASPREAD_COMMON_RESULT_H_
#define DATASPREAD_COMMON_RESULT_H_

#include <cstdlib>
#include <optional>
#include <utility>

#include "common/status.h"

namespace dataspread {

/// Either a value of type T or a non-OK Status explaining why the value could
/// not be produced. Analogous to arrow::Result / absl::StatusOr.
///
/// Typical use:
/// \code
///   Result<int> r = ParsePort(text);
///   if (!r.ok()) return r.status();
///   Use(r.value());
/// \endcode
template <typename T>
class Result {
 public:
  /// Implicit from value: `return 42;` inside a Result<int> function.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status: `return Status::NotFound(...)`.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      // A Result constructed from a Status must carry an error; an OK status
      // without a value violates the invariant.
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  /// Returns the value, aborting the process if this Result holds an error.
  /// Reserved for tests and unrecoverable startup paths.
  T& ValueOrDie() & {
    if (!ok()) std::abort();
    return *value_;
  }
  T ValueOrDie() && {
    if (!ok()) std::abort();
    return std::move(*value_);
  }

  /// Returns the contained value or `fallback` when this holds an error.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_ = Status::OK();
  std::optional<T> value_;
};

#define DS_RESULT_CONCAT_INNER_(a, b) a##b
#define DS_RESULT_CONCAT_(a, b) DS_RESULT_CONCAT_INNER_(a, b)

/// Evaluates `rexpr` (a Result<T> expression); on error returns its Status
/// from the enclosing function, otherwise assigns the value to `lhs`.
#define DS_ASSIGN_OR_RETURN(lhs, rexpr)                                  \
  auto DS_RESULT_CONCAT_(_ds_result_, __LINE__) = (rexpr);               \
  if (!DS_RESULT_CONCAT_(_ds_result_, __LINE__).ok())                    \
    return DS_RESULT_CONCAT_(_ds_result_, __LINE__).status();            \
  lhs = std::move(DS_RESULT_CONCAT_(_ds_result_, __LINE__)).value()

}  // namespace dataspread

#endif  // DATASPREAD_COMMON_RESULT_H_
