#include "common/status.h"

namespace dataspread {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kConstraintViolation:
      return "ConstraintViolation";
    case StatusCode::kCycleDetected:
      return "CycleDetected";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kSerializationConflict:
      return "SerializationConflict";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace dataspread
