#include "index/positional_index.h"

#include <algorithm>
#include <cassert>

namespace dataspread {

namespace {
constexpr size_t kLeafCap = 64;    // max payloads per leaf
constexpr size_t kFanout = 32;     // max children per internal node
constexpr size_t kLeafMin = kLeafCap / 4;
constexpr size_t kFanoutMin = kFanout / 4;
}  // namespace

struct PositionalIndex::Node {
  bool leaf = true;
  size_t count = 0;  // elements in this subtree
  std::vector<uint64_t> values;               // leaf payloads
  std::vector<std::unique_ptr<Node>> children;  // internal children

  static std::unique_ptr<Node> Leaf() {
    auto n = std::make_unique<Node>();
    n->leaf = true;
    return n;
  }
  static std::unique_ptr<Node> Internal() {
    auto n = std::make_unique<Node>();
    n->leaf = false;
    return n;
  }
};

struct PositionalIndex::InsertOutcome {
  std::unique_ptr<Node> split;  // right sibling if the node overflowed
};

PositionalIndex::PositionalIndex() : root_(Node::Leaf()) {}
PositionalIndex::~PositionalIndex() = default;
PositionalIndex::PositionalIndex(PositionalIndex&&) noexcept = default;
PositionalIndex& PositionalIndex::operator=(PositionalIndex&&) noexcept = default;

Result<uint64_t> PositionalIndex::Get(size_t pos) const {
  if (pos >= size_) {
    return Status::OutOfRange("position " + std::to_string(pos) + " >= " +
                              std::to_string(size_));
  }
  const Node* node = root_.get();
  while (!node->leaf) {
    for (const auto& child : node->children) {
      if (pos < child->count) {
        node = child.get();
        break;
      }
      pos -= child->count;
    }
  }
  return node->values[pos];
}

Status PositionalIndex::Set(size_t pos, uint64_t payload) {
  if (pos >= size_) {
    return Status::OutOfRange("position " + std::to_string(pos) + " >= " +
                              std::to_string(size_));
  }
  Node* node = root_.get();
  while (!node->leaf) {
    for (const auto& child : node->children) {
      if (pos < child->count) {
        node = child.get();
        break;
      }
      pos -= child->count;
    }
  }
  node->values[pos] = payload;
  return Status::OK();
}

PositionalIndex::InsertOutcome PositionalIndex::InsertRec(Node* node, size_t pos,
                                                          uint64_t payload) {
  node->count += 1;
  if (node->leaf) {
    node->values.insert(node->values.begin() + static_cast<ptrdiff_t>(pos), payload);
    if (node->values.size() <= kLeafCap) return {};
    auto right = Node::Leaf();
    size_t half = node->values.size() / 2;
    right->values.assign(node->values.begin() + static_cast<ptrdiff_t>(half),
                         node->values.end());
    node->values.resize(half);
    right->count = right->values.size();
    node->count = node->values.size();
    return {std::move(right)};
  }
  // Internal: find the child to descend into. Position may equal the running
  // total, in which case we insert at the end of the last child that can take
  // it (prefer the earlier child so appends go to the rightmost).
  size_t i = 0;
  for (; i + 1 < node->children.size(); ++i) {
    if (pos <= node->children[i]->count) break;
    pos -= node->children[i]->count;
  }
  InsertOutcome out = InsertRec(node->children[i].get(), pos, payload);
  if (out.split) {
    node->children.insert(node->children.begin() + static_cast<ptrdiff_t>(i) + 1,
                          std::move(out.split));
    if (node->children.size() > kFanout) {
      auto right = Node::Internal();
      size_t half = node->children.size() / 2;
      for (size_t j = half; j < node->children.size(); ++j) {
        right->count += node->children[j]->count;
        right->children.push_back(std::move(node->children[j]));
      }
      node->children.resize(half);
      node->count -= right->count;
      return {std::move(right)};
    }
  }
  return {};
}

Status PositionalIndex::InsertAt(size_t pos, uint64_t payload) {
  if (pos > size_) {
    return Status::OutOfRange("insert position " + std::to_string(pos) + " > " +
                              std::to_string(size_));
  }
  InsertOutcome out = InsertRec(root_.get(), pos, payload);
  if (out.split) {
    auto new_root = Node::Internal();
    new_root->count = root_->count + out.split->count;
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(out.split));
    root_ = std::move(new_root);
  }
  size_ += 1;
  return Status::OK();
}

void PositionalIndex::PushBack(uint64_t payload) {
  Status s = InsertAt(size_, payload);
  (void)s;  // Appending at size_ cannot fail.
}

uint64_t PositionalIndex::EraseRec(Node* node, size_t pos) {
  node->count -= 1;
  if (node->leaf) {
    uint64_t v = node->values[pos];
    node->values.erase(node->values.begin() + static_cast<ptrdiff_t>(pos));
    return v;
  }
  size_t i = 0;
  for (; i + 1 < node->children.size(); ++i) {
    if (pos < node->children[i]->count) break;
    pos -= node->children[i]->count;
  }
  Node* child = node->children[i].get();
  uint64_t v = EraseRec(child, pos);

  // Light rebalancing: merge an underfull child into a neighbour when the
  // combined size fits, otherwise leave it (splits guarantee halves, so the
  // tree height stays O(log of max size ever)).
  size_t min_size = child->leaf ? kLeafMin : kFanoutMin;
  size_t child_size = child->leaf ? child->values.size() : child->children.size();
  if (child_size < min_size && node->children.size() > 1) {
    size_t j = (i + 1 < node->children.size()) ? i + 1 : i - 1;
    size_t left = std::min(i, j);
    size_t right = std::max(i, j);
    Node* l = node->children[left].get();
    Node* r = node->children[right].get();
    if (l->leaf == r->leaf) {
      size_t cap = l->leaf ? kLeafCap : kFanout;
      size_t l_size = l->leaf ? l->values.size() : l->children.size();
      size_t r_size = r->leaf ? r->values.size() : r->children.size();
      if (l_size + r_size <= cap) {
        if (l->leaf) {
          l->values.insert(l->values.end(), r->values.begin(), r->values.end());
        } else {
          for (auto& c : r->children) l->children.push_back(std::move(c));
        }
        l->count += r->count;
        node->children.erase(node->children.begin() + static_cast<ptrdiff_t>(right));
      }
    }
  }
  return v;
}

void PositionalIndex::MaybeShrinkRoot() {
  while (!root_->leaf && root_->children.size() == 1) {
    root_ = std::move(root_->children[0]);
  }
}

Result<uint64_t> PositionalIndex::EraseAt(size_t pos) {
  if (pos >= size_) {
    return Status::OutOfRange("position " + std::to_string(pos) + " >= " +
                              std::to_string(size_));
  }
  uint64_t v = EraseRec(root_.get(), pos);
  size_ -= 1;
  MaybeShrinkRoot();
  return v;
}

void PositionalIndex::Visit(size_t begin, size_t count,
                            const std::function<void(size_t, uint64_t)>& fn) const {
  if (begin >= size_ || count == 0) return;
  size_t end = std::min(size_, begin + count);
  auto walk = [&](auto&& self, const Node* node, size_t base) -> void {
    if (node->leaf) {
      size_t lo = begin > base ? begin - base : 0;
      size_t hi = std::min(node->values.size(), end - base);
      for (size_t k = lo; k < hi; ++k) fn(base + k, node->values[k]);
      return;
    }
    size_t child_base = base;
    for (const auto& child : node->children) {
      if (child_base >= end) break;
      if (child_base + child->count > begin) {
        self(self, child.get(), child_base);
      }
      child_base += child->count;
    }
  };
  walk(walk, root_.get(), 0);
}

std::vector<uint64_t> PositionalIndex::GetRange(size_t begin, size_t count) const {
  std::vector<uint64_t> out;
  out.reserve(std::min(count, size_ > begin ? size_ - begin : 0));
  Visit(begin, count, [&out](size_t, uint64_t v) { out.push_back(v); });
  return out;
}

void PositionalIndex::Build(const std::vector<uint64_t>& payloads) {
  Clear();
  if (payloads.empty()) return;
  // Bottom-up bulk load: fill leaves to 3/4 capacity, then stack internals.
  const size_t per_leaf = kLeafCap * 3 / 4;
  std::vector<std::unique_ptr<Node>> level;
  for (size_t i = 0; i < payloads.size(); i += per_leaf) {
    auto leaf = Node::Leaf();
    size_t n = std::min(per_leaf, payloads.size() - i);
    leaf->values.assign(payloads.begin() + static_cast<ptrdiff_t>(i),
                        payloads.begin() + static_cast<ptrdiff_t>(i + n));
    leaf->count = n;
    level.push_back(std::move(leaf));
  }
  const size_t per_node = kFanout * 3 / 4;
  while (level.size() > 1) {
    std::vector<std::unique_ptr<Node>> next;
    for (size_t i = 0; i < level.size(); i += per_node) {
      auto internal = Node::Internal();
      size_t n = std::min(per_node, level.size() - i);
      for (size_t j = 0; j < n; ++j) {
        internal->count += level[i + j]->count;
        internal->children.push_back(std::move(level[i + j]));
      }
      next.push_back(std::move(internal));
    }
    level = std::move(next);
  }
  root_ = std::move(level[0]);
  size_ = payloads.size();
}

void PositionalIndex::Clear() {
  root_ = Node::Leaf();
  size_ = 0;
}

size_t PositionalIndex::height() const {
  size_t h = 1;
  const Node* node = root_.get();
  while (!node->leaf) {
    h += 1;
    node = node->children[0].get();
  }
  return h;
}

}  // namespace dataspread
