#ifndef DATASPREAD_INDEX_POSITIONAL_INDEX_H_
#define DATASPREAD_INDEX_POSITIONAL_INDEX_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/result.h"

namespace dataspread {

/// The paper's *positional index* (§3): an ordered sequence addressed by
/// position, supporting logarithmic get / insert-at / erase-at.
///
/// Implemented as a counted B+-tree: internal nodes hold children and rely on
/// per-subtree element counts for navigation (there are no keys — position is
/// implicit). This is what makes "interface-oriented operations, e.g., ordered
/// presentation, efficient": fetching the N-th..(N+k)-th displayed tuples of a
/// table, or inserting a spreadsheet row in the middle of a million, costs
/// O(log n + k) instead of the O(n) of a shifted array (see OffsetArray, the
/// ablation baseline).
///
/// Payloads are opaque 64-bit handles (storage slots, sheet axis ids, ...).
class PositionalIndex {
 public:
  PositionalIndex();
  ~PositionalIndex();

  PositionalIndex(const PositionalIndex&) = delete;
  PositionalIndex& operator=(const PositionalIndex&) = delete;
  PositionalIndex(PositionalIndex&&) noexcept;
  PositionalIndex& operator=(PositionalIndex&&) noexcept;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Payload at `pos` in [0, size()).
  Result<uint64_t> Get(size_t pos) const;
  /// Replaces the payload at `pos`.
  Status Set(size_t pos, uint64_t payload);
  /// Inserts so the new element lands at `pos`; pos in [0, size()].
  Status InsertAt(size_t pos, uint64_t payload);
  /// Appends at the end.
  void PushBack(uint64_t payload);
  /// Removes and returns the payload at `pos`.
  Result<uint64_t> EraseAt(size_t pos);

  /// Calls `fn(position, payload)` for positions [begin, begin+count) clipped
  /// to size(). O(log n + count).
  void Visit(size_t begin, size_t count,
             const std::function<void(size_t, uint64_t)>& fn) const;
  /// Convenience window fetch (the pane read path).
  std::vector<uint64_t> GetRange(size_t begin, size_t count) const;

  /// Replaces the whole content in O(n) by bulk-loading leaves bottom-up.
  void Build(const std::vector<uint64_t>& payloads);

  /// Removes everything.
  void Clear();

  /// Tree height (1 = single leaf); exposed for tests of logarithmic shape.
  size_t height() const;

 private:
  struct Node;

  // Split-aware recursive helpers; defined in the .cc.
  struct InsertOutcome;
  InsertOutcome InsertRec(Node* node, size_t pos, uint64_t payload);
  uint64_t EraseRec(Node* node, size_t pos);
  void MaybeShrinkRoot();

  std::unique_ptr<Node> root_;
  size_t size_ = 0;
};

}  // namespace dataspread

#endif  // DATASPREAD_INDEX_POSITIONAL_INDEX_H_
