#include "index/grid_index.h"

namespace dataspread {

void GridIndex::VisitRect(
    int64_t row0, int64_t col0, int64_t row1, int64_t col1,
    const std::function<void(int64_t, int64_t, uint32_t)>& fn) const {
  if (row1 < row0 || col1 < col0) return;
  int64_t tr0 = TileOf(row0), tr1 = TileOf(row1);
  int64_t tc0 = TileOf(col0), tc1 = TileOf(col1);
  uint64_t rect_tiles = static_cast<uint64_t>(tr1 - tr0 + 1) *
                        static_cast<uint64_t>(tc1 - tc0 + 1);
  if (rect_tiles <= tiles_.size()) {
    // Probe candidate tiles directly.
    for (int64_t tr = tr0; tr <= tr1; ++tr) {
      for (int64_t tc = tc0; tc <= tc1; ++tc) {
        uint32_t slot = Find(tr, tc);
        if (slot != kNoSlot) fn(tr, tc, slot);
      }
    }
    return;
  }
  // Sparse directory: filter all registered tiles.
  for (const auto& [key, slot] : tiles_) {
    int64_t tr = UnpackRow(key);
    int64_t tc = UnpackCol(key);
    if (tr >= tr0 && tr <= tr1 && tc >= tc0 && tc <= tc1) fn(tr, tc, slot);
  }
}

void GridIndex::VisitAll(
    const std::function<void(int64_t, int64_t, uint32_t)>& fn) const {
  for (const auto& [key, slot] : tiles_) {
    fn(UnpackRow(key), UnpackCol(key), slot);
  }
}

}  // namespace dataspread
