#ifndef DATASPREAD_INDEX_OFFSET_ARRAY_H_
#define DATASPREAD_INDEX_OFFSET_ARRAY_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/result.h"

namespace dataspread {

/// Ablation baseline for the positional index: a flat array where insert and
/// erase shift every later element (O(n)), the way a naive spreadsheet keeps
/// rows. Gets are O(1). Same API surface as PositionalIndex so benchmarks and
/// property tests can be written once against both.
class OffsetArray {
 public:
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  Result<uint64_t> Get(size_t pos) const {
    if (pos >= data_.size()) {
      return Status::OutOfRange("position " + std::to_string(pos));
    }
    return data_[pos];
  }

  Status Set(size_t pos, uint64_t payload) {
    if (pos >= data_.size()) {
      return Status::OutOfRange("position " + std::to_string(pos));
    }
    data_[pos] = payload;
    return Status::OK();
  }

  Status InsertAt(size_t pos, uint64_t payload) {
    if (pos > data_.size()) {
      return Status::OutOfRange("insert position " + std::to_string(pos));
    }
    data_.insert(data_.begin() + static_cast<ptrdiff_t>(pos), payload);
    return Status::OK();
  }

  void PushBack(uint64_t payload) { data_.push_back(payload); }

  Result<uint64_t> EraseAt(size_t pos) {
    if (pos >= data_.size()) {
      return Status::OutOfRange("position " + std::to_string(pos));
    }
    uint64_t v = data_[pos];
    data_.erase(data_.begin() + static_cast<ptrdiff_t>(pos));
    return v;
  }

  void Visit(size_t begin, size_t count,
             const std::function<void(size_t, uint64_t)>& fn) const;

  std::vector<uint64_t> GetRange(size_t begin, size_t count) const;

  void Build(const std::vector<uint64_t>& payloads) { data_ = payloads; }
  void Clear() { data_.clear(); }

 private:
  std::vector<uint64_t> data_;
};

}  // namespace dataspread

#endif  // DATASPREAD_INDEX_OFFSET_ARRAY_H_
