#ifndef DATASPREAD_INDEX_GRID_INDEX_H_
#define DATASPREAD_INDEX_GRID_INDEX_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <unordered_map>

#include "common/result.h"

namespace dataspread {

/// Two-dimensional index over proximity-grouped cell blocks (the Interface
/// Storage Manager's "blocks ... indexed by a two-dimensional indexing
/// method", §3).
///
/// The sheet groups cells into 32×32 *tiles*; this directory maps tile
/// coordinates to opaque tile slots and answers rectangle queries. For small
/// query rectangles it probes the O(#tiles-in-rect) candidate tiles; for large
/// rectangles it scans the directory — whichever is cheaper.
class GridIndex {
 public:
  static constexpr int kTileBits = 5;
  static constexpr int64_t kTileSize = 1 << kTileBits;  // 32
  static constexpr uint32_t kNoSlot = std::numeric_limits<uint32_t>::max();

  /// Tile coordinate of a cell coordinate.
  static int64_t TileOf(int64_t cell) { return cell >> kTileBits; }
  /// Offset of a cell within its tile.
  static int64_t OffsetOf(int64_t cell) { return cell & (kTileSize - 1); }

  size_t size() const { return tiles_.size(); }

  /// Slot of tile (tile_row, tile_col), or kNoSlot.
  uint32_t Find(int64_t tile_row, int64_t tile_col) const {
    auto it = tiles_.find(Pack(tile_row, tile_col));
    return it == tiles_.end() ? kNoSlot : it->second;
  }

  /// Registers `slot` for the tile; fails if already present.
  Status Insert(int64_t tile_row, int64_t tile_col, uint32_t slot) {
    auto [it, inserted] = tiles_.emplace(Pack(tile_row, tile_col), slot);
    (void)it;
    if (!inserted) {
      return Status::AlreadyExists("tile (" + std::to_string(tile_row) + "," +
                                   std::to_string(tile_col) + ")");
    }
    return Status::OK();
  }

  /// Removes the tile entry; returns whether it existed.
  bool Erase(int64_t tile_row, int64_t tile_col) {
    return tiles_.erase(Pack(tile_row, tile_col)) > 0;
  }

  /// Visits every registered tile whose 32×32 cell block intersects the cell
  /// rectangle [row0,row1] × [col0,col1] (inclusive).
  void VisitRect(int64_t row0, int64_t col0, int64_t row1, int64_t col1,
                 const std::function<void(int64_t, int64_t, uint32_t)>& fn) const;

  /// Visits every registered tile.
  void VisitAll(
      const std::function<void(int64_t, int64_t, uint32_t)>& fn) const;

  void Clear() { tiles_.clear(); }

 private:
  static uint64_t Pack(int64_t tr, int64_t tc) {
    // Sheet coordinates are non-negative; tiles fit comfortably in 32 bits.
    return (static_cast<uint64_t>(tr) << 32) | static_cast<uint32_t>(tc);
  }
  static int64_t UnpackRow(uint64_t key) { return static_cast<int64_t>(key >> 32); }
  static int64_t UnpackCol(uint64_t key) {
    return static_cast<int64_t>(static_cast<uint32_t>(key));
  }

  std::unordered_map<uint64_t, uint32_t> tiles_;
};

}  // namespace dataspread

#endif  // DATASPREAD_INDEX_GRID_INDEX_H_
