#include "index/offset_array.h"

#include <algorithm>

namespace dataspread {

void OffsetArray::Visit(size_t begin, size_t count,
                        const std::function<void(size_t, uint64_t)>& fn) const {
  if (begin >= data_.size()) return;
  size_t end = std::min(data_.size(), begin + count);
  for (size_t i = begin; i < end; ++i) fn(i, data_[i]);
}

std::vector<uint64_t> OffsetArray::GetRange(size_t begin, size_t count) const {
  std::vector<uint64_t> out;
  if (begin >= data_.size()) return out;
  size_t end = std::min(data_.size(), begin + count);
  out.assign(data_.begin() + static_cast<ptrdiff_t>(begin),
             data_.begin() + static_cast<ptrdiff_t>(end));
  return out;
}

}  // namespace dataspread
