#include "sheet/address.h"

#include <cctype>

#include "common/str_util.h"

namespace dataspread {

std::string ColumnName(int64_t col) {
  std::string out;
  int64_t n = col;
  while (n >= 0) {
    out.insert(out.begin(), static_cast<char>('A' + n % 26));
    n = n / 26 - 1;
  }
  return out;
}

Result<int64_t> ColumnIndex(std::string_view letters) {
  if (letters.empty()) {
    return Status::ParseError("empty column name");
  }
  int64_t col = 0;
  for (char c : letters) {
    char u = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    if (u < 'A' || u > 'Z') {
      return Status::ParseError("bad column letters '" + std::string(letters) +
                                "'");
    }
    col = col * 26 + (u - 'A' + 1);
    if (col > (int64_t{1} << 31)) {
      return Status::ParseError("column out of range");
    }
  }
  return col - 1;
}

namespace {

/// Parses the "A1" part (no sheet prefix) starting at text[0].
Result<CellRef> ParseLocalCell(std::string_view text) {
  CellRef ref;
  size_t i = 0;
  if (i < text.size() && text[i] == '$') {
    ref.abs_col = true;
    ++i;
  }
  size_t col_start = i;
  while (i < text.size() &&
         std::isalpha(static_cast<unsigned char>(text[i]))) {
    ++i;
  }
  if (i == col_start) {
    return Status::ParseError("expected column letters in '" +
                              std::string(text) + "'");
  }
  DS_ASSIGN_OR_RETURN(ref.col, ColumnIndex(text.substr(col_start, i - col_start)));
  if (i < text.size() && text[i] == '$') {
    ref.abs_row = true;
    ++i;
  }
  size_t row_start = i;
  while (i < text.size() && std::isdigit(static_cast<unsigned char>(text[i]))) {
    ++i;
  }
  if (i == row_start || i != text.size()) {
    return Status::ParseError("bad cell reference '" + std::string(text) + "'");
  }
  auto row = ParseInt64(text.substr(row_start, i - row_start));
  if (!row || *row < 1) {
    return Status::ParseError("bad row number in '" + std::string(text) + "'");
  }
  ref.row = *row - 1;  // 1-based on the surface, 0-based inside
  return ref;
}

}  // namespace

Result<CellRef> ParseCellRef(std::string_view text) {
  text = TrimView(text);
  size_t bang = text.find('!');
  std::string sheet;
  if (bang != std::string_view::npos) {
    sheet = std::string(text.substr(0, bang));
    if (sheet.empty()) {
      return Status::ParseError("empty sheet name in '" + std::string(text) +
                                "'");
    }
    text = text.substr(bang + 1);
  }
  DS_ASSIGN_OR_RETURN(CellRef ref, ParseLocalCell(text));
  ref.sheet = std::move(sheet);
  return ref;
}

Result<RangeRef> ParseRangeRef(std::string_view text) {
  text = TrimView(text);
  size_t bang = text.find('!');
  std::string sheet;
  if (bang != std::string_view::npos) {
    sheet = std::string(text.substr(0, bang));
    text = text.substr(bang + 1);
  }
  RangeRef range;
  size_t colon = text.find(':');
  if (colon == std::string_view::npos) {
    DS_ASSIGN_OR_RETURN(range.start, ParseLocalCell(text));
    range.end = range.start;
  } else {
    DS_ASSIGN_OR_RETURN(range.start, ParseLocalCell(text.substr(0, colon)));
    DS_ASSIGN_OR_RETURN(range.end, ParseLocalCell(text.substr(colon + 1)));
  }
  if (range.start.row > range.end.row) std::swap(range.start.row, range.end.row);
  if (range.start.col > range.end.col) std::swap(range.start.col, range.end.col);
  range.sheet = std::move(sheet);
  return range;
}

std::string FormatCell(int64_t row, int64_t col) {
  return ColumnName(col) + std::to_string(row + 1);
}

std::string FormatCellRef(const CellRef& ref) {
  std::string out;
  if (!ref.sheet.empty()) out = ref.sheet + "!";
  if (ref.abs_col) out += "$";
  out += ColumnName(ref.col);
  if (ref.abs_row) out += "$";
  out += std::to_string(ref.row + 1);
  return out;
}

std::string FormatRangeRef(const RangeRef& ref) {
  std::string out;
  if (!ref.sheet.empty()) out = ref.sheet + "!";
  out += FormatCell(ref.start.row, ref.start.col);
  out += ":";
  out += FormatCell(ref.end.row, ref.end.col);
  return out;
}

}  // namespace dataspread
