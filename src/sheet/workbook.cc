#include "sheet/workbook.h"

#include "common/str_util.h"

namespace dataspread {

Result<Sheet*> Workbook::AddSheet(std::string name) {
  if (name.empty()) {
    return Status::InvalidArgument("sheet name may not be empty");
  }
  if (HasSheet(name)) {
    return Status::AlreadyExists("sheet '" + name + "' already exists");
  }
  sheets_.push_back(std::make_unique<Sheet>(std::move(name)));
  return sheets_.back().get();
}

Result<Sheet*> Workbook::GetSheet(std::string_view name) const {
  for (const auto& sheet : sheets_) {
    if (EqualsIgnoreCase(sheet->name(), name)) return sheet.get();
  }
  return Status::NotFound("sheet '" + std::string(name) + "' does not exist");
}

bool Workbook::HasSheet(std::string_view name) const {
  for (const auto& sheet : sheets_) {
    if (EqualsIgnoreCase(sheet->name(), name)) return true;
  }
  return false;
}

Status Workbook::RemoveSheet(std::string_view name) {
  for (auto it = sheets_.begin(); it != sheets_.end(); ++it) {
    if (EqualsIgnoreCase((*it)->name(), name)) {
      sheets_.erase(it);
      return Status::OK();
    }
  }
  return Status::NotFound("sheet '" + std::string(name) + "' does not exist");
}

}  // namespace dataspread
