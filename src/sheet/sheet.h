#ifndef DATASPREAD_SHEET_SHEET_H_
#define DATASPREAD_SHEET_SHEET_H_

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "index/grid_index.h"
#include "index/positional_index.h"
#include "types/value.h"

namespace dataspread {

/// One spreadsheet cell: a dynamic value plus (optionally) the formula text
/// that produced it. Compiled formula state lives in the formula engine, not
/// here — the sheet is pure Interface Storage.
struct Cell {
  Value value;
  std::string formula;  // original text incl. '=' for formula cells, else ""
  bool has_formula() const { return !formula.empty(); }
  bool empty() const { return value.is_null() && formula.empty(); }
};

/// Mutation events published to the formula engine, bindings, and the window
/// manager.
struct SheetEvent {
  enum class Kind {
    kCellChanged,   ///< cell at (row, col) set or cleared
    kRowsInserted,  ///< `count` rows inserted before position `index`
    kRowsDeleted,   ///< `count` rows removed starting at position `index`
    kColsInserted,
    kColsDeleted,
  };
  Kind kind;
  int64_t row = 0, col = 0;   // kCellChanged
  int64_t index = 0, count = 0;  // structural events
};

/// The paper's Interface Storage Manager (§3): schema-less interface data
/// "stored as a collection of cells ... grouped by proximity into data blocks
/// ... indexed by a two-dimensional indexing method".
///
/// Cells live in 32×32 tiles addressed through a GridIndex directory. Row and
/// column *positions* are indirected through positional indexes, so inserting
/// or deleting rows/columns is O(log n) — no cell is re-keyed (cells are keyed
/// by stable axis ids). Reference adjustment in formulas is the formula
/// engine's job; the sheet only reports the structural event.
class Sheet {
 public:
  /// Sheets auto-grow: addressing a cell beyond the current extent extends
  /// the axes. `initial_rows`/`initial_cols` pre-size the axes.
  explicit Sheet(std::string name, int64_t initial_rows = 128,
                 int64_t initial_cols = 32);

  const std::string& name() const { return name_; }
  int64_t num_rows() const { return static_cast<int64_t>(row_axis_.size()); }
  int64_t num_cols() const { return static_cast<int64_t>(col_axis_.size()); }
  /// Number of non-empty cells.
  size_t cell_count() const { return cell_count_; }

  // ---- Cell access by display position (0-based) ----

  /// Cell at (row, col), or nullptr when empty / out of range.
  const Cell* GetCell(int64_t row, int64_t col) const;
  /// Displayed value; NULL for empty cells.
  Value GetValue(int64_t row, int64_t col) const;

  /// Sets a plain value (clears any formula).
  Status SetValue(int64_t row, int64_t col, Value v);
  /// Stores formula text; the engine computes and writes the value via
  /// SetComputedValue. `formula` must start with '='.
  Status SetFormula(int64_t row, int64_t col, std::string formula);
  /// Writes a computed result without touching the stored formula text.
  Status SetComputedValue(int64_t row, int64_t col, Value v);
  /// Rewrites the stored formula text without emitting an event; used by the
  /// formula engine when structural edits shift references ("=A5" → "=A6").
  Status ReplaceFormulaText(int64_t row, int64_t col, std::string formula);
  /// Empties the cell.
  Status ClearCell(int64_t row, int64_t col);

  // ---- Structural operations ----

  Status InsertRows(int64_t before, int64_t count);
  Status DeleteRows(int64_t first, int64_t count);
  Status InsertCols(int64_t before, int64_t count);
  Status DeleteCols(int64_t first, int64_t count);

  // ---- Bulk/range access ----

  /// Visits occupied cells in [r0,r1]×[c0,c1] (inclusive, clipped).
  void VisitRange(int64_t r0, int64_t c0, int64_t r1, int64_t c1,
                  const std::function<void(int64_t, int64_t, const Cell&)>& fn)
      const;

  /// (max occupied row + 1, max occupied col + 1); (0,0) when empty.
  std::pair<int64_t, int64_t> UsedExtent() const;

  // ---- Events ----

  using Listener = std::function<void(const SheetEvent&)>;
  int AddListener(Listener listener);
  void RemoveListener(int token);

 private:
  struct Tile {
    std::unordered_map<uint16_t, Cell> cells;  // key: row_off*32 + col_off
  };

  static uint64_t PackIds(uint64_t rid, uint64_t cid) {
    return (rid << 32) | cid;
  }

  /// Grows axes so (row, col) is addressable.
  Status EnsureSize(int64_t row, int64_t col);
  /// Axis ids for a position (must be in range).
  Result<std::pair<uint64_t, uint64_t>> IdsAt(int64_t row, int64_t col) const;
  Cell* FindCellById(uint64_t rid, uint64_t cid);
  const Cell* FindCellById(uint64_t rid, uint64_t cid) const;
  /// Writes a cell (creating tile as needed) and maintains occupancy.
  void StoreCell(uint64_t rid, uint64_t cid, Cell cell);
  /// Erases a cell if present and maintains occupancy.
  void EraseCell(uint64_t rid, uint64_t cid);
  void Notify(const SheetEvent& event);
  /// Deletes every cell whose row id (axis=true) / col id (axis=false) is in
  /// `ids`.
  void DropCellsForIds(const std::vector<uint64_t>& ids, bool axis_is_row);

  std::string name_;
  PositionalIndex row_axis_;  // position -> row id
  PositionalIndex col_axis_;  // position -> col id
  uint64_t next_row_id_ = 0;
  uint64_t next_col_id_ = 0;
  GridIndex tile_directory_;            // (rid/32, cid/32) -> slot in tiles_
  std::vector<Tile> tiles_;
  std::unordered_map<uint64_t, uint32_t> row_occupancy_;  // rid -> #cells
  std::unordered_map<uint64_t, uint32_t> col_occupancy_;  // cid -> #cells
  size_t cell_count_ = 0;
  int next_listener_token_ = 1;
  std::vector<std::pair<int, Listener>> listeners_;
};

}  // namespace dataspread

#endif  // DATASPREAD_SHEET_SHEET_H_
