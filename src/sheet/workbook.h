#ifndef DATASPREAD_SHEET_WORKBOOK_H_
#define DATASPREAD_SHEET_WORKBOOK_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "sheet/sheet.h"

namespace dataspread {

/// An ordered collection of named sheets (names case-insensitive).
class Workbook {
 public:
  Workbook() = default;

  /// Creates a sheet; fails with AlreadyExists on a name collision.
  Result<Sheet*> AddSheet(std::string name);

  /// Case-insensitive lookup.
  Result<Sheet*> GetSheet(std::string_view name) const;
  bool HasSheet(std::string_view name) const;

  Status RemoveSheet(std::string_view name);

  /// Sheets in creation order.
  const std::vector<std::unique_ptr<Sheet>>& sheets() const { return sheets_; }
  size_t size() const { return sheets_.size(); }

 private:
  std::vector<std::unique_ptr<Sheet>> sheets_;
};

}  // namespace dataspread

#endif  // DATASPREAD_SHEET_WORKBOOK_H_
