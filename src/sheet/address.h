#ifndef DATASPREAD_SHEET_ADDRESS_H_
#define DATASPREAD_SHEET_ADDRESS_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

namespace dataspread {

/// A parsed A1-style cell reference. Coordinates are 0-based internally
/// ("A1" → row 0, col 0). `abs_row`/`abs_col` carry the `$` anchors used by
/// relative reference adjustment (copy/paste, row/col insertion).
struct CellRef {
  int64_t row = 0;
  int64_t col = 0;
  bool abs_row = false;
  bool abs_col = false;
  std::string sheet;  // empty = the referencing cell's own sheet

  bool operator==(const CellRef& o) const {
    return row == o.row && col == o.col && abs_row == o.abs_row &&
           abs_col == o.abs_col && sheet == o.sheet;
  }
};

/// A parsed rectangular range "A1:D100" (inclusive corners, normalized so
/// start ≤ end on both axes).
struct RangeRef {
  CellRef start;
  CellRef end;
  std::string sheet;  // empty = local; both corners share the sheet

  int64_t num_rows() const { return end.row - start.row + 1; }
  int64_t num_cols() const { return end.col - start.col + 1; }
  bool Contains(int64_t row, int64_t col) const {
    return row >= start.row && row <= end.row && col >= start.col &&
           col <= end.col;
  }
};

/// 0-based column index → spreadsheet letters (0→"A", 25→"Z", 26→"AA").
std::string ColumnName(int64_t col);

/// Spreadsheet letters → 0-based column index ("A"→0, "AA"→26).
Result<int64_t> ColumnIndex(std::string_view letters);

/// Parses "A1", "$B$2", "Sheet2!C3".
Result<CellRef> ParseCellRef(std::string_view text);

/// Parses "A1:D100", "Sheet2!A1:D100", or a single cell (1×1 range).
Result<RangeRef> ParseRangeRef(std::string_view text);

/// "A1"-style text for a 0-based coordinate pair.
std::string FormatCell(int64_t row, int64_t col);

/// Renders a CellRef including `$` anchors and sheet prefix.
std::string FormatCellRef(const CellRef& ref);

/// Renders a RangeRef ("A1:D100" or "Sheet2!A1:D100").
std::string FormatRangeRef(const RangeRef& ref);

}  // namespace dataspread

#endif  // DATASPREAD_SHEET_ADDRESS_H_
