#include "sheet/sheet.h"

#include <algorithm>

namespace dataspread {

namespace {
constexpr int64_t kMaxAxis = int64_t{1} << 31;
}  // namespace

Sheet::Sheet(std::string name, int64_t initial_rows, int64_t initial_cols)
    : name_(std::move(name)) {
  std::vector<uint64_t> rows(static_cast<size_t>(initial_rows));
  for (auto& r : rows) r = next_row_id_++;
  row_axis_.Build(rows);
  std::vector<uint64_t> cols(static_cast<size_t>(initial_cols));
  for (auto& c : cols) c = next_col_id_++;
  col_axis_.Build(cols);
}

Status Sheet::EnsureSize(int64_t row, int64_t col) {
  if (row < 0 || col < 0) {
    return Status::OutOfRange("negative cell coordinate");
  }
  if (row >= kMaxAxis || col >= kMaxAxis) {
    return Status::OutOfRange("cell coordinate beyond sheet limits");
  }
  while (num_rows() <= row) row_axis_.PushBack(next_row_id_++);
  while (num_cols() <= col) col_axis_.PushBack(next_col_id_++);
  return Status::OK();
}

Result<std::pair<uint64_t, uint64_t>> Sheet::IdsAt(int64_t row,
                                                   int64_t col) const {
  DS_ASSIGN_OR_RETURN(uint64_t rid, row_axis_.Get(static_cast<size_t>(row)));
  DS_ASSIGN_OR_RETURN(uint64_t cid, col_axis_.Get(static_cast<size_t>(col)));
  return std::pair<uint64_t, uint64_t>{rid, cid};
}

Cell* Sheet::FindCellById(uint64_t rid, uint64_t cid) {
  uint32_t slot = tile_directory_.Find(static_cast<int64_t>(rid >> GridIndex::kTileBits),
                                       static_cast<int64_t>(cid >> GridIndex::kTileBits));
  if (slot == GridIndex::kNoSlot) return nullptr;
  uint16_t offset = static_cast<uint16_t>(((rid & 31) << 5) | (cid & 31));
  auto it = tiles_[slot].cells.find(offset);
  return it == tiles_[slot].cells.end() ? nullptr : &it->second;
}

const Cell* Sheet::FindCellById(uint64_t rid, uint64_t cid) const {
  return const_cast<Sheet*>(this)->FindCellById(rid, cid);
}

const Cell* Sheet::GetCell(int64_t row, int64_t col) const {
  if (row < 0 || col < 0 || row >= num_rows() || col >= num_cols()) {
    return nullptr;
  }
  auto ids = IdsAt(row, col);
  if (!ids.ok()) return nullptr;
  return FindCellById(ids.value().first, ids.value().second);
}

Value Sheet::GetValue(int64_t row, int64_t col) const {
  const Cell* cell = GetCell(row, col);
  return cell == nullptr ? Value::Null() : cell->value;
}

void Sheet::StoreCell(uint64_t rid, uint64_t cid, Cell cell) {
  int64_t tr = static_cast<int64_t>(rid >> GridIndex::kTileBits);
  int64_t tc = static_cast<int64_t>(cid >> GridIndex::kTileBits);
  uint32_t slot = tile_directory_.Find(tr, tc);
  if (slot == GridIndex::kNoSlot) {
    slot = static_cast<uint32_t>(tiles_.size());
    tiles_.emplace_back();
    (void)tile_directory_.Insert(tr, tc, slot);
  }
  uint16_t offset = static_cast<uint16_t>(((rid & 31) << 5) | (cid & 31));
  auto it = tiles_[slot].cells.find(offset);
  if (it != tiles_[slot].cells.end()) {
    it->second = std::move(cell);
    return;
  }
  tiles_[slot].cells.emplace(offset, std::move(cell));
  cell_count_ += 1;
  row_occupancy_[rid] += 1;
  col_occupancy_[cid] += 1;
}

void Sheet::EraseCell(uint64_t rid, uint64_t cid) {
  int64_t tr = static_cast<int64_t>(rid >> GridIndex::kTileBits);
  int64_t tc = static_cast<int64_t>(cid >> GridIndex::kTileBits);
  uint32_t slot = tile_directory_.Find(tr, tc);
  if (slot == GridIndex::kNoSlot) return;
  uint16_t offset = static_cast<uint16_t>(((rid & 31) << 5) | (cid & 31));
  if (tiles_[slot].cells.erase(offset) == 0) return;
  cell_count_ -= 1;
  if (--row_occupancy_[rid] == 0) row_occupancy_.erase(rid);
  if (--col_occupancy_[cid] == 0) col_occupancy_.erase(cid);
  if (tiles_[slot].cells.empty()) {
    // The tile slot stays allocated (vector-stable); only the directory entry
    // is dropped so rectangle visits skip it.
    tile_directory_.Erase(tr, tc);
  }
}

Status Sheet::SetValue(int64_t row, int64_t col, Value v) {
  DS_RETURN_IF_ERROR(EnsureSize(row, col));
  DS_ASSIGN_OR_RETURN(auto ids, IdsAt(row, col));
  if (v.is_null()) {
    EraseCell(ids.first, ids.second);
  } else {
    Cell cell;
    cell.value = std::move(v);
    StoreCell(ids.first, ids.second, std::move(cell));
  }
  Notify(SheetEvent{SheetEvent::Kind::kCellChanged, row, col, 0, 0});
  return Status::OK();
}

Status Sheet::SetFormula(int64_t row, int64_t col, std::string formula) {
  if (formula.empty() || formula[0] != '=') {
    return Status::InvalidArgument("formula must start with '='");
  }
  DS_RETURN_IF_ERROR(EnsureSize(row, col));
  DS_ASSIGN_OR_RETURN(auto ids, IdsAt(row, col));
  Cell cell;
  Cell* existing = FindCellById(ids.first, ids.second);
  if (existing != nullptr) cell.value = existing->value;
  cell.formula = std::move(formula);
  StoreCell(ids.first, ids.second, std::move(cell));
  Notify(SheetEvent{SheetEvent::Kind::kCellChanged, row, col, 0, 0});
  return Status::OK();
}

Status Sheet::SetComputedValue(int64_t row, int64_t col, Value v) {
  DS_RETURN_IF_ERROR(EnsureSize(row, col));
  DS_ASSIGN_OR_RETURN(auto ids, IdsAt(row, col));
  Cell* existing = FindCellById(ids.first, ids.second);
  if (existing == nullptr) {
    Cell cell;
    cell.value = std::move(v);
    StoreCell(ids.first, ids.second, std::move(cell));
  } else {
    existing->value = std::move(v);
  }
  // Computed writes do not notify: the engine manages downstream dirtying
  // itself, and echoing would loop the recalculation.
  return Status::OK();
}

Status Sheet::ReplaceFormulaText(int64_t row, int64_t col,
                                 std::string formula) {
  DS_ASSIGN_OR_RETURN(auto ids, IdsAt(row, col));
  Cell* existing = FindCellById(ids.first, ids.second);
  if (existing == nullptr) {
    return Status::NotFound("no cell at " + std::to_string(row) + "," +
                            std::to_string(col));
  }
  existing->formula = std::move(formula);
  return Status::OK();
}

Status Sheet::ClearCell(int64_t row, int64_t col) {
  if (row < 0 || col < 0 || row >= num_rows() || col >= num_cols()) {
    return Status::OK();  // clearing outside the extent is a no-op
  }
  DS_ASSIGN_OR_RETURN(auto ids, IdsAt(row, col));
  EraseCell(ids.first, ids.second);
  Notify(SheetEvent{SheetEvent::Kind::kCellChanged, row, col, 0, 0});
  return Status::OK();
}

Status Sheet::InsertRows(int64_t before, int64_t count) {
  if (before < 0 || before > num_rows() || count < 0) {
    return Status::OutOfRange("InsertRows(" + std::to_string(before) + ", " +
                              std::to_string(count) + ")");
  }
  for (int64_t i = 0; i < count; ++i) {
    DS_RETURN_IF_ERROR(row_axis_.InsertAt(static_cast<size_t>(before),
                                          next_row_id_++));
  }
  Notify(SheetEvent{SheetEvent::Kind::kRowsInserted, 0, 0, before, count});
  return Status::OK();
}

void Sheet::DropCellsForIds(const std::vector<uint64_t>& ids,
                            bool axis_is_row) {
  for (uint64_t id : ids) {
    auto& occupancy = axis_is_row ? row_occupancy_ : col_occupancy_;
    if (occupancy.find(id) == occupancy.end()) continue;
    // Collect the occupied partners, then erase (avoid mutating during scan).
    std::vector<std::pair<uint64_t, uint64_t>> doomed;
    tile_directory_.VisitAll([&](int64_t tr, int64_t tc, uint32_t slot) {
      int64_t tile_lo = axis_is_row ? tr : tc;
      if (tile_lo != static_cast<int64_t>(id >> GridIndex::kTileBits)) return;
      for (const auto& [offset, cell] : tiles_[slot].cells) {
        (void)cell;
        uint64_t rid =
            (static_cast<uint64_t>(tr) << GridIndex::kTileBits) | (offset >> 5);
        uint64_t cid =
            (static_cast<uint64_t>(tc) << GridIndex::kTileBits) | (offset & 31);
        if ((axis_is_row ? rid : cid) == id) doomed.emplace_back(rid, cid);
      }
    });
    for (const auto& [rid, cid] : doomed) EraseCell(rid, cid);
  }
}

Status Sheet::DeleteRows(int64_t first, int64_t count) {
  if (first < 0 || count < 0 || first + count > num_rows()) {
    return Status::OutOfRange("DeleteRows(" + std::to_string(first) + ", " +
                              std::to_string(count) + ")");
  }
  std::vector<uint64_t> removed;
  removed.reserve(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    DS_ASSIGN_OR_RETURN(uint64_t rid,
                        row_axis_.EraseAt(static_cast<size_t>(first)));
    removed.push_back(rid);
  }
  DropCellsForIds(removed, /*axis_is_row=*/true);
  Notify(SheetEvent{SheetEvent::Kind::kRowsDeleted, 0, 0, first, count});
  return Status::OK();
}

Status Sheet::InsertCols(int64_t before, int64_t count) {
  if (before < 0 || before > num_cols() || count < 0) {
    return Status::OutOfRange("InsertCols(" + std::to_string(before) + ", " +
                              std::to_string(count) + ")");
  }
  for (int64_t i = 0; i < count; ++i) {
    DS_RETURN_IF_ERROR(col_axis_.InsertAt(static_cast<size_t>(before),
                                          next_col_id_++));
  }
  Notify(SheetEvent{SheetEvent::Kind::kColsInserted, 0, 0, before, count});
  return Status::OK();
}

Status Sheet::DeleteCols(int64_t first, int64_t count) {
  if (first < 0 || count < 0 || first + count > num_cols()) {
    return Status::OutOfRange("DeleteCols(" + std::to_string(first) + ", " +
                              std::to_string(count) + ")");
  }
  std::vector<uint64_t> removed;
  removed.reserve(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    DS_ASSIGN_OR_RETURN(uint64_t cid,
                        col_axis_.EraseAt(static_cast<size_t>(first)));
    removed.push_back(cid);
  }
  DropCellsForIds(removed, /*axis_is_row=*/false);
  Notify(SheetEvent{SheetEvent::Kind::kColsDeleted, 0, 0, first, count});
  return Status::OK();
}

void Sheet::VisitRange(
    int64_t r0, int64_t c0, int64_t r1, int64_t c1,
    const std::function<void(int64_t, int64_t, const Cell&)>& fn) const {
  r0 = std::max<int64_t>(r0, 0);
  c0 = std::max<int64_t>(c0, 0);
  r1 = std::min<int64_t>(r1, num_rows() - 1);
  c1 = std::min<int64_t>(c1, num_cols() - 1);
  if (r1 < r0 || c1 < c0) return;
  // Resolve axis ids once per row/column of the rectangle.
  std::vector<uint64_t> rids =
      row_axis_.GetRange(static_cast<size_t>(r0), static_cast<size_t>(r1 - r0 + 1));
  std::vector<uint64_t> cids =
      col_axis_.GetRange(static_cast<size_t>(c0), static_cast<size_t>(c1 - c0 + 1));
  for (size_t ri = 0; ri < rids.size(); ++ri) {
    if (row_occupancy_.find(rids[ri]) == row_occupancy_.end()) continue;
    for (size_t ci = 0; ci < cids.size(); ++ci) {
      const Cell* cell = FindCellById(rids[ri], cids[ci]);
      if (cell != nullptr) {
        fn(r0 + static_cast<int64_t>(ri), c0 + static_cast<int64_t>(ci), *cell);
      }
    }
  }
}

std::pair<int64_t, int64_t> Sheet::UsedExtent() const {
  int64_t max_row = -1;
  int64_t max_col = -1;
  row_axis_.Visit(0, row_axis_.size(), [&](size_t pos, uint64_t rid) {
    if (row_occupancy_.find(rid) != row_occupancy_.end()) {
      max_row = std::max<int64_t>(max_row, static_cast<int64_t>(pos));
    }
  });
  col_axis_.Visit(0, col_axis_.size(), [&](size_t pos, uint64_t cid) {
    if (col_occupancy_.find(cid) != col_occupancy_.end()) {
      max_col = std::max<int64_t>(max_col, static_cast<int64_t>(pos));
    }
  });
  return {max_row + 1, max_col + 1};
}

int Sheet::AddListener(Listener listener) {
  int token = next_listener_token_++;
  listeners_.emplace_back(token, std::move(listener));
  return token;
}

void Sheet::RemoveListener(int token) {
  for (auto it = listeners_.begin(); it != listeners_.end(); ++it) {
    if (it->first == token) {
      listeners_.erase(it);
      return;
    }
  }
}

void Sheet::Notify(const SheetEvent& event) {
  auto snapshot = listeners_;
  for (const auto& [token, fn] : snapshot) {
    (void)token;
    fn(event);
  }
}

}  // namespace dataspread
