#include "formula/formula_ast.h"

namespace dataspread::formula {

namespace {

/// Binding strength of a binary operator (higher binds tighter).
int OpPrecedence(const std::string& op) {
  if (op == "^") return 5;
  if (op == "*" || op == "/") return 4;
  if (op == "+" || op == "-") return 3;
  if (op == "&") return 2;
  return 1;  // comparisons
}

/// Renders a binary/unary operand with the minimal parentheses that
/// re-parse to the same tree.
std::string RenderOperand(const FExpr& child, int parent_prec, bool is_right,
                          bool parent_right_assoc) {
  std::string text = child.ToText();
  if (child.kind != FKind::kBinary) return text;
  int child_prec = OpPrecedence(child.op);
  bool needs_parens =
      child_prec < parent_prec ||
      (child_prec == parent_prec && is_right != parent_right_assoc);
  return needs_parens ? "(" + text + ")" : text;
}

}  // namespace

FExprPtr FExpr::Clone() const {
  auto out = std::make_unique<FExpr>();
  out->kind = kind;
  out->literal = literal;
  out->cell = cell;
  out->range = range;
  out->op = op;
  out->args.reserve(args.size());
  for (const FExprPtr& a : args) out->args.push_back(a ? a->Clone() : nullptr);
  return out;
}

std::string FExpr::ToText() const {
  switch (kind) {
    case FKind::kLiteral:
      if (literal.type() == DataType::kText) {
        std::string out = "\"";
        for (char c : literal.text_value()) {
          if (c == '"') out += "\"\"";
          else out += c;
        }
        return out + "\"";
      }
      return literal.ToDisplayString();
    case FKind::kCellRef:
      return FormatCellRef(cell);
    case FKind::kRange: {
      std::string out;
      if (!range.sheet.empty()) out = range.sheet + "!";
      CellRef s = range.start, e = range.end;
      out += (s.abs_col ? "$" : "") + ColumnName(s.col) +
             (s.abs_row ? "$" : "") + std::to_string(s.row + 1);
      out += ":";
      out += (e.abs_col ? "$" : "") + ColumnName(e.col) +
             (e.abs_row ? "$" : "") + std::to_string(e.row + 1);
      return out;
    }
    case FKind::kUnary:
      // Unary minus binds tighter than any binary operator, so binary
      // children always need parentheses to re-parse identically.
      if (args[0]->kind == FKind::kBinary) {
        return op + "(" + args[0]->ToText() + ")";
      }
      return op + args[0]->ToText();
    case FKind::kBinary: {
      int prec = OpPrecedence(op);
      bool right_assoc = op == "^";
      return RenderOperand(*args[0], prec, /*is_right=*/false, right_assoc) +
             op +
             RenderOperand(*args[1], prec, /*is_right=*/true, right_assoc);
    }
    case FKind::kFunction: {
      std::string out = op + "(";
      for (size_t i = 0; i < args.size(); ++i) {
        if (i > 0) out += ",";
        out += args[i]->ToText();
      }
      return out + ")";
    }
    case FKind::kRefError:
      return "#REF!";
  }
  return "?";
}

FExprPtr MakeFLiteral(Value v) {
  auto e = std::make_unique<FExpr>();
  e->kind = FKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

FExprPtr MakeFCell(CellRef ref) {
  auto e = std::make_unique<FExpr>();
  e->kind = FKind::kCellRef;
  e->cell = ref;
  return e;
}

FExprPtr MakeFRange(RangeRef range) {
  auto e = std::make_unique<FExpr>();
  e->kind = FKind::kRange;
  e->range = range;
  return e;
}

FExprPtr MakeFUnary(std::string op, FExprPtr arg) {
  auto e = std::make_unique<FExpr>();
  e->kind = FKind::kUnary;
  e->op = std::move(op);
  e->args.push_back(std::move(arg));
  return e;
}

FExprPtr MakeFBinary(std::string op, FExprPtr lhs, FExprPtr rhs) {
  auto e = std::make_unique<FExpr>();
  e->kind = FKind::kBinary;
  e->op = std::move(op);
  e->args.push_back(std::move(lhs));
  e->args.push_back(std::move(rhs));
  return e;
}

FExprPtr MakeFRefError() {
  auto e = std::make_unique<FExpr>();
  e->kind = FKind::kRefError;
  return e;
}

bool IsHybridFormula(const FExpr& e) {
  return e.kind == FKind::kFunction && (e.op == "DBSQL" || e.op == "DBTABLE");
}

}  // namespace dataspread::formula
