#ifndef DATASPREAD_FORMULA_FORMULA_PARSER_H_
#define DATASPREAD_FORMULA_FORMULA_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "formula/formula_ast.h"

namespace dataspread::formula {

/// Parses a formula. `text` must start with '='. Grammar (loosest to
/// tightest): comparisons; `&` concatenation; `+ -`; `* /`; `^` (right-
/// associative); unary `-`; primaries (literals, TRUE/FALSE, cell refs,
/// ranges, function calls incl. DBSQL/DBTABLE).
Result<FExprPtr> ParseFormula(std::string_view text);

}  // namespace dataspread::formula

#endif  // DATASPREAD_FORMULA_FORMULA_PARSER_H_
