#ifndef DATASPREAD_FORMULA_ENGINE_H_
#define DATASPREAD_FORMULA_ENGINE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "formula/formula_ast.h"
#include "sheet/workbook.h"

namespace dataspread::formula {

/// Identifies a cell by sheet pointer and display position.
struct CellKey {
  Sheet* sheet = nullptr;
  int64_t row = 0;
  int64_t col = 0;
  bool operator==(const CellKey& o) const {
    return sheet == o.sheet && row == o.row && col == o.col;
  }
};

struct CellKeyHash {
  size_t operator()(const CellKey& k) const {
    size_t h = std::hash<const void*>{}(k.sheet);
    h ^= std::hash<int64_t>{}(k.row) + 0x9e3779b9 + (h << 6) + (h >> 2);
    h ^= std::hash<int64_t>{}(k.col) + 0x9e3779b9 + (h << 6) + (h >> 2);
    return h;
  }
};

/// A single-cell precedent of a formula.
struct CellDep {
  Sheet* sheet;
  int64_t row, col;
};

/// A rectangular precedent of a formula (inclusive corners).
struct RangeDep {
  Sheet* sheet;
  int64_t r0, c0, r1, c1;
  bool Contains(const Sheet* s, int64_t row, int64_t col) const {
    return s == sheet && row >= r0 && row <= r1 && col >= c0 && col <= c1;
  }
};

/// Delegate for the paper's hybrid constructs. The formula engine does not
/// know about the database; when a cell's formula is DBSQL(...) or
/// DBTABLE(...), evaluation and dependency analysis are delegated to the
/// Interface Manager through this interface.
class ExternalFormulaHandler {
 public:
  virtual ~ExternalFormulaHandler() = default;

  /// Reports the precedents of a hybrid formula (the cells/ranges referenced
  /// via RANGEVALUE/RANGETABLE inside the SQL text).
  virtual Status AnalyzeDependencies(Sheet* sheet, int64_t row, int64_t col,
                                     const FExpr& root,
                                     std::vector<CellDep>* cells,
                                     std::vector<RangeDep>* ranges) = 0;

  /// Computes (or schedules) the hybrid cell and returns the anchor value.
  virtual Value EvaluateHybrid(Sheet* sheet, int64_t row, int64_t col,
                               const FExpr& root) = 0;
};

/// The value-at-a-time computation engine (paper §2.2/§3): compiles cell
/// formulas, tracks the dependency graph, and recomputes dirty cells in
/// topological order with cycle detection (#CYCLE!).
///
/// Recalculation entry points:
///  - RecalcDirty(): everything that is out of date;
///  - RecalcWindow(): only the dirty cells (and their dirty precedents)
///    needed to make a viewport consistent — the primitive the Compute
///    Engine's visible-first scheduling is built on (§3).
class FormulaEngine {
 public:
  explicit FormulaEngine(Workbook* workbook);
  ~FormulaEngine();

  FormulaEngine(const FormulaEngine&) = delete;
  FormulaEngine& operator=(const FormulaEngine&) = delete;

  /// Starts tracking a sheet (listens to its events). Sheets added to the
  /// workbook after construction must be attached explicitly.
  void AttachSheet(Sheet* sheet);

  void set_external_handler(ExternalFormulaHandler* handler) {
    external_handler_ = handler;
  }

  // ---- Recalculation ----

  /// Recompiles every formula cell and recomputes everything.
  Status RecalcAll();
  /// Recomputes the dirty closure in dependency order.
  Status RecalcDirty();
  /// Recomputes only the dirty cells needed for the given rectangle to be
  /// consistent. Remaining dirty cells stay queued.
  Status RecalcWindow(Sheet* sheet, int64_t r0, int64_t c0, int64_t r1,
                      int64_t c1);

  size_t dirty_count() const { return dirty_.size(); }
  bool IsDirty(Sheet* sheet, int64_t row, int64_t col) const {
    return dirty_.count(CellKey{sheet, row, col}) > 0;
  }
  size_t formula_count() const { return formulas_.size(); }
  uint64_t cells_evaluated() const { return cells_evaluated_; }

  /// Evaluates a formula string in the context of (sheet, row, col) without
  /// storing anything. Errors in the formula surface as error values.
  Result<Value> EvaluateImmediate(Sheet* sheet, std::string_view formula_text,
                                  int64_t row, int64_t col);

  /// Marks a cell dirty explicitly (used by the Interface Manager when a
  /// hybrid result arrives asynchronously).
  void MarkDirty(Sheet* sheet, int64_t row, int64_t col);

 private:
  struct Compiled {
    FExprPtr ast;
    std::vector<CellDep> cell_deps;
    std::vector<RangeDep> range_deps;
    bool hybrid = false;
  };

  // -- compile / decompile --
  void OnSheetEvent(Sheet* sheet, const SheetEvent& event);
  void CompileCell(Sheet* sheet, int64_t row, int64_t col,
                   const std::string& text);
  void RemoveFormula(const CellKey& key);
  void ExtractDeps(Sheet* context, const FExpr& e, Compiled* out);
  void RegisterDeps(const CellKey& key, const Compiled& compiled);
  void UnregisterDeps(const CellKey& key, const Compiled& compiled);

  // -- dependency queries --
  std::vector<CellKey> DependentsOf(const CellKey& key) const;

  // -- recalculation --
  /// Expands `seeds` to the full reverse-reachable closure.
  std::unordered_set<CellKey, CellKeyHash> DirtyClosure() const;
  /// Kahn's algorithm over formula cells in `target`; leftovers → #CYCLE!.
  Status RecalcSet(const std::unordered_set<CellKey, CellKeyHash>& target);
  Value EvaluateCell(const CellKey& key, const Compiled& compiled);

  // -- evaluation --
  struct EvalResult {
    Value scalar;
    bool is_range = false;
    int64_t rows = 0, cols = 0;
    std::vector<Value> grid;
  };
  EvalResult EvalNode(const FExpr& e, Sheet* context);
  Value EvalScalarNode(const FExpr& e, Sheet* context);

  // -- structural adjustment --
  void OnStructuralChange(Sheet* sheet, const SheetEvent& event);
  /// Adjusts one reference; returns false if it became invalid (#REF!).
  bool AdjustRef(CellRef* ref, Sheet* ref_sheet, Sheet* changed,
                 const SheetEvent& event) const;
  bool AdjustRangeRef(RangeRef* range, Sheet* ref_sheet, Sheet* changed,
                      const SheetEvent& event) const;
  /// Rewrites refs in an AST; returns true if anything became #REF!.
  bool AdjustAst(FExpr* e, Sheet* context, Sheet* changed,
                 const SheetEvent& event);

  /// Reverse index over range precedents. Ranges covering few 32×32 position
  /// tiles register in per-tile buckets (point lookups touch one bucket);
  /// ranges spanning many tiles go to a small linear overflow list. This
  /// keeps dependents-of-cell sublinear even with 10⁵ range formulas.
  struct RangeDepIndex {
    static constexpr int kTileBits = 5;
    static constexpr int64_t kMaxBucketTiles = 64;
    struct Entry {
      RangeDep range;
      CellKey dependent;
    };
    std::unordered_map<uint64_t, std::vector<Entry>> buckets;
    std::vector<Entry> large;

    static uint64_t TileKey(int64_t row, int64_t col) {
      return (static_cast<uint64_t>(row >> kTileBits) << 32) |
             static_cast<uint32_t>(col >> kTileBits);
    }
    void Add(const RangeDep& range, const CellKey& dependent);
    /// Removes the entries `Add(range, dependent)` created (targeted buckets).
    void Remove(const RangeDep& range, const CellKey& dependent);
    void CollectDependents(const CellKey& cell,
                           std::vector<CellKey>* out) const;
  };

  Workbook* workbook_;
  ExternalFormulaHandler* external_handler_ = nullptr;
  std::unordered_map<CellKey, Compiled, CellKeyHash> formulas_;
  std::unordered_set<CellKey, CellKeyHash> dirty_;
  // Reverse edges: precedent cell -> dependents (exact single-cell deps).
  std::unordered_map<CellKey, std::vector<CellKey>, CellKeyHash> exact_rev_;
  // Range precedents per sheet, tile-bucketed.
  std::unordered_map<Sheet*, RangeDepIndex> range_rev_;
  std::vector<std::pair<Sheet*, int>> sheet_listeners_;
  bool adjusting_ = false;  // suppress event handling during self-inflicted edits
  uint64_t cells_evaluated_ = 0;
};

}  // namespace dataspread::formula

#endif  // DATASPREAD_FORMULA_ENGINE_H_
