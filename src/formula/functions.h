#ifndef DATASPREAD_FORMULA_FUNCTIONS_H_
#define DATASPREAD_FORMULA_FUNCTIONS_H_

#include <string>
#include <vector>

#include "types/value.h"

namespace dataspread::formula {

/// A materialized formula-function argument: either a scalar or a
/// rectangular block of cell values (row-major; empty cells are NULL).
struct FArg {
  bool is_range = false;
  Value scalar;
  int64_t rows = 0;
  int64_t cols = 0;
  std::vector<Value> grid;

  static FArg Scalar(Value v) {
    FArg a;
    a.scalar = std::move(v);
    return a;
  }
};

/// Spreadsheet numeric coercion: NULL→0, BOOL→0/1, numbers pass, numeric text
/// parses, anything else yields a #VALUE! error value.
Value CoerceToNumber(const Value& v);

/// Spreadsheet truthiness; non-boolean non-numeric yields #VALUE!.
Value CoerceToBool(const Value& v);

/// True if `name` (upper-case) is in the built-in library (DBSQL/DBTABLE are
/// *not* — the Interface Manager owns those).
bool IsBuiltinFunction(const std::string& name);

/// Invokes a built-in. Errors are returned as error *values* (#VALUE!,
/// #DIV/0!, #N/A, #NAME?), matching value-at-a-time spreadsheet semantics.
///
/// Library: SUM AVERAGE COUNT COUNTA MIN MAX MEDIAN IF AND OR NOT ABS ROUND
/// SQRT MOD INT POWER CONCAT CONCATENATE LEN UPPER LOWER TRIM IFERROR ISBLANK
/// VLOOKUP SUMIF COUNTIF.
Value CallBuiltin(const std::string& name, std::vector<FArg>& args);

}  // namespace dataspread::formula

#endif  // DATASPREAD_FORMULA_FUNCTIONS_H_
