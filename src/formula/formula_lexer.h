#ifndef DATASPREAD_FORMULA_FORMULA_LEXER_H_
#define DATASPREAD_FORMULA_FORMULA_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace dataspread::formula {

enum class FTokenKind {
  kNumber,
  kString,   ///< "double quoted" with "" escaping
  kIdent,    ///< names, function names, and cell-reference candidates
  kSymbol,   ///< + - * / ^ & = <> <= >= < > ( ) , : ! %
  kEnd,
};

struct FToken {
  FTokenKind kind = FTokenKind::kEnd;
  std::string text;
  double number = 0.0;
  bool number_is_int = false;
  int64_t int_value = 0;
};

/// Tokenizes the body of a formula (text after the leading '=').
/// `$` is folded into identifier tokens so "$A$1" arrives as one token.
Result<std::vector<FToken>> TokenizeFormula(std::string_view body);

}  // namespace dataspread::formula

#endif  // DATASPREAD_FORMULA_FORMULA_LEXER_H_
