#include "formula/engine.h"

#include <algorithm>
#include <cmath>
#include <deque>

#include "formula/formula_parser.h"
#include "formula/functions.h"

namespace dataspread::formula {

FormulaEngine::FormulaEngine(Workbook* workbook) : workbook_(workbook) {
  for (const auto& sheet : workbook_->sheets()) {
    AttachSheet(sheet.get());
  }
}

FormulaEngine::~FormulaEngine() {
  for (auto& [sheet, token] : sheet_listeners_) {
    sheet->RemoveListener(token);
  }
}

void FormulaEngine::AttachSheet(Sheet* sheet) {
  int token = sheet->AddListener(
      [this, sheet](const SheetEvent& event) { OnSheetEvent(sheet, event); });
  sheet_listeners_.emplace_back(sheet, token);
}

// ---------------------------------------------------------------------------
// Compilation and dependency bookkeeping
// ---------------------------------------------------------------------------

void FormulaEngine::OnSheetEvent(Sheet* sheet, const SheetEvent& event) {
  if (adjusting_) return;
  if (event.kind == SheetEvent::Kind::kCellChanged) {
    CellKey key{sheet, event.row, event.col};
    const Cell* cell = sheet->GetCell(event.row, event.col);
    if (cell != nullptr && cell->has_formula()) {
      CompileCell(sheet, event.row, event.col, cell->formula);
    } else {
      RemoveFormula(key);
    }
    // The cell's (new) value invalidates everything computed from it.
    dirty_.insert(key);
    return;
  }
  OnStructuralChange(sheet, event);
}

void FormulaEngine::CompileCell(Sheet* sheet, int64_t row, int64_t col,
                                const std::string& text) {
  CellKey key{sheet, row, col};
  RemoveFormula(key);
  Compiled compiled;
  auto parsed = ParseFormula(text);
  if (!parsed.ok()) {
    // Malformed formulas surface as #NAME? and have no dependencies.
    adjusting_ = true;
    (void)sheet->SetComputedValue(row, col, Value::Error("#NAME?"));
    adjusting_ = false;
    return;
  }
  compiled.ast = std::move(parsed).value();
  compiled.hybrid = IsHybridFormula(*compiled.ast);
  if (compiled.hybrid && external_handler_ != nullptr) {
    Status s = external_handler_->AnalyzeDependencies(
        sheet, row, col, *compiled.ast, &compiled.cell_deps,
        &compiled.range_deps);
    if (!s.ok()) {
      adjusting_ = true;
      (void)sheet->SetComputedValue(row, col, Value::Error("#NAME?"));
      adjusting_ = false;
      return;
    }
  } else {
    ExtractDeps(sheet, *compiled.ast, &compiled);
  }
  RegisterDeps(key, compiled);
  formulas_[key] = std::move(compiled);
}

void FormulaEngine::RemoveFormula(const CellKey& key) {
  auto it = formulas_.find(key);
  if (it == formulas_.end()) return;
  UnregisterDeps(key, it->second);
  formulas_.erase(it);
}

void FormulaEngine::ExtractDeps(Sheet* context, const FExpr& e, Compiled* out) {
  switch (e.kind) {
    case FKind::kCellRef: {
      Sheet* target = context;
      if (!e.cell.sheet.empty()) {
        auto s = workbook_->GetSheet(e.cell.sheet);
        if (!s.ok()) return;  // evaluation will yield #REF!
        target = s.value();
      }
      out->cell_deps.push_back(CellDep{target, e.cell.row, e.cell.col});
      return;
    }
    case FKind::kRange: {
      Sheet* target = context;
      if (!e.range.sheet.empty()) {
        auto s = workbook_->GetSheet(e.range.sheet);
        if (!s.ok()) return;
        target = s.value();
      }
      out->range_deps.push_back(RangeDep{target, e.range.start.row,
                                         e.range.start.col, e.range.end.row,
                                         e.range.end.col});
      return;
    }
    default:
      for (const FExprPtr& a : e.args) {
        if (a) ExtractDeps(context, *a, out);
      }
  }
}

void FormulaEngine::RegisterDeps(const CellKey& key, const Compiled& compiled) {
  for (const CellDep& d : compiled.cell_deps) {
    exact_rev_[CellKey{d.sheet, d.row, d.col}].push_back(key);
  }
  for (const RangeDep& r : compiled.range_deps) {
    range_rev_[r.sheet].Add(r, key);
  }
}

void FormulaEngine::UnregisterDeps(const CellKey& key,
                                   const Compiled& compiled) {
  for (const CellDep& d : compiled.cell_deps) {
    auto it = exact_rev_.find(CellKey{d.sheet, d.row, d.col});
    if (it == exact_rev_.end()) continue;
    auto& vec = it->second;
    vec.erase(std::remove(vec.begin(), vec.end(), key), vec.end());
    if (vec.empty()) exact_rev_.erase(it);
  }
  for (const RangeDep& r : compiled.range_deps) {
    auto it = range_rev_.find(r.sheet);
    if (it == range_rev_.end()) continue;
    it->second.Remove(r, key);
  }
}

std::vector<CellKey> FormulaEngine::DependentsOf(const CellKey& key) const {
  std::vector<CellKey> out;
  auto it = exact_rev_.find(key);
  if (it != exact_rev_.end()) {
    out.insert(out.end(), it->second.begin(), it->second.end());
  }
  auto rit = range_rev_.find(key.sheet);
  if (rit != range_rev_.end()) {
    rit->second.CollectDependents(key, &out);
  }
  return out;
}

void FormulaEngine::RangeDepIndex::Add(const RangeDep& range,
                                       const CellKey& dependent) {
  int64_t tr0 = range.r0 >> kTileBits, tr1 = range.r1 >> kTileBits;
  int64_t tc0 = range.c0 >> kTileBits, tc1 = range.c1 >> kTileBits;
  int64_t tiles = (tr1 - tr0 + 1) * (tc1 - tc0 + 1);
  if (tiles > kMaxBucketTiles) {
    large.push_back(Entry{range, dependent});
    return;
  }
  for (int64_t tr = tr0; tr <= tr1; ++tr) {
    for (int64_t tc = tc0; tc <= tc1; ++tc) {
      buckets[(static_cast<uint64_t>(tr) << 32) | static_cast<uint32_t>(tc)]
          .push_back(Entry{range, dependent});
    }
  }
}

void FormulaEngine::RangeDepIndex::Remove(const RangeDep& range,
                                          const CellKey& dependent) {
  auto drop = [&](std::vector<Entry>& vec) {
    vec.erase(std::remove_if(vec.begin(), vec.end(),
                             [&](const Entry& e) {
                               return e.dependent == dependent;
                             }),
              vec.end());
  };
  int64_t tr0 = range.r0 >> kTileBits, tr1 = range.r1 >> kTileBits;
  int64_t tc0 = range.c0 >> kTileBits, tc1 = range.c1 >> kTileBits;
  int64_t tiles = (tr1 - tr0 + 1) * (tc1 - tc0 + 1);
  if (tiles > kMaxBucketTiles) {
    drop(large);
    return;
  }
  for (int64_t tr = tr0; tr <= tr1; ++tr) {
    for (int64_t tc = tc0; tc <= tc1; ++tc) {
      auto it = buckets.find((static_cast<uint64_t>(tr) << 32) |
                             static_cast<uint32_t>(tc));
      if (it != buckets.end()) drop(it->second);
    }
  }
}

void FormulaEngine::RangeDepIndex::CollectDependents(
    const CellKey& cell, std::vector<CellKey>* out) const {
  auto it = buckets.find(TileKey(cell.row, cell.col));
  if (it != buckets.end()) {
    for (const Entry& e : it->second) {
      if (e.range.Contains(cell.sheet, cell.row, cell.col)) {
        out->push_back(e.dependent);
      }
    }
  }
  for (const Entry& e : large) {
    if (e.range.Contains(cell.sheet, cell.row, cell.col)) {
      out->push_back(e.dependent);
    }
  }
}

// ---------------------------------------------------------------------------
// Recalculation
// ---------------------------------------------------------------------------

std::unordered_set<CellKey, CellKeyHash> FormulaEngine::DirtyClosure() const {
  std::unordered_set<CellKey, CellKeyHash> closure;
  std::deque<CellKey> frontier(dirty_.begin(), dirty_.end());
  for (const CellKey& k : frontier) closure.insert(k);
  while (!frontier.empty()) {
    CellKey k = frontier.front();
    frontier.pop_front();
    for (const CellKey& d : DependentsOf(k)) {
      if (closure.insert(d).second) frontier.push_back(d);
    }
  }
  return closure;
}

Status FormulaEngine::RecalcSet(
    const std::unordered_set<CellKey, CellKeyHash>& target) {
  // In-degree = number of *target formula* precedents feeding each target
  // formula, computed through forward dependents (cheap per edge).
  std::unordered_map<CellKey, int, CellKeyHash> in_degree;
  for (const CellKey& k : target) {
    if (formulas_.count(k) > 0 && in_degree.find(k) == in_degree.end()) {
      in_degree[k] = 0;
    }
    for (const CellKey& d : DependentsOf(k)) {
      if (target.count(d) > 0 && formulas_.count(d) > 0 &&
          formulas_.count(k) > 0) {
        in_degree[d] += 1;
      }
    }
  }
  std::deque<CellKey> ready;
  for (const auto& [k, deg] : in_degree) {
    if (deg == 0) ready.push_back(k);
  }
  size_t evaluated = 0;
  adjusting_ = true;  // computed writes must not re-enter the event handler
  while (!ready.empty()) {
    CellKey k = ready.front();
    ready.pop_front();
    auto fit = formulas_.find(k);
    if (fit != formulas_.end()) {
      Value v = EvaluateCell(k, fit->second);
      (void)k.sheet->SetComputedValue(k.row, k.col, std::move(v));
      ++cells_evaluated_;
    }
    ++evaluated;
    dirty_.erase(k);
    for (const CellKey& d : DependentsOf(k)) {
      auto dit = in_degree.find(d);
      if (dit == in_degree.end()) continue;
      if (--dit->second == 0) ready.push_back(d);
    }
  }
  // Whatever keeps a positive in-degree sits on a cycle.
  for (const auto& [k, deg] : in_degree) {
    if (deg > 0) {
      (void)k.sheet->SetComputedValue(k.row, k.col, Value::Error("#CYCLE!"));
      dirty_.erase(k);
    }
  }
  adjusting_ = false;
  // Non-formula dirty cells inside the target are now accounted for.
  for (const CellKey& k : target) {
    if (formulas_.count(k) == 0) dirty_.erase(k);
  }
  return Status::OK();
}

Status FormulaEngine::RecalcDirty() {
  if (dirty_.empty()) return Status::OK();
  return RecalcSet(DirtyClosure());
}

Status FormulaEngine::RecalcWindow(Sheet* sheet, int64_t r0, int64_t c0,
                                   int64_t r1, int64_t c1) {
  if (dirty_.empty()) return Status::OK();
  auto closure = DirtyClosure();
  // Targets: closure formulas inside the window.
  std::unordered_set<CellKey, CellKeyHash> needed;
  std::deque<CellKey> frontier;
  for (const CellKey& k : closure) {
    if (k.sheet == sheet && k.row >= r0 && k.row <= r1 && k.col >= c0 &&
        k.col <= c1) {
      if (needed.insert(k).second) frontier.push_back(k);
    }
  }
  // Pull in dirty precedents (transitively) so window results are exact.
  while (!frontier.empty()) {
    CellKey k = frontier.front();
    frontier.pop_front();
    auto fit = formulas_.find(k);
    if (fit == formulas_.end()) continue;
    for (const CellDep& d : fit->second.cell_deps) {
      CellKey p{d.sheet, d.row, d.col};
      if (closure.count(p) > 0 && needed.insert(p).second) {
        frontier.push_back(p);
      }
    }
    for (const RangeDep& r : fit->second.range_deps) {
      // Probe whichever side is smaller: the range's cells against the
      // closure set, or the closure against the range.
      int64_t area = (r.r1 - r.r0 + 1) * (r.c1 - r.c0 + 1);
      if (area > 0 && static_cast<size_t>(area) <= closure.size()) {
        for (int64_t row = r.r0; row <= r.r1; ++row) {
          for (int64_t col = r.c0; col <= r.c1; ++col) {
            CellKey p{r.sheet, row, col};
            if (closure.count(p) > 0 && needed.insert(p).second) {
              frontier.push_back(p);
            }
          }
        }
      } else {
        for (const CellKey& p : closure) {
          if (r.Contains(p.sheet, p.row, p.col) && needed.insert(p).second) {
            frontier.push_back(p);
          }
        }
      }
    }
  }
  return RecalcSet(needed);
}

Status FormulaEngine::RecalcAll() {
  // Recompile from the stored formula text (sheet is the source of truth).
  std::vector<CellKey> keys;
  keys.reserve(formulas_.size());
  for (const auto& [k, c] : formulas_) keys.push_back(k);
  for (const CellKey& k : keys) {
    const Cell* cell = k.sheet->GetCell(k.row, k.col);
    if (cell != nullptr && cell->has_formula()) {
      CompileCell(k.sheet, k.row, k.col, cell->formula);
    } else {
      RemoveFormula(k);
    }
    dirty_.insert(k);
  }
  return RecalcDirty();
}

void FormulaEngine::MarkDirty(Sheet* sheet, int64_t row, int64_t col) {
  dirty_.insert(CellKey{sheet, row, col});
}

Value FormulaEngine::EvaluateCell(const CellKey& key, const Compiled& compiled) {
  if (compiled.hybrid) {
    if (external_handler_ == nullptr) return Value::Error("#NAME?");
    return external_handler_->EvaluateHybrid(key.sheet, key.row, key.col,
                                             *compiled.ast);
  }
  return EvalScalarNode(*compiled.ast, key.sheet);
}

// ---------------------------------------------------------------------------
// Expression evaluation
// ---------------------------------------------------------------------------

FormulaEngine::EvalResult FormulaEngine::EvalNode(const FExpr& e,
                                                  Sheet* context) {
  EvalResult out;
  if (e.kind == FKind::kRange) {
    Sheet* target = context;
    if (!e.range.sheet.empty()) {
      auto s = workbook_->GetSheet(e.range.sheet);
      if (!s.ok()) {
        out.scalar = Value::Error("#REF!");
        return out;
      }
      target = s.value();
    }
    out.is_range = true;
    out.rows = e.range.num_rows();
    out.cols = e.range.num_cols();
    out.grid.assign(static_cast<size_t>(out.rows * out.cols), Value::Null());
    target->VisitRange(e.range.start.row, e.range.start.col, e.range.end.row,
                       e.range.end.col,
                       [&](int64_t r, int64_t c, const Cell& cell) {
                         size_t idx = static_cast<size_t>(
                             (r - e.range.start.row) * out.cols +
                             (c - e.range.start.col));
                         out.grid[idx] = cell.value;
                       });
    return out;
  }
  out.scalar = EvalScalarNode(e, context);
  return out;
}

Value FormulaEngine::EvalScalarNode(const FExpr& e, Sheet* context) {
  switch (e.kind) {
    case FKind::kLiteral:
      return e.literal;
    case FKind::kRefError:
      return Value::Error("#REF!");
    case FKind::kCellRef: {
      Sheet* target = context;
      if (!e.cell.sheet.empty()) {
        auto s = workbook_->GetSheet(e.cell.sheet);
        if (!s.ok()) return Value::Error("#REF!");
        target = s.value();
      }
      if (e.cell.row < 0 || e.cell.col < 0) return Value::Error("#REF!");
      return target->GetValue(e.cell.row, e.cell.col);
    }
    case FKind::kRange:
      // A bare range in scalar position (e.g. =A1:B2 + 1) is not supported.
      return Value::Error("#VALUE!");
    case FKind::kUnary: {
      Value a = EvalScalarNode(*e.args[0], context);
      if (a.is_error()) return a;
      Value n = CoerceToNumber(a);
      if (n.is_error()) return n;
      if (n.type() == DataType::kInt) return Value::Int(-n.int_value());
      return Value::Real(-n.AsReal().ValueOr(0.0));
    }
    case FKind::kBinary: {
      Value a = EvalScalarNode(*e.args[0], context);
      if (a.is_error()) return a;
      Value b = EvalScalarNode(*e.args[1], context);
      if (b.is_error()) return b;
      const std::string& op = e.op;
      if (op == "&") {
        return Value::Text(a.ToDisplayString() + b.ToDisplayString());
      }
      if (op == "=" || op == "<>" || op == "<" || op == "<=" || op == ">" ||
          op == ">=") {
        int c = Value::Compare(a, b);
        if (op == "=") return Value::Bool(c == 0);
        if (op == "<>") return Value::Bool(c != 0);
        if (op == "<") return Value::Bool(c < 0);
        if (op == "<=") return Value::Bool(c <= 0);
        if (op == ">") return Value::Bool(c > 0);
        return Value::Bool(c >= 0);
      }
      Value na = CoerceToNumber(a);
      if (na.is_error()) return na;
      Value nb = CoerceToNumber(b);
      if (nb.is_error()) return nb;
      double x = na.AsReal().ValueOr(0.0);
      double y = nb.AsReal().ValueOr(0.0);
      bool both_int =
          na.type() == DataType::kInt && nb.type() == DataType::kInt;
      if (op == "+") {
        return both_int ? Value::Int(na.int_value() + nb.int_value())
                        : Value::Real(x + y);
      }
      if (op == "-") {
        return both_int ? Value::Int(na.int_value() - nb.int_value())
                        : Value::Real(x - y);
      }
      if (op == "*") {
        return both_int ? Value::Int(na.int_value() * nb.int_value())
                        : Value::Real(x * y);
      }
      if (op == "/") {
        if (y == 0.0) return Value::Error("#DIV/0!");
        return Value::Real(x / y);
      }
      if (op == "^") return Value::Real(std::pow(x, y));
      return Value::Error("#VALUE!");
    }
    case FKind::kFunction: {
      if (e.op == "DBSQL" || e.op == "DBTABLE") {
        // Hybrid constructs are only valid as the whole formula; nested use
        // cannot spill and is rejected.
        return Value::Error("#VALUE!");
      }
      if (!IsBuiltinFunction(e.op)) return Value::Error("#NAME?");
      std::vector<FArg> args;
      args.reserve(e.args.size());
      for (const FExprPtr& a : e.args) {
        EvalResult r = EvalNode(*a, context);
        FArg arg;
        if (r.is_range) {
          arg.is_range = true;
          arg.rows = r.rows;
          arg.cols = r.cols;
          arg.grid = std::move(r.grid);
        } else {
          arg.scalar = std::move(r.scalar);
        }
        args.push_back(std::move(arg));
      }
      return CallBuiltin(e.op, args);
    }
  }
  return Value::Error("#VALUE!");
}

Result<Value> FormulaEngine::EvaluateImmediate(Sheet* sheet,
                                               std::string_view formula_text,
                                               int64_t row, int64_t col) {
  (void)row;
  (void)col;
  DS_ASSIGN_OR_RETURN(FExprPtr ast, ParseFormula(formula_text));
  return EvalScalarNode(*ast, sheet);
}

// ---------------------------------------------------------------------------
// Structural adjustment (row/column insertion and deletion)
// ---------------------------------------------------------------------------

bool FormulaEngine::AdjustRef(CellRef* ref, Sheet* ref_sheet, Sheet* changed,
                              const SheetEvent& event) const {
  if (ref_sheet != changed) return true;
  switch (event.kind) {
    case SheetEvent::Kind::kRowsInserted:
      if (ref->row >= event.index) ref->row += event.count;
      return true;
    case SheetEvent::Kind::kRowsDeleted:
      if (ref->row >= event.index + event.count) {
        ref->row -= event.count;
        return true;
      }
      if (ref->row >= event.index) return false;  // referenced row destroyed
      return true;
    case SheetEvent::Kind::kColsInserted:
      if (ref->col >= event.index) ref->col += event.count;
      return true;
    case SheetEvent::Kind::kColsDeleted:
      if (ref->col >= event.index + event.count) {
        ref->col -= event.count;
        return true;
      }
      if (ref->col >= event.index) return false;
      return true;
    default:
      return true;
  }
}

bool FormulaEngine::AdjustRangeRef(RangeRef* range, Sheet* ref_sheet,
                                   Sheet* changed,
                                   const SheetEvent& event) const {
  if (ref_sheet != changed) return true;
  bool is_rows = event.kind == SheetEvent::Kind::kRowsInserted ||
                 event.kind == SheetEvent::Kind::kRowsDeleted;
  int64_t* lo = is_rows ? &range->start.row : &range->start.col;
  int64_t* hi = is_rows ? &range->end.row : &range->end.col;
  if (event.kind == SheetEvent::Kind::kRowsInserted ||
      event.kind == SheetEvent::Kind::kColsInserted) {
    if (*lo >= event.index) *lo += event.count;
    if (*hi >= event.index) *hi += event.count;
    return true;
  }
  // Deletion: clamp the range to the surviving region.
  int64_t del_lo = event.index;
  int64_t del_hi = event.index + event.count;  // exclusive
  if (*lo >= del_hi) {
    *lo -= event.count;
  } else if (*lo >= del_lo) {
    *lo = del_lo;
  }
  if (*hi >= del_hi) {
    *hi -= event.count;
  } else if (*hi >= del_lo) {
    *hi = del_lo - 1;
  }
  return *hi >= *lo;  // false = range entirely deleted
}

bool FormulaEngine::AdjustAst(FExpr* e, Sheet* context, Sheet* changed,
                              const SheetEvent& event) {
  bool broke = false;
  switch (e->kind) {
    case FKind::kCellRef: {
      Sheet* target = context;
      if (!e->cell.sheet.empty()) {
        auto s = workbook_->GetSheet(e->cell.sheet);
        target = s.ok() ? s.value() : nullptr;
      }
      if (target != nullptr && !AdjustRef(&e->cell, target, changed, event)) {
        e->kind = FKind::kRefError;
        broke = true;
      }
      return broke;
    }
    case FKind::kRange: {
      Sheet* target = context;
      if (!e->range.sheet.empty()) {
        auto s = workbook_->GetSheet(e->range.sheet);
        target = s.ok() ? s.value() : nullptr;
      }
      if (target != nullptr &&
          !AdjustRangeRef(&e->range, target, changed, event)) {
        e->kind = FKind::kRefError;
        broke = true;
      }
      return broke;
    }
    default:
      for (FExprPtr& a : e->args) {
        if (a && AdjustAst(a.get(), context, changed, event)) broke = true;
      }
      return broke;
  }
}

void FormulaEngine::OnStructuralChange(Sheet* sheet, const SheetEvent& event) {
  bool is_rows = event.kind == SheetEvent::Kind::kRowsInserted ||
                 event.kind == SheetEvent::Kind::kRowsDeleted;
  bool is_insert = event.kind == SheetEvent::Kind::kRowsInserted ||
                   event.kind == SheetEvent::Kind::kColsInserted;

  // 1. Re-key formulas and dirty cells on the edited sheet.
  auto shift_key = [&](CellKey k) -> std::optional<CellKey> {
    if (k.sheet != sheet) return k;
    int64_t* coord = is_rows ? &k.row : &k.col;
    if (is_insert) {
      if (*coord >= event.index) *coord += event.count;
      return k;
    }
    if (*coord >= event.index + event.count) {
      *coord -= event.count;
      return k;
    }
    if (*coord >= event.index) return std::nullopt;  // cell destroyed
    return k;
  };

  std::unordered_map<CellKey, Compiled, CellKeyHash> new_formulas;
  for (auto& [key, compiled] : formulas_) {
    auto nk = shift_key(key);
    if (nk.has_value()) new_formulas.emplace(*nk, std::move(compiled));
  }
  formulas_ = std::move(new_formulas);

  std::unordered_set<CellKey, CellKeyHash> new_dirty;
  for (const CellKey& key : dirty_) {
    auto nk = shift_key(key);
    if (nk.has_value()) new_dirty.insert(*nk);
  }
  dirty_ = std::move(new_dirty);

  // 2. Adjust references in every formula (any sheet may reference this one),
  //    rewrite stored text, and rebuild dependency records.
  exact_rev_.clear();
  range_rev_.clear();
  adjusting_ = true;
  for (auto& [key, compiled] : formulas_) {
    bool broke = AdjustAst(compiled.ast.get(), key.sheet, sheet, event);
    compiled.cell_deps.clear();
    compiled.range_deps.clear();
    if (compiled.hybrid && external_handler_ != nullptr) {
      (void)external_handler_->AnalyzeDependencies(key.sheet, key.row, key.col,
                                                   *compiled.ast,
                                                   &compiled.cell_deps,
                                                   &compiled.range_deps);
    } else {
      ExtractDeps(key.sheet, *compiled.ast, &compiled);
    }
    RegisterDeps(key, compiled);
    (void)key.sheet->ReplaceFormulaText(key.row, key.col,
                                        "=" + compiled.ast->ToText());
    if (broke) dirty_.insert(key);
  }
  adjusting_ = false;

  // 3. Deletions destroy referenced content: any formula whose precedent set
  //    intersected the removed band was either #REF!'d (handled above) or had
  //    a range clamped — ranges clamped still change value, so mark formulas
  //    whose range deps touched the band dirty.
  if (!is_insert) {
    for (auto& [key, compiled] : formulas_) {
      for (const RangeDep& r : compiled.range_deps) {
        if (r.sheet != sheet) continue;
        int64_t lo = is_rows ? r.r0 : r.c0;
        int64_t hi = is_rows ? r.r1 : r.c1;
        // After clamping, a range that abuts the deleted band may have lost
        // members; conservatively dirty formulas near the band.
        if (hi >= event.index - 1 && lo <= event.index + event.count) {
          dirty_.insert(key);
          break;
        }
      }
    }
  }
}

}  // namespace dataspread::formula
