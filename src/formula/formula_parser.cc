#include "formula/formula_parser.h"

#include "common/str_util.h"
#include "formula/formula_lexer.h"

namespace dataspread::formula {

namespace {

class FParser {
 public:
  explicit FParser(std::vector<FToken> tokens) : tokens_(std::move(tokens)) {}

  Result<FExprPtr> Parse() {
    DS_ASSIGN_OR_RETURN(FExprPtr e, ParseComparison());
    if (Peek().kind != FTokenKind::kEnd) {
      return Status::ParseError("unexpected '" + Peek().text + "' in formula");
    }
    return e;
  }

 private:
  const FToken& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const FToken& Advance() { return tokens_[pos_++]; }
  bool MatchSymbol(std::string_view sym) {
    if (Peek().kind == FTokenKind::kSymbol && Peek().text == sym) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status ExpectSymbol(std::string_view sym) {
    if (MatchSymbol(sym)) return Status::OK();
    return Status::ParseError("expected '" + std::string(sym) +
                              "' in formula before '" + Peek().text + "'");
  }

  Result<FExprPtr> ParseComparison() {
    DS_ASSIGN_OR_RETURN(FExprPtr lhs, ParseConcat());
    while (Peek().kind == FTokenKind::kSymbol &&
           (Peek().text == "=" || Peek().text == "<>" || Peek().text == "<" ||
            Peek().text == "<=" || Peek().text == ">" || Peek().text == ">=")) {
      std::string op = Advance().text;
      DS_ASSIGN_OR_RETURN(FExprPtr rhs, ParseConcat());
      lhs = MakeFBinary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<FExprPtr> ParseConcat() {
    DS_ASSIGN_OR_RETURN(FExprPtr lhs, ParseAdditive());
    while (MatchSymbol("&")) {
      DS_ASSIGN_OR_RETURN(FExprPtr rhs, ParseAdditive());
      lhs = MakeFBinary("&", std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<FExprPtr> ParseAdditive() {
    DS_ASSIGN_OR_RETURN(FExprPtr lhs, ParseMultiplicative());
    while (Peek().kind == FTokenKind::kSymbol &&
           (Peek().text == "+" || Peek().text == "-")) {
      std::string op = Advance().text;
      DS_ASSIGN_OR_RETURN(FExprPtr rhs, ParseMultiplicative());
      lhs = MakeFBinary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<FExprPtr> ParseMultiplicative() {
    DS_ASSIGN_OR_RETURN(FExprPtr lhs, ParsePower());
    while (Peek().kind == FTokenKind::kSymbol &&
           (Peek().text == "*" || Peek().text == "/")) {
      std::string op = Advance().text;
      DS_ASSIGN_OR_RETURN(FExprPtr rhs, ParsePower());
      lhs = MakeFBinary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<FExprPtr> ParsePower() {
    DS_ASSIGN_OR_RETURN(FExprPtr base, ParseUnary());
    if (MatchSymbol("^")) {
      DS_ASSIGN_OR_RETURN(FExprPtr exp, ParsePower());  // right-associative
      return MakeFBinary("^", std::move(base), std::move(exp));
    }
    return base;
  }

  Result<FExprPtr> ParseUnary() {
    if (MatchSymbol("-")) {
      DS_ASSIGN_OR_RETURN(FExprPtr arg, ParseUnary());
      return MakeFUnary("-", std::move(arg));
    }
    if (MatchSymbol("+")) return ParseUnary();
    return ParsePrimary();
  }

  Result<FExprPtr> ParsePrimary() {
    const FToken& t = Peek();
    if (t.kind == FTokenKind::kNumber) {
      Advance();
      return MakeFLiteral(t.number_is_int ? Value::Int(t.int_value)
                                          : Value::Real(t.number));
    }
    if (t.kind == FTokenKind::kString) {
      Advance();
      return MakeFLiteral(Value::Text(t.text));
    }
    if (t.kind == FTokenKind::kSymbol && t.text == "(") {
      Advance();
      DS_ASSIGN_OR_RETURN(FExprPtr inner, ParseComparison());
      DS_RETURN_IF_ERROR(ExpectSymbol(")"));
      return inner;
    }
    if (t.kind == FTokenKind::kIdent) return ParseIdent();
    return Status::ParseError("expected a value before '" + t.text +
                              "' in formula");
  }

  Result<FExprPtr> ParseIdent() {
    std::string first = Advance().text;
    if (EqualsIgnoreCase(first, "TRUE")) return MakeFLiteral(Value::Bool(true));
    if (EqualsIgnoreCase(first, "FALSE")) {
      return MakeFLiteral(Value::Bool(false));
    }
    // Function call.
    if (Peek().kind == FTokenKind::kSymbol && Peek().text == "(") {
      Advance();  // (
      auto e = std::make_unique<FExpr>();
      e->kind = FKind::kFunction;
      e->op = ToUpper(first);
      if (!MatchSymbol(")")) {
        do {
          DS_ASSIGN_OR_RETURN(FExprPtr arg, ParseComparison());
          e->args.push_back(std::move(arg));
        } while (MatchSymbol(","));
        DS_RETURN_IF_ERROR(ExpectSymbol(")"));
      }
      return FExprPtr(std::move(e));
    }
    // Sheet-qualified reference: Name!A1 or Name!A1:B2.
    std::string sheet;
    std::string cell_text = first;
    if (Peek().kind == FTokenKind::kSymbol && Peek().text == "!") {
      Advance();  // !
      if (Peek().kind != FTokenKind::kIdent) {
        return Status::ParseError("expected a cell after '" + first + "!'");
      }
      sheet = first;
      cell_text = Advance().text;
    }
    DS_ASSIGN_OR_RETURN(CellRef start, ParseCellRef(cell_text));
    start.sheet = sheet;
    // Range?
    if (Peek().kind == FTokenKind::kSymbol && Peek().text == ":") {
      Advance();  // :
      if (Peek().kind != FTokenKind::kIdent) {
        return Status::ParseError("expected a cell after ':'");
      }
      DS_ASSIGN_OR_RETURN(CellRef end, ParseCellRef(Advance().text));
      RangeRef range;
      range.sheet = sheet;
      range.start = start;
      range.end = end;
      if (range.start.row > range.end.row) {
        std::swap(range.start.row, range.end.row);
      }
      if (range.start.col > range.end.col) {
        std::swap(range.start.col, range.end.col);
      }
      return MakeFRange(range);
    }
    return MakeFCell(start);
  }

  std::vector<FToken> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<FExprPtr> ParseFormula(std::string_view text) {
  if (text.empty() || text[0] != '=') {
    return Status::ParseError("formula must start with '='");
  }
  DS_ASSIGN_OR_RETURN(std::vector<FToken> tokens, TokenizeFormula(text.substr(1)));
  FParser parser(std::move(tokens));
  return parser.Parse();
}

}  // namespace dataspread::formula
