#include "formula/functions.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/str_util.h"

namespace dataspread::formula {

namespace {

Value ValueError() { return Value::Error("#VALUE!"); }
Value NaError() { return Value::Error("#N/A"); }

/// Applies `fn` to every non-empty value of the argument (range elements or
/// the scalar itself). Stops and returns an error value if one is seen.
template <typename Fn>
Value ForEachValue(const FArg& arg, Fn&& fn) {
  if (arg.is_range) {
    for (const Value& v : arg.grid) {
      if (v.is_error()) return v;
      if (v.is_null()) continue;
      fn(v, /*from_range=*/true);
    }
    return Value::Null();
  }
  if (arg.scalar.is_error()) return arg.scalar;
  if (!arg.scalar.is_null()) fn(arg.scalar, /*from_range=*/false);
  return Value::Null();
}

/// Numeric fold over all args. Range text/bool cells are skipped (Excel SUM
/// semantics); direct scalar args are coerced and error on failure.
struct NumericFold {
  double total = 0;
  int64_t count = 0;
  double min = 0, max = 0;
  std::vector<double> values;  // for MEDIAN
  Value error;                 // first error encountered

  void Add(double d) {
    if (count == 0) {
      min = max = d;
    } else {
      min = std::min(min, d);
      max = std::max(max, d);
    }
    total += d;
    count += 1;
    values.push_back(d);
  }
};

NumericFold FoldNumbers(std::vector<FArg>& args) {
  NumericFold fold;
  for (const FArg& arg : args) {
    Value err = ForEachValue(arg, [&](const Value& v, bool from_range) {
      if (!fold.error.is_null()) return;
      if (from_range) {
        // Range cells participate only when numeric.
        if (v.is_numeric()) {
          auto d = v.AsReal();
          if (d.ok()) fold.Add(d.value());
        }
        return;
      }
      Value n = CoerceToNumber(v);
      if (n.is_error()) {
        fold.error = n;
        return;
      }
      auto d = n.AsReal();
      if (d.ok()) fold.Add(d.value());
    });
    if (err.is_error() && fold.error.is_null()) fold.error = err;
  }
  return fold;
}

Value BoolFold(std::vector<FArg>& args, bool is_and) {
  bool acc = is_and;
  bool saw_any = false;
  Value error;
  for (const FArg& arg : args) {
    Value err = ForEachValue(arg, [&](const Value& v, bool from_range) {
      if (error.is_error()) return;
      if (from_range && v.type() == DataType::kText) return;  // ignored
      Value b = CoerceToBool(v);
      if (b.is_error()) {
        error = b;
        return;
      }
      saw_any = true;
      if (is_and) {
        acc = acc && b.bool_value();
      } else {
        acc = acc || b.bool_value();
      }
    });
    if (err.is_error() && !error.is_error()) error = err;
  }
  if (error.is_error()) return error;
  if (!saw_any) return ValueError();
  return Value::Bool(acc);
}

/// Excel-style criteria: ">90", "<=5", "<>x", "=y", or a bare value meaning
/// equality.
struct Criteria {
  std::string op;  // "=", "<>", "<", "<=", ">", ">="
  Value operand;
};

Criteria ParseCriteria(const Value& v) {
  Criteria c;
  c.op = "=";
  if (v.type() != DataType::kText) {
    c.operand = v;
    return c;
  }
  std::string_view s = v.text_value();
  for (std::string_view op : {"<>", "<=", ">=", "<", ">", "="}) {
    if (s.substr(0, op.size()) == op) {
      c.op = std::string(op);
      c.operand = Value::FromUserInput(s.substr(op.size()));
      return c;
    }
  }
  c.operand = v;
  return c;
}

bool MatchCriteria(const Criteria& c, const Value& v) {
  if (v.is_error()) return false;
  if (c.operand.is_null()) return v.is_null() && c.op == "=";
  if (v.is_null()) return false;
  // Numeric comparisons require both numeric; text compares as text.
  int cmp;
  if (c.operand.is_numeric() || c.operand.type() == DataType::kBool) {
    if (!v.is_numeric() && v.type() != DataType::kBool) return false;
    cmp = Value::Compare(v, c.operand);
  } else {
    if (v.type() != DataType::kText) return false;
    cmp = Value::Compare(v, c.operand);
  }
  if (c.op == "=") return cmp == 0;
  if (c.op == "<>") return cmp != 0;
  if (c.op == "<") return cmp < 0;
  if (c.op == "<=") return cmp <= 0;
  if (c.op == ">") return cmp > 0;
  if (c.op == ">=") return cmp >= 0;
  return false;
}

}  // namespace

Value CoerceToNumber(const Value& v) {
  switch (v.type()) {
    case DataType::kNull:
      return Value::Real(0.0);
    case DataType::kBool:
      return Value::Real(v.bool_value() ? 1.0 : 0.0);
    case DataType::kInt:
    case DataType::kReal:
      return v;
    case DataType::kText: {
      Value parsed = Value::FromUserInput(v.text_value());
      if (parsed.is_numeric()) return parsed;
      return ValueError();
    }
    case DataType::kError:
      return v;
  }
  return ValueError();
}

Value CoerceToBool(const Value& v) {
  switch (v.type()) {
    case DataType::kNull:
      return Value::Bool(false);
    case DataType::kBool:
      return v;
    case DataType::kInt:
      return Value::Bool(v.int_value() != 0);
    case DataType::kReal:
      return Value::Bool(v.real_value() != 0.0);
    case DataType::kText:
      if (EqualsIgnoreCase(v.text_value(), "true")) return Value::Bool(true);
      if (EqualsIgnoreCase(v.text_value(), "false")) return Value::Bool(false);
      return ValueError();
    case DataType::kError:
      return v;
  }
  return ValueError();
}

bool IsBuiltinFunction(const std::string& name) {
  static const auto* kNames = new std::unordered_set<std::string>{
      "SUM",    "AVERAGE", "COUNT",  "COUNTA", "MIN",    "MAX",
      "MEDIAN", "IF",      "AND",    "OR",     "NOT",    "ABS",
      "ROUND",  "SQRT",    "MOD",    "INT",    "POWER",  "CONCAT",
      "CONCATENATE", "LEN", "UPPER", "LOWER",  "TRIM",   "IFERROR",
      "ISBLANK", "VLOOKUP", "SUMIF", "COUNTIF",
  };
  return kNames->count(name) > 0;
}

Value CallBuiltin(const std::string& name, std::vector<FArg>& args) {
  auto arity_error = [&]() { return ValueError(); };

  if (name == "SUM" || name == "AVERAGE" || name == "MIN" || name == "MAX" ||
      name == "COUNT" || name == "MEDIAN") {
    NumericFold fold = FoldNumbers(args);
    if (fold.error.is_error()) return fold.error;
    if (name == "SUM") return Value::Real(fold.total);
    if (name == "COUNT") return Value::Int(fold.count);
    if (fold.count == 0) {
      return name == "AVERAGE" ? Value::Error("#DIV/0!") : Value::Real(0.0);
    }
    if (name == "AVERAGE") {
      return Value::Real(fold.total / static_cast<double>(fold.count));
    }
    if (name == "MIN") return Value::Real(fold.min);
    if (name == "MAX") return Value::Real(fold.max);
    // MEDIAN
    std::sort(fold.values.begin(), fold.values.end());
    size_t n = fold.values.size();
    double med = (n % 2 == 1)
                     ? fold.values[n / 2]
                     : (fold.values[n / 2 - 1] + fold.values[n / 2]) / 2.0;
    return Value::Real(med);
  }

  if (name == "COUNTA") {
    int64_t count = 0;
    for (const FArg& arg : args) {
      Value err = ForEachValue(arg, [&](const Value&, bool) { ++count; });
      if (err.is_error()) return err;
    }
    return Value::Int(count);
  }

  if (name == "IF") {
    if (args.size() < 2 || args.size() > 3 || args[0].is_range) {
      return arity_error();
    }
    Value cond = CoerceToBool(args[0].scalar);
    if (cond.is_error()) return cond;
    if (cond.bool_value()) return args[1].is_range ? ValueError() : args[1].scalar;
    if (args.size() == 3) {
      return args[2].is_range ? ValueError() : args[2].scalar;
    }
    return Value::Bool(false);
  }

  if (name == "AND") return BoolFold(args, /*is_and=*/true);
  if (name == "OR") return BoolFold(args, /*is_and=*/false);

  if (name == "NOT") {
    if (args.size() != 1 || args[0].is_range) return arity_error();
    Value b = CoerceToBool(args[0].scalar);
    if (b.is_error()) return b;
    return Value::Bool(!b.bool_value());
  }

  if (name == "ABS" || name == "SQRT" || name == "INT") {
    if (args.size() != 1 || args[0].is_range) return arity_error();
    Value n = CoerceToNumber(args[0].scalar);
    if (n.is_error()) return n;
    double d = n.AsReal().ValueOr(0.0);
    if (name == "ABS") return Value::Real(std::fabs(d));
    if (name == "SQRT") {
      if (d < 0) return Value::Error("#NUM!");
      return Value::Real(std::sqrt(d));
    }
    return Value::Int(static_cast<int64_t>(std::floor(d)));
  }

  if (name == "ROUND") {
    if (args.empty() || args.size() > 2 || args[0].is_range) {
      return arity_error();
    }
    Value n = CoerceToNumber(args[0].scalar);
    if (n.is_error()) return n;
    double digits = 0;
    if (args.size() == 2) {
      Value d = CoerceToNumber(args[1].scalar);
      if (d.is_error()) return d;
      digits = d.AsReal().ValueOr(0.0);
    }
    double scale = std::pow(10.0, digits);
    return Value::Real(std::round(n.AsReal().ValueOr(0.0) * scale) / scale);
  }

  if (name == "MOD" || name == "POWER") {
    if (args.size() != 2 || args[0].is_range || args[1].is_range) {
      return arity_error();
    }
    Value a = CoerceToNumber(args[0].scalar);
    Value b = CoerceToNumber(args[1].scalar);
    if (a.is_error()) return a;
    if (b.is_error()) return b;
    double x = a.AsReal().ValueOr(0.0);
    double y = b.AsReal().ValueOr(0.0);
    if (name == "MOD") {
      if (y == 0) return Value::Error("#DIV/0!");
      double m = std::fmod(x, y);
      if (m != 0 && ((m < 0) != (y < 0))) m += y;  // Excel sign convention
      return Value::Real(m);
    }
    return Value::Real(std::pow(x, y));
  }

  if (name == "CONCAT" || name == "CONCATENATE") {
    std::string out;
    for (const FArg& arg : args) {
      Value err = ForEachValue(arg, [&](const Value& v, bool) {
        out += v.ToDisplayString();
      });
      if (err.is_error()) return err;
    }
    return Value::Text(std::move(out));
  }

  if (name == "LEN" || name == "UPPER" || name == "LOWER" || name == "TRIM") {
    if (args.size() != 1 || args[0].is_range) return arity_error();
    const Value& v = args[0].scalar;
    if (v.is_error()) return v;
    std::string s = v.ToDisplayString();
    if (name == "LEN") return Value::Int(static_cast<int64_t>(s.size()));
    if (name == "UPPER") return Value::Text(ToUpper(s));
    if (name == "LOWER") return Value::Text(ToLower(s));
    return Value::Text(Trim(s));
  }

  if (name == "IFERROR") {
    if (args.size() != 2 || args[0].is_range || args[1].is_range) {
      return arity_error();
    }
    return args[0].scalar.is_error() ? args[1].scalar : args[0].scalar;
  }

  if (name == "ISBLANK") {
    if (args.size() != 1 || args[0].is_range) return arity_error();
    return Value::Bool(args[0].scalar.is_null());
  }

  if (name == "VLOOKUP") {
    if (args.size() < 3 || args.size() > 4 || args[0].is_range ||
        !args[1].is_range || args[2].is_range) {
      return arity_error();
    }
    const Value& key = args[0].scalar;
    if (key.is_error()) return key;
    Value idx_v = CoerceToNumber(args[2].scalar);
    if (idx_v.is_error()) return idx_v;
    int64_t col = idx_v.AsInt().ValueOr(0);
    if (col < 1 || col > args[1].cols) return arity_error();
    bool approximate = false;
    if (args.size() == 4 && !args[3].is_range) {
      Value ap = CoerceToBool(args[3].scalar);
      if (!ap.is_error()) approximate = ap.bool_value();
    }
    const FArg& table = args[1];
    int64_t best_row = -1;
    for (int64_t r = 0; r < table.rows; ++r) {
      const Value& candidate = table.grid[static_cast<size_t>(r * table.cols)];
      if (candidate.is_error()) continue;
      if (!approximate) {
        if (!candidate.is_null() && candidate == key) {
          best_row = r;
          break;
        }
      } else {
        if (!candidate.is_null() && Value::Compare(candidate, key) <= 0) {
          best_row = r;  // last row with value <= key (assumes sorted input)
        }
      }
    }
    if (best_row < 0) return NaError();
    return table.grid[static_cast<size_t>(best_row * table.cols + (col - 1))];
  }

  if (name == "SUMIF" || name == "COUNTIF") {
    if (args.size() < 2 || !args[0].is_range || args[1].is_range) {
      return arity_error();
    }
    Criteria crit = ParseCriteria(args[1].scalar);
    const FArg& test = args[0];
    const FArg* sum_range = nullptr;
    if (name == "SUMIF" && args.size() == 3) {
      if (!args[2].is_range) return arity_error();
      sum_range = &args[2];
    }
    double total = 0;
    int64_t count = 0;
    for (size_t i = 0; i < test.grid.size(); ++i) {
      if (!MatchCriteria(crit, test.grid[i])) continue;
      ++count;
      const Value* addend = &test.grid[i];
      if (sum_range != nullptr) {
        if (i >= sum_range->grid.size()) continue;
        addend = &sum_range->grid[i];
      }
      if (addend->is_numeric()) total += addend->AsReal().ValueOr(0.0);
    }
    return name == "COUNTIF" ? Value::Int(count) : Value::Real(total);
  }

  return Value::Error("#NAME?");
}

}  // namespace dataspread::formula
