#include "formula/formula_lexer.h"

#include <cctype>

#include "common/str_util.h"

namespace dataspread::formula {

Result<std::vector<FToken>> TokenizeFormula(std::string_view body) {
  std::vector<FToken> tokens;
  size_t i = 0;
  const size_t n = body.size();
  while (i < n) {
    char c = body[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(body[i + 1])))) {
      size_t start = i;
      bool is_real = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(body[i]))) ++i;
      if (i < n && body[i] == '.') {
        is_real = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(body[i]))) ++i;
      }
      if (i < n && (body[i] == 'e' || body[i] == 'E')) {
        size_t exp = i + 1;
        if (exp < n && (body[exp] == '+' || body[exp] == '-')) ++exp;
        if (exp < n && std::isdigit(static_cast<unsigned char>(body[exp]))) {
          is_real = true;
          i = exp;
          while (i < n && std::isdigit(static_cast<unsigned char>(body[i]))) ++i;
        }
      }
      std::string text(body.substr(start, i - start));
      FToken t;
      t.kind = FTokenKind::kNumber;
      t.text = text;
      if (!is_real) {
        if (auto v = ParseInt64(text)) {
          t.number_is_int = true;
          t.int_value = *v;
          t.number = static_cast<double>(*v);
          tokens.push_back(std::move(t));
          continue;
        }
      }
      auto d = ParseDouble(text);
      if (!d) return Status::ParseError("bad number '" + text + "'");
      t.number = *d;
      tokens.push_back(std::move(t));
      continue;
    }
    if (c == '"') {
      std::string contents;
      ++i;
      bool closed = false;
      while (i < n) {
        if (body[i] == '"') {
          if (i + 1 < n && body[i + 1] == '"') {
            contents += '"';
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        contents += body[i++];
      }
      if (!closed) return Status::ParseError("unterminated string in formula");
      FToken t;
      t.kind = FTokenKind::kString;
      t.text = std::move(contents);
      tokens.push_back(std::move(t));
      continue;
    }
    if (c == '\'') {
      // 'single quoted' strings accepted as well (SQL text inside DBSQL).
      std::string contents;
      ++i;
      bool closed = false;
      while (i < n) {
        if (body[i] == '\'') {
          if (i + 1 < n && body[i + 1] == '\'') {
            contents += '\'';
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        contents += body[i++];
      }
      if (!closed) return Status::ParseError("unterminated string in formula");
      FToken t;
      t.kind = FTokenKind::kString;
      t.text = std::move(contents);
      tokens.push_back(std::move(t));
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '$') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(body[i])) ||
                       body[i] == '_' || body[i] == '$')) {
        ++i;
      }
      FToken t;
      t.kind = FTokenKind::kIdent;
      t.text = std::string(body.substr(start, i - start));
      tokens.push_back(std::move(t));
      continue;
    }
    auto push_symbol = [&](std::string text) {
      FToken t;
      t.kind = FTokenKind::kSymbol;
      t.text = std::move(text);
      tokens.push_back(std::move(t));
    };
    if (i + 1 < n) {
      std::string two{c, body[i + 1]};
      if (two == "<=" || two == ">=" || two == "<>") {
        push_symbol(two);
        i += 2;
        continue;
      }
    }
    if (std::string_view("+-*/^&=<>(),:!%").find(c) != std::string_view::npos) {
      push_symbol(std::string(1, c));
      ++i;
      continue;
    }
    return Status::ParseError(std::string("unexpected character '") + c +
                              "' in formula");
  }
  FToken end;
  end.kind = FTokenKind::kEnd;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace dataspread::formula
