#ifndef DATASPREAD_FORMULA_FORMULA_AST_H_
#define DATASPREAD_FORMULA_FORMULA_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "sheet/address.h"
#include "types/value.h"

namespace dataspread::formula {

struct FExpr;
using FExprPtr = std::unique_ptr<FExpr>;

enum class FKind {
  kLiteral,   ///< number / string / boolean
  kCellRef,   ///< A1, $B$2, Sheet2!C3
  kRange,     ///< A1:D100 (only valid as a function argument)
  kUnary,     ///< "-"
  kBinary,    ///< + - * / ^ & = <> < <= > >=
  kFunction,  ///< NAME(args...) — includes DBSQL / DBTABLE
  kRefError,  ///< a reference destroyed by a structural edit (#REF!)
};

/// One node of a spreadsheet formula (value-at-a-time computation, §2.2).
struct FExpr {
  FKind kind;
  Value literal;        // kLiteral
  CellRef cell;         // kCellRef
  RangeRef range;       // kRange
  std::string op;       // operator text or upper-cased function name
  std::vector<FExprPtr> args;

  FExprPtr Clone() const;
  /// Canonical text (without the leading '='); used to rewrite stored formula
  /// text after reference adjustment.
  std::string ToText() const;
};

FExprPtr MakeFLiteral(Value v);
FExprPtr MakeFCell(CellRef ref);
FExprPtr MakeFRange(RangeRef range);
FExprPtr MakeFUnary(std::string op, FExprPtr arg);
FExprPtr MakeFBinary(std::string op, FExprPtr lhs, FExprPtr rhs);
FExprPtr MakeFRefError();

/// True when the formula's root call is one of the paper's hybrid constructs
/// (DBSQL / DBTABLE) that the Interface Manager executes instead of the
/// formula engine.
bool IsHybridFormula(const FExpr& e);

}  // namespace dataspread::formula

#endif  // DATASPREAD_FORMULA_FORMULA_AST_H_
