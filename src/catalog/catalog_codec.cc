#include "catalog/catalog_codec.h"

#include <utility>

#include "common/str_util.h"
#include "storage/value_codec.h"

namespace dataspread {

namespace {

using storage::AppendU32;
using storage::AppendU64;
using storage::ReadU32;
using storage::ReadU64;

constexpr uint32_t kBlobVersion = 1;

void AppendString(std::string* out, const std::string& s) {
  AppendU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

bool ReadString(const std::string& buf, size_t* pos, std::string* out) {
  uint32_t len = 0;
  if (!ReadU32(buf, pos, &len) || *pos + len > buf.size()) return false;
  out->assign(buf, *pos, len);
  *pos += len;
  return true;
}

Status Malformed(const char* what) {
  // The buffer already passed the WAL's CRC: a parse failure here is not
  // bit rot but version skew or a codec bug — callers surface it loudly.
  return Status::Internal(std::string("malformed catalog descriptor: ") +
                          what);
}

}  // namespace

void EncodeTableDescriptor(const TableDescriptor& desc, std::string* out) {
  AppendString(out, desc.name);
  AppendU32(out, static_cast<uint32_t>(desc.schema.num_columns()));
  for (const ColumnDef& col : desc.schema.columns()) {
    AppendString(out, col.name);
    out->push_back(static_cast<char>(col.type));
    out->push_back(col.primary_key ? 1 : 0);
  }
  out->push_back(static_cast<char>(desc.manifest.model));
  AppendU32(out, static_cast<uint32_t>(desc.manifest.files.size()));
  for (uint64_t f : desc.manifest.files) AppendU64(out, f);
  AppendU32(out, static_cast<uint32_t>(desc.manifest.groups.size()));
  for (const StorageManifest::Group& g : desc.manifest.groups) {
    AppendU64(out, g.file);
    AppendU32(out, g.width);
    for (uint32_t col : g.columns) AppendU32(out, col);
  }
  AppendU64(out, desc.order_file);
  AppendU64(out, desc.rid_file);
  AppendU64(out, desc.next_rid);
}

Result<TableDescriptor> DecodeTableDescriptor(const std::string& buf,
                                              size_t* pos) {
  TableDescriptor desc;
  if (!ReadString(buf, pos, &desc.name)) return Malformed("name");
  uint32_t n_cols = 0;
  if (!ReadU32(buf, pos, &n_cols)) return Malformed("column count");
  std::vector<ColumnDef> cols;
  cols.reserve(n_cols);
  for (uint32_t i = 0; i < n_cols; ++i) {
    ColumnDef col;
    if (!ReadString(buf, pos, &col.name) || *pos + 2 > buf.size()) {
      return Malformed("column def");
    }
    col.type = static_cast<DataType>(static_cast<unsigned char>(buf[*pos]));
    col.primary_key = buf[*pos + 1] != 0;
    *pos += 2;
    if (col.type > DataType::kError) return Malformed("column type");
    cols.push_back(std::move(col));
  }
  desc.schema = Schema(std::move(cols));
  if (*pos >= buf.size()) return Malformed("model");
  desc.manifest.model =
      static_cast<StorageModel>(static_cast<unsigned char>(buf[*pos]));
  *pos += 1;
  if (desc.manifest.model > StorageModel::kHybrid) return Malformed("model");
  desc.manifest.num_columns = n_cols;
  uint32_t n_files = 0;
  if (!ReadU32(buf, pos, &n_files)) return Malformed("file count");
  desc.manifest.files.resize(n_files);
  for (uint32_t i = 0; i < n_files; ++i) {
    if (!ReadU64(buf, pos, &desc.manifest.files[i])) {
      return Malformed("file id");
    }
  }
  uint32_t n_groups = 0;
  if (!ReadU32(buf, pos, &n_groups)) return Malformed("group count");
  desc.manifest.groups.resize(n_groups);
  for (uint32_t gi = 0; gi < n_groups; ++gi) {
    StorageManifest::Group& g = desc.manifest.groups[gi];
    if (!ReadU64(buf, pos, &g.file) || !ReadU32(buf, pos, &g.width)) {
      return Malformed("group header");
    }
    g.columns.resize(g.width);
    for (uint32_t o = 0; o < g.width; ++o) {
      if (!ReadU32(buf, pos, &g.columns[o])) return Malformed("group column");
    }
  }
  if (!ReadU64(buf, pos, &desc.order_file) ||
      !ReadU64(buf, pos, &desc.rid_file) ||
      !ReadU64(buf, pos, &desc.next_rid)) {
    return Malformed("side files");
  }
  return desc;
}

void EncodeCatalogBlob(const std::vector<TableDescriptor>& tables,
                       std::string* out) {
  AppendU32(out, kBlobVersion);
  AppendU32(out, static_cast<uint32_t>(tables.size()));
  for (const TableDescriptor& desc : tables) {
    EncodeTableDescriptor(desc, out);
  }
}

Result<std::vector<TableDescriptor>> ReplayCatalogState(
    const std::string& blob,
    const std::vector<storage::Pager::CatalogRecord>& ddl) {
  std::vector<TableDescriptor> tables;
  if (!blob.empty()) {
    size_t pos = 0;
    uint32_t version = 0, n_tables = 0;
    if (!ReadU32(blob, &pos, &version) || version != kBlobVersion ||
        !ReadU32(blob, &pos, &n_tables)) {
      return Malformed("blob header");
    }
    tables.reserve(n_tables);
    for (uint32_t i = 0; i < n_tables; ++i) {
      DS_ASSIGN_OR_RETURN(TableDescriptor desc,
                          DecodeTableDescriptor(blob, &pos));
      tables.push_back(std::move(desc));
    }
    if (pos != blob.size()) return Malformed("blob trailer");
  }
  auto find = [&tables](const std::string& name) {
    std::string key = ToLower(name);
    for (size_t i = 0; i < tables.size(); ++i) {
      if (ToLower(tables[i].name) == key) return i;
    }
    return tables.size();
  };
  for (const storage::Pager::CatalogRecord& rec : ddl) {
    if (rec.type == storage::WalRecordType::kDropTable) {
      size_t pos = 0;
      std::string name;
      if (!ReadString(rec.payload, &pos, &name) || pos != rec.payload.size()) {
        return Malformed("drop-table payload");
      }
      size_t i = find(name);
      // Dropping an unknown table is legal under replay: the create and the
      // drop may both postdate the snapshot.
      if (i < tables.size()) {
        tables.erase(tables.begin() + static_cast<ptrdiff_t>(i));
      }
      continue;
    }
    size_t pos = 0;
    DS_ASSIGN_OR_RETURN(TableDescriptor desc,
                        DecodeTableDescriptor(rec.payload, &pos));
    if (pos != rec.payload.size()) return Malformed("ddl trailer");
    size_t i = find(desc.name);
    if (i < tables.size()) {
      tables[i] = std::move(desc);  // alter kinds: replace wholesale
    } else {
      tables.push_back(std::move(desc));  // kCreateTable (or replayed alter
                                          // of a post-snapshot create)
    }
  }
  return tables;
}

}  // namespace dataspread
