#ifndef DATASPREAD_CATALOG_CATALOG_H_
#define DATASPREAD_CATALOG_CATALOG_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/table.h"
#include "common/result.h"

namespace dataspread {

/// Named-table directory of the embedded database. Table names are
/// case-insensitive (stored with their original spelling).
///
/// When constructed with a storage::Pager, every table it creates draws its
/// pages from that shared pool (the Database wires its pager through here);
/// without one, each table owns a private pager.
class Catalog {
 public:
  Catalog() = default;
  explicit Catalog(storage::Pager* pager) : pager_(pager) {}

  /// Buffer-pool policy applied to the private pager of every table this
  /// catalog creates *without* a shared pool. No effect when a shared pager
  /// was supplied (the pool's owner configured it).
  void set_private_pager_config(storage::PagerConfig config) {
    private_pager_config_ = std::move(config);
  }
  const storage::PagerConfig& private_pager_config() const {
    return private_pager_config_;
  }

  /// Creates a table; fails with AlreadyExists on a name collision. On a
  /// durable shared pager the creation is logged as a kCreateTable DDL
  /// record (a commit point), so the table exists after any crash.
  Result<Table*> CreateTable(std::string name, Schema schema,
                             StorageModel model = StorageModel::kHybrid);

  /// Removes a table and deallocates its pager files. On a durable pager
  /// the kDropTable record is logged (and made durable) *before* the files
  /// are dropped: a crash in between leaves orphan files for the reopen's
  /// sweep, never a catalog pointing at dead files.
  Status DropTable(std::string_view name);

  /// Registers an already-attached table (the reopen path): no DDL record,
  /// no fresh files — the table was recovered, not created. Fails with
  /// AlreadyExists on a name collision.
  Result<Table*> AdoptTable(std::unique_ptr<Table> table);

  /// Descriptors of every table in creation order — the catalog blob's
  /// payload (see catalog_codec.h).
  std::vector<TableDescriptor> Describe() const;

  /// Case-insensitive lookup.
  Result<Table*> GetTable(std::string_view name) const;
  bool HasTable(std::string_view name) const;

  /// All table names in creation order.
  std::vector<std::string> TableNames() const;

  size_t size() const { return tables_.size(); }

  /// The shared storage pool, or null when tables own private pagers.
  storage::Pager* pager() const { return pager_; }

 private:
  storage::Pager* pager_ = nullptr;
  storage::PagerConfig private_pager_config_;
  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;  // lower(name)
  std::vector<std::string> creation_order_;                         // lower(name)
};

}  // namespace dataspread

#endif  // DATASPREAD_CATALOG_CATALOG_H_
