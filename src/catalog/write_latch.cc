#include "catalog/write_latch.h"

namespace dataspread {

namespace {

Status ConflictStatus(const std::string& table, uint64_t owner) {
  return Status::SerializationConflict(
      "write-latch conflict on table '" + table +
      "' held by older transaction " + std::to_string(owner) +
      "; the transaction was rolled back — retry it");
}

}  // namespace

Status WriteLatchTable::AcquireExclusive(const std::string& table,
                                         uint64_t txn,
                                         bool may_wait_on_writer) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    Entry& e = latches_[table];
    if (e.owner == txn && txn != 0) return Status::OK();
    if (e.owner == 0 && e.shared == 0) {
      e.owner = txn;
      return Status::OK();
    }
    if (e.owner != 0 && !may_wait_on_writer && txn >= e.owner) {
      // Wait-die: a younger writer that already holds latches must not
      // block behind an older one — that edge could close a cycle.
      uint64_t owner = e.owner;
      MaybeErase(latches_.find(table));
      return ConflictStatus(table, owner);
    }
    // Blocked by shared readers (always bounded: readers never wait while
    // holding) or by an older writer we are allowed to outwait.
    cv_.wait(lock);
  }
}

void WriteLatchTable::ReleaseExclusive(const std::string& table,
                                       uint64_t txn) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = latches_.find(table);
  if (it == latches_.end() || it->second.owner != txn) return;
  it->second.owner = 0;
  MaybeErase(it);
  cv_.notify_all();
}

Status WriteLatchTable::AcquireShared(const std::vector<std::string>& tables,
                                      uint64_t txn, bool may_wait_on_writer) {
  if (tables.empty()) return Status::OK();
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    const std::string* blocked = nullptr;
    uint64_t blocker = 0;
    for (const std::string& t : tables) {
      auto it = latches_.find(t);
      if (it != latches_.end() && it->second.owner != 0 &&
          it->second.owner != txn) {
        blocked = &t;
        blocker = it->second.owner;
        break;
      }
    }
    if (blocked == nullptr) {
      // All writer-free (or self-owned): take the whole set at once.
      for (const std::string& t : tables) latches_[t].shared += 1;
      return Status::OK();
    }
    if (!may_wait_on_writer && txn != 0 && txn >= blocker) {
      return ConflictStatus(*blocked, blocker);
    }
    cv_.wait(lock);
  }
}

void WriteLatchTable::ReleaseShared(const std::vector<std::string>& tables) {
  if (tables.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::string& t : tables) {
    auto it = latches_.find(t);
    if (it == latches_.end() || it->second.shared == 0) continue;
    it->second.shared -= 1;
    MaybeErase(it);
  }
  cv_.notify_all();
}

uint64_t WriteLatchTable::ExclusiveOwner(const std::string& table) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = latches_.find(table);
  return it == latches_.end() ? 0 : it->second.owner;
}

void WriteLatchTable::MaybeErase(
    std::unordered_map<std::string, Entry>::iterator it) {
  if (it != latches_.end() && it->second.owner == 0 && it->second.shared == 0) {
    latches_.erase(it);
  }
}

}  // namespace dataspread
