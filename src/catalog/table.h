#ifndef DATASPREAD_CATALOG_TABLE_H_
#define DATASPREAD_CATALOG_TABLE_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/catalog_codec.h"
#include "catalog/schema.h"
#include "catalog/undo_journal.h"
#include "common/result.h"
#include "index/positional_index.h"
#include "storage/table_storage.h"
#include "types/value.h"

namespace dataspread {

/// A change event emitted after every table mutation. The Interface Manager
/// subscribes to these to keep bound sheet regions in sync (paper §3,
/// "two-way synchronization").
struct TableChange {
  enum class Kind {
    kInsert,   ///< one row inserted at `position`
    kDelete,   ///< one row removed from `position`
    kUpdate,   ///< cell (`position`, `column`) changed
    kSchema,   ///< columns added/dropped/renamed
    kBulk,     ///< many rows changed at once (bulk load / SQL DML)
  };
  Kind kind;
  size_t position = 0;
  size_t column = 0;
};

/// A relational table that is *interface-aware*: besides schema + storage it
/// maintains
///   - a display order over rows through a PositionalIndex (the N-th row of
///     the table as presented on a sheet is O(log n) away),
///   - an optional primary-key hash index (the key↔position machinery),
///   - a monotonically increasing version and change listeners.
///
/// Rows are identified internally by stable row ids; the positional index
/// stores row ids in display order, and an id→slot table absorbs the storage
/// layer's swap-on-delete renumbering.
///
/// On a *durable* pager (PagerConfig{wal_path}) the table also owns two side
/// files inside the pager — `order_file` (display position → row id) and
/// `rid_file` (storage slot → row id) — updated alongside every DML so the
/// page-level WAL makes the display order and id maps exactly as durable as
/// the data, and schema changes append catalog DDL records
/// (storage::WalRecordType::kAddColumn etc.). Scratch tables skip all of it:
/// zero extra writes, unchanged accounting. DESIGN.md §6 "Catalog recovery".
class Table {
 public:
  /// Creates an empty table. `model` selects the physical layout; the paper's
  /// design is StorageModel::kHybrid. `pager` is the paged storage engine the
  /// table's heaps live in (shared across a database's tables so all I/O is
  /// accounted in one pool); null gives the table a private pager shaped by
  /// `pager_config` (buffer-pool cap + spill path).
  static Result<std::unique_ptr<Table>> Create(
      std::string name, Schema schema,
      StorageModel model = StorageModel::kHybrid,
      storage::Pager* pager = nullptr,
      const storage::PagerConfig& pager_config = {});

  /// Rebinds a table to its recovered pager files — the reopen path. The
  /// storage is attached to the manifest's files, the display order and id
  /// maps are read back from the descriptor's side files, and the pk index
  /// is rebuilt from data. WAL statement brackets make recovery itself
  /// discard any statement torn by a crash (DESIGN.md §7), so this normally
  /// sees a committed boundary; the legacy torn-statement reconciliation
  /// (DESIGN.md §6) is retained as a fallback for pre-bracket logs.
  /// Anything beyond that is corruption and fails.
  static Result<std::unique_ptr<Table>> Attach(const TableDescriptor& desc,
                                               storage::Pager* pager);

  /// This table's durable identity: everything Attach needs. Valid at any
  /// statement boundary; the catalog serializes it into checkpoint
  /// snapshots and DDL records.
  TableDescriptor Describe() const;

  /// Durable tables leave their pager files alive on destruction (the files
  /// are the persistent data); DROP TABLE clears this before destroying so
  /// an explicit drop still deallocates. No-op for scratch tables.
  void set_retain_files(bool retain);

  ~Table();

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return order_.size(); }
  uint64_t version() const { return version_; }
  TableStorage& storage() { return *storage_; }

  // ---- Ordered (display-position) access ------------------------------------

  /// Whole tuple at display position `pos`.
  Result<Row> GetRowAt(size_t pos) const;
  /// One attribute at display position `pos`.
  Result<Value> GetAt(size_t pos, size_t col) const;
  /// Updates one attribute; enforces column type and PK uniqueness.
  Status UpdateAt(size_t pos, size_t col, Value v);
  /// Inserts a tuple so it displays at `pos` (0..num_rows()).
  Status InsertRowAt(size_t pos, Row row);
  /// Appends a tuple at the end of the display order.
  Status AppendRow(Row row);
  /// Deletes the tuple at display position `pos`.
  Status DeleteRowAt(size_t pos);

  /// The pane read path: tuples at positions [start, start+count) clipped to
  /// the table size. O(log n + count·cols).
  std::vector<Row> GetWindow(size_t start, size_t count) const;

  /// Visits all tuples in display order; `fn` returns false to stop early.
  void Scan(const std::function<bool(size_t pos, const Row&)>& fn) const;

  /// The batch read path under GetWindow: visits tuples at display positions
  /// [start, start+count) (clipped) without materializing a Row per tuple.
  /// Display positions are resolved to storage slots up front and contiguous
  /// slot runs are served through TableStorage::VisitRows — one page-cursor
  /// pass per run instead of a GetRow per tuple — so a freshly loaded table
  /// (display order == storage order) scans at full bulk-path speed. The
  /// visitor's `row` argument is the storage slot, not the display position;
  /// the value pointer is valid only during the call.
  Status VisitWindow(size_t start, size_t count,
                     const TableStorage::RowVisitor& visit) const;

  /// The slot-run structure under VisitWindow, exposed for morsel
  /// partitioning (src/exec/morsel.h): resolves display positions
  /// [start, start+count) (clipped) to storage slots and reports each
  /// maximal run of consecutive slots as `fn(pos, slot, len)` — tuples at
  /// display positions [pos, pos+len) live at storage slots
  /// [slot, slot+len). Runs arrive in display order and tile the window
  /// exactly, so cutting morsels at run boundaries keeps every morsel a
  /// bulk-path sweep.
  void VisitSlotRuns(
      size_t start, size_t count,
      const std::function<void(size_t pos, size_t slot, size_t len)>& fn)
      const;

  // ---- Primary key ----------------------------------------------------------

  /// Display position of the row whose PK equals `key`, if the table has a PK.
  /// O(n): position recovery scans the order index; prefer the key-direct
  /// accessors below on hot paths.
  Result<size_t> FindByKey(const Value& key) const;

  /// Whole tuple with PK equal to `key`; O(1) expected (hash index).
  Result<Row> GetRowByKey(const Value& key) const;

  /// Updates one attribute of the row with PK `key` without resolving its
  /// display position — the key↔tuple half of the paper's key↔location
  /// mapping. Emits a kBulk change (the position is not computed).
  Status UpdateByKey(const Value& key, size_t col, Value v);

  // ---- Schema changes (the paper's "as efficient as tuple updates") ---------

  Status AddColumn(ColumnDef def, const Value& default_value);
  Status DropColumn(std::string_view column_name);
  Status RenameColumn(std::string_view from, std::string_view to);

  /// Merges a hybrid table's attribute groups back into one row-major group
  /// (HybridStore::Reorganize) and logs the rebinding as a kReorganize DDL
  /// record, so the new group→file structure survives a reopen. Durable
  /// hybrid tables must reorganize through here, not the storage directly
  /// — a bare HybridStore::Reorganize() would leave the logged catalog
  /// pointing at dropped files. No-op for other models.
  Status Reorganize();

  // ---- Transaction undo (src/db/database.cc, DESIGN.md §7) ------------------

  /// Installs (or clears, with nullptr) a transaction undo journal: while
  /// one is installed, every successful DML mutator appends its before-image
  /// entry. The Database layer installs the owning session's journal when a
  /// transaction acquires this table's write latch and clears it again when
  /// the transaction ends.
  void set_undo_journal(UndoJournal* journal) { undo_ = journal; }

  /// The transaction context that owns this table's write latch (0 = none).
  /// While set, every DML helper's statement bracket joins that context —
  /// regardless of calling thread — so a transaction's table mutations and
  /// their rollback compensations all ride the transaction's WAL bracket.
  /// Set/cleared by the Database layer together with the undo journal.
  void set_write_txn(storage::TxnId txn) { write_txn_ = txn; }
  storage::TxnId write_txn() const { return write_txn_; }

  /// Reverses an insert recorded as (pos, rid): deletes the row and hands
  /// the row id back (`next_rid_` steps straight down — every later insert
  /// has already been undone). Capture is suspended inside.
  Status UndoInsertRow(size_t pos, uint64_t rid);
  /// Reverses a delete: re-inserts `row` at `pos` under its original `rid`.
  Status UndoDeleteRow(size_t pos, Row row, uint64_t rid);
  /// Reverses a cell update on row `rid` (rid-addressed so UpdateByKey is
  /// undoable without recovering a display position).
  Status UndoUpdateCell(uint64_t rid, size_t col, Value old_value);

  // ---- Change notification ---------------------------------------------------

  using Listener = std::function<void(const Table&, const TableChange&)>;
  /// Registers a listener; returns a token for RemoveListener.
  int AddListener(Listener listener);
  void RemoveListener(int token);

 private:
  Table(std::string name, Schema schema, std::unique_ptr<TableStorage> storage);

  Status ValidateRow(const Row& row) const;
  Result<Value> CoerceForColumn(Value v, size_t col) const;
  /// InsertRowAt with the row id chosen by the caller — the undo-delete
  /// path re-inserts under the original rid; the public path passes
  /// `next_rid_`.
  Status InsertRowAtWithRid(size_t pos, Row row, uint64_t rid);
  size_t SlotOf(uint64_t rid) const { return rid_to_slot_[rid]; }
  void Notify(const TableChange& change);
  /// Rebuilds pk index; used after schema changes that affect the PK column.
  void RebuildPkIndex();

  /// True when this table persists its catalog state (durable pager).
  bool durable() const { return order_file_ != 0; }
  /// Rewrites order-file slots [from, order_.size()) from the in-memory
  /// order — the shifted tail after a positional insert/delete. O(1) for
  /// appends, O(n - from) for middle edits.
  void PersistOrderTail(size_t from);
  /// Appends a catalog DDL record carrying this table's full descriptor.
  void LogDdl(storage::WalRecordType type);
  /// Installs recovered order/rid maps (Attach's last step).
  void AdoptRowMaps(const std::vector<uint64_t>& order_rids,
                    const std::vector<uint64_t>& slot_rids,
                    uint64_t next_rid_floor);

  std::string name_;
  Schema schema_;
  std::unique_ptr<TableStorage> storage_;
  PositionalIndex order_;                 // display position -> row id
  std::vector<size_t> rid_to_slot_;       // row id -> storage slot
  std::vector<uint64_t> slot_to_rid_;     // storage slot -> row id
  std::unordered_map<Value, uint64_t, ValueHash> pk_to_rid_;
  uint64_t next_rid_ = 0;
  uint64_t version_ = 0;
  int next_listener_token_ = 1;
  std::vector<std::pair<int, Listener>> listeners_;
  // Durable catalog state (0 = scratch table): see the class comment.
  storage::FileId order_file_ = 0;
  storage::FileId rid_file_ = 0;
  bool retain_files_ = false;
  UndoJournal* undo_ = nullptr;  // non-null while a txn holds the write latch
  storage::TxnId write_txn_ = 0;  // owning txn context (see set_write_txn)

};

}  // namespace dataspread

#endif  // DATASPREAD_CATALOG_TABLE_H_
