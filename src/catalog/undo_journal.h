#ifndef DATASPREAD_CATALOG_UNDO_JOURNAL_H_
#define DATASPREAD_CATALOG_UNDO_JOURNAL_H_

#include <cstdint>
#include <vector>

#include "types/value.h"

namespace dataspread {

class Table;

/// The per-transaction logical undo journal (DESIGN.md §7). While a
/// multi-statement transaction is open, every DML mutator on every table
/// appends one before-image entry here; ROLLBACK replays the entries in
/// reverse, each undo restoring the exact pre-op state (positions recorded
/// at do-time are valid again at undo-time by induction — every later op
/// has already been undone). The undo operations are themselves logged as
/// WAL compensations *inside* the transaction's abort bracket, so replaying
/// an aborted bracket is a net no-op.
///
/// Entries reference tables by pointer: DDL is rejected inside an open
/// transaction, so the table set (and every Table*) is stable for the
/// journal's lifetime.
struct UndoJournal {
  struct Entry {
    enum class Kind {
      kInsert,  ///< row `rid` was inserted at display position `pos`
      kDelete,  ///< row `rid` = `row` was deleted from display position `pos`
      kUpdate,  ///< cell (`rid`, `col`) changed; prior value in `old_value`
    };
    Kind kind = Kind::kInsert;
    Table* table = nullptr;
    size_t pos = 0;    ///< kInsert / kDelete: display position
    size_t col = 0;    ///< kUpdate: column index
    uint64_t rid = 0;  ///< the stable row id involved
    Row row;           ///< kDelete: the deleted tuple (before-image)
    Value old_value;   ///< kUpdate: the prior cell value
  };

  std::vector<Entry> entries;

  void Clear() { entries.clear(); }
  bool empty() const { return entries.empty(); }
};

}  // namespace dataspread

#endif  // DATASPREAD_CATALOG_UNDO_JOURNAL_H_
