#ifndef DATASPREAD_CATALOG_SCHEMA_H_
#define DATASPREAD_CATALOG_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "types/data_type.h"

namespace dataspread {

/// One attribute of a relational table.
struct ColumnDef {
  std::string name;
  DataType type = DataType::kText;
  bool primary_key = false;
};

/// Ordered attribute list of a table. Column names are case-insensitive and
/// unique. At most one column may be the primary key (single-attribute keys,
/// as in the paper's key↔position mapping).
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> columns) : columns_(std::move(columns)) {}

  /// Validates name uniqueness and the single-PK constraint.
  Status Validate() const;

  size_t num_columns() const { return columns_.size(); }
  const std::vector<ColumnDef>& columns() const { return columns_; }
  const ColumnDef& column(size_t i) const { return columns_[i]; }

  /// Case-insensitive lookup; nullopt when absent.
  std::optional<size_t> FindColumn(std::string_view name) const;

  /// Index of the primary-key column, if any.
  std::optional<size_t> primary_key_index() const;

  /// Appends a column; fails on duplicate name or second PK.
  Status AddColumn(ColumnDef def);
  /// Removes the column at `index`.
  Status RemoveColumn(size_t index);
  /// Renames a column; fails if `new_name` collides.
  Status RenameColumn(size_t index, std::string new_name);

  /// "name TYPE [PRIMARY KEY], ..." — for error messages and docs.
  std::string ToString() const;

 private:
  std::vector<ColumnDef> columns_;
};

}  // namespace dataspread

#endif  // DATASPREAD_CATALOG_SCHEMA_H_
