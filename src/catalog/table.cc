#include "catalog/table.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "common/str_util.h"
#include "storage/hybrid_store.h"

namespace dataspread {

Result<std::unique_ptr<Table>> Table::Create(
    std::string name, Schema schema, StorageModel model, storage::Pager* pager,
    const storage::PagerConfig& pager_config) {
  DS_RETURN_IF_ERROR(schema.Validate());
  if (name.empty()) {
    return Status::InvalidArgument("table name may not be empty");
  }
  auto storage = CreateStorage(model, schema.num_columns(), pager,
                               pager_config);
  auto table = std::unique_ptr<Table>(
      new Table(std::move(name), std::move(schema), std::move(storage)));
  if (table->storage_->pager().durable()) {
    // The catalog side files: display order and slot→rid, persisted through
    // the same pager (and therefore the same WAL) as the data.
    table->order_file_ = table->storage_->pager().CreateFile();
    table->rid_file_ = table->storage_->pager().CreateFile();
    table->set_retain_files(true);
  }
  return table;
}

Table::Table(std::string name, Schema schema,
             std::unique_ptr<TableStorage> storage)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      storage_(std::move(storage)) {}

Table::~Table() {
  if (durable() && !retain_files_) {
    storage_->pager().DropFile(order_file_);
    storage_->pager().DropFile(rid_file_);
  }
}

void Table::set_retain_files(bool retain) {
  retain_files_ = retain;
  storage_->set_retain_files(retain);
}

TableDescriptor Table::Describe() const {
  TableDescriptor desc;
  desc.name = name_;
  desc.schema = schema_;
  desc.manifest = storage_->Manifest();
  desc.order_file = order_file_;
  desc.rid_file = rid_file_;
  desc.next_rid = next_rid_;
  return desc;
}

void Table::LogDdl(storage::WalRecordType type) {
  storage::Pager& pager = storage_->pager();
  if (!pager.durable()) return;
  std::string payload;
  EncodeTableDescriptor(Describe(), &payload);
  pager.LogCatalogRecord(type, payload);
  // The record is durable (LogCatalogRecord syncs): the files the DDL
  // replaced can go. Dropping them earlier would let a crash-reopen of the
  // pre-record state bind files that no longer exist; dropping them later
  // costs nothing (kDropFile replays idempotently, orphans are swept).
  for (storage::FileId f : storage_->TakeRetiredFiles()) {
    pager.DropFile(f);
  }
}

namespace {

/// Writes `rids` as INT values into file slots [start, start+count) — the
/// one encoding of the order/rid side files; every durable writer below
/// goes through here so Attach's repairs always read back what DML wrote.
void WriteRidSpan(storage::Pager& pager, storage::FileId file, uint64_t start,
                  const uint64_t* rids, size_t count) {
  if (count == 0) return;
  Row values;
  values.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    values.push_back(Value::Int(static_cast<int64_t>(rids[i])));
  }
  pager.WriteRange(file, start, values.data(), values.size());
}

}  // namespace

void Table::PersistOrderTail(size_t from) {
  size_t n = order_.size();
  if (from >= n) return;
  std::vector<uint64_t> rids = order_.GetRange(from, n - from);
  WriteRidSpan(storage_->pager(), order_file_, from, rids.data(),
               rids.size());
}

void Table::AdoptRowMaps(const std::vector<uint64_t>& order_rids,
                         const std::vector<uint64_t>& slot_rids,
                         uint64_t next_rid_floor) {
  order_.Build(order_rids);
  slot_to_rid_ = slot_rids;
  uint64_t max_rid = 0;
  for (uint64_t rid : slot_rids) max_rid = std::max(max_rid, rid + 1);
  rid_to_slot_.assign(max_rid, 0);
  for (size_t slot = 0; slot < slot_rids.size(); ++slot) {
    rid_to_slot_[slot_rids[slot]] = slot;
  }
  next_rid_ = std::max(next_rid_floor, max_rid);
  RebuildPkIndex();
}

namespace {

/// Reads file slots [0, count) as row ids; fails on any non-INT slot.
Result<std::vector<uint64_t>> ReadRidFile(storage::Pager& pager,
                                          storage::FileId file,
                                          uint64_t count) {
  std::vector<uint64_t> rids;
  rids.reserve(static_cast<size_t>(count));
  Row values;
  pager.ReadRange(file, 0, count, &values);
  for (const Value& v : values) {
    if (v.type() != DataType::kInt || v.int_value() < 0) {
      return Status::Internal("catalog side file holds a non-INT row id");
    }
    rids.push_back(static_cast<uint64_t>(v.int_value()));
  }
  return rids;
}

/// Index of the first value appearing twice in `rids`, or rids.size().
size_t FirstDuplicateIndex(const std::vector<uint64_t>& rids) {
  std::unordered_set<uint64_t> seen;
  for (size_t i = 0; i < rids.size(); ++i) {
    if (!seen.insert(rids[i]).second) {
      // Return the *earlier* occurrence: the completed half of a torn
      // delete's rid move (the stale copy sits at the tail).
      for (size_t j = 0; j < i; ++j) {
        if (rids[j] == rids[i]) return j;
      }
    }
  }
  return rids.size();
}

bool SameRidSets(const std::vector<uint64_t>& a,
                 const std::vector<uint64_t>& b) {
  if (a.size() != b.size()) return false;
  std::unordered_set<uint64_t> sa(a.begin(), a.end());
  if (sa.size() != a.size()) return false;  // duplicates disqualify...
  std::unordered_set<uint64_t> sb(b.begin(), b.end());
  if (sb.size() != b.size()) return false;  // ...on either side
  for (uint64_t rid : b) {
    if (sa.count(rid) == 0) return false;
  }
  return true;
}

/// The single element of set(a) − set(b), or nullopt if not exactly one.
std::optional<uint64_t> LoneExtra(const std::vector<uint64_t>& a,
                                  const std::vector<uint64_t>& b) {
  std::unordered_set<uint64_t> sb(b.begin(), b.end());
  std::optional<uint64_t> extra;
  for (uint64_t rid : a) {
    if (sb.count(rid) == 0) {
      if (extra.has_value()) return std::nullopt;
      extra = rid;
    }
  }
  return extra;
}

}  // namespace

Result<std::unique_ptr<Table>> Table::Attach(const TableDescriptor& desc,
                                             storage::Pager* pager) {
  DS_RETURN_IF_ERROR(desc.schema.Validate());
  if (!pager->durable() || !pager->HasFile(desc.order_file) ||
      !pager->HasFile(desc.rid_file)) {
    return Status::Internal("table descriptor names dead catalog side files");
  }
  if (desc.manifest.num_columns != desc.schema.num_columns()) {
    return Status::Internal("catalog schema/manifest arity mismatch");
  }
  uint64_t o = pager->FileSize(desc.order_file);
  uint64_t r = pager->FileSize(desc.rid_file);
  DS_ASSIGN_OR_RETURN(uint64_t h, ManifestRows(desc.manifest, *pager));
  constexpr uint64_t kUnknown = ~uint64_t{0};
  DS_ASSIGN_OR_RETURN(std::vector<uint64_t> order_rids,
                      ReadRidFile(*pager, desc.order_file, o));
  DS_ASSIGN_OR_RETURN(std::vector<uint64_t> slot_rids,
                      ReadRidFile(*pager, desc.rid_file, r));

  // Reconcile the (at most one) statement torn by the crash. Since WAL
  // statement brackets (DESIGN.md §7), recovery itself discards the torn
  // statement's records wholesale, so logs written by this engine always
  // land here at a committed boundary (o == r == h, clean rid sets) and
  // the reconciliation below is a *fallback* for pre-bracket logs, not the
  // contract. For those, DML writes in a fixed order — insert: order, rid,
  // data; delete: rid overwrite, order, data, rid truncate — so the
  // file-size signature identifies the torn phase (DESIGN.md §6 "Catalog
  // recovery" walks the cases). Anything the cases below cannot prove
  // consistent falls back to a deterministic rebuild: display order
  // degrades to storage order for the torn tail — never for state behind a
  // durability barrier.
  std::unique_ptr<TableStorage> storage;
  bool rebuilt = false;
  bool rewrite_order = false;  // a repair touched mid-file order slots

  // Pre-pass: an *adjacent duplicate* in the order file can only be a torn
  // delete cut between its order-shift record(s) and the order truncate —
  // the shift writes old[j+1] into slot j, so the un-truncated (or not yet
  // shifted) neighbor repeats it. Splicing out the later copy completes the
  // shift exactly (nothing is lost in a shift-down) and re-joins the
  // delete's normal torn-phase handling below.
  for (size_t i = 0; i + 1 < order_rids.size(); ++i) {
    if (order_rids[i] != order_rids[i + 1]) continue;
    std::unordered_set<uint64_t> s(order_rids.begin(), order_rids.end());
    if (s.size() == order_rids.size() - 1) {  // exactly this one duplicate
      order_rids.erase(order_rids.begin() + static_cast<ptrdiff_t>(i) + 1);
      pager->Truncate(desc.order_file, order_rids.size());
      o = order_rids.size();
      rewrite_order = true;
    }
    break;
  }

  size_t dup = FirstDuplicateIndex(slot_rids);

  if (o == r + 1 && (h == kUnknown || h == r)) {
    // Torn insert, order write only: drop the order entry whose rid the rid
    // file never learned. The on-disk order file still holds the shifted
    // tail, so it is rewritten from the repaired order below.
    std::optional<uint64_t> extra = LoneExtra(order_rids, slot_rids);
    if (extra.has_value()) {
      order_rids.erase(
          std::find(order_rids.begin(), order_rids.end(), *extra));
      pager->Truncate(desc.order_file, r);
      o = r;
      rewrite_order = true;
    }
  } else if (o == r && h != kUnknown && h + 1 == o && o > 0 &&
             dup == slot_rids.size()) {
    // Torn insert, order + rid written, data row incomplete: the phantom
    // rid is the rid file's append (its last slot); undo both (and rewrite
    // the order file's shifted tail below).
    uint64_t phantom = slot_rids.back();
    auto it = std::find(order_rids.begin(), order_rids.end(), phantom);
    if (it != order_rids.end()) {
      order_rids.erase(it);
      slot_rids.pop_back();
      pager->Truncate(desc.rid_file, h);
      pager->Truncate(desc.order_file, h);
      o = r = h;
      rewrite_order = true;
    }
  } else if (o == r && dup < slot_rids.size() && o > 0) {
    // Torn delete, rid overwrite only (order/data untouched): restore the
    // overwritten rid from the order file and the delete never happened.
    std::optional<uint64_t> missing = LoneExtra(order_rids, slot_rids);
    if (missing.has_value()) {
      slot_rids[dup] = *missing;
      pager->Write(desc.rid_file, dup,
                   Value::Int(static_cast<int64_t>(*missing)));
    }
  } else if (o + 1 == r && r > 0) {
    // Torn delete past the order update: the rid file still carries its
    // stale tail entry. Finish the job. The stores' durable DeleteRow runs
    // copy-all-then-truncate-all phases, so h == r means no file was
    // truncated yet and the whole delete can be redone from the intact
    // last row; h < r means every copy landed and trimming suffices.
    size_t vacated = dup < slot_rids.size() ? dup : slot_rids.size() - 1;
    if (desc.manifest.model == StorageModel::kRcv) {
      // RCV (h unknowable): rebind with the last row intact, re-copy its
      // still-materialized cells over the vacated row (phases are strictly
      // ordered, so an already-erased cell was already copied), then erase
      // the last row's remnants.
      DS_ASSIGN_OR_RETURN(storage, AttachStorage(desc.manifest, r, pager));
      if (vacated != static_cast<size_t>(r) - 1) {
        for (size_t c = 0; c < storage->num_columns(); ++c) {
          DS_ASSIGN_OR_RETURN(Value v, storage->Get(r - 1, c));
          if (!v.is_null()) {
            DS_RETURN_IF_ERROR(storage->Set(vacated, c, std::move(v)));
          }
        }
      }
      DS_RETURN_IF_ERROR(storage->DeleteRow(r - 1).status());
    } else if (h == r) {
      DS_ASSIGN_OR_RETURN(storage, AttachStorage(desc.manifest, r, pager));
      DS_RETURN_IF_ERROR(storage->DeleteRow(vacated).status());
    }
    slot_rids.pop_back();
    pager->Truncate(desc.rid_file, o);
    r = o;
  }

  // The authoritative recovered row count: the order file, cross-checked
  // against the others.
  uint64_t n = std::min(o, r);
  if (h != kUnknown) n = std::min(n, h);
  if (o == n && r == n && !SameRidSets(order_rids, slot_rids)) {
    // One rid extra in the order and one missing, sizes agreeing: a crash
    // inside a *multi-page* order shift of an unacknowledged middle insert
    // (the shift-up overwrites one shifted-out rid before its new slot's
    // page record lands). The phantom's position is exact; the overwritten
    // rid's original position is unrecoverable, so it takes the phantom's
    // slot — at worst one unacknowledged-window row displaced, never a
    // wholesale order loss.
    std::optional<uint64_t> extra = LoneExtra(order_rids, slot_rids);
    std::optional<uint64_t> missing = LoneExtra(slot_rids, order_rids);
    std::unordered_set<uint64_t> so(order_rids.begin(), order_rids.end());
    if (extra.has_value() && missing.has_value() &&
        so.size() == order_rids.size()) {
      *std::find(order_rids.begin(), order_rids.end(), *extra) = *missing;
      rewrite_order = true;
    }
  }
  // Any residual disagreement → deterministic rebuild.
  if (o != n || r != n || !SameRidSets(order_rids, slot_rids)) {
    rebuilt = true;
    slot_rids.resize(static_cast<size_t>(n));
    std::unordered_set<uint64_t> unique(slot_rids.begin(), slot_rids.end());
    if (unique.size() != slot_rids.size()) {
      for (size_t s = 0; s < slot_rids.size(); ++s) slot_rids[s] = s;
    }
    order_rids = slot_rids;
  }

  if (storage == nullptr) {
    DS_ASSIGN_OR_RETURN(storage, AttachStorage(desc.manifest, n, pager));
  }

  auto table = std::unique_ptr<Table>(
      new Table(desc.name, desc.schema, std::move(storage)));
  table->order_file_ = desc.order_file;
  table->rid_file_ = desc.rid_file;
  table->set_retain_files(true);
  table->AdoptRowMaps(order_rids, slot_rids, desc.next_rid);
  // Make any repair durable so the next reopen starts clean: a repaired
  // order must reach its file (the torn-insert cases leave a shifted tail
  // on disk), and a full rebuild rewrites both side files.
  if (rebuilt || rewrite_order) {
    pager->Truncate(desc.order_file, n);
    table->PersistOrderTail(0);
  }
  if (rebuilt) {
    pager->Truncate(desc.rid_file, n);
    WriteRidSpan(*pager, desc.rid_file, 0, slot_rids.data(),
                 slot_rids.size());
  }
  return table;
}

Result<Row> Table::GetRowAt(size_t pos) const {
  DS_ASSIGN_OR_RETURN(uint64_t rid, order_.Get(pos));
  return storage_->GetRow(SlotOf(rid));
}

Result<Value> Table::GetAt(size_t pos, size_t col) const {
  DS_ASSIGN_OR_RETURN(uint64_t rid, order_.Get(pos));
  return storage_->Get(SlotOf(rid), col);
}

Result<Value> Table::CoerceForColumn(Value v, size_t col) const {
  if (v.is_error()) {
    return Status::TypeError("error value " + v.error_code() +
                             " cannot be stored in table " + name_);
  }
  return v.CastTo(schema_.column(col).type);
}

Status Table::ValidateRow(const Row& row) const {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument(
        "tuple arity " + std::to_string(row.size()) + " does not match " +
        name_ + "(" + std::to_string(schema_.num_columns()) + " columns)");
  }
  return Status::OK();
}

Status Table::UpdateAt(size_t pos, size_t col, Value v) {
  if (col >= schema_.num_columns()) {
    return Status::OutOfRange("column " + std::to_string(col));
  }
  DS_ASSIGN_OR_RETURN(uint64_t rid, order_.Get(pos));
  DS_ASSIGN_OR_RETURN(Value coerced, CoerceForColumn(std::move(v), col));
  Value before;
  if (undo_ != nullptr) {
    DS_ASSIGN_OR_RETURN(before, storage_->Get(SlotOf(rid), col));
  }
  // Statement bracket: everything this update logs is all-or-nothing across
  // crashes (DESIGN.md §7). Nested inside a Database-level statement it
  // rides the outer bracket.
  storage::StatementScope txn(storage_->pager(), write_txn_);
  auto pk = schema_.primary_key_index();
  if (pk && *pk == col) {
    if (coerced.is_null()) {
      return Status::ConstraintViolation("PRIMARY KEY of " + name_ +
                                         " may not be NULL");
    }
    auto it = pk_to_rid_.find(coerced);
    if (it != pk_to_rid_.end() && it->second != rid) {
      return Status::ConstraintViolation("duplicate PRIMARY KEY " +
                                         coerced.ToSqlLiteral() + " in " + name_);
    }
    DS_ASSIGN_OR_RETURN(Value old_key, storage_->Get(SlotOf(rid), col));
    pk_to_rid_.erase(old_key);
    pk_to_rid_[coerced] = rid;
  }
  DS_RETURN_IF_ERROR(storage_->Set(SlotOf(rid), col, std::move(coerced)));
  txn.Commit();
  if (undo_ != nullptr) {
    undo_->entries.push_back({UndoJournal::Entry::Kind::kUpdate, this, 0, col,
                              rid, {}, std::move(before)});
  }
  Notify(TableChange{TableChange::Kind::kUpdate, pos, col});
  return Status::OK();
}

Status Table::InsertRowAt(size_t pos, Row row) {
  return InsertRowAtWithRid(pos, std::move(row), next_rid_);
}

Status Table::InsertRowAtWithRid(size_t pos, Row row, uint64_t rid) {
  DS_RETURN_IF_ERROR(ValidateRow(row));
  for (size_t c = 0; c < row.size(); ++c) {
    DS_ASSIGN_OR_RETURN(row[c], CoerceForColumn(std::move(row[c]), c));
  }
  auto pk = schema_.primary_key_index();
  if (pk) {
    if (row[*pk].is_null()) {
      return Status::ConstraintViolation("PRIMARY KEY of " + name_ +
                                         " may not be NULL");
    }
    if (pk_to_rid_.count(row[*pk]) > 0) {
      return Status::ConstraintViolation("duplicate PRIMARY KEY " +
                                         row[*pk].ToSqlLiteral() + " in " + name_);
    }
  }
  // Statement bracket: recovery applies the records below only if the
  // closing kTxnCommit survived, so a crash mid-insert rolls the whole row
  // away — Attach's torn-statement reconciliation is now a fallback for
  // pre-bracket logs, not the contract (DESIGN.md §7).
  storage::StatementScope txn(storage_->pager(), write_txn_);
  if (durable()) {
    // Durable write order — order tail, rid append, then the data row — is
    // load-bearing: a crash can tear the statement at any record boundary,
    // and Attach identifies the torn phase from the three file sizes
    // (DESIGN.md §6 "Catalog recovery"). The order file gets the shifted
    // tail [pos, n]: one slot for an append, O(n − pos) for a middle insert.
    storage::Pager& pager = storage_->pager();
    size_t n = order_.size();
    std::vector<uint64_t> tail;
    tail.reserve(n - pos + 1);
    tail.push_back(rid);
    std::vector<uint64_t> shifted = order_.GetRange(pos, n - pos);
    tail.insert(tail.end(), shifted.begin(), shifted.end());
    WriteRidSpan(pager, order_file_, pos, tail.data(), tail.size());
    pager.Write(rid_file_, n, Value::Int(static_cast<int64_t>(rid)));
  }
  auto slot_or = storage_->AppendRow(row);
  if (!slot_or.ok()) {
    if (durable()) {
      // Roll the side files back so they never acknowledge a row the
      // storage refused (cannot fail after the validation above, but the
      // files must not drift if it ever does).
      size_t n = order_.size();
      PersistOrderTail(pos);
      storage_->pager().Truncate(order_file_, n);
      storage_->pager().Truncate(rid_file_, n);
    }
    return slot_or.status();
  }
  size_t slot = slot_or.ValueOrDie();
  if (rid >= next_rid_) next_rid_ = rid + 1;
  if (rid_to_slot_.size() <= rid) rid_to_slot_.resize(rid + 1);
  rid_to_slot_[rid] = slot;
  if (slot_to_rid_.size() <= slot) slot_to_rid_.resize(slot + 1);
  slot_to_rid_[slot] = rid;
  DS_RETURN_IF_ERROR(order_.InsertAt(pos, rid));
  if (pk) pk_to_rid_[row[*pk]] = rid;
  txn.Commit();
  if (undo_ != nullptr) {
    undo_->entries.push_back(
        {UndoJournal::Entry::Kind::kInsert, this, pos, 0, rid, {}, {}});
  }
  Notify(TableChange{TableChange::Kind::kInsert, pos, 0});
  return Status::OK();
}

Status Table::AppendRow(Row row) {
  return InsertRowAt(order_.size(), std::move(row));
}

Status Table::DeleteRowAt(size_t pos) {
  DS_ASSIGN_OR_RETURN(uint64_t rid, order_.Get(pos));
  size_t slot = SlotOf(rid);
  Row before;
  if (undo_ != nullptr) {
    // Capture the full tuple before any mutation — the RCV pre-step below
    // nulls cells in place, so this read cannot wait.
    DS_ASSIGN_OR_RETURN(before, storage_->GetRow(slot));
  }
  // Statement bracket: the rid move, order rewrite, data swap, and
  // truncations below commit or vanish together (DESIGN.md §7).
  storage::StatementScope txn(storage_->pager(), write_txn_);
  auto pk = schema_.primary_key_index();
  if (pk) {
    DS_ASSIGN_OR_RETURN(Value key, storage_->Get(slot, *pk));
    pk_to_rid_.erase(key);
  }
  size_t n = order_.size();
  if (durable() && storage_->model() == StorageModel::kRcv && slot != n - 1) {
    // RCV pre-step: erase the vacated row's cells wherever the moved (last)
    // row holds NULL, *before* any repair-visible marker lands. The
    // torn-delete repair copies the moved row's materialized cells but can
    // never safely erase (a NULL read is ambiguous between "genuinely NULL"
    // and "already erased by the delete"); clearing these cells up front
    // removes the ambiguity — a crash in this window merely leaves the
    // un-deleted row with some cells nulled, the documented RCV partial
    // window (docs/DURABILITY.md).
    for (size_t c = 0; c < schema_.num_columns(); ++c) {
      DS_ASSIGN_OR_RETURN(Value moved_cell, storage_->Get(n - 1, c));
      if (moved_cell.is_null()) {
        DS_RETURN_IF_ERROR(storage_->Set(slot, c, Value::Null()));
      }
    }
  }
  if (durable()) {
    // Durable write order — rid overwrite, shifted order tail + truncate,
    // data swap, rid truncate — mirrors the insert path's recoverability
    // contract (DESIGN.md §6): storage deletion is deterministic
    // swap-with-last, so the rid move can be logged *before* the data moves.
    storage::Pager& pager = storage_->pager();
    if (slot != n - 1) {
      uint64_t moved = slot_to_rid_[n - 1];
      pager.Write(rid_file_, slot, Value::Int(static_cast<int64_t>(moved)));
    }
    std::vector<uint64_t> tail = order_.GetRange(pos + 1, n - pos - 1);
    WriteRidSpan(pager, order_file_, pos, tail.data(), tail.size());
    pager.Truncate(order_file_, n - 1);
  }
  DS_ASSIGN_OR_RETURN(size_t moved_slot, storage_->DeleteRow(slot));
  // The storage layer moved the tuple from `moved_slot` into `slot`; repoint
  // its row id.
  if (moved_slot != slot) {
    uint64_t moved_rid = slot_to_rid_[moved_slot];
    rid_to_slot_[moved_rid] = slot;
    slot_to_rid_[slot] = moved_rid;
  }
  slot_to_rid_.pop_back();
  if (durable()) storage_->pager().Truncate(rid_file_, n - 1);
  (void)order_.EraseAt(pos);
  txn.Commit();
  if (undo_ != nullptr) {
    undo_->entries.push_back({UndoJournal::Entry::Kind::kDelete, this, pos, 0,
                              rid, std::move(before), {}});
  }
  Notify(TableChange{TableChange::Kind::kDelete, pos, 0});
  return Status::OK();
}

std::vector<Row> Table::GetWindow(size_t start, size_t count) const {
  std::vector<Row> out;
  order_.Visit(start, count, [&](size_t, uint64_t rid) {
    auto row = storage_->GetRow(SlotOf(rid));
    if (row.ok()) out.push_back(std::move(row).value());
  });
  return out;
}

Status Table::VisitWindow(size_t start, size_t count,
                          const TableStorage::RowVisitor& visit) const {
  Status status = Status::OK();
  VisitSlotRuns(start, count, [&](size_t, size_t slot, size_t len) {
    if (!status.ok()) return;
    status = storage_->VisitRows(slot, len, visit);
  });
  return status;
}

void Table::VisitSlotRuns(
    size_t start, size_t count,
    const std::function<void(size_t pos, size_t slot, size_t len)>& fn) const {
  std::vector<size_t> slots;
  slots.reserve(std::min(count, order_.size() - std::min(start, order_.size())));
  size_t first_pos = 0;
  order_.Visit(start, count, [&](size_t pos, uint64_t rid) {
    if (slots.empty()) first_pos = pos;
    slots.push_back(SlotOf(rid));
  });
  size_t i = 0;
  while (i < slots.size()) {
    size_t j = i + 1;
    while (j < slots.size() && slots[j] == slots[j - 1] + 1) ++j;
    fn(first_pos + i, slots[i], j - i);
    i = j;
  }
}

void Table::Scan(const std::function<bool(size_t, const Row&)>& fn) const {
  bool stopped = false;
  order_.Visit(0, order_.size(), [&](size_t pos, uint64_t rid) {
    if (stopped) return;
    auto row = storage_->GetRow(SlotOf(rid));
    if (row.ok() && !fn(pos, row.value())) stopped = true;
  });
}

Result<size_t> Table::FindByKey(const Value& key) const {
  auto pk = schema_.primary_key_index();
  if (!pk) {
    return Status::InvalidArgument("table " + name_ + " has no PRIMARY KEY");
  }
  auto it = pk_to_rid_.find(key);
  if (it == pk_to_rid_.end()) {
    return Status::NotFound("no row with key " + key.ToSqlLiteral() + " in " +
                            name_);
  }
  // Recover the display position by scanning the order index (positions are
  // not tracked per-row because middle inserts would shift all of them).
  uint64_t target = it->second;
  size_t found = order_.size();
  order_.Visit(0, order_.size(), [&](size_t pos, uint64_t rid) {
    if (rid == target && found == order_.size()) found = pos;
  });
  if (found == order_.size()) {
    return Status::Internal("pk index points at a row missing from the order");
  }
  return found;
}

Result<Row> Table::GetRowByKey(const Value& key) const {
  auto pk = schema_.primary_key_index();
  if (!pk) {
    return Status::InvalidArgument("table " + name_ + " has no PRIMARY KEY");
  }
  auto it = pk_to_rid_.find(key);
  if (it == pk_to_rid_.end()) {
    return Status::NotFound("no row with key " + key.ToSqlLiteral() + " in " +
                            name_);
  }
  return storage_->GetRow(SlotOf(it->second));
}

Status Table::UpdateByKey(const Value& key, size_t col, Value v) {
  auto pk = schema_.primary_key_index();
  if (!pk) {
    return Status::InvalidArgument("table " + name_ + " has no PRIMARY KEY");
  }
  if (col >= schema_.num_columns()) {
    return Status::OutOfRange("column " + std::to_string(col));
  }
  auto it = pk_to_rid_.find(key);
  if (it == pk_to_rid_.end()) {
    return Status::NotFound("no row with key " + key.ToSqlLiteral() + " in " +
                            name_);
  }
  uint64_t rid = it->second;
  DS_ASSIGN_OR_RETURN(Value coerced, CoerceForColumn(std::move(v), col));
  Value before;
  if (undo_ != nullptr) {
    DS_ASSIGN_OR_RETURN(before, storage_->Get(SlotOf(rid), col));
  }
  storage::StatementScope txn(storage_->pager(), write_txn_);
  if (col == *pk) {
    if (coerced.is_null()) {
      return Status::ConstraintViolation("PRIMARY KEY of " + name_ +
                                         " may not be NULL");
    }
    auto clash = pk_to_rid_.find(coerced);
    if (clash != pk_to_rid_.end() && clash->second != rid) {
      return Status::ConstraintViolation("duplicate PRIMARY KEY " +
                                         coerced.ToSqlLiteral() + " in " + name_);
    }
    pk_to_rid_.erase(key);
    pk_to_rid_[coerced] = rid;
  }
  DS_RETURN_IF_ERROR(storage_->Set(SlotOf(rid), col, std::move(coerced)));
  txn.Commit();
  if (undo_ != nullptr) {
    undo_->entries.push_back({UndoJournal::Entry::Kind::kUpdate, this, 0, col,
                              rid, {}, std::move(before)});
  }
  Notify(TableChange{TableChange::Kind::kBulk, 0, col});
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Transaction undo (DESIGN.md §7): each UndoX reverses one journal entry.
// Undo runs in exact reverse journal order, so the state each entry sees is
// precisely the state its forward op left behind — recorded positions and
// rids are valid again by induction. Capture is suspended (undo_ cleared)
// while an undo executes; the WAL still logs the undo's page mutations as
// compensations inside the open abort bracket.
// ---------------------------------------------------------------------------

Status Table::UndoInsertRow(size_t pos, uint64_t rid) {
  UndoJournal* saved = undo_;
  undo_ = nullptr;
  Status s = DeleteRowAt(pos);
  undo_ = saved;
  DS_RETURN_IF_ERROR(s);
  // Hand the id back: the insert consumed next_rid_, and every later insert
  // has already been undone, so the counter steps straight down.
  if (rid + 1 == next_rid_) next_rid_ = rid;
  return Status::OK();
}

Status Table::UndoDeleteRow(size_t pos, Row row, uint64_t rid) {
  UndoJournal* saved = undo_;
  undo_ = nullptr;
  Status s = InsertRowAtWithRid(pos, std::move(row), rid);
  undo_ = saved;
  return s;
}

Status Table::UndoUpdateCell(uint64_t rid, size_t col, Value old_value) {
  size_t slot = SlotOf(rid);
  storage::StatementScope txn(storage_->pager(), write_txn_);
  auto pk = schema_.primary_key_index();
  if (pk && *pk == col) {
    DS_ASSIGN_OR_RETURN(Value current, storage_->Get(slot, col));
    pk_to_rid_.erase(current);
    if (!old_value.is_null()) pk_to_rid_[old_value] = rid;
  }
  DS_RETURN_IF_ERROR(storage_->Set(slot, col, std::move(old_value)));
  txn.Commit();
  Notify(TableChange{TableChange::Kind::kBulk, 0, col});
  return Status::OK();
}

Status Table::AddColumn(ColumnDef def, const Value& default_value) {
  if (def.primary_key && num_rows() > 0) {
    return Status::InvalidArgument(
        "cannot add a PRIMARY KEY column to non-empty table " + name_);
  }
  DS_RETURN_IF_ERROR(schema_.AddColumn(def));
  Value coerced = default_value;
  if (!default_value.is_null()) {
    auto r = default_value.CastTo(def.type);
    if (!r.ok()) {
      (void)schema_.RemoveColumn(schema_.num_columns() - 1);
      return r.status();
    }
    coerced = std::move(r).value();
  }
  // Hold auto-checkpoints off until the schema edit, the storage rewrite,
  // and the DDL record have all landed: a snapshot between them would
  // capture a half-applied schema change.
  storage::CheckpointDeferral no_checkpoint(storage_->pager());
  Status s = storage_->AddColumn(coerced);
  if (!s.ok()) {
    (void)schema_.RemoveColumn(schema_.num_columns() - 1);
    return s;
  }
  LogDdl(storage::WalRecordType::kAddColumn);
  Notify(TableChange{TableChange::Kind::kSchema, 0, schema_.num_columns() - 1});
  return Status::OK();
}

Status Table::DropColumn(std::string_view column_name) {
  auto idx = schema_.FindColumn(column_name);
  if (!idx) {
    return Status::NotFound("column '" + std::string(column_name) +
                            "' does not exist in " + name_);
  }
  bool was_pk = schema_.column(*idx).primary_key;
  storage::CheckpointDeferral no_checkpoint(storage_->pager());
  DS_RETURN_IF_ERROR(storage_->DropColumn(*idx));
  DS_RETURN_IF_ERROR(schema_.RemoveColumn(*idx));
  if (was_pk) pk_to_rid_.clear();
  LogDdl(storage::WalRecordType::kDropColumn);
  Notify(TableChange{TableChange::Kind::kSchema, 0, *idx});
  return Status::OK();
}

Status Table::RenameColumn(std::string_view from, std::string_view to) {
  auto idx = schema_.FindColumn(from);
  if (!idx) {
    return Status::NotFound("column '" + std::string(from) +
                            "' does not exist in " + name_);
  }
  DS_RETURN_IF_ERROR(schema_.RenameColumn(*idx, std::string(to)));
  LogDdl(storage::WalRecordType::kRenameColumn);
  Notify(TableChange{TableChange::Kind::kSchema, 0, *idx});
  return Status::OK();
}

Status Table::Reorganize() {
  if (storage_->model() != StorageModel::kHybrid) return Status::OK();
  storage::CheckpointDeferral no_checkpoint(storage_->pager());
  DS_RETURN_IF_ERROR(static_cast<HybridStore*>(storage_.get())->Reorganize());
  LogDdl(storage::WalRecordType::kReorganize);
  Notify(TableChange{TableChange::Kind::kBulk, 0, 0});
  return Status::OK();
}

int Table::AddListener(Listener listener) {
  int token = next_listener_token_++;
  listeners_.emplace_back(token, std::move(listener));
  return token;
}

void Table::RemoveListener(int token) {
  for (auto it = listeners_.begin(); it != listeners_.end(); ++it) {
    if (it->first == token) {
      listeners_.erase(it);
      return;
    }
  }
}

void Table::Notify(const TableChange& change) {
  version_ += 1;
  for (const auto& [token, fn] : listeners_) {
    (void)token;
    fn(*this, change);
  }
}

void Table::RebuildPkIndex() {
  pk_to_rid_.clear();
  auto pk = schema_.primary_key_index();
  if (!pk) return;
  order_.Visit(0, order_.size(), [&](size_t, uint64_t rid) {
    auto v = storage_->Get(SlotOf(rid), *pk);
    if (v.ok()) pk_to_rid_[v.value()] = rid;
  });
}

}  // namespace dataspread
