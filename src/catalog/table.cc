#include "catalog/table.h"

#include <utility>

#include "common/str_util.h"

namespace dataspread {

Result<std::unique_ptr<Table>> Table::Create(
    std::string name, Schema schema, StorageModel model, storage::Pager* pager,
    const storage::PagerConfig& pager_config) {
  DS_RETURN_IF_ERROR(schema.Validate());
  if (name.empty()) {
    return Status::InvalidArgument("table name may not be empty");
  }
  auto storage = CreateStorage(model, schema.num_columns(), pager,
                               pager_config);
  return std::unique_ptr<Table>(
      new Table(std::move(name), std::move(schema), std::move(storage)));
}

Table::Table(std::string name, Schema schema,
             std::unique_ptr<TableStorage> storage)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      storage_(std::move(storage)) {}

Result<Row> Table::GetRowAt(size_t pos) const {
  DS_ASSIGN_OR_RETURN(uint64_t rid, order_.Get(pos));
  return storage_->GetRow(SlotOf(rid));
}

Result<Value> Table::GetAt(size_t pos, size_t col) const {
  DS_ASSIGN_OR_RETURN(uint64_t rid, order_.Get(pos));
  return storage_->Get(SlotOf(rid), col);
}

Result<Value> Table::CoerceForColumn(Value v, size_t col) const {
  if (v.is_error()) {
    return Status::TypeError("error value " + v.error_code() +
                             " cannot be stored in table " + name_);
  }
  return v.CastTo(schema_.column(col).type);
}

Status Table::ValidateRow(const Row& row) const {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument(
        "tuple arity " + std::to_string(row.size()) + " does not match " +
        name_ + "(" + std::to_string(schema_.num_columns()) + " columns)");
  }
  return Status::OK();
}

Status Table::UpdateAt(size_t pos, size_t col, Value v) {
  if (col >= schema_.num_columns()) {
    return Status::OutOfRange("column " + std::to_string(col));
  }
  DS_ASSIGN_OR_RETURN(uint64_t rid, order_.Get(pos));
  DS_ASSIGN_OR_RETURN(Value coerced, CoerceForColumn(std::move(v), col));
  auto pk = schema_.primary_key_index();
  if (pk && *pk == col) {
    if (coerced.is_null()) {
      return Status::ConstraintViolation("PRIMARY KEY of " + name_ +
                                         " may not be NULL");
    }
    auto it = pk_to_rid_.find(coerced);
    if (it != pk_to_rid_.end() && it->second != rid) {
      return Status::ConstraintViolation("duplicate PRIMARY KEY " +
                                         coerced.ToSqlLiteral() + " in " + name_);
    }
    DS_ASSIGN_OR_RETURN(Value old_key, storage_->Get(SlotOf(rid), col));
    pk_to_rid_.erase(old_key);
    pk_to_rid_[coerced] = rid;
  }
  DS_RETURN_IF_ERROR(storage_->Set(SlotOf(rid), col, std::move(coerced)));
  Notify(TableChange{TableChange::Kind::kUpdate, pos, col});
  return Status::OK();
}

Status Table::InsertRowAt(size_t pos, Row row) {
  DS_RETURN_IF_ERROR(ValidateRow(row));
  for (size_t c = 0; c < row.size(); ++c) {
    DS_ASSIGN_OR_RETURN(row[c], CoerceForColumn(std::move(row[c]), c));
  }
  auto pk = schema_.primary_key_index();
  if (pk) {
    if (row[*pk].is_null()) {
      return Status::ConstraintViolation("PRIMARY KEY of " + name_ +
                                         " may not be NULL");
    }
    if (pk_to_rid_.count(row[*pk]) > 0) {
      return Status::ConstraintViolation("duplicate PRIMARY KEY " +
                                         row[*pk].ToSqlLiteral() + " in " + name_);
    }
  }
  DS_ASSIGN_OR_RETURN(size_t slot, storage_->AppendRow(row));
  uint64_t rid = next_rid_++;
  if (rid_to_slot_.size() <= rid) rid_to_slot_.resize(rid + 1);
  rid_to_slot_[rid] = slot;
  if (slot_to_rid_.size() <= slot) slot_to_rid_.resize(slot + 1);
  slot_to_rid_[slot] = rid;
  DS_RETURN_IF_ERROR(order_.InsertAt(pos, rid));
  if (pk) pk_to_rid_[row[*pk]] = rid;
  Notify(TableChange{TableChange::Kind::kInsert, pos, 0});
  return Status::OK();
}

Status Table::AppendRow(Row row) {
  return InsertRowAt(order_.size(), std::move(row));
}

Status Table::DeleteRowAt(size_t pos) {
  DS_ASSIGN_OR_RETURN(uint64_t rid, order_.Get(pos));
  size_t slot = SlotOf(rid);
  auto pk = schema_.primary_key_index();
  if (pk) {
    DS_ASSIGN_OR_RETURN(Value key, storage_->Get(slot, *pk));
    pk_to_rid_.erase(key);
  }
  DS_ASSIGN_OR_RETURN(size_t moved_slot, storage_->DeleteRow(slot));
  // The storage layer moved the tuple from `moved_slot` into `slot`; repoint
  // its row id.
  if (moved_slot != slot) {
    uint64_t moved_rid = slot_to_rid_[moved_slot];
    rid_to_slot_[moved_rid] = slot;
    slot_to_rid_[slot] = moved_rid;
  }
  slot_to_rid_.pop_back();
  (void)order_.EraseAt(pos);
  Notify(TableChange{TableChange::Kind::kDelete, pos, 0});
  return Status::OK();
}

std::vector<Row> Table::GetWindow(size_t start, size_t count) const {
  std::vector<Row> out;
  order_.Visit(start, count, [&](size_t, uint64_t rid) {
    auto row = storage_->GetRow(SlotOf(rid));
    if (row.ok()) out.push_back(std::move(row).value());
  });
  return out;
}

void Table::Scan(const std::function<bool(size_t, const Row&)>& fn) const {
  bool stopped = false;
  order_.Visit(0, order_.size(), [&](size_t pos, uint64_t rid) {
    if (stopped) return;
    auto row = storage_->GetRow(SlotOf(rid));
    if (row.ok() && !fn(pos, row.value())) stopped = true;
  });
}

Result<size_t> Table::FindByKey(const Value& key) const {
  auto pk = schema_.primary_key_index();
  if (!pk) {
    return Status::InvalidArgument("table " + name_ + " has no PRIMARY KEY");
  }
  auto it = pk_to_rid_.find(key);
  if (it == pk_to_rid_.end()) {
    return Status::NotFound("no row with key " + key.ToSqlLiteral() + " in " +
                            name_);
  }
  // Recover the display position by scanning the order index (positions are
  // not tracked per-row because middle inserts would shift all of them).
  uint64_t target = it->second;
  size_t found = order_.size();
  order_.Visit(0, order_.size(), [&](size_t pos, uint64_t rid) {
    if (rid == target && found == order_.size()) found = pos;
  });
  if (found == order_.size()) {
    return Status::Internal("pk index points at a row missing from the order");
  }
  return found;
}

Result<Row> Table::GetRowByKey(const Value& key) const {
  auto pk = schema_.primary_key_index();
  if (!pk) {
    return Status::InvalidArgument("table " + name_ + " has no PRIMARY KEY");
  }
  auto it = pk_to_rid_.find(key);
  if (it == pk_to_rid_.end()) {
    return Status::NotFound("no row with key " + key.ToSqlLiteral() + " in " +
                            name_);
  }
  return storage_->GetRow(SlotOf(it->second));
}

Status Table::UpdateByKey(const Value& key, size_t col, Value v) {
  auto pk = schema_.primary_key_index();
  if (!pk) {
    return Status::InvalidArgument("table " + name_ + " has no PRIMARY KEY");
  }
  if (col >= schema_.num_columns()) {
    return Status::OutOfRange("column " + std::to_string(col));
  }
  auto it = pk_to_rid_.find(key);
  if (it == pk_to_rid_.end()) {
    return Status::NotFound("no row with key " + key.ToSqlLiteral() + " in " +
                            name_);
  }
  uint64_t rid = it->second;
  DS_ASSIGN_OR_RETURN(Value coerced, CoerceForColumn(std::move(v), col));
  if (col == *pk) {
    if (coerced.is_null()) {
      return Status::ConstraintViolation("PRIMARY KEY of " + name_ +
                                         " may not be NULL");
    }
    auto clash = pk_to_rid_.find(coerced);
    if (clash != pk_to_rid_.end() && clash->second != rid) {
      return Status::ConstraintViolation("duplicate PRIMARY KEY " +
                                         coerced.ToSqlLiteral() + " in " + name_);
    }
    pk_to_rid_.erase(key);
    pk_to_rid_[coerced] = rid;
  }
  DS_RETURN_IF_ERROR(storage_->Set(SlotOf(rid), col, std::move(coerced)));
  Notify(TableChange{TableChange::Kind::kBulk, 0, col});
  return Status::OK();
}

Status Table::AddColumn(ColumnDef def, const Value& default_value) {
  if (def.primary_key && num_rows() > 0) {
    return Status::InvalidArgument(
        "cannot add a PRIMARY KEY column to non-empty table " + name_);
  }
  DS_RETURN_IF_ERROR(schema_.AddColumn(def));
  Value coerced = default_value;
  if (!default_value.is_null()) {
    auto r = default_value.CastTo(def.type);
    if (!r.ok()) {
      (void)schema_.RemoveColumn(schema_.num_columns() - 1);
      return r.status();
    }
    coerced = std::move(r).value();
  }
  Status s = storage_->AddColumn(coerced);
  if (!s.ok()) {
    (void)schema_.RemoveColumn(schema_.num_columns() - 1);
    return s;
  }
  Notify(TableChange{TableChange::Kind::kSchema, 0, schema_.num_columns() - 1});
  return Status::OK();
}

Status Table::DropColumn(std::string_view column_name) {
  auto idx = schema_.FindColumn(column_name);
  if (!idx) {
    return Status::NotFound("column '" + std::string(column_name) +
                            "' does not exist in " + name_);
  }
  bool was_pk = schema_.column(*idx).primary_key;
  DS_RETURN_IF_ERROR(storage_->DropColumn(*idx));
  DS_RETURN_IF_ERROR(schema_.RemoveColumn(*idx));
  if (was_pk) pk_to_rid_.clear();
  Notify(TableChange{TableChange::Kind::kSchema, 0, *idx});
  return Status::OK();
}

Status Table::RenameColumn(std::string_view from, std::string_view to) {
  auto idx = schema_.FindColumn(from);
  if (!idx) {
    return Status::NotFound("column '" + std::string(from) +
                            "' does not exist in " + name_);
  }
  DS_RETURN_IF_ERROR(schema_.RenameColumn(*idx, std::string(to)));
  Notify(TableChange{TableChange::Kind::kSchema, 0, *idx});
  return Status::OK();
}

int Table::AddListener(Listener listener) {
  int token = next_listener_token_++;
  listeners_.emplace_back(token, std::move(listener));
  return token;
}

void Table::RemoveListener(int token) {
  for (auto it = listeners_.begin(); it != listeners_.end(); ++it) {
    if (it->first == token) {
      listeners_.erase(it);
      return;
    }
  }
}

void Table::Notify(const TableChange& change) {
  version_ += 1;
  for (const auto& [token, fn] : listeners_) {
    (void)token;
    fn(*this, change);
  }
}

void Table::RebuildPkIndex() {
  pk_to_rid_.clear();
  auto pk = schema_.primary_key_index();
  if (!pk) return;
  order_.Visit(0, order_.size(), [&](size_t, uint64_t rid) {
    auto v = storage_->Get(SlotOf(rid), *pk);
    if (v.ok()) pk_to_rid_[v.value()] = rid;
  });
}

}  // namespace dataspread
