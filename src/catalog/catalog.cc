#include "catalog/catalog.h"

#include <algorithm>
#include <optional>

#include "common/str_util.h"
#include "storage/value_codec.h"

namespace dataspread {

Result<Table*> Catalog::CreateTable(std::string name, Schema schema,
                                    StorageModel model) {
  std::string key = ToLower(name);
  if (tables_.count(key) > 0) {
    return Status::AlreadyExists("table '" + name + "' already exists");
  }
  DS_ASSIGN_OR_RETURN(
      std::unique_ptr<Table> table,
      Table::Create(std::move(name), std::move(schema), model, pager_,
                    private_pager_config_));
  Table* raw = table.get();
  tables_.emplace(key, std::move(table));
  creation_order_.push_back(key);
  if (pager_ != nullptr && pager_->durable()) {
    // The creation's commit point: descriptor after the storage's
    // kCreateFile records, so replay knows the files before it binds them.
    std::string payload;
    EncodeTableDescriptor(raw->Describe(), &payload);
    pager_->LogCatalogRecord(storage::WalRecordType::kCreateTable, payload);
  }
  return raw;
}

Status Catalog::DropTable(std::string_view name) {
  std::string key = ToLower(name);
  auto it = tables_.find(key);
  if (it == tables_.end()) {
    return Status::NotFound("table '" + std::string(name) + "' does not exist");
  }
  // Hold auto-checkpoints off until the table is out of the map: a
  // checkpoint firing inside LogCatalogRecord would snapshot a blob that
  // still lists the table while truncating the kDropTable record away —
  // resurrecting an acknowledged drop (and, once the files go, leaving a
  // blob that points at dead files).
  std::optional<storage::CheckpointDeferral> no_checkpoint;
  if (pager_ != nullptr && pager_->durable()) {
    no_checkpoint.emplace(*pager_);
    // Drop record first: durable before any file disappears, so a reopen
    // either knows the table is gone or still finds its files intact.
    std::string payload;
    storage::AppendU32(&payload,
                       static_cast<uint32_t>(it->second->name().size()));
    payload.append(it->second->name());
    pager_->LogCatalogRecord(storage::WalRecordType::kDropTable, payload);
  }
  // Release retention (a no-op for scratch tables): an explicit drop must
  // deallocate the pager files the durable mode would otherwise keep.
  it->second->set_retain_files(false);
  tables_.erase(it);
  creation_order_.erase(
      std::remove(creation_order_.begin(), creation_order_.end(), key),
      creation_order_.end());
  return Status::OK();
}

Result<Table*> Catalog::AdoptTable(std::unique_ptr<Table> table) {
  std::string key = ToLower(table->name());
  if (tables_.count(key) > 0) {
    return Status::AlreadyExists("table '" + table->name() +
                                 "' already exists");
  }
  Table* raw = table.get();
  tables_.emplace(key, std::move(table));
  creation_order_.push_back(key);
  return raw;
}

std::vector<TableDescriptor> Catalog::Describe() const {
  std::vector<TableDescriptor> out;
  out.reserve(creation_order_.size());
  for (const std::string& key : creation_order_) {
    auto it = tables_.find(key);
    if (it != tables_.end()) out.push_back(it->second->Describe());
  }
  return out;
}

Result<Table*> Catalog::GetTable(std::string_view name) const {
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) {
    return Status::NotFound("table '" + std::string(name) + "' does not exist");
  }
  return it->second.get();
}

bool Catalog::HasTable(std::string_view name) const {
  return tables_.count(ToLower(name)) > 0;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> out;
  out.reserve(creation_order_.size());
  for (const std::string& key : creation_order_) {
    auto it = tables_.find(key);
    if (it != tables_.end()) out.push_back(it->second->name());
  }
  return out;
}

}  // namespace dataspread
