#include "catalog/catalog.h"

#include <algorithm>

#include "common/str_util.h"

namespace dataspread {

Result<Table*> Catalog::CreateTable(std::string name, Schema schema,
                                    StorageModel model) {
  std::string key = ToLower(name);
  if (tables_.count(key) > 0) {
    return Status::AlreadyExists("table '" + name + "' already exists");
  }
  DS_ASSIGN_OR_RETURN(
      std::unique_ptr<Table> table,
      Table::Create(std::move(name), std::move(schema), model, pager_,
                    private_pager_config_));
  Table* raw = table.get();
  tables_.emplace(key, std::move(table));
  creation_order_.push_back(key);
  return raw;
}

Status Catalog::DropTable(std::string_view name) {
  std::string key = ToLower(name);
  auto it = tables_.find(key);
  if (it == tables_.end()) {
    return Status::NotFound("table '" + std::string(name) + "' does not exist");
  }
  tables_.erase(it);
  creation_order_.erase(
      std::remove(creation_order_.begin(), creation_order_.end(), key),
      creation_order_.end());
  return Status::OK();
}

Result<Table*> Catalog::GetTable(std::string_view name) const {
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) {
    return Status::NotFound("table '" + std::string(name) + "' does not exist");
  }
  return it->second.get();
}

bool Catalog::HasTable(std::string_view name) const {
  return tables_.count(ToLower(name)) > 0;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> out;
  out.reserve(creation_order_.size());
  for (const std::string& key : creation_order_) {
    auto it = tables_.find(key);
    if (it != tables_.end()) out.push_back(it->second->name());
  }
  return out;
}

}  // namespace dataspread
