#ifndef DATASPREAD_CATALOG_CATALOG_CODEC_H_
#define DATASPREAD_CATALOG_CATALOG_CODEC_H_

#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/result.h"
#include "storage/pager.h"
#include "storage/table_storage.h"

namespace dataspread {

/// Everything a reopened database needs to rebuild one table without any
/// application help: identity, schema, physical layout, and the ids of the
/// catalog's own side files inside the pager. Serialized with the same
/// value_codec little-endian helpers as the spill/WAL formats, and carried
/// inside CRC-guarded WAL records (the checkpoint snapshot's catalog blob
/// and the kCreateTable.. DDL records), so every byte is covered by the
/// log's integrity machinery.
///
/// Deliberately absent: row counts, display order, and row-id maps — those
/// change with every DML and are persisted *as pager files* (`order_file`,
/// `rid_file`, and the manifest's RCV back-pointer files), where the
/// page-level WAL already makes them durable. A descriptor is therefore
/// valid at every statement boundary, which is exactly when checkpoints and
/// DDL records capture it (storage::CheckpointDeferral holds auto-
/// checkpoints off mid-statement).
struct TableDescriptor {
  std::string name;
  Schema schema;
  StorageManifest manifest;
  /// Pager file: slot p holds the row id displayed at position p (INT).
  /// Its size is the authoritative recovered row count.
  uint64_t order_file = 0;
  /// Pager file: slot s holds the row id stored at storage slot s (INT).
  uint64_t rid_file = 0;
  /// Row-id floor at serialization time; Attach takes max(this, max rid in
  /// the order file + 1) so ids never regress across a reopen.
  uint64_t next_rid = 0;
};

// ---- Wire format ----------------------------------------------------------
//
//   descriptor := name:str n_cols:u32 (col_name:str type:u8 pk:u8)*
//                 model:u8 manifest order_file:u64 rid_file:u64 next_rid:u64
//   manifest   := n_files:u32 file:u64* n_groups:u32
//                 (file:u64 width:u32 col:u32*)*
//   blob       := version:u32(=1) n_tables:u32 descriptor*
//   str        := len:u32 bytes
//
// DDL record payloads are a single descriptor (kCreateTable, kAddColumn,
// kDropColumn, kRenameColumn, kReorganize) or a bare table-name str
// (kDropTable). DESIGN.md §6 "Catalog recovery" documents the semantics.

/// Appends one serialized descriptor to `out` (the DDL record payload).
void EncodeTableDescriptor(const TableDescriptor& desc, std::string* out);

/// Decodes one descriptor at `*pos`, advancing it; fails on malformed input
/// (which, under the WAL's CRCs, means version skew or a codec bug).
Result<TableDescriptor> DecodeTableDescriptor(const std::string& buf,
                                              size_t* pos);

/// Serializes a whole catalog (descriptors in creation order) into the
/// checkpoint-snapshot blob handed to storage::Pager's provider hook.
void EncodeCatalogBlob(const std::vector<TableDescriptor>& tables,
                       std::string* out);

/// Rebuilds the descriptor list a recovered database must attach: decodes
/// the snapshot `blob`, then applies the post-snapshot DDL records in log
/// order (create appends, drop removes, the alter kinds replace by name —
/// every alter payload is a complete descriptor, so replay never
/// re-executes logical DDL). Creation order is preserved.
Result<std::vector<TableDescriptor>> ReplayCatalogState(
    const std::string& blob,
    const std::vector<storage::Pager::CatalogRecord>& ddl);

}  // namespace dataspread

#endif  // DATASPREAD_CATALOG_CATALOG_CODEC_H_
