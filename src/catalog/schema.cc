#include "catalog/schema.h"

#include "common/str_util.h"

namespace dataspread {

Status Schema::Validate() const {
  size_t pk_count = 0;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name.empty()) {
      return Status::InvalidArgument("column " + std::to_string(i) +
                                     " has an empty name");
    }
    if (columns_[i].primary_key) ++pk_count;
    for (size_t j = i + 1; j < columns_.size(); ++j) {
      if (EqualsIgnoreCase(columns_[i].name, columns_[j].name)) {
        return Status::InvalidArgument("duplicate column name '" +
                                       columns_[i].name + "'");
      }
    }
  }
  if (pk_count > 1) {
    return Status::InvalidArgument("at most one PRIMARY KEY column is supported");
  }
  return Status::OK();
}

std::optional<size_t> Schema::FindColumn(std::string_view name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (EqualsIgnoreCase(columns_[i].name, name)) return i;
  }
  return std::nullopt;
}

std::optional<size_t> Schema::primary_key_index() const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].primary_key) return i;
  }
  return std::nullopt;
}

Status Schema::AddColumn(ColumnDef def) {
  if (def.name.empty()) {
    return Status::InvalidArgument("column name may not be empty");
  }
  if (FindColumn(def.name)) {
    return Status::AlreadyExists("column '" + def.name + "' already exists");
  }
  if (def.primary_key && primary_key_index()) {
    return Status::InvalidArgument("table already has a PRIMARY KEY column");
  }
  columns_.push_back(std::move(def));
  return Status::OK();
}

Status Schema::RemoveColumn(size_t index) {
  if (index >= columns_.size()) {
    return Status::OutOfRange("column index " + std::to_string(index));
  }
  columns_.erase(columns_.begin() + static_cast<ptrdiff_t>(index));
  return Status::OK();
}

Status Schema::RenameColumn(size_t index, std::string new_name) {
  if (index >= columns_.size()) {
    return Status::OutOfRange("column index " + std::to_string(index));
  }
  if (new_name.empty()) {
    return Status::InvalidArgument("column name may not be empty");
  }
  auto existing = FindColumn(new_name);
  if (existing && *existing != index) {
    return Status::AlreadyExists("column '" + new_name + "' already exists");
  }
  columns_[index].name = std::move(new_name);
  return Status::OK();
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += " ";
    out += DataTypeName(columns_[i].type);
    if (columns_[i].primary_key) out += " PRIMARY KEY";
  }
  return out;
}

}  // namespace dataspread
