#ifndef DATASPREAD_CATALOG_WRITE_LATCH_H_
#define DATASPREAD_CATALOG_WRITE_LATCH_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace dataspread {

/// The partitioned write-latch table behind multi-writer SQL (DESIGN.md §7
/// "Partitioned write latching"). One entry per table name (lower-cased by
/// the caller): an exclusive owner — a transaction id from the pager's
/// monotone counter — or a count of shared readers.
///
/// Writers (DML, LOCK TABLE) take a table exclusively and, for transaction
/// sessions, hold it until commit/rollback (strict 2PL on the write set).
/// Readers (SELECT, INSERT..SELECT sources) take their whole read set
/// shared *all-or-nothing* for the statement's duration: the batch waits
/// until every wanted table is writer-free and then latches all of them at
/// once, so a reader never holds one latch while waiting on another.
///
/// Deadlock policy — wait-die on transaction age (smaller id == older):
/// a requester blocked by a writer may wait only when waiting cannot close
/// a cycle, i.e. when it holds no other latches (`may_wait_on_writer`,
/// computed by the caller) or when it is older than the blocking owner.
/// Otherwise the acquisition fails with Status::SerializationConflict and
/// the caller aborts the (younger) requester, which releases its latches
/// and retries. Waiting on shared holders is always allowed: a reader
/// batch never waits while holding, so reader-involved cycles cannot form.
///
/// Self-compatible: an owner re-acquiring its own table (exclusively or in
/// a shared batch) always succeeds immediately.
class WriteLatchTable {
 public:
  /// Acquires `table` exclusively for transaction `txn`. Blocks while the
  /// table is held shared, or by an older writer, or by any writer when
  /// `may_wait_on_writer` (the requester holds nothing else); fails with
  /// SerializationConflict when a younger-vs-older writer wait would risk a
  /// cycle. Re-entrant for the current owner.
  Status AcquireExclusive(const std::string& table, uint64_t txn,
                          bool may_wait_on_writer);
  /// Releases an exclusive hold. No-op unless `txn` is the owner.
  void ReleaseExclusive(const std::string& table, uint64_t txn);

  /// Acquires every table in `tables` shared, all-or-nothing, for the
  /// statement of transaction `txn` (0 = plain autocommit reader). Tables
  /// `txn` owns exclusively are compatible. Duplicates are counted twice
  /// and must be released with the same vector. Wait/die rule as above.
  Status AcquireShared(const std::vector<std::string>& tables, uint64_t txn,
                       bool may_wait_on_writer);
  void ReleaseShared(const std::vector<std::string>& tables);

  /// The exclusive owner of `table`, or 0. DDL uses this under the schema
  /// exclusive latch (which stops new acquisitions) to fail fast on tables
  /// locked by open transactions.
  uint64_t ExclusiveOwner(const std::string& table) const;

 private:
  struct Entry {
    uint64_t owner = 0;  ///< Exclusive owner txn id, or 0.
    size_t shared = 0;   ///< Shared holds (statement-scoped readers).
  };

  /// Erases `it` if its entry is fully free (bounds the map to live
  /// latches). Caller holds mu_.
  void MaybeErase(std::unordered_map<std::string, Entry>::iterator it);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_map<std::string, Entry> latches_;
};

/// A *reader-preferring* shared mutex (Lockable + SharedLockable, so
/// std::unique_lock / std::shared_lock apply). The Database's schema latch
/// must prefer readers: a statement may park on a write-latch condition
/// variable while holding the schema latch shared, waiting on an older
/// transaction whose *next statement* also needs shared access — under a
/// writer-priority rwlock a queued DDL writer would wedge that statement
/// behind itself and close the cycle. Here a merely-waiting writer never
/// blocks readers, so the older transaction always progresses to the
/// commit that unparks the waiter; DDL just waits for a quiet moment
/// (acceptable: DDL is rare and statements are finite).
class SchemaLatch {
 public:
  void lock_shared() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return !writer_; });
    ++readers_;
  }
  void unlock_shared() {
    std::lock_guard<std::mutex> lock(mu_);
    if (--readers_ == 0) cv_.notify_all();
  }
  void lock() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return !writer_ && readers_ == 0; });
    writer_ = true;
  }
  void unlock() {
    std::lock_guard<std::mutex> lock(mu_);
    writer_ = false;
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  size_t readers_ = 0;
  bool writer_ = false;
};

}  // namespace dataspread

#endif  // DATASPREAD_CATALOG_WRITE_LATCH_H_
