#ifndef DATASPREAD_STORAGE_PAGE_CURSOR_H_
#define DATASPREAD_STORAGE_PAGE_CURSOR_H_

#include <cstdint>

#include "storage/pager.h"

namespace dataspread {
namespace storage {

/// The hot-loop access path over one pager file.
///
/// The slot-granular Pager::Read/Write pay an `unordered_map` chain lookup
/// plus per-slot accounting on every call. A PageCursor resolves the chain
/// exactly once at construction and then pins each page it visits exactly
/// once: while the cursor stays on a page, a slot access is index arithmetic
/// on the pinned frame — no hash lookup, no pin churn, no per-slot epoch
/// insert (distinct-page accounting happens once per page, which is what the
/// epoch sets measure anyway; `slot_reads`/`slot_writes` stay slot-exact).
///
/// The cursor is also the scan-resistance and readahead signal: it carries
/// its own sequential detector (page transitions of +1), so a cursor scan
/// keeps its streak even while point lookups hit the same file through the
/// slot APIs. Pages mounted by a sequential cursor are scan-class (routed
/// through the pager's scan ring, see DESIGN.md §5a) and fault-ins trigger
/// one page of spill readahead.
///
/// Pin discipline: the cursor holds at most one pin — the page under it —
/// released on page change, Release(), or destruction. The cursor must not
/// outlive its pager or file, and Release() must be called before
/// Truncate/DropFile could free the pinned page (the pager aborts on
/// freeing a pinned page).
///
/// Threading (DESIGN.md §7): a cursor is owned by one thread, but many
/// cursors on one pager may run concurrently — N reader cursors plus one
/// writer thread. Page *movement* (Seek: unpin, fault, pin) takes the
/// pager's structural latch; slot *reads* then proceed latch-free under a
/// shared per-frame data latch acquired lazily on first access and held
/// until the cursor leaves the page (so a ReadSpan pointer stays stable).
/// Mutating calls drop the shared latch, take the structural latch, and
/// hold the frame's latch exclusively only for the mutation itself. The
/// cursor never enters the pager while holding a data latch — the deadlock-
/// freedom argument for the structural→frame lock order.
///
/// Dirty/LSN contract: every mutating call (Write/Take/WriteRange/Fill)
/// sets the page's dirty bit *eagerly* — not at unpin — so a FlushAll()
/// mid-cursor checkpoints pending writes, and logs its redo through the
/// pager's single WAL choke point (Pager::LogPageMutation) in the same
/// call, stamping the page's page_lsn. The window in which a page is dirty
/// but its newest mutation unlogged therefore never spans a pager call, and
/// the WAL rule (no write-back before flushed-LSN >= page_lsn, DESIGN.md
/// §6) holds on every eviction/checkpoint path. Range ops advance the
/// file's logical size per page segment, so each redo record describes a
/// self-consistent prefix of the range.
class PageCursor {
 public:
  PageCursor(Pager& pager, FileId file);
  ~PageCursor() { Release(); }
  PageCursor(const PageCursor&) = delete;
  PageCursor& operator=(const PageCursor&) = delete;
  PageCursor(PageCursor&& other) noexcept;
  PageCursor& operator=(PageCursor&& other) noexcept;

  /// Reads `slot` (must be below the file's page capacity, like
  /// Pager::Read). The reference is valid until the cursor moves to another
  /// page or any pager call that can evict — callers copy.
  const Value& Read(uint64_t slot);
  /// Zero-copy read of `count` consecutive slots that share one page
  /// (checked): returns a pointer directly into the pinned frame, valid
  /// under the same rules as Read(). Accounts `count` slot reads. The
  /// fastest tuple fetch for row-major layouts whose tuples never straddle
  /// pages.
  const Value* ReadSpan(uint64_t slot, uint64_t count);
  /// Writes `slot`, growing the file as needed.
  void Write(uint64_t slot, Value v);
  /// Moves the value out of `slot` (reads + dirties, like Pager::Take).
  Value Take(uint64_t slot);
  /// Appends slots [start, start+count) to `out`.
  void ReadRange(uint64_t start, uint64_t count, Row* out);
  /// Writes slots [start, start+count) from `values`, growing as needed.
  void WriteRange(uint64_t start, const Value* values, uint64_t count);
  /// Writes `count` copies of `v` to [start, start+count).
  void Fill(uint64_t start, uint64_t count, const Value& v);

  /// Unpins the current page. The cursor stays usable — the next access
  /// re-pins — but its sequential streak is kept, so a scan interrupted by
  /// a Release() resumes as a scan.
  void Release();

  FileId file() const { return file_; }

 private:
  /// Moves the cursor onto `page_index`: releases the old data latch and
  /// pin, updates the sequential detector, mounts (growing/faulting as
  /// needed) and pins — all under the pager's structural latch.
  void Seek(uint64_t page_index, bool grow);
  /// Acquires the shared data latch on the current frame (lazy, idempotent).
  void LatchData();
  /// Releases it if held. Must precede any structural-latch acquisition.
  void UnlatchData();
  /// Slot-exact counters plus a once-per-page-visit distinct-page record —
  /// the single place the cursor's accounting rule lives. Slot counts
  /// accumulate cursor-locally and merge into the pager's shared atomics at
  /// drain time (FlushCounts: page change, Release, or the end of a range
  /// op) — one fetch-add per page visit instead of one per slot access, so
  /// N morsel workers don't contend on the counters mid-scan and a
  /// PagerStats snapshot never observes a half-counted page. The distinct-
  /// page epoch record stays immediate (first access per page visit).
  void CountRead(uint64_t count = 1);
  void CountWrite(uint64_t count = 1);
  /// Merges pending slot counts into the pager's atomics.
  void FlushCounts();

  Pager* pager_;
  FileId file_;
  Pager::FileChain* chain_;  // resolved once; stable across rehash (node-based)
  ValuePage* page_ = nullptr;
  uint64_t page_index_ = 0;
  uint64_t base_ = 0;  // page_index_ * kSlotsPerPage
  PageId frame_ = 0;   // the pinned page's frame (stable while pinned)
  // The frame's data latch, resolved under the structural latch in Seek —
  // deque *elements* are address-stable, but indexing the deque races with
  // its growth, so the lookup must not happen lock-free in LatchData.
  std::shared_mutex* frame_latch_ = nullptr;
  std::shared_mutex* latch_ = nullptr;  // held shared iff non-null
  Pager::SeqDetector seq_;  // per-cursor sequential detector
  // Epoch accounting latches: one distinct-page record per page visit.
  bool counted_read_ = false;
  bool counted_write_ = false;
  // Slot counts accumulated since the last FlushCounts (always zero while
  // no page is pinned — Release drains them).
  uint64_t pending_reads_ = 0;
  uint64_t pending_writes_ = 0;
};

}  // namespace storage
}  // namespace dataspread

#endif  // DATASPREAD_STORAGE_PAGE_CURSOR_H_
