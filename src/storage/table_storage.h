#ifndef DATASPREAD_STORAGE_TABLE_STORAGE_H_
#define DATASPREAD_STORAGE_TABLE_STORAGE_H_

#include <functional>
#include <memory>
#include <string>

#include "common/result.h"
#include "storage/page.h"
#include "storage/pager.h"
#include "types/value.h"

namespace dataspread {

/// Physical layout of a table. The paper's Relational Storage Manager is the
/// hybrid attribute-group layout; the others are baselines for the storage
/// ablation (DESIGN.md experiment A1) and the schema-change experiment (C2).
enum class StorageModel {
  kRow,     ///< ROM: one heap of whole tuples ("today's database" baseline).
  kColumn,  ///< COM: one file per attribute.
  kRcv,     ///< Row-Column-Value triples, column-major (schema-less baseline).
  kHybrid,  ///< Attribute groups (the paper's design).
};

const char* StorageModelName(StorageModel model);

/// Durable description of a table storage's physical layout: which pager
/// files hold its data and how logical columns map onto them. Serialized
/// into the catalog blob / DDL records (catalog/catalog_codec.h) so a
/// durable database can rebind a storage object to its recovered pager
/// files instead of creating fresh ones.
///
/// Per model:
///   kRow:    files = {tuple heap}
///   kColumn: files[c] = column c's heap
///   kRcv:    files[2c] = column c's value heap, files[2c+1] = its row
///            back-pointer file (present only on durable pagers)
///   kHybrid: groups[] carries the attribute-group structure; `files` unused
///
/// Row counts are deliberately absent: they are derived from recovered file
/// sizes at attach time (a checkpoint-stale count would undercount rows the
/// WAL replayed after the snapshot).
struct StorageManifest {
  StorageModel model = StorageModel::kHybrid;
  uint32_t num_columns = 0;
  std::vector<uint64_t> files;
  struct Group {
    uint64_t file = 0;
    uint32_t width = 0;
    /// Logical column index per group offset (columns[o] sits at offset o).
    std::vector<uint32_t> columns;
  };
  std::vector<Group> groups;
};

/// Storage-model-agnostic interface over a table's physical data.
///
/// Rows are addressed by dense *slots* in [0, num_rows()). Slots are storage
/// order, not display order: the catalog layer maintains display order with a
/// positional index on top. DeleteRow uses swap-with-last, so exactly one
/// surviving slot (the previous last one) is renumbered per delete; the caller
/// is told which.
///
/// Every model allocates its cell heaps from a storage::Pager — one file
/// (page chain) per heap/column/attribute-group — so all I/O is visible to
/// the pager's block-level accounting. A pager can be shared across tables
/// (the Database wires one pool through its Catalog); a storage constructed
/// without one owns a private pager built from the supplied PagerConfig
/// (pool cap + spill path), so even standalone tables can run bounded.
///
/// Cell type discipline is enforced by the catalog (schema) layer; storage
/// accepts any Value except errors.
class TableStorage {
 public:
  virtual ~TableStorage() = default;

  virtual StorageModel model() const = 0;
  virtual size_t num_rows() const = 0;
  virtual size_t num_columns() const = 0;

  /// Reads one cell. Fails with OutOfRange for bad coordinates.
  virtual Result<Value> Get(size_t row, size_t col) const = 0;
  /// Writes one cell.
  virtual Status Set(size_t row, size_t col, Value v) = 0;
  /// Reads a whole tuple.
  virtual Result<Row> GetRow(size_t row) const = 0;
  /// Bulk scan: appends rows [start, start+count) to `out`. Every model
  /// overrides this with a PageCursor streaming path — one page pin per data
  /// page instead of a hash lookup per cell — which is also what classifies
  /// the traversal as a scan for the pager's scan-resistant eviction. The
  /// base implementation is the GetRow loop (reference semantics).
  virtual Status GetRows(size_t start, size_t count,
                         std::vector<Row>* out) const;

  /// Called once per visited row with `values` pointing at num_columns()
  /// cells. The pointer is valid only during the call.
  using RowVisitor = std::function<void(size_t row, const Value* values)>;
  /// The zero-materialization scan: visits rows [start, start+count) in
  /// order without building a Row per tuple. Row-major layouts hand out
  /// pointers straight into the pinned page whenever a tuple does not
  /// straddle a page boundary; decomposed layouts gather into one reused
  /// scratch tuple. This is the fast path full scans and aggregations should
  /// use; GetRows is for callers that need owned rows.
  virtual Status VisitRows(size_t start, size_t count,
                           const RowVisitor& visit) const;

  /// Appends a tuple; `row.size()` must equal num_columns(). Returns the slot.
  virtual Result<size_t> AppendRow(const Row& row) = 0;
  /// Removes slot `row` by moving the last slot into it. Returns the slot that
  /// was moved (== previous last slot), or `row` itself when it was last.
  virtual Result<size_t> DeleteRow(size_t row) = 0;

  /// Schema change: appends a column filled with `default_value`.
  /// For the hybrid model this allocates a fresh attribute group and leaves
  /// existing pages untouched — the paper's headline storage property.
  virtual Status AddColumn(const Value& default_value) = 0;
  /// Schema change: drops column `col`; higher columns shift down by one.
  virtual Status DropColumn(size_t col) = 0;

  /// The current physical layout (file bindings) of this storage — always
  /// live-accurate, so a checkpoint snapshot taken at any statement boundary
  /// describes exactly the files a reopen must rebind.
  virtual StorageManifest Manifest() const = 0;

  /// When set, the destructor leaves this storage's pager files alive
  /// instead of dropping them — the durable mode: the files *are* the
  /// persistent table data and must outlive the in-memory object. DROP
  /// TABLE clears the flag before destroying the table so an explicit drop
  /// still deallocates. Defaults to off (scratch tables free their pages).
  void set_retain_files(bool retain) { retain_files_ = retain; }
  bool retain_files() const { return retain_files_; }

  /// Durable DDL is copy-on-write: on a durable pager, schema-changing ops
  /// that would rewrite or drop existing files instead build fresh files
  /// (reading the old ones non-destructively) and *retire* the replaced
  /// ones here rather than dropping them. The catalog layer logs the DDL
  /// record — the commit point — and only then drops the retired files, so
  /// a crash-reopen binds either the old files (record lost) or the new
  /// ones (record durable), never a half-rewritten mixture. Scratch pagers
  /// keep the cheaper in-place rewrites and this list stays empty.
  std::vector<storage::FileId> TakeRetiredFiles() {
    return std::move(retired_files_);
  }

  /// Block-level accounting for this table's files (compatibility facade).
  PageAccountant& accountant() { return accountant_; }
  const PageAccountant& accountant() const { return accountant_; }

  /// The paged storage engine this table's heaps live in.
  storage::Pager& pager() { return *pager_; }
  const storage::Pager& pager() const { return *pager_; }

 protected:
  /// `config` shapes the private pager when `pager` is null; ignored for a
  /// shared pool (whose owner configured it).
  TableStorage(storage::Pager* pager, const storage::PagerConfig& config);

  /// Shared bounds guard of every bulk row API (GetRows/VisitRows).
  Status CheckRowRange(size_t start, size_t count) const {
    if (start >= num_rows() || count > num_rows() - start) {
      return Status::OutOfRange("rows [" + std::to_string(start) + ", " +
                                std::to_string(start + count) + ") of " +
                                std::to_string(num_rows()));
    }
    return Status::OK();
  }

  Status CheckCell(size_t row, size_t col) const {
    if (row >= num_rows()) {
      return Status::OutOfRange("row " + std::to_string(row) + " >= " +
                                std::to_string(num_rows()));
    }
    if (col >= num_columns()) {
      return Status::OutOfRange("column " + std::to_string(col) + " >= " +
                                std::to_string(num_columns()));
    }
    return Status::OK();
  }

  std::unique_ptr<storage::Pager> owned_pager_;
  storage::Pager* pager_;
  PageAccountant accountant_;
  bool retain_files_ = false;
  std::vector<storage::FileId> retired_files_;  // durable DDL (see above)
};

/// Creates an empty table with `num_columns` attributes in the given layout.
/// If `pager` is null the storage owns a private one built from `config`.
std::unique_ptr<TableStorage> CreateStorage(
    StorageModel model, size_t num_columns, storage::Pager* pager = nullptr,
    const storage::PagerConfig& config = {});

/// Row count recoverable from a manifest's file sizes alone: every model
/// keeps its files at exactly `rows × width` slots, so the floor of the
/// smallest file/width ratio is the last fully persisted row count. Returns
/// UINT64_MAX for layouts whose files cannot bound the row count (kRcv
/// materializes only non-NULL cells; zero-column tables) — the caller then
/// relies on the catalog's order file. Fails on a manifest referencing
/// unknown files.
Result<uint64_t> ManifestRows(const StorageManifest& manifest,
                              const storage::Pager& pager);

/// Rebinds a storage object to the recovered pager files named by
/// `manifest`, with exactly `num_rows` rows (the catalog layer derives the
/// count from its order file and ManifestRows). Files holding more than
/// `num_rows` rows are truncated down — the remnant of a statement in
/// flight at the crash; files holding fewer make the attach fail. The
/// result has retain_files() set: recovered files are persistent data.
Result<std::unique_ptr<TableStorage>> AttachStorage(
    const StorageManifest& manifest, uint64_t num_rows,
    storage::Pager* pager);

}  // namespace dataspread

#endif  // DATASPREAD_STORAGE_TABLE_STORAGE_H_
