#include "storage/wal.h"

#include <cstdlib>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include "storage/value_codec.h"

// Like the pager and spill file, I/O failure on the durability path aborts:
// continuing would hand out acknowledgements the log cannot honor.
#define DS_WAL_CHECK(cond, msg)                                  \
  do {                                                           \
    if (!(cond)) {                                               \
      std::fprintf(stderr, "storage::Wal check failed: %s\n",    \
                   (msg));                                       \
      std::abort();                                              \
    }                                                            \
  } while (0)

namespace dataspread {
namespace storage {

namespace {

constexpr char kMagic[8] = {'D', 'S', 'W', 'A', 'L', '0', '0', '1'};
// Upper bound on one record body: a page image is ~a few KiB unless TEXT
// payloads blow it up; 1 GiB is far beyond anything legitimate and lets the
// scanner reject garbage lengths without huge allocations.
constexpr uint32_t kMaxBodyBytes = 1u << 30;

void BuildFileHeader(uint64_t base_lsn, std::string* out) {
  out->clear();
  out->append(kMagic, sizeof kMagic);
  AppendU64(out, base_lsn);
  AppendU32(out, Crc32(&base_lsn, sizeof base_lsn));
}

void FrameRecord(uint64_t lsn, WalRecordType type, const std::string& payload,
                 std::string* out) {
  // body = type byte + payload; crc covers lsn || body so a record can never
  // be accepted at the wrong stream position.
  uint32_t body_len = static_cast<uint32_t>(1 + payload.size());
  DS_WAL_CHECK(payload.size() < kMaxBodyBytes, "WAL record body too large");
  AppendU32(out, body_len);
  uint32_t crc = Crc32(&lsn, sizeof lsn);
  unsigned char type_byte = static_cast<unsigned char>(type);
  crc = Crc32(&type_byte, 1, crc);
  crc = Crc32(payload.data(), payload.size(), crc);
  AppendU32(out, crc);
  AppendU64(out, lsn);
  out->push_back(static_cast<char>(type_byte));
  out->append(payload);
}

}  // namespace

Wal::Wal(std::string path) : path_(std::move(path)) {}

Wal::~Wal() {
  // Destruction is single-threaded by contract (the pager joins/outlives
  // every committer before tearing the WAL down); no locking needed.
  if (crashed_) return;
  if (!pending_.empty()) Drain();
  if (file_ != nullptr) std::fclose(file_);
}

void Wal::WaitForSyncIdle(std::unique_lock<std::mutex>& lock) {
  while (sync_active_) cv_.wait(lock);
}

void Wal::FsyncDirOf(const std::string& path) {
  size_t slash = path.find_last_of('/');
  std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  if (dir.empty()) dir = "/";
  int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) return;  // best effort: some filesystems refuse dir opens
  ::fsync(fd);
  ::close(fd);
}

bool Wal::Open(const std::function<void(const Record&)>& replay) {
  std::FILE* f = std::fopen(path_.c_str(), "rb+");
  if (f == nullptr) return false;  // no log yet: fresh start

  // Read the whole log. Logs are truncated at every checkpoint, so the live
  // tail is bounded by the checkpoint cadence, not database size.
  DS_WAL_CHECK(std::fseek(f, 0, SEEK_END) == 0, "seek WAL end");
  long end = std::ftell(f);
  DS_WAL_CHECK(end >= 0, "tell WAL end");
  std::string buf(static_cast<size_t>(end), '\0');
  std::rewind(f);
  if (!buf.empty()) {
    DS_WAL_CHECK(std::fread(&buf[0], 1, buf.size(), f) == buf.size(),
                 "short WAL read");
  }

  if (buf.empty()) {
    // A zero-byte log can only be hand-made (creation is rename-atomic);
    // treat it as absent.
    std::fclose(f);
    return false;
  }
  DS_WAL_CHECK(buf.size() >= kFileHeaderBytes &&
                   std::memcmp(buf.data(), kMagic, sizeof kMagic) == 0,
               "WAL header corrupt (not a DATASPREAD WAL?)");
  size_t pos = sizeof kMagic;
  uint64_t base = 0;
  uint32_t header_crc = 0;
  ReadU64(buf, &pos, &base);
  ReadU32(buf, &pos, &header_crc);
  DS_WAL_CHECK(header_crc == Crc32(&base, sizeof base), "WAL header CRC");

  base_lsn_ = base;
  checkpoint_lsn_ = base;
  uint64_t lsn = base;
  size_t valid_end = pos;
  Record rec;
  bool first = true;
  while (pos + kRecordHeaderBytes <= buf.size()) {
    uint32_t body_len = 0, crc = 0;
    uint64_t rec_lsn = 0;
    ReadU32(buf, &pos, &body_len);
    ReadU32(buf, &pos, &crc);
    ReadU64(buf, &pos, &rec_lsn);
    if (body_len == 0 || body_len > kMaxBodyBytes ||
        pos + body_len > buf.size()) {
      break;  // torn tail: the record never finished reaching the disk
    }
    uint32_t actual = Crc32(&rec_lsn, sizeof rec_lsn);
    actual = Crc32(buf.data() + pos, body_len, actual);
    if (actual != crc || rec_lsn != lsn) break;  // corrupt or misplaced
    rec.lsn = rec_lsn;
    rec.type = static_cast<WalRecordType>(static_cast<unsigned char>(buf[pos]));
    rec.payload.assign(buf, pos + 1, body_len - 1);
    DS_WAL_CHECK(!first || rec.type == WalRecordType::kCheckpoint,
                 "WAL does not start with a checkpoint snapshot");
    first = false;
    replay(rec);
    pos += body_len;
    lsn += kRecordHeaderBytes + body_len;
    valid_end = pos;
  }
  DS_WAL_CHECK(!first, "WAL contains no complete checkpoint record");

  // Physically drop the torn tail so appends continue from the valid end,
  // and fsync once: the surviving records may have reached us via the page
  // cache of a killed process, and from here on we treat them as durable.
  if (valid_end < buf.size()) {
    DS_WAL_CHECK(::ftruncate(::fileno(f), static_cast<off_t>(valid_end)) == 0,
                 "truncate torn WAL tail");
  }
  DS_WAL_CHECK(::fsync(::fileno(f)) == 0, "WAL recovery fsync");
  std::fclose(f);

  next_lsn_.store(lsn, std::memory_order_release);
  durable_lsn_.store(lsn, std::memory_order_release);
  // The recovered log counts as zero fresh redo: the pager re-checkpoints
  // right after replay, which resets this properly for the new epoch.
  redo_start_lsn_.store(lsn, std::memory_order_release);
  return true;
}

std::FILE* Wal::EnsureAppendHandle() {
  if (file_ == nullptr) {
    file_ = std::fopen(path_.c_str(), "ab");
    DS_WAL_CHECK(file_ != nullptr, "cannot open WAL for append");
  }
  return file_;
}

uint64_t Wal::Append(WalRecordType type, const std::string& payload) {
  std::lock_guard<std::mutex> lock(mu_);
  DS_WAL_CHECK(!crashed_, "appending to a crashed WAL");
  uint64_t lsn = next_lsn_.load(std::memory_order_relaxed);
  size_t before = pending_.size();
  FrameRecord(lsn, type, payload, &pending_);
  size_t framed = pending_.size() - before;
  next_lsn_.store(lsn + framed, std::memory_order_release);
  records_appended_.fetch_add(1, std::memory_order_relaxed);
  bytes_appended_.fetch_add(framed, std::memory_order_relaxed);
  if (pending_.size() >= kDrainThresholdBytes) Drain();
  return lsn;
}

void Wal::Drain() {
  if (pending_.empty()) return;
  std::FILE* f = EnsureAppendHandle();
  DS_WAL_CHECK(std::fwrite(pending_.data(), 1, pending_.size(), f) ==
                   pending_.size(),
               "short WAL write");
  // Hand the bytes to the OS now: after this only a power/kernel failure —
  // not a process kill — can lose them, and fsync has less to do later.
  DS_WAL_CHECK(std::fflush(f) == 0, "WAL flush");
  pending_.clear();
}

void Wal::Sync() { SyncThrough(next_lsn()); }

void Wal::SyncThrough(uint64_t lsn) {
  std::unique_lock<std::mutex> lock(mu_);
  DS_WAL_CHECK(!crashed_, "syncing a crashed WAL");
  while (durable_lsn_.load(std::memory_order_relaxed) < lsn) {
    if (sync_active_) {
      // A leader's fsync is in flight. It may not cover records appended
      // after it drained, so park and re-check rather than assume.
      cv_.wait(lock);
      continue;
    }
    // Become the leader: drain everything appended so far (by anyone) and
    // fsync once for the whole group. The fsync runs outside the mutex so
    // appends — and the next wave of committers — keep flowing meanwhile.
    Drain();
    uint64_t target = next_lsn_.load(std::memory_order_relaxed);
    int fd = ::fileno(EnsureAppendHandle());
    sync_active_ = true;
    lock.unlock();
    DS_WAL_CHECK(::fsync(fd) == 0, "WAL fsync");
    lock.lock();
    sync_active_ = false;
    if (target > durable_lsn_.load(std::memory_order_relaxed)) {
      durable_lsn_.store(target, std::memory_order_release);
    }
    syncs_.fetch_add(1, std::memory_order_relaxed);
    cv_.notify_all();
  }
}

void Wal::EnsureDurable(uint64_t lsn) {
  // Strict: `lsn` is a record's *start* offset and durable_lsn_ the durable
  // *end* boundary, so a record starting exactly at the boundary is the
  // first not-yet-durable one. (`lsn == 0` with nothing synced falls out
  // naturally: page_lsn 0 means "never mutated under this WAL".) Durable
  // boundaries are record-aligned, so any boundary past `lsn` covers the
  // whole record starting there.
  if (lsn == 0 || lsn < durable_lsn()) return;
  SyncThrough(lsn + 1);
}

uint64_t Wal::RewriteWithCheckpoint(const std::string& snapshot_payload) {
  std::unique_lock<std::mutex> lock(mu_);
  DS_WAL_CHECK(!crashed_, "checkpointing a crashed WAL");
  // A group-commit leader may be mid-fsync on the current file descriptor;
  // wait it out before closing the handle under it.
  WaitForSyncIdle(lock);
  // Anything still buffered describes state the snapshot already includes,
  // but the old log must stay self-consistent in case the rename never
  // happens — drain it so the swap-loser is a complete log, not a torn one.
  Drain();
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }

  uint64_t snapshot_lsn = next_lsn_.load(std::memory_order_relaxed);
  std::string out;
  BuildFileHeader(snapshot_lsn, &out);
  FrameRecord(snapshot_lsn, WalRecordType::kCheckpoint, snapshot_payload,
              &out);
  uint64_t end_lsn = snapshot_lsn + (out.size() - kFileHeaderBytes);
  FrameRecord(end_lsn, WalRecordType::kCheckpointEnd, std::string(), &out);

  std::string tmp = path_ + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  DS_WAL_CHECK(f != nullptr, "cannot create WAL checkpoint temp file");
  DS_WAL_CHECK(std::fwrite(out.data(), 1, out.size(), f) == out.size(),
               "short WAL checkpoint write");
  DS_WAL_CHECK(std::fflush(f) == 0 && ::fsync(::fileno(f)) == 0,
               "WAL checkpoint fsync");
  std::fclose(f);
  // The atomic swap: readers/recovery see either the old complete log or
  // the new one, never a mixture.
  DS_WAL_CHECK(std::rename(tmp.c_str(), path_.c_str()) == 0,
               "WAL checkpoint rename");
  FsyncDirOf(path_);

  base_lsn_ = snapshot_lsn;
  checkpoint_lsn_.store(snapshot_lsn, std::memory_order_release);
  uint64_t new_end = snapshot_lsn + (out.size() - kFileHeaderBytes);
  next_lsn_.store(new_end, std::memory_order_release);
  durable_lsn_.store(new_end, std::memory_order_release);
  redo_start_lsn_.store(new_end, std::memory_order_release);
  records_appended_.fetch_add(2, std::memory_order_relaxed);
  bytes_appended_.fetch_add(out.size() - kFileHeaderBytes,
                            std::memory_order_relaxed);
  syncs_.fetch_add(1, std::memory_order_relaxed);
  return snapshot_lsn;
}

void Wal::CrashForTesting(bool keep_os_buffered) {
  std::unique_lock<std::mutex> lock(mu_);
  WaitForSyncIdle(lock);
  if (keep_os_buffered) {
    Drain();
  } else {
    pending_.clear();  // the unsynced tail dies with the "process"
  }
  if (file_ != nullptr) {
    // Close the descriptor without flushing stdio state we did not already
    // drain (Drain always fflushes, so there is nothing stdio-buffered).
    std::fclose(file_);
    file_ = nullptr;
  }
  crashed_ = true;
}

}  // namespace storage
}  // namespace dataspread
