#include "storage/file_lock.h"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace dataspread {
namespace storage {

FileLock::FileLock(FileLock&& other) noexcept
    : fd_(other.fd_), path_(std::move(other.path_)) {
  other.fd_ = -1;
  other.path_.clear();
}

FileLock& FileLock::operator=(FileLock&& other) noexcept {
  if (this != &other) {
    Release();
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    other.fd_ = -1;
    other.path_.clear();
  }
  return *this;
}

Status FileLock::Acquire(const std::string& path) {
  Release();
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::Internal("cannot open lock file " + path + ": " +
                            std::strerror(errno));
  }
  if (::flock(fd, LOCK_EX | LOCK_NB) != 0) {
    int err = errno;
    ::close(fd);
    if (err == EWOULDBLOCK) {
      return Status::AlreadyExists(
          "database is already open (lock held on " + path + ")");
    }
    return Status::Internal("cannot lock " + path + ": " +
                            std::strerror(err));
  }
  fd_ = fd;
  path_ = path;
  return Status::OK();
}

void FileLock::Release() {
  if (fd_ < 0) return;
  // close() drops the flock with it; the lock file itself is left behind on
  // purpose (unlinking it races a concurrent Acquire on the old inode).
  ::close(fd_);
  fd_ = -1;
  path_.clear();
}

}  // namespace storage
}  // namespace dataspread
