#include "storage/row_store.h"

#include "storage/page_cursor.h"

namespace dataspread {

namespace {
Status CheckStorable(const Value& v) {
  if (v.is_error()) {
    return Status::TypeError("error value " + v.error_code() +
                             " cannot enter relational storage");
  }
  return Status::OK();
}
}  // namespace

RowStore::RowStore(size_t num_columns, storage::Pager* pager,
                   const storage::PagerConfig& config)
    : TableStorage(pager, config), num_columns_(num_columns) {
  file_ = pager_->CreateFile();
}

RowStore::RowStore(storage::Pager* pager, storage::FileId file,
                   size_t num_columns, size_t num_rows)
    : TableStorage(pager, {}),
      num_columns_(num_columns),
      num_rows_(num_rows),
      file_(file) {
  set_retain_files(true);
}

RowStore::~RowStore() {
  if (!retain_files()) pager_->DropFile(file_);
}

Result<std::unique_ptr<RowStore>> RowStore::Attach(
    const StorageManifest& manifest, uint64_t num_rows,
    storage::Pager* pager) {
  if (manifest.files.size() != 1 || !pager->HasFile(manifest.files[0])) {
    return Status::Internal("row-store manifest does not name one live heap");
  }
  storage::FileId heap = manifest.files[0];
  uint64_t want = num_rows * manifest.num_columns;
  if (pager->FileSize(heap) < want) {
    return Status::Internal("recovered row heap is shorter than the catalog's "
                            "row count — durability hole");
  }
  // Excess slots are the remnant of a statement in flight at the crash
  // (never acknowledged by the order file): trim them away.
  if (pager->FileSize(heap) > want) pager->Truncate(heap, want);
  return std::unique_ptr<RowStore>(new RowStore(
      pager, heap, manifest.num_columns, static_cast<size_t>(num_rows)));
}

StorageManifest RowStore::Manifest() const {
  StorageManifest m;
  m.model = StorageModel::kRow;
  m.num_columns = static_cast<uint32_t>(num_columns_);
  m.files.push_back(file_);
  return m;
}

Result<Value> RowStore::Get(size_t row, size_t col) const {
  DS_RETURN_IF_ERROR(CheckCell(row, col));
  return pager_->Read(file_, Entry(row, col));
}

Status RowStore::Set(size_t row, size_t col, Value v) {
  DS_RETURN_IF_ERROR(CheckCell(row, col));
  DS_RETURN_IF_ERROR(CheckStorable(v));
  pager_->Write(file_, Entry(row, col), std::move(v));
  return Status::OK();
}

Result<Row> RowStore::GetRow(size_t row) const {
  if (row >= num_rows_) {
    return Status::OutOfRange("row " + std::to_string(row));
  }
  // A whole tuple is contiguous: one bulk read spanning at most two pages.
  Row out;
  pager_->ReadRange(file_, Entry(row, 0), num_columns_, &out);
  return out;
}

Status RowStore::GetRows(size_t start, size_t count,
                         std::vector<Row>* out) const {
  if (count == 0) return Status::OK();
  DS_RETURN_IF_ERROR(CheckRowRange(start, count));
  out->reserve(out->size() + count);
  // One cursor streams the contiguous tuple region: each data page is pinned
  // once for its 256/num_columns tuples instead of a chain lookup per cell.
  storage::PageCursor cursor(*pager_, file_);
  for (size_t r = start; r < start + count; ++r) {
    Row row;
    cursor.ReadRange(Entry(r, 0), num_columns_, &row);
    out->push_back(std::move(row));
  }
  return Status::OK();
}

Status RowStore::VisitRows(size_t start, size_t count,
                           const RowVisitor& visit) const {
  if (count == 0) return Status::OK();
  DS_RETURN_IF_ERROR(CheckRowRange(start, count));
  storage::PageCursor cursor(*pager_, file_);
  Row scratch(num_columns_);
  constexpr uint64_t kSlotsPerPage = storage::Pager::kSlotsPerPage;
  for (size_t r = start; r < start + count; ++r) {
    uint64_t first = Entry(r, 0);
    uint64_t last = first + num_columns_ - 1;
    if (first / kSlotsPerPage == last / kSlotsPerPage) {
      // The whole tuple sits on one page: hand out the pinned frame's slots
      // directly — zero copies, zero allocations.
      visit(r, cursor.ReadSpan(first, num_columns_));
    } else {
      for (size_t c = 0; c < num_columns_; ++c) {
        scratch[c] = cursor.Read(first + c);
      }
      visit(r, scratch.data());
    }
  }
  return Status::OK();
}

Result<size_t> RowStore::AppendRow(const Row& row) {
  if (row.size() != num_columns_) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " != " +
        std::to_string(num_columns_));
  }
  for (const Value& v : row) DS_RETURN_IF_ERROR(CheckStorable(v));
  size_t slot = num_rows_;
  // The tuple is contiguous: one batched write, one dirty record per page.
  pager_->WriteRange(file_, Entry(slot, 0), row.data(), num_columns_);
  num_rows_ += 1;
  return slot;
}

Result<size_t> RowStore::DeleteRow(size_t row) {
  if (row >= num_rows_) {
    return Status::OutOfRange("row " + std::to_string(row));
  }
  size_t last = num_rows_ - 1;
  if (row != last) {
    if (pager_->durable()) {
      // Copy, don't take: the source row must stay intact until the
      // truncate below, so a crash-torn delete can be *redone* from the
      // still-complete last row (Table::Attach), and the file-size
      // signature "size unchanged ⇒ no swap is missing" holds.
      for (size_t c = 0; c < num_columns_; ++c) {
        pager_->Write(file_, Entry(row, c),
                      pager_->Read(file_, Entry(last, c)));
      }
    } else {
      for (size_t c = 0; c < num_columns_; ++c) {
        pager_->Write(file_, Entry(row, c),
                      pager_->Take(file_, Entry(last, c)));
      }
    }
  }
  pager_->Truncate(file_, last * num_columns_);
  num_rows_ -= 1;
  return last;
}

Status RowStore::AddColumn(const Value& default_value) {
  DS_RETURN_IF_ERROR(CheckStorable(default_value));
  size_t old_cols = num_columns_;
  size_t new_cols = old_cols + 1;
  if (pager_->durable()) {
    // Copy-on-write restride (durable DDL): the new layout is built in a
    // fresh file with non-destructive reads, the old heap stays intact
    // until the catalog's DDL record commits, and a crash-reopen binds one
    // complete layout or the other — never a half-restrided heap.
    storage::FileId fresh = pager_->CreateFile();
    {
      storage::PageCursor src(*pager_, file_);
      storage::PageCursor dst(*pager_, fresh);
      for (size_t r = 0; r < num_rows_; ++r) {
        for (size_t c = 0; c < old_cols; ++c) {
          dst.Write(r * new_cols + c, src.Read(r * old_cols + c));
        }
        dst.Write(r * new_cols + old_cols, default_value);
      }
    }
    retired_files_.push_back(file_);
    file_ = fresh;
    num_columns_ = new_cols;
    return Status::OK();
  }
  // The tuple stride grows, so every tuple is rewritten in the new layout.
  // Restriding runs highest-slot-first: each destination slot r*(n+1)+c is >=
  // its source slot r*n+c, and sources still pending are strictly below every
  // slot written so far, so the move is safe in place. Two cursors (source
  // reads, destination writes) keep the rewrite at one pin per page visited
  // per side; both may sit on the same page, which simply pins it twice.
  {
    storage::PageCursor src(*pager_, file_);
    storage::PageCursor dst(*pager_, file_);
    for (size_t r = num_rows_; r-- > 0;) {
      dst.Write(r * new_cols + old_cols, default_value);
      for (size_t c = old_cols; c-- > 0;) {
        dst.Write(r * new_cols + c, src.Take(r * old_cols + c));
      }
    }
  }
  num_columns_ = new_cols;
  return Status::OK();
}

Status RowStore::DropColumn(size_t col) {
  if (col >= num_columns_) {
    return Status::OutOfRange("column " + std::to_string(col));
  }
  size_t old_cols = num_columns_;
  size_t new_cols = old_cols - 1;
  if (pager_->durable()) {
    // Copy-on-write, as in AddColumn: crash-atomicity over in-place thrift.
    storage::FileId fresh = pager_->CreateFile();
    {
      storage::PageCursor src(*pager_, file_);
      storage::PageCursor dst(*pager_, fresh);
      uint64_t dst_slot = 0;
      for (size_t r = 0; r < num_rows_; ++r) {
        for (size_t c = 0; c < old_cols; ++c) {
          if (c == col) continue;
          dst.Write(dst_slot++, src.Read(r * old_cols + c));
        }
      }
    }
    retired_files_.push_back(file_);
    file_ = fresh;
    num_columns_ = new_cols;
    return Status::OK();
  }
  // Compact forward in place: destinations never pass their sources. The
  // cursors are released (scope exit) before Truncate frees tail pages.
  {
    storage::PageCursor src(*pager_, file_);
    storage::PageCursor dst(*pager_, file_);
    uint64_t dst_slot = 0;
    for (size_t r = 0; r < num_rows_; ++r) {
      for (size_t c = 0; c < old_cols; ++c) {
        if (c == col) continue;
        dst.Write(dst_slot++, src.Take(r * old_cols + c));
      }
    }
  }
  pager_->Truncate(file_, num_rows_ * new_cols);
  num_columns_ = new_cols;
  return Status::OK();
}

}  // namespace dataspread
