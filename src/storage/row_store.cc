#include "storage/row_store.h"

namespace dataspread {

namespace {
Status CheckStorable(const Value& v) {
  if (v.is_error()) {
    return Status::TypeError("error value " + v.error_code() +
                             " cannot enter relational storage");
  }
  return Status::OK();
}
}  // namespace

RowStore::RowStore(size_t num_columns, PageAccountant* accountant)
    : TableStorage(accountant), num_columns_(num_columns) {
  file_ = accountant_->NewFile();
}

Result<Value> RowStore::Get(size_t row, size_t col) const {
  DS_RETURN_IF_ERROR(CheckCell(row, col));
  accountant_->Touch(file_, Entry(row, col));
  return rows_[row][col];
}

Status RowStore::Set(size_t row, size_t col, Value v) {
  DS_RETURN_IF_ERROR(CheckCell(row, col));
  DS_RETURN_IF_ERROR(CheckStorable(v));
  accountant_->Dirty(file_, Entry(row, col));
  rows_[row][col] = std::move(v);
  return Status::OK();
}

Result<Row> RowStore::GetRow(size_t row) const {
  if (row >= rows_.size()) {
    return Status::OutOfRange("row " + std::to_string(row));
  }
  // A whole tuple is contiguous: touch its first and last slot's pages.
  if (num_columns_ > 0) {
    accountant_->Touch(file_, Entry(row, 0));
    accountant_->Touch(file_, Entry(row, num_columns_ - 1));
  }
  return rows_[row];
}

Result<size_t> RowStore::AppendRow(const Row& row) {
  if (row.size() != num_columns_) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " != " +
        std::to_string(num_columns_));
  }
  for (const Value& v : row) DS_RETURN_IF_ERROR(CheckStorable(v));
  size_t slot = rows_.size();
  rows_.push_back(row);
  for (size_t c = 0; c < num_columns_; ++c) accountant_->Dirty(file_, Entry(slot, c));
  return slot;
}

Result<size_t> RowStore::DeleteRow(size_t row) {
  if (row >= rows_.size()) {
    return Status::OutOfRange("row " + std::to_string(row));
  }
  size_t last = rows_.size() - 1;
  if (row != last) {
    rows_[row] = std::move(rows_[last]);
    for (size_t c = 0; c < num_columns_; ++c) {
      accountant_->Dirty(file_, Entry(row, c));
    }
  }
  for (size_t c = 0; c < num_columns_; ++c) accountant_->Dirty(file_, Entry(last, c));
  rows_.pop_back();
  return last;
}

Status RowStore::AddColumn(const Value& default_value) {
  DS_RETURN_IF_ERROR(CheckStorable(default_value));
  // The tuple stride grows, so every tuple is rewritten in the new layout.
  num_columns_ += 1;
  for (size_t r = 0; r < rows_.size(); ++r) {
    rows_[r].push_back(default_value);
    for (size_t c = 0; c < num_columns_; ++c) accountant_->Dirty(file_, Entry(r, c));
  }
  return Status::OK();
}

Status RowStore::DropColumn(size_t col) {
  if (col >= num_columns_) {
    return Status::OutOfRange("column " + std::to_string(col));
  }
  num_columns_ -= 1;
  for (size_t r = 0; r < rows_.size(); ++r) {
    rows_[r].erase(rows_[r].begin() + static_cast<ptrdiff_t>(col));
    for (size_t c = 0; c < num_columns_; ++c) accountant_->Dirty(file_, Entry(r, c));
  }
  return Status::OK();
}

}  // namespace dataspread
