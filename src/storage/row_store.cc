#include "storage/row_store.h"

namespace dataspread {

namespace {
Status CheckStorable(const Value& v) {
  if (v.is_error()) {
    return Status::TypeError("error value " + v.error_code() +
                             " cannot enter relational storage");
  }
  return Status::OK();
}
}  // namespace

RowStore::RowStore(size_t num_columns, storage::Pager* pager,
                   const storage::PagerConfig& config)
    : TableStorage(pager, config), num_columns_(num_columns) {
  file_ = pager_->CreateFile();
}

RowStore::~RowStore() { pager_->DropFile(file_); }

Result<Value> RowStore::Get(size_t row, size_t col) const {
  DS_RETURN_IF_ERROR(CheckCell(row, col));
  return pager_->Read(file_, Entry(row, col));
}

Status RowStore::Set(size_t row, size_t col, Value v) {
  DS_RETURN_IF_ERROR(CheckCell(row, col));
  DS_RETURN_IF_ERROR(CheckStorable(v));
  pager_->Write(file_, Entry(row, col), std::move(v));
  return Status::OK();
}

Result<Row> RowStore::GetRow(size_t row) const {
  if (row >= num_rows_) {
    return Status::OutOfRange("row " + std::to_string(row));
  }
  // A whole tuple is contiguous: one bulk read spanning at most two pages.
  Row out;
  pager_->ReadRange(file_, Entry(row, 0), num_columns_, &out);
  return out;
}

Result<size_t> RowStore::AppendRow(const Row& row) {
  if (row.size() != num_columns_) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " != " +
        std::to_string(num_columns_));
  }
  for (const Value& v : row) DS_RETURN_IF_ERROR(CheckStorable(v));
  size_t slot = num_rows_;
  for (size_t c = 0; c < num_columns_; ++c) {
    pager_->Write(file_, Entry(slot, c), row[c]);
  }
  num_rows_ += 1;
  return slot;
}

Result<size_t> RowStore::DeleteRow(size_t row) {
  if (row >= num_rows_) {
    return Status::OutOfRange("row " + std::to_string(row));
  }
  size_t last = num_rows_ - 1;
  if (row != last) {
    for (size_t c = 0; c < num_columns_; ++c) {
      pager_->Write(file_, Entry(row, c), pager_->Take(file_, Entry(last, c)));
    }
  }
  pager_->Truncate(file_, last * num_columns_);
  num_rows_ -= 1;
  return last;
}

Status RowStore::AddColumn(const Value& default_value) {
  DS_RETURN_IF_ERROR(CheckStorable(default_value));
  // The tuple stride grows, so every tuple is rewritten in the new layout.
  // Restriding runs highest-slot-first: each destination slot r*(n+1)+c is >=
  // its source slot r*n+c, and sources still pending are strictly below every
  // slot written so far, so the move is safe in place.
  size_t old_cols = num_columns_;
  size_t new_cols = old_cols + 1;
  for (size_t r = num_rows_; r-- > 0;) {
    pager_->Write(file_, r * new_cols + old_cols, default_value);
    for (size_t c = old_cols; c-- > 0;) {
      pager_->Write(file_, r * new_cols + c,
                    pager_->Take(file_, r * old_cols + c));
    }
  }
  num_columns_ = new_cols;
  return Status::OK();
}

Status RowStore::DropColumn(size_t col) {
  if (col >= num_columns_) {
    return Status::OutOfRange("column " + std::to_string(col));
  }
  // Compact forward in place: destinations never pass their sources.
  size_t old_cols = num_columns_;
  size_t new_cols = old_cols - 1;
  uint64_t dst = 0;
  for (size_t r = 0; r < num_rows_; ++r) {
    for (size_t c = 0; c < old_cols; ++c) {
      if (c == col) continue;
      pager_->Write(file_, dst++, pager_->Take(file_, r * old_cols + c));
    }
  }
  pager_->Truncate(file_, num_rows_ * new_cols);
  num_columns_ = new_cols;
  return Status::OK();
}

}  // namespace dataspread
