#ifndef DATASPREAD_STORAGE_WAL_H_
#define DATASPREAD_STORAGE_WAL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <mutex>
#include <string>

namespace dataspread {
namespace storage {

/// WAL record types. The numeric values are part of the on-disk format.
enum class WalRecordType : uint8_t {
  /// Snapshot of the pager's durable metadata (file chains, spill directory,
  /// next file id). Always — and only — the first record of a WAL file;
  /// written by the atomic checkpoint rewrite. Replay starts from it.
  kCheckpoint = 1,
  /// Physical redo of a slot-range mutation: {file, page, first_slot, count,
  /// post-op file size, encoded values}. A record whose range covers the
  /// whole page is a *full-page image* (FPI) — the first mutation of any
  /// page after a checkpoint is logged as one, so recovery never depends on
  /// a spill-file base that a post-checkpoint write-back may have torn.
  kUpdate = 2,
  /// Chain capacity growth without a size change (e.g. Pin past the end).
  kGrow = 3,
  /// File truncation to a slot count (boundary-page clearing replays
  /// through Pager::Truncate itself).
  kTruncate = 4,
  kCreateFile = 5,
  kDropFile = 6,
  /// Fuzzy-checkpoint begin: carries the dirty-page table (list of
  /// (file, page) dirty when the checkpoint started). Informational under
  /// replay-everything redo — it documents the checkpoint protocol and lets
  /// offline tooling reason about a crash mid-checkpoint.
  kCheckpointBegin = 7,
  /// Fuzzy-checkpoint end; follows the kCheckpoint snapshot in the rewritten
  /// log, closing the begin/end bracket.
  kCheckpointEnd = 8,

  // ---- Catalog DDL records (opaque to the Pager) ---------------------------
  //
  // The catalog layer logs schema changes through Pager::LogCatalogRecord
  // with these types. Their payloads are serialized TableDescriptors
  // (catalog/catalog_codec.h) that the pager neither parses nor applies: on
  // replay they are collected in order and handed to the catalog layer after
  // page redo completes (Pager::recovered_catalog_ddl). Every one of them is
  // a commit point — LogCatalogRecord fsyncs, so an acknowledged DDL
  // statement survives any crash. DESIGN.md §6 "Catalog recovery".

  /// Full descriptor of a newly created table.
  kCreateTable = 9,
  /// Name (string payload) of a dropped table. The table's page files are
  /// dropped through ordinary kDropFile records by the storage layer.
  kDropTable = 10,
  /// Full post-change descriptor of a table that gained a column.
  kAddColumn = 11,
  /// Full post-change descriptor of a table that lost a column.
  kDropColumn = 12,
  /// Full post-change descriptor after a column rename.
  kRenameColumn = 13,
  /// Full post-change descriptor after HybridStore attribute groups were
  /// merged (the group→file bindings changed wholesale).
  kReorganize = 14,

  // ---- Statement transaction brackets (DESIGN.md §6c, §7) -------------------
  //
  // The pager wraps every logged statement/transaction in a begin/commit
  // bracket (Pager::BeginStatement/EndStatement, BeginTxn/CommitTxn).
  // Several brackets may be open at once (one per concurrent transaction),
  // so each marker carries the owning transaction id (u64 payload) and every
  // record logged inside a bracket is wrapped in a kTxnData envelope tagged
  // with that id. Recovery buffers each bracket's records independently and
  // applies a bracket only when its closing record is reached: a log that
  // ends inside a bracket replays to the state *before* that transaction.
  // Legacy logs (pre-multi-writer) used empty-payload markers with untagged
  // records between them; recovery still accepts that single-bracket form.
  // Records outside any bracket (checkpoints, DDL, pre-PR-7 logs) replay
  // immediately, so old logs stay readable.

  /// Opens a statement/transaction bracket. Payload: owning txn id (u64);
  /// empty in legacy single-bracket logs. Appended lazily before the first
  /// record a bracketed statement logs.
  kTxnBegin = 15,
  /// Closes a bracket: the transaction committed; replay applies its
  /// records. Payload: txn id (u64), or empty (legacy).
  kTxnCommit = 16,
  /// Closes a bracket after a rollback. The bracket contains the
  /// transaction's mutations *and* their logged compensations, so replay
  /// applies it like a commit (net no-op) — and a bracket torn before this
  /// record is discarded, which reaches the same state. Payload: txn id
  /// (u64), or empty (legacy).
  kTxnAbort = 17,
  /// One record logged inside a bracket. Payload: owning txn id (u64) +
  /// inner record type (u8) + the inner record's payload. The envelope lets
  /// records of concurrently open brackets interleave in one log while
  /// recovery routes each to its own bracket buffer.
  kTxnData = 18,
};

/// True for the record types the pager treats as opaque catalog DDL.
inline bool IsCatalogRecordType(WalRecordType t) {
  return t >= WalRecordType::kCreateTable && t <= WalRecordType::kReorganize;
}

/// The redo-only write-ahead log of a durable Pager (ARIES-lite; see
/// DESIGN.md §6 "Durability & recovery").
///
/// This class owns the *file format and framing* only — what the records
/// mean is the Pager's business. On disk:
///
///   file   := header record*
///   header := magic:u64 ("DSWAL001") base_lsn:u64 crc:u32(base_lsn)
///   record := body_len:u32 crc:u32(lsn||body) lsn:u64 body
///   body   := type:u8 payload
///
/// LSNs are logical stream positions: they start at 0 at the first
/// checkpoint ever and keep growing monotonically across checkpoint rewrites
/// (the header's base_lsn anchors the file's first record), so a page's
/// `page_lsn` can always be compared with `durable_lsn()` no matter how many
/// times the log has been truncated. A record's LSN equals base_lsn plus its
/// byte offset past the header — stored explicitly, validated on scan, and
/// covered by the record CRC.
///
/// Append path: records accumulate in a process-level buffer, drain to the
/// OS in record-aligned chunks, and become durable only at Sync() (fsync).
/// `EnsureDurable(lsn)` is the WAL rule's hook: the pager calls it before
/// any page write-back, so the spill file never holds the effects of a
/// record that could still be lost (flushed-LSN >= page_lsn).
///
/// Checkpoint rewrite: `RewriteWithCheckpoint()` builds a brand-new log —
/// header, kCheckpoint snapshot, kCheckpointEnd — in a temp file, fsyncs it,
/// and renames it over the old log (then fsyncs the directory). The swap is
/// atomic: a crash leaves either the old log (whose records replay
/// idempotently over the newer spill state, thanks to full-page images) or
/// the new one. This is also how the first log of a fresh pager is born.
///
/// Recovery scan: `Open()` reads the header, replays every record whose
/// length, LSN, and CRC check out, and stops at the first torn or corrupt
/// record — the tail is physically truncated away and appending resumes at
/// the valid end.
///
/// Threading: Append/Sync/SyncThrough/EnsureDurable are safe to call from
/// any thread. Sync is *group commit*: concurrent committers park on a
/// condition variable while one leader drains the buffer and fsyncs once
/// for the whole group — the fsync runs outside the mutex, so appends (and
/// later committers) proceed while the leader's barrier is in flight.
/// Open() and RewriteWithCheckpoint() still assume a single caller (the
/// pager runs them under its structural latch); RewriteWithCheckpoint
/// waits out any in-flight leader fsync before swapping files.
class Wal {
 public:
  /// One decoded log record as handed to Open()'s replay callback. `lsn` is
  /// the record's logical stream position (monotone across checkpoint
  /// rewrites); `payload` starts *after* the type byte.
  struct Record {
    uint64_t lsn = 0;
    WalRecordType type = WalRecordType::kCheckpoint;
    std::string payload;
  };

  /// On-disk framing sizes: magic + base_lsn + header CRC, and per record
  /// body_len + record CRC + lsn. Part of the file format.
  static constexpr size_t kFileHeaderBytes = 8 + 8 + 4;
  static constexpr size_t kRecordHeaderBytes = 4 + 4 + 8;

  /// Binds to `path` without touching the file; call Open() to read an
  /// existing log (or RewriteWithCheckpoint() to create one).
  explicit Wal(std::string path);
  /// Closes the append handle. Buffered-but-undrained records are lost —
  /// exactly what durability promises: only Sync()'d state survives.
  ~Wal();
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Opens an existing log and replays it: `replay` is called for every
  /// intact record in order (the first is always the kCheckpoint snapshot).
  /// The torn/corrupt tail, if any, is truncated off and append state is
  /// positioned at the valid end. Returns false when no log exists yet (the
  /// caller then writes the first checkpoint via RewriteWithCheckpoint).
  /// Aborts on a log whose header is unreadable — that is corruption of
  /// state we cannot silently discard, not a torn tail.
  bool Open(const std::function<void(const Record&)>& replay);

  /// Appends one record; returns its LSN. The record is buffered — call
  /// Sync() (or let EnsureDurable do it) to make it crash-proof.
  uint64_t Append(WalRecordType type, const std::string& payload);

  /// Drains the buffer and fsyncs: everything appended so far is durable.
  void Sync();
  /// Group-commit barrier: returns once `durable_lsn() >= lsn` (an *end*
  /// boundary — pass next_lsn() as of the last record to cover). If a
  /// leader's fsync is already in flight, parks on the condition variable
  /// and re-checks on wake; otherwise becomes the leader, drains everything
  /// appended so far, and fsyncs once for every parked committer.
  void SyncThrough(uint64_t lsn);
  /// The WAL rule choke point: no-op when `lsn` is already durable,
  /// otherwise Sync(). Called by the pager before every page write-back.
  void EnsureDurable(uint64_t lsn);

  /// Atomically replaces the log with header + kCheckpoint(snapshot) +
  /// kCheckpointEnd, all fsynced. Returns the LSN of the snapshot record;
  /// every LSN at or below it is durable afterwards.
  uint64_t RewriteWithCheckpoint(const std::string& snapshot_payload);

  /// Next LSN to be assigned (== logical end of the stream).
  uint64_t next_lsn() const { return next_lsn_.load(std::memory_order_acquire); }
  /// Highest LSN guaranteed on stable storage (fsynced).
  uint64_t durable_lsn() const {
    return durable_lsn_.load(std::memory_order_acquire);
  }
  /// LSN of the current checkpoint snapshot record (start of the live log).
  uint64_t checkpoint_lsn() const {
    return checkpoint_lsn_.load(std::memory_order_acquire);
  }
  /// Bytes of redo currently in the log past the checkpoint snapshot and
  /// its end bracket — the quantity auto-checkpointing triggers on, and the
  /// bound on replay work. Excludes the snapshot records themselves: a
  /// snapshot that outgrows the auto-checkpoint threshold must not make
  /// every subsequent append re-checkpoint (checkpoint storm).
  uint64_t bytes_since_checkpoint() const {
    return next_lsn() - redo_start_lsn_.load(std::memory_order_acquire);
  }

  const std::string& path() const { return path_; }
  uint64_t records_appended() const {
    return records_appended_.load(std::memory_order_relaxed);
  }
  uint64_t bytes_appended() const {
    return bytes_appended_.load(std::memory_order_relaxed);
  }
  uint64_t syncs() const { return syncs_.load(std::memory_order_relaxed); }

  /// Crash simulation: throws away the not-yet-drained buffer tail and
  /// closes the file handle without flushing anything further — exactly
  /// what dies with a SIGKILL'd process. The Wal is unusable afterwards.
  /// `keep_os_buffered` drains (but does not fsync) first, modeling a kill
  /// where the OS survives and the page cache reaches disk.
  void CrashForTesting(bool keep_os_buffered);

 private:
  std::FILE* EnsureAppendHandle();
  /// fwrite+fflush the pending buffer (record-aligned) without fsync.
  /// Caller holds mu_.
  void Drain();
  /// Blocks until no leader fsync is in flight. Caller holds `lock`.
  void WaitForSyncIdle(std::unique_lock<std::mutex>& lock);
  static void FsyncDirOf(const std::string& path);

  std::string path_;
  std::FILE* file_ = nullptr;  // append handle ("ab"); null until first use
  std::string pending_;        // whole records not yet handed to the OS
  uint64_t base_lsn_ = 0;      // LSN of the first record in the file

  /// Guards file_/pending_/crashed_ and writes to the LSN counters. The
  /// counters themselves are atomics so hot accessors (durable_lsn, the
  /// pager's deferred-free drain) read them without taking the mutex.
  std::mutex mu_;
  /// Group commit: followers park here while `sync_active_` (one leader's
  /// fsync runs outside mu_); the leader broadcasts on completion.
  std::condition_variable cv_;
  bool sync_active_ = false;

  std::atomic<uint64_t> next_lsn_{0};
  std::atomic<uint64_t> durable_lsn_{0};
  std::atomic<uint64_t> checkpoint_lsn_{0};
  std::atomic<uint64_t> redo_start_lsn_{0};  // first LSN past the checkpoint
  bool crashed_ = false;

  std::atomic<uint64_t> records_appended_{0};
  std::atomic<uint64_t> bytes_appended_{0};
  std::atomic<uint64_t> syncs_{0};

  /// Pending buffer drains to the OS past this size even without a Sync —
  /// keeps memory bounded while preserving record alignment of file writes.
  static constexpr size_t kDrainThresholdBytes = 1u << 20;
};

}  // namespace storage
}  // namespace dataspread

#endif  // DATASPREAD_STORAGE_WAL_H_
