#include "storage/hybrid_store.h"

#include <utility>

namespace dataspread {

namespace {
Status CheckStorable(const Value& v) {
  if (v.is_error()) {
    return Status::TypeError("error value " + v.error_code() +
                             " cannot enter relational storage");
  }
  return Status::OK();
}
}  // namespace

HybridStore::HybridStore(size_t num_columns, PageAccountant* accountant)
    : TableStorage(accountant) {
  if (num_columns > 0) {
    Group g;
    g.width = num_columns;
    g.file = accountant_->NewFile();
    groups_.push_back(std::move(g));
    col_map_.reserve(num_columns);
    for (size_t i = 0; i < num_columns; ++i) {
      col_map_.push_back(ColumnLoc{0, i});
    }
  }
}

Result<Value> HybridStore::Get(size_t row, size_t col) const {
  DS_RETURN_IF_ERROR(CheckCell(row, col));
  const ColumnLoc& loc = col_map_[col];
  const Group& g = groups_[loc.group];
  accountant_->Touch(g.file, Entry(g, row, loc.offset));
  return g.values[row * g.width + loc.offset];
}

Status HybridStore::Set(size_t row, size_t col, Value v) {
  DS_RETURN_IF_ERROR(CheckCell(row, col));
  DS_RETURN_IF_ERROR(CheckStorable(v));
  const ColumnLoc& loc = col_map_[col];
  Group& g = groups_[loc.group];
  accountant_->Dirty(g.file, Entry(g, row, loc.offset));
  g.values[row * g.width + loc.offset] = std::move(v);
  return Status::OK();
}

Result<Row> HybridStore::GetRow(size_t row) const {
  if (row >= num_rows_) return Status::OutOfRange("row " + std::to_string(row));
  Row out;
  out.reserve(col_map_.size());
  for (const ColumnLoc& loc : col_map_) {
    const Group& g = groups_[loc.group];
    accountant_->Touch(g.file, Entry(g, row, loc.offset));
    out.push_back(g.values[row * g.width + loc.offset]);
  }
  return out;
}

Result<size_t> HybridStore::AppendRow(const Row& row) {
  if (row.size() != col_map_.size()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " != " +
        std::to_string(col_map_.size()));
  }
  for (const Value& v : row) DS_RETURN_IF_ERROR(CheckStorable(v));
  size_t slot = num_rows_;
  // Grow each group by one row, then scatter the tuple through col_map_.
  for (Group& g : groups_) {
    g.values.resize(g.values.size() + g.width);
    for (size_t o = 0; o < g.width; ++o) {
      accountant_->Dirty(g.file, Entry(g, slot, o));
    }
  }
  for (size_t c = 0; c < row.size(); ++c) {
    const ColumnLoc& loc = col_map_[c];
    Group& g = groups_[loc.group];
    g.values[slot * g.width + loc.offset] = row[c];
  }
  num_rows_ += 1;
  return slot;
}

Result<size_t> HybridStore::DeleteRow(size_t row) {
  if (row >= num_rows_) return Status::OutOfRange("row " + std::to_string(row));
  size_t last = num_rows_ - 1;
  for (Group& g : groups_) {
    if (row != last) {
      for (size_t o = 0; o < g.width; ++o) {
        g.values[row * g.width + o] = std::move(g.values[last * g.width + o]);
        accountant_->Dirty(g.file, Entry(g, row, o));
      }
    }
    for (size_t o = 0; o < g.width; ++o) {
      accountant_->Dirty(g.file, Entry(g, last, o));
    }
    g.values.resize(g.values.size() - g.width);
  }
  num_rows_ -= 1;
  return last;
}

Status HybridStore::AddColumn(const Value& default_value) {
  DS_RETURN_IF_ERROR(CheckStorable(default_value));
  // Fresh single-attribute group: the schema change writes only this group's
  // pages; every pre-existing page is left untouched.
  Group g;
  g.width = 1;
  g.file = accountant_->NewFile();
  g.values.assign(num_rows_, default_value);
  for (size_t r = 0; r < num_rows_; ++r) accountant_->Dirty(g.file, r);
  groups_.push_back(std::move(g));
  col_map_.push_back(ColumnLoc{groups_.size() - 1, 0});
  return Status::OK();
}

void HybridStore::CompactGroupWithoutOffset(size_t group_index, size_t offset) {
  Group& g = groups_[group_index];
  size_t new_width = g.width - 1;
  std::vector<Value> compacted;
  compacted.reserve(num_rows_ * new_width);
  for (size_t r = 0; r < num_rows_; ++r) {
    for (size_t o = 0; o < g.width; ++o) {
      if (o == offset) continue;
      compacted.push_back(std::move(g.values[r * g.width + o]));
    }
    for (size_t o = 0; o < new_width; ++o) {
      accountant_->Dirty(g.file, r * new_width + o);
    }
  }
  g.values = std::move(compacted);
  g.width = new_width;
}

Status HybridStore::DropColumn(size_t col) {
  if (col >= col_map_.size()) {
    return Status::OutOfRange("column " + std::to_string(col));
  }
  ColumnLoc loc = col_map_[col];
  Group& g = groups_[loc.group];
  if (g.width == 1) {
    // The whole group disappears: pure metadata operation, zero page writes.
    groups_.erase(groups_.begin() + static_cast<ptrdiff_t>(loc.group));
    for (ColumnLoc& l : col_map_) {
      if (l.group > loc.group) l.group -= 1;
    }
  } else {
    // Rewrite only this group's pages; all other groups untouched.
    CompactGroupWithoutOffset(loc.group, loc.offset);
    for (ColumnLoc& l : col_map_) {
      if (l.group == loc.group && l.offset > loc.offset) l.offset -= 1;
    }
  }
  col_map_.erase(col_map_.begin() + static_cast<ptrdiff_t>(col));
  return Status::OK();
}

Status HybridStore::Reorganize() {
  if (groups_.size() <= 1) return Status::OK();
  Group merged;
  merged.width = col_map_.size();
  merged.file = accountant_->NewFile();
  merged.values.reserve(num_rows_ * merged.width);
  for (size_t r = 0; r < num_rows_; ++r) {
    for (const ColumnLoc& loc : col_map_) {
      Group& g = groups_[loc.group];
      accountant_->Touch(g.file, Entry(g, r, loc.offset));
      merged.values.push_back(std::move(g.values[r * g.width + loc.offset]));
    }
    for (size_t o = 0; o < merged.width; ++o) {
      accountant_->Dirty(merged.file, r * merged.width + o);
    }
  }
  groups_.clear();
  groups_.push_back(std::move(merged));
  for (size_t c = 0; c < col_map_.size(); ++c) {
    col_map_[c] = ColumnLoc{0, c};
  }
  return Status::OK();
}

}  // namespace dataspread
