#include "storage/hybrid_store.h"

#include <utility>

#include "storage/page_cursor.h"

namespace dataspread {

namespace {
Status CheckStorable(const Value& v) {
  if (v.is_error()) {
    return Status::TypeError("error value " + v.error_code() +
                             " cannot enter relational storage");
  }
  return Status::OK();
}
}  // namespace

HybridStore::HybridStore(size_t num_columns, storage::Pager* pager,
                   const storage::PagerConfig& config)
    : TableStorage(pager, config) {
  if (num_columns > 0) {
    Group g;
    g.width = num_columns;
    g.file = pager_->CreateFile();
    groups_.push_back(g);
    col_map_.reserve(num_columns);
    for (size_t i = 0; i < num_columns; ++i) {
      col_map_.push_back(ColumnLoc{0, i});
    }
  }
}

HybridStore::HybridStore(storage::Pager* pager, size_t num_rows)
    : TableStorage(pager, {}), num_rows_(num_rows) {
  set_retain_files(true);
}

HybridStore::~HybridStore() {
  if (retain_files()) return;
  for (const Group& g : groups_) pager_->DropFile(g.file);
}

Result<std::unique_ptr<HybridStore>> HybridStore::Attach(
    const StorageManifest& manifest, uint64_t num_rows,
    storage::Pager* pager) {
  auto store = std::unique_ptr<HybridStore>(
      new HybridStore(pager, static_cast<size_t>(num_rows)));
  store->col_map_.resize(manifest.num_columns, ColumnLoc{~size_t{0}, 0});
  size_t mapped = 0;
  for (size_t gi = 0; gi < manifest.groups.size(); ++gi) {
    const StorageManifest::Group& mg = manifest.groups[gi];
    if (!pager->HasFile(mg.file) || mg.columns.size() != mg.width ||
        mg.width == 0) {
      return Status::Internal("hybrid manifest group is malformed or names a "
                              "dead file");
    }
    uint64_t want = num_rows * mg.width;
    if (pager->FileSize(mg.file) < want) {
      return Status::Internal("recovered attribute group is shorter than the "
                              "catalog's row count — durability hole");
    }
    if (pager->FileSize(mg.file) > want) pager->Truncate(mg.file, want);
    Group g;
    g.width = mg.width;
    g.file = mg.file;
    store->groups_.push_back(g);
    for (size_t o = 0; o < mg.columns.size(); ++o) {
      uint32_t col = mg.columns[o];
      if (col >= manifest.num_columns ||
          store->col_map_[col].group != ~size_t{0}) {
        return Status::Internal("hybrid manifest column map is not a "
                                "bijection");
      }
      store->col_map_[col] = ColumnLoc{gi, o};
      mapped += 1;
    }
  }
  if (mapped != manifest.num_columns) {
    return Status::Internal("hybrid manifest leaves columns unmapped");
  }
  return store;
}

StorageManifest HybridStore::Manifest() const {
  StorageManifest m;
  m.model = StorageModel::kHybrid;
  m.num_columns = static_cast<uint32_t>(col_map_.size());
  m.groups.resize(groups_.size());
  for (size_t gi = 0; gi < groups_.size(); ++gi) {
    m.groups[gi].file = groups_[gi].file;
    m.groups[gi].width = static_cast<uint32_t>(groups_[gi].width);
    m.groups[gi].columns.resize(groups_[gi].width, 0);
  }
  for (size_t c = 0; c < col_map_.size(); ++c) {
    m.groups[col_map_[c].group].columns[col_map_[c].offset] =
        static_cast<uint32_t>(c);
  }
  return m;
}

Result<Value> HybridStore::Get(size_t row, size_t col) const {
  DS_RETURN_IF_ERROR(CheckCell(row, col));
  const ColumnLoc& loc = col_map_[col];
  const Group& g = groups_[loc.group];
  return pager_->Read(g.file, Entry(g, row, loc.offset));
}

Status HybridStore::Set(size_t row, size_t col, Value v) {
  DS_RETURN_IF_ERROR(CheckCell(row, col));
  DS_RETURN_IF_ERROR(CheckStorable(v));
  const ColumnLoc& loc = col_map_[col];
  const Group& g = groups_[loc.group];
  pager_->Write(g.file, Entry(g, row, loc.offset), std::move(v));
  return Status::OK();
}

Result<Row> HybridStore::GetRow(size_t row) const {
  if (row >= num_rows_) return Status::OutOfRange("row " + std::to_string(row));
  if (groups_.size() == 1) {
    // Single group (no schema changes since creation/Reorganize): the tuple
    // is contiguous and col_map_ is the identity, so one bulk read suffices.
    Row out;
    pager_->ReadRange(groups_[0].file, row * groups_[0].width,
                      groups_[0].width, &out);
    return out;
  }
  Row out;
  out.reserve(col_map_.size());
  for (const ColumnLoc& loc : col_map_) {
    const Group& g = groups_[loc.group];
    out.push_back(pager_->Read(g.file, Entry(g, row, loc.offset)));
  }
  return out;
}

Status HybridStore::GetRows(size_t start, size_t count,
                            std::vector<Row>* out) const {
  if (count == 0) return Status::OK();
  DS_RETURN_IF_ERROR(CheckRowRange(start, count));
  out->reserve(out->size() + count);
  if (groups_.size() == 1) {
    // Single group: tuples are contiguous and col_map_ is the identity —
    // one streaming cursor over the whole region.
    storage::PageCursor cursor(*pager_, groups_[0].file);
    size_t width = groups_[0].width;
    for (size_t r = start; r < start + count; ++r) {
      Row row;
      cursor.ReadRange(r * width, width, &row);
      out->push_back(std::move(row));
    }
    return Status::OK();
  }
  // One cursor per attribute group; each streams its own file in row order.
  std::vector<storage::PageCursor> cursors;
  cursors.reserve(groups_.size());
  for (const Group& g : groups_) cursors.emplace_back(*pager_, g.file);
  for (size_t r = start; r < start + count; ++r) {
    Row row;
    row.reserve(col_map_.size());
    for (const ColumnLoc& loc : col_map_) {
      const Group& g = groups_[loc.group];
      row.push_back(cursors[loc.group].Read(Entry(g, r, loc.offset)));
    }
    out->push_back(std::move(row));
  }
  return Status::OK();
}

Status HybridStore::VisitRows(size_t start, size_t count,
                              const RowVisitor& visit) const {
  if (count == 0) return Status::OK();
  DS_RETURN_IF_ERROR(CheckRowRange(start, count));
  constexpr uint64_t kSlotsPerPage = storage::Pager::kSlotsPerPage;
  if (groups_.size() == 1) {
    // Identity layout: page-resident tuples are handed out zero-copy, just
    // like the row store.
    storage::PageCursor cursor(*pager_, groups_[0].file);
    size_t width = groups_[0].width;
    Row scratch(width);
    for (size_t r = start; r < start + count; ++r) {
      uint64_t first = r * width;
      uint64_t last = first + width - 1;
      if (first / kSlotsPerPage == last / kSlotsPerPage) {
        visit(r, cursor.ReadSpan(first, width));
      } else {
        for (size_t c = 0; c < width; ++c) scratch[c] = cursor.Read(first + c);
        visit(r, scratch.data());
      }
    }
    return Status::OK();
  }
  std::vector<storage::PageCursor> cursors;
  cursors.reserve(groups_.size());
  for (const Group& g : groups_) cursors.emplace_back(*pager_, g.file);
  Row scratch(col_map_.size());
  for (size_t r = start; r < start + count; ++r) {
    for (size_t c = 0; c < col_map_.size(); ++c) {
      const ColumnLoc& loc = col_map_[c];
      const Group& g = groups_[loc.group];
      scratch[c] = cursors[loc.group].Read(Entry(g, r, loc.offset));
    }
    visit(r, scratch.data());
  }
  return Status::OK();
}

Result<size_t> HybridStore::AppendRow(const Row& row) {
  if (row.size() != col_map_.size()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " != " +
        std::to_string(col_map_.size()));
  }
  for (const Value& v : row) DS_RETURN_IF_ERROR(CheckStorable(v));
  size_t slot = num_rows_;
  if (groups_.size() == 1) {
    // Identity layout: the whole tuple is one contiguous batched write.
    pager_->WriteRange(groups_[0].file, slot * groups_[0].width, row.data(),
                       row.size());
    num_rows_ += 1;
    return slot;
  }
  // Every (group, offset) pair is mapped by exactly one column, so scattering
  // the tuple through col_map_ grows each group by one full row.
  for (size_t c = 0; c < row.size(); ++c) {
    const ColumnLoc& loc = col_map_[c];
    const Group& g = groups_[loc.group];
    pager_->Write(g.file, Entry(g, slot, loc.offset), row[c]);
  }
  num_rows_ += 1;
  return slot;
}

Result<size_t> HybridStore::DeleteRow(size_t row) {
  if (row >= num_rows_) return Status::OutOfRange("row " + std::to_string(row));
  size_t last = num_rows_ - 1;
  if (pager_->durable()) {
    // Copy-all then truncate-all with non-destructive reads (see
    // ColumnStore::DeleteRow): keeps a crash-torn delete redoable and the
    // per-group size signature sound.
    if (row != last) {
      for (const Group& g : groups_) {
        for (size_t o = 0; o < g.width; ++o) {
          pager_->Write(g.file, Entry(g, row, o),
                        pager_->Read(g.file, Entry(g, last, o)));
        }
      }
    }
    for (const Group& g : groups_) {
      pager_->Truncate(g.file, last * g.width);
    }
    num_rows_ -= 1;
    return last;
  }
  for (const Group& g : groups_) {
    if (row != last) {
      for (size_t o = 0; o < g.width; ++o) {
        pager_->Write(g.file, Entry(g, row, o),
                      pager_->Take(g.file, Entry(g, last, o)));
      }
    }
    pager_->Truncate(g.file, last * g.width);
  }
  num_rows_ -= 1;
  return last;
}

Status HybridStore::AddColumn(const Value& default_value) {
  DS_RETURN_IF_ERROR(CheckStorable(default_value));
  // Fresh single-attribute group: the schema change writes only this group's
  // pages — ceil(num_rows / 256) of them; every pre-existing page is left
  // untouched.
  Group g;
  g.width = 1;
  g.file = pager_->CreateFile();
  storage::PageCursor(*pager_, g.file).Fill(0, num_rows_, default_value);
  groups_.push_back(g);
  col_map_.push_back(ColumnLoc{groups_.size() - 1, 0});
  return Status::OK();
}

void HybridStore::CompactGroupWithoutOffset(size_t group_index, size_t offset) {
  Group& g = groups_[group_index];
  size_t new_width = g.width - 1;
  // Forward in-place compaction: destinations never pass their sources.
  // Cursors keep the rewrite at one pin per page per side; both are released
  // (scope exit) before Truncate frees the tail.
  {
    storage::PageCursor src(*pager_, g.file);
    storage::PageCursor dst(*pager_, g.file);
    uint64_t dst_slot = 0;
    for (size_t r = 0; r < num_rows_; ++r) {
      for (size_t o = 0; o < g.width; ++o) {
        if (o == offset) continue;
        dst.Write(dst_slot++, src.Take(Entry(g, r, o)));
      }
    }
  }
  pager_->Truncate(g.file, num_rows_ * new_width);
  g.width = new_width;
}

Status HybridStore::DropColumn(size_t col) {
  if (col >= col_map_.size()) {
    return Status::OutOfRange("column " + std::to_string(col));
  }
  ColumnLoc loc = col_map_[col];
  Group& g = groups_[loc.group];
  if (g.width == 1) {
    // The whole group disappears: pure metadata operation, zero page writes.
    // Durable DDL retires the file (it must outlive the DDL record).
    if (pager_->durable()) {
      retired_files_.push_back(g.file);
    } else {
      pager_->DropFile(g.file);
    }
    groups_.erase(groups_.begin() + static_cast<ptrdiff_t>(loc.group));
    for (ColumnLoc& l : col_map_) {
      if (l.group > loc.group) l.group -= 1;
    }
  } else if (pager_->durable()) {
    // Copy-on-write group compaction: build the narrowed group in a fresh
    // file with non-destructive reads; the old group stays intact until
    // the catalog's DDL record commits. Still touches only this group.
    size_t new_width = g.width - 1;
    storage::FileId fresh = pager_->CreateFile();
    {
      storage::PageCursor src(*pager_, g.file);
      storage::PageCursor dst(*pager_, fresh);
      uint64_t dst_slot = 0;
      for (size_t r = 0; r < num_rows_; ++r) {
        for (size_t o = 0; o < g.width; ++o) {
          if (o == loc.offset) continue;
          dst.Write(dst_slot++, src.Read(Entry(g, r, o)));
        }
      }
    }
    retired_files_.push_back(g.file);
    g.file = fresh;
    g.width = new_width;
    for (ColumnLoc& l : col_map_) {
      if (l.group == loc.group && l.offset > loc.offset) l.offset -= 1;
    }
  } else {
    // Rewrite only this group's pages; all other groups untouched.
    CompactGroupWithoutOffset(loc.group, loc.offset);
    for (ColumnLoc& l : col_map_) {
      if (l.group == loc.group && l.offset > loc.offset) l.offset -= 1;
    }
  }
  col_map_.erase(col_map_.begin() + static_cast<ptrdiff_t>(col));
  return Status::OK();
}

Status HybridStore::Reorganize() {
  if (groups_.size() <= 1) return Status::OK();
  bool cow = pager_->durable();
  Group merged;
  merged.width = col_map_.size();
  merged.file = pager_->CreateFile();
  {
    // A write cursor streams the merged file; one read cursor per source
    // group moves the values out in row order. Durable DDL reads instead
    // of taking — the source groups must stay intact until the catalog's
    // kReorganize record commits the new group→file structure.
    storage::PageCursor dst(*pager_, merged.file);
    std::vector<storage::PageCursor> srcs;
    srcs.reserve(groups_.size());
    for (const Group& g : groups_) srcs.emplace_back(*pager_, g.file);
    for (size_t r = 0; r < num_rows_; ++r) {
      uint64_t dst_slot = r * merged.width;
      for (const ColumnLoc& loc : col_map_) {
        const Group& g = groups_[loc.group];
        storage::PageCursor& src = srcs[loc.group];
        uint64_t e = Entry(g, r, loc.offset);
        dst.Write(dst_slot++, cow ? Value(src.Read(e)) : src.Take(e));
      }
    }
  }
  for (const Group& g : groups_) {
    if (cow) {
      retired_files_.push_back(g.file);
    } else {
      pager_->DropFile(g.file);
    }
  }
  groups_.clear();
  groups_.push_back(merged);
  for (size_t c = 0; c < col_map_.size(); ++c) {
    col_map_[c] = ColumnLoc{0, c};
  }
  return Status::OK();
}

}  // namespace dataspread
