#ifndef DATASPREAD_STORAGE_COLUMN_STORE_H_
#define DATASPREAD_STORAGE_COLUMN_STORE_H_

#include <vector>

#include "storage/table_storage.h"

namespace dataspread {

/// COM: decomposed column store — one pager file per attribute, slot = row.
///
/// Schema changes touch only the affected attribute's file, but whole-tuple
/// reads fan out to one page per attribute. The hybrid store interpolates
/// between this and RowStore via attribute groups.
class ColumnStore : public TableStorage {
 public:
  ColumnStore(size_t num_columns, storage::Pager* pager,
           const storage::PagerConfig& config = {});
  ~ColumnStore() override;

  /// Rebinds to recovered per-column heaps (manifest.files[c] = column c);
  /// see AttachStorage for the num_rows / truncation contract.
  static Result<std::unique_ptr<ColumnStore>> Attach(
      const StorageManifest& manifest, uint64_t num_rows,
      storage::Pager* pager);

  StorageManifest Manifest() const override;

  StorageModel model() const override { return StorageModel::kColumn; }
  size_t num_rows() const override { return num_rows_; }
  size_t num_columns() const override { return files_.size(); }

  Result<Value> Get(size_t row, size_t col) const override;
  Status Set(size_t row, size_t col, Value v) override;
  Result<Row> GetRow(size_t row) const override;
  Status GetRows(size_t start, size_t count,
                 std::vector<Row>* out) const override;
  Status VisitRows(size_t start, size_t count,
                   const RowVisitor& visit) const override;
  Result<size_t> AppendRow(const Row& row) override;
  Result<size_t> DeleteRow(size_t row) override;
  Status AddColumn(const Value& default_value) override;
  Status DropColumn(size_t col) override;

 private:
  /// Attach path: adopts existing column files instead of creating them.
  ColumnStore(storage::Pager* pager, std::vector<storage::FileId> files,
              size_t num_rows);

  size_t num_rows_ = 0;
  std::vector<storage::FileId> files_;  // one page chain per attribute
};

}  // namespace dataspread

#endif  // DATASPREAD_STORAGE_COLUMN_STORE_H_
