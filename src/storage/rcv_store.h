#ifndef DATASPREAD_STORAGE_RCV_STORE_H_
#define DATASPREAD_STORAGE_RCV_STORE_H_

#include <unordered_map>
#include <vector>

#include "storage/table_storage.h"

namespace dataspread {

/// RCV: row-column-value triple store, clustered by column.
///
/// The schema-less baseline: only non-NULL cells are materialized, so it
/// excels on sparse data and NULL-default schema changes, and degrades on
/// dense scans. Each logical column owns a pager file holding its
/// materialized values as a dense heap, plus a row→slot point index;
/// columns are identified by their file, so DropColumn never renumbers
/// surviving triples. Reads of unmaterialized cells resolve entirely in the
/// in-memory index and touch no data page.
///
/// Durable pagers add one *back-pointer file* per column (slot → row as an
/// INT value, mirroring the in-memory slot_to_row vector) so the point
/// index can be rebuilt when a reopened database rebinds to the recovered
/// heaps — the only per-cell metadata any model needs beyond its data
/// pages. Scratch pagers skip it entirely (zero accounting change).
class RcvStore : public TableStorage {
 public:
  RcvStore(size_t num_columns, storage::Pager* pager,
           const storage::PagerConfig& config = {});
  ~RcvStore() override;

  /// Rebinds to recovered heaps + back-pointer files (manifest.files =
  /// {heap0, backptr0, heap1, backptr1, ...}); rebuilds the point indexes
  /// from the back-pointer files and erases triples of rows past `num_rows`
  /// (remnants of a statement in flight at the crash).
  static Result<std::unique_ptr<RcvStore>> Attach(
      const StorageManifest& manifest, uint64_t num_rows,
      storage::Pager* pager);

  StorageManifest Manifest() const override;

  StorageModel model() const override { return StorageModel::kRcv; }
  size_t num_rows() const override { return num_rows_; }
  size_t num_columns() const override { return columns_.size(); }

  Result<Value> Get(size_t row, size_t col) const override;
  Status Set(size_t row, size_t col, Value v) override;
  Result<Row> GetRow(size_t row) const override;
  Status GetRows(size_t start, size_t count,
                 std::vector<Row>* out) const override;
  Status VisitRows(size_t start, size_t count,
                   const RowVisitor& visit) const override;
  Result<size_t> AppendRow(const Row& row) override;
  Result<size_t> DeleteRow(size_t row) override;
  Status AddColumn(const Value& default_value) override;
  Status DropColumn(size_t col) override;

  /// Number of materialized (non-NULL) triples; exposed for sparsity tests.
  size_t num_triples() const;

 private:
  struct InternalColumn {
    storage::FileId file = 0;
    /// Durable mirror of slot_to_row (slot → row as INT); 0 on scratch
    /// pagers, where the index never needs to survive the process.
    storage::FileId backptr = 0;
    std::unordered_map<uint64_t, uint64_t> row_to_slot;  // triple point index
    std::vector<uint64_t> slot_to_row;                   // heap back-pointers
  };

  /// Attach path: adopts an existing column layout instead of creating one.
  RcvStore(storage::Pager* pager, size_t num_rows);

  /// Materializes (or overwrites) the triple (column, row) = v.
  void SetTriple(InternalColumn& ic, uint64_t row, Value v);
  /// Unmaterializes the triple, compacting the column heap swap-with-last.
  void EraseTriple(InternalColumn& ic, uint64_t row);
  /// Reads the triple's value, or null when unmaterialized.
  Value ReadTriple(const InternalColumn& ic, uint64_t row) const;
  /// Attach repair: drops the triple at `slot` (phantom row or torn-erase
  /// duplicate) by moving the last triple into it, maps included.
  void RemoveSlotForAttach(InternalColumn& ic, uint64_t slot);

  size_t num_rows_ = 0;
  std::vector<InternalColumn> columns_;  // logical col -> column heap
};

}  // namespace dataspread

#endif  // DATASPREAD_STORAGE_RCV_STORE_H_
