#ifndef DATASPREAD_STORAGE_RCV_STORE_H_
#define DATASPREAD_STORAGE_RCV_STORE_H_

#include <map>
#include <utility>
#include <vector>

#include "storage/table_storage.h"

namespace dataspread {

/// RCV: row-column-value triple store, clustered by (column, row).
///
/// The schema-less baseline: only non-NULL cells are materialized, so it
/// excels on sparse data and NULL-default schema changes, and degrades on
/// dense scans. Logical column ids are mapped through an indirection table so
/// DropColumn never renumbers surviving triples.
class RcvStore : public TableStorage {
 public:
  RcvStore(size_t num_columns, PageAccountant* accountant);

  StorageModel model() const override { return StorageModel::kRcv; }
  size_t num_rows() const override { return num_rows_; }
  size_t num_columns() const override { return col_ids_.size(); }

  Result<Value> Get(size_t row, size_t col) const override;
  Status Set(size_t row, size_t col, Value v) override;
  Result<Row> GetRow(size_t row) const override;
  Result<size_t> AppendRow(const Row& row) override;
  Result<size_t> DeleteRow(size_t row) override;
  Status AddColumn(const Value& default_value) override;
  Status DropColumn(size_t col) override;

  /// Number of materialized (non-NULL) triples; exposed for sparsity tests.
  size_t num_triples() const { return triples_.size(); }

 private:
  using Key = std::pair<uint64_t, uint64_t>;  // (internal column id, row)

  struct InternalColumn {
    uint64_t id;
    uint64_t file;
  };

  size_t num_rows_ = 0;
  uint64_t next_internal_id_ = 0;
  std::vector<InternalColumn> col_ids_;  // logical col -> internal identity
  std::map<Key, Value> triples_;
};

}  // namespace dataspread

#endif  // DATASPREAD_STORAGE_RCV_STORE_H_
