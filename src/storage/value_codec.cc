#include "storage/value_codec.h"

#include <array>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace dataspread {
namespace storage {

namespace {

enum Tag : unsigned char {
  kTagNull = 0,
  kTagBool = 1,
  kTagInt = 2,
  kTagReal = 3,
  kTagText = 4,
  kTagError = 5,
};

[[noreturn]] void CodecAbort(const char* msg) {
  std::fprintf(stderr, "storage::value_codec check failed: %s\n", msg);
  std::abort();
}

}  // namespace

void AppendRaw(std::string* out, const void* data, size_t n) {
  out->append(static_cast<const char*>(data), n);
}

void AppendU16(std::string* out, uint16_t v) { AppendRaw(out, &v, sizeof v); }
void AppendU32(std::string* out, uint32_t v) { AppendRaw(out, &v, sizeof v); }
void AppendU64(std::string* out, uint64_t v) { AppendRaw(out, &v, sizeof v); }

namespace {
template <typename T>
bool ReadScalar(const std::string& buf, size_t* pos, T* out) {
  if (*pos + sizeof(T) > buf.size()) return false;
  std::memcpy(out, buf.data() + *pos, sizeof(T));
  *pos += sizeof(T);
  return true;
}
}  // namespace

bool ReadU16(const std::string& buf, size_t* pos, uint16_t* out) {
  return ReadScalar(buf, pos, out);
}
bool ReadU32(const std::string& buf, size_t* pos, uint32_t* out) {
  return ReadScalar(buf, pos, out);
}
bool ReadU64(const std::string& buf, size_t* pos, uint64_t* out) {
  return ReadScalar(buf, pos, out);
}

void EncodeValue(const Value& v, std::string* out) {
  switch (v.type()) {
    case DataType::kNull:
      out->push_back(static_cast<char>(kTagNull));
      return;
    case DataType::kBool: {
      out->push_back(static_cast<char>(kTagBool));
      out->push_back(v.bool_value() ? 1 : 0);
      return;
    }
    case DataType::kInt: {
      out->push_back(static_cast<char>(kTagInt));
      int64_t i = v.int_value();
      AppendRaw(out, &i, sizeof i);
      return;
    }
    case DataType::kReal: {
      out->push_back(static_cast<char>(kTagReal));
      double d = v.real_value();
      AppendRaw(out, &d, sizeof d);
      return;
    }
    case DataType::kText: {
      out->push_back(static_cast<char>(kTagText));
      const std::string& s = v.text_value();
      if (s.size() > UINT32_MAX) CodecAbort("TEXT payload exceeds u32 length");
      AppendU32(out, static_cast<uint32_t>(s.size()));
      out->append(s);
      return;
    }
    case DataType::kError: {
      out->push_back(static_cast<char>(kTagError));
      const std::string& s = v.error_code();
      if (s.size() > UINT32_MAX) CodecAbort("ERROR payload exceeds u32 length");
      AppendU32(out, static_cast<uint32_t>(s.size()));
      out->append(s);
      return;
    }
  }
  CodecAbort("unencodable value type");
}

bool DecodeValue(const std::string& buf, size_t* pos, Value* out) {
  if (*pos >= buf.size()) return false;
  unsigned char tag = static_cast<unsigned char>(buf[(*pos)++]);
  switch (tag) {
    case kTagNull:
      *out = Value::Null();
      return true;
    case kTagBool:
      if (*pos + 1 > buf.size()) return false;
      *out = Value::Bool(buf[(*pos)++] != 0);
      return true;
    case kTagInt: {
      int64_t i;
      if (!ReadScalar(buf, pos, &i)) return false;
      *out = Value::Int(i);
      return true;
    }
    case kTagReal: {
      double d;
      if (!ReadScalar(buf, pos, &d)) return false;
      *out = Value::Real(d);
      return true;
    }
    case kTagText:
    case kTagError: {
      uint32_t len;
      if (!ReadU32(buf, pos, &len)) return false;
      if (*pos + len > buf.size()) return false;
      std::string s(buf.data() + *pos, len);
      *pos += len;
      *out = tag == kTagText ? Value::Text(std::move(s))
                             : Value::Error(std::move(s));
      return true;
    }
    default:
      return false;
  }
}

uint32_t Crc32(const void* data, size_t n, uint32_t seed) {
  // Table built once, on first use (thread-safe per C++11 static init).
  static const std::array<uint32_t, 256> kTable = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = seed ^ 0xFFFFFFFFu;
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace storage
}  // namespace dataspread
