#include "storage/rcv_store.h"

#include <utility>

#include "storage/page_cursor.h"

namespace dataspread {

namespace {
Status CheckStorable(const Value& v) {
  if (v.is_error()) {
    return Status::TypeError("error value " + v.error_code() +
                             " cannot enter relational storage");
  }
  return Status::OK();
}
}  // namespace

RcvStore::RcvStore(size_t num_columns, storage::Pager* pager,
                   const storage::PagerConfig& config)
    : TableStorage(pager, config) {
  columns_.resize(num_columns);
  for (InternalColumn& ic : columns_) {
    ic.file = pager_->CreateFile();
  }
}

RcvStore::~RcvStore() {
  for (InternalColumn& ic : columns_) pager_->DropFile(ic.file);
}

size_t RcvStore::num_triples() const {
  size_t n = 0;
  for (const InternalColumn& ic : columns_) n += ic.row_to_slot.size();
  return n;
}

void RcvStore::SetTriple(InternalColumn& ic, uint64_t row, Value v) {
  auto it = ic.row_to_slot.find(row);
  if (it != ic.row_to_slot.end()) {
    pager_->Write(ic.file, it->second, std::move(v));
    return;
  }
  uint64_t slot = ic.slot_to_row.size();
  pager_->Write(ic.file, slot, std::move(v));
  ic.row_to_slot.emplace(row, slot);
  ic.slot_to_row.push_back(row);
}

void RcvStore::EraseTriple(InternalColumn& ic, uint64_t row) {
  auto it = ic.row_to_slot.find(row);
  if (it == ic.row_to_slot.end()) return;
  uint64_t slot = it->second;
  uint64_t last_slot = ic.slot_to_row.size() - 1;
  ic.row_to_slot.erase(it);
  if (slot != last_slot) {
    // Keep the column heap dense: the last triple's value moves into the hole.
    pager_->Write(ic.file, slot, pager_->Take(ic.file, last_slot));
    uint64_t moved_row = ic.slot_to_row[last_slot];
    ic.row_to_slot[moved_row] = slot;
    ic.slot_to_row[slot] = moved_row;
  }
  ic.slot_to_row.pop_back();
  pager_->Truncate(ic.file, last_slot);
}

Value RcvStore::ReadTriple(const InternalColumn& ic, uint64_t row) const {
  auto it = ic.row_to_slot.find(row);
  if (it == ic.row_to_slot.end()) return Value::Null();
  return pager_->Read(ic.file, it->second);
}

Result<Value> RcvStore::Get(size_t row, size_t col) const {
  DS_RETURN_IF_ERROR(CheckCell(row, col));
  return ReadTriple(columns_[col], row);
}

Status RcvStore::Set(size_t row, size_t col, Value v) {
  DS_RETURN_IF_ERROR(CheckCell(row, col));
  DS_RETURN_IF_ERROR(CheckStorable(v));
  InternalColumn& ic = columns_[col];
  if (v.is_null()) {
    EraseTriple(ic, row);
  } else {
    SetTriple(ic, row, std::move(v));
  }
  return Status::OK();
}

Result<Row> RcvStore::GetRow(size_t row) const {
  if (row >= num_rows_) return Status::OutOfRange("row " + std::to_string(row));
  Row out;
  out.reserve(columns_.size());
  for (const InternalColumn& ic : columns_) {
    out.push_back(ReadTriple(ic, row));
  }
  return out;
}

Status RcvStore::GetRows(size_t start, size_t count,
                         std::vector<Row>* out) const {
  if (count == 0) return Status::OK();
  DS_RETURN_IF_ERROR(CheckRowRange(start, count));
  out->reserve(out->size() + count);
  // One cursor per column heap. Triple slots are not row-ordered (the heap
  // is maintained dense by swap-with-last), so this is not a sequential
  // stream — but the cursor still removes the per-triple chain hash lookup,
  // and consecutive rows of a mostly-append table usually share heap pages.
  std::vector<storage::PageCursor> cursors;
  cursors.reserve(columns_.size());
  for (const InternalColumn& ic : columns_) {
    cursors.emplace_back(*pager_, ic.file);
  }
  for (size_t r = start; r < start + count; ++r) {
    Row row;
    row.reserve(columns_.size());
    for (size_t c = 0; c < columns_.size(); ++c) {
      auto it = columns_[c].row_to_slot.find(r);
      row.push_back(it == columns_[c].row_to_slot.end()
                        ? Value::Null()
                        : cursors[c].Read(it->second));
    }
    out->push_back(std::move(row));
  }
  return Status::OK();
}

Status RcvStore::VisitRows(size_t start, size_t count,
                           const RowVisitor& visit) const {
  if (count == 0) return Status::OK();
  DS_RETURN_IF_ERROR(CheckRowRange(start, count));
  std::vector<storage::PageCursor> cursors;
  cursors.reserve(columns_.size());
  for (const InternalColumn& ic : columns_) {
    cursors.emplace_back(*pager_, ic.file);
  }
  Row scratch(columns_.size());
  for (size_t r = start; r < start + count; ++r) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      auto it = columns_[c].row_to_slot.find(r);
      scratch[c] = it == columns_[c].row_to_slot.end()
                       ? Value::Null()
                       : cursors[c].Read(it->second);
    }
    visit(r, scratch.data());
  }
  return Status::OK();
}

Result<size_t> RcvStore::AppendRow(const Row& row) {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " != " +
        std::to_string(columns_.size()));
  }
  for (const Value& v : row) DS_RETURN_IF_ERROR(CheckStorable(v));
  size_t slot = num_rows_;
  for (size_t c = 0; c < row.size(); ++c) {
    if (row[c].is_null()) continue;  // NULLs are unmaterialized.
    SetTriple(columns_[c], slot, row[c]);
  }
  num_rows_ += 1;
  return slot;
}

Result<size_t> RcvStore::DeleteRow(size_t row) {
  if (row >= num_rows_) return Status::OutOfRange("row " + std::to_string(row));
  size_t last = num_rows_ - 1;
  for (InternalColumn& ic : columns_) {
    if (row == last) {
      EraseTriple(ic, last);
      continue;
    }
    auto last_it = ic.row_to_slot.find(last);
    if (last_it != ic.row_to_slot.end()) {
      Value moved = pager_->Read(ic.file, last_it->second);
      EraseTriple(ic, last);
      SetTriple(ic, row, std::move(moved));
    } else {
      EraseTriple(ic, row);
    }
  }
  num_rows_ -= 1;
  return last;
}

Status RcvStore::AddColumn(const Value& default_value) {
  DS_RETURN_IF_ERROR(CheckStorable(default_value));
  InternalColumn ic;
  ic.file = pager_->CreateFile();
  columns_.push_back(std::move(ic));
  if (!default_value.is_null()) {
    // A non-NULL default must materialize a triple per row; only NULL-default
    // schema changes are free in RCV. The fresh heap is filled through a
    // cursor (slot == row for a brand-new column), one dirty record per
    // page, and the point index is built alongside.
    InternalColumn& added = columns_.back();
    storage::PageCursor(*pager_, added.file)
        .Fill(0, num_rows_, default_value);
    added.row_to_slot.reserve(num_rows_);
    added.slot_to_row.reserve(num_rows_);
    for (size_t r = 0; r < num_rows_; ++r) {
      added.row_to_slot.emplace(r, r);
      added.slot_to_row.push_back(r);
    }
  }
  return Status::OK();
}

Status RcvStore::DropColumn(size_t col) {
  if (col >= columns_.size()) {
    return Status::OutOfRange("column " + std::to_string(col));
  }
  // The column's heap is its own file: dropping deallocates it wholesale and
  // never touches (or renumbers) surviving columns' triples.
  pager_->DropFile(columns_[col].file);
  columns_.erase(columns_.begin() + static_cast<ptrdiff_t>(col));
  return Status::OK();
}

}  // namespace dataspread
