#include "storage/rcv_store.h"

namespace dataspread {

namespace {
Status CheckStorable(const Value& v) {
  if (v.is_error()) {
    return Status::TypeError("error value " + v.error_code() +
                             " cannot enter relational storage");
  }
  return Status::OK();
}
}  // namespace

RcvStore::RcvStore(size_t num_columns, PageAccountant* accountant)
    : TableStorage(accountant) {
  col_ids_.reserve(num_columns);
  for (size_t i = 0; i < num_columns; ++i) {
    col_ids_.push_back(InternalColumn{next_internal_id_++, accountant_->NewFile()});
  }
}

Result<Value> RcvStore::Get(size_t row, size_t col) const {
  DS_RETURN_IF_ERROR(CheckCell(row, col));
  const InternalColumn& ic = col_ids_[col];
  accountant_->Touch(ic.file, row);
  auto it = triples_.find(Key{ic.id, row});
  if (it == triples_.end()) return Value::Null();
  return it->second;
}

Status RcvStore::Set(size_t row, size_t col, Value v) {
  DS_RETURN_IF_ERROR(CheckCell(row, col));
  DS_RETURN_IF_ERROR(CheckStorable(v));
  const InternalColumn& ic = col_ids_[col];
  accountant_->Dirty(ic.file, row);
  if (v.is_null()) {
    triples_.erase(Key{ic.id, row});
  } else {
    triples_[Key{ic.id, row}] = std::move(v);
  }
  return Status::OK();
}

Result<Row> RcvStore::GetRow(size_t row) const {
  if (row >= num_rows_) return Status::OutOfRange("row " + std::to_string(row));
  Row out;
  out.reserve(col_ids_.size());
  for (const InternalColumn& ic : col_ids_) {
    accountant_->Touch(ic.file, row);
    auto it = triples_.find(Key{ic.id, row});
    out.push_back(it == triples_.end() ? Value::Null() : it->second);
  }
  return out;
}

Result<size_t> RcvStore::AppendRow(const Row& row) {
  if (row.size() != col_ids_.size()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " != " +
        std::to_string(col_ids_.size()));
  }
  for (const Value& v : row) DS_RETURN_IF_ERROR(CheckStorable(v));
  size_t slot = num_rows_;
  for (size_t c = 0; c < row.size(); ++c) {
    if (row[c].is_null()) continue;  // NULLs are unmaterialized.
    const InternalColumn& ic = col_ids_[c];
    accountant_->Dirty(ic.file, slot);
    triples_[Key{ic.id, slot}] = row[c];
  }
  num_rows_ += 1;
  return slot;
}

Result<size_t> RcvStore::DeleteRow(size_t row) {
  if (row >= num_rows_) return Status::OutOfRange("row " + std::to_string(row));
  size_t last = num_rows_ - 1;
  for (const InternalColumn& ic : col_ids_) {
    auto last_it = triples_.find(Key{ic.id, last});
    if (row != last) {
      accountant_->Dirty(ic.file, row);
      if (last_it != triples_.end()) {
        triples_[Key{ic.id, row}] = std::move(last_it->second);
      } else {
        triples_.erase(Key{ic.id, row});
      }
    }
    if (last_it != triples_.end()) {
      accountant_->Dirty(ic.file, last);
      triples_.erase(Key{ic.id, last});
    }
  }
  num_rows_ -= 1;
  return last;
}

Status RcvStore::AddColumn(const Value& default_value) {
  DS_RETURN_IF_ERROR(CheckStorable(default_value));
  InternalColumn ic{next_internal_id_++, accountant_->NewFile()};
  if (!default_value.is_null()) {
    // A non-NULL default must materialize a triple per row; only NULL-default
    // schema changes are free in RCV.
    for (size_t r = 0; r < num_rows_; ++r) {
      accountant_->Dirty(ic.file, r);
      triples_[Key{ic.id, r}] = default_value;
    }
  }
  col_ids_.push_back(ic);
  return Status::OK();
}

Status RcvStore::DropColumn(size_t col) {
  if (col >= col_ids_.size()) {
    return Status::OutOfRange("column " + std::to_string(col));
  }
  const InternalColumn ic = col_ids_[col];
  // Triples are clustered by column, so the erase touches only this column's
  // contiguous key range; surviving columns keep their internal ids.
  auto begin = triples_.lower_bound(Key{ic.id, 0});
  auto end = triples_.lower_bound(Key{ic.id + 1, 0});
  for (auto it = begin; it != end; ++it) accountant_->Dirty(ic.file, it->first.second);
  triples_.erase(begin, end);
  col_ids_.erase(col_ids_.begin() + static_cast<ptrdiff_t>(col));
  return Status::OK();
}

}  // namespace dataspread
