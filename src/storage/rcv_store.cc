#include "storage/rcv_store.h"

#include <algorithm>
#include <utility>

#include "storage/page_cursor.h"

namespace dataspread {

namespace {
Status CheckStorable(const Value& v) {
  if (v.is_error()) {
    return Status::TypeError("error value " + v.error_code() +
                             " cannot enter relational storage");
  }
  return Status::OK();
}
}  // namespace

RcvStore::RcvStore(size_t num_columns, storage::Pager* pager,
                   const storage::PagerConfig& config)
    : TableStorage(pager, config) {
  columns_.resize(num_columns);
  for (InternalColumn& ic : columns_) {
    ic.file = pager_->CreateFile();
    if (pager_->durable()) ic.backptr = pager_->CreateFile();
  }
}

RcvStore::RcvStore(storage::Pager* pager, size_t num_rows)
    : TableStorage(pager, {}), num_rows_(num_rows) {
  set_retain_files(true);
}

RcvStore::~RcvStore() {
  if (retain_files()) return;
  for (InternalColumn& ic : columns_) {
    pager_->DropFile(ic.file);
    if (ic.backptr != 0) pager_->DropFile(ic.backptr);
  }
}

void RcvStore::RemoveSlotForAttach(InternalColumn& ic, uint64_t slot) {
  uint64_t last = ic.slot_to_row.size() - 1;
  if (slot != last) {
    pager_->Write(ic.file, slot, pager_->Take(ic.file, last));
    uint64_t moved_row = ic.slot_to_row[last];
    pager_->Write(ic.backptr, slot, Value::Int(static_cast<int64_t>(moved_row)));
    ic.row_to_slot[moved_row] = slot;
    ic.slot_to_row[slot] = moved_row;
  }
  ic.slot_to_row.pop_back();
  pager_->Truncate(ic.file, last);
  pager_->Truncate(ic.backptr, last);
}

Result<std::unique_ptr<RcvStore>> RcvStore::Attach(
    const StorageManifest& manifest, uint64_t num_rows,
    storage::Pager* pager) {
  if (manifest.files.size() != size_t{manifest.num_columns} * 2) {
    return Status::Internal("rcv manifest must carry a heap + back-pointer "
                            "file pair per column");
  }
  auto store = std::unique_ptr<RcvStore>(
      new RcvStore(pager, static_cast<size_t>(num_rows)));
  store->columns_.resize(manifest.num_columns);
  for (size_t c = 0; c < manifest.num_columns; ++c) {
    InternalColumn& ic = store->columns_[c];
    ic.file = manifest.files[2 * c];
    ic.backptr = manifest.files[2 * c + 1];
    if (!pager->HasFile(ic.file) || !pager->HasFile(ic.backptr)) {
      return Status::Internal("rcv manifest names a dead file");
    }
    // A triple is durable once both its value and its back-pointer are on
    // disk; a statement torn between the two leaves one file longer — trim
    // to the shorter (= fully persisted) prefix.
    uint64_t triples =
        std::min(pager->FileSize(ic.file), pager->FileSize(ic.backptr));
    if (pager->FileSize(ic.file) > triples) pager->Truncate(ic.file, triples);
    if (pager->FileSize(ic.backptr) > triples) {
      pager->Truncate(ic.backptr, triples);
    }
    // Rebuild the point index; phantom triples (rows past the recovered row
    // count) and torn-erase duplicates are repaired afterwards. On a
    // duplicate, keep the *later* slot: EraseTriple moves the back-pointer
    // before the value, so the earlier (overwritten) slot may still hold
    // the erased row's stale value while the later one is always intact.
    ic.slot_to_row.reserve(triples);
    std::vector<uint64_t> doomed;
    for (uint64_t s = 0; s < triples; ++s) {
      const Value& v = pager->Read(ic.backptr, s);
      if (v.type() != DataType::kInt) {
        return Status::Internal("rcv back-pointer file holds a non-INT");
      }
      uint64_t row = static_cast<uint64_t>(v.int_value());
      ic.slot_to_row.push_back(row);
      if (row >= num_rows) {
        doomed.push_back(s);
        continue;
      }
      auto [it, inserted] = ic.row_to_slot.emplace(row, s);
      if (!inserted) {
        doomed.push_back(it->second);  // earlier duplicate loses
        it->second = s;
      }
    }
    // Remove doomed slots highest-first so each removal's swap source is a
    // live triple (or the doomed slot itself, which then just truncates).
    std::sort(doomed.begin(), doomed.end());
    for (size_t i = doomed.size(); i-- > 0;) {
      store->RemoveSlotForAttach(ic, doomed[i]);
    }
  }
  return store;
}

StorageManifest RcvStore::Manifest() const {
  StorageManifest m;
  m.model = StorageModel::kRcv;
  m.num_columns = static_cast<uint32_t>(columns_.size());
  m.files.reserve(columns_.size() * 2);
  for (const InternalColumn& ic : columns_) {
    m.files.push_back(ic.file);
    m.files.push_back(ic.backptr);
  }
  return m;
}

size_t RcvStore::num_triples() const {
  size_t n = 0;
  for (const InternalColumn& ic : columns_) n += ic.row_to_slot.size();
  return n;
}

void RcvStore::SetTriple(InternalColumn& ic, uint64_t row, Value v) {
  auto it = ic.row_to_slot.find(row);
  if (it != ic.row_to_slot.end()) {
    pager_->Write(ic.file, it->second, std::move(v));
    return;
  }
  uint64_t slot = ic.slot_to_row.size();
  pager_->Write(ic.file, slot, std::move(v));
  // Durable index mirror: the value first, then its back-pointer — a crash
  // between the two leaves a longer heap, which Attach trims.
  if (ic.backptr != 0) {
    pager_->Write(ic.backptr, slot, Value::Int(static_cast<int64_t>(row)));
  }
  ic.row_to_slot.emplace(row, slot);
  ic.slot_to_row.push_back(row);
}

void RcvStore::EraseTriple(InternalColumn& ic, uint64_t row) {
  auto it = ic.row_to_slot.find(row);
  if (it == ic.row_to_slot.end()) return;
  uint64_t slot = it->second;
  uint64_t last_slot = ic.slot_to_row.size() - 1;
  ic.row_to_slot.erase(it);
  if (slot != last_slot) {
    // Keep the column heap dense: the last triple's value moves into the hole.
    uint64_t moved_row = ic.slot_to_row[last_slot];
    if (ic.backptr != 0) {
      // Durable ordering is load-bearing: the back-pointer moves *first*
      // and the value is copied (not taken), so at every record boundary
      // the kept mapping (Attach keeps the later duplicate slot) points at
      // an intact value, and the erased row's mapping dies before any
      // heap byte changes — no torn state can read another row's value.
      pager_->Write(ic.backptr, slot,
                    Value::Int(static_cast<int64_t>(moved_row)));
      pager_->Write(ic.file, slot, Value(pager_->Read(ic.file, last_slot)));
    } else {
      pager_->Write(ic.file, slot, pager_->Take(ic.file, last_slot));
    }
    ic.row_to_slot[moved_row] = slot;
    ic.slot_to_row[slot] = moved_row;
  }
  ic.slot_to_row.pop_back();
  pager_->Truncate(ic.file, last_slot);
  if (ic.backptr != 0) pager_->Truncate(ic.backptr, last_slot);
}

Value RcvStore::ReadTriple(const InternalColumn& ic, uint64_t row) const {
  auto it = ic.row_to_slot.find(row);
  if (it == ic.row_to_slot.end()) return Value::Null();
  return pager_->Read(ic.file, it->second);
}

Result<Value> RcvStore::Get(size_t row, size_t col) const {
  DS_RETURN_IF_ERROR(CheckCell(row, col));
  return ReadTriple(columns_[col], row);
}

Status RcvStore::Set(size_t row, size_t col, Value v) {
  DS_RETURN_IF_ERROR(CheckCell(row, col));
  DS_RETURN_IF_ERROR(CheckStorable(v));
  InternalColumn& ic = columns_[col];
  if (v.is_null()) {
    EraseTriple(ic, row);
  } else {
    SetTriple(ic, row, std::move(v));
  }
  return Status::OK();
}

Result<Row> RcvStore::GetRow(size_t row) const {
  if (row >= num_rows_) return Status::OutOfRange("row " + std::to_string(row));
  Row out;
  out.reserve(columns_.size());
  for (const InternalColumn& ic : columns_) {
    out.push_back(ReadTriple(ic, row));
  }
  return out;
}

Status RcvStore::GetRows(size_t start, size_t count,
                         std::vector<Row>* out) const {
  if (count == 0) return Status::OK();
  DS_RETURN_IF_ERROR(CheckRowRange(start, count));
  out->reserve(out->size() + count);
  // One cursor per column heap. Triple slots are not row-ordered (the heap
  // is maintained dense by swap-with-last), so this is not a sequential
  // stream — but the cursor still removes the per-triple chain hash lookup,
  // and consecutive rows of a mostly-append table usually share heap pages.
  std::vector<storage::PageCursor> cursors;
  cursors.reserve(columns_.size());
  for (const InternalColumn& ic : columns_) {
    cursors.emplace_back(*pager_, ic.file);
  }
  for (size_t r = start; r < start + count; ++r) {
    Row row;
    row.reserve(columns_.size());
    for (size_t c = 0; c < columns_.size(); ++c) {
      auto it = columns_[c].row_to_slot.find(r);
      row.push_back(it == columns_[c].row_to_slot.end()
                        ? Value::Null()
                        : cursors[c].Read(it->second));
    }
    out->push_back(std::move(row));
  }
  return Status::OK();
}

Status RcvStore::VisitRows(size_t start, size_t count,
                           const RowVisitor& visit) const {
  if (count == 0) return Status::OK();
  DS_RETURN_IF_ERROR(CheckRowRange(start, count));
  std::vector<storage::PageCursor> cursors;
  cursors.reserve(columns_.size());
  for (const InternalColumn& ic : columns_) {
    cursors.emplace_back(*pager_, ic.file);
  }
  Row scratch(columns_.size());
  for (size_t r = start; r < start + count; ++r) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      auto it = columns_[c].row_to_slot.find(r);
      scratch[c] = it == columns_[c].row_to_slot.end()
                       ? Value::Null()
                       : cursors[c].Read(it->second);
    }
    visit(r, scratch.data());
  }
  return Status::OK();
}

Result<size_t> RcvStore::AppendRow(const Row& row) {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " != " +
        std::to_string(columns_.size()));
  }
  for (const Value& v : row) DS_RETURN_IF_ERROR(CheckStorable(v));
  size_t slot = num_rows_;
  for (size_t c = 0; c < row.size(); ++c) {
    if (row[c].is_null()) continue;  // NULLs are unmaterialized.
    SetTriple(columns_[c], slot, row[c]);
  }
  num_rows_ += 1;
  return slot;
}

Result<size_t> RcvStore::DeleteRow(size_t row) {
  if (row >= num_rows_) return Status::OutOfRange("row " + std::to_string(row));
  size_t last = num_rows_ - 1;
  if (pager_->durable() && row != last) {
    // Three strict phases so a crash-torn delete stays mostly redoable
    // (Table::Attach re-copies from the intact last row): erase the
    // target's triples where the moved row has none, copy the moved row's
    // triples over the target, and only then unmaterialize the last row.
    // The interleaved version below erases sources before all copies are
    // done, which a redo could no longer read.
    for (InternalColumn& ic : columns_) {
      if (ic.row_to_slot.count(last) == 0) EraseTriple(ic, row);
    }
    for (InternalColumn& ic : columns_) {
      auto last_it = ic.row_to_slot.find(last);
      if (last_it != ic.row_to_slot.end()) {
        SetTriple(ic, row, Value(pager_->Read(ic.file, last_it->second)));
      }
    }
    for (InternalColumn& ic : columns_) EraseTriple(ic, last);
    num_rows_ -= 1;
    return last;
  }
  for (InternalColumn& ic : columns_) {
    if (row == last) {
      EraseTriple(ic, last);
      continue;
    }
    auto last_it = ic.row_to_slot.find(last);
    if (last_it != ic.row_to_slot.end()) {
      Value moved = pager_->Read(ic.file, last_it->second);
      EraseTriple(ic, last);
      SetTriple(ic, row, std::move(moved));
    } else {
      EraseTriple(ic, row);
    }
  }
  num_rows_ -= 1;
  return last;
}

Status RcvStore::AddColumn(const Value& default_value) {
  DS_RETURN_IF_ERROR(CheckStorable(default_value));
  InternalColumn ic;
  ic.file = pager_->CreateFile();
  if (pager_->durable()) ic.backptr = pager_->CreateFile();
  columns_.push_back(std::move(ic));
  if (!default_value.is_null()) {
    // A non-NULL default must materialize a triple per row; only NULL-default
    // schema changes are free in RCV. The fresh heap is filled through a
    // cursor (slot == row for a brand-new column), one dirty record per
    // page, and the point index is built alongside.
    InternalColumn& added = columns_.back();
    storage::PageCursor(*pager_, added.file)
        .Fill(0, num_rows_, default_value);
    if (added.backptr != 0) {
      storage::PageCursor bp(*pager_, added.backptr);
      for (size_t r = 0; r < num_rows_; ++r) {
        bp.Write(r, Value::Int(static_cast<int64_t>(r)));
      }
    }
    added.row_to_slot.reserve(num_rows_);
    added.slot_to_row.reserve(num_rows_);
    for (size_t r = 0; r < num_rows_; ++r) {
      added.row_to_slot.emplace(r, r);
      added.slot_to_row.push_back(r);
    }
  }
  return Status::OK();
}

Status RcvStore::DropColumn(size_t col) {
  if (col >= columns_.size()) {
    return Status::OutOfRange("column " + std::to_string(col));
  }
  // The column's heap is its own file: dropping deallocates it wholesale and
  // never touches (or renumbers) surviving columns' triples. Durable DDL
  // retires the pair instead — the files must outlive the DDL record.
  if (pager_->durable()) {
    retired_files_.push_back(columns_[col].file);
    retired_files_.push_back(columns_[col].backptr);
  } else {
    pager_->DropFile(columns_[col].file);
    if (columns_[col].backptr != 0) pager_->DropFile(columns_[col].backptr);
  }
  columns_.erase(columns_.begin() + static_cast<ptrdiff_t>(col));
  return Status::OK();
}

}  // namespace dataspread
