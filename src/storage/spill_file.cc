#include "storage/spill_file.h"

#include <cstdlib>
#include <cstring>

#include <sys/types.h>

#include "storage/pager.h"

// Spill I/O failures (ENOSPC, a yanked temp dir) leave the pool unable to
// honor its bounded-memory contract; like the pager's API-misuse checks this
// aborts rather than silently serving stale pages.
#define DS_SPILL_CHECK(cond, msg)                                     \
  do {                                                                \
    if (!(cond)) {                                                    \
      std::fprintf(stderr, "storage::SpillFile check failed: %s\n",   \
                   (msg));                                            \
      std::abort();                                                   \
    }                                                                 \
  } while (0)

namespace dataspread {
namespace storage {

namespace {

enum Tag : unsigned char {
  kTagNull = 0,
  kTagBool = 1,
  kTagInt = 2,
  kTagReal = 3,
  kTagText = 4,
  kTagError = 5,
};

void AppendRaw(std::string* out, const void* data, size_t n) {
  out->append(static_cast<const char*>(data), n);
}

void AppendU32(std::string* out, uint32_t v) { AppendRaw(out, &v, sizeof v); }

void EncodeValue(const Value& v, std::string* out) {
  switch (v.type()) {
    case DataType::kNull:
      out->push_back(static_cast<char>(kTagNull));
      return;
    case DataType::kBool: {
      out->push_back(static_cast<char>(kTagBool));
      out->push_back(v.bool_value() ? 1 : 0);
      return;
    }
    case DataType::kInt: {
      out->push_back(static_cast<char>(kTagInt));
      int64_t i = v.int_value();
      AppendRaw(out, &i, sizeof i);
      return;
    }
    case DataType::kReal: {
      out->push_back(static_cast<char>(kTagReal));
      double d = v.real_value();
      AppendRaw(out, &d, sizeof d);
      return;
    }
    case DataType::kText: {
      out->push_back(static_cast<char>(kTagText));
      const std::string& s = v.text_value();
      DS_SPILL_CHECK(s.size() <= UINT32_MAX, "TEXT payload exceeds u32 length");
      AppendU32(out, static_cast<uint32_t>(s.size()));
      out->append(s);
      return;
    }
    case DataType::kError: {
      out->push_back(static_cast<char>(kTagError));
      const std::string& s = v.error_code();
      DS_SPILL_CHECK(s.size() <= UINT32_MAX,
                     "ERROR payload exceeds u32 length");
      AppendU32(out, static_cast<uint32_t>(s.size()));
      out->append(s);
      return;
    }
  }
  DS_SPILL_CHECK(false, "unencodable value type");
}

bool DecodeValue(const std::string& buf, size_t* pos, Value* out) {
  if (*pos >= buf.size()) return false;
  unsigned char tag = static_cast<unsigned char>(buf[(*pos)++]);
  switch (tag) {
    case kTagNull:
      *out = Value::Null();
      return true;
    case kTagBool:
      if (*pos + 1 > buf.size()) return false;
      *out = Value::Bool(buf[(*pos)++] != 0);
      return true;
    case kTagInt: {
      if (*pos + sizeof(int64_t) > buf.size()) return false;
      int64_t i;
      std::memcpy(&i, buf.data() + *pos, sizeof i);
      *pos += sizeof i;
      *out = Value::Int(i);
      return true;
    }
    case kTagReal: {
      if (*pos + sizeof(double) > buf.size()) return false;
      double d;
      std::memcpy(&d, buf.data() + *pos, sizeof d);
      *pos += sizeof d;
      *out = Value::Real(d);
      return true;
    }
    case kTagText:
    case kTagError: {
      if (*pos + sizeof(uint32_t) > buf.size()) return false;
      uint32_t len;
      std::memcpy(&len, buf.data() + *pos, sizeof len);
      *pos += sizeof len;
      if (*pos + len > buf.size()) return false;
      std::string s(buf.data() + *pos, len);
      *pos += len;
      *out = tag == kTagText ? Value::Text(std::move(s))
                             : Value::Error(std::move(s));
      return true;
    }
    default:
      return false;
  }
}

}  // namespace

SpillFile::SpillFile(std::string path) : path_(std::move(path)) {}

SpillFile::~SpillFile() {
  if (file_ != nullptr) std::fclose(file_);
  // A named spill file is a per-run scratch heap, never a durable store:
  // remove it so test and bench runs leave no artifacts behind.
  if (!path_.empty()) std::remove(path_.c_str());
}

std::FILE* SpillFile::EnsureOpen() {
  if (file_ != nullptr) return file_;
  file_ = path_.empty() ? std::tmpfile() : std::fopen(path_.c_str(), "wb+");
  DS_SPILL_CHECK(file_ != nullptr, "cannot open spill file");
  // A 256 KiB stdio buffer (vs the libc default of a few KiB) lets a run of
  // sequentially laid-out page records — eviction write-back of a scan
  // stream, fault-in with readahead — coalesce into far fewer syscalls.
  io_buffer_.resize(256 * 1024);
  std::setvbuf(file_, io_buffer_.data(), _IOFBF, io_buffer_.size());
  return file_;
}

void SpillFile::SeekTo(std::FILE* f, uint64_t offset, bool writing) {
  if (stream_pos_ == offset && stream_writing_ == writing) return;
  // fseeko, not fseek: offsets are 64-bit and the heap can pass LONG_MAX on
  // ILP32 targets (relocated records abandon their old space, so text-heavy
  // workloads grow the file monotonically).
  DS_SPILL_CHECK(fseeko(f, static_cast<off_t>(offset), SEEK_SET) == 0,
                 "seek in spill file");
  stream_pos_ = offset;
  stream_writing_ = writing;
}

uint64_t SpillFile::AllocateSlot() {
  if (!free_slots_.empty()) {
    uint64_t slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[slot].length = 0;
    return slot;
  }
  slots_.push_back(Record{});
  return slots_.size() - 1;
}

void SpillFile::FreeSlot(uint64_t slot) {
  DS_SPILL_CHECK(slot < slots_.size(), "freeing an unknown spill slot");
  free_slots_.push_back(slot);
}

void SpillFile::EncodePage(const ValuePage& page, std::string* out) {
  out->clear();
  for (size_t i = 0; i < ValuePage::kSlotCount; ++i) {
    EncodeValue(page.slot(i), out);
  }
}

bool SpillFile::DecodePage(const std::string& buf, ValuePage* page) {
  size_t pos = 0;
  for (size_t i = 0; i < ValuePage::kSlotCount; ++i) {
    Value v;
    if (!DecodeValue(buf, &pos, &v)) return false;
    page->slot(i) = std::move(v);
  }
  return pos == buf.size();
}

uint64_t SpillFile::WritePage(uint64_t slot, const ValuePage& page) {
  DS_SPILL_CHECK(slot < slots_.size(), "writing an unknown spill slot");
  EncodePage(page, &scratch_);
  DS_SPILL_CHECK(scratch_.size() <= UINT32_MAX,
                 "page record exceeds u32 length");
  Record& rec = slots_[slot];
  if (scratch_.size() > rec.capacity) {
    // Outgrew the reserved space: relocate to the end of the heap. The old
    // space stays with this slot's former record and is simply abandoned;
    // fixed-width pages (the common case) always rewrite in place.
    rec.offset = end_offset_;
    rec.capacity = static_cast<uint32_t>(scratch_.size());
    end_offset_ += scratch_.size();
  }
  rec.length = static_cast<uint32_t>(scratch_.size());
  std::FILE* f = EnsureOpen();
  SeekTo(f, rec.offset, /*writing=*/true);
  DS_SPILL_CHECK(std::fwrite(scratch_.data(), 1, scratch_.size(), f) ==
                     scratch_.size(),
                 "short spill write");
  stream_pos_ += scratch_.size();
  return scratch_.size();
}

uint64_t SpillFile::ReadPage(uint64_t slot, ValuePage* page) {
  DS_SPILL_CHECK(slot < slots_.size(), "reading an unknown spill slot");
  const Record& rec = slots_[slot];
  DS_SPILL_CHECK(rec.length > 0, "reading a never-written spill slot");
  scratch_.resize(rec.length);
  std::FILE* f = EnsureOpen();
  SeekTo(f, rec.offset, /*writing=*/false);
  DS_SPILL_CHECK(std::fread(&scratch_[0], 1, rec.length, f) == rec.length,
                 "short spill read");
  stream_pos_ += rec.length;
  DS_SPILL_CHECK(DecodePage(scratch_, page), "corrupt spill record");
  return rec.length;
}

}  // namespace storage
}  // namespace dataspread
