#include "storage/spill_file.h"

#include <cstdlib>
#include <cstring>

#include <sys/types.h>
#include <unistd.h>

#include "storage/pager.h"
#include "storage/value_codec.h"

// Spill I/O failures (ENOSPC, a yanked temp dir) leave the pool unable to
// honor its bounded-memory contract; like the pager's API-misuse checks this
// aborts rather than silently serving stale pages.
#define DS_SPILL_CHECK(cond, msg)                                     \
  do {                                                                \
    if (!(cond)) {                                                    \
      std::fprintf(stderr, "storage::SpillFile check failed: %s\n",   \
                   (msg));                                            \
      std::abort();                                                   \
    }                                                                 \
  } while (0)

namespace dataspread {
namespace storage {

SpillFile::SpillFile(std::string path, bool durable)
    : path_(std::move(path)), durable_(durable) {
  DS_SPILL_CHECK(!durable_ || !path_.empty(),
                 "durable spill requires a named path");
}

SpillFile::~SpillFile() {
  if (file_ != nullptr) std::fclose(file_);
  // A scratch spill file is a per-run heap, never a durable store: remove it
  // so test and bench runs leave no artifacts behind. A durable one *is* the
  // store — it stays, alongside the WAL.
  if (!path_.empty() && !durable_) std::remove(path_.c_str());
}

std::FILE* SpillFile::EnsureOpen() {
  if (file_ != nullptr) return file_;
  if (path_.empty()) {
    file_ = std::tmpfile();
  } else if (durable_) {
    // Preserve existing bytes across runs: try update mode first, fall back
    // to creation on the very first open.
    file_ = std::fopen(path_.c_str(), "rb+");
    if (file_ == nullptr) file_ = std::fopen(path_.c_str(), "wb+");
  } else {
    file_ = std::fopen(path_.c_str(), "wb+");
  }
  DS_SPILL_CHECK(file_ != nullptr, "cannot open spill file");
  // A 256 KiB stdio buffer (vs the libc default of a few KiB) lets a run of
  // sequentially laid-out page records — eviction write-back of a scan
  // stream, fault-in with readahead — coalesce into far fewer syscalls.
  io_buffer_.resize(256 * 1024);
  std::setvbuf(file_, io_buffer_.data(), _IOFBF, io_buffer_.size());
  return file_;
}

void SpillFile::SeekTo(std::FILE* f, uint64_t offset, bool writing) {
  if (stream_pos_ == offset && stream_writing_ == writing) return;
  // fseeko, not fseek: offsets are 64-bit and the heap can pass LONG_MAX on
  // ILP32 targets (relocated records abandon their old space, so text-heavy
  // workloads grow the file monotonically).
  DS_SPILL_CHECK(fseeko(f, static_cast<off_t>(offset), SEEK_SET) == 0,
                 "seek in spill file");
  stream_pos_ = offset;
  stream_writing_ = writing;
}

void SpillFile::Sync() {
  if (file_ == nullptr) return;
  DS_SPILL_CHECK(std::fflush(file_) == 0 && ::fsync(::fileno(file_)) == 0,
                 "spill fsync");
}

SpillFile::DirectorySnapshot SpillFile::ExportDirectory() const {
  DirectorySnapshot dir;
  dir.slots = slots_;
  dir.free_slots = free_slots_;
  dir.end_offset = end_offset_;
  dir.dead_bytes = dead_bytes_;
  return dir;
}

void SpillFile::RestoreDirectory(const DirectorySnapshot& dir) {
  DS_SPILL_CHECK(slots_.empty() && end_offset_ == 0,
                 "restoring a directory over a live spill heap");
  slots_ = dir.slots;
  free_slots_ = dir.free_slots;
  end_offset_ = dir.end_offset;
  dead_bytes_ = dir.dead_bytes;
}

uint64_t SpillFile::AllocateSlot() {
  if (!free_slots_.empty()) {
    uint64_t slot = free_slots_.back();
    free_slots_.pop_back();
    // The recycled slot's reserved space goes live again.
    dead_bytes_ -= slots_[slot].capacity;
    slots_[slot].length = 0;
    return slot;
  }
  slots_.push_back(Record{});
  return slots_.size() - 1;
}

void SpillFile::FreeSlot(uint64_t slot) {
  DS_SPILL_CHECK(slot < slots_.size(), "freeing an unknown spill slot");
  free_slots_.push_back(slot);
  dead_bytes_ += slots_[slot].capacity;
}

void SpillFile::EncodePage(const ValuePage& page, std::string* out) {
  out->clear();
  for (size_t i = 0; i < ValuePage::kSlotCount; ++i) {
    EncodeValue(page.slot(i), out);
  }
}

bool SpillFile::DecodePage(const std::string& buf, ValuePage* page) {
  size_t pos = 0;
  for (size_t i = 0; i < ValuePage::kSlotCount; ++i) {
    Value v;
    if (!DecodeValue(buf, &pos, &v)) return false;
    page->slot(i) = std::move(v);
  }
  return pos == buf.size();
}

uint64_t SpillFile::WritePage(uint64_t slot, const ValuePage& page) {
  DS_SPILL_CHECK(slot < slots_.size(), "writing an unknown spill slot");
  EncodePage(page, &scratch_);
  DS_SPILL_CHECK(scratch_.size() <= UINT32_MAX,
                 "page record exceeds u32 length");
  Record& rec = slots_[slot];
  if (scratch_.size() > rec.capacity) {
    // Outgrew the reserved space: relocate to the end of the heap. The old
    // space stays with this slot's former record and is simply abandoned —
    // counted as dead bytes, the compaction signal — while fixed-width
    // pages (the common case) always rewrite in place. Under a durable
    // pager this abandonment doubles as copy-on-write: the checkpoint-time
    // base at the old offset survives untouched for crash recovery.
    dead_bytes_ += rec.capacity;
    rec.offset = end_offset_;
    rec.capacity = static_cast<uint32_t>(scratch_.size());
    end_offset_ += scratch_.size();
  }
  rec.length = static_cast<uint32_t>(scratch_.size());
  std::FILE* f = EnsureOpen();
  SeekTo(f, rec.offset, /*writing=*/true);
  DS_SPILL_CHECK(std::fwrite(scratch_.data(), 1, scratch_.size(), f) ==
                     scratch_.size(),
                 "short spill write");
  stream_pos_ += scratch_.size();
  return scratch_.size();
}

uint64_t SpillFile::ReadPage(uint64_t slot, ValuePage* page) {
  DS_SPILL_CHECK(slot < slots_.size(), "reading an unknown spill slot");
  const Record& rec = slots_[slot];
  DS_SPILL_CHECK(rec.length > 0, "reading a never-written spill slot");
  scratch_.resize(rec.length);
  std::FILE* f = EnsureOpen();
  SeekTo(f, rec.offset, /*writing=*/false);
  DS_SPILL_CHECK(std::fread(&scratch_[0], 1, rec.length, f) == rec.length,
                 "short spill read");
  stream_pos_ += rec.length;
  DS_SPILL_CHECK(DecodePage(scratch_, page), "corrupt spill record");
  return rec.length;
}

}  // namespace storage
}  // namespace dataspread
