#ifndef DATASPREAD_STORAGE_FILE_LOCK_H_
#define DATASPREAD_STORAGE_FILE_LOCK_H_

#include <string>

#include "common/status.h"

namespace dataspread {
namespace storage {

/// An advisory exclusive lock on a lock file — the double-open guard for a
/// durable `<base>.pages`/`<base>.wal` pair. Two live pagers on one pair
/// corrupt it (each believes its buffer pool and log tail are authoritative),
/// so Database acquires one of these on `<base>.wal.lock` before the pager
/// touches either file and holds it until destruction.
///
/// flock() semantics on purpose: the lock is tied to the open file
/// description, so the kernel releases it when the process exits *or
/// crashes* — a killed process never leaves the pair permanently locked, and
/// the lock file itself is inert leftover (never deleted, never read).
/// Advisory only: it protects cooperating Database instances, not arbitrary
/// writers.
class FileLock {
 public:
  FileLock() = default;
  ~FileLock() { Release(); }
  FileLock(const FileLock&) = delete;
  FileLock& operator=(const FileLock&) = delete;
  FileLock(FileLock&& other) noexcept;
  FileLock& operator=(FileLock&& other) noexcept;

  /// Creates `path` if needed and takes the exclusive lock, non-blocking.
  /// Fails with AlreadyExists when another process (or another FileLock in
  /// this one) holds it — the caller should refuse to open the database.
  Status Acquire(const std::string& path);
  /// Drops the lock if held. Idempotent; the lock file stays behind.
  void Release();

  bool held() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }

 private:
  int fd_ = -1;
  std::string path_;
};

}  // namespace storage
}  // namespace dataspread

#endif  // DATASPREAD_STORAGE_FILE_LOCK_H_
