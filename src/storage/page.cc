#include "storage/page.h"

// PageAccountant is a header-only facade over storage::Pager; this
// translation unit anchors the library.
namespace dataspread {}
