#include "storage/page.h"

// PageAccountant is header-only; this translation unit anchors the library.
namespace dataspread {}
