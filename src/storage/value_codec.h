#ifndef DATASPREAD_STORAGE_VALUE_CODEC_H_
#define DATASPREAD_STORAGE_VALUE_CODEC_H_

#include <cstdint>
#include <string>

#include "types/value.h"

namespace dataspread {
namespace storage {

/// The one binary encoding of a Value, shared by every durable surface of the
/// storage engine: SpillFile page records and WAL redo records use byte-for-
/// byte the same layout, so a redo record can be replayed straight into a
/// page and a page image logged straight out of one.
///
/// Layout per value: a tag byte (0 NULL, 1 BOOL, 2 INT, 3 REAL, 4 TEXT,
/// 5 ERROR) followed by the payload (nothing / u8 / i64 LE / f64 LE /
/// u32 length + bytes). Integers are little-endian host order — the spill
/// and WAL files are per-installation state, not interchange formats.

void EncodeValue(const Value& v, std::string* out);
/// Decodes one value at `*pos`, advancing it. Returns false (leaving `*pos`
/// unspecified) on a malformed buffer — callers treat that as corruption.
bool DecodeValue(const std::string& buf, size_t* pos, Value* out);

// ---- Little-endian scalar helpers shared by the binary file formats -------

void AppendRaw(std::string* out, const void* data, size_t n);
void AppendU16(std::string* out, uint16_t v);
void AppendU32(std::string* out, uint32_t v);
void AppendU64(std::string* out, uint64_t v);

/// Each reads a scalar at `*pos` and advances it; false = buffer too short.
bool ReadU16(const std::string& buf, size_t* pos, uint16_t* out);
bool ReadU32(const std::string& buf, size_t* pos, uint32_t* out);
bool ReadU64(const std::string& buf, size_t* pos, uint64_t* out);

/// CRC-32 (IEEE 802.3, the zlib polynomial), table-driven. Guards every WAL
/// record against torn writes and bit rot; exposed for tests.
uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0);

}  // namespace storage
}  // namespace dataspread

#endif  // DATASPREAD_STORAGE_VALUE_CODEC_H_
