#ifndef DATASPREAD_STORAGE_PAGE_H_
#define DATASPREAD_STORAGE_PAGE_H_

#include <cstddef>
#include <cstdint>
#include <unordered_set>

namespace dataspread {

/// Simulated block-device accounting.
///
/// The paper's Relational Storage Manager claim is about *disk blocks updated*
/// during schema changes. This project runs in memory, so instead of a real
/// buffer pool we account I/O against simulated 4 KiB pages: every logical
/// value slot is assigned to a page of its storage file, and reads/writes are
/// recorded. Benchmarks call BeginEpoch() around an operation and then read
/// the number of distinct pages touched/dirtied — exactly the quantity the
/// paper argues about (see DESIGN.md §2, substitution table).
///
/// Accounting uses a fixed 16-byte simulated slot per value (pointer-sized
/// payload plus null/tag bits), i.e. 256 slots per page.
class PageAccountant {
 public:
  static constexpr uint64_t kPageBytes = 4096;
  static constexpr uint64_t kValueBytes = 16;
  static constexpr uint64_t kEntriesPerPage = kPageBytes / kValueBytes;

  /// Allocates a new storage-file id (each attribute group / column / heap
  /// gets its own file so pages never alias across structures).
  uint64_t NewFile() { return next_file_id_++; }

  /// Records a read of the page holding `entry` in `file`.
  void Touch(uint64_t file, uint64_t entry) {
    if (!enabled_) return;
    ++lifetime_reads_;
    epoch_read_.insert(PageKey(file, entry));
  }

  /// Records a write of the page holding `entry` in `file`.
  void Dirty(uint64_t file, uint64_t entry) {
    if (!enabled_) return;
    ++lifetime_writes_;
    epoch_written_.insert(PageKey(file, entry));
  }

  /// Starts a fresh measurement window (clears the distinct-page sets).
  void BeginEpoch() {
    epoch_read_.clear();
    epoch_written_.clear();
  }

  /// Distinct pages read/written since BeginEpoch().
  size_t EpochPagesRead() const { return epoch_read_.size(); }
  size_t EpochPagesWritten() const { return epoch_written_.size(); }

  /// Total slot accesses since construction (not distinct).
  uint64_t lifetime_reads() const { return lifetime_reads_; }
  uint64_t lifetime_writes() const { return lifetime_writes_; }

  /// Accounting costs a hash insert per access; timing-focused benchmarks
  /// disable it.
  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

 private:
  static uint64_t PageKey(uint64_t file, uint64_t entry) {
    return (file << 40) | (entry / kEntriesPerPage);
  }

  bool enabled_ = true;
  uint64_t next_file_id_ = 1;
  uint64_t lifetime_reads_ = 0;
  uint64_t lifetime_writes_ = 0;
  std::unordered_set<uint64_t> epoch_read_;
  std::unordered_set<uint64_t> epoch_written_;
};

}  // namespace dataspread

#endif  // DATASPREAD_STORAGE_PAGE_H_
