#ifndef DATASPREAD_STORAGE_PAGE_H_
#define DATASPREAD_STORAGE_PAGE_H_

#include <cstddef>
#include <cstdint>

#include "storage/pager.h"

namespace dataspread {

/// Block-level accounting facade over the unified storage::Pager.
///
/// The paper's Relational Storage Manager claim is about *disk blocks updated*
/// during schema changes. Historically this project accounted simulated pages
/// by slot arithmetic; the cell heaps now physically live in the pager's
/// 4 KiB pages (256 slots of a simulated 16 bytes each — pointer-sized
/// payload plus null/tag bits), and this class remains as a thin compatibility
/// surface for benchmarks and tests: BeginEpoch() around an operation, then
/// read the number of distinct pages touched/dirtied — exactly the quantity
/// the paper argues about (see DESIGN.md §2, substitution table).
class PageAccountant {
 public:
  static constexpr uint64_t kPageBytes = storage::Pager::kPageBytes;
  static constexpr uint64_t kValueBytes = storage::Pager::kSlotBytes;
  static constexpr uint64_t kEntriesPerPage = storage::Pager::kSlotsPerPage;

  explicit PageAccountant(storage::Pager* pager) : pager_(pager) {}

  /// Starts a fresh measurement window (clears the distinct-page sets).
  void BeginEpoch() { pager_->BeginEpoch(); }

  /// Distinct pages read/written since BeginEpoch().
  size_t EpochPagesRead() const { return pager_->EpochPagesRead(); }
  size_t EpochPagesWritten() const { return pager_->EpochPagesWritten(); }

  /// Total slot accesses since the pager's construction (not distinct).
  /// (The full PagerStats snapshot behind these also carries the physical
  /// layer — faults/evictions/spill bytes — and, under a durable pager,
  /// the WAL counters and spill_dead_bytes; see pager().stats().)
  uint64_t lifetime_reads() const { return pager_->stats().slot_reads; }
  uint64_t lifetime_writes() const { return pager_->stats().slot_writes; }

  /// Accounting costs a hash insert per access; timing-focused benchmarks
  /// disable it. Page contents and dirty bits are maintained regardless.
  /// NOTE: the toggle is pager-wide — on a table whose pager is shared
  /// (every table of a Database), this silences accounting for *all* tables
  /// of the pool, not just this one.
  void set_enabled(bool enabled) { pager_->set_accounting_enabled(enabled); }
  bool enabled() const { return pager_->accounting_enabled(); }

  /// The underlying storage engine.
  storage::Pager& pager() { return *pager_; }
  const storage::Pager& pager() const { return *pager_; }

 private:
  storage::Pager* pager_;
};

}  // namespace dataspread

#endif  // DATASPREAD_STORAGE_PAGE_H_
