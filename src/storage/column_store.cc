#include "storage/column_store.h"

#include "storage/page_cursor.h"

namespace dataspread {

namespace {
Status CheckStorable(const Value& v) {
  if (v.is_error()) {
    return Status::TypeError("error value " + v.error_code() +
                             " cannot enter relational storage");
  }
  return Status::OK();
}
}  // namespace

ColumnStore::ColumnStore(size_t num_columns, storage::Pager* pager,
                   const storage::PagerConfig& config)
    : TableStorage(pager, config) {
  files_.reserve(num_columns);
  for (size_t i = 0; i < num_columns; ++i) {
    files_.push_back(pager_->CreateFile());
  }
}

ColumnStore::ColumnStore(storage::Pager* pager,
                         std::vector<storage::FileId> files, size_t num_rows)
    : TableStorage(pager, {}), num_rows_(num_rows), files_(std::move(files)) {
  set_retain_files(true);
}

ColumnStore::~ColumnStore() {
  if (retain_files()) return;
  for (storage::FileId f : files_) pager_->DropFile(f);
}

Result<std::unique_ptr<ColumnStore>> ColumnStore::Attach(
    const StorageManifest& manifest, uint64_t num_rows,
    storage::Pager* pager) {
  if (manifest.files.size() != manifest.num_columns) {
    return Status::Internal("column-store manifest arity mismatch");
  }
  for (storage::FileId f : manifest.files) {
    if (!pager->HasFile(f)) {
      return Status::Internal("column-store manifest names a dead file");
    }
    if (pager->FileSize(f) < num_rows) {
      return Status::Internal("recovered column heap is shorter than the "
                              "catalog's row count — durability hole");
    }
    if (pager->FileSize(f) > num_rows) pager->Truncate(f, num_rows);
  }
  return std::unique_ptr<ColumnStore>(new ColumnStore(
      pager, manifest.files, static_cast<size_t>(num_rows)));
}

StorageManifest ColumnStore::Manifest() const {
  StorageManifest m;
  m.model = StorageModel::kColumn;
  m.num_columns = static_cast<uint32_t>(files_.size());
  m.files = files_;
  return m;
}

Result<Value> ColumnStore::Get(size_t row, size_t col) const {
  DS_RETURN_IF_ERROR(CheckCell(row, col));
  return pager_->Read(files_[col], row);
}

Status ColumnStore::Set(size_t row, size_t col, Value v) {
  DS_RETURN_IF_ERROR(CheckCell(row, col));
  DS_RETURN_IF_ERROR(CheckStorable(v));
  pager_->Write(files_[col], row, std::move(v));
  return Status::OK();
}

Result<Row> ColumnStore::GetRow(size_t row) const {
  if (row >= num_rows_) return Status::OutOfRange("row " + std::to_string(row));
  Row out;
  out.reserve(files_.size());
  for (storage::FileId f : files_) {
    out.push_back(pager_->Read(f, row));
  }
  return out;
}

Status ColumnStore::GetRows(size_t start, size_t count,
                            std::vector<Row>* out) const {
  if (count == 0) return Status::OK();
  DS_RETURN_IF_ERROR(CheckRowRange(start, count));
  out->reserve(out->size() + count);
  // One cursor per attribute file, all streaming in row order: each column's
  // pages are pinned once per 256 rows instead of a chain lookup per cell.
  std::vector<storage::PageCursor> cursors;
  cursors.reserve(files_.size());
  for (storage::FileId f : files_) cursors.emplace_back(*pager_, f);
  for (size_t r = start; r < start + count; ++r) {
    Row row;
    row.reserve(files_.size());
    for (storage::PageCursor& c : cursors) {
      row.push_back(c.Read(r));
    }
    out->push_back(std::move(row));
  }
  return Status::OK();
}

Status ColumnStore::VisitRows(size_t start, size_t count,
                              const RowVisitor& visit) const {
  if (count == 0) return Status::OK();
  DS_RETURN_IF_ERROR(CheckRowRange(start, count));
  // Columns are decomposed, so the tuple is gathered — but into one reused
  // scratch, with per-column streaming cursors.
  std::vector<storage::PageCursor> cursors;
  cursors.reserve(files_.size());
  for (storage::FileId f : files_) cursors.emplace_back(*pager_, f);
  Row scratch(files_.size());
  for (size_t r = start; r < start + count; ++r) {
    for (size_t c = 0; c < files_.size(); ++c) {
      scratch[c] = cursors[c].Read(r);
    }
    visit(r, scratch.data());
  }
  return Status::OK();
}

Result<size_t> ColumnStore::AppendRow(const Row& row) {
  if (row.size() != files_.size()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " != " +
        std::to_string(files_.size()));
  }
  for (const Value& v : row) DS_RETURN_IF_ERROR(CheckStorable(v));
  size_t slot = num_rows_;
  for (size_t c = 0; c < files_.size(); ++c) {
    pager_->Write(files_[c], slot, row[c]);
  }
  num_rows_ += 1;
  return slot;
}

Result<size_t> ColumnStore::DeleteRow(size_t row) {
  if (row >= num_rows_) return Status::OutOfRange("row " + std::to_string(row));
  size_t last = num_rows_ - 1;
  if (pager_->durable()) {
    // Two strict phases — copy everything, then truncate everything — with
    // non-destructive reads: a crash mid-copy leaves every file at its old
    // size (so Table::Attach redoes the whole delete from the intact last
    // row), and any file truncated implies every copy completed. The
    // interleaved Take version below would let a torn delete corrupt the
    // moved row.
    if (row != last) {
      for (storage::FileId f : files_) {
        pager_->Write(f, row, pager_->Read(f, last));
      }
    }
    for (storage::FileId f : files_) pager_->Truncate(f, last);
    num_rows_ -= 1;
    return last;
  }
  for (storage::FileId f : files_) {
    if (row != last) {
      pager_->Write(f, row, pager_->Take(f, last));
    }
    pager_->Truncate(f, last);
  }
  num_rows_ -= 1;
  return last;
}

Status ColumnStore::AddColumn(const Value& default_value) {
  DS_RETURN_IF_ERROR(CheckStorable(default_value));
  storage::FileId f = pager_->CreateFile();
  // Bulk fill through a cursor: one pin + one dirty record per fresh page.
  storage::PageCursor(*pager_, f).Fill(0, num_rows_, default_value);
  files_.push_back(f);
  return Status::OK();
}

Status ColumnStore::DropColumn(size_t col) {
  if (col >= files_.size()) {
    return Status::OutOfRange("column " + std::to_string(col));
  }
  // Dropping a column deallocates its file; no surviving page is written.
  // Durable DDL retires it instead: the file must outlive the catalog's
  // DDL record so a crash-reopen of the pre-record state still binds it.
  if (pager_->durable()) {
    retired_files_.push_back(files_[col]);
  } else {
    pager_->DropFile(files_[col]);
  }
  files_.erase(files_.begin() + static_cast<ptrdiff_t>(col));
  return Status::OK();
}

}  // namespace dataspread
