#include "storage/column_store.h"

namespace dataspread {

namespace {
Status CheckStorable(const Value& v) {
  if (v.is_error()) {
    return Status::TypeError("error value " + v.error_code() +
                             " cannot enter relational storage");
  }
  return Status::OK();
}
}  // namespace

ColumnStore::ColumnStore(size_t num_columns, PageAccountant* accountant)
    : TableStorage(accountant) {
  columns_.reserve(num_columns);
  for (size_t i = 0; i < num_columns; ++i) {
    columns_.push_back(Column{{}, accountant_->NewFile()});
  }
}

Result<Value> ColumnStore::Get(size_t row, size_t col) const {
  DS_RETURN_IF_ERROR(CheckCell(row, col));
  accountant_->Touch(columns_[col].file, row);
  return columns_[col].values[row];
}

Status ColumnStore::Set(size_t row, size_t col, Value v) {
  DS_RETURN_IF_ERROR(CheckCell(row, col));
  DS_RETURN_IF_ERROR(CheckStorable(v));
  accountant_->Dirty(columns_[col].file, row);
  columns_[col].values[row] = std::move(v);
  return Status::OK();
}

Result<Row> ColumnStore::GetRow(size_t row) const {
  if (row >= num_rows_) return Status::OutOfRange("row " + std::to_string(row));
  Row out;
  out.reserve(columns_.size());
  for (const Column& c : columns_) {
    accountant_->Touch(c.file, row);
    out.push_back(c.values[row]);
  }
  return out;
}

Result<size_t> ColumnStore::AppendRow(const Row& row) {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " != " +
        std::to_string(columns_.size()));
  }
  for (const Value& v : row) DS_RETURN_IF_ERROR(CheckStorable(v));
  size_t slot = num_rows_;
  for (size_t c = 0; c < columns_.size(); ++c) {
    accountant_->Dirty(columns_[c].file, slot);
    columns_[c].values.push_back(row[c]);
  }
  num_rows_ += 1;
  return slot;
}

Result<size_t> ColumnStore::DeleteRow(size_t row) {
  if (row >= num_rows_) return Status::OutOfRange("row " + std::to_string(row));
  size_t last = num_rows_ - 1;
  for (Column& c : columns_) {
    if (row != last) {
      c.values[row] = std::move(c.values[last]);
      accountant_->Dirty(c.file, row);
    }
    accountant_->Dirty(c.file, last);
    c.values.pop_back();
  }
  num_rows_ -= 1;
  return last;
}

Status ColumnStore::AddColumn(const Value& default_value) {
  DS_RETURN_IF_ERROR(CheckStorable(default_value));
  Column col{{}, accountant_->NewFile()};
  col.values.assign(num_rows_, default_value);
  for (size_t r = 0; r < num_rows_; ++r) accountant_->Dirty(col.file, r);
  columns_.push_back(std::move(col));
  return Status::OK();
}

Status ColumnStore::DropColumn(size_t col) {
  if (col >= columns_.size()) {
    return Status::OutOfRange("column " + std::to_string(col));
  }
  // Dropping a column deallocates its file; no surviving page is written.
  columns_.erase(columns_.begin() + static_cast<ptrdiff_t>(col));
  return Status::OK();
}

}  // namespace dataspread
