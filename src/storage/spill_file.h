#ifndef DATASPREAD_STORAGE_SPILL_FILE_H_
#define DATASPREAD_STORAGE_SPILL_FILE_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace dataspread {
namespace storage {

class ValuePage;

/// The disk half of the bounded buffer pool: evicted (and checkpointed)
/// ValuePages live here as binary records, addressed by *spill slot*.
///
/// ## Contract with the pager (pin/dirty/LSN discipline)
///
/// The SpillFile itself is a dumb record heap; the correctness rules live in
/// how the pager drives it, and they are stated here because this file is
/// the durability boundary:
///
/// - **Evicted ⇒ clean on disk.** A page is written here (`WritePage`)
///   during eviction when it is dirty or has never been spilled, and during
///   a `FlushAll()` checkpoint for every dirty page. A non-resident page's
///   record is therefore always the authoritative copy.
/// - **WAL before data.** Under a durable pager (`PagerConfig::wal_path`),
///   every `WritePage` call is preceded by `Wal::EnsureDurable(page_lsn)`:
///   no page image reaches this file before the redo records that produced
///   it are fsynced in the WAL (flushed-LSN ≥ page_lsn — DESIGN.md §6).
/// - **Checkpoint bases are never silently lost.** In-place record rewrites
///   only happen for pages dirtied after the last checkpoint, and the first
///   post-checkpoint mutation of any page logs a full-page image to the WAL
///   — so a write torn by a crash is always recoverable from the log.
///   Records that outgrow their reserved space *relocate* (the old bytes
///   are abandoned, preserving the checkpoint-time base at its old offset).
/// - **Pinned pages never reach this file** (they are never evicted), and a
///   checkpoint writes a pinned dirty page in place without unpinning it.
///
/// ## Heap layout
///
/// Records are variable length (TEXT payloads), so the file is managed as an
/// append-heavy heap: each slot remembers its record's offset and capacity,
/// and a rewrite reuses the slot's space in place when the new encoding fits,
/// or relocates the record to the end of the file otherwise. Freed slots keep
/// their reserved space and are recycled by AllocateSlot(), so steady-state
/// workloads stop growing the file once page encodings stabilize. Space
/// abandoned by relocations and parked on free slots is `dead_bytes()` —
/// surfaced in `PagerStats::spill_dead_bytes` so compaction need is
/// observable (threshold discussion: DESIGN.md §6).
///
/// ## Lifetime
///
/// With an empty `path` the backing file is an anonymous std::tmpfile() —
/// deleted by the OS as soon as it is closed, so crash or exit leaves no
/// artifact. A named path with `durable == false` (the scratch default) is
/// created on first use and removed in the destructor. With `durable ==
/// true` the named file is *kept* across runs: it is opened preserving
/// existing bytes, never unlinked, and together with the WAL it is the
/// database's persistent state; `ExportDirectory`/`RestoreDirectory` move
/// the slot directory through the WAL's checkpoint snapshot, and `Sync()`
/// fsyncs page images during a checkpoint.
class SpillFile {
 public:
  static constexpr uint64_t kNoSlot = ~0ull;

  /// Per-slot bookkeeping, public because checkpoint snapshots serialize it.
  struct Record {
    uint64_t offset = 0;
    uint32_t capacity = 0;  // reserved bytes at offset
    uint32_t length = 0;    // live bytes; 0 = never written
  };

  /// The serializable state of the heap: what a checkpoint snapshot carries
  /// and recovery restores.
  struct DirectorySnapshot {
    std::vector<Record> slots;
    std::vector<uint64_t> free_slots;
    uint64_t end_offset = 0;
    uint64_t dead_bytes = 0;
  };

  explicit SpillFile(std::string path = "", bool durable = false);
  ~SpillFile();
  SpillFile(const SpillFile&) = delete;
  SpillFile& operator=(const SpillFile&) = delete;

  /// Reserves a slot (recycling freed ones first).
  uint64_t AllocateSlot();
  /// Returns `slot` (and its reserved file space) to the free list.
  void FreeSlot(uint64_t slot);

  /// Serializes all 256 value slots of `page` into `slot`'s record.
  /// Returns the encoded byte count (what a real pager would write).
  uint64_t WritePage(uint64_t slot, const ValuePage& page);
  /// Deserializes `slot`'s record into `page`'s value slots (header fields —
  /// pin/dirty/owner — are untouched). Returns the byte count read.
  /// The slot must have been written. Aborts on a corrupt record.
  uint64_t ReadPage(uint64_t slot, ValuePage* page);

  /// fsyncs the backing file — the checkpoint barrier between flushing page
  /// images and declaring the snapshot current. No-op before first use.
  void Sync();

  /// Copies the live slot directory out (for the checkpoint snapshot).
  DirectorySnapshot ExportDirectory() const;
  /// Adopts a checkpoint-time directory over the existing backing file.
  /// Only meaningful in durable mode, before any allocation; regions past
  /// the snapshot's end_offset (post-checkpoint writes of a crashed run)
  /// are simply reused — nothing recovery needs lives there.
  void RestoreDirectory(const DirectorySnapshot& dir);

  /// Physical size of the spill heap in bytes (high-water mark).
  uint64_t heap_bytes() const { return end_offset_; }
  /// Slots currently allocated (live records).
  size_t live_slots() const { return slots_.size() - free_slots_.size(); }
  /// Bytes of the heap no live record addresses: space abandoned by
  /// relocations plus space reserved by freed slots. The compaction signal.
  uint64_t dead_bytes() const { return dead_bytes_; }
  const std::string& path() const { return path_; }
  bool durable() const { return durable_; }

  /// Binary page encoding, exposed for tests: tag byte per value
  /// (0 NULL, 1 BOOL, 2 INT, 3 REAL, 4 TEXT, 5 ERROR) followed by the
  /// payload (u8 / i64 LE / f64 / u32 length + bytes) — the shared codec of
  /// storage/value_codec.h, byte-identical with WAL redo payloads.
  static void EncodePage(const ValuePage& page, std::string* out);
  /// Returns false on a malformed buffer.
  static bool DecodePage(const std::string& buf, ValuePage* page);

 private:
  std::FILE* EnsureOpen();
  /// Positions the stream at `offset` for a read (`writing == false`) or a
  /// write. The seek is elided when the stream is already there in the same
  /// direction — the common case for scan eviction/readahead, whose records
  /// are laid out and visited in file order, so the 256 KiB stdio buffer
  /// batches many page records into each underlying syscall.
  void SeekTo(std::FILE* f, uint64_t offset, bool writing);

  std::string path_;          // empty = anonymous tmpfile
  bool durable_ = false;      // named file survives destruction & reopens
  std::FILE* file_ = nullptr;
  std::vector<Record> slots_;
  std::vector<uint64_t> free_slots_;
  uint64_t end_offset_ = 0;
  uint64_t dead_bytes_ = 0;
  std::string scratch_;  // encode/decode buffer, reused across calls
  std::vector<char> io_buffer_;  // stdio buffer installed on open
  // Stream position tracking for seek elision. kUnknownPos forces a real
  // seek (initial state, and whenever the read/write direction flips — ISO C
  // requires a positioning call between a read and a write on update
  // streams).
  static constexpr uint64_t kUnknownPos = ~0ull;
  uint64_t stream_pos_ = kUnknownPos;
  bool stream_writing_ = false;
};

}  // namespace storage
}  // namespace dataspread

#endif  // DATASPREAD_STORAGE_SPILL_FILE_H_
