#ifndef DATASPREAD_STORAGE_SPILL_FILE_H_
#define DATASPREAD_STORAGE_SPILL_FILE_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace dataspread {
namespace storage {

class ValuePage;

/// The disk half of the bounded buffer pool: evicted (and checkpointed)
/// ValuePages live here as binary records, addressed by *spill slot*.
///
/// Records are variable length (TEXT payloads), so the file is managed as an
/// append-heavy heap: each slot remembers its record's offset and capacity,
/// and a rewrite reuses the slot's space in place when the new encoding fits,
/// or relocates the record to the end of the file otherwise. Freed slots keep
/// their reserved space and are recycled by AllocateSlot(), so steady-state
/// workloads stop growing the file once page encodings stabilize.
///
/// With an empty `path` the backing file is an anonymous std::tmpfile() —
/// deleted by the OS as soon as it is closed, so crash or exit leaves no
/// artifact. A named path is created on first use and removed in the
/// destructor; it exists only for debugging/inspection during a run.
class SpillFile {
 public:
  static constexpr uint64_t kNoSlot = ~0ull;

  explicit SpillFile(std::string path = "");
  ~SpillFile();
  SpillFile(const SpillFile&) = delete;
  SpillFile& operator=(const SpillFile&) = delete;

  /// Reserves a slot (recycling freed ones first).
  uint64_t AllocateSlot();
  /// Returns `slot` (and its reserved file space) to the free list.
  void FreeSlot(uint64_t slot);

  /// Serializes all 256 value slots of `page` into `slot`'s record.
  /// Returns the encoded byte count (what a real pager would write).
  uint64_t WritePage(uint64_t slot, const ValuePage& page);
  /// Deserializes `slot`'s record into `page`'s value slots (header fields —
  /// pin/dirty/owner — are untouched). Returns the byte count read.
  /// The slot must have been written. Aborts on a corrupt record.
  uint64_t ReadPage(uint64_t slot, ValuePage* page);

  /// Physical size of the spill heap in bytes (high-water mark).
  uint64_t heap_bytes() const { return end_offset_; }
  /// Slots currently allocated (live records).
  size_t live_slots() const { return slots_.size() - free_slots_.size(); }
  const std::string& path() const { return path_; }

  /// Binary page encoding, exposed for tests: tag byte per value
  /// (0 NULL, 1 BOOL, 2 INT, 3 REAL, 4 TEXT, 5 ERROR) followed by the
  /// payload (u8 / i64 LE / f64 / u32 length + bytes).
  static void EncodePage(const ValuePage& page, std::string* out);
  /// Returns false on a malformed buffer.
  static bool DecodePage(const std::string& buf, ValuePage* page);

 private:
  struct Record {
    uint64_t offset = 0;
    uint32_t capacity = 0;  // reserved bytes at offset
    uint32_t length = 0;    // live bytes; 0 = never written
  };

  std::FILE* EnsureOpen();
  /// Positions the stream at `offset` for a read (`writing == false`) or a
  /// write. The seek is elided when the stream is already there in the same
  /// direction — the common case for scan eviction/readahead, whose records
  /// are laid out and visited in file order, so the 256 KiB stdio buffer
  /// batches many page records into each underlying syscall.
  void SeekTo(std::FILE* f, uint64_t offset, bool writing);

  std::string path_;          // empty = anonymous tmpfile
  std::FILE* file_ = nullptr;
  std::vector<Record> slots_;
  std::vector<uint64_t> free_slots_;
  uint64_t end_offset_ = 0;
  std::string scratch_;  // encode/decode buffer, reused across calls
  std::vector<char> io_buffer_;  // stdio buffer installed on open
  // Stream position tracking for seek elision. kUnknownPos forces a real
  // seek (initial state, and whenever the read/write direction flips — ISO C
  // requires a positioning call between a read and a write on update
  // streams).
  static constexpr uint64_t kUnknownPos = ~0ull;
  uint64_t stream_pos_ = kUnknownPos;
  bool stream_writing_ = false;
};

}  // namespace storage
}  // namespace dataspread

#endif  // DATASPREAD_STORAGE_SPILL_FILE_H_
