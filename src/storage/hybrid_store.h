#ifndef DATASPREAD_STORAGE_HYBRID_STORE_H_
#define DATASPREAD_STORAGE_HYBRID_STORE_H_

#include <vector>

#include "storage/table_storage.h"

namespace dataspread {

/// The paper's Relational Storage Manager: a hybrid of row- and column-store
/// organized as **attribute groups** (§3).
///
/// Tuples are decomposed along groups of attributes; each group is one pager
/// file, row-major within the group (row-store locality) and independent
/// across groups (column-store independence). The initial schema forms one
/// group; every ALTER TABLE ADD COLUMN allocates a *fresh single-attribute
/// group*, so a schema change writes only the new group's pages — "radically
/// reducing the disk blocks that need an update during a schema change".
///
/// Reorganize() merges all groups back into one for scan locality after a
/// burst of schema changes (an offline maintenance step; listed as a design
/// extension in DESIGN.md).
class HybridStore : public TableStorage {
 public:
  HybridStore(size_t num_columns, storage::Pager* pager,
           const storage::PagerConfig& config = {});
  ~HybridStore() override;

  /// Rebinds to recovered attribute-group files (manifest.groups carries the
  /// group→file structure and each group's column list); see AttachStorage
  /// for the num_rows / truncation contract.
  static Result<std::unique_ptr<HybridStore>> Attach(
      const StorageManifest& manifest, uint64_t num_rows,
      storage::Pager* pager);

  StorageManifest Manifest() const override;

  StorageModel model() const override { return StorageModel::kHybrid; }
  size_t num_rows() const override { return num_rows_; }
  size_t num_columns() const override { return col_map_.size(); }

  Result<Value> Get(size_t row, size_t col) const override;
  Status Set(size_t row, size_t col, Value v) override;
  Result<Row> GetRow(size_t row) const override;
  Status GetRows(size_t start, size_t count,
                 std::vector<Row>* out) const override;
  Status VisitRows(size_t start, size_t count,
                   const RowVisitor& visit) const override;
  Result<size_t> AppendRow(const Row& row) override;
  Result<size_t> DeleteRow(size_t row) override;
  Status AddColumn(const Value& default_value) override;
  Status DropColumn(size_t col) override;

  /// Number of attribute groups currently backing the table.
  size_t num_groups() const { return groups_.size(); }

  /// Merges every attribute group into a single row-major group, restoring
  /// whole-tuple page locality. Rewrites the table (dirty ≈ all pages).
  Status Reorganize();

 private:
  /// Attach path: adopts an existing group structure instead of creating it.
  HybridStore(storage::Pager* pager, size_t num_rows);

  struct Group {
    size_t width = 0;            // attributes in this group
    storage::FileId file = 0;    // row-major page chain: row * width + offset
  };
  struct ColumnLoc {
    size_t group;
    size_t offset;
  };

  uint64_t Entry(const Group& g, size_t row, size_t offset) const {
    return row * g.width + offset;
  }
  /// Removes `offset` from group `g`, compacting in place (group rewrite).
  void CompactGroupWithoutOffset(size_t group_index, size_t offset);

  size_t num_rows_ = 0;
  std::vector<Group> groups_;
  std::vector<ColumnLoc> col_map_;  // logical column -> (group, offset)
};

}  // namespace dataspread

#endif  // DATASPREAD_STORAGE_HYBRID_STORE_H_
