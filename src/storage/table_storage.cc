#include "storage/table_storage.h"

#include "storage/column_store.h"
#include "storage/hybrid_store.h"
#include "storage/rcv_store.h"
#include "storage/row_store.h"

namespace dataspread {

const char* StorageModelName(StorageModel model) {
  switch (model) {
    case StorageModel::kRow:
      return "row";
    case StorageModel::kColumn:
      return "column";
    case StorageModel::kRcv:
      return "rcv";
    case StorageModel::kHybrid:
      return "hybrid";
  }
  return "unknown";
}

Status TableStorage::GetRows(size_t start, size_t count,
                             std::vector<Row>* out) const {
  if (count == 0) return Status::OK();
  DS_RETURN_IF_ERROR(CheckRowRange(start, count));
  out->reserve(out->size() + count);
  for (size_t r = start; r < start + count; ++r) {
    auto row = GetRow(r);
    DS_RETURN_IF_ERROR(row.status());
    out->push_back(std::move(row).ValueOrDie());
  }
  return Status::OK();
}

Status TableStorage::VisitRows(size_t start, size_t count,
                               const RowVisitor& visit) const {
  if (count == 0) return Status::OK();
  DS_RETURN_IF_ERROR(CheckRowRange(start, count));
  for (size_t r = start; r < start + count; ++r) {
    auto row = GetRow(r);
    DS_RETURN_IF_ERROR(row.status());
    visit(r, row.value().data());
  }
  return Status::OK();
}

TableStorage::TableStorage(storage::Pager* pager,
                           const storage::PagerConfig& config)
    : owned_pager_(pager == nullptr ? std::make_unique<storage::Pager>(config)
                                    : nullptr),
      pager_(pager == nullptr ? owned_pager_.get() : pager),
      accountant_(pager_) {}

std::unique_ptr<TableStorage> CreateStorage(StorageModel model,
                                            size_t num_columns,
                                            storage::Pager* pager,
                                            const storage::PagerConfig& config) {
  switch (model) {
    case StorageModel::kRow:
      return std::make_unique<RowStore>(num_columns, pager, config);
    case StorageModel::kColumn:
      return std::make_unique<ColumnStore>(num_columns, pager, config);
    case StorageModel::kRcv:
      return std::make_unique<RcvStore>(num_columns, pager, config);
    case StorageModel::kHybrid:
      return std::make_unique<HybridStore>(num_columns, pager, config);
  }
  return nullptr;
}

}  // namespace dataspread
