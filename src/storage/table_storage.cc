#include "storage/table_storage.h"

#include "storage/column_store.h"
#include "storage/hybrid_store.h"
#include "storage/rcv_store.h"
#include "storage/row_store.h"

namespace dataspread {

const char* StorageModelName(StorageModel model) {
  switch (model) {
    case StorageModel::kRow:
      return "row";
    case StorageModel::kColumn:
      return "column";
    case StorageModel::kRcv:
      return "rcv";
    case StorageModel::kHybrid:
      return "hybrid";
  }
  return "unknown";
}

TableStorage::TableStorage(PageAccountant* accountant) {
  if (accountant == nullptr) {
    owned_accountant_ = std::make_unique<PageAccountant>();
    accountant_ = owned_accountant_.get();
  } else {
    accountant_ = accountant;
  }
}

std::unique_ptr<TableStorage> CreateStorage(StorageModel model,
                                            size_t num_columns,
                                            PageAccountant* accountant) {
  switch (model) {
    case StorageModel::kRow:
      return std::make_unique<RowStore>(num_columns, accountant);
    case StorageModel::kColumn:
      return std::make_unique<ColumnStore>(num_columns, accountant);
    case StorageModel::kRcv:
      return std::make_unique<RcvStore>(num_columns, accountant);
    case StorageModel::kHybrid:
      return std::make_unique<HybridStore>(num_columns, accountant);
  }
  return nullptr;
}

}  // namespace dataspread
