#include "storage/table_storage.h"

#include <algorithm>
#include <utility>

#include "storage/column_store.h"
#include "storage/hybrid_store.h"
#include "storage/rcv_store.h"
#include "storage/row_store.h"

namespace dataspread {

const char* StorageModelName(StorageModel model) {
  switch (model) {
    case StorageModel::kRow:
      return "row";
    case StorageModel::kColumn:
      return "column";
    case StorageModel::kRcv:
      return "rcv";
    case StorageModel::kHybrid:
      return "hybrid";
  }
  return "unknown";
}

Status TableStorage::GetRows(size_t start, size_t count,
                             std::vector<Row>* out) const {
  if (count == 0) return Status::OK();
  DS_RETURN_IF_ERROR(CheckRowRange(start, count));
  out->reserve(out->size() + count);
  for (size_t r = start; r < start + count; ++r) {
    auto row = GetRow(r);
    DS_RETURN_IF_ERROR(row.status());
    out->push_back(std::move(row).ValueOrDie());
  }
  return Status::OK();
}

Status TableStorage::VisitRows(size_t start, size_t count,
                               const RowVisitor& visit) const {
  if (count == 0) return Status::OK();
  DS_RETURN_IF_ERROR(CheckRowRange(start, count));
  for (size_t r = start; r < start + count; ++r) {
    auto row = GetRow(r);
    DS_RETURN_IF_ERROR(row.status());
    visit(r, row.value().data());
  }
  return Status::OK();
}

TableStorage::TableStorage(storage::Pager* pager,
                           const storage::PagerConfig& config)
    : owned_pager_(pager == nullptr ? std::make_unique<storage::Pager>(config)
                                    : nullptr),
      pager_(pager == nullptr ? owned_pager_.get() : pager),
      accountant_(pager_) {}

std::unique_ptr<TableStorage> CreateStorage(StorageModel model,
                                            size_t num_columns,
                                            storage::Pager* pager,
                                            const storage::PagerConfig& config) {
  switch (model) {
    case StorageModel::kRow:
      return std::make_unique<RowStore>(num_columns, pager, config);
    case StorageModel::kColumn:
      return std::make_unique<ColumnStore>(num_columns, pager, config);
    case StorageModel::kRcv:
      return std::make_unique<RcvStore>(num_columns, pager, config);
    case StorageModel::kHybrid:
      return std::make_unique<HybridStore>(num_columns, pager, config);
  }
  return nullptr;
}

Result<uint64_t> ManifestRows(const StorageManifest& manifest,
                              const storage::Pager& pager) {
  constexpr uint64_t kUnbounded = ~uint64_t{0};
  auto file_rows = [&pager](uint64_t file,
                            uint64_t width) -> Result<uint64_t> {
    if (!pager.HasFile(file)) {
      return Status::Internal("storage manifest names a dead pager file");
    }
    return pager.FileSize(file) / width;  // floor: partial rows do not count
  };
  switch (manifest.model) {
    case StorageModel::kRow: {
      if (manifest.files.size() != 1) {
        return Status::Internal("row-store manifest must name one heap");
      }
      if (manifest.num_columns == 0) return kUnbounded;
      return file_rows(manifest.files[0], manifest.num_columns);
    }
    case StorageModel::kColumn: {
      // Every column file holds exactly one slot per row; the shortest one
      // bounds the fully persisted row count (a statement torn mid-append
      // leaves a ragged edge).
      uint64_t rows = kUnbounded;
      for (uint64_t f : manifest.files) {
        DS_ASSIGN_OR_RETURN(uint64_t r, file_rows(f, 1));
        rows = std::min(rows, r);
      }
      return rows;
    }
    case StorageModel::kRcv:
      // Only non-NULL cells materialize: file sizes cannot bound the row
      // count. The catalog's order file is the authority.
      return kUnbounded;
    case StorageModel::kHybrid: {
      uint64_t rows = kUnbounded;
      for (const StorageManifest::Group& g : manifest.groups) {
        if (g.width == 0) {
          return Status::Internal("hybrid manifest group of width zero");
        }
        DS_ASSIGN_OR_RETURN(uint64_t r, file_rows(g.file, g.width));
        rows = std::min(rows, r);
      }
      return rows;
    }
  }
  return Status::Internal("unknown storage model in manifest");
}

Result<std::unique_ptr<TableStorage>> AttachStorage(
    const StorageManifest& manifest, uint64_t num_rows,
    storage::Pager* pager) {
  switch (manifest.model) {
    case StorageModel::kRow: {
      DS_ASSIGN_OR_RETURN(std::unique_ptr<RowStore> s,
                          RowStore::Attach(manifest, num_rows, pager));
      return std::unique_ptr<TableStorage>(std::move(s));
    }
    case StorageModel::kColumn: {
      DS_ASSIGN_OR_RETURN(std::unique_ptr<ColumnStore> s,
                          ColumnStore::Attach(manifest, num_rows, pager));
      return std::unique_ptr<TableStorage>(std::move(s));
    }
    case StorageModel::kRcv: {
      DS_ASSIGN_OR_RETURN(std::unique_ptr<RcvStore> s,
                          RcvStore::Attach(manifest, num_rows, pager));
      return std::unique_ptr<TableStorage>(std::move(s));
    }
    case StorageModel::kHybrid: {
      DS_ASSIGN_OR_RETURN(std::unique_ptr<HybridStore> s,
                          HybridStore::Attach(manifest, num_rows, pager));
      return std::unique_ptr<TableStorage>(std::move(s));
    }
  }
  return Status::Internal("unknown storage model in manifest");
}

}  // namespace dataspread
