#include "storage/page_cursor.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <utility>

// Same policy as the pager's own checks: misuse aborts loudly rather than
// silently corrupting a recycled frame.
#define DS_CURSOR_CHECK(cond, msg)                                    \
  do {                                                                \
    if (!(cond)) {                                                    \
      std::fprintf(stderr, "storage::PageCursor check failed: %s\n",  \
                   (msg));                                            \
      std::abort();                                                   \
    }                                                                 \
  } while (0)

namespace dataspread {
namespace storage {

PageCursor::PageCursor(Pager& pager, FileId file)
    : pager_(&pager), file_(file) {
  std::lock_guard<std::recursive_mutex> lock(pager.mu_);
  chain_ = &pager.ChainOrDie(file);
}

PageCursor::PageCursor(PageCursor&& other) noexcept
    : pager_(other.pager_),
      file_(other.file_),
      chain_(other.chain_),
      page_(other.page_),
      page_index_(other.page_index_),
      base_(other.base_),
      frame_(other.frame_),
      frame_latch_(other.frame_latch_),
      latch_(other.latch_),
      seq_(other.seq_),
      counted_read_(other.counted_read_),
      counted_write_(other.counted_write_),
      pending_reads_(other.pending_reads_),
      pending_writes_(other.pending_writes_) {
  other.page_ = nullptr;   // the pin moved with us
  other.latch_ = nullptr;  // so did the data latch
  other.pending_reads_ = 0;   // and the unflushed counts
  other.pending_writes_ = 0;
}

PageCursor& PageCursor::operator=(PageCursor&& other) noexcept {
  if (this != &other) {
    Release();
    pager_ = other.pager_;
    file_ = other.file_;
    chain_ = other.chain_;
    page_ = other.page_;
    page_index_ = other.page_index_;
    base_ = other.base_;
    frame_ = other.frame_;
    frame_latch_ = other.frame_latch_;
    latch_ = other.latch_;
    seq_ = other.seq_;
    counted_read_ = other.counted_read_;
    counted_write_ = other.counted_write_;
    pending_reads_ = other.pending_reads_;
    pending_writes_ = other.pending_writes_;
    other.page_ = nullptr;
    other.latch_ = nullptr;
    other.pending_reads_ = 0;
    other.pending_writes_ = 0;
  }
  return *this;
}

void PageCursor::LatchData() {
  if (latch_ != nullptr) return;
  // The pin (taken under the structural latch in Seek) keeps the frame from
  // being evicted or recycled, so latching it afterwards without the
  // structural latch is safe. The latch *pointer* was resolved in Seek,
  // under the structural latch — deque elements never move, but indexing
  // the deque here would race with its growth.
  latch_ = frame_latch_;
  latch_->lock_shared();
}

void PageCursor::UnlatchData() {
  if (latch_ == nullptr) return;
  latch_->unlock_shared();
  latch_ = nullptr;
}

void PageCursor::Release() {
  if (page_ == nullptr) return;
  FlushCounts();
  UnlatchData();  // latch order: data latch goes before the structural latch
  std::lock_guard<std::recursive_mutex> lock(pager_->mu_);
  page_->pin_count_ -= 1;
  page_ = nullptr;
}

void PageCursor::Seek(uint64_t page_index, bool grow) {
  FlushCounts();  // the counts of the page being left merge at drain time
  UnlatchData();  // never enter the pager holding a data latch
  Pager& p = *pager_;
  std::lock_guard<std::recursive_mutex> lock(p.mu_);
  if (page_ != nullptr) {
    page_->pin_count_ -= 1;
    page_ = nullptr;
  }
  // Cursor-local sequential detection: point lookups through the slot APIs
  // never touch this detector, so an interleaved scan keeps its
  // classification.
  p.mount_sequential_ = seq_.Note(page_index);
  if (grow) {
    p.EnsureCapacity(file_, *chain_, page_index * Pager::kSlotsPerPage);
  } else {
    DS_CURSOR_CHECK(page_index < chain_->pages.size(),
                    "cursor access past file end");
  }
  ValuePage& page = p.PageAt(file_, *chain_, page_index);
  p.MaybePromote(page);
  page.pin_count_ += 1;
  page.referenced_ = true;
  p.pins_.fetch_add(1, std::memory_order_relaxed);
  page_ = &page;
  frame_ = chain_->pages[page_index].frame;
  frame_latch_ = &p.frame_latches_[frame_];
  page_index_ = page_index;
  base_ = page_index * Pager::kSlotsPerPage;
  counted_read_ = false;
  counted_write_ = false;
}

void PageCursor::CountRead(uint64_t count) {
  Pager& p = *pager_;
  if (!p.accounting_.load(std::memory_order_relaxed)) return;
  pending_reads_ += count;  // merged into the shared atomics at drain time
  if (!counted_read_) {
    p.NoteEpochRead(file_, page_index_);
    counted_read_ = true;
  }
}

void PageCursor::CountWrite(uint64_t count) {
  Pager& p = *pager_;
  if (!p.accounting_.load(std::memory_order_relaxed)) return;
  pending_writes_ += count;
  if (!counted_write_) {
    p.NoteEpochWrite(file_, page_index_);
    counted_write_ = true;
  }
}

void PageCursor::FlushCounts() {
  Pager& p = *pager_;
  if (pending_reads_ != 0) {
    p.slot_reads_.fetch_add(pending_reads_, std::memory_order_relaxed);
    pending_reads_ = 0;
  }
  if (pending_writes_ != 0) {
    p.slot_writes_.fetch_add(pending_writes_, std::memory_order_relaxed);
    pending_writes_ = 0;
  }
}

const Value& PageCursor::Read(uint64_t slot) {
  uint64_t page_index = slot / Pager::kSlotsPerPage;
  if (page_ == nullptr || page_index != page_index_) {
    Seek(page_index, /*grow=*/false);
  }
  LatchData();
  CountRead();
  return page_->slot(slot - base_);
}

const Value* PageCursor::ReadSpan(uint64_t slot, uint64_t count) {
  uint64_t page_index = slot / Pager::kSlotsPerPage;
  DS_CURSOR_CHECK(count > 0 &&
                      (slot + count - 1) / Pager::kSlotsPerPage == page_index,
                  "ReadSpan straddles a page boundary");
  if (page_ == nullptr || page_index != page_index_) {
    Seek(page_index, /*grow=*/false);
  }
  LatchData();  // held until the cursor leaves the page: the span is stable
  CountRead(count);
  return &page_->slot(slot - base_);
}

void PageCursor::Write(uint64_t slot, Value v) {
  uint64_t page_index = slot / Pager::kSlotsPerPage;
  if (page_ == nullptr || page_index != page_index_) {
    Seek(page_index, /*grow=*/true);
  }
  UnlatchData();
  Pager& p = *pager_;
  std::lock_guard<std::recursive_mutex> lock(p.mu_);
  // Exclusive data latch only for the mutation itself: concurrent readers
  // of *this* page wait; readers elsewhere are untouched. Safe to block
  // here while holding the structural latch — reader cursors release their
  // data latch before every structural-latch acquisition.
  std::unique_lock<std::shared_mutex> frame_latch(*frame_latch_);
  // Dirty eagerly (not at unpin) so a FlushAll() mid-cursor checkpoints
  // pending writes too.
  page_->dirty_ = true;
  if (slot >= chain_->size) chain_->size = slot + 1;
  CountWrite();
  page_->slot(slot - base_) = std::move(v);
  p.LogPageMutation(file_, *chain_, page_index_, slot - base_, 1);
}

Value PageCursor::Take(uint64_t slot) {
  uint64_t page_index = slot / Pager::kSlotsPerPage;
  if (page_ == nullptr || page_index != page_index_) {
    Seek(page_index, /*grow=*/false);
  }
  UnlatchData();
  Pager& p = *pager_;
  std::lock_guard<std::recursive_mutex> lock(p.mu_);
  std::unique_lock<std::shared_mutex> frame_latch(*frame_latch_);
  page_->dirty_ = true;  // the slot changes; same rationale as Pager::Take
  CountRead();
  Value out = std::exchange(page_->slot(slot - base_), Value::Null());
  p.LogPageMutation(file_, *chain_, page_index_, slot - base_, 1);
  return out;
}

void PageCursor::ReadRange(uint64_t start, uint64_t count, Row* out) {
  if (count == 0) return;
  out->reserve(out->size() + count);
  uint64_t s = start;
  const uint64_t end = start + count;
  while (s < end) {
    uint64_t page_index = s / Pager::kSlotsPerPage;
    if (page_ == nullptr || page_index != page_index_) {
      Seek(page_index, /*grow=*/false);
    }
    LatchData();
    uint64_t page_end = std::min(end, base_ + Pager::kSlotsPerPage);
    CountRead(page_end - s);
    for (; s < page_end; ++s) {
      out->push_back(page_->slot(s - base_));
    }
  }
  FlushCounts();  // a bulk op is a drain point: its counts land at return
}

void PageCursor::WriteRange(uint64_t start, const Value* values,
                            uint64_t count) {
  if (count == 0) return;
  uint64_t s = start;
  const uint64_t end = start + count;
  while (s < end) {
    uint64_t page_index = s / Pager::kSlotsPerPage;
    if (page_ == nullptr || page_index != page_index_) {
      Seek(page_index, /*grow=*/true);
    }
    UnlatchData();
    Pager& p = *pager_;
    std::lock_guard<std::recursive_mutex> lock(p.mu_);
    std::unique_lock<std::shared_mutex> frame_latch(*frame_latch_);
    page_->dirty_ = true;
    uint64_t page_end = std::min(end, base_ + Pager::kSlotsPerPage);
    CountWrite(page_end - s);
    uint64_t seg_start = s;
    for (; s < page_end; ++s) {
      page_->slot(s - base_) = values[s - start];
    }
    // Same per-segment size rule as Pager::WriteRange: every redo record is
    // a self-consistent prefix state.
    if (s > chain_->size) chain_->size = s;
    p.LogPageMutation(file_, *chain_, page_index_, seg_start - base_,
                      s - seg_start);
  }
  FlushCounts();
}

void PageCursor::Fill(uint64_t start, uint64_t count, const Value& v) {
  if (count == 0) return;
  uint64_t s = start;
  const uint64_t end = start + count;
  while (s < end) {
    uint64_t page_index = s / Pager::kSlotsPerPage;
    if (page_ == nullptr || page_index != page_index_) {
      Seek(page_index, /*grow=*/true);
    }
    UnlatchData();
    Pager& p = *pager_;
    std::lock_guard<std::recursive_mutex> lock(p.mu_);
    std::unique_lock<std::shared_mutex> frame_latch(*frame_latch_);
    page_->dirty_ = true;
    uint64_t page_end = std::min(end, base_ + Pager::kSlotsPerPage);
    CountWrite(page_end - s);
    uint64_t seg_start = s;
    for (; s < page_end; ++s) {
      page_->slot(s - base_) = v;
    }
    if (s > chain_->size) chain_->size = s;
    p.LogPageMutation(file_, *chain_, page_index_, seg_start - base_,
                      s - seg_start);
  }
  FlushCounts();
}

}  // namespace storage
}  // namespace dataspread
