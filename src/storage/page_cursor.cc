#include "storage/page_cursor.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <utility>

// Same policy as the pager's own checks: misuse aborts loudly rather than
// silently corrupting a recycled frame.
#define DS_CURSOR_CHECK(cond, msg)                                    \
  do {                                                                \
    if (!(cond)) {                                                    \
      std::fprintf(stderr, "storage::PageCursor check failed: %s\n",  \
                   (msg));                                            \
      std::abort();                                                   \
    }                                                                 \
  } while (0)

namespace dataspread {
namespace storage {

PageCursor::PageCursor(Pager& pager, FileId file)
    : pager_(&pager), file_(file), chain_(&pager.ChainOrDie(file)) {}

PageCursor::PageCursor(PageCursor&& other) noexcept
    : pager_(other.pager_),
      file_(other.file_),
      chain_(other.chain_),
      page_(other.page_),
      page_index_(other.page_index_),
      base_(other.base_),
      seq_(other.seq_),
      counted_read_(other.counted_read_),
      counted_write_(other.counted_write_) {
  other.page_ = nullptr;  // the pin moved with us
}

PageCursor& PageCursor::operator=(PageCursor&& other) noexcept {
  if (this != &other) {
    Release();
    pager_ = other.pager_;
    file_ = other.file_;
    chain_ = other.chain_;
    page_ = other.page_;
    page_index_ = other.page_index_;
    base_ = other.base_;
    seq_ = other.seq_;
    counted_read_ = other.counted_read_;
    counted_write_ = other.counted_write_;
    other.page_ = nullptr;
  }
  return *this;
}

void PageCursor::Release() {
  if (page_ == nullptr) return;
  page_->pin_count_ -= 1;
  page_ = nullptr;
}

void PageCursor::Seek(uint64_t page_index, bool grow) {
  Release();
  Pager& p = *pager_;
  // Cursor-local sequential detection: point lookups through the slot APIs
  // never touch this detector, so an interleaved scan keeps its
  // classification.
  p.mount_sequential_ = seq_.Note(page_index);
  if (grow) {
    p.EnsureCapacity(file_, *chain_, page_index * Pager::kSlotsPerPage);
  } else {
    DS_CURSOR_CHECK(page_index < chain_->pages.size(),
                    "cursor access past file end");
  }
  ValuePage& page = p.PageAt(file_, *chain_, page_index);
  p.MaybePromote(page);
  page.pin_count_ += 1;
  page.referenced_ = true;
  p.stats_.pins += 1;
  page_ = &page;
  page_index_ = page_index;
  base_ = page_index * Pager::kSlotsPerPage;
  counted_read_ = false;
  counted_write_ = false;
}

void PageCursor::CountRead(uint64_t count) {
  if (!pager_->accounting_) return;
  pager_->stats_.slot_reads += count;
  if (!counted_read_) {
    pager_->epoch_read_.insert(PageKey{file_, page_index_});
    counted_read_ = true;
  }
}

void PageCursor::CountWrite(uint64_t count) {
  if (!pager_->accounting_) return;
  pager_->stats_.slot_writes += count;
  if (!counted_write_) {
    pager_->epoch_written_.insert(PageKey{file_, page_index_});
    counted_write_ = true;
  }
}

const Value& PageCursor::Read(uint64_t slot) {
  uint64_t page_index = slot / Pager::kSlotsPerPage;
  if (page_ == nullptr || page_index != page_index_) {
    Seek(page_index, /*grow=*/false);
  }
  CountRead();
  return page_->slot(slot - base_);
}

const Value* PageCursor::ReadSpan(uint64_t slot, uint64_t count) {
  uint64_t page_index = slot / Pager::kSlotsPerPage;
  DS_CURSOR_CHECK(count > 0 &&
                      (slot + count - 1) / Pager::kSlotsPerPage == page_index,
                  "ReadSpan straddles a page boundary");
  if (page_ == nullptr || page_index != page_index_) {
    Seek(page_index, /*grow=*/false);
  }
  CountRead(count);
  return &page_->slot(slot - base_);
}

void PageCursor::Write(uint64_t slot, Value v) {
  uint64_t page_index = slot / Pager::kSlotsPerPage;
  if (page_ == nullptr || page_index != page_index_) {
    Seek(page_index, /*grow=*/true);
  }
  // Dirty eagerly (not at unpin) so a FlushAll() mid-cursor checkpoints
  // pending writes too.
  page_->dirty_ = true;
  if (slot >= chain_->size) chain_->size = slot + 1;
  CountWrite();
  page_->slot(slot - base_) = std::move(v);
  pager_->LogPageMutation(file_, *chain_, page_index_, slot - base_, 1);
}

Value PageCursor::Take(uint64_t slot) {
  uint64_t page_index = slot / Pager::kSlotsPerPage;
  if (page_ == nullptr || page_index != page_index_) {
    Seek(page_index, /*grow=*/false);
  }
  page_->dirty_ = true;  // the slot changes; same rationale as Pager::Take
  CountRead();
  Value out = std::exchange(page_->slot(slot - base_), Value::Null());
  pager_->LogPageMutation(file_, *chain_, page_index_, slot - base_, 1);
  return out;
}

void PageCursor::ReadRange(uint64_t start, uint64_t count, Row* out) {
  if (count == 0) return;
  out->reserve(out->size() + count);
  uint64_t s = start;
  const uint64_t end = start + count;
  while (s < end) {
    uint64_t page_index = s / Pager::kSlotsPerPage;
    if (page_ == nullptr || page_index != page_index_) {
      Seek(page_index, /*grow=*/false);
    }
    uint64_t page_end = std::min(end, base_ + Pager::kSlotsPerPage);
    CountRead(page_end - s);
    for (; s < page_end; ++s) {
      out->push_back(page_->slot(s - base_));
    }
  }
}

void PageCursor::WriteRange(uint64_t start, const Value* values,
                            uint64_t count) {
  if (count == 0) return;
  uint64_t s = start;
  const uint64_t end = start + count;
  while (s < end) {
    uint64_t page_index = s / Pager::kSlotsPerPage;
    if (page_ == nullptr || page_index != page_index_) {
      Seek(page_index, /*grow=*/true);
    }
    page_->dirty_ = true;
    uint64_t page_end = std::min(end, base_ + Pager::kSlotsPerPage);
    CountWrite(page_end - s);
    uint64_t seg_start = s;
    for (; s < page_end; ++s) {
      page_->slot(s - base_) = values[s - start];
    }
    // Same per-segment size rule as Pager::WriteRange: every redo record is
    // a self-consistent prefix state.
    if (s > chain_->size) chain_->size = s;
    pager_->LogPageMutation(file_, *chain_, page_index_, seg_start - base_,
                            s - seg_start);
  }
}

void PageCursor::Fill(uint64_t start, uint64_t count, const Value& v) {
  if (count == 0) return;
  uint64_t s = start;
  const uint64_t end = start + count;
  while (s < end) {
    uint64_t page_index = s / Pager::kSlotsPerPage;
    if (page_ == nullptr || page_index != page_index_) {
      Seek(page_index, /*grow=*/true);
    }
    page_->dirty_ = true;
    uint64_t page_end = std::min(end, base_ + Pager::kSlotsPerPage);
    CountWrite(page_end - s);
    uint64_t seg_start = s;
    for (; s < page_end; ++s) {
      page_->slot(s - base_) = v;
    }
    if (s > chain_->size) chain_->size = s;
    pager_->LogPageMutation(file_, *chain_, page_index_, seg_start - base_,
                            s - seg_start);
  }
}

}  // namespace storage
}  // namespace dataspread
