#include "storage/pager.h"

#include <cstdio>
#include <cstdlib>
#include <utility>

// API-misuse checks stay on in release builds: the pager recycles frames, so
// an out-of-range access or a freed-while-pinned page would otherwise corrupt
// another file's data silently. One predictable branch per call.
#define DS_PAGER_CHECK(cond, msg)                                  \
  do {                                                             \
    if (!(cond)) {                                                 \
      std::fprintf(stderr, "storage::Pager check failed: %s\n",    \
                   (msg));                                         \
      std::abort();                                                \
    }                                                              \
  } while (0)

namespace dataspread {
namespace storage {

FileId Pager::CreateFile() {
  FileId id = next_file_id_++;
  files_.emplace(id, FileChain{});
  return id;
}

Pager::FileChain& Pager::ChainOrDie(FileId file) {
  auto it = files_.find(file);
  DS_PAGER_CHECK(it != files_.end(), "unknown storage file");
  return it->second;
}

const Pager::FileChain& Pager::ChainOrDie(FileId file) const {
  auto it = files_.find(file);
  DS_PAGER_CHECK(it != files_.end(), "unknown storage file");
  return it->second;
}

size_t Pager::FilePages(FileId file) const {
  return ChainOrDie(file).pages.size();
}

uint64_t Pager::FileSize(FileId file) const { return ChainOrDie(file).size; }

void Pager::FreePage(PageId id) {
  ValuePage& page = *page_table_[id];
  DS_PAGER_CHECK(page.pin_count_ == 0, "freeing a pinned page");
  for (Value& v : page.slots_) v = Value::Null();
  page.file_ = 0;
  page.index_in_file_ = 0;
  page.dirty_ = false;
  page.referenced_ = false;
  free_pages_.push_back(id);
  resident_pages_ -= 1;
  stats_.pages_freed += 1;
}

void Pager::DropFile(FileId file) {
  FileChain& chain = ChainOrDie(file);
  for (PageId id : chain.pages) FreePage(id);
  files_.erase(file);
}

void Pager::EnsureCapacity(FileId file, FileChain& chain, uint64_t slot) {
  while (chain.pages.size() * kSlotsPerPage <= slot) {
    PageId id;
    if (!free_pages_.empty()) {
      id = free_pages_.back();
      free_pages_.pop_back();
    } else {
      id = page_table_.size();
      page_table_.push_back(std::make_unique<ValuePage>());
    }
    ValuePage& page = *page_table_[id];
    page.file_ = file;
    page.index_in_file_ = chain.pages.size();
    chain.pages.push_back(id);
    resident_pages_ += 1;
    stats_.pages_allocated += 1;
  }
}

void Pager::RecordRead(FileId file, uint64_t slot, ValuePage& page) {
  page.referenced_ = true;
  if (!accounting_) return;
  stats_.slot_reads += 1;
  epoch_read_.insert(EpochKey(file, slot / kSlotsPerPage));
}

void Pager::RecordWrite(FileId file, uint64_t slot, ValuePage& page) {
  page.referenced_ = true;
  page.dirty_ = true;
  if (!accounting_) return;
  stats_.slot_writes += 1;
  epoch_written_.insert(EpochKey(file, slot / kSlotsPerPage));
}

const Value& Pager::Read(FileId file, uint64_t slot) {
  FileChain& chain = ChainOrDie(file);
  DS_PAGER_CHECK(slot < chain.pages.size() * kSlotsPerPage,
                 "read past file end");
  ValuePage& page = PageForSlot(chain, slot);
  RecordRead(file, slot, page);
  return page.slot(slot % kSlotsPerPage);
}

void Pager::ReadRange(FileId file, uint64_t start, uint64_t count, Row* out) {
  if (count == 0) return;
  FileChain& chain = ChainOrDie(file);
  DS_PAGER_CHECK(start + count <= chain.pages.size() * kSlotsPerPage,
                 "read range past file end");
  uint64_t first_page = start / kSlotsPerPage;
  uint64_t last_page = (start + count - 1) / kSlotsPerPage;
  for (uint64_t p = first_page; p <= last_page; ++p) {
    page_table_[chain.pages[p]]->referenced_ = true;
    if (accounting_) epoch_read_.insert(EpochKey(file, p));
  }
  if (accounting_) stats_.slot_reads += count;
  out->reserve(out->size() + count);
  for (uint64_t s = start; s < start + count; ++s) {
    out->push_back(PageForSlot(chain, s).slot(s % kSlotsPerPage));
  }
}

void Pager::Write(FileId file, uint64_t slot, Value v) {
  FileChain& chain = ChainOrDie(file);
  EnsureCapacity(file, chain, slot);
  if (slot >= chain.size) chain.size = slot + 1;
  ValuePage& page = PageForSlot(chain, slot);
  RecordWrite(file, slot, page);
  page.slot(slot % kSlotsPerPage) = std::move(v);
}

Value Pager::Take(FileId file, uint64_t slot) {
  FileChain& chain = ChainOrDie(file);
  DS_PAGER_CHECK(slot < chain.pages.size() * kSlotsPerPage,
                 "take past file end");
  ValuePage& page = PageForSlot(chain, slot);
  RecordRead(file, slot, page);
  return std::exchange(page.slot(slot % kSlotsPerPage), Value::Null());
}

void Pager::Truncate(FileId file, uint64_t slot_count) {
  FileChain& chain = ChainOrDie(file);
  if (slot_count >= chain.size) return;
  // Clear vacated slots on pages that survive, so Value payloads (strings)
  // are released even without a page free.
  size_t keep_pages =
      static_cast<size_t>((slot_count + kSlotsPerPage - 1) / kSlotsPerPage);
  for (uint64_t s = slot_count;
       s < chain.size && s < keep_pages * kSlotsPerPage; ++s) {
    PageForSlot(chain, s).slot(s % kSlotsPerPage) = Value::Null();
  }
  while (chain.pages.size() > keep_pages) {
    FreePage(chain.pages.back());
    chain.pages.pop_back();
  }
  chain.size = slot_count;
}

ValuePage* Pager::Pin(FileId file, uint64_t page_index) {
  FileChain& chain = ChainOrDie(file);
  EnsureCapacity(file, chain, page_index * kSlotsPerPage);
  ValuePage& page = *page_table_[chain.pages[page_index]];
  page.pin_count_ += 1;
  page.referenced_ = true;
  stats_.pins += 1;
  if (accounting_) {
    epoch_read_.insert(EpochKey(file, page_index));
    stats_.slot_reads += 1;
  }
  return &page;
}

void Pager::Unpin(ValuePage* page, bool dirtied) {
  DS_PAGER_CHECK(page != nullptr && page->pin_count_ > 0, "unbalanced Unpin");
  page->pin_count_ -= 1;
  if (dirtied) {
    page->dirty_ = true;
    if (accounting_) {
      epoch_written_.insert(EpochKey(page->file_, page->index_in_file_));
      stats_.slot_writes += 1;
    }
  }
}

size_t Pager::pinned_pages() const {
  size_t n = 0;
  for (const auto& page : page_table_) {
    if (!page->is_free() && page->pin_count_ > 0) ++n;
  }
  return n;
}

ValuePage* Pager::ClockVictim() {
  if (resident_pages_ == 0 || page_table_.empty()) return nullptr;
  // Two full sweeps: the first may only clear reference bits.
  size_t limit = page_table_.size() * 2;
  for (size_t step = 0; step < limit; ++step) {
    ValuePage& page = *page_table_[clock_hand_];
    clock_hand_ = (clock_hand_ + 1) % page_table_.size();
    if (page.is_free() || page.pin_count_ > 0) continue;
    if (page.referenced_) {
      page.referenced_ = false;  // second chance
      continue;
    }
    return &page;
  }
  return nullptr;  // everything pinned (or re-referenced concurrently)
}

size_t Pager::FlushAll() {
  size_t flushed = 0;
  for (const auto& page : page_table_) {
    if (!page->is_free() && page->dirty_) {
      page->dirty_ = false;
      ++flushed;
    }
  }
  stats_.pages_flushed += flushed;
  return flushed;
}

void Pager::BeginEpoch() {
  epoch_read_.clear();
  epoch_written_.clear();
}

}  // namespace storage
}  // namespace dataspread
