#include "storage/pager.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "storage/value_codec.h"

// API-misuse checks stay on in release builds: the pager recycles frames, so
// an out-of-range access or a freed-while-pinned page would otherwise corrupt
// another file's data silently. One predictable branch per call.
#define DS_PAGER_CHECK(cond, msg)                                  \
  do {                                                             \
    if (!(cond)) {                                                 \
      std::fprintf(stderr, "storage::Pager check failed: %s\n",    \
                   (msg));                                         \
      std::abort();                                                \
    }                                                              \
  } while (0)

namespace dataspread {
namespace storage {

namespace {

/// One thread→context binding pushed by BeginStatement and popped by the
/// matching EndStatement. Keyed by a process-unique pager uid so a binding
/// can never alias a different (e.g. later-constructed) pager.
struct TxnBindEntry {
  uint64_t pager_uid;
  TxnId txn;
};

thread_local std::vector<TxnBindEntry> tls_txn_binds;

std::atomic<uint64_t> g_next_pager_uid{1};

}  // namespace

Pager::Pager(PagerConfig config)
    : config_(std::move(config)),
      pager_uid_(g_next_pager_uid.fetch_add(1, std::memory_order_relaxed)) {
  if (!config_.wal_path.empty()) {
    // The durable pair: the WAL is the redo half, the named persistent
    // spill file the data half — both or neither.
    DS_PAGER_CHECK(config_.durable_spill && !config_.spill_path.empty(),
                   "wal_path requires durable_spill and a named spill_path");
    wal_ = std::make_unique<Wal>(config_.wal_path);
    Recover();
  } else {
    DS_PAGER_CHECK(!config_.durable_spill,
                   "durable_spill without a wal_path cannot be recovered");
  }
}

Pager::~Pager() {
  // A clean shutdown of a durable pager ends on a checkpoint: the next open
  // restores the snapshot and replays an (empty) log tail.
  if (wal_ != nullptr && !crashed_) CheckpointInternal();
}

PagerStats Pager::stats() const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  PagerStats s = stats_;
  s.slot_reads = slot_reads_.load(std::memory_order_relaxed);
  s.slot_writes = slot_writes_.load(std::memory_order_relaxed);
  s.pins = pins_.load(std::memory_order_relaxed);
  if (spill_ != nullptr) s.spill_dead_bytes = spill_->dead_bytes();
  if (wal_ != nullptr) {
    s.wal_records = wal_->records_appended();
    s.wal_bytes = wal_->bytes_appended();
    s.wal_syncs = wal_->syncs();
  }
  return s;
}

void Pager::SyncWal() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (wal_ == nullptr || crashed_) return;
  wal_->Sync();
  DrainDeferredFrees();
}

void Pager::SyncWalThrough(uint64_t lsn) {
  {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    if (wal_ == nullptr || crashed_ || lsn == 0) return;
  }
  // The barrier itself runs without the structural latch: that is the whole
  // point — concurrent committers park inside Wal::SyncThrough and share one
  // fsync while readers keep faulting pages through the pager.
  wal_->SyncThrough(lsn);
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (!crashed_) DrainDeferredFrees();
}

void Pager::CrashForTesting() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (wal_ != nullptr) wal_->CrashForTesting(/*keep_os_buffered=*/true);
  if (spill_ != nullptr) spill_->Sync();  // what the page cache would hold
  crashed_ = true;
  // Brackets mid-crash simply never commit; their contexts stay alive (the
  // scratch afterlife still brackets statements, just without a log) and
  // their parked spill frees are dropped — nothing recycles post-crash.
  for (auto& [id, ctx] : txns_) {
    ctx.open = false;
    ctx.deferred_slots.clear();
  }
  open_brackets_ = 0;
  min_open_begin_lsn_ = 0;
}

FileId Pager::CreateFile() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FileId id = next_file_id_++;
  files_.emplace(id, FileChain{});
  if (wal_ != nullptr && !replaying_ && !crashed_) {
    wal_payload_.clear();
    AppendU64(&wal_payload_, id);
    LogStructural(WalRecordType::kCreateFile, wal_payload_);
  }
  return id;
}

Pager::FileChain& Pager::ChainOrDie(FileId file) {
  auto it = files_.find(file);
  DS_PAGER_CHECK(it != files_.end(), "unknown storage file");
  return it->second;
}

const Pager::FileChain& Pager::ChainOrDie(FileId file) const {
  auto it = files_.find(file);
  DS_PAGER_CHECK(it != files_.end(), "unknown storage file");
  return it->second;
}

size_t Pager::FilePages(FileId file) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  return ChainOrDie(file).pages.size();
}

uint64_t Pager::FileSize(FileId file) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  return ChainOrDie(file).size;
}

bool Pager::IsResident(FileId file, uint64_t page_index) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  const FileChain& chain = ChainOrDie(file);
  return page_index < chain.pages.size() && chain.pages[page_index].resident();
}

bool Pager::IsScanClass(FileId file, uint64_t page_index) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  const FileChain& chain = ChainOrDie(file);
  if (page_index >= chain.pages.size()) return false;
  const PageRef& ref = chain.pages[page_index];
  return ref.resident() && page_table_[ref.frame]->scan_;
}

SpillFile& Pager::EnsureSpill() {
  if (spill_ == nullptr) {
    spill_ =
        std::make_unique<SpillFile>(config_.spill_path, config_.durable_spill);
  }
  return *spill_;
}

void Pager::WriteBack(ValuePage& page, PageRef& ref) {
  // No-steal: a page dirtied inside an open statement bracket must never
  // reach the spill file — if the bracket is discarded at recovery, the
  // records that would rebuild this page's pre-statement image are inside
  // the bracket too. Victim selection already skips such pages; this is the
  // backstop.
  DS_PAGER_CHECK(!StatementDirty(page),
                 "write-back of a page dirtied by an uncommitted statement");
  // The WAL rule, enforced at the single spot every page write funnels
  // through: the redo records producing this image must be durable before
  // the image can overwrite the on-disk copy (flushed-LSN >= page_lsn).
  // During replay everything in the log is durable by definition.
  if (wal_ != nullptr && !replaying_ && !crashed_) {
    wal_->EnsureDurable(page.page_lsn_);
    // Parked slots whose freeing record is now durable become reusable just
    // in time for the allocation below.
    DrainDeferredFrees();
  }
  SpillFile& spill = EnsureSpill();
  if (ref.spill_slot == SpillFile::kNoSlot) {
    ref.spill_slot = spill.AllocateSlot();
  }
  stats_.spill_bytes_written += spill.WritePage(ref.spill_slot, page);
}

void Pager::ReleaseFrame(PageId id) {
  ValuePage& page = *page_table_[id];
  for (Value& v : page.slots_) v = Value::Null();  // release heap payloads
  if (page.scan_) {
    page.scan_ = false;
    scan_resident_ -= 1;  // any lingering ring entry goes stale and is dropped
  }
  page.file_ = 0;
  page.index_in_file_ = 0;
  page.page_lsn_ = 0;
  page.dirty_ = false;
  page.referenced_ = false;
  free_frames_.push_back(id);
  resident_pages_ -= 1;
}

void Pager::EvictPage(ValuePage& page) {
  DS_PAGER_CHECK(!page.is_free() && page.pin_count_ == 0,
                 "evicting a free or pinned page");
  FileChain& chain = ChainOrDie(page.file_);
  PageRef& ref = chain.pages[page.index_in_file_];
  // A dirty page needs write-back; a clean page only needs one if it has
  // never been spilled (the spill copy is the authoritative one once gone).
  if (page.dirty_ || ref.spill_slot == SpillFile::kNoSlot) {
    WriteBack(page, ref);
    page.dirty_ = false;
  }
  if (page.scan_) stats_.scan_evictions += 1;
  PageId frame = ref.frame;
  ref.frame = PageRef::kNoFrame;
  ReleaseFrame(frame);
  stats_.evictions += 1;
}

bool Pager::ScanEntryValid(const ScanEntry& e) const {
  if (e.frame >= page_table_.size()) return false;
  const ValuePage* page = page_table_[e.frame].get();
  return page != nullptr && page->scan_ && page->file_ == e.file &&
         page->index_in_file_ == e.page;
}

size_t Pager::scan_ring_size() const {
  if (config_.scan_ring_pages > 0) return config_.scan_ring_pages;
  size_t cap = config_.max_resident_pages;
  return std::max(kMinScanRing, cap / 8);
}

ValuePage* Pager::SelectVictim() {
  // Oldest scan-ring page first: a sequential stream recycles its own
  // frames, leaving the clock-managed hot set untouched. Entries are
  // validated lazily; each is considered at most once per call.
  size_t budget = scan_fifo_.size();
  while (budget-- > 0 && !scan_fifo_.empty()) {
    ScanEntry e = scan_fifo_.front();
    scan_fifo_.pop_front();
    if (!ScanEntryValid(e)) continue;  // promoted/evicted/freed: stale
    ValuePage* page = page_table_[e.frame].get();
    if (page->pin_count_ > 0 || StatementDirty(*page)) {
      scan_fifo_.push_back(e);  // still scan-class, just unevictable now
      continue;
    }
    return page;
  }
  return ClockVictim();
}

void Pager::EvictDownTo(size_t target) {
  while (resident_pages_ > target) {
    ValuePage* victim = SelectVictim();
    if (victim == nullptr) break;  // everything left is pinned: overshoot
    EvictPage(*victim);
  }
}

void Pager::EnforceScanRing(PageId keep) {
  size_t ring = scan_ring_size();
  size_t budget = scan_fifo_.size();
  while (scan_resident_ > ring && budget-- > 0 && !scan_fifo_.empty()) {
    ScanEntry e = scan_fifo_.front();
    scan_fifo_.pop_front();
    if (!ScanEntryValid(e)) continue;
    ValuePage* page = page_table_[e.frame].get();
    if (e.frame == keep || page->pin_count_ > 0 || StatementDirty(*page)) {
      scan_fifo_.push_back(e);
      continue;
    }
    EvictPage(*page);
  }
}

void Pager::ClassifyMount(ValuePage& page, PageId frame) {
  if (!mount_sequential_ || !config_.scan_resistant ||
      config_.max_resident_pages == 0) {
    return;  // hot mount: managed by the second-chance clock
  }
  page.scan_ = true;
  scan_resident_ += 1;
  scan_fifo_.push_back(ScanEntry{frame, page.file_, page.index_in_file_});
  // The stream pays for its own footprint immediately: once the ring is
  // full, mounting one more scan page retires the oldest one, keeping the
  // rest of the pool free for the hot set even before the cap binds.
  EnforceScanRing(frame);
}

void Pager::MaybePromote(ValuePage& page) {
  if (page.scan_ && !mount_sequential_) {
    // A point access re-used a scan page: it is hot after all. Its ring
    // entry goes stale; from here the clock governs it.
    page.scan_ = false;
    scan_resident_ -= 1;
  }
}

void Pager::NoteSlotAccess(FileChain& chain, uint64_t page_index) {
  mount_sequential_ = chain.seq.Note(page_index);
}

PageId Pager::AcquireFrame() {
  if (config_.max_resident_pages > 0 &&
      resident_pages_ >= config_.max_resident_pages) {
    // Make room so the pool stays at its cap after the new page mounts.
    EvictDownTo(config_.max_resident_pages - 1);
  }
  if (!free_frames_.empty()) {
    PageId id = free_frames_.back();
    free_frames_.pop_back();
    // A shell released by a runtime cap shrink is rebuilt on reuse.
    if (page_table_[id] == nullptr) {
      page_table_[id] = std::make_unique<ValuePage>();
    }
    return id;
  }
  page_table_.push_back(std::make_unique<ValuePage>());
  EnsureFrameLatches();
  return page_table_.size() - 1;
}

void Pager::EnsureFrameLatches() {
  // Grow-only, and a deque so existing latches never move: a cursor may be
  // blocked on frame i's latch while frame i+1 is being created.
  while (frame_latches_.size() < page_table_.size()) {
    frame_latches_.emplace_back();
  }
}

void Pager::FaultIn(FileId file, FileChain& chain, uint64_t page_index) {
  PageRef& ref = chain.pages[page_index];
  DS_PAGER_CHECK(!ref.resident(), "faulting a resident page");
  PageId frame = AcquireFrame();  // may evict; `ref` stays valid (no resize)
  ValuePage& page = *page_table_[frame];
  page.file_ = file;
  page.index_in_file_ = page_index;
  page.referenced_ = true;
  ref.frame = frame;
  resident_pages_ += 1;
  if (ref.spill_slot != SpillFile::kNoSlot) {
    stats_.spill_bytes_read += spill_->ReadPage(ref.spill_slot, &page);
  }
  // else: a never-written page known only from recovery metadata — the
  // frame is already all-NULL (frames are scrubbed on release).
  if (in_readahead_) {
    stats_.readaheads += 1;  // speculative load, not a demand stall
  } else {
    stats_.faults += 1;
  }
  ClassifyMount(page, frame);
  // Sequential readahead: the stream will want the next chain page in a
  // moment — load it now, turning two demand stalls into one batched pass
  // over the spill file. The demand page is pinned across the recursive
  // fault so making room can never take the frame just mounted.
  if (mount_sequential_ && config_.readahead && !in_readahead_ &&
      config_.max_resident_pages > 0 && page_index + 1 < chain.pages.size()) {
    const PageRef& next = chain.pages[page_index + 1];
    if (!next.resident() && next.spill_slot != SpillFile::kNoSlot) {
      in_readahead_ = true;
      page.pin_count_ += 1;
      FaultIn(file, chain, page_index + 1);
      page.pin_count_ -= 1;
      in_readahead_ = false;
    }
  }
}

void Pager::FreePage(PageRef& ref, std::vector<uint64_t>* deferred_slots) {
  if (ref.resident()) {
    ValuePage& page = *page_table_[ref.frame];
    DS_PAGER_CHECK(page.pin_count_ == 0, "freeing a pinned page");
    ReleaseFrame(ref.frame);
    ref.frame = PageRef::kNoFrame;
  }
  if (ref.spill_slot != SpillFile::kNoSlot) {
    if (deferred_slots != nullptr) {
      deferred_slots->push_back(ref.spill_slot);
    } else {
      spill_->FreeSlot(ref.spill_slot);
    }
    ref.spill_slot = SpillFile::kNoSlot;
  }
  stats_.pages_freed += 1;
}

void Pager::DeferSpillFrees(const std::vector<uint64_t>& slots, uint64_t lsn) {
  if (slots.empty()) return;
  // Freed spill slots may be recycled by the very next eviction, overwriting
  // bases a replay without the freeing record would still need. PR 4 closed
  // that window with an fsync per structural op; now the slots are simply
  // parked until durability catches up on its own (next sync/checkpoint) —
  // structural ops pay no barrier at all. `lsn` is the start offset of a
  // record the caller appended this very call, so it is never durable yet
  // (durable_lsn is the synced *end* boundary): always park.
  for (uint64_t slot : slots) {
    deferred_frees_.push_back(DeferredFree{slot, lsn});
  }
}

void Pager::DrainDeferredFrees() {
  if (deferred_frees_.empty()) return;
  uint64_t durable = wal_->durable_lsn();
  while (!deferred_frees_.empty() && deferred_frees_.front().lsn < durable) {
    spill_->FreeSlot(deferred_frees_.front().spill_slot);
    deferred_frees_.pop_front();
  }
}

void Pager::DropFile(FileId file) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FileChain& chain = ChainOrDie(file);
  bool defer = wal_ != nullptr && !replaying_ && !crashed_;
  std::vector<uint64_t> freed;
  for (PageRef& ref : chain.pages) {
    FreePage(ref, defer ? &freed : nullptr);
  }
  files_.erase(file);
  if (defer) {
    wal_payload_.clear();
    AppendU64(&wal_payload_, file);
    uint64_t lsn = AppendRecord(WalRecordType::kDropFile, wal_payload_);
    // Inside an open bracket the freed slots park on the context until its
    // closing record has an LSN (CloseCtx); a discarded bracket must never
    // have recycled a base it still referenced.
    TxnContext* ctx = CurrentCtxLocked();
    if (ctx != nullptr && ctx->open) {
      ctx->deferred_slots.insert(ctx->deferred_slots.end(), freed.begin(),
                                 freed.end());
    } else {
      DeferSpillFrees(freed, lsn);
    }
    MaybeAutoCheckpoint();
  }
}

void Pager::EnsureCapacity(FileId file, FileChain& chain, uint64_t slot) {
  size_t pages_before = chain.pages.size();
  while (chain.pages.size() * kSlotsPerPage <= slot) {
    PageId frame = AcquireFrame();
    ValuePage& page = *page_table_[frame];
    page.file_ = file;
    page.index_in_file_ = chain.pages.size();
    PageRef ref;
    ref.frame = frame;
    chain.pages.push_back(ref);
    resident_pages_ += 1;
    stats_.pages_allocated += 1;
    ClassifyMount(page, frame);
  }
  if (chain.pages.size() != pages_before && wal_ != nullptr && !replaying_ && !crashed_) {
    // Capacity is durable state (FilePages/addressability): replay regrows
    // the chain before the update records that write into it.
    wal_payload_.clear();
    AppendU64(&wal_payload_, file);
    AppendU64(&wal_payload_, chain.pages.size());
    LogStructural(WalRecordType::kGrow, wal_payload_);
  }
}

void Pager::RecordRead(FileId file, uint64_t slot, ValuePage& page) {
  page.referenced_ = true;
  if (!accounting_.load(std::memory_order_relaxed)) return;
  slot_reads_.fetch_add(1, std::memory_order_relaxed);
  NoteEpochRead(file, slot / kSlotsPerPage);
}

void Pager::RecordWrite(FileId file, uint64_t slot, ValuePage& page) {
  page.referenced_ = true;
  page.dirty_ = true;
  if (!accounting_.load(std::memory_order_relaxed)) return;
  slot_writes_.fetch_add(1, std::memory_order_relaxed);
  NoteEpochWrite(file, slot / kSlotsPerPage);
}

void Pager::NoteEpochRead(FileId file, uint64_t page_index) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  epoch_read_.insert(PageKey{file, page_index});
}

void Pager::NoteEpochWrite(FileId file, uint64_t page_index) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  epoch_written_.insert(PageKey{file, page_index});
}

const Value& Pager::Read(FileId file, uint64_t slot) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FileChain& chain = ChainOrDie(file);
  DS_PAGER_CHECK(slot < chain.pages.size() * kSlotsPerPage,
                 "read past file end");
  NoteSlotAccess(chain, slot / kSlotsPerPage);
  ValuePage& page = PageForSlot(file, chain, slot);
  MaybePromote(page);
  RecordRead(file, slot, page);
  return page.slot(slot % kSlotsPerPage);
}

void Pager::ReadRange(FileId file, uint64_t start, uint64_t count, Row* out) {
  if (count == 0) return;
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FileChain& chain = ChainOrDie(file);
  DS_PAGER_CHECK(start + count <= chain.pages.size() * kSlotsPerPage,
                 "read range past file end");
  out->reserve(out->size() + count);
  // Page by page: each page is faulted in (possibly evicting an earlier one
  // of this very range — its values are already copied out) and drained
  // before the next, so a range wider than the pool still works.
  uint64_t s = start;
  const uint64_t end = start + count;
  while (s < end) {
    uint64_t page_index = s / kSlotsPerPage;
    uint64_t page_end = std::min(end, (page_index + 1) * kSlotsPerPage);
    NoteSlotAccess(chain, page_index);
    ValuePage& page = PageAt(file, chain, page_index);
    MaybePromote(page);
    page.referenced_ = true;
    if (accounting_.load(std::memory_order_relaxed)) {
      NoteEpochRead(file, page_index);
    }
    {
      std::shared_lock<std::shared_mutex> data(
          frame_latches_[chain.pages[page_index].frame]);
      for (; s < page_end; ++s) {
        out->push_back(page.slot(s % kSlotsPerPage));
      }
    }
  }
  if (accounting_.load(std::memory_order_relaxed)) {
    slot_reads_.fetch_add(count, std::memory_order_relaxed);
  }
}

void Pager::Write(FileId file, uint64_t slot, Value v) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FileChain& chain = ChainOrDie(file);
  NoteSlotAccess(chain, slot / kSlotsPerPage);
  EnsureCapacity(file, chain, slot);
  if (slot >= chain.size) chain.size = slot + 1;
  ValuePage& page = PageForSlot(file, chain, slot);
  MaybePromote(page);
  RecordWrite(file, slot, page);
  {
    // Latch order mu_ -> frame latch: cursor readers hold only the data
    // latch, so the mutation itself must take it exclusively.
    std::unique_lock<std::shared_mutex> data(
        frame_latches_[chain.pages[slot / kSlotsPerPage].frame]);
    page.slot(slot % kSlotsPerPage) = std::move(v);
  }
  LogPageMutation(file, chain, slot / kSlotsPerPage, slot % kSlotsPerPage, 1);
}

void Pager::WriteRange(FileId file, uint64_t start, const Value* values,
                       uint64_t count) {
  if (count == 0) return;
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FileChain& chain = ChainOrDie(file);
  uint64_t s = start;
  const uint64_t end = start + count;
  while (s < end) {
    uint64_t page_index = s / kSlotsPerPage;
    uint64_t page_end = std::min(end, (page_index + 1) * kSlotsPerPage);
    NoteSlotAccess(chain, page_index);
    EnsureCapacity(file, chain, page_end - 1);
    ValuePage& page = PageAt(file, chain, page_index);
    MaybePromote(page);
    page.referenced_ = true;
    page.dirty_ = true;
    if (accounting_.load(std::memory_order_relaxed)) {
      NoteEpochWrite(file, page_index);
    }
    uint64_t seg_start = s;
    {
      std::unique_lock<std::shared_mutex> data(
          frame_latches_[chain.pages[page_index].frame]);
      for (; s < page_end; ++s) {
        page.slot(s % kSlotsPerPage) = values[s - start];
      }
    }
    // Size advances with the covered prefix, so each per-page redo record
    // is a self-consistent state (a torn log replays to a clean prefix).
    if (s > chain.size) chain.size = s;
    LogPageMutation(file, chain, page_index, seg_start % kSlotsPerPage,
                    s - seg_start);
  }
  if (accounting_.load(std::memory_order_relaxed)) {
    slot_writes_.fetch_add(count, std::memory_order_relaxed);
  }
}

Value Pager::Take(FileId file, uint64_t slot) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FileChain& chain = ChainOrDie(file);
  DS_PAGER_CHECK(slot < chain.pages.size() * kSlotsPerPage,
                 "take past file end");
  NoteSlotAccess(chain, slot / kSlotsPerPage);
  ValuePage& page = PageForSlot(file, chain, slot);
  MaybePromote(page);
  RecordRead(file, slot, page);
  // Nulling the slot mutates the page: without the dirty bit an eviction
  // could skip write-back and resurrect the taken value from a stale spill
  // copy. Accounting-wise Take still counts as a read (unchanged).
  page.dirty_ = true;
  Value out;
  {
    std::unique_lock<std::shared_mutex> data(
        frame_latches_[chain.pages[slot / kSlotsPerPage].frame]);
    out = std::exchange(page.slot(slot % kSlotsPerPage), Value::Null());
  }
  LogPageMutation(file, chain, slot / kSlotsPerPage, slot % kSlotsPerPage, 1);
  return out;
}

void Pager::Truncate(FileId file, uint64_t slot_count) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FileChain& chain = ChainOrDie(file);
  if (slot_count >= chain.size) return;
  mount_sequential_ = false;  // a boundary-page fault-in is a hot mount
  // Clear vacated slots on the surviving boundary page, so Value payloads
  // (strings) are released even without a page free. An evicted boundary
  // page is faulted in and re-marked dirty so the clearing reaches its spill
  // copy on the next write-back.
  size_t keep_pages =
      static_cast<size_t>((slot_count + kSlotsPerPage - 1) / kSlotsPerPage);
  ValuePage* boundary = nullptr;
  if (slot_count < keep_pages * kSlotsPerPage) {
    ValuePage& page = PageAt(file, chain, keep_pages - 1);
    // Torn-page defense for the boundary page: its *pre-truncate* image is
    // logged when it has none this checkpoint epoch, so replay restores the
    // base and re-runs the clearing from the kTruncate record — recovery
    // never depends on the (possibly torn) spill copy of a page this very
    // call is about to dirty. Auto-checkpointing is suppressed here: a
    // checkpoint between this image and the kTruncate record would discard
    // the image while the clearing below stays unlogged (it checkpoints at
    // the tail of this call instead, once the pair has landed).
    if (wal_ != nullptr && !replaying_ && !crashed_ &&
        chain.pages[keep_pages - 1].fpi_lsn <= last_checkpoint_lsn_) {
      LogPageMutation(file, chain, keep_pages - 1, 0, kSlotsPerPage,
                      /*allow_auto_checkpoint=*/false);
    }
    {
      std::unique_lock<std::shared_mutex> data(
          frame_latches_[chain.pages[keep_pages - 1].frame]);
      for (uint64_t s = slot_count;
           s < chain.size && s < keep_pages * kSlotsPerPage; ++s) {
        page.slot(s % kSlotsPerPage) = Value::Null();
      }
    }
    page.dirty_ = true;  // not accounted: truncation is not a page write
    boundary = &page;
  }
  bool defer = wal_ != nullptr && !replaying_ && !crashed_;
  std::vector<uint64_t> freed;
  while (chain.pages.size() > keep_pages) {
    FreePage(chain.pages.back(), defer ? &freed : nullptr);
    chain.pages.pop_back();
  }
  chain.size = slot_count;
  if (chain.seq.last_page != kNoPageIndex &&
      chain.seq.last_page >= keep_pages) {
    chain.seq = SeqDetector{};  // the detector must not span freed pages
  }
  if (defer) {
    wal_payload_.clear();
    AppendU64(&wal_payload_, file);
    AppendU64(&wal_payload_, slot_count);
    uint64_t lsn = AppendRecord(WalRecordType::kTruncate, wal_payload_);
    // The clearing above is redone by replaying Truncate itself; the
    // boundary page's newest redo is therefore this record.
    if (boundary != nullptr) boundary->page_lsn_ = lsn;
    // Same reuse hazard as DropFile: freed tail slots stay parked until the
    // truncate record that frees them is durable (DeferSpillFrees). Inside
    // an open bracket they park on the owning context instead — CloseCtx
    // re-parks them at the closing record's LSN, so a discarded bracket
    // can never have recycled a base it still referenced.
    TxnContext* ctx = CurrentCtxLocked();
    if (ctx != nullptr && ctx->open) {
      ctx->deferred_slots.insert(ctx->deferred_slots.end(), freed.begin(),
                                 freed.end());
    } else {
      DeferSpillFrees(freed, lsn);
    }
    MaybeAutoCheckpoint();
  }
}

ValuePage* Pager::Pin(FileId file, uint64_t page_index) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FileChain& chain = ChainOrDie(file);
  mount_sequential_ = false;  // explicit pins are hot accesses
  EnsureCapacity(file, chain, page_index * kSlotsPerPage);
  ValuePage& page = PageAt(file, chain, page_index);
  MaybePromote(page);
  page.pin_count_ += 1;
  page.referenced_ = true;
  pins_.fetch_add(1, std::memory_order_relaxed);
  if (accounting_.load(std::memory_order_relaxed)) {
    NoteEpochRead(file, page_index);
    slot_reads_.fetch_add(1, std::memory_order_relaxed);
  }
  return &page;
}

void Pager::Unpin(ValuePage* page, bool dirtied) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  DS_PAGER_CHECK(page != nullptr && page->pin_count_ > 0, "unbalanced Unpin");
  page->pin_count_ -= 1;
  if (dirtied) {
    page->dirty_ = true;
    if (accounting_.load(std::memory_order_relaxed)) {
      NoteEpochWrite(page->file_, page->index_in_file_);
      slot_writes_.fetch_add(1, std::memory_order_relaxed);
    }
    // Pin hands out raw slot access, so which slots changed is unknown:
    // the redo record is a full-page image.
    if (wal_ != nullptr && !replaying_ && !crashed_) {
      FileChain& chain = ChainOrDie(page->file_);
      LogPageMutation(page->file_, chain, page->index_in_file_, 0,
                      kSlotsPerPage);
    }
  }
}

size_t Pager::pinned_pages() const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  size_t n = 0;
  for (const auto& page : page_table_) {
    if (page != nullptr && !page->is_free() && page->pin_count_ > 0) ++n;
  }
  return n;
}

ValuePage* Pager::ClockVictim() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (resident_pages_ == 0 || page_table_.empty()) return nullptr;
  // Bounded sweep — two revolutions: the first may only clear reference
  // bits, the second must then find any unpinned page. Termination does not
  // depend on pin state, so an all-pinned (or all-statement-dirty: no-steal)
  // pool yields nullptr, never a hang or an unevictable frame.
  size_t limit = page_table_.size() * 2;
  for (size_t step = 0; step < limit; ++step) {
    ValuePage* candidate = page_table_[clock_hand_].get();
    clock_hand_ = (clock_hand_ + 1) % page_table_.size();
    if (candidate == nullptr) continue;  // released shell (cap shrink)
    ValuePage& page = *candidate;
    if (page.is_free() || page.pin_count_ > 0 || StatementDirty(page)) {
      continue;
    }
    if (page.referenced_) {
      page.referenced_ = false;  // second chance
      continue;
    }
    return &page;
  }
  return nullptr;  // every resident page is pinned (or no-steal protected)
}

size_t Pager::FlushAll() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (wal_ != nullptr) {
    // A checkpoint snapshot must not split an open bracket (of any
    // transaction) across the log rewrite. The Database layer rolls back
    // its open transactions before Close()/Checkpoint(); if a caller still
    // gets here mid-bracket, skip rather than abort — the last bracket
    // close runs any deferred auto-checkpoint.
    if (open_brackets_ > 0) return 0;
    return CheckpointInternal();
  }
  size_t flushed = 0;
  for (const auto& page : page_table_) {
    if (page == nullptr || page->is_free() || !page->dirty_) continue;
    FileChain& chain = ChainOrDie(page->file_);
    WriteBack(*page, chain.pages[page->index_in_file_]);
    page->dirty_ = false;
    ++flushed;
  }
  stats_.pages_flushed += flushed;
  return flushed;
}

void Pager::set_max_resident_pages(size_t cap) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  config_.max_resident_pages = cap;
  if (cap == 0) return;
  EvictDownTo(cap);
  // A shrink must actually release memory, not just move pages to disk:
  // drop the ValuePage shells of every free frame (each holds a 256-slot
  // array) and compact trailing holes so clock sweeps stay proportional to
  // the new pool size. Interior holes are kept as ids (frames are addressed
  // by stable index) and rebuilt on reuse.
  for (PageId id : free_frames_) page_table_[id].reset();
  while (!page_table_.empty() && page_table_.back() == nullptr) {
    page_table_.pop_back();
  }
  free_frames_.erase(
      std::remove_if(free_frames_.begin(), free_frames_.end(),
                     [&](PageId id) { return id >= page_table_.size(); }),
      free_frames_.end());
  if (clock_hand_ >= page_table_.size()) clock_hand_ = 0;
}

void Pager::BeginEpoch() {
  std::lock_guard<std::mutex> lock(stats_mu_);
  epoch_read_.clear();
  epoch_written_.clear();
}

// ---------------------------------------------------------------------------
// Durability: redo logging, fuzzy checkpoints, recovery (DESIGN.md §6)
// ---------------------------------------------------------------------------

void Pager::LogPageMutation(FileId file, FileChain& chain, uint64_t page_index,
                            uint64_t first, uint64_t count,
                            bool allow_auto_checkpoint) {
  if (wal_ == nullptr || replaying_ || crashed_) return;
  PageRef& ref = chain.pages[page_index];
  ValuePage& page = *page_table_[ref.frame];
  // First mutation of the page since the checkpoint? Upgrade to a full-page
  // image: replay then never needs this page's spill base, which a torn
  // post-checkpoint write-back may have destroyed. A range already spanning
  // the page is an image by construction.
  bool image = count == kSlotsPerPage ||
               ref.fpi_lsn <= last_checkpoint_lsn_;
  if (image) {
    first = 0;
    count = kSlotsPerPage;
  }
  wal_payload_.clear();
  AppendU64(&wal_payload_, file);
  AppendU64(&wal_payload_, page_index);
  AppendU16(&wal_payload_, static_cast<uint16_t>(first));
  AppendU16(&wal_payload_, static_cast<uint16_t>(count));
  AppendU64(&wal_payload_, chain.size);
  for (uint64_t i = first; i < first + count; ++i) {
    EncodeValue(page.slot(i), &wal_payload_);
  }
  uint64_t lsn = AppendRecord(WalRecordType::kUpdate, wal_payload_);
  page.page_lsn_ = lsn;
  if (image) ref.fpi_lsn = lsn;
  if (allow_auto_checkpoint) MaybeAutoCheckpoint();
}

void Pager::LogStructural(WalRecordType type, const std::string& payload) {
  AppendRecord(type, payload);
  MaybeAutoCheckpoint();
}

uint64_t Pager::AppendRecord(WalRecordType type, const std::string& payload) {
  TxnId txn = CurrentBoundTxnLocked();
  if (txn == 0) return wal_->Append(type, payload);
  TxnContext& ctx = txns_.at(txn);
  // Lazy bracket open: the first record a bracketed statement logs is
  // preceded by kTxnBegin(txn), so a statement that logs nothing leaves no
  // trace in the log at all.
  if (!ctx.open) {
    wal_wrap_.clear();
    AppendU64(&wal_wrap_, txn);
    ctx.begin_lsn = wal_->Append(WalRecordType::kTxnBegin, wal_wrap_);
    ctx.open = true;
    open_brackets_ += 1;
    // Begin LSNs are monotone, so a new bracket can only *set* the min.
    if (open_brackets_ == 1) min_open_begin_lsn_ = ctx.begin_lsn;
  }
  // Envelope: txn id + inner type + inner payload, so records of
  // concurrently open brackets can interleave in one log.
  wal_wrap_.clear();
  wal_wrap_.reserve(9 + payload.size());
  AppendU64(&wal_wrap_, txn);
  wal_wrap_.push_back(static_cast<char>(type));
  wal_wrap_.append(payload);
  return wal_->Append(WalRecordType::kTxnData, wal_wrap_);
}

Pager::TxnContext* Pager::CurrentCtxLocked() {
  auto& binds = tls_txn_binds;
  for (size_t i = binds.size(); i-- > 0;) {
    if (binds[i].pager_uid != pager_uid_) continue;
    auto it = txns_.find(binds[i].txn);
    if (it == txns_.end()) {
      // Stale binding (context force-closed); prune lazily.
      binds.erase(binds.begin() + static_cast<ptrdiff_t>(i));
      continue;
    }
    return &it->second;
  }
  return nullptr;
}

TxnId Pager::CurrentBoundTxnLocked() {
  auto& binds = tls_txn_binds;
  for (size_t i = binds.size(); i-- > 0;) {
    if (binds[i].pager_uid != pager_uid_) continue;
    if (txns_.count(binds[i].txn) == 0) {
      binds.erase(binds.begin() + static_cast<ptrdiff_t>(i));
      continue;
    }
    return binds[i].txn;
  }
  return 0;
}

TxnId Pager::BeginStatement(TxnId txn) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (txn == 0) txn = CurrentBoundTxnLocked();
  if (txn == 0) {
    txn = next_txn_id_++;
    TxnContext ctx;
    ctx.autocommit = true;
    txns_.emplace(txn, std::move(ctx));
  }
  auto it = txns_.find(txn);
  DS_PAGER_CHECK(it != txns_.end(),
                 "BeginStatement under an unknown transaction");
  it->second.depth += 1;
  tls_txn_binds.push_back(TxnBindEntry{pager_uid_, txn});
  return txn;
}

uint64_t Pager::EndStatement(bool commit) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  // Pop this thread's innermost binding for this pager (statements nest
  // LIFO per thread).
  auto& binds = tls_txn_binds;
  TxnId txn = 0;
  for (size_t i = binds.size(); i-- > 0;) {
    if (binds[i].pager_uid != pager_uid_) continue;
    txn = binds[i].txn;
    binds.erase(binds.begin() + static_cast<ptrdiff_t>(i));
    break;
  }
  DS_PAGER_CHECK(txn != 0, "EndStatement without BeginStatement");
  auto it = txns_.find(txn);
  DS_PAGER_CHECK(it != txns_.end(), "EndStatement on a closed transaction");
  DS_PAGER_CHECK(it->second.depth > 0, "unbalanced EndStatement");
  it->second.depth -= 1;
  if (it->second.depth > 0 || !it->second.autocommit) return 0;
  return CloseCtx(txn, commit);
}

TxnId Pager::BeginTxn() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  TxnId txn = next_txn_id_++;
  TxnContext ctx;
  ctx.depth = 1;  // held by the transaction itself until Commit/AbortTxn
  txns_.emplace(txn, std::move(ctx));
  return txn;
}

uint64_t Pager::CommitTxn(TxnId txn) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto it = txns_.find(txn);
  DS_PAGER_CHECK(it != txns_.end(), "CommitTxn on an unknown transaction");
  DS_PAGER_CHECK(it->second.depth == 1 && !it->second.autocommit,
                 "CommitTxn with statements still open");
  it->second.depth = 0;
  return CloseCtx(txn, /*commit=*/true);
}

uint64_t Pager::AbortTxn(TxnId txn) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto it = txns_.find(txn);
  DS_PAGER_CHECK(it != txns_.end(), "AbortTxn on an unknown transaction");
  DS_PAGER_CHECK(it->second.depth == 1 && !it->second.autocommit,
                 "AbortTxn with statements still open");
  it->second.depth = 0;
  return CloseCtx(txn, /*commit=*/false);
}

void Pager::RecomputeMinOpenBeginLsn() {
  if (open_brackets_ == 0) {
    min_open_begin_lsn_ = 0;
    return;
  }
  min_open_begin_lsn_ = ~0ull;
  for (const auto& [id, ctx] : txns_) {
    if (ctx.open && ctx.begin_lsn < min_open_begin_lsn_) {
      min_open_begin_lsn_ = ctx.begin_lsn;
    }
  }
}

uint64_t Pager::CloseCtx(TxnId txn, bool commit) {
  auto it = txns_.find(txn);
  TxnContext ctx = std::move(it->second);
  txns_.erase(it);
  uint64_t end = 0;
  if (ctx.open) {
    // Close the bracket. An abort closes it too: by now the caller's
    // logged rollback compensations sit inside the bracket, so replaying
    // it is a net no-op — what matters for recovery is only that the
    // bracket is *closed* (an open one is discarded wholesale).
    open_brackets_ -= 1;
    RecomputeMinOpenBeginLsn();
    if (wal_ != nullptr && !crashed_) {
      wal_wrap_.clear();
      AppendU64(&wal_wrap_, txn);
      uint64_t lsn = wal_->Append(
          commit ? WalRecordType::kTxnCommit : WalRecordType::kTxnAbort,
          wal_wrap_);
      // Spill slots freed inside the bracket recycle once the *bracket* is
      // durable, i.e. past the closing record.
      DeferSpillFrees(ctx.deferred_slots, lsn);
      // The record's *end* boundary: what SyncWalThrough must reach for
      // the commit to be durable.
      end = lsn + Wal::kRecordHeaderBytes + 1 + wal_wrap_.size();
    }
  }
  // An auto-checkpoint that triggered mid-bracket was held back (a snapshot
  // must not split a bracket across the log rewrite); run it once the last
  // bracket closes.
  if (open_brackets_ == 0 && checkpoint_pending_ &&
      checkpoint_defer_depth_ == 0 && wal_ != nullptr && !crashed_) {
    checkpoint_pending_ = false;
    MaybeAutoCheckpoint();
  }
  return end;
}

void Pager::MaybeAutoCheckpoint() {
  if (config_.wal_auto_checkpoint_bytes == 0 || in_checkpoint_) return;
  if (wal_->bytes_since_checkpoint() < config_.wal_auto_checkpoint_bytes) {
    return;
  }
  if (checkpoint_defer_depth_ > 0 || open_brackets_ > 0) {
    // Mid-operation (see CheckpointDeferral) or mid-bracket: latch and
    // run at scope exit / last bracket close, so a snapshot can never
    // capture a half-applied logical change or split a bracket.
    checkpoint_pending_ = true;
    return;
  }
  CheckpointInternal();
}

size_t Pager::CheckpointInternal() {
  DS_PAGER_CHECK(wal_ != nullptr && !in_checkpoint_,
                 "checkpoint without a WAL or re-entered");
  DS_PAGER_CHECK(open_brackets_ == 0,
                 "checkpoint inside an open statement bracket");
  in_checkpoint_ = true;
  // Begin record: the dirty-page table as of checkpoint start. Redo-only
  // replay does not need it (it replays everything since the snapshot), but
  // it brackets the fuzzy checkpoint in the old log for offline tooling and
  // makes a crash mid-checkpoint diagnosable.
  wal_payload_.clear();
  std::vector<const ValuePage*> dirty;
  for (const auto& page : page_table_) {
    if (page != nullptr && !page->is_free() && page->dirty_) {
      dirty.push_back(page.get());
    }
  }
  AppendU32(&wal_payload_, static_cast<uint32_t>(dirty.size()));
  for (const ValuePage* page : dirty) {
    AppendU64(&wal_payload_, page->file_);
    AppendU64(&wal_payload_, page->index_in_file_);
  }
  wal_->Append(WalRecordType::kCheckpointBegin, wal_payload_);
  // The WAL rule wholesale: every record producing the images about to be
  // written is made durable by one sync instead of per-page EnsureDurable.
  wal_->Sync();
  // Everything parked is durable now; release it so the snapshot's spill
  // directory lists those slots as free.
  DrainDeferredFrees();

  size_t flushed = 0;
  for (const auto& page : page_table_) {
    if (page == nullptr || page->is_free() || !page->dirty_) continue;
    FileChain& chain = ChainOrDie(page->file_);
    WriteBack(*page, chain.pages[page->index_in_file_]);
    page->dirty_ = false;
    ++flushed;
  }
  if (spill_ != nullptr) spill_->Sync();

  // Atomic log swap: the new log is just the metadata snapshot (plus the
  // checkpoint-end bracket). Every page image the snapshot's directory
  // points at is on disk and fsynced, so replay-from-here is complete; the
  // old log — if a crash preserves it instead — replays idempotently over
  // the newer spill state thanks to full-page images.
  std::string snapshot;
  BuildSnapshot(&snapshot);
  last_checkpoint_lsn_ = wal_->RewriteWithCheckpoint(snapshot);
  stats_.pages_flushed += flushed;
  in_checkpoint_ = false;
  return flushed;
}

void Pager::BuildSnapshot(std::string* out) const {
  out->clear();
  AppendU64(out, next_file_id_);
  AppendU32(out, static_cast<uint32_t>(files_.size()));
  for (const auto& [id, chain] : files_) {
    AppendU64(out, id);
    AppendU64(out, chain.size);
    AppendU64(out, chain.pages.size());
    for (const PageRef& ref : chain.pages) {
      AppendU64(out, ref.spill_slot);
    }
  }
  SpillFile::DirectorySnapshot dir;
  if (spill_ != nullptr) dir = spill_->ExportDirectory();
  AppendU64(out, dir.slots.size());
  for (const SpillFile::Record& rec : dir.slots) {
    AppendU64(out, rec.offset);
    AppendU32(out, rec.capacity);
    AppendU32(out, rec.length);
  }
  AppendU32(out, static_cast<uint32_t>(dir.free_slots.size()));
  for (uint64_t slot : dir.free_slots) AppendU64(out, slot);
  AppendU64(out, dir.end_offset);
  AppendU64(out, dir.dead_bytes);
  // Catalog section. With a live provider the blob is serialized fresh and
  // subsumes any earlier DDL records; without one (recovery-time checkpoint,
  // plain-pager users) the recovered blob and DDL list are carried forward
  // verbatim so a checkpoint can never lose catalog state the pager does
  // not understand. Absent entirely in pre-catalog (PR 4) snapshots, which
  // RestoreSnapshot treats as an empty section.
  if (catalog_provider_) {
    std::string blob;
    catalog_provider_(&blob);
    AppendU64(out, blob.size());
    out->append(blob);
    AppendU32(out, 0);
  } else {
    AppendU64(out, catalog_blob_.size());
    out->append(catalog_blob_);
    AppendU32(out, static_cast<uint32_t>(catalog_ddl_.size()));
    for (const CatalogRecord& rec : catalog_ddl_) {
      out->push_back(static_cast<char>(rec.type));
      AppendU64(out, rec.payload.size());
      out->append(rec.payload);
    }
  }
}

void Pager::RestoreSnapshot(const std::string& payload) {
  // The payload survived a CRC check; a parse failure here is corruption of
  // a kind the CRC cannot produce (or a version skew) — abort loudly.
  size_t pos = 0;
  uint32_t n_files = 0;
  bool ok = ReadU64(payload, &pos, &next_file_id_) &&
            ReadU32(payload, &pos, &n_files);
  for (uint32_t i = 0; ok && i < n_files; ++i) {
    uint64_t id = 0, size = 0, n_pages = 0;
    ok = ReadU64(payload, &pos, &id) && ReadU64(payload, &pos, &size) &&
         ReadU64(payload, &pos, &n_pages);
    if (!ok) break;
    FileChain chain;
    chain.size = size;
    chain.pages.resize(static_cast<size_t>(n_pages));
    for (uint64_t p = 0; ok && p < n_pages; ++p) {
      ok = ReadU64(payload, &pos, &chain.pages[p].spill_slot);
    }
    files_.emplace(id, std::move(chain));
  }
  SpillFile::DirectorySnapshot dir;
  uint64_t n_slots = 0;
  ok = ok && ReadU64(payload, &pos, &n_slots);
  dir.slots.resize(static_cast<size_t>(n_slots));
  for (uint64_t i = 0; ok && i < n_slots; ++i) {
    ok = ReadU64(payload, &pos, &dir.slots[i].offset) &&
         ReadU32(payload, &pos, &dir.slots[i].capacity) &&
         ReadU32(payload, &pos, &dir.slots[i].length);
  }
  uint32_t n_free = 0;
  ok = ok && ReadU32(payload, &pos, &n_free);
  dir.free_slots.resize(n_free);
  for (uint32_t i = 0; ok && i < n_free; ++i) {
    ok = ReadU64(payload, &pos, &dir.free_slots[i]);
  }
  ok = ok && ReadU64(payload, &pos, &dir.end_offset) &&
       ReadU64(payload, &pos, &dir.dead_bytes);
  // Catalog section (absent in pre-catalog snapshots: those end right here).
  catalog_blob_.clear();
  catalog_ddl_.clear();
  if (ok && pos < payload.size()) {
    uint64_t blob_len = 0;
    ok = ReadU64(payload, &pos, &blob_len) &&
         pos + blob_len <= payload.size();
    if (ok) {
      catalog_blob_.assign(payload, pos, static_cast<size_t>(blob_len));
      pos += static_cast<size_t>(blob_len);
    }
    uint32_t n_ddl = 0;
    ok = ok && ReadU32(payload, &pos, &n_ddl);
    for (uint32_t i = 0; ok && i < n_ddl; ++i) {
      CatalogRecord rec;
      uint64_t len = 0;
      ok = pos < payload.size();
      if (ok) {
        rec.type = static_cast<WalRecordType>(
            static_cast<unsigned char>(payload[pos]));
        pos += 1;
      }
      ok = ok && ReadU64(payload, &pos, &len) && pos + len <= payload.size();
      if (ok) {
        rec.payload.assign(payload, pos, static_cast<size_t>(len));
        pos += static_cast<size_t>(len);
        catalog_ddl_.push_back(std::move(rec));
      }
    }
  }
  ok = ok && pos == payload.size();
  DS_PAGER_CHECK(ok, "malformed WAL checkpoint snapshot");
  if (!dir.slots.empty() || dir.end_offset > 0) {
    EnsureSpill().RestoreDirectory(dir);
  }
}

ValuePage& Pager::MountEmpty(FileId file, FileChain& chain,
                             uint64_t page_index) {
  mount_sequential_ = false;  // replay mounts are hot
  PageId frame = AcquireFrame();  // may evict; frames come back scrubbed
  ValuePage& page = *page_table_[frame];
  page.file_ = file;
  page.index_in_file_ = page_index;
  page.referenced_ = true;
  chain.pages[page_index].frame = frame;
  resident_pages_ += 1;
  return page;
}

void Pager::ApplyUpdateRecord(const Wal::Record& rec) {
  size_t pos = 0;
  uint64_t file = 0, page_index = 0, size = 0;
  uint16_t first = 0, count = 0;
  bool ok = ReadU64(rec.payload, &pos, &file) &&
            ReadU64(rec.payload, &pos, &page_index) &&
            ReadU16(rec.payload, &pos, &first) &&
            ReadU16(rec.payload, &pos, &count) &&
            ReadU64(rec.payload, &pos, &size);
  DS_PAGER_CHECK(ok && count > 0 && first + count <= kSlotsPerPage,
                 "malformed WAL update record");
  FileChain& chain = ChainOrDie(file);
  mount_sequential_ = false;
  EnsureCapacity(file, chain,
                 page_index * kSlotsPerPage + first + count - 1);
  PageRef& ref = chain.pages[page_index];
  ValuePage* page;
  if (count == kSlotsPerPage) {
    // Full-page image: never read the spill base — it may be the very torn
    // write this record exists to repair.
    page = ref.resident() ? page_table_[ref.frame].get()
                          : &MountEmpty(file, chain, page_index);
    ref.fpi_lsn = rec.lsn;
  } else {
    page = &PageAt(file, chain, page_index);
  }
  for (uint64_t i = first; i < static_cast<uint64_t>(first) + count; ++i) {
    Value v;
    DS_PAGER_CHECK(DecodeValue(rec.payload, &pos, &v),
                   "malformed WAL update values");
    page->slot(i) = std::move(v);
  }
  DS_PAGER_CHECK(pos == rec.payload.size(), "trailing WAL update bytes");
  page->dirty_ = true;
  page->referenced_ = true;
  page->page_lsn_ = rec.lsn;
  chain.size = size;
}

void Pager::ReplayRecord(const Wal::Record& rec) {
  size_t pos = 0;
  switch (rec.type) {
    case WalRecordType::kCheckpoint:
      RestoreSnapshot(rec.payload);
      return;
    case WalRecordType::kCheckpointBegin:
    case WalRecordType::kCheckpointEnd:
      return;  // brackets only; redo replay carries the state
    case WalRecordType::kTxnBegin:
    case WalRecordType::kTxnCommit:
    case WalRecordType::kTxnAbort:
      // Bracket markers carry no state of their own; Recover() already
      // used them to buffer-and-filter torn brackets before replay.
      return;
    case WalRecordType::kTxnData:
      // Envelopes are unwrapped by Recover() before dispatch; one reaching
      // this switch would mean a bracket buffer leaked an undecoded record.
      DS_PAGER_CHECK(false, "kTxnData envelope reached ReplayRecord");
      return;
    case WalRecordType::kCreateFile: {
      uint64_t id = 0;
      DS_PAGER_CHECK(ReadU64(rec.payload, &pos, &id),
                     "malformed WAL create record");
      files_.emplace(id, FileChain{});
      if (id >= next_file_id_) next_file_id_ = id + 1;
      return;
    }
    case WalRecordType::kDropFile: {
      uint64_t id = 0;
      DS_PAGER_CHECK(ReadU64(rec.payload, &pos, &id),
                     "malformed WAL drop record");
      DropFile(id);
      return;
    }
    case WalRecordType::kTruncate: {
      uint64_t id = 0, slots = 0;
      DS_PAGER_CHECK(ReadU64(rec.payload, &pos, &id) &&
                         ReadU64(rec.payload, &pos, &slots),
                     "malformed WAL truncate record");
      Truncate(id, slots);
      return;
    }
    case WalRecordType::kGrow: {
      uint64_t id = 0, pages = 0;
      DS_PAGER_CHECK(ReadU64(rec.payload, &pos, &id) &&
                         ReadU64(rec.payload, &pos, &pages) && pages > 0,
                     "malformed WAL grow record");
      FileChain& chain = ChainOrDie(id);
      mount_sequential_ = false;
      if (chain.pages.size() < pages) {
        EnsureCapacity(id, chain, pages * kSlotsPerPage - 1);
      }
      return;
    }
    case WalRecordType::kUpdate:
      ApplyUpdateRecord(rec);
      return;
    case WalRecordType::kCreateTable:
    case WalRecordType::kDropTable:
    case WalRecordType::kAddColumn:
    case WalRecordType::kDropColumn:
    case WalRecordType::kRenameColumn:
    case WalRecordType::kReorganize:
      // Opaque catalog DDL: collected in log order for the catalog layer,
      // which applies them over the recovered blob after page redo is done
      // (the records carry full descriptors, so order relative to page
      // records does not matter — only their order among themselves).
      catalog_ddl_.push_back(CatalogRecord{rec.type, rec.payload});
      return;
  }
  DS_PAGER_CHECK(false, "unknown WAL record type");
}

uint64_t Pager::LogCatalogRecord(WalRecordType type,
                                 const std::string& payload) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  DS_PAGER_CHECK(IsCatalogRecordType(type),
                 "LogCatalogRecord with a non-catalog record type");
  if (wal_ == nullptr || replaying_ || crashed_) return 0;
  // DDL never rides a statement bracket (it is its own commit point, synced
  // right below): the *calling thread* must not be inside an open bracket.
  // Other transactions' open brackets are fine — this record is appended
  // untagged, so recovery replays it immediately rather than routing it
  // into any bracket buffer. BeginStatement depth alone is fine — a
  // bracket only opens with its first AppendRecord.
  {
    TxnContext* ctx = CurrentCtxLocked();
    DS_PAGER_CHECK(ctx == nullptr || !ctx->open,
                   "catalog DDL inside an open statement bracket");
  }
  uint64_t lsn = wal_->Append(type, payload);
  // DDL is a commit point: the schema change (and, by WAL order, every page
  // record before it) survives any crash once this returns.
  wal_->Sync();
  DrainDeferredFrees();
  MaybeAutoCheckpoint();
  return lsn;
}

void Pager::set_catalog_snapshot_provider(
    std::function<void(std::string*)> provider) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  catalog_provider_ = std::move(provider);
  // The live catalog now owns this state; the recovered copies are spent.
  catalog_blob_.clear();
  catalog_blob_.shrink_to_fit();
  catalog_ddl_.clear();
}

void Pager::DetachCatalogProvider() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (!catalog_provider_) return;
  // Capture one last blob so the checkpoints that outlive the catalog layer
  // (notably the destructor's) keep carrying the full catalog forward.
  catalog_blob_.clear();
  catalog_provider_(&catalog_blob_);
  catalog_ddl_.clear();
  catalog_provider_ = nullptr;
}

std::vector<FileId> Pager::FileIds() const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  std::vector<FileId> ids;
  ids.reserve(files_.size());
  for (const auto& [id, chain] : files_) {
    (void)chain;
    ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

void Pager::Recover() {
  replaying_ = true;
  bool accounting_was = accounting_;
  accounting_ = false;  // replay is physical redo, not workload I/O
  uint64_t records = 0;
  uint64_t first_lsn = 0, last_lsn = 0, last_bytes = 0;
  // Bracket atomicity at replay time: records inside a kTxnBegin..close
  // bracket are buffered — per transaction id, since several brackets may
  // be open at once — and applied only when the closing record is seen, in
  // bracket-close order (concurrent transactions touch disjoint pages and
  // close before releasing their latches, so per-page order is preserved).
  // A bracket the (already torn-tail-truncated) log ends inside never
  // committed — it is dropped wholesale, which is the whole contract: a
  // crash at any byte offset yields exactly the committed-bracket set.
  // Empty-payload markers are the legacy single-bracket format (pre-tagged
  // logs); untagged records outside any bracket replay immediately. No
  // physical truncation is needed; recovery ends on a checkpoint that
  // rewrites the log anyway.
  std::unordered_map<uint64_t, std::vector<Wal::Record>> brackets;
  std::vector<Wal::Record> legacy_bracket;
  bool legacy_in_bracket = false;
  bool opened = wal_->Open([&](const Wal::Record& rec) {
    if (records == 0) first_lsn = rec.lsn;
    last_lsn = rec.lsn;
    last_bytes = Wal::kRecordHeaderBytes + 1 + rec.payload.size();
    records += 1;
    switch (rec.type) {
      case WalRecordType::kTxnBegin: {
        if (rec.payload.empty()) {  // legacy single-bracket log
          legacy_bracket.clear();
          legacy_in_bracket = true;
          return;
        }
        size_t pos = 0;
        uint64_t id = 0;
        DS_PAGER_CHECK(ReadU64(rec.payload, &pos, &id),
                       "malformed WAL txn-begin record");
        brackets[id].clear();
        return;
      }
      case WalRecordType::kTxnData: {
        size_t pos = 0;
        uint64_t id = 0;
        bool data_ok =
            ReadU64(rec.payload, &pos, &id) && pos < rec.payload.size();
        DS_PAGER_CHECK(data_ok, "malformed WAL txn-data record");
        auto it = brackets.find(id);
        DS_PAGER_CHECK(it != brackets.end(),
                       "WAL txn-data outside its bracket");
        Wal::Record inner;
        inner.lsn = rec.lsn;
        inner.type = static_cast<WalRecordType>(
            static_cast<unsigned char>(rec.payload[pos]));
        inner.payload.assign(rec.payload, pos + 1,
                             rec.payload.size() - pos - 1);
        it->second.push_back(std::move(inner));
        return;
      }
      case WalRecordType::kTxnCommit:
      case WalRecordType::kTxnAbort: {
        if (rec.payload.empty()) {  // legacy close
          for (const Wal::Record& r : legacy_bracket) ReplayRecord(r);
          legacy_bracket.clear();
          legacy_in_bracket = false;
          return;
        }
        size_t pos = 0;
        uint64_t id = 0;
        DS_PAGER_CHECK(ReadU64(rec.payload, &pos, &id),
                       "malformed WAL txn-close record");
        auto it = brackets.find(id);
        DS_PAGER_CHECK(it != brackets.end(), "WAL txn-close without begin");
        for (const Wal::Record& r : it->second) ReplayRecord(r);
        brackets.erase(it);
        return;
      }
      default:
        break;
    }
    if (legacy_in_bracket) {
      legacy_bracket.push_back(rec);
    } else {
      ReplayRecord(rec);
    }
  });
  // Unterminated brackets: the torn transactions, dropped wholesale.
  brackets.clear();
  legacy_bracket.clear();
  accounting_ = accounting_was;
  replaying_ = false;
  if (!opened) {
    // Fresh database: write checkpoint zero so "a WAL always starts with a
    // snapshot" holds from birth.
    std::string snapshot;
    BuildSnapshot(&snapshot);
    last_checkpoint_lsn_ = wal_->RewriteWithCheckpoint(snapshot);
    return;
  }
  recovered_ = true;
  recovery_records_ = records;
  recovery_bytes_ = last_lsn + last_bytes - first_lsn;
  last_checkpoint_lsn_ = wal_->checkpoint_lsn();
  // Recovery ends on a checkpoint: the replayed state is flushed, the log
  // truncated, and any spill space a crashed run leaked past the old
  // snapshot is reclaimed by the fresh directory. Restartable at any point:
  // until the rewrite lands, the old log simply replays again.
  CheckpointInternal();
}

}  // namespace storage
}  // namespace dataspread
