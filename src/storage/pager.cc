#include "storage/pager.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <utility>

// API-misuse checks stay on in release builds: the pager recycles frames, so
// an out-of-range access or a freed-while-pinned page would otherwise corrupt
// another file's data silently. One predictable branch per call.
#define DS_PAGER_CHECK(cond, msg)                                  \
  do {                                                             \
    if (!(cond)) {                                                 \
      std::fprintf(stderr, "storage::Pager check failed: %s\n",    \
                   (msg));                                         \
      std::abort();                                                \
    }                                                              \
  } while (0)

namespace dataspread {
namespace storage {

Pager::Pager(PagerConfig config) : config_(std::move(config)) {}

FileId Pager::CreateFile() {
  FileId id = next_file_id_++;
  files_.emplace(id, FileChain{});
  return id;
}

Pager::FileChain& Pager::ChainOrDie(FileId file) {
  auto it = files_.find(file);
  DS_PAGER_CHECK(it != files_.end(), "unknown storage file");
  return it->second;
}

const Pager::FileChain& Pager::ChainOrDie(FileId file) const {
  auto it = files_.find(file);
  DS_PAGER_CHECK(it != files_.end(), "unknown storage file");
  return it->second;
}

size_t Pager::FilePages(FileId file) const {
  return ChainOrDie(file).pages.size();
}

uint64_t Pager::FileSize(FileId file) const { return ChainOrDie(file).size; }

bool Pager::IsResident(FileId file, uint64_t page_index) const {
  const FileChain& chain = ChainOrDie(file);
  return page_index < chain.pages.size() && chain.pages[page_index].resident();
}

bool Pager::IsScanClass(FileId file, uint64_t page_index) const {
  const FileChain& chain = ChainOrDie(file);
  if (page_index >= chain.pages.size()) return false;
  const PageRef& ref = chain.pages[page_index];
  return ref.resident() && page_table_[ref.frame]->scan_;
}

SpillFile& Pager::EnsureSpill() {
  if (spill_ == nullptr) {
    spill_ = std::make_unique<SpillFile>(config_.spill_path);
  }
  return *spill_;
}

void Pager::WriteBack(ValuePage& page, PageRef& ref) {
  SpillFile& spill = EnsureSpill();
  if (ref.spill_slot == SpillFile::kNoSlot) {
    ref.spill_slot = spill.AllocateSlot();
  }
  stats_.spill_bytes_written += spill.WritePage(ref.spill_slot, page);
}

void Pager::ReleaseFrame(PageId id) {
  ValuePage& page = *page_table_[id];
  for (Value& v : page.slots_) v = Value::Null();  // release heap payloads
  if (page.scan_) {
    page.scan_ = false;
    scan_resident_ -= 1;  // any lingering ring entry goes stale and is dropped
  }
  page.file_ = 0;
  page.index_in_file_ = 0;
  page.dirty_ = false;
  page.referenced_ = false;
  free_frames_.push_back(id);
  resident_pages_ -= 1;
}

void Pager::EvictPage(ValuePage& page) {
  DS_PAGER_CHECK(!page.is_free() && page.pin_count_ == 0,
                 "evicting a free or pinned page");
  FileChain& chain = ChainOrDie(page.file_);
  PageRef& ref = chain.pages[page.index_in_file_];
  // A dirty page needs write-back; a clean page only needs one if it has
  // never been spilled (the spill copy is the authoritative one once gone).
  if (page.dirty_ || ref.spill_slot == SpillFile::kNoSlot) {
    WriteBack(page, ref);
    page.dirty_ = false;
  }
  if (page.scan_) stats_.scan_evictions += 1;
  PageId frame = ref.frame;
  ref.frame = PageRef::kNoFrame;
  ReleaseFrame(frame);
  stats_.evictions += 1;
}

bool Pager::ScanEntryValid(const ScanEntry& e) const {
  if (e.frame >= page_table_.size()) return false;
  const ValuePage* page = page_table_[e.frame].get();
  return page != nullptr && page->scan_ && page->file_ == e.file &&
         page->index_in_file_ == e.page;
}

size_t Pager::scan_ring_size() const {
  if (config_.scan_ring_pages > 0) return config_.scan_ring_pages;
  size_t cap = config_.max_resident_pages;
  return std::max(kMinScanRing, cap / 8);
}

ValuePage* Pager::SelectVictim() {
  // Oldest scan-ring page first: a sequential stream recycles its own
  // frames, leaving the clock-managed hot set untouched. Entries are
  // validated lazily; each is considered at most once per call.
  size_t budget = scan_fifo_.size();
  while (budget-- > 0 && !scan_fifo_.empty()) {
    ScanEntry e = scan_fifo_.front();
    scan_fifo_.pop_front();
    if (!ScanEntryValid(e)) continue;  // promoted/evicted/freed: stale
    ValuePage* page = page_table_[e.frame].get();
    if (page->pin_count_ > 0) {
      scan_fifo_.push_back(e);  // still scan-class, just unevictable now
      continue;
    }
    return page;
  }
  return ClockVictim();
}

void Pager::EvictDownTo(size_t target) {
  while (resident_pages_ > target) {
    ValuePage* victim = SelectVictim();
    if (victim == nullptr) break;  // everything left is pinned: overshoot
    EvictPage(*victim);
  }
}

void Pager::EnforceScanRing(PageId keep) {
  size_t ring = scan_ring_size();
  size_t budget = scan_fifo_.size();
  while (scan_resident_ > ring && budget-- > 0 && !scan_fifo_.empty()) {
    ScanEntry e = scan_fifo_.front();
    scan_fifo_.pop_front();
    if (!ScanEntryValid(e)) continue;
    ValuePage* page = page_table_[e.frame].get();
    if (e.frame == keep || page->pin_count_ > 0) {
      scan_fifo_.push_back(e);
      continue;
    }
    EvictPage(*page);
  }
}

void Pager::ClassifyMount(ValuePage& page, PageId frame) {
  if (!mount_sequential_ || !config_.scan_resistant ||
      config_.max_resident_pages == 0) {
    return;  // hot mount: managed by the second-chance clock
  }
  page.scan_ = true;
  scan_resident_ += 1;
  scan_fifo_.push_back(ScanEntry{frame, page.file_, page.index_in_file_});
  // The stream pays for its own footprint immediately: once the ring is
  // full, mounting one more scan page retires the oldest one, keeping the
  // rest of the pool free for the hot set even before the cap binds.
  EnforceScanRing(frame);
}

void Pager::MaybePromote(ValuePage& page) {
  if (page.scan_ && !mount_sequential_) {
    // A point access re-used a scan page: it is hot after all. Its ring
    // entry goes stale; from here the clock governs it.
    page.scan_ = false;
    scan_resident_ -= 1;
  }
}

void Pager::NoteSlotAccess(FileChain& chain, uint64_t page_index) {
  mount_sequential_ = chain.seq.Note(page_index);
}

PageId Pager::AcquireFrame() {
  if (config_.max_resident_pages > 0 &&
      resident_pages_ >= config_.max_resident_pages) {
    // Make room so the pool stays at its cap after the new page mounts.
    EvictDownTo(config_.max_resident_pages - 1);
  }
  if (!free_frames_.empty()) {
    PageId id = free_frames_.back();
    free_frames_.pop_back();
    // A shell released by a runtime cap shrink is rebuilt on reuse.
    if (page_table_[id] == nullptr) {
      page_table_[id] = std::make_unique<ValuePage>();
    }
    return id;
  }
  page_table_.push_back(std::make_unique<ValuePage>());
  return page_table_.size() - 1;
}

void Pager::FaultIn(FileId file, FileChain& chain, uint64_t page_index) {
  PageRef& ref = chain.pages[page_index];
  DS_PAGER_CHECK(!ref.resident() && ref.spill_slot != SpillFile::kNoSlot,
                 "faulting a page with no spill copy");
  PageId frame = AcquireFrame();  // may evict; `ref` stays valid (no resize)
  ValuePage& page = *page_table_[frame];
  page.file_ = file;
  page.index_in_file_ = page_index;
  page.referenced_ = true;
  ref.frame = frame;
  resident_pages_ += 1;
  stats_.spill_bytes_read += spill_->ReadPage(ref.spill_slot, &page);
  if (in_readahead_) {
    stats_.readaheads += 1;  // speculative load, not a demand stall
  } else {
    stats_.faults += 1;
  }
  ClassifyMount(page, frame);
  // Sequential readahead: the stream will want the next chain page in a
  // moment — load it now, turning two demand stalls into one batched pass
  // over the spill file. The demand page is pinned across the recursive
  // fault so making room can never take the frame just mounted.
  if (mount_sequential_ && config_.readahead && !in_readahead_ &&
      config_.max_resident_pages > 0 && page_index + 1 < chain.pages.size()) {
    const PageRef& next = chain.pages[page_index + 1];
    if (!next.resident() && next.spill_slot != SpillFile::kNoSlot) {
      in_readahead_ = true;
      page.pin_count_ += 1;
      FaultIn(file, chain, page_index + 1);
      page.pin_count_ -= 1;
      in_readahead_ = false;
    }
  }
}

void Pager::FreePage(PageRef& ref) {
  if (ref.resident()) {
    ValuePage& page = *page_table_[ref.frame];
    DS_PAGER_CHECK(page.pin_count_ == 0, "freeing a pinned page");
    ReleaseFrame(ref.frame);
    ref.frame = PageRef::kNoFrame;
  }
  if (ref.spill_slot != SpillFile::kNoSlot) {
    spill_->FreeSlot(ref.spill_slot);
    ref.spill_slot = SpillFile::kNoSlot;
  }
  stats_.pages_freed += 1;
}

void Pager::DropFile(FileId file) {
  FileChain& chain = ChainOrDie(file);
  for (PageRef& ref : chain.pages) FreePage(ref);
  files_.erase(file);
}

void Pager::EnsureCapacity(FileId file, FileChain& chain, uint64_t slot) {
  while (chain.pages.size() * kSlotsPerPage <= slot) {
    PageId frame = AcquireFrame();
    ValuePage& page = *page_table_[frame];
    page.file_ = file;
    page.index_in_file_ = chain.pages.size();
    PageRef ref;
    ref.frame = frame;
    chain.pages.push_back(ref);
    resident_pages_ += 1;
    stats_.pages_allocated += 1;
    ClassifyMount(page, frame);
  }
}

void Pager::RecordRead(FileId file, uint64_t slot, ValuePage& page) {
  page.referenced_ = true;
  if (!accounting_) return;
  stats_.slot_reads += 1;
  epoch_read_.insert(PageKey{file, slot / kSlotsPerPage});
}

void Pager::RecordWrite(FileId file, uint64_t slot, ValuePage& page) {
  page.referenced_ = true;
  page.dirty_ = true;
  if (!accounting_) return;
  stats_.slot_writes += 1;
  epoch_written_.insert(PageKey{file, slot / kSlotsPerPage});
}

const Value& Pager::Read(FileId file, uint64_t slot) {
  FileChain& chain = ChainOrDie(file);
  DS_PAGER_CHECK(slot < chain.pages.size() * kSlotsPerPage,
                 "read past file end");
  NoteSlotAccess(chain, slot / kSlotsPerPage);
  ValuePage& page = PageForSlot(file, chain, slot);
  MaybePromote(page);
  RecordRead(file, slot, page);
  return page.slot(slot % kSlotsPerPage);
}

void Pager::ReadRange(FileId file, uint64_t start, uint64_t count, Row* out) {
  if (count == 0) return;
  FileChain& chain = ChainOrDie(file);
  DS_PAGER_CHECK(start + count <= chain.pages.size() * kSlotsPerPage,
                 "read range past file end");
  out->reserve(out->size() + count);
  // Page by page: each page is faulted in (possibly evicting an earlier one
  // of this very range — its values are already copied out) and drained
  // before the next, so a range wider than the pool still works.
  uint64_t s = start;
  const uint64_t end = start + count;
  while (s < end) {
    uint64_t page_index = s / kSlotsPerPage;
    uint64_t page_end = std::min(end, (page_index + 1) * kSlotsPerPage);
    NoteSlotAccess(chain, page_index);
    ValuePage& page = PageAt(file, chain, page_index);
    MaybePromote(page);
    page.referenced_ = true;
    if (accounting_) epoch_read_.insert(PageKey{file, page_index});
    for (; s < page_end; ++s) {
      out->push_back(page.slot(s % kSlotsPerPage));
    }
  }
  if (accounting_) stats_.slot_reads += count;
}

void Pager::Write(FileId file, uint64_t slot, Value v) {
  FileChain& chain = ChainOrDie(file);
  NoteSlotAccess(chain, slot / kSlotsPerPage);
  EnsureCapacity(file, chain, slot);
  if (slot >= chain.size) chain.size = slot + 1;
  ValuePage& page = PageForSlot(file, chain, slot);
  MaybePromote(page);
  RecordWrite(file, slot, page);
  page.slot(slot % kSlotsPerPage) = std::move(v);
}

void Pager::WriteRange(FileId file, uint64_t start, const Value* values,
                       uint64_t count) {
  if (count == 0) return;
  FileChain& chain = ChainOrDie(file);
  uint64_t s = start;
  const uint64_t end = start + count;
  while (s < end) {
    uint64_t page_index = s / kSlotsPerPage;
    uint64_t page_end = std::min(end, (page_index + 1) * kSlotsPerPage);
    NoteSlotAccess(chain, page_index);
    EnsureCapacity(file, chain, page_end - 1);
    ValuePage& page = PageAt(file, chain, page_index);
    MaybePromote(page);
    page.referenced_ = true;
    page.dirty_ = true;
    if (accounting_) epoch_written_.insert(PageKey{file, page_index});
    for (; s < page_end; ++s) {
      page.slot(s % kSlotsPerPage) = values[s - start];
    }
  }
  if (end > chain.size) chain.size = end;
  if (accounting_) stats_.slot_writes += count;
}

Value Pager::Take(FileId file, uint64_t slot) {
  FileChain& chain = ChainOrDie(file);
  DS_PAGER_CHECK(slot < chain.pages.size() * kSlotsPerPage,
                 "take past file end");
  NoteSlotAccess(chain, slot / kSlotsPerPage);
  ValuePage& page = PageForSlot(file, chain, slot);
  MaybePromote(page);
  RecordRead(file, slot, page);
  // Nulling the slot mutates the page: without the dirty bit an eviction
  // could skip write-back and resurrect the taken value from a stale spill
  // copy. Accounting-wise Take still counts as a read (unchanged).
  page.dirty_ = true;
  return std::exchange(page.slot(slot % kSlotsPerPage), Value::Null());
}

void Pager::Truncate(FileId file, uint64_t slot_count) {
  FileChain& chain = ChainOrDie(file);
  if (slot_count >= chain.size) return;
  mount_sequential_ = false;  // a boundary-page fault-in is a hot mount
  // Clear vacated slots on the surviving boundary page, so Value payloads
  // (strings) are released even without a page free. An evicted boundary
  // page is faulted in and re-marked dirty so the clearing reaches its spill
  // copy on the next write-back.
  size_t keep_pages =
      static_cast<size_t>((slot_count + kSlotsPerPage - 1) / kSlotsPerPage);
  if (slot_count < keep_pages * kSlotsPerPage) {
    ValuePage& page = PageAt(file, chain, keep_pages - 1);
    for (uint64_t s = slot_count;
         s < chain.size && s < keep_pages * kSlotsPerPage; ++s) {
      page.slot(s % kSlotsPerPage) = Value::Null();
    }
    page.dirty_ = true;  // not accounted: truncation is not a page write
  }
  while (chain.pages.size() > keep_pages) {
    FreePage(chain.pages.back());
    chain.pages.pop_back();
  }
  chain.size = slot_count;
  if (chain.seq.last_page != kNoPageIndex &&
      chain.seq.last_page >= keep_pages) {
    chain.seq = SeqDetector{};  // the detector must not span freed pages
  }
}

ValuePage* Pager::Pin(FileId file, uint64_t page_index) {
  FileChain& chain = ChainOrDie(file);
  mount_sequential_ = false;  // explicit pins are hot accesses
  EnsureCapacity(file, chain, page_index * kSlotsPerPage);
  ValuePage& page = PageAt(file, chain, page_index);
  MaybePromote(page);
  page.pin_count_ += 1;
  page.referenced_ = true;
  stats_.pins += 1;
  if (accounting_) {
    epoch_read_.insert(PageKey{file, page_index});
    stats_.slot_reads += 1;
  }
  return &page;
}

void Pager::Unpin(ValuePage* page, bool dirtied) {
  DS_PAGER_CHECK(page != nullptr && page->pin_count_ > 0, "unbalanced Unpin");
  page->pin_count_ -= 1;
  if (dirtied) {
    page->dirty_ = true;
    if (accounting_) {
      epoch_written_.insert(PageKey{page->file_, page->index_in_file_});
      stats_.slot_writes += 1;
    }
  }
}

size_t Pager::pinned_pages() const {
  size_t n = 0;
  for (const auto& page : page_table_) {
    if (page != nullptr && !page->is_free() && page->pin_count_ > 0) ++n;
  }
  return n;
}

ValuePage* Pager::ClockVictim() {
  if (resident_pages_ == 0 || page_table_.empty()) return nullptr;
  // Bounded sweep — two revolutions: the first may only clear reference
  // bits, the second must then find any unpinned page. Termination does not
  // depend on pin state, so an all-pinned pool yields nullptr, never a hang
  // or a pinned frame.
  size_t limit = page_table_.size() * 2;
  for (size_t step = 0; step < limit; ++step) {
    ValuePage* candidate = page_table_[clock_hand_].get();
    clock_hand_ = (clock_hand_ + 1) % page_table_.size();
    if (candidate == nullptr) continue;  // released shell (cap shrink)
    ValuePage& page = *candidate;
    if (page.is_free() || page.pin_count_ > 0) continue;
    if (page.referenced_) {
      page.referenced_ = false;  // second chance
      continue;
    }
    return &page;
  }
  return nullptr;  // every resident page is pinned
}

size_t Pager::FlushAll() {
  size_t flushed = 0;
  for (const auto& page : page_table_) {
    if (page == nullptr || page->is_free() || !page->dirty_) continue;
    FileChain& chain = ChainOrDie(page->file_);
    WriteBack(*page, chain.pages[page->index_in_file_]);
    page->dirty_ = false;
    ++flushed;
  }
  stats_.pages_flushed += flushed;
  return flushed;
}

void Pager::set_max_resident_pages(size_t cap) {
  config_.max_resident_pages = cap;
  if (cap == 0) return;
  EvictDownTo(cap);
  // A shrink must actually release memory, not just move pages to disk:
  // drop the ValuePage shells of every free frame (each holds a 256-slot
  // array) and compact trailing holes so clock sweeps stay proportional to
  // the new pool size. Interior holes are kept as ids (frames are addressed
  // by stable index) and rebuilt on reuse.
  for (PageId id : free_frames_) page_table_[id].reset();
  while (!page_table_.empty() && page_table_.back() == nullptr) {
    page_table_.pop_back();
  }
  free_frames_.erase(
      std::remove_if(free_frames_.begin(), free_frames_.end(),
                     [&](PageId id) { return id >= page_table_.size(); }),
      free_frames_.end());
  if (clock_hand_ >= page_table_.size()) clock_hand_ = 0;
}

void Pager::BeginEpoch() {
  epoch_read_.clear();
  epoch_written_.clear();
}

}  // namespace storage
}  // namespace dataspread
