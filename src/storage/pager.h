#ifndef DATASPREAD_STORAGE_PAGER_H_
#define DATASPREAD_STORAGE_PAGER_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "types/value.h"

namespace dataspread {
namespace storage {

/// Identifies one storage file (page chain) inside a Pager. Ids start at 1 and
/// are never reused; 0 is "no file".
using FileId = uint64_t;

/// Index of a page frame inside the pager's page table. Frames are recycled
/// through a free list when files shrink or are dropped.
using PageId = uint64_t;

/// One fixed-size page of the unified storage pool.
///
/// A page holds 256 value slots — 4 KiB at the simulated 16 bytes/slot budget
/// (see DESIGN.md §2, substitution table) — plus the buffer-pool header every
/// real pager carries: owning file, position in that file's chain, pin count,
/// dirty bit, and the clock reference bit used for second-chance eviction.
class ValuePage {
 public:
  static constexpr size_t kSlotCount = 256;

  Value& slot(size_t i) { return slots_[i]; }
  const Value& slot(size_t i) const { return slots_[i]; }

  /// Owning file, or 0 while the frame sits on the free list.
  FileId file() const { return file_; }
  /// Position of this page in its owner's chain.
  uint64_t index_in_file() const { return index_in_file_; }

  uint32_t pin_count() const { return pin_count_; }
  bool dirty() const { return dirty_; }
  bool referenced() const { return referenced_; }
  bool is_free() const { return file_ == 0; }

 private:
  friend class Pager;

  std::array<Value, kSlotCount> slots_;
  FileId file_ = 0;
  uint64_t index_in_file_ = 0;
  uint32_t pin_count_ = 0;
  bool dirty_ = false;
  bool referenced_ = false;
};

/// Lifetime counters of a Pager. Epoch (distinct-page) figures live on the
/// Pager itself because they reset per measurement window.
struct PagerStats {
  uint64_t slot_reads = 0;       ///< Slot-level reads (not distinct).
  uint64_t slot_writes = 0;      ///< Slot-level writes (not distinct).
  uint64_t pages_allocated = 0;  ///< Frames handed to files (incl. reuse).
  uint64_t pages_freed = 0;      ///< Frames returned to the free list.
  uint64_t pages_flushed = 0;    ///< Dirty pages cleaned by FlushAll().
  uint64_t pins = 0;             ///< Pin() calls.
};

/// The unified paged storage engine behind every TableStorage model.
///
/// All cell data of a database lives in fixed-size ValuePages owned by one
/// Pager: each column/heap/attribute-group allocates a *file* (a page chain)
/// and addresses values by dense slot number. The pager provides
///   - slot-granular Read/Write/Take that grow files on demand,
///   - page-granular Pin/Unpin with dirty tracking for batch access,
///   - a clock (second-chance LRU) victim selector, ready for disk-backed
///     eviction (ROADMAP open item — no disk layer yet, so victims are only
///     selected, never actually evicted),
///   - built-in I/O accounting: distinct pages read/written per epoch, the
///     quantity the paper's Relational Storage Manager argues about.
///
/// Accounting can be disabled for timing-focused benchmarks; physical state
/// (page contents, dirty bits, reference bits) is maintained regardless.
class Pager {
 public:
  static constexpr uint64_t kPageBytes = 4096;
  static constexpr uint64_t kSlotBytes = 16;  // simulated on-disk slot size
  static constexpr uint64_t kSlotsPerPage = ValuePage::kSlotCount;
  static_assert(kSlotsPerPage == kPageBytes / kSlotBytes,
                "page geometry out of sync");

  Pager() = default;
  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  // ---- Files ----------------------------------------------------------------

  /// Allocates a new empty file (page chain). Files never alias pages.
  FileId CreateFile();
  /// Frees every page of `file`. Deallocation is not counted as page writes.
  void DropFile(FileId file);
  bool HasFile(FileId file) const { return files_.count(file) > 0; }
  /// Pages currently backing `file`.
  size_t FilePages(FileId file) const;
  /// Logical size of `file` in slots (highest written slot + 1, after
  /// truncation: the truncation point).
  uint64_t FileSize(FileId file) const;

  // ---- Slot access ----------------------------------------------------------

  /// Reads slot `slot` of `file`; the slot must be below the file's capacity
  /// (pages * kSlotsPerPage). Never-written slots read as NULL.
  const Value& Read(FileId file, uint64_t slot);
  /// Appends slots [start, start+count) to `out`. Equivalent to `count`
  /// Read() calls but resolves the file once and records one read per
  /// spanned page — the bulk path for contiguous tuple reads.
  void ReadRange(FileId file, uint64_t start, uint64_t count, Row* out);
  /// Writes slot `slot`, growing the file's chain as needed.
  void Write(FileId file, uint64_t slot, Value v);
  /// Moves the value out of `slot` (leaves NULL behind); counts as a read.
  Value Take(FileId file, uint64_t slot);
  /// Shrinks `file` to `slot_count` slots: whole pages past the end return to
  /// the free list, vacated slots are cleared. Not counted as page writes.
  /// Pages past the truncation point must be unpinned (checked).
  void Truncate(FileId file, uint64_t slot_count);

  // ---- Page-granular buffer-pool interface ----------------------------------

  /// Pins page `page_index` of `file` (growing the chain if needed) and
  /// returns it. Pinned pages are never chosen as eviction victims.
  ValuePage* Pin(FileId file, uint64_t page_index);
  /// Releases a pin; `dirtied` marks the page dirty and records the write.
  void Unpin(ValuePage* page, bool dirtied);

  /// Pages currently owned by some file (not on the free list).
  size_t resident_pages() const { return resident_pages_; }
  /// Resident pages with a non-zero pin count.
  size_t pinned_pages() const;

  /// Second-chance (clock) victim selection: returns the next unpinned,
  /// unreferenced resident page, clearing reference bits it sweeps past.
  /// Returns nullptr when every resident page is pinned or there are none.
  /// Actual eviction requires the disk layer (ROADMAP).
  ValuePage* ClockVictim();

  /// Cleans every dirty resident page (stand-in for writing them back);
  /// returns how many pages were flushed.
  size_t FlushAll();

  // ---- I/O accounting -------------------------------------------------------

  /// Starts a fresh measurement window for the distinct-page counters.
  void BeginEpoch();
  /// Distinct pages read/written since BeginEpoch().
  size_t EpochPagesRead() const { return epoch_read_.size(); }
  size_t EpochPagesWritten() const { return epoch_written_.size(); }

  const PagerStats& stats() const { return stats_; }

  /// Accounting costs a hash insert per access; timing-focused benchmarks
  /// disable it. Page contents and dirty/reference bits are unaffected.
  void set_accounting_enabled(bool enabled) { accounting_ = enabled; }
  bool accounting_enabled() const { return accounting_; }

 private:
  struct FileChain {
    std::vector<PageId> pages;
    uint64_t size = 0;  // logical slots; capacity is pages.size()*kSlotsPerPage
  };

  /// Distinct-page key stable across frame reuse: (file, index in file).
  static uint64_t EpochKey(FileId file, uint64_t page_index) {
    return (file << 24) ^ page_index;
  }

  FileChain& ChainOrDie(FileId file);
  const FileChain& ChainOrDie(FileId file) const;
  /// Grows `chain` until `slot` is addressable.
  void EnsureCapacity(FileId file, FileChain& chain, uint64_t slot);
  ValuePage& PageForSlot(FileChain& chain, uint64_t slot) {
    return *page_table_[chain.pages[slot / kSlotsPerPage]];
  }
  void FreePage(PageId id);

  void RecordRead(FileId file, uint64_t slot, ValuePage& page);
  void RecordWrite(FileId file, uint64_t slot, ValuePage& page);

  uint64_t next_file_id_ = 1;
  std::unordered_map<FileId, FileChain> files_;
  std::vector<std::unique_ptr<ValuePage>> page_table_;
  std::vector<PageId> free_pages_;
  size_t resident_pages_ = 0;
  size_t clock_hand_ = 0;

  bool accounting_ = true;
  PagerStats stats_;
  std::unordered_set<uint64_t> epoch_read_;
  std::unordered_set<uint64_t> epoch_written_;
};

}  // namespace storage
}  // namespace dataspread

#endif  // DATASPREAD_STORAGE_PAGER_H_
