#ifndef DATASPREAD_STORAGE_PAGER_H_
#define DATASPREAD_STORAGE_PAGER_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "storage/spill_file.h"
#include "storage/wal.h"
#include "types/value.h"

namespace dataspread {
namespace storage {

/// Identifies one storage file (page chain) inside a Pager. Ids start at 1 and
/// are never reused; 0 is "no file".
using FileId = uint64_t;

/// Index of a page frame inside the pager's page table. Frames are recycled
/// through a free list when files shrink, are dropped, or pages are evicted.
using PageId = uint64_t;

/// Identifies one transaction context of a Pager (see "Statement &
/// transaction brackets"). Ids are monotone per pager and never reused, so
/// they double as transaction ages for wait-die deadlock resolution
/// (smaller id == older transaction); 0 is "no transaction".
using TxnId = uint64_t;

/// Distinct-page identity (file, index in file) — the unit of the epoch
/// accounting. A genuine two-field key: unlike the former packed-uint64
/// scheme ((file << 24) ^ page), no two distinct (file, page) pairs ever
/// alias, no matter how long a chain grows or how many files exist.
struct PageKey {
  FileId file = 0;
  uint64_t page = 0;
  bool operator==(const PageKey& o) const {
    return file == o.file && page == o.page;
  }
};

struct PageKeyHash {
  size_t operator()(const PageKey& k) const {
    // splitmix64-style finalization over both fields; collisions here only
    // cost hash-bucket sharing, never identity (equality compares both).
    uint64_t h = k.file + 0x9E3779B97F4A7C15ull;
    h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ull;
    h ^= k.page + 0x9E3779B97F4A7C15ull;
    h = (h ^ (h >> 27)) * 0x94D049BB133111EBull;
    return static_cast<size_t>(h ^ (h >> 31));
  }
};

/// One fixed-size page of the unified storage pool.
///
/// A page holds 256 value slots — 4 KiB at the simulated 16 bytes/slot budget
/// (see DESIGN.md §2, substitution table) — plus the buffer-pool header every
/// real pager carries: owning file, position in that file's chain, pin count,
/// dirty bit, the clock reference bit used for second-chance eviction, and
/// the scan-class bit that routes sequential-stream pages through the scan
/// ring instead of the clock.
class ValuePage {
 public:
  static constexpr size_t kSlotCount = 256;

  Value& slot(size_t i) { return slots_[i]; }
  const Value& slot(size_t i) const { return slots_[i]; }

  /// Owning file, or 0 while the frame sits on the free list.
  FileId file() const { return file_; }
  /// Position of this page in its owner's chain.
  uint64_t index_in_file() const { return index_in_file_; }

  uint32_t pin_count() const { return pin_count_; }
  bool dirty() const { return dirty_; }
  bool referenced() const { return referenced_; }
  /// LSN of the newest WAL record describing a mutation of this page; 0 when
  /// the pager has no WAL or the page is unmutated since it was mounted. The
  /// WAL rule: this page may not be written to the spill file until the log
  /// is durable through page_lsn() (DESIGN.md §6).
  uint64_t page_lsn() const { return page_lsn_; }
  /// True while the page is classified as part of a sequential scan stream
  /// (evicted FIFO through the scan ring, not by the clock).
  bool scan_class() const { return scan_; }
  bool is_free() const { return file_ == 0; }

 private:
  friend class Pager;
  friend class PageCursor;

  std::array<Value, kSlotCount> slots_;
  FileId file_ = 0;
  uint64_t index_in_file_ = 0;
  uint64_t page_lsn_ = 0;
  uint32_t pin_count_ = 0;
  bool dirty_ = false;
  bool referenced_ = false;
  bool scan_ = false;
};

/// Construction-time (and runtime-adjustable) buffer-pool policy.
struct PagerConfig {
  /// Maximum page frames held in memory; 0 = unbounded (no eviction). When
  /// the cap binds, a frame for a new or faulted page is obtained by evicting
  /// a victim to the spill file first. Pinned pages are never evicted,
  /// so a pool whose every frame is pinned overshoots the cap rather than
  /// deadlock — the overshoot drains as soon as pins are released.
  size_t max_resident_pages = 0;
  /// Backing file for evicted/checkpointed pages. Empty = an anonymous
  /// temp file (OS-deleted on close, never visible in the filesystem);
  /// a named path is removed when the pager is destroyed.
  std::string spill_path;
  /// Scan-resistant eviction: pages mounted by a detected sequential stream
  /// are scan-class — they recycle FIFO through a small dedicated ring and
  /// are preferred as victims, so a full scan cannot flush the clock-managed
  /// hot set. Off = pure second-chance clock (the PR 2 baseline policy).
  bool scan_resistant = true;
  /// Resident scan-class pages allowed before the ring starts evicting its
  /// own tail; 0 = auto (max(4, max_resident_pages / 8)). Only meaningful
  /// for a bounded pool with scan_resistant on.
  size_t scan_ring_pages = 0;
  /// When a sequential stream faults a page in, also fault the next chain
  /// page (one page of readahead), turning two demand stalls into one
  /// batched spill read. Only applies to bounded pools.
  bool readahead = true;
  /// Write-ahead log path. Empty (the default) = scratch mode: nothing
  /// survives the pager. Non-empty = durable mode: every page mutation is
  /// logged as a physical redo record before any page image can reach the
  /// spill file, `FlushAll()` becomes a fuzzy checkpoint that truncates the
  /// log, and constructing a Pager over an existing WAL+spill pair replays
  /// the log tail to reconstruct exactly the durable state (DESIGN.md §6).
  /// Requires `durable_spill` and a named `spill_path`.
  std::string wal_path;
  /// Keep the named spill file across runs (it is the data half of the
  /// durable pair; the WAL is the redo half). Only meaningful — and
  /// required — together with `wal_path`.
  bool durable_spill = false;
  /// Auto-checkpoint: when the log grows past this many bytes of redo since
  /// the last checkpoint, the next append triggers one (bounding both log
  /// size and recovery time). 0 = manual checkpoints only (FlushAll()).
  uint64_t wal_auto_checkpoint_bytes = 0;
};

/// Lifetime counters of a Pager. Epoch (distinct-page) figures live on the
/// Pager itself because they reset per measurement window.
struct PagerStats {
  uint64_t slot_reads = 0;       ///< Slot-level reads (not distinct).
  uint64_t slot_writes = 0;      ///< Slot-level writes (not distinct).
  uint64_t pages_allocated = 0;  ///< Pages handed to files (incl. reuse).
  uint64_t pages_freed = 0;      ///< Pages returned by truncate/drop.
  uint64_t pages_flushed = 0;    ///< Dirty pages checkpointed by FlushAll().
  uint64_t pins = 0;             ///< Pin() calls (incl. cursor page pins).
  uint64_t faults = 0;           ///< Demand loads of evicted pages.
  uint64_t readaheads = 0;       ///< Speculative loads ahead of a scan.
  uint64_t evictions = 0;        ///< Resident pages pushed out of the pool.
  uint64_t scan_evictions = 0;   ///< Evictions that took a scan-class page.
  uint64_t spill_bytes_written = 0;  ///< Bytes serialized to the spill file.
  uint64_t spill_bytes_read = 0;     ///< Bytes deserialized from it.
  uint64_t spill_dead_bytes = 0;  ///< Spill heap bytes no live record uses
                                  ///< (relocation + free-slot reserve) — the
                                  ///< compaction signal (DESIGN.md §6).
  uint64_t wal_records = 0;  ///< Redo/checkpoint records appended to the WAL.
  uint64_t wal_bytes = 0;    ///< Framed bytes appended to the WAL.
  uint64_t wal_syncs = 0;    ///< fsync barriers taken on the WAL.
};

/// The unified paged storage engine behind every TableStorage model.
///
/// All cell data of a database lives in fixed-size ValuePages owned by one
/// Pager: each column/heap/attribute-group allocates a *file* (a page chain)
/// and addresses values by dense slot number. The pager provides
///   - slot-granular Read/Write/Take that grow files on demand,
///   - bulk ReadRange/WriteRange that resolve the file once and account once
///     per spanned page, and a PageCursor (page_cursor.h) that pins each page
///     once and serves slot accesses with no hash lookups at all,
///   - page-granular Pin/Unpin with dirty tracking for batch access,
///   - a genuinely bounded buffer pool: with `max_resident_pages` set, cold
///     pages are evicted — written back to a SpillFile when dirty — and
///     faulted back in transparently on the next access,
///   - scan-resistant victim selection: sequential streams (detected per
///     file for the slot APIs, per cursor for PageCursor) mount their pages
///     scan-class; victims come from the scan ring FIFO first and only then
///     from the second-chance clock, so scans evict their own pages instead
///     of the hot set (see DESIGN.md §5a "Scan resistance & cursors"),
///   - FlushAll() as a real checkpoint: every dirty page's contents are
///     written to the spill file before its dirty bit clears — and, under a
///     WAL, a *fuzzy checkpoint* that snapshots the pager's metadata and
///     truncates the log,
///   - durability (PagerConfig{wal_path, durable_spill}): a redo-only
///     write-ahead log records every page mutation (full-page image on the
///     first post-checkpoint touch, slot-range deltas after), the WAL rule
///     (flushed-LSN >= page_lsn before any write-back) is enforced at the
///     single WriteBack choke point, and reopening the pager replays the
///     log tail over the persistent spill file to reconstruct exactly the
///     durable state — see DESIGN.md §6 "Durability & recovery",
///   - built-in I/O accounting: distinct pages read/written per epoch, the
///     quantity the paper's Relational Storage Manager argues about, plus
///     fault/eviction/spill-byte counters for the physical layer.
///
/// Page state machine: a page of a file's chain is either *resident* (owns a
/// frame in the page table; its spill copy, if any, may be stale) or
/// *evicted* (no frame; the spill file holds the authoritative copy — dirty
/// pages are written back during eviction, so an evicted page is always clean
/// on disk). Fault-in moves evicted → resident; eviction the reverse, and
/// only ever for unpinned frames.
///
/// Accounting can be disabled for timing-focused benchmarks; physical state
/// (page contents, dirty bits, reference bits, eviction) is maintained
/// regardless.
///
/// Threading (DESIGN.md §7 "Transactions & concurrency"): the pager is safe
/// under concurrent *readers* (PageCursor scans / slot-API reads) plus one
/// *writer* thread. A structural latch serializes every operation that
/// touches pager metadata (chains, the page table, eviction, the WAL append
/// path); per-frame reader/writer latches protect slot *data*, so cursor
/// reads proceed without the structural latch while the writer holds a
/// frame's exclusive latch only for the instants it mutates that page.
/// Latch order: the structural latch is always taken before a frame latch;
/// cursors never acquire the structural latch while holding a frame latch
/// (they release data latches before re-entering the pager). Raw page
/// access through Pin() bypasses the frame latches and remains
/// writer-thread-only.
///
/// Statements (the transaction manager): BeginStatement()/EndStatement()
/// — or the StatementScope guard — bracket every record a statement logs
/// between kTxnBegin and kTxnCommit/kTxnAbort. Several transactions may
/// hold brackets open concurrently: each bracket is tagged with its
/// transaction id (records inside ride kTxnData envelopes) and recovery
/// applies a bracket only when its closing record survived, so a crash at
/// any byte offset yields exactly the committed-bracket set; pages dirtied
/// inside any open bracket are exempt from eviction (no-steal) so the spill
/// file never absorbs uncommitted effects. Callers guarantee concurrently
/// open transactions touch disjoint pages (the Database layer's per-table
/// write latches); bracket close records are appended before those latches
/// release, so per-page record order in the log always matches bracket
/// close order.
class Pager {
 public:
  static constexpr uint64_t kPageBytes = 4096;
  static constexpr uint64_t kSlotBytes = 16;  // simulated on-disk slot size
  static constexpr uint64_t kSlotsPerPage = ValuePage::kSlotCount;
  static_assert(kSlotsPerPage == kPageBytes / kSlotBytes,
                "page geometry out of sync");

  /// Scratch mode (no `wal_path`): an empty engine. Durable mode: recovery
  /// runs right here — the WAL's checkpoint snapshot is restored and the
  /// log tail replayed (under the configured pool cap), so the constructed
  /// pager holds exactly the durable state; a fresh checkpoint is then
  /// written, truncating the log.
  explicit Pager(PagerConfig config = {});
  /// A durable pager checkpoints on destruction (unless CrashForTesting()
  /// was called), so a clean shutdown reopens with an empty log.
  ~Pager();
  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  // ---- Files ----------------------------------------------------------------

  /// Allocates a new empty file (page chain). Files never alias pages.
  FileId CreateFile();
  /// Frees every page of `file`. Deallocation is not counted as page writes.
  void DropFile(FileId file);
  bool HasFile(FileId file) const {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    return files_.count(file) > 0;
  }
  /// Pages currently backing `file` (resident or evicted).
  size_t FilePages(FileId file) const;
  /// Logical size of `file` in slots (highest written slot + 1, after
  /// truncation: the truncation point).
  uint64_t FileSize(FileId file) const;

  // ---- Slot access ----------------------------------------------------------

  /// Reads slot `slot` of `file`; the slot must be below the file's capacity
  /// (pages * kSlotsPerPage). Never-written slots read as NULL. The returned
  /// reference is valid only until the next pager call that can evict (any
  /// access under a bounded pool) — callers copy, as all stores do.
  const Value& Read(FileId file, uint64_t slot);
  /// Appends slots [start, start+count) to `out`. Equivalent to `count`
  /// Read() calls but resolves the file once and records one read per
  /// spanned page — the bulk path for contiguous tuple reads.
  void ReadRange(FileId file, uint64_t start, uint64_t count, Row* out);
  /// Writes slot `slot`, growing the file's chain as needed.
  void Write(FileId file, uint64_t slot, Value v);
  /// Writes slots [start, start+count) from `values`, growing the chain as
  /// needed: one file resolution, one dirty/accounting record per spanned
  /// page — the bulk path for contiguous tuple writes (appends).
  void WriteRange(FileId file, uint64_t start, const Value* values,
                  uint64_t count);
  /// Moves the value out of `slot` (leaves NULL behind); counts as a read
  /// in the epoch accounting but dirties the page (the slot changed).
  Value Take(FileId file, uint64_t slot);
  /// Shrinks `file` to `slot_count` slots: whole pages past the end return to
  /// the free list (their spill space is recycled), vacated slots are
  /// cleared. Not counted as page writes. Pages past the truncation point
  /// must be unpinned (checked).
  void Truncate(FileId file, uint64_t slot_count);

  // ---- Page-granular buffer-pool interface ----------------------------------

  /// Pins page `page_index` of `file` (growing the chain or faulting the page
  /// in as needed) and returns it. Pinned pages are never evicted. The raw
  /// slot access a pin hands out bypasses the per-frame data latches:
  /// writer-thread-only under the concurrent-reader contract (readers go
  /// through PageCursor, whose accesses are latch-protected).
  ValuePage* Pin(FileId file, uint64_t page_index);
  /// Releases a pin; `dirtied` marks the page dirty and records the write.
  void Unpin(ValuePage* page, bool dirtied);

  /// Pages currently holding a frame in memory. At most max_resident_pages()
  /// whenever that cap is set and at least one unpinned frame exists.
  size_t resident_pages() const {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    return resident_pages_;
  }
  /// Resident pages with a non-zero pin count.
  size_t pinned_pages() const;
  /// Resident pages currently classified scan-class (in the scan ring).
  size_t scan_resident_pages() const {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    return scan_resident_;
  }
  /// True when page `page_index` of `file` currently holds a frame.
  bool IsResident(FileId file, uint64_t page_index) const;
  /// True when that page is resident and scan-class (for tests).
  bool IsScanClass(FileId file, uint64_t page_index) const;

  /// Second-chance (clock) victim selection: returns the next unpinned,
  /// unreferenced resident page, clearing reference bits it sweeps past.
  /// Returns nullptr — never a pinned frame, after a bounded sweep — when
  /// every resident page is pinned or there are none. Selection only; the
  /// bounded pool evicts victims internally when the cap binds (preferring
  /// the scan ring, see SelectVictim).
  ValuePage* ClockVictim();

  /// Checkpoint: writes every dirty resident page to the spill file, then
  /// clears its dirty bit; returns how many pages were written. After
  /// FlushAll() the spill file holds an up-to-date copy of every page that
  /// was ever dirty, so subsequent evictions of clean pages write nothing.
  ///
  /// Under a WAL this is a *fuzzy checkpoint* (DESIGN.md §6): a begin
  /// record carrying the dirty-page table is appended and fsynced, the
  /// dirty pages are flushed and the spill fsynced, and the log is then
  /// atomically replaced by a fresh one holding only the metadata snapshot
  /// — recovery work is bounded by the redo appended since this call.
  size_t FlushAll();

  // ---- Durability (WAL) -----------------------------------------------------

  /// Fsyncs the WAL: everything logged so far survives any crash. The
  /// durability barrier for callers that need "commit" semantics between
  /// checkpoints. Also drains the deferred spill-slot free list (slots whose
  /// freeing record just became durable return to circulation). No-op
  /// without a WAL.
  void SyncWal();
  /// Group-commit barrier: returns once the WAL is durable through `lsn`
  /// (an *end* boundary, e.g. the value EndStatement returned). Unlike
  /// SyncWal() this does not hold the structural latch across the fsync, so
  /// concurrent committers batch onto one barrier (Wal::SyncThrough) while
  /// readers keep faulting pages. No-op without a WAL or with lsn == 0.
  void SyncWalThrough(uint64_t lsn);

  // ---- Statement & transaction brackets (DESIGN.md §7) ----------------------
  //
  // A bracket makes everything logged inside it atomic across crashes: the
  // first record appended under an open statement is preceded by
  // kTxnBegin(txn-id), every further record rides a kTxnData envelope
  // tagged with that id, and the close appends kTxnCommit/kTxnAbort(id).
  // Recovery buffers each open bracket independently and discards brackets
  // whose closing record the log lost. An abort closes the bracket too —
  // by then the caller's logged compensations sit inside it, so replaying
  // it is a net no-op.
  //
  // Transaction contexts: every bracket belongs to a context identified by
  // a TxnId. BeginTxn() opens a long-lived context (closed by
  // CommitTxn/AbortTxn); BeginStatement(txn) opens a statement under an
  // explicit context, under the thread's innermost bound context (txn ==
  // 0, nested call), or — when neither exists — under a fresh *autocommit*
  // context that closes when the statement ends. Nesting is flat per
  // context: only the context close emits the closing record, so a Table
  // DML inside a Database statement rides the statement's bracket, and
  // every statement of an open transaction rides the transaction's.
  // BeginStatement binds the calling thread to the context until the
  // matching EndStatement, so the pager can attribute every record logged
  // in between; BeginTxn() binds nothing — its statements name the id.
  //
  // Several contexts may hold brackets open at once (multi-writer); ids
  // are monotone per pager and double as transaction ages for the caller's
  // wait-die deadlock policy (smaller id == older txn). A statement that
  // logs nothing emits no bracket at all. Context bookkeeping runs even on
  // non-durable/crashed pagers (ids stay meaningful); only WAL appends are
  // skipped there. Prefer StatementScope.

  /// Opens a statement under `txn` (0 = thread's innermost binding, else a
  /// fresh autocommit context). Returns the owning context id.
  TxnId BeginStatement(TxnId txn = 0);
  /// Ends the thread's innermost statement. If it closes an autocommit
  /// context, closes the bracket with kTxnCommit (`commit`) or kTxnAbort
  /// and returns the WAL end boundary to pass to SyncWalThrough for durable
  /// commit semantics; 0 otherwise (nothing to sync).
  uint64_t EndStatement(bool commit);

  /// Opens a long-lived transaction context (depth 1, no thread binding).
  TxnId BeginTxn();
  /// Closes context `txn` (no statements may be open under it). Returns the
  /// WAL end boundary for SyncWalThrough (0 if nothing was logged).
  uint64_t CommitTxn(TxnId txn);
  uint64_t AbortTxn(TxnId txn);

  /// True when this pager runs in durable mode (a WAL is configured). The
  /// catalog layer keys its own persistence on this: side files, DDL
  /// records, and file retention only exist for durable pools.
  bool durable() const { return wal_ != nullptr; }
  /// The write-ahead log, when configured (null in scratch mode).
  const Wal* wal() const { return wal_.get(); }
  /// True when construction found an existing WAL and replayed it.
  bool recovered() const { return recovered_; }
  /// Records / framed bytes replayed by that recovery (0 on a fresh start).
  uint64_t recovery_records() const { return recovery_records_; }
  uint64_t recovery_bytes() const { return recovery_bytes_; }

  /// Crash simulation for tests and benches: drains buffers to the OS the
  /// way a SIGKILL would leave them, closes the WAL handle, and disables
  /// the destructor's checkpoint — the on-disk pair is left exactly as a
  /// killed process would leave it, ready for a new Pager to recover.
  /// Afterwards the pager keeps working as a scratch pool (so storages over
  /// it can still destruct), but nothing further is logged or durable.
  void CrashForTesting();

  // ---- Catalog metadata channel (DESIGN.md §6 "Catalog recovery") -----------
  //
  // The pager persists page *data*; the catalog layer (schemas, tables, the
  // table→file bindings) persists itself *through* the pager with two
  // primitives it never interprets:
  //   1. an opaque blob embedded in every checkpoint snapshot, produced on
  //      demand by a provider callback (the catalog serializes its current
  //      state), and
  //   2. opaque DDL records (WalRecordType::kCreateTable..kReorganize)
  //      appended via LogCatalogRecord between checkpoints.
  // Recovery replays page redo as usual and *collects* the blob + DDL
  // records for the catalog layer to consume after construction; until a
  // provider is installed, checkpoints carry the recovered blob and DDL
  // list forward verbatim, so a recovery-time checkpoint can never lose
  // catalog state it does not understand.

  /// One recovered catalog DDL record, in log order.
  struct CatalogRecord {
    WalRecordType type = WalRecordType::kCreateTable;
    std::string payload;
  };

  /// Appends one opaque catalog DDL record and fsyncs: every DDL statement
  /// is a commit point (they are rare; one barrier each keeps the schema's
  /// durability horizon ahead of the data's). Returns the record's LSN, or
  /// 0 when the pager is not durable / is replaying / has crashed — callers
  /// log unconditionally and let the pager sort out the mode.
  uint64_t LogCatalogRecord(WalRecordType type, const std::string& payload);

  /// Installs the checkpoint blob provider. From now on every snapshot
  /// embeds a freshly serialized blob (and no DDL carry-forward — the blob
  /// subsumes it); the recovered_catalog_* accessors are cleared. The
  /// provider must stay callable until DetachCatalogProvider() or pager
  /// destruction, and must serialize a *statement-consistent* catalog —
  /// wrap multi-step schema changes in a CheckpointDeferral so an
  /// auto-checkpoint cannot observe a half-applied DDL.
  void set_catalog_snapshot_provider(std::function<void(std::string*)> provider);

  /// Uninstalls the provider, capturing one final blob that subsequent
  /// checkpoints (including the destructor's) carry forward. Call this
  /// before the catalog layer is destroyed; the pager outlives it.
  void DetachCatalogProvider();

  /// The catalog blob of the recovered checkpoint snapshot and the DDL
  /// records logged after it, in log order. Valid after construction until
  /// set_catalog_snapshot_provider() clears them; empty on a fresh start.
  const std::string& recovered_catalog_blob() const { return catalog_blob_; }
  const std::vector<CatalogRecord>& recovered_catalog_ddl() const {
    return catalog_ddl_;
  }

  /// All live file ids, ascending — the catalog layer's orphan sweep
  /// (files created by a DDL whose record never became durable) diffs this
  /// against the recovered descriptors.
  std::vector<FileId> FileIds() const;

  // ---- Buffer-pool policy ---------------------------------------------------

  size_t max_resident_pages() const { return config_.max_resident_pages; }
  /// Adjusts the cap at runtime; shrinking below the current residency
  /// evicts victims immediately until the pool fits (pinned pages
  /// can keep it above the cap until they are unpinned).
  void set_max_resident_pages(size_t cap);
  bool scan_resistant() const { return config_.scan_resistant; }
  /// Scan-class pages allowed in memory before the ring recycles its tail.
  size_t scan_ring_size() const;
  const std::string& spill_path() const { return config_.spill_path; }
  /// The spill backend, if any eviction/checkpoint has created it.
  const SpillFile* spill() const { return spill_.get(); }

  // ---- I/O accounting -------------------------------------------------------

  /// Starts a fresh measurement window for the distinct-page counters.
  void BeginEpoch();
  /// Distinct pages read/written since BeginEpoch().
  size_t EpochPagesRead() const {
    std::lock_guard<std::mutex> lock(stats_mu_);
    return epoch_read_.size();
  }
  size_t EpochPagesWritten() const {
    std::lock_guard<std::mutex> lock(stats_mu_);
    return epoch_written_.size();
  }

  /// Lifetime counters, including the spill/WAL-derived fields
  /// (spill_dead_bytes, wal_*) assembled from the backends at call time —
  /// hence by value; for hot loops snapshot once and diff.
  PagerStats stats() const;

  /// Accounting costs a hash insert per access; timing-focused benchmarks
  /// disable it. Page contents, dirty/reference bits, and eviction are
  /// unaffected (faults/evictions/spill bytes are physical events and are
  /// always counted).
  void set_accounting_enabled(bool enabled) {
    accounting_.store(enabled, std::memory_order_relaxed);
  }
  bool accounting_enabled() const {
    return accounting_.load(std::memory_order_relaxed);
  }

 private:
  friend class PageCursor;

  /// One page of a file's chain: resident (frame != kNoFrame) or evicted
  /// (frame == kNoFrame; spill_slot holds the authoritative copy, or is
  /// kNoSlot for a never-written all-NULL page known only from recovery
  /// metadata — faulting such a page mounts a fresh empty frame).
  struct PageRef {
    static constexpr PageId kNoFrame = ~0ull;
    PageId frame = kNoFrame;
    uint64_t spill_slot = SpillFile::kNoSlot;
    /// LSN of this page's newest full-page image in the WAL. When it does
    /// not postdate the current checkpoint, the next mutation logs a full
    /// image instead of a slot-range delta — the torn-page defense: no
    /// in-place spill rewrite ever destroys a base that recovery still
    /// needs (DESIGN.md §6).
    uint64_t fpi_lsn = 0;
    bool resident() const { return frame != kNoFrame; }
  };

  static constexpr uint64_t kNoPageIndex = ~0ull;
  /// +1 page transitions before an access stream counts as sequential.
  static constexpr uint32_t kSeqThreshold = 2;
  /// Floor of the auto-sized scan ring.
  static constexpr size_t kMinScanRing = 4;

  /// The sequential-access detector shared by the slot APIs (one per file)
  /// and PageCursor (one per cursor — so interleaved point lookups never
  /// break a cursor scan's streak, and vice versa). Repeated hits on one
  /// page are neutral, a +1 transition builds the streak, anything else
  /// resets it.
  struct SeqDetector {
    uint64_t last_page = kNoPageIndex;
    uint32_t streak = 0;
    /// Records an access to `page_index`; returns whether the stream is now
    /// sequential.
    bool Note(uint64_t page_index) {
      if (page_index == last_page) {
        // same page: no evidence either way
      } else if (last_page != kNoPageIndex && page_index == last_page + 1) {
        if (streak < kSeqThreshold) streak += 1;
      } else {
        streak = 0;
      }
      last_page = page_index;
      return streak >= kSeqThreshold;
    }
  };

  struct FileChain {
    std::vector<PageRef> pages;
    uint64_t size = 0;  // logical slots; capacity is pages.size()*kSlotsPerPage
    SeqDetector seq;    // detector for the slot-granular APIs
  };

  /// A scan-ring entry; validated lazily on pop (the page may have been
  /// promoted, evicted, or freed since it was queued — stale entries are
  /// simply dropped).
  struct ScanEntry {
    PageId frame;
    FileId file;
    uint64_t page;
  };

  /// A spill slot freed by Truncate/DropFile whose freeing WAL record is not
  /// yet durable. The slot must not be recycled before `lsn` is fsynced —
  /// otherwise a crash could replay the free against a base the reuse
  /// already overwrote. Parking the slot here (instead of fsyncing at free
  /// time, the PR 4 behavior) lets structural ops proceed without a barrier;
  /// DrainDeferredFrees() releases slots as durability catches up.
  struct DeferredFree {
    uint64_t spill_slot = 0;
    uint64_t lsn = 0;
  };

  FileChain& ChainOrDie(FileId file);
  const FileChain& ChainOrDie(FileId file) const;
  /// Grows `chain` until `slot` is addressable.
  void EnsureCapacity(FileId file, FileChain& chain, uint64_t slot);
  /// The page holding `slot`, faulted in if evicted.
  ValuePage& PageForSlot(FileId file, FileChain& chain, uint64_t slot) {
    return PageAt(file, chain, slot / kSlotsPerPage);
  }
  /// The page at `page_index` of the chain, faulted in if evicted.
  ValuePage& PageAt(FileId file, FileChain& chain, uint64_t page_index) {
    PageRef& ref = chain.pages[page_index];
    if (!ref.resident()) FaultIn(file, chain, page_index);
    return *page_table_[ref.frame];
  }
  /// Loads an evicted page back into a frame (evicting others if the cap
  /// binds); readahead of the next chain page when the mount is sequential.
  void FaultIn(FileId file, FileChain& chain, uint64_t page_index);
  /// Obtains a frame, evicting victims first while the pool is at its
  /// cap. The frame is on neither the free list nor any chain on return.
  PageId AcquireFrame();
  /// Writes `page` back to spill if needed and releases its frame. The page
  /// must be unpinned.
  void EvictPage(ValuePage& page);
  /// Returns the frame of a truncated/dropped resident page to the free list.
  void ReleaseFrame(PageId id);
  /// Drops one chain page entirely (frame and/or spill space). When
  /// `deferred_slots` is non-null the spill slot is *not* freed but appended
  /// there — the caller parks the batch on the deferred-free list once the
  /// structural record that frees them has an LSN.
  void FreePage(PageRef& ref, std::vector<uint64_t>* deferred_slots = nullptr);
  /// Parks `slots` until `lsn` is durable (or frees them immediately if it
  /// already is).
  void DeferSpillFrees(const std::vector<uint64_t>& slots, uint64_t lsn);
  /// Frees every parked slot whose freeing record has become durable.
  void DrainDeferredFrees();
  /// Evicts victims until residency is at most `target` (or all pinned).
  void EvictDownTo(size_t target);
  /// Next eviction victim: oldest valid unpinned scan-ring page, else the
  /// clock. Consumes the returned page's ring entry.
  ValuePage* SelectVictim();
  SpillFile& EnsureSpill();
  /// Writes `page`'s contents to its spill slot (allocating one on first
  /// spill); leaves the dirty bit untouched.
  void WriteBack(ValuePage& page, PageRef& ref);

  /// Updates the per-file sequential detector for a slot-API access to
  /// `page_index` and latches mount_sequential_ for any mounts it causes.
  void NoteSlotAccess(FileChain& chain, uint64_t page_index);
  /// Classifies a just-mounted page: scan-class (queued on the ring, which
  /// may recycle its tail) when the triggering access was sequential and the
  /// pool is bounded with scan resistance on; hot otherwise.
  void ClassifyMount(ValuePage& page, PageId frame);
  /// Evicts ring pages (skipping `keep` and pinned frames) until the ring
  /// fits scan_ring_size().
  void EnforceScanRing(PageId keep);
  /// A non-sequential access touched `page`: a scan-class page is promoted
  /// into the hot (clock) set.
  void MaybePromote(ValuePage& page);
  /// True when `e` still describes a resident scan-class page.
  bool ScanEntryValid(const ScanEntry& e) const;

  void RecordRead(FileId file, uint64_t slot, ValuePage& page);
  void RecordWrite(FileId file, uint64_t slot, ValuePage& page);
  /// Records one distinct-page epoch hit (guarded by stats_mu_).
  void NoteEpochRead(FileId file, uint64_t page_index);
  void NoteEpochWrite(FileId file, uint64_t page_index);

  /// True when `page` may have been dirtied inside a currently open
  /// bracket. Such pages are no-steal: evicting one would write uncommitted
  /// effects over a spill base that recovery may still need if the bracket
  /// is discarded (its first post-checkpoint image lives inside the
  /// bracket). Conservative across concurrent brackets: any dirty page
  /// whose newest redo postdates the *oldest* open bracket's begin is
  /// protected. Victim selection skips them; the pool overshoots like the
  /// all-pinned case until the brackets close.
  bool StatementDirty(const ValuePage& page) const {
    return open_brackets_ > 0 && page.dirty_ &&
           page.page_lsn_ >= min_open_begin_lsn_;
  }
  /// Grows frame_latches_ alongside page_table_ (grow-only: latches of
  /// released shells stay allocated so no reader ever holds a dead latch).
  void EnsureFrameLatches();

  // ---- WAL integration (all no-ops in scratch mode) -------------------------

  /// The logging choke point every mutation path funnels through (slot
  /// APIs, bulk ranges, cursors, Unpin-dirty): appends a physical redo
  /// record for slots [first, first+count) of the given resident page,
  /// *after* the slots were mutated. Upgrades itself to a full-page image
  /// when the page has none since the last checkpoint (or when the range
  /// already spans the page), stamps page_lsn/fpi_lsn, and may trigger an
  /// auto-checkpoint — unless the caller is mid-operation with a mutation
  /// still unlogged (Truncate's pre-image) and passes
  /// `allow_auto_checkpoint = false`, so a checkpoint can never slip
  /// between a page's full image and the record that relies on it.
  void LogPageMutation(FileId file, FileChain& chain, uint64_t page_index,
                       uint64_t first, uint64_t count,
                       bool allow_auto_checkpoint = true);
  /// Appends a structural record (create/drop/truncate/grow).
  void LogStructural(WalRecordType type, const std::string& payload);
  /// The one append path for every record that belongs to the current
  /// statement (page redo + structural). Lazily opens the statement bracket
  /// (kTxnBegin) before the first such record; checkpoint records and
  /// catalog DDL bypass this on purpose — they are their own commit points.
  uint64_t AppendRecord(WalRecordType type, const std::string& payload);
  void MaybeAutoCheckpoint();
  /// The fuzzy checkpoint behind FlushAll()/destruction in durable mode.
  size_t CheckpointInternal();
  /// Serializes the durable metadata (file chains, spill directory, next
  /// file id) into a kCheckpoint payload / restores it during recovery.
  void BuildSnapshot(std::string* out) const;
  void RestoreSnapshot(const std::string& payload);
  /// Constructor-time recovery: replays the WAL (or writes the first
  /// checkpoint of a fresh log).
  void Recover();
  void ReplayRecord(const Wal::Record& rec);
  void ApplyUpdateRecord(const Wal::Record& rec);
  /// Mounts a fresh all-NULL frame for a non-resident page without touching
  /// the spill file — the full-page-image replay path and the fault path
  /// for pages that never reached the spill.
  ValuePage& MountEmpty(FileId file, FileChain& chain, uint64_t page_index);

  /// One transaction context (see the public bracket section). Spill slots
  /// freed inside the context's open bracket park in `deferred_slots` until
  /// the close record has an LSN (a discarded bracket must leave every base
  /// it referenced untouched), then move to the deferred-free list.
  struct TxnContext {
    int depth = 0;         ///< Open statements under this context.
    bool open = false;     ///< kTxnBegin appended, closing record pending.
    bool autocommit = false;  ///< Created by BeginStatement; closes at depth 0.
    uint64_t begin_lsn = 0;   ///< LSN of the open bracket's kTxnBegin.
    std::vector<uint64_t> deferred_slots;
  };

  /// The context the calling thread is bound to via BeginStatement, or
  /// nullptr/0. Prunes stale bindings of this pager lazily. Caller holds mu_.
  TxnContext* CurrentCtxLocked();
  TxnId CurrentBoundTxnLocked();
  /// Closes `txn`'s bracket (if open), parks its deferred spill frees at the
  /// close LSN, erases the context, and runs a held-back auto-checkpoint
  /// once no bracket remains open. Returns the close record's WAL end
  /// boundary (0 when nothing was logged). Caller holds mu_.
  uint64_t CloseCtx(TxnId txn, bool commit);
  void RecomputeMinOpenBeginLsn();

  PagerConfig config_;
  uint64_t next_file_id_ = 1;
  std::unordered_map<FileId, FileChain> files_;
  std::vector<std::unique_ptr<ValuePage>> page_table_;
  std::vector<PageId> free_frames_;
  /// The structural latch: serializes every metadata operation (see the
  /// class comment). Recursive because replay and internal paths re-enter
  /// public operations (DropFile/Truncate from ReplayRecord, checkpoint
  /// from mutation paths).
  mutable std::recursive_mutex mu_;
  /// Leaf lock for the epoch sets (cursors record distinct-page hits
  /// without the structural latch). Never held while acquiring any other
  /// lock.
  mutable std::mutex stats_mu_;
  /// Per-frame data latches, parallel to page_table_. A deque for stable
  /// addresses; grow-only (never shrunk on cap shrink) so an index is
  /// always valid. Readers hold shared, the writer exclusive — only while
  /// holding the structural latch, so reader-held latches are the only
  /// thing a writer ever waits on.
  mutable std::deque<std::shared_mutex> frame_latches_;
  // Transaction-context state (all under mu_). Thread→context bindings live
  // in a thread_local keyed by pager_uid_ (pager.cc), so bindings of a
  // destroyed pager can never alias a new one.
  std::unordered_map<TxnId, TxnContext> txns_;
  TxnId next_txn_id_ = 1;
  size_t open_brackets_ = 0;          // contexts with an open bracket
  uint64_t min_open_begin_lsn_ = 0;   // min begin_lsn over open brackets
  const uint64_t pager_uid_;          // process-unique, set in the ctor
  std::unique_ptr<SpillFile> spill_;  // created on first eviction/checkpoint
  std::unique_ptr<Wal> wal_;          // durable mode only
  uint64_t last_checkpoint_lsn_ = 0;
  bool replaying_ = false;      // inside recovery: mutations are not re-logged
  bool in_checkpoint_ = false;  // guards auto-checkpoint reentrancy
  bool crashed_ = false;        // CrashForTesting: destructor stands down
  bool recovered_ = false;
  // Catalog metadata channel: provider (live) or carried-forward state
  // (recovered, pre-provider); see the public section.
  std::function<void(std::string*)> catalog_provider_;
  std::string catalog_blob_;
  std::vector<CatalogRecord> catalog_ddl_;
  // Deferred spill-slot frees, FIFO by freeing-record LSN.
  std::deque<DeferredFree> deferred_frees_;
  // Auto-checkpoint deferral (see CheckpointDeferral): while > 0, an
  // auto-checkpoint trigger latches checkpoint_pending_ instead of running.
  int checkpoint_defer_depth_ = 0;
  bool checkpoint_pending_ = false;
  friend class CheckpointDeferral;
  uint64_t recovery_records_ = 0;
  uint64_t recovery_bytes_ = 0;
  std::string wal_payload_;  // record build buffer, reused across appends
  std::string wal_wrap_;     // kTxnData envelope buffer (may not alias the
                             // payload being wrapped, hence separate)
  size_t resident_pages_ = 0;
  size_t clock_hand_ = 0;

  // Scan-resistance state. mount_sequential_ is latched by every access-path
  // entry (slot APIs via NoteSlotAccess, cursors via their own streak,
  // Pin/Truncate force it false) and consumed by FaultIn/EnsureCapacity when
  // they mount pages; every access path holds the structural latch end to
  // end, so the flag never crosses a latch release.
  bool mount_sequential_ = false;
  bool in_readahead_ = false;
  std::deque<ScanEntry> scan_fifo_;
  size_t scan_resident_ = 0;

  std::atomic<bool> accounting_{true};
  /// Counters cursors bump without the structural latch; everything else in
  /// stats_ is mutated under mu_ only. stats() assembles the full picture.
  std::atomic<uint64_t> slot_reads_{0};
  std::atomic<uint64_t> slot_writes_{0};
  std::atomic<uint64_t> pins_{0};
  PagerStats stats_;
  std::unordered_set<PageKey, PageKeyHash> epoch_read_;    // under stats_mu_
  std::unordered_set<PageKey, PageKeyHash> epoch_written_;  // under stats_mu_
};

/// Scope guard that holds off auto-checkpoints while a multi-record logical
/// operation is in flight. A fuzzy checkpoint snapshots the catalog blob via
/// the provider; if one fired *between* the page mutations of a DDL and its
/// catalog record — or between a schema edit and the storage rewrite it
/// describes — the snapshot could capture a half-applied schema change. The
/// catalog layer wraps every DDL body in one of these; a trigger that fires
/// inside the scope is latched and runs at scope exit, once the operation's
/// records (page redo + DDL) have all been appended. Re-entrant; a no-op on
/// non-durable pagers.
class CheckpointDeferral {
 public:
  explicit CheckpointDeferral(Pager& pager) : pager_(pager) {
    std::lock_guard<std::recursive_mutex> lock(pager_.mu_);
    pager_.checkpoint_defer_depth_ += 1;
  }
  ~CheckpointDeferral() {
    std::lock_guard<std::recursive_mutex> lock(pager_.mu_);
    pager_.checkpoint_defer_depth_ -= 1;
    if (pager_.checkpoint_defer_depth_ == 0 && pager_.checkpoint_pending_) {
      pager_.checkpoint_pending_ = false;
      if (pager_.wal_ != nullptr && !pager_.crashed_) {
        pager_.MaybeAutoCheckpoint();
      }
    }
  }
  CheckpointDeferral(const CheckpointDeferral&) = delete;
  CheckpointDeferral& operator=(const CheckpointDeferral&) = delete;

 private:
  Pager& pager_;
};

/// RAII statement bracket (see Pager::BeginStatement). `txn` routes the
/// statement into an explicit transaction context; 0 joins the thread's
/// innermost bound context or opens a fresh autocommit one. Destruction
/// without an explicit Commit() ends the statement abort-wise — the safe
/// default on every error path, because by then the caller's rollback
/// compensations are inside the bracket and replaying it is a net no-op.
/// Commit() ends it commit-wise and returns the WAL end boundary for
/// SyncWalThrough (0 when no bracket closed). Cheap on non-durable pagers.
class StatementScope {
 public:
  explicit StatementScope(Pager& pager, TxnId txn = 0) : pager_(&pager) {
    txn_ = pager_->BeginStatement(txn);
  }
  ~StatementScope() {
    if (pager_ != nullptr) pager_->EndStatement(/*commit=*/false);
  }
  uint64_t Commit() {
    uint64_t end = pager_->EndStatement(/*commit=*/true);
    pager_ = nullptr;
    return end;
  }
  /// The context this statement runs under (an autocommit statement's
  /// fresh id is the age callers hand to the write-latch table).
  TxnId txn() const { return txn_; }
  StatementScope(const StatementScope&) = delete;
  StatementScope& operator=(const StatementScope&) = delete;

 private:
  Pager* pager_;
  TxnId txn_ = 0;
};

}  // namespace storage
}  // namespace dataspread

#endif  // DATASPREAD_STORAGE_PAGER_H_
