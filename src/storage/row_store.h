#ifndef DATASPREAD_STORAGE_ROW_STORE_H_
#define DATASPREAD_STORAGE_ROW_STORE_H_

#include "storage/table_storage.h"

namespace dataspread {

/// ROM: classic N-ary row store — one pager file of whole tuples, laid out
/// row-major with stride num_columns().
///
/// This is the "today's databases" baseline from the paper's §2.2: a schema
/// change (add/drop column) changes the tuple stride and therefore rewrites
/// every tuple in place, dirtying essentially every page of the file. Point
/// tuple reads touch a single page.
class RowStore : public TableStorage {
 public:
  RowStore(size_t num_columns, storage::Pager* pager,
           const storage::PagerConfig& config = {});
  ~RowStore() override;

  /// Rebinds to a recovered tuple heap (manifest.files = {heap}); see
  /// AttachStorage for the num_rows / truncation contract.
  static Result<std::unique_ptr<RowStore>> Attach(const StorageManifest& manifest,
                                                  uint64_t num_rows,
                                                  storage::Pager* pager);

  StorageManifest Manifest() const override;

  StorageModel model() const override { return StorageModel::kRow; }
  size_t num_rows() const override { return num_rows_; }
  size_t num_columns() const override { return num_columns_; }

  Result<Value> Get(size_t row, size_t col) const override;
  Status Set(size_t row, size_t col, Value v) override;
  Result<Row> GetRow(size_t row) const override;
  Status GetRows(size_t start, size_t count,
                 std::vector<Row>* out) const override;
  Status VisitRows(size_t start, size_t count,
                   const RowVisitor& visit) const override;
  Result<size_t> AppendRow(const Row& row) override;
  Result<size_t> DeleteRow(size_t row) override;
  Status AddColumn(const Value& default_value) override;
  Status DropColumn(size_t col) override;

 private:
  /// Attach path: adopts an existing heap file instead of creating one.
  RowStore(storage::Pager* pager, storage::FileId file, size_t num_columns,
           size_t num_rows);

  uint64_t Entry(size_t row, size_t col) const {
    return row * num_columns_ + col;
  }

  size_t num_columns_;
  size_t num_rows_ = 0;
  storage::FileId file_;
};

}  // namespace dataspread

#endif  // DATASPREAD_STORAGE_ROW_STORE_H_
