#ifndef DATASPREAD_DB_DATABASE_H_
#define DATASPREAD_DB_DATABASE_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/write_latch.h"
#include "common/result.h"
#include "storage/file_lock.h"
#include "exec/resolver.h"
#include "exec/result_set.h"
#include "exec/row_batch.h"
#include "sql/ast.h"

namespace dataspread {

class Database;

/// Construction-time options for a Database.
struct DatabaseOptions {
  /// Buffer-pool policy of the shared pager every table of this database
  /// allocates from: `max_resident_pages` bounds in-memory frames (0 =
  /// unbounded), `spill_path` names the eviction/checkpoint backing file
  /// (empty = anonymous temp file). With `wal_path` + `durable_spill` set,
  /// the database is fully *durable and reopenable*: every table mutation
  /// is WAL-logged, the catalog (schemas, storage models, attribute groups,
  /// display order) persists through checkpoint snapshots and DDL records,
  /// and constructing a Database over the same pair — or calling
  /// Database::Open on the same path — recovers every table, schema, and
  /// row with no application-side rebuild (DESIGN.md §6, docs/DURABILITY.md).
  storage::PagerConfig pager;
  /// Query-execution shape: vectorized batch size and the row-at-a-time
  /// fallback (see ExecOptions). Defaults drive every SELECT through the
  /// batch pipeline at kDefaultExecBatchSize tuples per batch.
  ExecOptions exec;
  /// Fsync the WAL at the end of every successful mutating statement, making
  /// each commit individually durable. Off (the default) keeps the PR 5
  /// durability contract: statements are logged (and atomic — see the
  /// statement brackets, DESIGN.md §7) but only made durable by the next
  /// checkpoint, DDL, or explicit barrier. See docs/DURABILITY.md's
  /// durability-level table.
  bool sync_on_commit = false;
  /// With sync_on_commit: run the commit barrier outside the session lock,
  /// so concurrent committers park on one fsync (group commit — one leader
  /// syncs, all release; Wal::SyncThrough). Off = the barrier runs inside
  /// the statement lock, one fsync per commit — the serial baseline
  /// bench_txn A/Bs against. No effect without sync_on_commit.
  bool group_commit = true;
};

/// One SQL connection: the unit of transaction state and of statement
/// serialization. Each Session owns its own multi-statement transaction —
/// open flag, undo journal, the set of write-latched tables — and a mutex
/// that serializes statements *on this session only*; statements on
/// different sessions run concurrently, fully in parallel when they touch
/// disjoint tables (DESIGN.md §7 "Partitioned write latching").
///
/// Sessions come from Database::CreateSession() and must be destroyed
/// before their Database. A transaction still open at destruction is
/// rolled back. A Session is not itself thread-safe in the sense of
/// interleaving one transaction from two threads — use one session per
/// thread of control, like a connection.
class Session {
 public:
  ~Session();

  /// Parses and executes one SQL statement on this session. Semantics are
  /// identical to Database::Execute (which delegates to the database's
  /// embedded default session).
  Result<ResultSet> Execute(std::string_view sql,
                            ExternalResolver* resolver = nullptr);

  /// True while a BEGIN is open (poisoned or not).
  bool in_transaction() const { return txn_open_; }

 private:
  friend class Database;
  explicit Session(Database* db) : db_(db) {}
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  Database* db_;
  /// Serializes statements on this session (recursive: the compute engine's
  /// callbacks may re-enter Execute on the same session).
  std::recursive_mutex mu_;
  // ---- Multi-statement transaction state (guarded by mu_) ----
  bool txn_open_ = false;
  /// A failed statement poisons the transaction (Postgres semantics): every
  /// further statement fails until ROLLBACK; COMMIT rolls back. A deadlock
  /// victim is poisoned with txn_id_ already zeroed — its work was rolled
  /// back eagerly, so the client's ROLLBACK only clears the flags.
  bool txn_poisoned_ = false;
  /// The pager transaction context (0 = none open). Doubles as this
  /// transaction's age for wait-die latch ordering: smaller id == older.
  storage::TxnId txn_id_ = 0;
  UndoJournal undo_;
  /// Tables this transaction holds exclusive write latches on, in
  /// acquisition order. Strict 2PL: grows during the transaction, released
  /// only at commit/rollback.
  std::vector<Table*> latched_;
  /// End LSN of the statement's committed bracket (0 = nothing committed);
  /// consumed by the commit barrier under sync_on_commit.
  uint64_t last_commit_end_lsn_ = 0;
};

/// The embedded relational engine standing in for the paper's PostgreSQL
/// back-end (see DESIGN.md §2). Statements execute per-*session*; each is a
/// transaction of its own (autocommit) unless a SQL `BEGIN` is open on that
/// session, in which case its statements accumulate into one
/// multi-statement transaction closed by `COMMIT` or `ROLLBACK`/`ABORT`.
/// Atomicity holds at the transaction granularity both for logical failures
/// (a per-transaction undo journal restores tables, display order, and
/// row-id maps on rollback) and across crashes (txn-id-tagged WAL brackets
/// — recovery replays exactly the committed-transaction set, DESIGN.md §7).
///
/// The per-session state machine is Postgres-shaped: nested BEGIN is
/// rejected, COMMIT/ROLLBACK without BEGIN is rejected, any error inside an
/// open transaction *poisons* it (every further statement fails until
/// ROLLBACK; COMMIT of a poisoned transaction rolls back), and DDL inside
/// an explicit transaction is rejected (DDL records are individually-
/// durable commit points that cannot ride an abortable bracket).
///
/// Threading — partitioned write latching (DESIGN.md §7): transactions on
/// *disjoint* tables proceed fully in parallel. Every DML statement takes
/// its target table's exclusive write latch (transactions keep theirs until
/// commit/rollback — strict 2PL on the write set) and its read set shared;
/// SELECTs take their table set shared for the statement. Deadlocks are
/// prevented by wait-die on transaction age: a younger transaction that
/// would wait on an older one while holding latches is instead aborted
/// with a retryable SerializationConflict, rolled back via its undo
/// journal, and left poisoned until the client's ROLLBACK. DDL excludes
/// all statements (a schema shared/exclusive latch) and fails fast on
/// tables locked by open transactions. With `sync_on_commit` +
/// `group_commit`, concurrent committers batch their commit barriers onto
/// one fsync.
class Database {
 public:
  Database() : Database(DatabaseOptions{}) {}
  /// Bounded-pool construction: the paper's million-cell sheets run behind a
  /// pool of a few hundred frames with cold pages spilled to disk. With a
  /// durable PagerConfig this is also the recovery path: page redo runs in
  /// the pager's constructor, then the catalog is rebuilt from the recovered
  /// snapshot blob + DDL records and every table rebinds to its files —
  /// the constructed database is ready to query, no schema rebuild needed.
  explicit Database(const DatabaseOptions& options);

  /// A clean shutdown: captures the final catalog snapshot, then tears
  /// down. Durable pagers end on a checkpoint, so the next Open replays an
  /// empty log. Calling Close() first is optional. Sessions created with
  /// CreateSession() must already be destroyed.
  ~Database();

  /// Opens (creating on first use) a durable database rooted at `base_path`:
  /// the data lives in `<base_path>.pages`, the log in `<base_path>.wal`.
  /// `options.pager`'s pool fields (cap, scan resistance, auto-checkpoint)
  /// are honored; its path fields are overwritten. The returned database
  /// holds every table exactly as last checkpointed/logged — see
  /// docs/DURABILITY.md for the full lifecycle. The pair is guarded by an
  /// advisory lock on `<base_path>.wal.lock`: a second open while this one
  /// is alive *aborts* (construction has no error channel). Use TryOpen for
  /// the graceful-failure path.
  static std::unique_ptr<Database> Open(const std::string& base_path,
                                        DatabaseOptions options = {});

  /// Like Open, but fails softly: returns AlreadyExists when another live
  /// Database (this process or another) holds the pair's lock, instead of
  /// aborting. The lock is released when the returned Database is destroyed.
  static Result<std::unique_ptr<Database>> TryOpen(
      const std::string& base_path, DatabaseOptions options = {});

  /// The `Open` path convention as plain options: `<base>.pages` +
  /// `<base>.wal`, durable. The one place the convention lives — the
  /// DataSpread facade's `database_path` resolves through here too.
  static DatabaseOptions DurableOptions(const std::string& base_path,
                                        DatabaseOptions options = {});

  /// Checkpoints and seals the database: all state is on disk and the log
  /// is empty. Every subsequent Execute()/CreateTable() — SELECTs included,
  /// the gate does not classify statements — fails with InvalidArgument;
  /// direct table access (GetWindow/GetRowAt) keeps serving. Idempotent.
  /// The pair can be reopened (by a new Database) after *destruction* —
  /// two live pagers on one pair would corrupt it.
  void Close();
  bool closed() const { return closed_.load(std::memory_order_acquire); }

  Catalog& catalog() { return catalog_; }

  /// The unified paged storage engine: every table of this database allocates
  /// its heaps from this one accounted pool.
  storage::Pager& pager() { return pager_; }
  const storage::Pager& pager() const { return pager_; }

  /// Flushes every dirty page of every table to the spill file; under a WAL
  /// (DatabaseOptions.pager.wal_path) this is the fuzzy checkpoint that also
  /// truncates the log and bounds recovery time. Quiesces statements (the
  /// schema latch) first; returns 0 — checkpoint declined — while any
  /// session holds an open transaction bracket. Returns pages written.
  size_t Checkpoint();

  /// Creates a new SQL session (connection). Sessions execute statements
  /// concurrently with each other and with the default session; see the
  /// class comment for the latching protocol. The session must be
  /// destroyed before this Database.
  std::unique_ptr<Session> CreateSession();

  /// Parses and executes one SQL statement on the embedded default session.
  /// `resolver` supplies the spreadsheet context for RANGEVALUE/RANGETABLE
  /// (null = plain SQL only).
  Result<ResultSet> Execute(std::string_view sql,
                            ExternalResolver* resolver = nullptr);

  /// Registered callbacks fire after every mutation of any table
  /// (the back-end half of the paper's two-way sync).
  using ChangeListener =
      std::function<void(const std::string& table_name, const TableChange&)>;
  int AddChangeListener(ChangeListener listener);
  void RemoveChangeListener(int token);

  /// Creates a table directly (bypassing SQL); used by import paths.
  Result<Table*> CreateTable(std::string name, Schema schema,
                             StorageModel model = StorageModel::kHybrid);

  uint64_t statements_executed() const {
    return statements_executed_.load(std::memory_order_relaxed);
  }

  /// Execution-pipeline knobs for subsequent statements. The mutator lets
  /// benches and the transparency tests A/B the row and batch pipelines on
  /// one loaded database. Not synchronized: set before going concurrent.
  const ExecOptions& exec_options() const { return exec_; }
  void set_exec_options(const ExecOptions& exec) { exec_ = exec; }

 private:
  friend class Session;
  /// Statement-scoped latch bookkeeping for one DML statement; defined in
  /// database.cc.
  struct WriteGuard;

  /// Lock-then-construct: the advisory pair lock must be held before the
  /// pager's constructor opens (and possibly recovers) the WAL.
  Database(const DatabaseOptions& options, storage::FileLock lock);
  /// Acquires the pair lock for durable options (no-op otherwise); aborts
  /// with the lock holder's message on conflict — the constructor path's
  /// fail-fast. TryOpen surfaces the same condition as a Status instead.
  static storage::FileLock LockPairOrDie(const DatabaseOptions& options);
  /// The lock file guarding `wal_path`'s pair (empty for non-durable).
  static std::string LockPathFor(const DatabaseOptions& options);

  /// The statement engine behind Session::Execute / Database::Execute.
  Result<ResultSet> ExecuteForSession(Session& session, std::string_view sql,
                                      ExternalResolver* resolver);

  Result<ResultSet> Dispatch(Session& session, sql::Statement& stmt,
                             ExternalResolver* resolver);
  Result<ResultSet> ExecuteSelect(Session& session, sql::SelectStmt& stmt,
                                  ExternalResolver* resolver);
  Result<ResultSet> ExecuteInsert(Session& session, sql::InsertStmt& stmt,
                                  ExternalResolver* resolver);
  Result<ResultSet> ExecuteUpdate(Session& session, sql::UpdateStmt& stmt,
                                  ExternalResolver* resolver);
  Result<ResultSet> ExecuteDelete(Session& session, sql::DeleteStmt& stmt,
                                  ExternalResolver* resolver);
  Result<ResultSet> ExecuteCreate(sql::CreateTableStmt& stmt);
  Result<ResultSet> ExecuteDrop(sql::DropTableStmt& stmt);
  Result<ResultSet> ExecuteAlter(sql::AlterTableStmt& stmt,
                                 ExternalResolver* resolver);
  Result<ResultSet> ExecuteTransaction(Session& session,
                                       const sql::TransactionStmt& stmt);
  Result<ResultSet> ExecuteLockTable(Session& session,
                                     sql::LockTableStmt& stmt);

  /// DDL's fast-fail against open transactions: InvalidArgument when
  /// `table` is write-latched. Caller holds schema_mu_ exclusive (which
  /// stops new acquisitions, making the answer stable).
  Status FailIfLatched(const std::string& table) const;

  /// Rolls `session`'s open transaction back: undo journal applied in
  /// reverse (capture suspended, the owning txn context still installed so
  /// the compensations ride the transaction's WAL bracket), the bracket
  /// closed with kTxnAbort, and — strictly after the close record — the
  /// write latches released. An undo failure aborts the process (the
  /// in-memory state would be neither the pre- nor the post-transaction
  /// one). Safe to call with no pager context open (a deadlock victim's
  /// second rollback): only the session flags are cleared.
  void RollbackSessionTxn(Session& session);

  /// The wait-die abort path: rolls the transaction back eagerly (releasing
  /// its latches so the older transaction can proceed) and re-poisons the
  /// session, so the client sees Postgres aborted-transaction semantics —
  /// every statement fails until its ROLLBACK, which merely clears flags.
  void VictimizeSession(Session& session);

  /// Wires a table's change events to the database-level listeners.
  void AttachForwarding(Table* table);

  /// Durable construction tail: rebuild the catalog from the pager's
  /// recovered blob + DDL records, attach every table, sweep orphan files
  /// (a DDL torn before its record became durable), then install the
  /// snapshot provider so future checkpoints embed the live catalog.
  /// Catalog corruption aborts — the same stance the pager takes on an
  /// unreadable WAL: state this fundamental is not silently discarded.
  void RecoverCatalog();

  storage::FileLock file_lock_;  // declared (acquired) before pager_: the
                                 // pair must be ours before recovery touches it
  storage::Pager pager_;        // declared before catalog_: tables release
                                // into it on destruction
  Catalog catalog_{&pager_};
  /// Catalog-structure latch: every statement holds it shared for its
  /// duration; DDL (and direct CreateTable) holds it exclusive. This is
  /// what makes catalog_'s name→table map safe under concurrent sessions —
  /// and gives DDL a quiesced world to mutate it in. COMMIT/ROLLBACK touch
  /// only write-latched tables (which DDL fails fast on), so transaction
  /// control skips it. Reader-preferring by necessity — see SchemaLatch.
  SchemaLatch schema_mu_;
  /// The partitioned write-latch table (DESIGN.md §7): table-name →
  /// exclusive owner txn / shared reader count.
  WriteLatchTable latches_;
  std::mutex listeners_mu_;
  int next_listener_token_ = 1;
  std::vector<std::pair<int, ChangeListener>> listeners_;
  std::atomic<uint64_t> statements_executed_{0};
  std::atomic<bool> closed_{false};
  ExecOptions exec_;
  bool sync_on_commit_ = false;
  bool group_commit_ = true;
  /// The embedded default session Database::Execute runs on — the
  /// single-connection API every pre-multi-writer caller uses. Declared
  /// last: it only stores the back-pointer.
  Session default_session_{this};
};

}  // namespace dataspread

#endif  // DATASPREAD_DB_DATABASE_H_
