#ifndef DATASPREAD_DB_DATABASE_H_
#define DATASPREAD_DB_DATABASE_H_

#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "exec/resolver.h"
#include "exec/result_set.h"
#include "sql/ast.h"

namespace dataspread {

/// Construction-time options for a Database.
struct DatabaseOptions {
  /// Buffer-pool policy of the shared pager every table of this database
  /// allocates from: `max_resident_pages` bounds in-memory frames (0 =
  /// unbounded), `spill_path` names the eviction/checkpoint backing file
  /// (empty = anonymous temp file). With `wal_path` + `durable_spill` set,
  /// the pool is *durable*: every table mutation is WAL-logged, Checkpoint()
  /// truncates the log, and constructing a Database over the same pair
  /// recovers the committed page data (storage::PagerConfig, DESIGN.md §6).
  /// Note: the catalog (schemas, table names) is rebuilt by the application
  /// for now — page data durability is the storage milestone; catalog
  /// persistence rides with the transaction manager (ROADMAP).
  storage::PagerConfig pager;
};

/// The embedded relational engine standing in for the paper's PostgreSQL
/// back-end (see DESIGN.md §2). One statement at a time; statement-level
/// atomicity for constraint violations (the transaction manager is future
/// work, exactly as in the paper §3).
///
/// Thread-compatibility: Execute() is serialized by an internal recursive
/// mutex so the compute engine's background worker can run queries while the
/// interactive thread issues DML. Direct table reads (GetWindow etc.) bypass
/// that mutex; with a *bounded* pager pool such reads mutate buffer-pool
/// state (fault-in/eviction), so bounded configurations require
/// single-threaded access until pager-level synchronization lands.
class Database {
 public:
  Database() : Database(DatabaseOptions{}) {}
  /// Bounded-pool construction: the paper's million-cell sheets run behind a
  /// pool of a few hundred frames with cold pages spilled to disk.
  explicit Database(const DatabaseOptions& options) : pager_(options.pager) {}

  Catalog& catalog() { return catalog_; }

  /// The unified paged storage engine: every table of this database allocates
  /// its heaps from this one accounted pool.
  storage::Pager& pager() { return pager_; }
  const storage::Pager& pager() const { return pager_; }

  /// Flushes every dirty page of every table to the spill file; under a WAL
  /// (DatabaseOptions.pager.wal_path) this is the fuzzy checkpoint that also
  /// truncates the log and bounds recovery time. Returns pages written.
  size_t Checkpoint();

  /// Parses and executes one SQL statement. `resolver` supplies the
  /// spreadsheet context for RANGEVALUE/RANGETABLE (null = plain SQL only).
  Result<ResultSet> Execute(std::string_view sql,
                            ExternalResolver* resolver = nullptr);

  /// Registered callbacks fire after every mutation of any table
  /// (the back-end half of the paper's two-way sync).
  using ChangeListener =
      std::function<void(const std::string& table_name, const TableChange&)>;
  int AddChangeListener(ChangeListener listener);
  void RemoveChangeListener(int token);

  /// Creates a table directly (bypassing SQL); used by import paths.
  Result<Table*> CreateTable(std::string name, Schema schema,
                             StorageModel model = StorageModel::kHybrid);

  uint64_t statements_executed() const { return statements_executed_; }

 private:
  Result<ResultSet> Dispatch(sql::Statement& stmt, ExternalResolver* resolver);
  Result<ResultSet> ExecuteInsert(sql::InsertStmt& stmt,
                                  ExternalResolver* resolver);
  Result<ResultSet> ExecuteUpdate(sql::UpdateStmt& stmt,
                                  ExternalResolver* resolver);
  Result<ResultSet> ExecuteDelete(sql::DeleteStmt& stmt,
                                  ExternalResolver* resolver);
  Result<ResultSet> ExecuteCreate(sql::CreateTableStmt& stmt);
  Result<ResultSet> ExecuteDrop(sql::DropTableStmt& stmt);
  Result<ResultSet> ExecuteAlter(sql::AlterTableStmt& stmt,
                                 ExternalResolver* resolver);

  /// Wires a table's change events to the database-level listeners.
  void AttachForwarding(Table* table);

  storage::Pager pager_;        // declared before catalog_: tables drop their
                                // files into it on destruction
  Catalog catalog_{&pager_};
  std::recursive_mutex mutex_;
  int next_listener_token_ = 1;
  std::vector<std::pair<int, ChangeListener>> listeners_;
  uint64_t statements_executed_ = 0;
};

}  // namespace dataspread

#endif  // DATASPREAD_DB_DATABASE_H_
