#ifndef DATASPREAD_DB_DATABASE_H_
#define DATASPREAD_DB_DATABASE_H_

#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "exec/resolver.h"
#include "exec/result_set.h"
#include "exec/row_batch.h"
#include "sql/ast.h"

namespace dataspread {

/// Construction-time options for a Database.
struct DatabaseOptions {
  /// Buffer-pool policy of the shared pager every table of this database
  /// allocates from: `max_resident_pages` bounds in-memory frames (0 =
  /// unbounded), `spill_path` names the eviction/checkpoint backing file
  /// (empty = anonymous temp file). With `wal_path` + `durable_spill` set,
  /// the database is fully *durable and reopenable*: every table mutation
  /// is WAL-logged, the catalog (schemas, storage models, attribute groups,
  /// display order) persists through checkpoint snapshots and DDL records,
  /// and constructing a Database over the same pair — or calling
  /// Database::Open on the same path — recovers every table, schema, and
  /// row with no application-side rebuild (DESIGN.md §6, docs/DURABILITY.md).
  storage::PagerConfig pager;
  /// Query-execution shape: vectorized batch size and the row-at-a-time
  /// fallback (see ExecOptions). Defaults drive every SELECT through the
  /// batch pipeline at kDefaultExecBatchSize tuples per batch.
  ExecOptions exec;
};

/// The embedded relational engine standing in for the paper's PostgreSQL
/// back-end (see DESIGN.md §2). One statement at a time; statement-level
/// atomicity for constraint violations (the transaction manager is future
/// work, exactly as in the paper §3).
///
/// Thread-compatibility: Execute() is serialized by an internal recursive
/// mutex so the compute engine's background worker can run queries while the
/// interactive thread issues DML. Direct table reads (GetWindow etc.) bypass
/// that mutex; with a *bounded* pager pool such reads mutate buffer-pool
/// state (fault-in/eviction), so bounded configurations require
/// single-threaded access until pager-level synchronization lands.
class Database {
 public:
  Database() : Database(DatabaseOptions{}) {}
  /// Bounded-pool construction: the paper's million-cell sheets run behind a
  /// pool of a few hundred frames with cold pages spilled to disk. With a
  /// durable PagerConfig this is also the recovery path: page redo runs in
  /// the pager's constructor, then the catalog is rebuilt from the recovered
  /// snapshot blob + DDL records and every table rebinds to its files —
  /// the constructed database is ready to query, no schema rebuild needed.
  explicit Database(const DatabaseOptions& options);

  /// A clean shutdown: captures the final catalog snapshot, then tears
  /// down. Durable pagers end on a checkpoint, so the next Open replays an
  /// empty log. Calling Close() first is optional.
  ~Database();

  /// Opens (creating on first use) a durable database rooted at `base_path`:
  /// the data lives in `<base_path>.pages`, the log in `<base_path>.wal`.
  /// `options.pager`'s pool fields (cap, scan resistance, auto-checkpoint)
  /// are honored; its path fields are overwritten. The returned database
  /// holds every table exactly as last checkpointed/logged — see
  /// docs/DURABILITY.md for the full lifecycle. One process at a time per
  /// path: the pair is not lock-protected yet.
  static std::unique_ptr<Database> Open(const std::string& base_path,
                                        DatabaseOptions options = {});

  /// The `Open` path convention as plain options: `<base>.pages` +
  /// `<base>.wal`, durable. The one place the convention lives — the
  /// DataSpread facade's `database_path` resolves through here too.
  static DatabaseOptions DurableOptions(const std::string& base_path,
                                        DatabaseOptions options = {});

  /// Checkpoints and seals the database: all state is on disk and the log
  /// is empty. Every subsequent Execute()/CreateTable() — SELECTs included,
  /// the gate does not classify statements — fails with InvalidArgument;
  /// direct table access (GetWindow/GetRowAt) keeps serving. Idempotent.
  /// The pair can be reopened (by a new Database) after *destruction* —
  /// two live pagers on one pair would corrupt it.
  void Close();
  bool closed() const { return closed_; }

  Catalog& catalog() { return catalog_; }

  /// The unified paged storage engine: every table of this database allocates
  /// its heaps from this one accounted pool.
  storage::Pager& pager() { return pager_; }
  const storage::Pager& pager() const { return pager_; }

  /// Flushes every dirty page of every table to the spill file; under a WAL
  /// (DatabaseOptions.pager.wal_path) this is the fuzzy checkpoint that also
  /// truncates the log and bounds recovery time. Returns pages written.
  size_t Checkpoint();

  /// Parses and executes one SQL statement. `resolver` supplies the
  /// spreadsheet context for RANGEVALUE/RANGETABLE (null = plain SQL only).
  Result<ResultSet> Execute(std::string_view sql,
                            ExternalResolver* resolver = nullptr);

  /// Registered callbacks fire after every mutation of any table
  /// (the back-end half of the paper's two-way sync).
  using ChangeListener =
      std::function<void(const std::string& table_name, const TableChange&)>;
  int AddChangeListener(ChangeListener listener);
  void RemoveChangeListener(int token);

  /// Creates a table directly (bypassing SQL); used by import paths.
  Result<Table*> CreateTable(std::string name, Schema schema,
                             StorageModel model = StorageModel::kHybrid);

  uint64_t statements_executed() const { return statements_executed_; }

  /// Execution-pipeline knobs for subsequent statements. The mutator lets
  /// benches and the transparency tests A/B the row and batch pipelines on
  /// one loaded database.
  const ExecOptions& exec_options() const { return exec_; }
  void set_exec_options(const ExecOptions& exec) { exec_ = exec; }

 private:
  Result<ResultSet> Dispatch(sql::Statement& stmt, ExternalResolver* resolver);
  Result<ResultSet> ExecuteInsert(sql::InsertStmt& stmt,
                                  ExternalResolver* resolver);
  Result<ResultSet> ExecuteUpdate(sql::UpdateStmt& stmt,
                                  ExternalResolver* resolver);
  Result<ResultSet> ExecuteDelete(sql::DeleteStmt& stmt,
                                  ExternalResolver* resolver);
  Result<ResultSet> ExecuteCreate(sql::CreateTableStmt& stmt);
  Result<ResultSet> ExecuteDrop(sql::DropTableStmt& stmt);
  Result<ResultSet> ExecuteAlter(sql::AlterTableStmt& stmt,
                                 ExternalResolver* resolver);

  /// Wires a table's change events to the database-level listeners.
  void AttachForwarding(Table* table);

  /// Durable construction tail: rebuild the catalog from the pager's
  /// recovered blob + DDL records, attach every table, sweep orphan files
  /// (a DDL torn before its record became durable), then install the
  /// snapshot provider so future checkpoints embed the live catalog.
  /// Catalog corruption aborts — the same stance the pager takes on an
  /// unreadable WAL: state this fundamental is not silently discarded.
  void RecoverCatalog();

  storage::Pager pager_;        // declared before catalog_: tables release
                                // into it on destruction
  Catalog catalog_{&pager_};
  std::recursive_mutex mutex_;
  int next_listener_token_ = 1;
  std::vector<std::pair<int, ChangeListener>> listeners_;
  uint64_t statements_executed_ = 0;
  bool closed_ = false;
  ExecOptions exec_;
};

}  // namespace dataspread

#endif  // DATASPREAD_DB_DATABASE_H_
