#ifndef DATASPREAD_DB_DATABASE_H_
#define DATASPREAD_DB_DATABASE_H_

#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "storage/file_lock.h"
#include "exec/resolver.h"
#include "exec/result_set.h"
#include "exec/row_batch.h"
#include "sql/ast.h"

namespace dataspread {

/// Construction-time options for a Database.
struct DatabaseOptions {
  /// Buffer-pool policy of the shared pager every table of this database
  /// allocates from: `max_resident_pages` bounds in-memory frames (0 =
  /// unbounded), `spill_path` names the eviction/checkpoint backing file
  /// (empty = anonymous temp file). With `wal_path` + `durable_spill` set,
  /// the database is fully *durable and reopenable*: every table mutation
  /// is WAL-logged, the catalog (schemas, storage models, attribute groups,
  /// display order) persists through checkpoint snapshots and DDL records,
  /// and constructing a Database over the same pair — or calling
  /// Database::Open on the same path — recovers every table, schema, and
  /// row with no application-side rebuild (DESIGN.md §6, docs/DURABILITY.md).
  storage::PagerConfig pager;
  /// Query-execution shape: vectorized batch size and the row-at-a-time
  /// fallback (see ExecOptions). Defaults drive every SELECT through the
  /// batch pipeline at kDefaultExecBatchSize tuples per batch.
  ExecOptions exec;
  /// Fsync the WAL at the end of every successful mutating statement, making
  /// each commit individually durable. Off (the default) keeps the PR 5
  /// durability contract: statements are logged (and atomic — see the
  /// statement brackets, DESIGN.md §7) but only made durable by the next
  /// checkpoint, DDL, or explicit barrier. See docs/DURABILITY.md's
  /// durability-level table.
  bool sync_on_commit = false;
  /// With sync_on_commit: release the database mutex before the commit
  /// barrier, so concurrent committers park on one fsync (group commit —
  /// one leader syncs, all release; Wal::SyncThrough). Off = the barrier
  /// runs inside the statement lock, one fsync per commit — the serial
  /// baseline bench_txn A/Bs against. No effect without sync_on_commit.
  bool group_commit = true;
};

/// The embedded relational engine standing in for the paper's PostgreSQL
/// back-end (see DESIGN.md §2). Statements execute one at a time; each is a
/// transaction of its own (autocommit) unless a SQL `BEGIN` is open, in
/// which case statements accumulate into one multi-statement transaction
/// closed by `COMMIT` or `ROLLBACK`/`ABORT`. Atomicity holds at the
/// transaction granularity both for logical failures (a per-transaction
/// undo journal restores tables, display order, and row-id maps on
/// rollback) and across crashes (WAL transaction brackets — recovery
/// replays exactly the committed-transaction prefix, DESIGN.md §7).
///
/// The state machine is Postgres-shaped: nested BEGIN is rejected,
/// COMMIT/ROLLBACK without BEGIN is rejected, any error inside an open
/// transaction *poisons* it (every further statement fails until ROLLBACK;
/// COMMIT of a poisoned transaction rolls back), and DDL inside an
/// explicit transaction is rejected (DDL records are individually-durable
/// commit points that cannot ride an abortable bracket).
///
/// Threading: Execute() is serialized by an internal recursive mutex so the
/// compute engine's background worker can run queries while the interactive
/// thread issues DML, and the pager below is safe under concurrent readers
/// plus one writer — direct table reads (GetWindow etc.) may run against a
/// bounded pool while another thread executes statements. With
/// `sync_on_commit` + `group_commit`, concurrent committers batch their
/// commit barriers onto one fsync.
class Database {
 public:
  Database() : Database(DatabaseOptions{}) {}
  /// Bounded-pool construction: the paper's million-cell sheets run behind a
  /// pool of a few hundred frames with cold pages spilled to disk. With a
  /// durable PagerConfig this is also the recovery path: page redo runs in
  /// the pager's constructor, then the catalog is rebuilt from the recovered
  /// snapshot blob + DDL records and every table rebinds to its files —
  /// the constructed database is ready to query, no schema rebuild needed.
  explicit Database(const DatabaseOptions& options);

  /// A clean shutdown: captures the final catalog snapshot, then tears
  /// down. Durable pagers end on a checkpoint, so the next Open replays an
  /// empty log. Calling Close() first is optional.
  ~Database();

  /// Opens (creating on first use) a durable database rooted at `base_path`:
  /// the data lives in `<base_path>.pages`, the log in `<base_path>.wal`.
  /// `options.pager`'s pool fields (cap, scan resistance, auto-checkpoint)
  /// are honored; its path fields are overwritten. The returned database
  /// holds every table exactly as last checkpointed/logged — see
  /// docs/DURABILITY.md for the full lifecycle. The pair is guarded by an
  /// advisory lock on `<base_path>.wal.lock`: a second open while this one
  /// is alive *aborts* (construction has no error channel). Use TryOpen for
  /// the graceful-failure path.
  static std::unique_ptr<Database> Open(const std::string& base_path,
                                        DatabaseOptions options = {});

  /// Like Open, but fails softly: returns AlreadyExists when another live
  /// Database (this process or another) holds the pair's lock, instead of
  /// aborting. The lock is released when the returned Database is destroyed.
  static Result<std::unique_ptr<Database>> TryOpen(
      const std::string& base_path, DatabaseOptions options = {});

  /// The `Open` path convention as plain options: `<base>.pages` +
  /// `<base>.wal`, durable. The one place the convention lives — the
  /// DataSpread facade's `database_path` resolves through here too.
  static DatabaseOptions DurableOptions(const std::string& base_path,
                                        DatabaseOptions options = {});

  /// Checkpoints and seals the database: all state is on disk and the log
  /// is empty. Every subsequent Execute()/CreateTable() — SELECTs included,
  /// the gate does not classify statements — fails with InvalidArgument;
  /// direct table access (GetWindow/GetRowAt) keeps serving. Idempotent.
  /// The pair can be reopened (by a new Database) after *destruction* —
  /// two live pagers on one pair would corrupt it.
  void Close();
  bool closed() const { return closed_; }

  Catalog& catalog() { return catalog_; }

  /// The unified paged storage engine: every table of this database allocates
  /// its heaps from this one accounted pool.
  storage::Pager& pager() { return pager_; }
  const storage::Pager& pager() const { return pager_; }

  /// Flushes every dirty page of every table to the spill file; under a WAL
  /// (DatabaseOptions.pager.wal_path) this is the fuzzy checkpoint that also
  /// truncates the log and bounds recovery time. Returns pages written.
  size_t Checkpoint();

  /// Parses and executes one SQL statement. `resolver` supplies the
  /// spreadsheet context for RANGEVALUE/RANGETABLE (null = plain SQL only).
  Result<ResultSet> Execute(std::string_view sql,
                            ExternalResolver* resolver = nullptr);

  /// Registered callbacks fire after every mutation of any table
  /// (the back-end half of the paper's two-way sync).
  using ChangeListener =
      std::function<void(const std::string& table_name, const TableChange&)>;
  int AddChangeListener(ChangeListener listener);
  void RemoveChangeListener(int token);

  /// Creates a table directly (bypassing SQL); used by import paths.
  Result<Table*> CreateTable(std::string name, Schema schema,
                             StorageModel model = StorageModel::kHybrid);

  uint64_t statements_executed() const { return statements_executed_; }

  /// Execution-pipeline knobs for subsequent statements. The mutator lets
  /// benches and the transparency tests A/B the row and batch pipelines on
  /// one loaded database.
  const ExecOptions& exec_options() const { return exec_; }
  void set_exec_options(const ExecOptions& exec) { exec_ = exec; }

 private:
  /// Lock-then-construct: the advisory pair lock must be held before the
  /// pager's constructor opens (and possibly recovers) the WAL.
  Database(const DatabaseOptions& options, storage::FileLock lock);
  /// Acquires the pair lock for durable options (no-op otherwise); aborts
  /// with the lock holder's message on conflict — the constructor path's
  /// fail-fast. TryOpen surfaces the same condition as a Status instead.
  static storage::FileLock LockPairOrDie(const DatabaseOptions& options);
  /// The lock file guarding `wal_path`'s pair (empty for non-durable).
  static std::string LockPathFor(const DatabaseOptions& options);

  Result<ResultSet> Dispatch(sql::Statement& stmt, ExternalResolver* resolver);
  Result<ResultSet> ExecuteInsert(sql::InsertStmt& stmt,
                                  ExternalResolver* resolver);
  Result<ResultSet> ExecuteUpdate(sql::UpdateStmt& stmt,
                                  ExternalResolver* resolver);
  Result<ResultSet> ExecuteDelete(sql::DeleteStmt& stmt,
                                  ExternalResolver* resolver);
  Result<ResultSet> ExecuteCreate(sql::CreateTableStmt& stmt);
  Result<ResultSet> ExecuteDrop(sql::DropTableStmt& stmt);
  Result<ResultSet> ExecuteAlter(sql::AlterTableStmt& stmt,
                                 ExternalResolver* resolver);
  Result<ResultSet> ExecuteTransaction(const sql::TransactionStmt& stmt);

  /// Installs `journal` (may be null) as the undo journal of every table.
  void InstallUndoJournal(UndoJournal* journal);
  /// Rolls the open transaction back: undo journal applied in reverse
  /// (capture suspended), then the WAL bracket closes with kTxnAbort — the
  /// logged compensations make replaying the bracket a net no-op. An undo
  /// failure aborts the process (the in-memory state would be neither the
  /// pre- nor the post-transaction one).
  void RollbackOpenTxn();

  /// Wires a table's change events to the database-level listeners.
  void AttachForwarding(Table* table);

  /// Durable construction tail: rebuild the catalog from the pager's
  /// recovered blob + DDL records, attach every table, sweep orphan files
  /// (a DDL torn before its record became durable), then install the
  /// snapshot provider so future checkpoints embed the live catalog.
  /// Catalog corruption aborts — the same stance the pager takes on an
  /// unreadable WAL: state this fundamental is not silently discarded.
  void RecoverCatalog();

  storage::FileLock file_lock_;  // declared (acquired) before pager_: the
                                 // pair must be ours before recovery touches it
  storage::Pager pager_;        // declared before catalog_: tables release
                                // into it on destruction
  Catalog catalog_{&pager_};
  std::recursive_mutex mutex_;
  int next_listener_token_ = 1;
  std::vector<std::pair<int, ChangeListener>> listeners_;
  uint64_t statements_executed_ = 0;
  bool closed_ = false;
  ExecOptions exec_;
  bool sync_on_commit_ = false;
  bool group_commit_ = true;
  /// End LSN of the last committed transaction bracket (set under mutex_ by
  /// the DML paths in autocommit, and by COMMIT for explicit transactions —
  /// inside an open BEGIN the per-statement Commit() returns 0, so the
  /// group-commit fsync moves from statement end to transaction commit);
  /// Execute() consumes it for the commit barrier.
  uint64_t last_commit_end_lsn_ = 0;
  // ---- Multi-statement transaction state (guarded by mutex_) ----
  bool txn_open_ = false;
  bool txn_poisoned_ = false;
  UndoJournal txn_undo_;
};

}  // namespace dataspread

#endif  // DATASPREAD_DB_DATABASE_H_
