#include "db/database.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <unordered_set>

#include "catalog/catalog_codec.h"
#include "exec/binder.h"
#include "exec/expr_eval.h"
#include "exec/planner.h"
#include "sql/parser.h"

namespace dataspread {

namespace {

/// Name-resolution scope over a single table (for DML binding).
Scope TableScope(const Table& table) {
  Scope scope;
  for (const ColumnDef& c : table.schema().columns()) {
    scope.columns.push_back(Scope::Column{table.name(), c.name, true});
  }
  return scope;
}

/// Evaluates a bound expression with no input row (literals, RANGEVALUE
/// snapshots, scalar functions thereof).
Result<Value> EvalConstant(const sql::Expr& e) { return EvalScalar(e, nullptr); }

}  // namespace

Database::Database(const DatabaseOptions& options)
    : Database(options, LockPairOrDie(options)) {}

Database::Database(const DatabaseOptions& options, storage::FileLock lock)
    : file_lock_(std::move(lock)),
      pager_(options.pager),
      exec_(options.exec),
      sync_on_commit_(options.sync_on_commit),
      group_commit_(options.group_commit) {
  if (pager_.durable()) RecoverCatalog();
}

std::string Database::LockPathFor(const DatabaseOptions& options) {
  if (options.pager.wal_path.empty()) return std::string();
  return options.pager.wal_path + ".lock";
}

storage::FileLock Database::LockPairOrDie(const DatabaseOptions& options) {
  storage::FileLock lock;
  std::string path = LockPathFor(options);
  if (!path.empty()) {
    Status s = lock.Acquire(path);
    if (!s.ok()) {
      // No error channel in a constructor: a second live Database on one
      // pair would corrupt it, so this is fail-fast by design. TryOpen is
      // the graceful path.
      std::fprintf(stderr, "dataspread::Database: %s\n", s.message().c_str());
      std::abort();
    }
  }
  return lock;
}

Database::~Database() {
  // A transaction still open at destruction is rolled back — the pager
  // destructor's checkpoint must not run inside an open bracket, and the
  // never-committed work must not reach disk as if it had committed.
  if (txn_open_) RollbackOpenTxn();
  // Capture the final catalog blob while the catalog is still alive: the
  // pager outlives it (member order) and its destructor's checkpoint must
  // carry the full catalog forward.
  if (pager_.durable()) pager_.DetachCatalogProvider();
}

DatabaseOptions Database::DurableOptions(const std::string& base_path,
                                         DatabaseOptions options) {
  options.pager.spill_path = base_path + ".pages";
  options.pager.wal_path = base_path + ".wal";
  options.pager.durable_spill = true;
  return options;
}

std::unique_ptr<Database> Database::Open(const std::string& base_path,
                                         DatabaseOptions options) {
  return std::make_unique<Database>(DurableOptions(base_path,
                                                   std::move(options)));
}

Result<std::unique_ptr<Database>> Database::TryOpen(
    const std::string& base_path, DatabaseOptions options) {
  DatabaseOptions opts = DurableOptions(base_path, std::move(options));
  storage::FileLock lock;
  DS_RETURN_IF_ERROR(lock.Acquire(LockPathFor(opts)));
  // The lock is handed to the constructor pre-acquired (flock from a second
  // descriptor in the same process would conflict with our own lock).
  return std::unique_ptr<Database>(new Database(opts, std::move(lock)));
}

void Database::Close() {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  if (closed_) return;
  // An open transaction cannot survive the database: roll it back so the
  // closing checkpoint snapshots only committed state.
  if (txn_open_) RollbackOpenTxn();
  (void)pager_.FlushAll();
  closed_ = true;
}

void Database::RecoverCatalog() {
  // Corruption here aborts — the same stance the pager takes on an
  // unreadable WAL: state this fundamental is not silently discarded.
  auto die_on = [](const Status& status, const std::string& context) {
    if (status.ok()) return;
    std::fprintf(stderr, "dataspread::Database catalog recovery failed%s: %s\n",
                 context.c_str(), status.message().c_str());
    std::abort();
  };
  auto descriptors = ReplayCatalogState(pager_.recovered_catalog_blob(),
                                        pager_.recovered_catalog_ddl());
  die_on(descriptors.status(), "");
  std::unordered_set<storage::FileId> referenced;
  for (const TableDescriptor& desc : descriptors.value()) {
    auto table = Table::Attach(desc, &pager_);
    die_on(table.status(), " for table '" + desc.name + "'");
    referenced.insert(desc.order_file);
    referenced.insert(desc.rid_file);
    // Use the *attached* table's manifest, not the recovered descriptor's:
    // Attach may have repaired a torn statement, but bindings come from it
    // either way and this keeps the sweep honest against the live state.
    TableDescriptor live = table.value()->Describe();
    for (uint64_t f : live.manifest.files) referenced.insert(f);
    for (const StorageManifest::Group& g : live.manifest.groups) {
      referenced.insert(g.file);
    }
    auto adopted = catalog_.AdoptTable(std::move(table).value());
    die_on(adopted.status(), "");
    AttachForwarding(adopted.value());
  }
  // Orphan sweep: a crash between a DDL's file creations and its (never
  // durable) catalog record leaves files no descriptor references — legal
  // but dead weight. Dropping them here reclaims their pages and spill
  // space; their kDropFile records make the sweep itself durable.
  for (storage::FileId file : pager_.FileIds()) {
    if (referenced.count(file) == 0) pager_.DropFile(file);
  }
  // From here on every checkpoint snapshot embeds the live catalog.
  pager_.set_catalog_snapshot_provider([this](std::string* out) {
    EncodeCatalogBlob(catalog_.Describe(), out);
  });
}

size_t Database::Checkpoint() {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  return pager_.FlushAll();
}

Result<ResultSet> Database::Execute(std::string_view sql,
                                    ExternalResolver* resolver) {
  uint64_t commit_end = 0;
  Result<ResultSet> result = [&]() -> Result<ResultSet> {
    std::lock_guard<std::recursive_mutex> lock(mutex_);
    if (closed_) {
      return Status::InvalidArgument("database is closed");
    }
    auto parsed = sql::Parse(sql);
    if (!parsed.ok()) {
      // A statement that does not even parse still poisons an open
      // transaction: the client's script went off the rails mid-batch.
      if (txn_open_) txn_poisoned_ = true;
      return parsed.status();
    }
    sql::Statement stmt = std::move(parsed).value();
    statements_executed_ += 1;
    last_commit_end_lsn_ = 0;
    const bool is_txn_control =
        std::holds_alternative<sql::TransactionStmt>(stmt);
    if (txn_open_ && !is_txn_control) {
      if (txn_poisoned_) {
        return Status::InvalidArgument(
            "current transaction is aborted, commands ignored until ROLLBACK");
      }
      if (std::holds_alternative<sql::CreateTableStmt>(stmt) ||
          std::holds_alternative<sql::DropTableStmt>(stmt) ||
          std::holds_alternative<sql::AlterTableStmt>(stmt)) {
        // DDL records are individually durable commit points (fsynced as
        // they log) — they cannot ride a bracket a ROLLBACK may abort.
        txn_poisoned_ = true;
        return Status::InvalidArgument(
            "DDL inside a multi-statement transaction is not supported");
      }
    }
    Result<ResultSet> r = Dispatch(stmt, resolver);
    if (!r.ok() && txn_open_ && !is_txn_control) {
      // Postgres semantics: any failed statement poisons the transaction;
      // everything but ROLLBACK (or COMMIT, which then rolls back) fails
      // until the client acknowledges the abort. Control-statement errors
      // (nested BEGIN) are protocol noise, not transaction failures.
      txn_poisoned_ = true;
    }
    if (r.ok() && sync_on_commit_ && last_commit_end_lsn_ != 0) {
      if (group_commit_) {
        // Commit barrier runs *outside* the statement mutex (below):
        // concurrent committers reach Wal::SyncThrough together and share
        // one fsync — the group-commit win bench_txn measures.
        commit_end = last_commit_end_lsn_;
      } else {
        // Serial baseline: one fsync per commit, inside the lock.
        pager_.SyncWalThrough(last_commit_end_lsn_);
      }
    }
    return r;
  }();
  if (commit_end != 0) pager_.SyncWalThrough(commit_end);
  return result;
}

Result<ResultSet> Database::Dispatch(sql::Statement& stmt,
                                     ExternalResolver* resolver) {
  if (auto* s = std::get_if<sql::SelectStmt>(&stmt)) {
    return RunSelect(s, catalog_, resolver, exec_);
  }
  if (auto* s = std::get_if<sql::InsertStmt>(&stmt)) {
    return ExecuteInsert(*s, resolver);
  }
  if (auto* s = std::get_if<sql::UpdateStmt>(&stmt)) {
    return ExecuteUpdate(*s, resolver);
  }
  if (auto* s = std::get_if<sql::DeleteStmt>(&stmt)) {
    return ExecuteDelete(*s, resolver);
  }
  if (auto* s = std::get_if<sql::CreateTableStmt>(&stmt)) {
    return ExecuteCreate(*s);
  }
  if (auto* s = std::get_if<sql::DropTableStmt>(&stmt)) {
    return ExecuteDrop(*s);
  }
  if (auto* s = std::get_if<sql::AlterTableStmt>(&stmt)) {
    return ExecuteAlter(*s, resolver);
  }
  if (auto* s = std::get_if<sql::TransactionStmt>(&stmt)) {
    return ExecuteTransaction(*s);
  }
  return Status::Internal("unhandled statement kind");
}

Result<ResultSet> Database::ExecuteTransaction(const sql::TransactionStmt& stmt) {
  ResultSet rs;
  switch (stmt.kind) {
    case sql::TransactionStmt::Kind::kBegin:
      if (txn_open_) {
        return Status::InvalidArgument(
            "BEGIN inside an open transaction (nesting is not supported)");
      }
      txn_open_ = true;
      txn_poisoned_ = false;
      txn_undo_.Clear();
      // One WAL bracket spans the whole transaction: the statements inside
      // ride it (their own EndStatement calls sit at depth > 0 and emit
      // nothing), so a crash before COMMIT discards every statement.
      pager_.BeginTxn();
      // DDL is rejected while the transaction is open, so the table set —
      // and each journal installation — is stable until it ends.
      InstallUndoJournal(&txn_undo_);
      rs.message = "BEGIN";
      return rs;
    case sql::TransactionStmt::Kind::kCommit: {
      if (!txn_open_) {
        return Status::InvalidArgument("COMMIT without an open transaction");
      }
      if (txn_poisoned_) {
        // Postgres semantics: committing an aborted transaction rolls it
        // back and reports so, rather than erroring a second time.
        RollbackOpenTxn();
        rs.message = "ROLLBACK";
        return rs;
      }
      InstallUndoJournal(nullptr);
      txn_undo_.Clear();
      txn_open_ = false;
      // The transaction's commit barrier: Execute() syncs through this end
      // boundary under sync_on_commit — the fsync the member statements
      // each skipped.
      last_commit_end_lsn_ = pager_.CommitTxn();
      rs.message = "COMMIT";
      return rs;
    }
    case sql::TransactionStmt::Kind::kRollback:
      if (!txn_open_) {
        return Status::InvalidArgument("ROLLBACK without an open transaction");
      }
      RollbackOpenTxn();
      rs.message = "ROLLBACK";
      return rs;
  }
  return Status::Internal("unhandled transaction statement kind");
}

void Database::InstallUndoJournal(UndoJournal* journal) {
  for (const std::string& name : catalog_.TableNames()) {
    auto table = catalog_.GetTable(name);
    if (table.ok()) table.value()->set_undo_journal(journal);
  }
}

void Database::RollbackOpenTxn() {
  // Suspend capture before undoing: the compensations below must not
  // journal themselves.
  InstallUndoJournal(nullptr);
  for (auto it = txn_undo_.entries.rbegin(); it != txn_undo_.entries.rend();
       ++it) {
    UndoJournal::Entry& e = *it;
    Status s = Status::OK();
    switch (e.kind) {
      case UndoJournal::Entry::Kind::kInsert:
        s = e.table->UndoInsertRow(e.pos, e.rid);
        break;
      case UndoJournal::Entry::Kind::kDelete:
        s = e.table->UndoDeleteRow(e.pos, std::move(e.row), e.rid);
        break;
      case UndoJournal::Entry::Kind::kUpdate:
        s = e.table->UndoUpdateCell(e.rid, e.col, std::move(e.old_value));
        break;
    }
    if (!s.ok()) {
      // Undo replays exact before-images over states it has already
      // restored; a failure means the in-memory state is neither the pre-
      // nor the post-transaction one. Same stance as catalog corruption:
      // do not limp on.
      std::fprintf(stderr, "dataspread::Database ROLLBACK failed: %s\n",
                   s.message().c_str());
      std::abort();
    }
  }
  txn_undo_.Clear();
  txn_open_ = false;
  txn_poisoned_ = false;
  // Close the WAL bracket with kTxnAbort. The undo's page mutations were
  // logged inside the bracket as compensations, so replaying it is a net
  // no-op — and if the process dies before this record, recovery discards
  // the open bracket wholesale, which lands in the same state.
  pager_.AbortTxn();
}

Result<ResultSet> Database::ExecuteInsert(sql::InsertStmt& stmt,
                                          ExternalResolver* resolver) {
  DS_ASSIGN_OR_RETURN(Table * table, catalog_.GetTable(stmt.table));
  const Schema& schema = table->schema();

  // Column mapping: named list or full schema order.
  std::vector<size_t> target_cols;
  if (stmt.columns.empty()) {
    for (size_t i = 0; i < schema.num_columns(); ++i) target_cols.push_back(i);
  } else {
    for (const std::string& name : stmt.columns) {
      auto idx = schema.FindColumn(name);
      if (!idx) {
        return Status::NotFound("column '" + name + "' does not exist in " +
                                stmt.table);
      }
      target_cols.push_back(*idx);
    }
  }

  // Phase 1: evaluate every incoming tuple before mutating anything.
  std::vector<Row> incoming;
  if (stmt.select != nullptr) {
    DS_ASSIGN_OR_RETURN(ResultSet sub,
                        RunSelect(stmt.select.get(), catalog_, resolver,
                                  exec_));
    incoming = std::move(sub.rows);
  } else {
    Scope empty;
    for (std::vector<sql::ExprPtr>& value_row : stmt.values) {
      Row row;
      row.reserve(value_row.size());
      for (sql::ExprPtr& e : value_row) {
        DS_RETURN_IF_ERROR(BindExpr(e.get(), empty, resolver,
                                    /*allow_aggregates=*/false));
        DS_ASSIGN_OR_RETURN(Value v, EvalConstant(*e));
        row.push_back(std::move(v));
      }
      incoming.push_back(std::move(row));
    }
  }
  for (const Row& row : incoming) {
    if (row.size() != target_cols.size()) {
      return Status::InvalidArgument(
          "INSERT supplies " + std::to_string(row.size()) + " values for " +
          std::to_string(target_cols.size()) + " columns");
    }
  }

  // Phase 2: append, all rows inside one statement bracket; on a constraint
  // violation roll back the prefix so the statement is atomic. The rollback
  // deletes land inside the bracket too, which then closes with kTxnAbort —
  // a net no-op on replay, and a crash anywhere in between discards the
  // bracket wholesale (DESIGN.md §7).
  storage::StatementScope txn(pager_);
  size_t applied = 0;
  Status failure = Status::OK();
  for (const Row& row : incoming) {
    Row full(schema.num_columns(), Value::Null());
    for (size_t i = 0; i < target_cols.size(); ++i) full[target_cols[i]] = row[i];
    Status s = table->AppendRow(std::move(full));
    if (!s.ok()) {
      failure = s;
      break;
    }
    ++applied;
  }
  if (!failure.ok()) {
    for (size_t i = 0; i < applied; ++i) {
      (void)table->DeleteRowAt(table->num_rows() - 1);
    }
    return failure;
  }
  last_commit_end_lsn_ = txn.Commit();
  ResultSet rs;
  rs.affected_rows = applied;
  return rs;
}

Result<ResultSet> Database::ExecuteUpdate(sql::UpdateStmt& stmt,
                                          ExternalResolver* resolver) {
  DS_ASSIGN_OR_RETURN(Table * table, catalog_.GetTable(stmt.table));
  Scope scope = TableScope(*table);
  std::vector<size_t> target_cols;
  for (auto& [name, expr] : stmt.assignments) {
    auto idx = table->schema().FindColumn(name);
    if (!idx) {
      return Status::NotFound("column '" + name + "' does not exist in " +
                              stmt.table);
    }
    target_cols.push_back(*idx);
    DS_RETURN_IF_ERROR(BindExpr(expr.get(), scope, resolver,
                                /*allow_aggregates=*/false));
  }
  if (stmt.where != nullptr) {
    DS_RETURN_IF_ERROR(BindExpr(stmt.where.get(), scope, resolver,
                                /*allow_aggregates=*/false));
  }

  // Key-direct fast path: `WHERE <pk> = <literal>` skips the table scan —
  // the interface-aware point update driving Figure 2c edits.
  auto pk = table->schema().primary_key_index();
  if (pk && stmt.where != nullptr &&
      stmt.where->kind == sql::ExprKind::kBinary && stmt.where->op == "=") {
    const sql::Expr* lhs = stmt.where->args[0].get();
    const sql::Expr* rhs = stmt.where->args[1].get();
    if (rhs->kind == sql::ExprKind::kColumnRef) std::swap(lhs, rhs);
    if (lhs->kind == sql::ExprKind::kColumnRef &&
        lhs->bound_column == static_cast<int>(*pk) &&
        rhs->kind == sql::ExprKind::kLiteral) {
      auto row = table->GetRowByKey(rhs->literal);
      ResultSet rs;
      if (!row.ok()) {
        if (row.status().code() == StatusCode::kNotFound) {
          rs.affected_rows = 0;
          return rs;
        }
        return row.status();
      }
      // Evaluate all assignments against the fetched row, then apply with
      // rollback on a mid-statement failure.
      std::vector<Value> new_values, old_values;
      Value key = rhs->literal;
      for (size_t i = 0; i < stmt.assignments.size(); ++i) {
        DS_ASSIGN_OR_RETURN(Value v,
                            EvalScalar(*stmt.assignments[i].second,
                                       &row.value()));
        new_values.push_back(std::move(v));
        old_values.push_back(row.value()[target_cols[i]]);
      }
      storage::StatementScope txn(pager_);
      for (size_t i = 0; i < new_values.size(); ++i) {
        Status s = table->UpdateByKey(key, target_cols[i], new_values[i]);
        if (target_cols[i] == *pk && s.ok()) key = new_values[i];
        if (!s.ok()) {
          for (size_t j = i; j-- > 0;) {
            (void)table->UpdateByKey(key, target_cols[j], old_values[j]);
            if (target_cols[j] == *pk) key = old_values[j];
          }
          return s;  // the scope closes the bracket with kTxnAbort
        }
      }
      last_commit_end_lsn_ = txn.Commit();
      rs.affected_rows = 1;
      return rs;
    }
  }

  // Phase 1: evaluate all updates against the pre-statement state.
  struct PendingUpdate {
    size_t pos;
    size_t col;
    Value value;
    Value old_value;
  };
  std::vector<PendingUpdate> pending;
  Status scan_status = Status::OK();
  table->Scan([&](size_t pos, const Row& row) {
    if (stmt.where != nullptr) {
      auto pass = EvalPredicate(*stmt.where, &row);
      if (!pass.ok()) {
        scan_status = pass.status();
        return false;
      }
      if (!pass.value()) return true;
    }
    for (size_t i = 0; i < stmt.assignments.size(); ++i) {
      auto v = EvalScalar(*stmt.assignments[i].second, &row);
      if (!v.ok()) {
        scan_status = v.status();
        return false;
      }
      pending.push_back(PendingUpdate{pos, target_cols[i],
                                      std::move(v).value(),
                                      row[target_cols[i]]});
    }
    return true;
  });
  DS_RETURN_IF_ERROR(scan_status);

  // Phase 2: apply inside one statement bracket, with rollback on failure.
  storage::StatementScope txn(pager_);
  size_t applied = 0;
  Status failure = Status::OK();
  for (const PendingUpdate& u : pending) {
    Status s = table->UpdateAt(u.pos, u.col, u.value);
    if (!s.ok()) {
      failure = s;
      break;
    }
    ++applied;
  }
  if (!failure.ok()) {
    for (size_t i = applied; i-- > 0;) {
      (void)table->UpdateAt(pending[i].pos, pending[i].col, pending[i].old_value);
    }
    return failure;
  }
  last_commit_end_lsn_ = txn.Commit();
  ResultSet rs;
  size_t assignments = stmt.assignments.empty() ? 1 : stmt.assignments.size();
  rs.affected_rows = pending.size() / assignments;
  return rs;
}

Result<ResultSet> Database::ExecuteDelete(sql::DeleteStmt& stmt,
                                          ExternalResolver* resolver) {
  DS_ASSIGN_OR_RETURN(Table * table, catalog_.GetTable(stmt.table));
  Scope scope = TableScope(*table);
  if (stmt.where != nullptr) {
    DS_RETURN_IF_ERROR(BindExpr(stmt.where.get(), scope, resolver,
                                /*allow_aggregates=*/false));
  }
  std::vector<size_t> positions;
  Status scan_status = Status::OK();
  table->Scan([&](size_t pos, const Row& row) {
    if (stmt.where != nullptr) {
      auto pass = EvalPredicate(*stmt.where, &row);
      if (!pass.ok()) {
        scan_status = pass.status();
        return false;
      }
      if (!pass.value()) return true;
    }
    positions.push_back(pos);
    return true;
  });
  DS_RETURN_IF_ERROR(scan_status);
  // Delete from the highest position down so earlier positions stay valid,
  // all inside one statement bracket.
  storage::StatementScope txn(pager_);
  for (size_t i = positions.size(); i-- > 0;) {
    DS_RETURN_IF_ERROR(table->DeleteRowAt(positions[i]));
  }
  last_commit_end_lsn_ = txn.Commit();
  ResultSet rs;
  rs.affected_rows = positions.size();
  return rs;
}

Result<ResultSet> Database::ExecuteCreate(sql::CreateTableStmt& stmt) {
  if (stmt.if_not_exists && catalog_.HasTable(stmt.table)) {
    ResultSet rs;
    rs.message = "table " + stmt.table + " already exists";
    return rs;
  }
  Schema schema;
  for (const sql::ColumnSpec& spec : stmt.columns) {
    DS_RETURN_IF_ERROR(
        schema.AddColumn(ColumnDef{spec.name, spec.type, spec.primary_key}));
  }
  DS_ASSIGN_OR_RETURN(Table * table,
                      catalog_.CreateTable(stmt.table, std::move(schema)));
  AttachForwarding(table);
  ResultSet rs;
  rs.message = "created table " + table->name();
  return rs;
}

Result<ResultSet> Database::ExecuteDrop(sql::DropTableStmt& stmt) {
  if (stmt.if_exists && !catalog_.HasTable(stmt.table)) {
    ResultSet rs;
    rs.message = "table " + stmt.table + " does not exist";
    return rs;
  }
  DS_RETURN_IF_ERROR(catalog_.DropTable(stmt.table));
  ResultSet rs;
  rs.message = "dropped table " + stmt.table;
  return rs;
}

Result<ResultSet> Database::ExecuteAlter(sql::AlterTableStmt& stmt,
                                         ExternalResolver* resolver) {
  DS_ASSIGN_OR_RETURN(Table * table, catalog_.GetTable(stmt.table));
  ResultSet rs;
  switch (stmt.action) {
    case sql::AlterTableStmt::Action::kAddColumn: {
      Value default_value = Value::Null();
      if (stmt.default_value != nullptr) {
        Scope empty;
        DS_RETURN_IF_ERROR(BindExpr(stmt.default_value.get(), empty, resolver,
                                    /*allow_aggregates=*/false));
        DS_ASSIGN_OR_RETURN(default_value, EvalConstant(*stmt.default_value));
      }
      DS_RETURN_IF_ERROR(table->AddColumn(
          ColumnDef{stmt.new_column.name, stmt.new_column.type,
                    stmt.new_column.primary_key},
          default_value));
      rs.message = "added column " + stmt.new_column.name;
      return rs;
    }
    case sql::AlterTableStmt::Action::kDropColumn:
      DS_RETURN_IF_ERROR(table->DropColumn(stmt.column_name));
      rs.message = "dropped column " + stmt.column_name;
      return rs;
    case sql::AlterTableStmt::Action::kRenameColumn:
      DS_RETURN_IF_ERROR(table->RenameColumn(stmt.column_name, stmt.new_name));
      rs.message = "renamed column " + stmt.column_name + " to " + stmt.new_name;
      return rs;
  }
  return Status::Internal("unhandled ALTER action");
}

int Database::AddChangeListener(ChangeListener listener) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  int token = next_listener_token_++;
  listeners_.emplace_back(token, std::move(listener));
  return token;
}

void Database::RemoveChangeListener(int token) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  for (auto it = listeners_.begin(); it != listeners_.end(); ++it) {
    if (it->first == token) {
      listeners_.erase(it);
      return;
    }
  }
}

Result<Table*> Database::CreateTable(std::string name, Schema schema,
                                     StorageModel model) {
  std::lock_guard<std::recursive_mutex> lock(mutex_);
  if (closed_) {
    return Status::InvalidArgument("database is closed");
  }
  if (txn_open_) {
    return Status::InvalidArgument(
        "DDL inside a multi-statement transaction is not supported");
  }
  DS_ASSIGN_OR_RETURN(Table * table, catalog_.CreateTable(std::move(name),
                                                          std::move(schema),
                                                          model));
  AttachForwarding(table);
  return table;
}

void Database::AttachForwarding(Table* table) {
  table->AddListener([this](const Table& t, const TableChange& change) {
    // Listener vector may be mutated by callbacks; iterate over a copy.
    auto snapshot = listeners_;
    for (const auto& [token, fn] : snapshot) {
      (void)token;
      fn(t.name(), change);
    }
  });
}

}  // namespace dataspread
