#include "db/database.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <shared_mutex>
#include <unordered_set>

#include "catalog/catalog_codec.h"
#include "common/str_util.h"
#include "exec/binder.h"
#include "exec/expr_eval.h"
#include "exec/planner.h"
#include "sql/parser.h"

namespace dataspread {

namespace {

/// Name-resolution scope over a single table (for DML binding).
Scope TableScope(const Table& table) {
  Scope scope;
  for (const ColumnDef& c : table.schema().columns()) {
    scope.columns.push_back(Scope::Column{table.name(), c.name, true});
  }
  return scope;
}

/// Evaluates a bound expression with no input row (literals, RANGEVALUE
/// snapshots, scalar functions thereof).
Result<Value> EvalConstant(const sql::Expr& e) { return EvalScalar(e, nullptr); }

/// The read set of a SELECT as write-latch keys (lower-cased table names):
/// the FROM table plus every join table. Range tables resolve outside the
/// catalog and need no latch. Duplicates are kept — AcquireShared counts
/// them symmetrically with ReleaseShared.
void CollectTableNames(const sql::SelectStmt& stmt,
                       std::vector<std::string>* out) {
  if (stmt.from.has_value() && stmt.from->kind == sql::TableRef::Kind::kNamed) {
    out->push_back(ToLower(stmt.from->name));
  }
  for (const sql::JoinClause& j : stmt.joins) {
    if (j.table.kind == sql::TableRef::Kind::kNamed) {
      out->push_back(ToLower(j.table.name));
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// WriteGuard: one DML statement's latch bookkeeping
// ---------------------------------------------------------------------------

/// Statement-scoped write/read latching for one DML statement on one
/// session. Constructed before the statement's StatementScope so its
/// destructor runs *after* the scope's: on every path the WAL bracket
/// closes (commit or abort record appended) strictly before any latch is
/// released. Releasing first would let another transaction's committed
/// records land between this bracket's compensations and its close marker
/// — replay would then reapply our page images over the newer committed
/// ones.
struct Database::WriteGuard {
  WriteGuard(Database& db, Session& session)
      : db_(db), session_(session), autocommit_(!session.txn_open_) {
    // Autocommit statements get a transaction context of their own — the
    // id doubles as the wait-die age, so even a plain INSERT has a well-
    // defined position in the latch order.
    txn_ = autocommit_ ? db.pager_.BeginTxn() : session.txn_id_;
  }

  ~WriteGuard() {
    if (autocommit_ && !committed_) db_.pager_.AbortTxn(txn_);
    ReleaseAll();
  }

  storage::TxnId txn() const { return txn_; }

  /// Acquires `table`'s exclusive write latch. Transaction sessions add it
  /// to the 2PL write set (undo journal + owning context installed on the
  /// table, held to commit/rollback); a wait-die conflict victimizes the
  /// whole transaction before returning the retryable status. Autocommit
  /// conflicts return directly — nothing has been mutated yet, latches
  /// strictly precede mutations.
  Status LatchWrite(Table* table) {
    std::string key = ToLower(table->name());
    const bool holds_nothing = autocommit_
                                   ? (write_latched_.empty() &&
                                      read_latched_.empty())
                                   : session_.latched_.empty();
    Status s = db_.latches_.AcquireExclusive(key, txn_, holds_nothing);
    if (!s.ok()) {
      if (!autocommit_) db_.VictimizeSession(session_);
      return s;
    }
    if (autocommit_) {
      write_latched_.push_back(std::move(key));
      return Status::OK();
    }
    auto& set = session_.latched_;
    if (std::find(set.begin(), set.end(), table) == set.end()) {
      set.push_back(table);
      table->set_undo_journal(&session_.undo_);
      table->set_write_txn(txn_);
    }
    return Status::OK();
  }

  /// Acquires the statement's read set shared, all-or-nothing (see
  /// WriteLatchTable). Statement-scoped for every session kind: released
  /// when the guard dies.
  Status LatchRead(std::vector<std::string> tables) {
    if (tables.empty()) return Status::OK();
    const bool holds_nothing =
        autocommit_ ? write_latched_.empty() : session_.latched_.empty();
    Status s = db_.latches_.AcquireShared(tables, txn_, holds_nothing);
    if (!s.ok()) {
      if (!autocommit_) db_.VictimizeSession(session_);
      return s;
    }
    read_latched_ = std::move(tables);
    return Status::OK();
  }

  /// Statement epilogue after the mutations succeeded. Autocommit: close
  /// the transaction context (the kTxnCommit record) and only then release
  /// the latches; returns the bracket's end boundary for the commit
  /// barrier. Transaction sessions keep their write latches (strict 2PL),
  /// release the statement's read latches, and return 0 — their barrier
  /// moves to COMMIT.
  uint64_t Commit() {
    committed_ = true;
    const uint64_t end = autocommit_ ? db_.pager_.CommitTxn(txn_) : 0;
    ReleaseAll();
    return end;
  }

 private:
  void ReleaseAll() {
    for (const std::string& t : write_latched_) {
      db_.latches_.ReleaseExclusive(t, txn_);
    }
    write_latched_.clear();
    if (!read_latched_.empty()) {
      db_.latches_.ReleaseShared(read_latched_);
      read_latched_.clear();
    }
  }

  Database& db_;
  Session& session_;
  const bool autocommit_;
  storage::TxnId txn_ = 0;
  bool committed_ = false;
  std::vector<std::string> write_latched_;  // autocommit only (txn sessions
                                            // track theirs in the session)
  std::vector<std::string> read_latched_;
};

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------

Session::~Session() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (txn_open_) db_->RollbackSessionTxn(*this);
}

Result<ResultSet> Session::Execute(std::string_view sql,
                                   ExternalResolver* resolver) {
  return db_->ExecuteForSession(*this, sql, resolver);
}

// ---------------------------------------------------------------------------
// Database: construction / teardown
// ---------------------------------------------------------------------------

Database::Database(const DatabaseOptions& options)
    : Database(options, LockPairOrDie(options)) {}

Database::Database(const DatabaseOptions& options, storage::FileLock lock)
    : file_lock_(std::move(lock)),
      pager_(options.pager),
      exec_(options.exec),
      sync_on_commit_(options.sync_on_commit),
      group_commit_(options.group_commit) {
  if (pager_.durable()) RecoverCatalog();
}

std::string Database::LockPathFor(const DatabaseOptions& options) {
  if (options.pager.wal_path.empty()) return std::string();
  return options.pager.wal_path + ".lock";
}

storage::FileLock Database::LockPairOrDie(const DatabaseOptions& options) {
  storage::FileLock lock;
  std::string path = LockPathFor(options);
  if (!path.empty()) {
    Status s = lock.Acquire(path);
    if (!s.ok()) {
      // No error channel in a constructor: a second live Database on one
      // pair would corrupt it, so this is fail-fast by design. TryOpen is
      // the graceful path.
      std::fprintf(stderr, "dataspread::Database: %s\n", s.message().c_str());
      std::abort();
    }
  }
  return lock;
}

Database::~Database() {
  // A transaction still open on the default session at destruction is
  // rolled back — the pager destructor's checkpoint must not run inside an
  // open bracket, and the never-committed work must not reach disk as if
  // it had committed. (CreateSession() sessions rolled back in their own
  // destructors, which must already have run.)
  if (default_session_.txn_open_) RollbackSessionTxn(default_session_);
  // Capture the final catalog blob while the catalog is still alive: the
  // pager outlives it (member order) and its destructor's checkpoint must
  // carry the full catalog forward.
  if (pager_.durable()) pager_.DetachCatalogProvider();
}

DatabaseOptions Database::DurableOptions(const std::string& base_path,
                                         DatabaseOptions options) {
  options.pager.spill_path = base_path + ".pages";
  options.pager.wal_path = base_path + ".wal";
  options.pager.durable_spill = true;
  return options;
}

std::unique_ptr<Database> Database::Open(const std::string& base_path,
                                         DatabaseOptions options) {
  return std::make_unique<Database>(DurableOptions(base_path,
                                                   std::move(options)));
}

Result<std::unique_ptr<Database>> Database::TryOpen(
    const std::string& base_path, DatabaseOptions options) {
  DatabaseOptions opts = DurableOptions(base_path, std::move(options));
  storage::FileLock lock;
  DS_RETURN_IF_ERROR(lock.Acquire(LockPathFor(opts)));
  // The lock is handed to the constructor pre-acquired (flock from a second
  // descriptor in the same process would conflict with our own lock).
  return std::unique_ptr<Database>(new Database(opts, std::move(lock)));
}

void Database::Close() {
  std::lock_guard<std::recursive_mutex> lock(default_session_.mu_);
  if (closed()) return;
  // An open transaction cannot survive the database: roll it back so the
  // closing checkpoint snapshots only committed state. Other sessions'
  // open transactions simply make the flush a no-op (it declines while
  // brackets are open); they roll back in their own destructors.
  if (default_session_.txn_open_) RollbackSessionTxn(default_session_);
  (void)pager_.FlushAll();
  closed_.store(true, std::memory_order_release);
}

std::unique_ptr<Session> Database::CreateSession() {
  return std::unique_ptr<Session>(new Session(this));
}

void Database::RecoverCatalog() {
  // Corruption here aborts — the same stance the pager takes on an
  // unreadable WAL: state this fundamental is not silently discarded.
  auto die_on = [](const Status& status, const std::string& context) {
    if (status.ok()) return;
    std::fprintf(stderr, "dataspread::Database catalog recovery failed%s: %s\n",
                 context.c_str(), status.message().c_str());
    std::abort();
  };
  auto descriptors = ReplayCatalogState(pager_.recovered_catalog_blob(),
                                        pager_.recovered_catalog_ddl());
  die_on(descriptors.status(), "");
  std::unordered_set<storage::FileId> referenced;
  for (const TableDescriptor& desc : descriptors.value()) {
    auto table = Table::Attach(desc, &pager_);
    die_on(table.status(), " for table '" + desc.name + "'");
    referenced.insert(desc.order_file);
    referenced.insert(desc.rid_file);
    // Use the *attached* table's manifest, not the recovered descriptor's:
    // Attach may have repaired a torn statement, but bindings come from it
    // either way and this keeps the sweep honest against the live state.
    TableDescriptor live = table.value()->Describe();
    for (uint64_t f : live.manifest.files) referenced.insert(f);
    for (const StorageManifest::Group& g : live.manifest.groups) {
      referenced.insert(g.file);
    }
    auto adopted = catalog_.AdoptTable(std::move(table).value());
    die_on(adopted.status(), "");
    AttachForwarding(adopted.value());
  }
  // Orphan sweep: a crash between a DDL's file creations and its (never
  // durable) catalog record leaves files no descriptor references — legal
  // but dead weight. Dropping them here reclaims their pages and spill
  // space; their kDropFile records make the sweep itself durable.
  for (storage::FileId file : pager_.FileIds()) {
    if (referenced.count(file) == 0) pager_.DropFile(file);
  }
  // From here on every checkpoint snapshot embeds the live catalog.
  pager_.set_catalog_snapshot_provider([this](std::string* out) {
    EncodeCatalogBlob(catalog_.Describe(), out);
  });
}

size_t Database::Checkpoint() {
  // Quiesce statements: the exclusive schema latch drains every in-flight
  // statement and blocks new ones for the duration of the flush. Open
  // transaction *brackets* (committed statements inside a BEGIN) still
  // decline the checkpoint — FlushAll returns 0 then.
  std::unique_lock<SchemaLatch> schema_lock(schema_mu_);
  return pager_.FlushAll();
}

// ---------------------------------------------------------------------------
// Statement execution
// ---------------------------------------------------------------------------

Result<ResultSet> Database::Execute(std::string_view sql,
                                    ExternalResolver* resolver) {
  return ExecuteForSession(default_session_, sql, resolver);
}

Result<ResultSet> Database::ExecuteForSession(Session& session,
                                              std::string_view sql,
                                              ExternalResolver* resolver) {
  uint64_t commit_end = 0;
  Result<ResultSet> result = [&]() -> Result<ResultSet> {
    std::lock_guard<std::recursive_mutex> lock(session.mu_);
    if (closed()) {
      return Status::InvalidArgument("database is closed");
    }
    auto parsed = sql::Parse(sql);
    if (!parsed.ok()) {
      // A statement that does not even parse still poisons an open
      // transaction: the client's script went off the rails mid-batch.
      if (session.txn_open_) session.txn_poisoned_ = true;
      return parsed.status();
    }
    sql::Statement stmt = std::move(parsed).value();
    statements_executed_.fetch_add(1, std::memory_order_relaxed);
    session.last_commit_end_lsn_ = 0;
    const bool is_txn_control =
        std::holds_alternative<sql::TransactionStmt>(stmt);
    const bool is_ddl = std::holds_alternative<sql::CreateTableStmt>(stmt) ||
                        std::holds_alternative<sql::DropTableStmt>(stmt) ||
                        std::holds_alternative<sql::AlterTableStmt>(stmt);
    if (session.txn_open_ && !is_txn_control) {
      if (session.txn_poisoned_) {
        return Status::InvalidArgument(
            "current transaction is aborted, commands ignored until ROLLBACK");
      }
      if (is_ddl) {
        // DDL records are individually durable commit points (fsynced as
        // they log) — they cannot ride a bracket a ROLLBACK may abort.
        session.txn_poisoned_ = true;
        return Status::InvalidArgument(
            "DDL inside a multi-statement transaction is not supported");
      }
    }
    Result<ResultSet> r = [&]() -> Result<ResultSet> {
      if (is_txn_control) {
        return ExecuteTransaction(session,
                                  std::get<sql::TransactionStmt>(stmt));
      }
      if (is_ddl) {
        // DDL excludes every statement on every session: the catalog's
        // structure only changes in a quiesced world.
        std::unique_lock<SchemaLatch> schema_lock(schema_mu_);
        return Dispatch(session, stmt, resolver);
      }
      // Queries and DML run under the shared schema latch: the name→table
      // map is stable for the statement; row-level coordination is the
      // write-latch table's job.
      std::shared_lock<SchemaLatch> schema_lock(schema_mu_);
      return Dispatch(session, stmt, resolver);
    }();
    if (!r.ok() && session.txn_open_ && !is_txn_control) {
      // Postgres semantics: any failed statement poisons the transaction;
      // everything but ROLLBACK (or COMMIT, which then rolls back) fails
      // until the client acknowledges the abort. Control-statement errors
      // (nested BEGIN) are protocol noise, not transaction failures.
      session.txn_poisoned_ = true;
    }
    if (r.ok() && sync_on_commit_ && session.last_commit_end_lsn_ != 0) {
      if (group_commit_) {
        // Commit barrier runs *outside* the session mutex (below):
        // concurrent committers reach Wal::SyncThrough together and share
        // one fsync — the group-commit win bench_txn measures.
        commit_end = session.last_commit_end_lsn_;
      } else {
        // Serial baseline: one fsync per commit, inside the lock.
        pager_.SyncWalThrough(session.last_commit_end_lsn_);
      }
    }
    return r;
  }();
  if (commit_end != 0) pager_.SyncWalThrough(commit_end);
  return result;
}

Result<ResultSet> Database::Dispatch(Session& session, sql::Statement& stmt,
                                     ExternalResolver* resolver) {
  if (auto* s = std::get_if<sql::SelectStmt>(&stmt)) {
    return ExecuteSelect(session, *s, resolver);
  }
  if (auto* s = std::get_if<sql::InsertStmt>(&stmt)) {
    return ExecuteInsert(session, *s, resolver);
  }
  if (auto* s = std::get_if<sql::UpdateStmt>(&stmt)) {
    return ExecuteUpdate(session, *s, resolver);
  }
  if (auto* s = std::get_if<sql::DeleteStmt>(&stmt)) {
    return ExecuteDelete(session, *s, resolver);
  }
  if (auto* s = std::get_if<sql::CreateTableStmt>(&stmt)) {
    return ExecuteCreate(*s);
  }
  if (auto* s = std::get_if<sql::DropTableStmt>(&stmt)) {
    return ExecuteDrop(*s);
  }
  if (auto* s = std::get_if<sql::AlterTableStmt>(&stmt)) {
    return ExecuteAlter(*s, resolver);
  }
  if (auto* s = std::get_if<sql::LockTableStmt>(&stmt)) {
    return ExecuteLockTable(session, *s);
  }
  if (auto* s = std::get_if<sql::TransactionStmt>(&stmt)) {
    return ExecuteTransaction(session, *s);  // normally routed by the caller
  }
  return Status::Internal("unhandled statement kind");
}

Result<ResultSet> Database::ExecuteSelect(Session& session,
                                          sql::SelectStmt& stmt,
                                          ExternalResolver* resolver) {
  std::vector<std::string> names;
  CollectTableNames(stmt, &names);
  const storage::TxnId txn = session.txn_open_ ? session.txn_id_ : 0;
  // A plain reader holds nothing and may always wait; a transaction's
  // SELECT may wait only while its write set is empty (wait-die).
  const bool may_wait = txn == 0 || session.latched_.empty();
  Status s = latches_.AcquireShared(names, txn, may_wait);
  if (!s.ok()) {
    if (txn != 0) VictimizeSession(session);
    return s;
  }
  auto r = RunSelect(&stmt, catalog_, resolver, exec_);
  latches_.ReleaseShared(names);
  return r;
}

// ---------------------------------------------------------------------------
// Transaction control
// ---------------------------------------------------------------------------

Result<ResultSet> Database::ExecuteTransaction(
    Session& session, const sql::TransactionStmt& stmt) {
  ResultSet rs;
  switch (stmt.kind) {
    case sql::TransactionStmt::Kind::kBegin:
      if (session.txn_open_) {
        return Status::InvalidArgument(
            "BEGIN inside an open transaction (nesting is not supported)");
      }
      session.txn_open_ = true;
      session.txn_poisoned_ = false;
      session.undo_.Clear();
      // One WAL bracket (txn-id-tagged) spans the whole transaction: the
      // statements inside ride it, so a crash before COMMIT discards every
      // statement. Undo journals install lazily, as write latches are
      // acquired.
      session.txn_id_ = pager_.BeginTxn();
      rs.message = "BEGIN";
      return rs;
    case sql::TransactionStmt::Kind::kCommit: {
      if (!session.txn_open_) {
        return Status::InvalidArgument("COMMIT without an open transaction");
      }
      if (session.txn_poisoned_) {
        // Postgres semantics: committing an aborted transaction rolls it
        // back and reports so, rather than erroring a second time.
        RollbackSessionTxn(session);
        rs.message = "ROLLBACK";
        return rs;
      }
      // Suspend journaling and bracket ownership before closing: the
      // transaction is over for these tables either way.
      for (Table* t : session.latched_) {
        t->set_undo_journal(nullptr);
        t->set_write_txn(0);
      }
      // The transaction's commit barrier: ExecuteForSession syncs through
      // this end boundary under sync_on_commit — the fsync the member
      // statements each skipped. Latches release only *after* the close
      // record: nothing may write these tables' pages between our last
      // record and our commit marker.
      session.last_commit_end_lsn_ = pager_.CommitTxn(session.txn_id_);
      for (Table* t : session.latched_) {
        latches_.ReleaseExclusive(ToLower(t->name()), session.txn_id_);
      }
      session.latched_.clear();
      session.undo_.Clear();
      session.txn_id_ = 0;
      session.txn_open_ = false;
      rs.message = "COMMIT";
      return rs;
    }
    case sql::TransactionStmt::Kind::kRollback:
      if (!session.txn_open_) {
        return Status::InvalidArgument("ROLLBACK without an open transaction");
      }
      RollbackSessionTxn(session);
      rs.message = "ROLLBACK";
      return rs;
  }
  return Status::Internal("unhandled transaction statement kind");
}

Result<ResultSet> Database::ExecuteLockTable(Session& session,
                                             sql::LockTableStmt& stmt) {
  if (!session.txn_open_) {
    return Status::InvalidArgument(
        "LOCK TABLE outside a multi-statement transaction");
  }
  DS_ASSIGN_OR_RETURN(Table * table, catalog_.GetTable(stmt.table));
  ResultSet rs;
  rs.message = "LOCK TABLE " + table->name();
  auto& set = session.latched_;
  if (std::find(set.begin(), set.end(), table) != set.end()) return rs;
  Status s = latches_.AcquireExclusive(ToLower(table->name()),
                                       session.txn_id_, set.empty());
  if (!s.ok()) {
    VictimizeSession(session);
    return s;
  }
  set.push_back(table);
  table->set_undo_journal(&session.undo_);
  table->set_write_txn(session.txn_id_);
  return rs;
}

void Database::RollbackSessionTxn(Session& session) {
  // A deadlock victim arrives here a second time from the client's
  // ROLLBACK with txn_id_ already zeroed — its work was undone eagerly;
  // only the flags remain.
  if (session.txn_id_ != 0) {
    // Suspend capture before undoing: the compensations below must not
    // journal themselves. Bracket ownership stays installed so they ride
    // the transaction's WAL bracket.
    for (Table* t : session.latched_) t->set_undo_journal(nullptr);
    for (auto it = session.undo_.entries.rbegin();
         it != session.undo_.entries.rend(); ++it) {
      UndoJournal::Entry& e = *it;
      Status s = Status::OK();
      switch (e.kind) {
        case UndoJournal::Entry::Kind::kInsert:
          s = e.table->UndoInsertRow(e.pos, e.rid);
          break;
        case UndoJournal::Entry::Kind::kDelete:
          s = e.table->UndoDeleteRow(e.pos, std::move(e.row), e.rid);
          break;
        case UndoJournal::Entry::Kind::kUpdate:
          s = e.table->UndoUpdateCell(e.rid, e.col, std::move(e.old_value));
          break;
      }
      if (!s.ok()) {
        // Undo replays exact before-images over states it has already
        // restored; a failure means the in-memory state is neither the pre-
        // nor the post-transaction one. Same stance as catalog corruption:
        // do not limp on.
        std::fprintf(stderr, "dataspread::Database ROLLBACK failed: %s\n",
                     s.message().c_str());
        std::abort();
      }
    }
    for (Table* t : session.latched_) t->set_write_txn(0);
    // Close the WAL bracket with kTxnAbort: the undo's page mutations were
    // logged inside the bracket as compensations, so replaying it is a net
    // no-op — and if the process dies before this record, recovery discards
    // the open bracket wholesale, which lands in the same state. The close
    // record must land *before* the latches release (below): released
    // first, another transaction's committed records could slot between
    // our compensations and our abort marker, and replay would reapply our
    // images over their newer committed pages.
    pager_.AbortTxn(session.txn_id_);
    for (Table* t : session.latched_) {
      latches_.ReleaseExclusive(ToLower(t->name()), session.txn_id_);
    }
  }
  session.latched_.clear();
  session.undo_.Clear();
  session.txn_id_ = 0;
  session.txn_open_ = false;
  session.txn_poisoned_ = false;
}

void Database::VictimizeSession(Session& session) {
  RollbackSessionTxn(session);
  // The transaction is gone, but the client hasn't acknowledged: keep the
  // session in the Postgres aborted-transaction state — every statement
  // fails until its ROLLBACK, which (txn_id_ == 0) only clears flags.
  session.txn_open_ = true;
  session.txn_poisoned_ = true;
}

// ---------------------------------------------------------------------------
// DML
// ---------------------------------------------------------------------------

Result<ResultSet> Database::ExecuteInsert(Session& session,
                                          sql::InsertStmt& stmt,
                                          ExternalResolver* resolver) {
  DS_ASSIGN_OR_RETURN(Table * table, catalog_.GetTable(stmt.table));
  const Schema& schema = table->schema();

  // Latch order: target exclusive first, then the whole source set shared
  // — before any data is read or written.
  WriteGuard guard(*this, session);
  DS_RETURN_IF_ERROR(guard.LatchWrite(table));
  if (stmt.select != nullptr) {
    std::vector<std::string> sources;
    CollectTableNames(*stmt.select, &sources);
    DS_RETURN_IF_ERROR(guard.LatchRead(std::move(sources)));
  }

  // Column mapping: named list or full schema order.
  std::vector<size_t> target_cols;
  if (stmt.columns.empty()) {
    for (size_t i = 0; i < schema.num_columns(); ++i) target_cols.push_back(i);
  } else {
    for (const std::string& name : stmt.columns) {
      auto idx = schema.FindColumn(name);
      if (!idx) {
        return Status::NotFound("column '" + name + "' does not exist in " +
                                stmt.table);
      }
      target_cols.push_back(*idx);
    }
  }

  // Phase 1: evaluate every incoming tuple before mutating anything.
  std::vector<Row> incoming;
  if (stmt.select != nullptr) {
    DS_ASSIGN_OR_RETURN(ResultSet sub,
                        RunSelect(stmt.select.get(), catalog_, resolver,
                                  exec_));
    incoming = std::move(sub.rows);
  } else {
    Scope empty;
    for (std::vector<sql::ExprPtr>& value_row : stmt.values) {
      Row row;
      row.reserve(value_row.size());
      for (sql::ExprPtr& e : value_row) {
        DS_RETURN_IF_ERROR(BindExpr(e.get(), empty, resolver,
                                    /*allow_aggregates=*/false));
        DS_ASSIGN_OR_RETURN(Value v, EvalConstant(*e));
        row.push_back(std::move(v));
      }
      incoming.push_back(std::move(row));
    }
  }
  for (const Row& row : incoming) {
    if (row.size() != target_cols.size()) {
      return Status::InvalidArgument(
          "INSERT supplies " + std::to_string(row.size()) + " values for " +
          std::to_string(target_cols.size()) + " columns");
    }
  }

  // Phase 2: append, all rows inside one statement bracket; on a constraint
  // violation roll back the prefix so the statement is atomic. The rollback
  // deletes land inside the bracket too, which then closes with kTxnAbort —
  // a net no-op on replay, and a crash anywhere in between discards the
  // bracket wholesale (DESIGN.md §7).
  storage::StatementScope txn(pager_, guard.txn());
  size_t applied = 0;
  Status failure = Status::OK();
  for (const Row& row : incoming) {
    Row full(schema.num_columns(), Value::Null());
    for (size_t i = 0; i < target_cols.size(); ++i) full[target_cols[i]] = row[i];
    Status s = table->AppendRow(std::move(full));
    if (!s.ok()) {
      failure = s;
      break;
    }
    ++applied;
  }
  if (!failure.ok()) {
    for (size_t i = 0; i < applied; ++i) {
      (void)table->DeleteRowAt(table->num_rows() - 1);
    }
    return failure;
  }
  (void)txn.Commit();
  session.last_commit_end_lsn_ = guard.Commit();
  ResultSet rs;
  rs.affected_rows = applied;
  return rs;
}

Result<ResultSet> Database::ExecuteUpdate(Session& session,
                                          sql::UpdateStmt& stmt,
                                          ExternalResolver* resolver) {
  DS_ASSIGN_OR_RETURN(Table * table, catalog_.GetTable(stmt.table));
  WriteGuard guard(*this, session);
  DS_RETURN_IF_ERROR(guard.LatchWrite(table));
  Scope scope = TableScope(*table);
  std::vector<size_t> target_cols;
  for (auto& [name, expr] : stmt.assignments) {
    auto idx = table->schema().FindColumn(name);
    if (!idx) {
      return Status::NotFound("column '" + name + "' does not exist in " +
                              stmt.table);
    }
    target_cols.push_back(*idx);
    DS_RETURN_IF_ERROR(BindExpr(expr.get(), scope, resolver,
                                /*allow_aggregates=*/false));
  }
  if (stmt.where != nullptr) {
    DS_RETURN_IF_ERROR(BindExpr(stmt.where.get(), scope, resolver,
                                /*allow_aggregates=*/false));
  }

  // Key-direct fast path: `WHERE <pk> = <literal>` skips the table scan —
  // the interface-aware point update driving Figure 2c edits.
  auto pk = table->schema().primary_key_index();
  if (pk && stmt.where != nullptr &&
      stmt.where->kind == sql::ExprKind::kBinary && stmt.where->op == "=") {
    const sql::Expr* lhs = stmt.where->args[0].get();
    const sql::Expr* rhs = stmt.where->args[1].get();
    if (rhs->kind == sql::ExprKind::kColumnRef) std::swap(lhs, rhs);
    if (lhs->kind == sql::ExprKind::kColumnRef &&
        lhs->bound_column == static_cast<int>(*pk) &&
        rhs->kind == sql::ExprKind::kLiteral) {
      auto row = table->GetRowByKey(rhs->literal);
      ResultSet rs;
      if (!row.ok()) {
        if (row.status().code() == StatusCode::kNotFound) {
          rs.affected_rows = 0;
          session.last_commit_end_lsn_ = guard.Commit();
          return rs;
        }
        return row.status();
      }
      // Evaluate all assignments against the fetched row, then apply with
      // rollback on a mid-statement failure.
      std::vector<Value> new_values, old_values;
      Value key = rhs->literal;
      for (size_t i = 0; i < stmt.assignments.size(); ++i) {
        DS_ASSIGN_OR_RETURN(Value v,
                            EvalScalar(*stmt.assignments[i].second,
                                       &row.value()));
        new_values.push_back(std::move(v));
        old_values.push_back(row.value()[target_cols[i]]);
      }
      storage::StatementScope txn(pager_, guard.txn());
      for (size_t i = 0; i < new_values.size(); ++i) {
        Status s = table->UpdateByKey(key, target_cols[i], new_values[i]);
        if (target_cols[i] == *pk && s.ok()) key = new_values[i];
        if (!s.ok()) {
          for (size_t j = i; j-- > 0;) {
            (void)table->UpdateByKey(key, target_cols[j], old_values[j]);
            if (target_cols[j] == *pk) key = old_values[j];
          }
          return s;  // the scope + guard close the bracket with kTxnAbort
        }
      }
      (void)txn.Commit();
      session.last_commit_end_lsn_ = guard.Commit();
      rs.affected_rows = 1;
      return rs;
    }
  }

  // Phase 1: evaluate all updates against the pre-statement state.
  struct PendingUpdate {
    size_t pos;
    size_t col;
    Value value;
    Value old_value;
  };
  std::vector<PendingUpdate> pending;
  Status scan_status = Status::OK();
  table->Scan([&](size_t pos, const Row& row) {
    if (stmt.where != nullptr) {
      auto pass = EvalPredicate(*stmt.where, &row);
      if (!pass.ok()) {
        scan_status = pass.status();
        return false;
      }
      if (!pass.value()) return true;
    }
    for (size_t i = 0; i < stmt.assignments.size(); ++i) {
      auto v = EvalScalar(*stmt.assignments[i].second, &row);
      if (!v.ok()) {
        scan_status = v.status();
        return false;
      }
      pending.push_back(PendingUpdate{pos, target_cols[i],
                                      std::move(v).value(),
                                      row[target_cols[i]]});
    }
    return true;
  });
  DS_RETURN_IF_ERROR(scan_status);

  // Phase 2: apply inside one statement bracket, with rollback on failure.
  storage::StatementScope txn(pager_, guard.txn());
  size_t applied = 0;
  Status failure = Status::OK();
  for (const PendingUpdate& u : pending) {
    Status s = table->UpdateAt(u.pos, u.col, u.value);
    if (!s.ok()) {
      failure = s;
      break;
    }
    ++applied;
  }
  if (!failure.ok()) {
    for (size_t i = applied; i-- > 0;) {
      (void)table->UpdateAt(pending[i].pos, pending[i].col, pending[i].old_value);
    }
    return failure;
  }
  (void)txn.Commit();
  session.last_commit_end_lsn_ = guard.Commit();
  ResultSet rs;
  size_t assignments = stmt.assignments.empty() ? 1 : stmt.assignments.size();
  rs.affected_rows = pending.size() / assignments;
  return rs;
}

Result<ResultSet> Database::ExecuteDelete(Session& session,
                                          sql::DeleteStmt& stmt,
                                          ExternalResolver* resolver) {
  DS_ASSIGN_OR_RETURN(Table * table, catalog_.GetTable(stmt.table));
  WriteGuard guard(*this, session);
  DS_RETURN_IF_ERROR(guard.LatchWrite(table));
  Scope scope = TableScope(*table);
  if (stmt.where != nullptr) {
    DS_RETURN_IF_ERROR(BindExpr(stmt.where.get(), scope, resolver,
                                /*allow_aggregates=*/false));
  }
  std::vector<size_t> positions;
  Status scan_status = Status::OK();
  table->Scan([&](size_t pos, const Row& row) {
    if (stmt.where != nullptr) {
      auto pass = EvalPredicate(*stmt.where, &row);
      if (!pass.ok()) {
        scan_status = pass.status();
        return false;
      }
      if (!pass.value()) return true;
    }
    positions.push_back(pos);
    return true;
  });
  DS_RETURN_IF_ERROR(scan_status);
  // Delete from the highest position down so earlier positions stay valid,
  // all inside one statement bracket.
  storage::StatementScope txn(pager_, guard.txn());
  for (size_t i = positions.size(); i-- > 0;) {
    DS_RETURN_IF_ERROR(table->DeleteRowAt(positions[i]));
  }
  (void)txn.Commit();
  session.last_commit_end_lsn_ = guard.Commit();
  ResultSet rs;
  rs.affected_rows = positions.size();
  return rs;
}

// ---------------------------------------------------------------------------
// DDL
// ---------------------------------------------------------------------------

Status Database::FailIfLatched(const std::string& table) const {
  const uint64_t owner = latches_.ExclusiveOwner(ToLower(table));
  if (owner == 0) return Status::OK();
  return Status::SerializationConflict(
      "table '" + table + "' is write-locked by open transaction " +
      std::to_string(owner) + "; retry after it ends");
}

Result<ResultSet> Database::ExecuteCreate(sql::CreateTableStmt& stmt) {
  if (stmt.if_not_exists && catalog_.HasTable(stmt.table)) {
    ResultSet rs;
    rs.message = "table " + stmt.table + " already exists";
    return rs;
  }
  Schema schema;
  for (const sql::ColumnSpec& spec : stmt.columns) {
    DS_RETURN_IF_ERROR(
        schema.AddColumn(ColumnDef{spec.name, spec.type, spec.primary_key}));
  }
  DS_ASSIGN_OR_RETURN(Table * table,
                      catalog_.CreateTable(stmt.table, std::move(schema)));
  AttachForwarding(table);
  ResultSet rs;
  rs.message = "created table " + table->name();
  return rs;
}

Result<ResultSet> Database::ExecuteDrop(sql::DropTableStmt& stmt) {
  if (stmt.if_exists && !catalog_.HasTable(stmt.table)) {
    ResultSet rs;
    rs.message = "table " + stmt.table + " does not exist";
    return rs;
  }
  DS_RETURN_IF_ERROR(FailIfLatched(stmt.table));
  DS_RETURN_IF_ERROR(catalog_.DropTable(stmt.table));
  ResultSet rs;
  rs.message = "dropped table " + stmt.table;
  return rs;
}

Result<ResultSet> Database::ExecuteAlter(sql::AlterTableStmt& stmt,
                                         ExternalResolver* resolver) {
  DS_ASSIGN_OR_RETURN(Table * table, catalog_.GetTable(stmt.table));
  DS_RETURN_IF_ERROR(FailIfLatched(stmt.table));
  ResultSet rs;
  switch (stmt.action) {
    case sql::AlterTableStmt::Action::kAddColumn: {
      Value default_value = Value::Null();
      if (stmt.default_value != nullptr) {
        Scope empty;
        DS_RETURN_IF_ERROR(BindExpr(stmt.default_value.get(), empty, resolver,
                                    /*allow_aggregates=*/false));
        DS_ASSIGN_OR_RETURN(default_value, EvalConstant(*stmt.default_value));
      }
      DS_RETURN_IF_ERROR(table->AddColumn(
          ColumnDef{stmt.new_column.name, stmt.new_column.type,
                    stmt.new_column.primary_key},
          default_value));
      rs.message = "added column " + stmt.new_column.name;
      return rs;
    }
    case sql::AlterTableStmt::Action::kDropColumn:
      DS_RETURN_IF_ERROR(table->DropColumn(stmt.column_name));
      rs.message = "dropped column " + stmt.column_name;
      return rs;
    case sql::AlterTableStmt::Action::kRenameColumn:
      DS_RETURN_IF_ERROR(table->RenameColumn(stmt.column_name, stmt.new_name));
      rs.message = "renamed column " + stmt.column_name + " to " + stmt.new_name;
      return rs;
  }
  return Status::Internal("unhandled ALTER action");
}

// ---------------------------------------------------------------------------
// Listeners / direct table API
// ---------------------------------------------------------------------------

int Database::AddChangeListener(ChangeListener listener) {
  std::lock_guard<std::mutex> lock(listeners_mu_);
  int token = next_listener_token_++;
  listeners_.emplace_back(token, std::move(listener));
  return token;
}

void Database::RemoveChangeListener(int token) {
  std::lock_guard<std::mutex> lock(listeners_mu_);
  for (auto it = listeners_.begin(); it != listeners_.end(); ++it) {
    if (it->first == token) {
      listeners_.erase(it);
      return;
    }
  }
}

Result<Table*> Database::CreateTable(std::string name, Schema schema,
                                     StorageModel model) {
  std::unique_lock<SchemaLatch> schema_lock(schema_mu_);
  if (closed()) {
    return Status::InvalidArgument("database is closed");
  }
  if (default_session_.txn_open_) {
    return Status::InvalidArgument(
        "DDL inside a multi-statement transaction is not supported");
  }
  DS_ASSIGN_OR_RETURN(Table * table, catalog_.CreateTable(std::move(name),
                                                          std::move(schema),
                                                          model));
  AttachForwarding(table);
  return table;
}

void Database::AttachForwarding(Table* table) {
  table->AddListener([this](const Table& t, const TableChange& change) {
    // Listener vector may be mutated by callbacks; iterate over a copy.
    std::vector<std::pair<int, ChangeListener>> snapshot;
    {
      std::lock_guard<std::mutex> lock(listeners_mu_);
      snapshot = listeners_;
    }
    for (const auto& [token, fn] : snapshot) {
      (void)token;
      fn(t.name(), change);
    }
  });
}

}  // namespace dataspread
