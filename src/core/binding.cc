#include "core/binding.h"

#include <algorithm>

namespace dataspread {

TableBinding::TableBinding(int id, Sheet* sheet, int64_t anchor_row,
                           int64_t anchor_col, Table* table, Database* db,
                           size_t default_window)
    : id_(id),
      sheet_(sheet),
      anchor_row_(anchor_row),
      anchor_col_(anchor_col),
      table_(table),
      db_(db),
      default_window_(default_window) {}

bool TableBinding::ContainsCell(const Sheet* sheet, int64_t row,
                                int64_t col) const {
  if (sheet != sheet_) return false;
  if (col < anchor_col_ ||
      col >= anchor_col_ + static_cast<int64_t>(table_->schema().num_columns())) {
    return false;
  }
  int64_t last_data_row = data_row() + static_cast<int64_t>(table_->num_rows());
  return row >= anchor_row_ && row < last_data_row;
}

Status TableBinding::WriteHeader() {
  const Schema& schema = table_->schema();
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    int64_t col = anchor_col_ + static_cast<int64_t>(c);
    if (col == anchor_col_) continue;  // anchor cell carries the formula
    DS_RETURN_IF_ERROR(
        sheet_->SetValue(anchor_row_, col, Value::Text(schema.column(c).name)));
    WroteCell(anchor_row_, col);
  }
  return Status::OK();
}

Status TableBinding::WriteRows(size_t start, size_t count) {
  std::vector<Row> rows = table_->GetWindow(start, count);
  for (size_t i = 0; i < rows.size(); ++i) {
    int64_t sheet_row = data_row() + static_cast<int64_t>(start + i);
    for (size_t c = 0; c < rows[i].size(); ++c) {
      int64_t sheet_col = anchor_col_ + static_cast<int64_t>(c);
      DS_RETURN_IF_ERROR(sheet_->SetValue(sheet_row, sheet_col, rows[i][c]));
      WroteCell(sheet_row, sheet_col);
    }
  }
  // Clear any trailing rows if the table shrank below the requested span.
  for (size_t i = rows.size(); i < count; ++i) {
    DS_RETURN_IF_ERROR(ClearRows(start + i, 1));
  }
  return Status::OK();
}

Status TableBinding::ClearRows(size_t start, size_t count) {
  size_t width = table_->schema().num_columns();
  for (size_t i = 0; i < count; ++i) {
    int64_t sheet_row = data_row() + static_cast<int64_t>(start + i);
    for (size_t c = 0; c < width; ++c) {
      int64_t sheet_col = anchor_col_ + static_cast<int64_t>(c);
      DS_RETURN_IF_ERROR(sheet_->ClearCell(sheet_row, sheet_col));
      WroteCell(sheet_row, sheet_col);
    }
  }
  return Status::OK();
}

Status TableBinding::SetWindow(size_t start, size_t count) {
  if (count == 0) count = default_window_;
  requested_count_ = count;
  size_t n = table_->num_rows();
  start = std::min(start, n);
  count = std::min(count, n - start);
  // Clear the parts of the old span not covered by the new one.
  if (window_count_ > 0) {
    size_t old_lo = window_start_, old_hi = window_start_ + window_count_;
    size_t new_lo = start, new_hi = start + count;
    if (old_lo < new_lo) {
      DS_RETURN_IF_ERROR(ClearRows(old_lo, std::min(old_hi, new_lo) - old_lo));
    }
    if (old_hi > new_hi) {
      size_t from = std::max(old_lo, new_hi);
      DS_RETURN_IF_ERROR(ClearRows(from, old_hi - from));
    }
  }
  window_start_ = start;
  window_count_ = count;
  refreshes_ += 1;
  return WriteRows(start, count);
}

Status TableBinding::RefreshWindow() {
  size_t n = table_->num_rows();
  size_t start = std::min(window_start_, n);
  // Refresh the *configured* span, not the previously materialized one, so
  // the window grows when back-end inserts extend the table into it.
  size_t count = requested_count_ > 0 ? requested_count_ : default_window_;
  size_t old_hi = window_start_ + window_count_;
  refreshes_ += 1;
  window_start_ = start;
  window_count_ = std::min(count, n - start);
  DS_RETURN_IF_ERROR(WriteRows(window_start_, window_count_));
  // Clear rows that fell off the end (table shrank).
  if (old_hi > window_start_ + window_count_) {
    size_t from = window_start_ + window_count_;
    DS_RETURN_IF_ERROR(ClearRows(from, old_hi - from));
  }
  return Status::OK();
}

Status TableBinding::ClearMaterialized() {
  const Schema& schema = table_->schema();
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    int64_t col = anchor_col_ + static_cast<int64_t>(c);
    if (col != anchor_col_) {
      DS_RETURN_IF_ERROR(sheet_->ClearCell(anchor_row_, col));
    }
  }
  DS_RETURN_IF_ERROR(ClearRows(window_start_, window_count_));
  window_count_ = 0;
  return Status::OK();
}

Status TableBinding::ApplyFrontEndEdit(int64_t row, int64_t col,
                                       const Value& v) {
  size_t c = static_cast<size_t>(col - anchor_col_);
  if (row == anchor_row_) {
    // Header edit = column rename (dynamic schema, paper §2.2).
    if (v.type() != DataType::kText || v.text_value().empty()) {
      return Status::InvalidArgument("column name must be non-empty text");
    }
    return table_->RenameColumn(table_->schema().column(c).name,
                                v.text_value());
  }
  size_t position = static_cast<size_t>(row - data_row());
  if (position >= table_->num_rows()) {
    return Status::OutOfRange("edit beyond the bound table");
  }
  auto pk = table_->schema().primary_key_index();
  if (pk.has_value() && *pk != c) {
    // The paper's key↔location translation: find the tuple's key at this
    // position, then update through the database by key.
    DS_ASSIGN_OR_RETURN(Value key, table_->GetAt(position, *pk));
    std::string sql = "UPDATE " + table_->name() + " SET " +
                      table_->schema().column(c).name + " = " +
                      v.ToSqlLiteral() + " WHERE " +
                      table_->schema().column(*pk).name + " = " +
                      key.ToSqlLiteral();
    DS_ASSIGN_OR_RETURN(ResultSet rs, db_->Execute(sql));
    if (rs.affected_rows != 1) {
      return Status::Internal("keyed update affected " +
                              std::to_string(rs.affected_rows) + " rows");
    }
    return Status::OK();
  }
  // No usable key: positional update (the interface-aware path).
  return table_->UpdateAt(position, c, v);
}

}  // namespace dataspread
