#ifndef DATASPREAD_CORE_DATASPREAD_H_
#define DATASPREAD_CORE_DATASPREAD_H_

#include <memory>
#include <string>

#include "core/interface_manager.h"
#include "core/scheduler.h"
#include "core/window_manager.h"
#include "db/database.h"
#include "formula/engine.h"
#include "sheet/workbook.h"

namespace dataspread {

/// Construction-time options for a DataSpread instance.
struct DataSpreadOptions {
  /// Run the Compute Engine on a background thread (asynchronous mode). In
  /// the default synchronous mode, tasks run when Pump() drains the queue.
  bool background_compute = false;
  /// Drain the scheduler automatically after every user-level operation
  /// (ignored in background mode, where the worker drains continuously).
  bool auto_pump = true;
  /// Default number of table rows a binding materializes into the sheet.
  size_t binding_window = 256;
  /// Pane dimensions used by ScrollTo.
  int64_t viewport_rows = 50;
  int64_t viewport_cols = 10;
  /// Rows fetched beyond the pane on each side when sliding a binding window.
  int64_t prefetch_margin = 32;
  /// Buffer-pool policy of the embedded database's pager: cap on in-memory
  /// page frames (0 = unbounded) and the spill file evicted pages write back
  /// to. Lets a whole DataSpread instance run larger-than-memory sheets.
  /// Setting `pager.wal_path` (with `durable_spill` and a named
  /// `spill_path`) makes the table data durable: reopening the instance on
  /// the same pair recovers every committed cell (DESIGN.md §6; sheet/
  /// formula state is not yet persisted — see ROADMAP).
  /// The pager itself is internally synchronized (DESIGN.md §7), so a
  /// bounded pool is safe alongside background_compute; the sheet/formula
  /// layers above it remain single-writer.
  storage::PagerConfig pager;
  /// Convenience for the common durable setup: a non-empty base path routes
  /// the embedded database through Database::Open semantics — data in
  /// `<database_path>.pages`, log in `<database_path>.wal` — overriding the
  /// `pager` path fields. Reopening a DataSpread on the same path recovers
  /// every table, schema, and row (catalog included); sheet and formula
  /// state is still rebuilt per session (ROADMAP). docs/DURABILITY.md has
  /// the full lifecycle.
  std::string database_path;
};

/// The DataSpread system facade: a spreadsheet front-end holistically unified
/// with an embedded relational back-end (the paper's headline artifact).
///
/// \code
///   DataSpread ds;
///   Sheet* s = ds.AddSheet("Sheet1").ValueOrDie();
///   ds.SetCell("Sheet1", "A1", "movieid");
///   ds.SetCell("Sheet1", "A2", "42");
///   ds.Sql("CREATE TABLE actors (actorid INT PRIMARY KEY, name TEXT)");
///   ds.SetCell("Sheet1", "C1",
///              "=DBSQL(\"SELECT name FROM actors "
///              "WHERE actorid = RANGEVALUE(A2)\")");
///   ds.Pump();  // compute engine drains; C1 (and the spill) now hold results
/// \endcode
class DataSpread {
 public:
  explicit DataSpread(DataSpreadOptions options = {});
  ~DataSpread();

  DataSpread(const DataSpread&) = delete;
  DataSpread& operator=(const DataSpread&) = delete;

  // ---- Component access ----
  Workbook& workbook() { return workbook_; }
  Database& db() { return db_; }
  formula::FormulaEngine& engine() { return *engine_; }
  Scheduler& scheduler() { return scheduler_; }
  InterfaceManager& interface_manager() { return *interface_manager_; }
  WindowManager& window_manager() { return *window_manager_; }
  const DataSpreadOptions& options() const { return options_; }

  // ---- Sheets ----
  Result<Sheet*> AddSheet(const std::string& name);
  Result<Sheet*> GetSheet(const std::string& name) const {
    return workbook_.GetSheet(name);
  }

  // ---- The unified cell entry point (what typing into a cell does) ----

  /// Sets a cell from raw user input: "=..." is a formula (including the
  /// DBSQL/DBTABLE hybrid constructs); anything else is dynamically typed.
  /// Edits inside a bound region are translated into database mutations
  /// (two-way sync, front-end half).
  Status SetCell(const std::string& sheet, const std::string& a1,
                 const std::string& input);
  Status SetCellAt(Sheet* sheet, int64_t row, int64_t col,
                   const std::string& input);

  /// Computed/displayed value of a cell.
  Result<Value> GetValue(const std::string& sheet, const std::string& a1) const;
  Value GetValueAt(Sheet* sheet, int64_t row, int64_t col) const {
    return sheet->GetValue(row, col);
  }
  /// Display text of a cell ("" for empty).
  Result<std::string> GetDisplay(const std::string& sheet,
                                 const std::string& a1) const;

  // ---- Direct back-end access ----

  /// Executes SQL against the embedded database. Sheet references must be
  /// sheet-qualified (RANGEVALUE(Sheet1!A1)) since there is no anchor cell.
  Result<ResultSet> Sql(std::string_view sql);

  // ---- Paper features ----

  /// Figure 2b: exports a range as a relational table with inferred schema.
  Result<Table*> CreateTableFromRange(const std::string& sheet,
                                      const std::string& range_a1,
                                      const std::string& table_name,
                                      const std::string& key_column = "",
                                      HeaderMode mode = HeaderMode::kAuto);

  /// Figure 2b: imports a table by writing `=DBTABLE("name")` at the anchor.
  Result<TableBinding*> ImportTable(const std::string& sheet,
                                    const std::string& anchor_a1,
                                    const std::string& table_name,
                                    size_t window = 0);

  // ---- CSV ingestion / export (the intro's "or a CSV file" path) ----

  /// Writes parsed CSV as plain values with (anchor) as the top-left cell.
  Status ImportCsv(const std::string& sheet, const std::string& anchor_a1,
                   std::string_view csv_text);
  /// Creates a relational table directly from CSV text (schema inference as
  /// in CreateTableFromRange).
  Result<Table*> ImportCsvAsTable(std::string_view csv_text,
                                  const std::string& table_name,
                                  const std::string& key_column = "",
                                  HeaderMode mode = HeaderMode::kAuto);
  /// Renders a sheet range as CSV text.
  Result<std::string> ExportCsv(const std::string& sheet,
                                const std::string& range_a1) const;

  // ---- Structural sheet operations ----
  Status InsertRows(const std::string& sheet, int64_t before, int64_t count);
  Status DeleteRows(const std::string& sheet, int64_t first, int64_t count);
  Status InsertCols(const std::string& sheet, int64_t before, int64_t count);
  Status DeleteCols(const std::string& sheet, int64_t first, int64_t count);

  // ---- Pane ----

  /// Moves the visible pane; bindings page in the uncovered rows and visible
  /// recalculation runs first.
  Status ScrollTo(const std::string& sheet, int64_t top_row, int64_t left_col);

  // ---- Compute ----

  /// Drains the compute engine (synchronous mode) or waits for it to go idle
  /// (background mode), iterating until no dirty cells remain.
  void Pump();
  /// Immediate, scheduler-bypassing full recalculation.
  Status RecalcNow();

  /// Renders a rectangular range as tab-separated text (for examples/tests).
  Result<std::string> Show(const std::string& sheet,
                           const std::string& range_a1) const;

 private:
  void ScheduleRecalc();

  DataSpreadOptions options_;
  Workbook workbook_;
  Database db_;
  Scheduler scheduler_;
  std::unique_ptr<formula::FormulaEngine> engine_;
  std::unique_ptr<InterfaceManager> interface_manager_;
  std::unique_ptr<WindowManager> window_manager_;
};

}  // namespace dataspread

#endif  // DATASPREAD_CORE_DATASPREAD_H_
