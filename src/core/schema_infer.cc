#include "core/schema_infer.h"

#include <cctype>
#include <unordered_set>

#include "common/str_util.h"

namespace dataspread {

namespace {

/// Sanitizes a header cell into a column name; returns "" when unusable.
std::string SanitizeName(const Value& v) {
  if (v.type() != DataType::kText) return "";
  std::string name = Trim(v.text_value());
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') c = '_';
  }
  if (name.empty()) return "";
  if (std::isdigit(static_cast<unsigned char>(name[0]))) name = "c_" + name;
  return name;
}

}  // namespace

Result<InferredTable> InferTableFromRows(std::vector<Row> grid,
                                         HeaderMode mode) {
  if (grid.empty()) {
    return Status::InvalidArgument("empty input");
  }
  // Right-pad ragged rows (CSV ingestion) to a rectangle.
  size_t cols = 0;
  for (const Row& r : grid) cols = std::max(cols, r.size());
  if (cols == 0) {
    return Status::InvalidArgument("input has no columns");
  }
  for (Row& r : grid) r.resize(cols, Value::Null());
  for (const Row& r : grid) {
    for (const Value& v : r) {
      if (v.is_error()) {
        return Status::TypeError("error value " + v.error_code() +
                                 " cannot be exported to a table");
      }
    }
  }

  // Decide the header: every first-row cell must be non-empty text.
  bool has_header = false;
  if (mode == HeaderMode::kHeader) {
    has_header = true;
  } else if (mode == HeaderMode::kAuto && grid.size() >= 2) {
    has_header = true;
    for (const Value& v : grid[0]) {
      if (v.type() != DataType::kText || Trim(v.text_value()).empty()) {
        has_header = false;
        break;
      }
    }
  }

  // Column names (uniquified, lower-case comparison).
  std::vector<std::string> names;
  std::unordered_set<std::string> used;
  for (size_t c = 0; c < cols; ++c) {
    std::string name;
    if (has_header) name = SanitizeName(grid[0][c]);
    if (name.empty()) name = "c" + std::to_string(c + 1);
    std::string base = name;
    int suffix = 2;
    while (!used.insert(ToLower(name)).second) {
      name = base + "_" + std::to_string(suffix++);
    }
    names.push_back(std::move(name));
  }

  // Infer column types over the data rows.
  size_t first_data = has_header ? 1 : 0;
  std::vector<DataType> types(cols, DataType::kNull);
  for (size_t r = first_data; r < grid.size(); ++r) {
    for (size_t c = 0; c < cols; ++c) {
      types[c] = UnifyForInference(types[c], grid[r][c].type());
    }
  }

  InferredTable out;
  out.has_header = has_header;
  for (size_t c = 0; c < cols; ++c) {
    DataType t = types[c];
    if (t == DataType::kNull) t = DataType::kText;  // all-empty column
    DS_RETURN_IF_ERROR(out.schema.AddColumn(
        ColumnDef{names[c], t, /*primary_key=*/false}));
  }
  out.rows.assign(std::make_move_iterator(grid.begin() +
                                          static_cast<ptrdiff_t>(first_data)),
                  std::make_move_iterator(grid.end()));
  return out;
}

Result<InferredTable> InferTableFromRange(const Sheet& sheet,
                                          const RangeRef& range,
                                          HeaderMode mode) {
  int64_t rows = range.num_rows();
  int64_t cols = range.num_cols();
  if (rows < 1 || cols < 1) {
    return Status::InvalidArgument("empty range");
  }
  std::vector<Row> grid(static_cast<size_t>(rows),
                        Row(static_cast<size_t>(cols), Value::Null()));
  Status error_cell = Status::OK();
  sheet.VisitRange(range.start.row, range.start.col, range.end.row,
                   range.end.col, [&](int64_t r, int64_t c, const Cell& cell) {
                     if (cell.value.is_error() && error_cell.ok()) {
                       error_cell = Status::TypeError(
                           "cell " + FormatCell(r, c) + " holds error value " +
                           cell.value.error_code());
                     }
                     grid[static_cast<size_t>(r - range.start.row)]
                         [static_cast<size_t>(c - range.start.col)] = cell.value;
                   });
  DS_RETURN_IF_ERROR(error_cell);
  return InferTableFromRows(std::move(grid), mode);
}

}  // namespace dataspread
