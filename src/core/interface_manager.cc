#include "core/interface_manager.h"

#include <algorithm>

#include "common/str_util.h"
#include "sql/parser.h"

namespace dataspread {

namespace {

/// ExternalResolver that reads the workbook. RANGEVALUE("B1") resolves on
/// `anchor_sheet` unless the reference is sheet-qualified — this is the
/// *context* the paper assigns to every displayed item.
class SheetResolver : public ExternalResolver {
 public:
  SheetResolver(const Workbook* workbook, Sheet* anchor_sheet)
      : workbook_(workbook), anchor_(anchor_sheet) {}

  Result<Value> ResolveRangeValue(const std::string& ref) override {
    DS_ASSIGN_OR_RETURN(CellRef cell, ParseCellRef(ref));
    DS_ASSIGN_OR_RETURN(Sheet * sheet, ResolveSheet(cell.sheet));
    return sheet->GetValue(cell.row, cell.col);
  }

  Result<RangeTableData> ResolveRangeTable(const std::string& ref) override {
    DS_ASSIGN_OR_RETURN(RangeRef range, ParseRangeRef(ref));
    DS_ASSIGN_OR_RETURN(Sheet * sheet, ResolveSheet(range.sheet));
    DS_ASSIGN_OR_RETURN(InferredTable inferred,
                        InferTableFromRange(*sheet, range));
    RangeTableData data;
    for (const ColumnDef& c : inferred.schema.columns()) {
      data.columns.push_back(c.name);
    }
    data.rows = std::move(inferred.rows);
    return data;
  }

 private:
  Result<Sheet*> ResolveSheet(const std::string& name) {
    if (name.empty()) {
      if (anchor_ == nullptr) {
        return Status::InvalidArgument(
            "relative sheet reference outside a spreadsheet context");
      }
      return anchor_;
    }
    return workbook_->GetSheet(name);
  }

  const Workbook* workbook_;
  Sheet* anchor_;
};

/// Collects RANGEVALUE cell refs and RANGETABLE range refs from a SELECT.
void CollectExprRefs(const sql::Expr* e, std::vector<std::string>* cells) {
  if (e == nullptr) return;
  if (e->kind == sql::ExprKind::kRangeValue) {
    cells->push_back(e->ref_text);
    return;
  }
  for (const sql::ExprPtr& a : e->args) CollectExprRefs(a.get(), cells);
}

void CollectSelectRefs(const sql::SelectStmt& stmt,
                       std::vector<std::string>* cells,
                       std::vector<std::string>* ranges,
                       std::vector<std::string>* tables) {
  if (stmt.from.has_value()) {
    if (stmt.from->kind == sql::TableRef::Kind::kRangeTable) {
      ranges->push_back(stmt.from->range_text);
    } else {
      tables->push_back(ToLower(stmt.from->name));
    }
  }
  for (const sql::JoinClause& j : stmt.joins) {
    if (j.table.kind == sql::TableRef::Kind::kRangeTable) {
      ranges->push_back(j.table.range_text);
    } else {
      tables->push_back(ToLower(j.table.name));
    }
    CollectExprRefs(j.on.get(), cells);
  }
  for (const sql::SelectItem& item : stmt.items) {
    CollectExprRefs(item.expr.get(), cells);
  }
  CollectExprRefs(stmt.where.get(), cells);
  for (const sql::ExprPtr& g : stmt.group_by) CollectExprRefs(g.get(), cells);
  CollectExprRefs(stmt.having.get(), cells);
  for (const sql::OrderItem& o : stmt.order_by) CollectExprRefs(o.expr.get(), cells);
}

}  // namespace

InterfaceManager::InterfaceManager(Workbook* workbook, Database* db,
                                   formula::FormulaEngine* engine,
                                   Scheduler* scheduler, size_t default_window)
    : workbook_(workbook),
      db_(db),
      engine_(engine),
      scheduler_(scheduler),
      default_window_(default_window) {
  db_listener_token_ = db_->AddChangeListener(
      [this](const std::string& table, const TableChange& change) {
        OnTableChanged(table, change);
      });
  engine_->set_external_handler(this);
}

InterfaceManager::~InterfaceManager() {
  db_->RemoveChangeListener(db_listener_token_);
  engine_->set_external_handler(nullptr);
}

// ---------------------------------------------------------------------------
// Export / import (Figure 2b)
// ---------------------------------------------------------------------------

Result<Table*> InterfaceManager::CreateTableFromRange(
    Sheet* sheet, const RangeRef& range, const std::string& table_name,
    HeaderMode mode, const std::string& key_column) {
  DS_ASSIGN_OR_RETURN(InferredTable inferred,
                      InferTableFromRange(*sheet, range, mode));
  Schema schema = inferred.schema;
  if (!key_column.empty()) {
    auto idx = schema.FindColumn(key_column);
    if (!idx) {
      return Status::NotFound("key column '" + key_column +
                              "' is not in the inferred schema (" +
                              schema.ToString() + ")");
    }
    std::vector<ColumnDef> cols = schema.columns();
    cols[*idx].primary_key = true;
    schema = Schema(std::move(cols));
  }
  DS_ASSIGN_OR_RETURN(Table * table, db_->CreateTable(table_name, schema));
  for (Row& row : inferred.rows) {
    Status s = table->AppendRow(std::move(row));
    if (!s.ok()) {
      (void)db_->catalog().DropTable(table_name);
      return s;
    }
  }
  return table;
}

Result<TableBinding*> InterfaceManager::BindTable(Sheet* sheet,
                                                  int64_t anchor_row,
                                                  int64_t anchor_col,
                                                  const std::string& table_name,
                                                  size_t window) {
  DS_ASSIGN_OR_RETURN(Table * table, db_->catalog().GetTable(table_name));
  auto binding = std::make_unique<TableBinding>(
      next_binding_id_++, sheet, anchor_row, anchor_col, table, db_,
      window == 0 ? default_window_ : window);
  TableBinding* raw = binding.get();
  raw->set_cell_written_hook([this, sheet](int64_t r, int64_t c) {
    engine_->MarkDirty(sheet, r, c);
  });
  bindings_.push_back(std::move(binding));
  DS_RETURN_IF_ERROR(raw->WriteHeader());
  DS_RETURN_IF_ERROR(raw->SetWindow(0, window));
  return raw;
}

Status InterfaceManager::Unbind(int binding_id) {
  for (auto it = bindings_.begin(); it != bindings_.end(); ++it) {
    if ((*it)->id() == binding_id) {
      DS_RETURN_IF_ERROR((*it)->ClearMaterialized());
      bindings_.erase(it);
      return Status::OK();
    }
  }
  return Status::NotFound("no binding with id " + std::to_string(binding_id));
}

TableBinding* InterfaceManager::FindBindingAt(const Sheet* sheet, int64_t row,
                                              int64_t col) const {
  for (const auto& b : bindings_) {
    if (b->ContainsCell(sheet, row, col)) return b.get();
  }
  return nullptr;
}

Result<bool> InterfaceManager::RouteFrontEndEdit(Sheet* sheet, int64_t row,
                                                 int64_t col, const Value& v) {
  TableBinding* binding = FindBindingAt(sheet, row, col);
  if (binding == nullptr) return false;
  DS_RETURN_IF_ERROR(binding->ApplyFrontEndEdit(row, col, v));
  return true;
}

// ---------------------------------------------------------------------------
// Back-end half of two-way sync
// ---------------------------------------------------------------------------

bool InterfaceManager::RegionVisible(const Sheet* sheet, int64_t r0, int64_t c0,
                                     int64_t r1, int64_t c1) const {
  if (!visibility_probe_) return true;  // no window manager: treat as visible
  return visibility_probe_(sheet, r0, c0, r1, c1);
}

void InterfaceManager::OnTableChanged(const std::string& table_name,
                                      const TableChange& change) {
  (void)change;
  backend_refreshes_ += 1;
  std::string key = ToLower(table_name);
  // 1. Refresh bindings on this table (coalesced per binding).
  for (const auto& b : bindings_) {
    if (!EqualsIgnoreCase(b->table()->name(), table_name)) continue;
    TableBinding* raw = b.get();
    int64_t r0 = raw->anchor_row();
    int64_t r1 = raw->data_row() + static_cast<int64_t>(raw->window_count());
    bool visible = RegionVisible(raw->sheet(), r0, raw->anchor_col(), r1,
                                 raw->anchor_col() +
                                     static_cast<int64_t>(
                                         raw->table()->schema().num_columns()));
    scheduler_->EnqueueUnique(
        visible ? Priority::kVisible : Priority::kBackground,
        "binding-refresh-" + std::to_string(raw->id()),
        [raw]() { (void)raw->RefreshWindow(); });
  }
  // 2. Dirty DBSQL anchors that referenced this table and queue a recalc.
  auto it = anchors_by_table_.find(key);
  if (it != anchors_by_table_.end()) {
    for (const formula::CellKey& anchor : it->second) {
      engine_->MarkDirty(anchor.sheet, anchor.row, anchor.col);
    }
    if (!it->second.empty()) {
      formula::FormulaEngine* engine = engine_;
      scheduler_->EnqueueUnique(Priority::kNear, "recalc-dirty",
                                [engine]() { (void)engine->RecalcDirty(); });
    }
  }
}

// ---------------------------------------------------------------------------
// DBSQL / DBTABLE
// ---------------------------------------------------------------------------

std::unique_ptr<ExternalResolver> InterfaceManager::MakeResolver(
    Sheet* anchor_sheet) const {
  return std::make_unique<SheetResolver>(workbook_, anchor_sheet);
}

Value InterfaceManager::EvalArg(Sheet* sheet, int64_t row, int64_t col,
                                const formula::FExpr& arg) {
  (void)row;
  (void)col;
  if (arg.kind == formula::FKind::kLiteral) return arg.literal;
  auto v = engine_->EvaluateImmediate(sheet, "=" + arg.ToText(), row, col);
  if (!v.ok()) return Value::Error("#VALUE!");
  return std::move(v).value();
}

Status InterfaceManager::AnalyzeDependencies(
    Sheet* sheet, int64_t row, int64_t col, const formula::FExpr& root,
    std::vector<formula::CellDep>* cells,
    std::vector<formula::RangeDep>* ranges) {
  (void)row;
  (void)col;
  if (root.op == "DBTABLE") return Status::OK();  // table-only precedents
  if (root.args.empty() || root.args[0]->kind != formula::FKind::kLiteral ||
      root.args[0]->literal.type() != DataType::kText) {
    return Status::OK();  // dynamic SQL text: dependencies unknown
  }
  auto parsed = sql::Parse(root.args[0]->literal.text_value());
  if (!parsed.ok()) return Status::OK();  // surfaced at evaluation time
  auto* select = std::get_if<sql::SelectStmt>(&parsed.value());
  if (select == nullptr) return Status::OK();
  std::vector<std::string> cell_refs, range_refs, tables;
  CollectSelectRefs(*select, &cell_refs, &range_refs, &tables);
  for (const std::string& ref : cell_refs) {
    auto parsed_ref = ParseCellRef(ref);
    if (!parsed_ref.ok()) continue;
    Sheet* target = sheet;
    if (!parsed_ref.value().sheet.empty()) {
      auto s = workbook_->GetSheet(parsed_ref.value().sheet);
      if (!s.ok()) continue;
      target = s.value();
    }
    cells->push_back(formula::CellDep{target, parsed_ref.value().row,
                                      parsed_ref.value().col});
  }
  for (const std::string& ref : range_refs) {
    auto parsed_ref = ParseRangeRef(ref);
    if (!parsed_ref.ok()) continue;
    Sheet* target = sheet;
    if (!parsed_ref.value().sheet.empty()) {
      auto s = workbook_->GetSheet(parsed_ref.value().sheet);
      if (!s.ok()) continue;
      target = s.value();
    }
    ranges->push_back(formula::RangeDep{
        target, parsed_ref.value().start.row, parsed_ref.value().start.col,
        parsed_ref.value().end.row, parsed_ref.value().end.col});
  }
  return Status::OK();
}

Value InterfaceManager::WriteSpill(Sheet* sheet, int64_t row, int64_t col,
                                   const ResultSet& result) {
  formula::CellKey anchor{sheet, row, col};
  SpillExtent previous = spills_[anchor];
  int64_t out_rows = static_cast<int64_t>(result.rows.size());
  int64_t out_cols = static_cast<int64_t>(result.columns.size());
  // Write the block; the anchor cell itself is delivered via return value.
  for (int64_t r = 0; r < out_rows; ++r) {
    for (int64_t c = 0; c < out_cols; ++c) {
      if (r == 0 && c == 0) continue;
      const Value& v = result.rows[static_cast<size_t>(r)][static_cast<size_t>(c)];
      (void)sheet->SetValue(row + r, col + c, v);
      engine_->MarkDirty(sheet, row + r, col + c);
    }
  }
  // Clear cells from the previous spill not covered anymore.
  for (int64_t r = 0; r < previous.rows; ++r) {
    for (int64_t c = 0; c < previous.cols; ++c) {
      if (r < out_rows && c < out_cols) continue;
      if (r == 0 && c == 0) continue;
      (void)sheet->ClearCell(row + r, col + c);
      engine_->MarkDirty(sheet, row + r, col + c);
    }
  }
  spills_[anchor] = SpillExtent{out_rows, out_cols};
  if (result.rows.empty() || result.rows[0].empty()) {
    return Value::Text("(0 rows)");
  }
  return result.rows[0][0];
}

Value InterfaceManager::EvaluateDbsql(Sheet* sheet, int64_t row, int64_t col,
                                      const formula::FExpr& root) {
  if (root.args.empty()) return Value::Error("#VALUE!");
  Value sql_text = EvalArg(sheet, row, col, *root.args[0]);
  if (sql_text.is_error()) return sql_text;
  if (sql_text.type() != DataType::kText) return Value::Error("#VALUE!");
  const std::string& sql = sql_text.text_value();

  // Referenced tables + referenced-cell snapshot form the cache key.
  std::vector<std::string> cell_refs, range_refs, tables;
  {
    auto parsed = sql::Parse(sql);
    if (!parsed.ok()) return Value::Error("#VALUE!");
    auto* select = std::get_if<sql::SelectStmt>(&parsed.value());
    if (select == nullptr) {
      return Value::Error("#VALUE!");  // DBSQL is read-only (SELECT)
    }
    CollectSelectRefs(*select, &cell_refs, &range_refs, &tables);
  }
  SheetResolver resolver(workbook_, sheet);
  std::string cache_key = sql;
  for (const std::string& ref : cell_refs) {
    auto v = resolver.ResolveRangeValue(ref);
    cache_key += "|" + (v.ok() ? v.value().ToSqlLiteral() : "?");
  }
  for (const std::string& ref : range_refs) {
    // Range contents are hashed coarsely via the sheet's cell count; exact
    // invalidation comes from the formula-engine range dependencies.
    cache_key += "|" + ref;
  }

  // Register this anchor for table-change invalidation.
  formula::CellKey anchor{sheet, row, col};
  for (const std::string& t : tables) {
    auto& anchors = anchors_by_table_[t];
    if (std::find(anchors.begin(), anchors.end(), anchor) == anchors.end()) {
      anchors.push_back(anchor);
    }
  }

  auto cached = dbsql_cache_.find(cache_key);
  if (cached != dbsql_cache_.end()) {
    bool fresh = true;
    for (const auto& [name, version] : cached->second.table_versions) {
      auto table = db_->catalog().GetTable(name);
      if (!table.ok() || table.value()->version() != version) {
        fresh = false;
        break;
      }
    }
    if (fresh && range_refs.empty()) {
      // Shared computation: identical query, identical inputs.
      dbsql_cache_hits_ += 1;
      return WriteSpill(sheet, row, col, cached->second.result);
    }
    dbsql_cache_.erase(cached);
  }

  auto result = db_->Execute(sql, &resolver);
  dbsql_executions_ += 1;
  if (!result.ok()) return Value::Error("#VALUE!");

  DbsqlCache entry;
  entry.result = std::move(result).value();
  for (const std::string& t : tables) {
    auto table = db_->catalog().GetTable(t);
    if (table.ok()) entry.table_versions.emplace_back(t, table.value()->version());
  }
  Value anchor_value = WriteSpill(sheet, row, col, entry.result);
  dbsql_cache_[cache_key] = std::move(entry);
  return anchor_value;
}

Value InterfaceManager::EvaluateDbtable(Sheet* sheet, int64_t row, int64_t col,
                                        const formula::FExpr& root) {
  if (root.args.empty()) return Value::Error("#VALUE!");
  Value name_v = EvalArg(sheet, row, col, *root.args[0]);
  if (name_v.type() != DataType::kText) return Value::Error("#VALUE!");
  const std::string& table_name = name_v.text_value();
  size_t window = 0;
  if (root.args.size() >= 2) {
    Value w = EvalArg(sheet, row, col, *root.args[1]);
    auto wi = w.AsInt();
    if (wi.ok() && wi.value() > 0) window = static_cast<size_t>(wi.value());
  }

  // Reuse an existing binding anchored here (re-evaluation path).
  for (const auto& b : bindings_) {
    if (b->sheet() == sheet && b->anchor_row() == row &&
        b->anchor_col() == col) {
      if (EqualsIgnoreCase(b->table()->name(), table_name)) {
        (void)b->RefreshWindow();
        (void)b->WriteHeader();
        return Value::Text(b->table()->schema().num_columns() > 0
                               ? b->table()->schema().column(0).name
                               : table_name);
      }
      (void)Unbind(b->id());
      break;
    }
  }
  auto binding = BindTable(sheet, row, col, table_name, window);
  if (!binding.ok()) return Value::Error("#NAME?");
  const Schema& schema = binding.value()->table()->schema();
  return Value::Text(schema.num_columns() > 0 ? schema.column(0).name
                                              : table_name);
}

Value InterfaceManager::EvaluateHybrid(Sheet* sheet, int64_t row, int64_t col,
                                       const formula::FExpr& root) {
  if (root.op == "DBSQL") return EvaluateDbsql(sheet, row, col, root);
  if (root.op == "DBTABLE") return EvaluateDbtable(sheet, row, col, root);
  return Value::Error("#NAME?");
}

}  // namespace dataspread
