#ifndef DATASPREAD_CORE_INTERFACE_MANAGER_H_
#define DATASPREAD_CORE_INTERFACE_MANAGER_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/binding.h"
#include "core/scheduler.h"
#include "core/schema_infer.h"
#include "db/database.h"
#include "formula/engine.h"
#include "sheet/workbook.h"

namespace dataspread {

/// The paper's **Interface Manager** (§3) — the component that makes the
/// database interface-aware. It owns:
///
///  - *contexts*: every displayed relational artifact (a `DBTABLE` region or
///    a `DBSQL` spill) is registered with its sheet + positional address;
///  - *positional addressing for SQL*: `RANGEVALUE`/`RANGETABLE` are resolved
///    against the sheet relative to the querying cell (SheetResolver);
///  - *two-way synchronization*: front-end edits inside bound regions become
///    keyed UPDATEs; back-end changes refresh bound regions and re-run
///    dependent `DBSQL` cells;
///  - *shared computation* (§3 Compute Engine): identical `DBSQL` queries
///    whose inputs have not changed are served from a result cache keyed by
///    resolved SQL + referenced table versions.
class InterfaceManager : public formula::ExternalFormulaHandler {
 public:
  InterfaceManager(Workbook* workbook, Database* db,
                   formula::FormulaEngine* engine, Scheduler* scheduler,
                   size_t default_window = 256);
  ~InterfaceManager() override;

  // ---- Figure 2b: export / import ----

  /// Creates a relational table from a sheet range with inferred schema.
  /// `key_column` (optional, case-insensitive) marks the PRIMARY KEY.
  Result<Table*> CreateTableFromRange(Sheet* sheet, const RangeRef& range,
                                      const std::string& table_name,
                                      HeaderMode mode = HeaderMode::kAuto,
                                      const std::string& key_column = "");

  /// Binds `table_name` to a region anchored at (anchor_row, anchor_col):
  /// the programmatic form of entering `=DBTABLE("name")`.
  Result<TableBinding*> BindTable(Sheet* sheet, int64_t anchor_row,
                                  int64_t anchor_col,
                                  const std::string& table_name,
                                  size_t window = 0);

  Status Unbind(int binding_id);

  /// The binding whose region contains the cell, or nullptr.
  TableBinding* FindBindingAt(const Sheet* sheet, int64_t row,
                              int64_t col) const;
  const std::vector<std::unique_ptr<TableBinding>>& bindings() const {
    return bindings_;
  }

  // ---- Two-way sync: front-end half ----

  /// Routes a user edit; returns true if the cell belonged to a binding and
  /// was translated into a database mutation.
  Result<bool> RouteFrontEndEdit(Sheet* sheet, int64_t row, int64_t col,
                                 const Value& v);

  // ---- ExternalFormulaHandler (DBSQL / DBTABLE) ----

  Status AnalyzeDependencies(Sheet* sheet, int64_t row, int64_t col,
                             const formula::FExpr& root,
                             std::vector<formula::CellDep>* cells,
                             std::vector<formula::RangeDep>* ranges) override;
  Value EvaluateHybrid(Sheet* sheet, int64_t row, int64_t col,
                       const formula::FExpr& root) override;

  /// Resolver for RANGEVALUE/RANGETABLE with `anchor_sheet` as the default
  /// sheet (may be null: only sheet-qualified references resolve).
  std::unique_ptr<ExternalResolver> MakeResolver(Sheet* anchor_sheet) const;

  // ---- Visibility probe (set by the Window Manager) ----

  using VisibilityProbe = std::function<bool(const Sheet*, int64_t, int64_t,
                                             int64_t, int64_t)>;
  void set_visibility_probe(VisibilityProbe probe) {
    visibility_probe_ = std::move(probe);
  }

  // ---- Observability ----

  uint64_t dbsql_executions() const { return dbsql_executions_; }
  uint64_t dbsql_cache_hits() const { return dbsql_cache_hits_; }
  uint64_t backend_refreshes() const { return backend_refreshes_; }

 private:
  struct DbsqlCache {
    ResultSet result;
    std::vector<std::pair<std::string, uint64_t>> table_versions;
  };
  struct SpillExtent {
    int64_t rows = 0;
    int64_t cols = 0;
  };

  void OnTableChanged(const std::string& table_name, const TableChange& change);
  Value EvaluateDbsql(Sheet* sheet, int64_t row, int64_t col,
                      const formula::FExpr& root);
  Value EvaluateDbtable(Sheet* sheet, int64_t row, int64_t col,
                        const formula::FExpr& root);
  /// Evaluates a formula argument to a scalar (usually a literal string).
  Value EvalArg(Sheet* sheet, int64_t row, int64_t col,
                const formula::FExpr& arg);
  /// Writes a DBSQL result block anchored at (row, col); returns the anchor
  /// value. Clears stale cells from the previous spill.
  Value WriteSpill(Sheet* sheet, int64_t row, int64_t col,
                   const ResultSet& result);
  bool RegionVisible(const Sheet* sheet, int64_t r0, int64_t c0, int64_t r1,
                     int64_t c1) const;

  Workbook* workbook_;
  Database* db_;
  formula::FormulaEngine* engine_;
  Scheduler* scheduler_;
  size_t default_window_;
  int db_listener_token_ = 0;
  int next_binding_id_ = 1;
  std::vector<std::unique_ptr<TableBinding>> bindings_;
  std::unordered_map<std::string, DbsqlCache> dbsql_cache_;
  std::unordered_map<formula::CellKey, SpillExtent, formula::CellKeyHash>
      spills_;
  // DBSQL anchors by referenced table (lower-cased) for invalidation.
  std::unordered_map<std::string, std::vector<formula::CellKey>>
      anchors_by_table_;
  VisibilityProbe visibility_probe_;
  uint64_t dbsql_executions_ = 0;
  uint64_t dbsql_cache_hits_ = 0;
  uint64_t backend_refreshes_ = 0;
};

}  // namespace dataspread

#endif  // DATASPREAD_CORE_INTERFACE_MANAGER_H_
