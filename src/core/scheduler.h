#ifndef DATASPREAD_CORE_SCHEDULER_H_
#define DATASPREAD_CORE_SCHEDULER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>

namespace dataspread {

/// Task priority bands of the Compute Engine (paper §3): work needed for the
/// visible pane preempts everything else; background work (off-screen
/// recalculation, prefetch) runs last. FIFO within a band.
enum class Priority {
  kVisible = 0,
  kNear = 1,
  kBackground = 2,
};

/// The Compute Engine's task queue. "It performs computations asynchronously,
/// free from a user's context ... It further improves the interface's
/// interactivity by prioritizing the computation for visible cells."
///
/// Two execution modes:
///  - deterministic: the owner drains the queue with RunOne()/RunUntilIdle()
///    (used by tests and the synchronous facade);
///  - background: StartWorker() spawns a thread that drains continuously;
///    WaitIdle() joins a quiescent point.
class Scheduler {
 public:
  using Task = std::function<void()>;

  Scheduler() = default;
  ~Scheduler() { StopWorker(); }

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Enqueues a task.
  void Enqueue(Priority priority, Task task);

  /// Enqueues a task unless another task with the same `key` is already
  /// pending (coalesces bursts, e.g. many row updates → one binding refresh).
  /// Returns false if coalesced.
  bool EnqueueUnique(Priority priority, const std::string& key, Task task);

  /// Runs the highest-priority pending task on the calling thread.
  /// Returns false when the queue was empty.
  bool RunOne();

  /// Drains the queue on the calling thread (tasks may enqueue more tasks);
  /// returns the number executed. `max_tasks` guards against livelock.
  size_t RunUntilIdle(size_t max_tasks = 1u << 20);

  size_t pending() const;
  uint64_t executed(Priority priority) const {
    return executed_[static_cast<size_t>(priority)];
  }
  uint64_t total_executed() const {
    return executed_[0] + executed_[1] + executed_[2];
  }

  /// Starts/stops the background worker thread.
  void StartWorker();
  void StopWorker();
  bool worker_running() const { return worker_.joinable(); }
  /// Blocks until the queue is empty and no task is mid-flight.
  void WaitIdle();

 private:
  struct Entry {
    std::string key;  // empty = not coalescible
    Task task;
  };

  bool PopLocked(Entry* out);

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Entry> queues_[3];
  std::unordered_set<std::string> pending_keys_;
  uint64_t executed_[3] = {0, 0, 0};
  int in_flight_ = 0;
  bool stopping_ = false;
  std::thread worker_;
};

}  // namespace dataspread

#endif  // DATASPREAD_CORE_SCHEDULER_H_
