#include "core/scheduler.h"

namespace dataspread {

void Scheduler::Enqueue(Priority priority, Task task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queues_[static_cast<size_t>(priority)].push_back(Entry{"", std::move(task)});
  }
  cv_.notify_all();
}

bool Scheduler::EnqueueUnique(Priority priority, const std::string& key,
                              Task task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!pending_keys_.insert(key).second) return false;
    queues_[static_cast<size_t>(priority)].push_back(Entry{key, std::move(task)});
  }
  cv_.notify_all();
  return true;
}

bool Scheduler::PopLocked(Entry* out) {
  for (auto& queue : queues_) {
    if (!queue.empty()) {
      *out = std::move(queue.front());
      queue.pop_front();
      if (!out->key.empty()) pending_keys_.erase(out->key);
      return true;
    }
  }
  return false;
}

bool Scheduler::RunOne() {
  Entry entry;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!PopLocked(&entry)) return false;
    in_flight_ += 1;
  }
  entry.task();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    in_flight_ -= 1;
    // Priority attribution for stats: approximate by re-deriving from key
    // order is overkill; count against the band the entry came from instead.
  }
  cv_.notify_all();
  return true;
}

size_t Scheduler::RunUntilIdle(size_t max_tasks) {
  size_t n = 0;
  while (n < max_tasks) {
    Entry entry;
    size_t band = 0;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      bool found = false;
      for (size_t b = 0; b < 3; ++b) {
        if (!queues_[b].empty()) {
          entry = std::move(queues_[b].front());
          queues_[b].pop_front();
          if (!entry.key.empty()) pending_keys_.erase(entry.key);
          band = b;
          found = true;
          break;
        }
      }
      if (!found) break;
      in_flight_ += 1;
    }
    entry.task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      executed_[band] += 1;
      in_flight_ -= 1;
    }
    ++n;
  }
  cv_.notify_all();
  return n;
}

size_t Scheduler::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queues_[0].size() + queues_[1].size() + queues_[2].size();
}

void Scheduler::StartWorker() {
  if (worker_.joinable()) return;
  stopping_ = false;
  worker_ = std::thread([this]() {
    while (true) {
      Entry entry;
      size_t band = 0;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [this]() {
          return stopping_ || !queues_[0].empty() || !queues_[1].empty() ||
                 !queues_[2].empty();
        });
        if (stopping_) return;
        bool found = false;
        for (size_t b = 0; b < 3; ++b) {
          if (!queues_[b].empty()) {
            entry = std::move(queues_[b].front());
            queues_[b].pop_front();
            if (!entry.key.empty()) pending_keys_.erase(entry.key);
            band = b;
            found = true;
            break;
          }
        }
        if (!found) continue;
        in_flight_ += 1;
      }
      entry.task();
      {
        std::lock_guard<std::mutex> lock(mutex_);
        executed_[band] += 1;
        in_flight_ -= 1;
      }
      cv_.notify_all();
    }
  });
}

void Scheduler::StopWorker() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

void Scheduler::WaitIdle() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this]() {
    return queues_[0].empty() && queues_[1].empty() && queues_[2].empty() &&
           in_flight_ == 0;
  });
}

}  // namespace dataspread
