#ifndef DATASPREAD_CORE_SCHEMA_INFER_H_
#define DATASPREAD_CORE_SCHEMA_INFER_H_

#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/result.h"
#include "sheet/address.h"
#include "sheet/sheet.h"
#include "types/value.h"

namespace dataspread {

/// Header-row handling for range→table inference.
enum class HeaderMode {
  kAuto,      ///< header iff every first-row cell is non-empty text
  kHeader,    ///< first row is the header
  kNoHeader,  ///< all rows are data; columns named c1, c2, ...
};

/// Result of inferring a relation from a sheet range (paper Figure 2b: "The
/// schema of this table is automatically inferred using the column heading
/// and the data").
struct InferredTable {
  bool has_header = false;
  Schema schema;
  std::vector<Row> rows;  ///< data tuples (header excluded)
};

/// Infers attribute names and types from the cells of `range`.
///
/// Types generalize across rows per column (INT ∪ REAL → REAL, any mixture
/// with TEXT → TEXT, all-NULL → TEXT); duplicate/empty header names are
/// uniquified. Error values (#DIV/0! etc.) in the range abort the export.
Result<InferredTable> InferTableFromRange(const Sheet& sheet,
                                          const RangeRef& range,
                                          HeaderMode mode = HeaderMode::kAuto);

/// Same inference over an already-materialized grid (rows must be rectangular
/// after right-padding with NULLs). Used by the CSV ingestion path.
Result<InferredTable> InferTableFromRows(std::vector<Row> grid,
                                         HeaderMode mode = HeaderMode::kAuto);

}  // namespace dataspread

#endif  // DATASPREAD_CORE_SCHEMA_INFER_H_
