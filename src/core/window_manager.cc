#include "core/window_manager.h"

#include <algorithm>

namespace dataspread {

WindowManager::WindowManager(InterfaceManager* interface_manager,
                             formula::FormulaEngine* engine,
                             Scheduler* scheduler, int64_t prefetch_margin)
    : interface_manager_(interface_manager),
      engine_(engine),
      scheduler_(scheduler),
      prefetch_margin_(prefetch_margin) {
  interface_manager_->set_visibility_probe(
      [this](const Sheet* sheet, int64_t r0, int64_t c0, int64_t r1,
             int64_t c1) { return IsVisible(sheet, r0, c0, r1, c1); });
}

void WindowManager::SetViewport(const Viewport& viewport) {
  viewport_ = viewport;
  window_moves_ += 1;
  if (viewport_.sheet == nullptr) return;

  // Slide the windows of bindings intersecting the pane. The fetch itself is
  // a task so a background worker can overlap it with interaction.
  for (const auto& binding : interface_manager_->bindings()) {
    TableBinding* b = binding.get();
    if (b->sheet() != viewport_.sheet) continue;
    int64_t region_c0 = b->anchor_col();
    int64_t region_c1 =
        b->anchor_col() +
        static_cast<int64_t>(b->table()->schema().num_columns()) - 1;
    if (region_c1 < viewport_.left || region_c0 >= viewport_.left + viewport_.cols) {
      continue;
    }
    // Positions of the table the pane needs (with the prefetch margin).
    int64_t first_visible = viewport_.top - b->data_row();
    int64_t start = std::max<int64_t>(0, first_visible - prefetch_margin_);
    int64_t count = viewport_.rows + 2 * prefetch_margin_;
    if (first_visible + viewport_.rows < 0 ||
        start >= static_cast<int64_t>(b->table()->num_rows())) {
      continue;  // region not in the pane's row span
    }
    if (static_cast<size_t>(start) == b->window_start() &&
        static_cast<size_t>(count) == b->window_count()) {
      continue;  // already materialized
    }
    scheduler_->EnqueueUnique(
        Priority::kVisible, "binding-window-" + std::to_string(b->id()),
        [b, start, count]() {
          (void)b->SetWindow(static_cast<size_t>(start),
                             static_cast<size_t>(count));
        });
  }

  // Visible-first recalculation: the pane first, everything else behind it.
  formula::FormulaEngine* engine = engine_;
  Viewport vp = viewport_;
  scheduler_->EnqueueUnique(Priority::kVisible, "recalc-window", [engine, vp]() {
    (void)engine->RecalcWindow(vp.sheet, vp.top, vp.left, vp.top + vp.rows - 1,
                               vp.left + vp.cols - 1);
  });
  scheduler_->EnqueueUnique(Priority::kBackground, "recalc-dirty",
                            [engine]() { (void)engine->RecalcDirty(); });
}

}  // namespace dataspread
