#ifndef DATASPREAD_CORE_BINDING_H_
#define DATASPREAD_CORE_BINDING_H_

#include <functional>
#include <string>

#include "catalog/table.h"
#include "common/result.h"
#include "db/database.h"
#include "sheet/sheet.h"

namespace dataspread {

/// A two-way binding between a sheet region and a relational table — the unit
/// the paper's Interface Manager maintains per `DBTABLE` (§3): a *context*
/// (sheet + anchor position) plus the key↔location mapping that lets an edit
/// at a position be translated into a keyed UPDATE.
///
/// Layout: the header row (column names) sits at the anchor row; data row
/// `p` of the table displays at sheet row `anchor_row + 1 + p`. Only a
/// *window* of positions [window_start, window_start+window_count) is
/// materialized into sheet cells; the Window Manager slides it as the user
/// pans, which is how a million-row table stays responsive (paper §1).
class TableBinding {
 public:
  TableBinding(int id, Sheet* sheet, int64_t anchor_row, int64_t anchor_col,
               Table* table, Database* db, size_t default_window);

  int id() const { return id_; }
  Sheet* sheet() const { return sheet_; }
  Table* table() const { return table_; }
  int64_t anchor_row() const { return anchor_row_; }
  int64_t anchor_col() const { return anchor_col_; }
  int64_t data_row() const { return anchor_row_ + 1; }
  size_t window_start() const { return window_start_; }
  size_t window_count() const { return window_count_; }

  /// True if the sheet coordinate falls inside the bound region (header or
  /// any data position, materialized or not).
  bool ContainsCell(const Sheet* sheet, int64_t row, int64_t col) const;

  /// Hook invoked for every sheet cell the binding writes; the Interface
  /// Manager uses it to keep the formula engine's dirty set exact even when
  /// sheet events are suppressed (mid-recalculation refreshes).
  void set_cell_written_hook(std::function<void(int64_t, int64_t)> hook) {
    cell_written_hook_ = std::move(hook);
  }

  /// Writes the header row (skipping the anchor cell itself, whose value is
  /// delivered through the formula result).
  Status WriteHeader();

  /// Slides the materialized window to positions [start, start+count),
  /// clearing cells of the previously materialized span.
  Status SetWindow(size_t start, size_t count);

  /// Re-fetches the current window from the table (after back-end changes).
  Status RefreshWindow();

  /// Clears every cell the binding materialized (used on unbind).
  Status ClearMaterialized();

  /// Translates a front-end edit at (row, col) into a database mutation:
  /// data cells become keyed UPDATEs (positional when the table has no
  /// primary key); header cells become column renames.
  Status ApplyFrontEndEdit(int64_t row, int64_t col, const Value& v);

  /// Number of window refreshes performed (observability for benches).
  uint64_t refreshes() const { return refreshes_; }

 private:
  Status WriteRows(size_t start, size_t count);
  Status ClearRows(size_t start, size_t count);
  void WroteCell(int64_t row, int64_t col) {
    if (cell_written_hook_) cell_written_hook_(row, col);
  }

  int id_;
  Sheet* sheet_;
  int64_t anchor_row_, anchor_col_;
  Table* table_;
  Database* db_;
  size_t window_start_ = 0;
  size_t window_count_ = 0;    // rows currently materialized (clipped)
  size_t requested_count_ = 0; // configured span; grows with the table
  size_t default_window_;
  uint64_t refreshes_ = 0;
  std::function<void(int64_t, int64_t)> cell_written_hook_;
};

}  // namespace dataspread

#endif  // DATASPREAD_CORE_BINDING_H_
