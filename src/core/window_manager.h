#ifndef DATASPREAD_CORE_WINDOW_MANAGER_H_
#define DATASPREAD_CORE_WINDOW_MANAGER_H_

#include <cstdint>

#include "core/interface_manager.h"
#include "core/scheduler.h"
#include "formula/engine.h"

namespace dataspread {

/// The user's current pane (paper §1: "the portion of the spreadsheet that
/// the user is currently looking at; there is no such notion in databases").
struct Viewport {
  Sheet* sheet = nullptr;
  int64_t top = 0;
  int64_t left = 0;
  int64_t rows = 50;
  int64_t cols = 10;

  bool Intersects(const Sheet* s, int64_t r0, int64_t c0, int64_t r1,
                  int64_t c1) const {
    if (s != sheet) return false;
    return r1 >= top && r0 < top + rows && c1 >= left && c0 < left + cols;
  }
};

/// Keeps the current window "up-to-date and in-sync with the underlying
/// relational database" (paper §1): as the user pans,
///  - bindings intersecting the pane slide their materialized window (with a
///    prefetch margin) by fetching rows from the database through the
///    positional index,
///  - recalculation of visible cells is scheduled ahead of background work.
class WindowManager {
 public:
  WindowManager(InterfaceManager* interface_manager,
                formula::FormulaEngine* engine, Scheduler* scheduler,
                int64_t prefetch_margin = 32);

  /// Moves the pane; schedules binding window slides and a visible-first
  /// recalculation.
  void SetViewport(const Viewport& viewport);

  const Viewport& viewport() const { return viewport_; }

  bool IsVisible(const Sheet* sheet, int64_t r0, int64_t c0, int64_t r1,
                 int64_t c1) const {
    return viewport_.sheet == nullptr ||
           viewport_.Intersects(sheet, r0, c0, r1, c1);
  }

  uint64_t window_moves() const { return window_moves_; }

 private:
  InterfaceManager* interface_manager_;
  formula::FormulaEngine* engine_;
  Scheduler* scheduler_;
  int64_t prefetch_margin_;
  Viewport viewport_;
  uint64_t window_moves_ = 0;
};

}  // namespace dataspread

#endif  // DATASPREAD_CORE_WINDOW_MANAGER_H_
