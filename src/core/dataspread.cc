#include "core/dataspread.h"

#include "io/csv.h"

namespace dataspread {

namespace {

/// Resolves DataSpreadOptions into the embedded database's options: a
/// non-empty `database_path` expands through Database::DurableOptions (the
/// one home of the `<path>.pages` + `<path>.wal` convention).
DatabaseOptions ResolveDbOptions(const DataSpreadOptions& options) {
  DatabaseOptions db;
  db.pager = options.pager;
  if (!options.database_path.empty()) {
    db = Database::DurableOptions(options.database_path, std::move(db));
  }
  return db;
}

}  // namespace

DataSpread::DataSpread(DataSpreadOptions options)
    : options_(std::move(options)), db_(ResolveDbOptions(options_)) {
  engine_ = std::make_unique<formula::FormulaEngine>(&workbook_);
  interface_manager_ = std::make_unique<InterfaceManager>(
      &workbook_, &db_, engine_.get(), &scheduler_, options_.binding_window);
  window_manager_ = std::make_unique<WindowManager>(
      interface_manager_.get(), engine_.get(), &scheduler_,
      options_.prefetch_margin);
  if (options_.background_compute) {
    scheduler_.StartWorker();
  }
}

DataSpread::~DataSpread() {
  // Stop the worker before members it references are torn down.
  scheduler_.StopWorker();
}

Result<Sheet*> DataSpread::AddSheet(const std::string& name) {
  DS_ASSIGN_OR_RETURN(Sheet * sheet, workbook_.AddSheet(name));
  engine_->AttachSheet(sheet);
  return sheet;
}

void DataSpread::ScheduleRecalc() {
  formula::FormulaEngine* engine = engine_.get();
  const Viewport& vp = window_manager_->viewport();
  if (vp.sheet != nullptr) {
    Viewport copy = vp;
    scheduler_.EnqueueUnique(Priority::kVisible, "recalc-window",
                             [engine, copy]() {
                               (void)engine->RecalcWindow(
                                   copy.sheet, copy.top, copy.left,
                                   copy.top + copy.rows - 1,
                                   copy.left + copy.cols - 1);
                             });
  }
  scheduler_.EnqueueUnique(Priority::kBackground, "recalc-dirty",
                           [engine]() { (void)engine->RecalcDirty(); });
}

Status DataSpread::SetCellAt(Sheet* sheet, int64_t row, int64_t col,
                             const std::string& input) {
  if (!input.empty() && input[0] == '=') {
    if (interface_manager_->FindBindingAt(sheet, row, col) != nullptr) {
      return Status::InvalidArgument(
          "cannot enter a formula inside a table-bound region");
    }
    DS_RETURN_IF_ERROR(sheet->SetFormula(row, col, input));
  } else {
    Value typed = Value::FromUserInput(input);
    DS_ASSIGN_OR_RETURN(bool handled, interface_manager_->RouteFrontEndEdit(
                                          sheet, row, col, typed));
    if (!handled) {
      DS_RETURN_IF_ERROR(sheet->SetValue(row, col, typed));
    }
  }
  ScheduleRecalc();
  if (options_.auto_pump && !options_.background_compute) Pump();
  return Status::OK();
}

Status DataSpread::SetCell(const std::string& sheet, const std::string& a1,
                           const std::string& input) {
  DS_ASSIGN_OR_RETURN(Sheet * s, workbook_.GetSheet(sheet));
  DS_ASSIGN_OR_RETURN(CellRef ref, ParseCellRef(a1));
  return SetCellAt(s, ref.row, ref.col, input);
}

Result<Value> DataSpread::GetValue(const std::string& sheet,
                                   const std::string& a1) const {
  DS_ASSIGN_OR_RETURN(Sheet * s, workbook_.GetSheet(sheet));
  DS_ASSIGN_OR_RETURN(CellRef ref, ParseCellRef(a1));
  return s->GetValue(ref.row, ref.col);
}

Result<std::string> DataSpread::GetDisplay(const std::string& sheet,
                                           const std::string& a1) const {
  DS_ASSIGN_OR_RETURN(Value v, GetValue(sheet, a1));
  return v.ToDisplayString();
}

Result<ResultSet> DataSpread::Sql(std::string_view sql) {
  auto resolver = interface_manager_->MakeResolver(nullptr);
  auto result = db_.Execute(sql, resolver.get());
  // DML may have queued binding refreshes / recalcs.
  if (options_.auto_pump && !options_.background_compute) Pump();
  return result;
}

Result<Table*> DataSpread::CreateTableFromRange(const std::string& sheet,
                                                const std::string& range_a1,
                                                const std::string& table_name,
                                                const std::string& key_column,
                                                HeaderMode mode) {
  DS_ASSIGN_OR_RETURN(Sheet * s, workbook_.GetSheet(sheet));
  DS_ASSIGN_OR_RETURN(RangeRef range, ParseRangeRef(range_a1));
  return interface_manager_->CreateTableFromRange(s, range, table_name, mode,
                                                  key_column);
}

Result<TableBinding*> DataSpread::ImportTable(const std::string& sheet,
                                              const std::string& anchor_a1,
                                              const std::string& table_name,
                                              size_t window) {
  DS_ASSIGN_OR_RETURN(Sheet * s, workbook_.GetSheet(sheet));
  DS_ASSIGN_OR_RETURN(CellRef anchor, ParseCellRef(anchor_a1));
  std::string formula = "=DBTABLE(\"" + table_name + "\"";
  if (window > 0) formula += "," + std::to_string(window);
  formula += ")";
  DS_RETURN_IF_ERROR(SetCellAt(s, anchor.row, anchor.col, formula));
  if (!options_.auto_pump || options_.background_compute) {
    Pump();  // the binding materializes when the hybrid formula evaluates
  }
  // Probe the header row: it belongs to the region even for empty tables.
  TableBinding* binding =
      interface_manager_->FindBindingAt(s, anchor.row, anchor.col);
  if (binding == nullptr) {
    return Status::Internal("DBTABLE did not produce a binding (table '" +
                            table_name + "' missing?)");
  }
  return binding;
}

Status DataSpread::ImportCsv(const std::string& sheet,
                             const std::string& anchor_a1,
                             std::string_view csv_text) {
  DS_ASSIGN_OR_RETURN(Sheet * s, workbook_.GetSheet(sheet));
  DS_ASSIGN_OR_RETURN(CellRef anchor, ParseCellRef(anchor_a1));
  DS_ASSIGN_OR_RETURN(std::vector<Row> rows, ParseCsv(csv_text));
  for (size_t r = 0; r < rows.size(); ++r) {
    for (size_t c = 0; c < rows[r].size(); ++c) {
      DS_RETURN_IF_ERROR(s->SetValue(anchor.row + static_cast<int64_t>(r),
                                     anchor.col + static_cast<int64_t>(c),
                                     rows[r][c]));
    }
  }
  ScheduleRecalc();
  if (options_.auto_pump && !options_.background_compute) Pump();
  return Status::OK();
}

Result<Table*> DataSpread::ImportCsvAsTable(std::string_view csv_text,
                                            const std::string& table_name,
                                            const std::string& key_column,
                                            HeaderMode mode) {
  DS_ASSIGN_OR_RETURN(std::vector<Row> rows, ParseCsv(csv_text));
  DS_ASSIGN_OR_RETURN(InferredTable inferred,
                      InferTableFromRows(std::move(rows), mode));
  Schema schema = inferred.schema;
  if (!key_column.empty()) {
    auto idx = schema.FindColumn(key_column);
    if (!idx) {
      return Status::NotFound("key column '" + key_column +
                              "' is not in the inferred schema (" +
                              schema.ToString() + ")");
    }
    std::vector<ColumnDef> cols = schema.columns();
    cols[*idx].primary_key = true;
    schema = Schema(std::move(cols));
  }
  DS_ASSIGN_OR_RETURN(Table * table, db_.CreateTable(table_name, schema));
  for (Row& row : inferred.rows) {
    Status s = table->AppendRow(std::move(row));
    if (!s.ok()) {
      (void)db_.catalog().DropTable(table_name);
      return s;
    }
  }
  return table;
}

Result<std::string> DataSpread::ExportCsv(const std::string& sheet,
                                          const std::string& range_a1) const {
  DS_ASSIGN_OR_RETURN(Sheet * s, workbook_.GetSheet(sheet));
  DS_ASSIGN_OR_RETURN(RangeRef range, ParseRangeRef(range_a1));
  std::vector<Row> rows(static_cast<size_t>(range.num_rows()),
                        Row(static_cast<size_t>(range.num_cols()),
                            Value::Null()));
  s->VisitRange(range.start.row, range.start.col, range.end.row, range.end.col,
                [&](int64_t r, int64_t c, const Cell& cell) {
                  rows[static_cast<size_t>(r - range.start.row)]
                      [static_cast<size_t>(c - range.start.col)] = cell.value;
                });
  return WriteCsv(rows);
}

Status DataSpread::InsertRows(const std::string& sheet, int64_t before,
                              int64_t count) {
  DS_ASSIGN_OR_RETURN(Sheet * s, workbook_.GetSheet(sheet));
  DS_RETURN_IF_ERROR(s->InsertRows(before, count));
  ScheduleRecalc();
  if (options_.auto_pump && !options_.background_compute) Pump();
  return Status::OK();
}

Status DataSpread::DeleteRows(const std::string& sheet, int64_t first,
                              int64_t count) {
  DS_ASSIGN_OR_RETURN(Sheet * s, workbook_.GetSheet(sheet));
  DS_RETURN_IF_ERROR(s->DeleteRows(first, count));
  ScheduleRecalc();
  if (options_.auto_pump && !options_.background_compute) Pump();
  return Status::OK();
}

Status DataSpread::InsertCols(const std::string& sheet, int64_t before,
                              int64_t count) {
  DS_ASSIGN_OR_RETURN(Sheet * s, workbook_.GetSheet(sheet));
  DS_RETURN_IF_ERROR(s->InsertCols(before, count));
  ScheduleRecalc();
  if (options_.auto_pump && !options_.background_compute) Pump();
  return Status::OK();
}

Status DataSpread::DeleteCols(const std::string& sheet, int64_t first,
                              int64_t count) {
  DS_ASSIGN_OR_RETURN(Sheet * s, workbook_.GetSheet(sheet));
  DS_RETURN_IF_ERROR(s->DeleteCols(first, count));
  ScheduleRecalc();
  if (options_.auto_pump && !options_.background_compute) Pump();
  return Status::OK();
}

Status DataSpread::ScrollTo(const std::string& sheet, int64_t top_row,
                            int64_t left_col) {
  DS_ASSIGN_OR_RETURN(Sheet * s, workbook_.GetSheet(sheet));
  Viewport vp;
  vp.sheet = s;
  vp.top = top_row;
  vp.left = left_col;
  vp.rows = options_.viewport_rows;
  vp.cols = options_.viewport_cols;
  window_manager_->SetViewport(vp);
  if (options_.auto_pump && !options_.background_compute) Pump();
  return Status::OK();
}

void DataSpread::Pump() {
  // Tasks can mark new cells dirty without enqueuing follow-ups (e.g. DBSQL
  // spills); iterate until a fixpoint (bounded to survive self-reference).
  for (int iteration = 0; iteration < 64; ++iteration) {
    if (options_.background_compute) {
      scheduler_.WaitIdle();
    } else {
      scheduler_.RunUntilIdle();
    }
    if (engine_->dirty_count() == 0 && scheduler_.pending() == 0) return;
    formula::FormulaEngine* engine = engine_.get();
    scheduler_.EnqueueUnique(Priority::kBackground, "recalc-dirty",
                             [engine]() { (void)engine->RecalcDirty(); });
  }
}

Status DataSpread::RecalcNow() {
  for (int iteration = 0; iteration < 64; ++iteration) {
    DS_RETURN_IF_ERROR(engine_->RecalcDirty());
    if (engine_->dirty_count() == 0) return Status::OK();
  }
  return Status::Internal("recalculation did not converge");
}

Result<std::string> DataSpread::Show(const std::string& sheet,
                                     const std::string& range_a1) const {
  DS_ASSIGN_OR_RETURN(Sheet * s, workbook_.GetSheet(sheet));
  DS_ASSIGN_OR_RETURN(RangeRef range, ParseRangeRef(range_a1));
  std::string out;
  for (int64_t r = range.start.row; r <= range.end.row; ++r) {
    for (int64_t c = range.start.col; c <= range.end.col; ++c) {
      if (c > range.start.col) out += "\t";
      out += s->GetValue(r, c).ToDisplayString();
    }
    out += "\n";
  }
  return out;
}

}  // namespace dataspread
