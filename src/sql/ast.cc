#include "sql/ast.h"

#include "common/str_util.h"

namespace dataspread::sql {

ExprPtr Expr::Clone() const {
  auto out = std::make_unique<Expr>();
  out->kind = kind;
  out->literal = literal;
  out->qualifier = qualifier;
  out->column_name = column_name;
  out->op = op;
  out->negated = negated;
  out->star = star;
  out->ref_text = ref_text;
  out->args.reserve(args.size());
  for (const ExprPtr& a : args) {
    out->args.push_back(a ? a->Clone() : nullptr);
  }
  return out;
}

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kLiteral:
      return literal.ToSqlLiteral();
    case ExprKind::kColumnRef:
      return qualifier.empty() ? column_name : qualifier + "." + column_name;
    case ExprKind::kUnary:
      return "(" + op + " " + args[0]->ToString() + ")";
    case ExprKind::kBinary:
      return "(" + args[0]->ToString() + " " + op + " " + args[1]->ToString() +
             ")";
    case ExprKind::kFunction: {
      std::string out = op + "(";
      if (star) {
        out += "*";
      } else {
        for (size_t i = 0; i < args.size(); ++i) {
          if (i > 0) out += ", ";
          out += args[i]->ToString();
        }
      }
      return out + ")";
    }
    case ExprKind::kIsNull:
      return "(" + args[0]->ToString() + (negated ? " IS NOT NULL" : " IS NULL") +
             ")";
    case ExprKind::kInList: {
      std::string out = "(" + args[0]->ToString();
      out += negated ? " NOT IN (" : " IN (";
      for (size_t i = 1; i < args.size(); ++i) {
        if (i > 1) out += ", ";
        out += args[i]->ToString();
      }
      return out + "))";
    }
    case ExprKind::kRangeValue:
      return "RANGEVALUE(" + ref_text + ")";
    case ExprKind::kCase: {
      std::string out = "CASE";
      size_t i = 0;
      for (; i + 1 < args.size(); i += 2) {
        out += " WHEN " + args[i]->ToString() + " THEN " + args[i + 1]->ToString();
      }
      if (i < args.size()) out += " ELSE " + args[i]->ToString();
      return out + " END";
    }
  }
  return "?";
}

ExprPtr MakeLiteral(Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr MakeColumnRef(std::string qualifier, std::string column) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->qualifier = std::move(qualifier);
  e->column_name = std::move(column);
  return e;
}

ExprPtr MakeUnary(std::string op, ExprPtr arg) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kUnary;
  e->op = std::move(op);
  e->args.push_back(std::move(arg));
  return e;
}

ExprPtr MakeBinary(std::string op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->op = std::move(op);
  e->args.push_back(std::move(lhs));
  e->args.push_back(std::move(rhs));
  return e;
}

bool IsAggregateFunction(std::string_view name) {
  return name == "COUNT" || name == "SUM" || name == "AVG" || name == "MIN" ||
         name == "MAX";
}

bool ContainsAggregate(const Expr& e) {
  if (e.kind == ExprKind::kFunction && IsAggregateFunction(e.op)) return true;
  for (const ExprPtr& a : e.args) {
    if (a && ContainsAggregate(*a)) return true;
  }
  return false;
}

std::string TableRef::EffectiveName() const {
  if (!alias.empty()) return alias;
  if (kind == Kind::kNamed) return name;
  return range_text;
}

}  // namespace dataspread::sql
