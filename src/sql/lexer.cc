#include "sql/lexer.h"

#include <cctype>

#include "common/str_util.h"

namespace dataspread::sql {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '$';
}

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // -- line comment
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    size_t start = i;
    if (IsIdentStart(c)) {
      while (i < n && IsIdentChar(sql[i])) ++i;
      Token t;
      t.kind = TokenKind::kIdent;
      t.text = std::string(sql.substr(start, i - start));
      t.offset = start;
      tokens.push_back(std::move(t));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n && std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      bool is_real = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      if (i < n && sql[i] == '.') {
        is_real = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      }
      if (i < n && (sql[i] == 'e' || sql[i] == 'E')) {
        size_t exp = i + 1;
        if (exp < n && (sql[exp] == '+' || sql[exp] == '-')) ++exp;
        if (exp < n && std::isdigit(static_cast<unsigned char>(sql[exp]))) {
          is_real = true;
          i = exp;
          while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
        }
      }
      std::string text(sql.substr(start, i - start));
      Token t;
      t.offset = start;
      t.text = text;
      if (is_real) {
        auto d = ParseDouble(text);
        if (!d) return Status::ParseError("bad numeric literal '" + text + "'");
        t.kind = TokenKind::kReal;
        t.real_value = *d;
      } else {
        auto v = ParseInt64(text);
        if (!v) {
          // Integer overflow: fall back to REAL.
          auto d = ParseDouble(text);
          if (!d) return Status::ParseError("bad numeric literal '" + text + "'");
          t.kind = TokenKind::kReal;
          t.real_value = *d;
        } else {
          t.kind = TokenKind::kInt;
          t.int_value = *v;
        }
      }
      tokens.push_back(std::move(t));
      continue;
    }
    if (c == '\'') {
      std::string contents;
      ++i;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {  // escaped quote
            contents += '\'';
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        contents += sql[i];
        ++i;
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(start));
      }
      Token t;
      t.kind = TokenKind::kString;
      t.text = std::move(contents);
      t.offset = start;
      tokens.push_back(std::move(t));
      continue;
    }
    // Symbols, longest match first.
    auto make_symbol = [&](std::string text) {
      Token t;
      t.kind = TokenKind::kSymbol;
      t.text = std::move(text);
      t.offset = start;
      tokens.push_back(std::move(t));
    };
    if (i + 1 < n) {
      std::string two{c, sql[i + 1]};
      if (two == "<=" || two == ">=" || two == "<>" || two == "!=" ||
          two == "||") {
        make_symbol(two);
        i += 2;
        continue;
      }
    }
    if (std::string_view("(),.;*=<>+-/%:!").find(c) != std::string_view::npos) {
      make_symbol(std::string(1, c));
      ++i;
      continue;
    }
    return Status::ParseError(std::string("unexpected character '") + c +
                              "' at offset " + std::to_string(start));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.offset = n;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace dataspread::sql
