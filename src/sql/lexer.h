#ifndef DATASPREAD_SQL_LEXER_H_
#define DATASPREAD_SQL_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace dataspread::sql {

/// Lexical token categories of the SQL dialect.
enum class TokenKind {
  kIdent,    ///< bare identifier or keyword (case-insensitive)
  kString,   ///< 'single quoted' with '' escaping
  kInt,      ///< integer literal
  kReal,     ///< floating-point literal
  kSymbol,   ///< punctuation / operator, text holds the exact lexeme
  kEnd,      ///< end of input sentinel
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;     // identifier spelling, string contents, or symbol
  int64_t int_value = 0;
  double real_value = 0.0;
  size_t offset = 0;    // byte offset in the statement, for error messages
};

/// Tokenizes a SQL statement. Symbols recognized:
///   ( ) , . ; * = <> != < <= > >= + - / % || : !
/// Comments: `-- to end of line`.
Result<std::vector<Token>> Tokenize(std::string_view sql);

}  // namespace dataspread::sql

#endif  // DATASPREAD_SQL_LEXER_H_
