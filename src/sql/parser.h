#ifndef DATASPREAD_SQL_PARSER_H_
#define DATASPREAD_SQL_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "sql/ast.h"

namespace dataspread::sql {

/// Parses one SQL statement (optionally `;`-terminated).
///
/// Supported grammar (see README "SQL dialect"):
///   SELECT [DISTINCT] items FROM table_ref join* [WHERE e] [GROUP BY e,..]
///     [HAVING e] [ORDER BY e [ASC|DESC],..] [LIMIT n [OFFSET m]]
///   INSERT INTO t [(cols)] VALUES (..),(..) | INSERT INTO t [(cols)] SELECT ..
///   UPDATE t SET c=e,.. [WHERE e]
///   DELETE FROM t [WHERE e]
///   CREATE TABLE [IF NOT EXISTS] t (c TYPE [PRIMARY KEY],..)
///   DROP TABLE [IF EXISTS] t
///   ALTER TABLE t ADD [COLUMN] c TYPE [DEFAULT e] | DROP [COLUMN] c
///     | RENAME [COLUMN] c TO c2
///
/// DataSpread extensions (paper §2.2 "Novel Spreadsheet Constructs"):
///   RANGEVALUE(A1) / RANGEVALUE(Sheet2!B3) as a scalar expression, and
///   RANGETABLE(A1:D100) / RANGETABLE(Sheet2!A1:D100) as a FROM source.
Result<Statement> Parse(std::string_view sql);

}  // namespace dataspread::sql

#endif  // DATASPREAD_SQL_PARSER_H_
