#include "sql/parser.h"

#include <unordered_set>

#include "common/str_util.h"
#include "sql/lexer.h"

namespace dataspread::sql {

namespace {

const std::unordered_set<std::string>& ReservedWords() {
  static const auto* kWords = new std::unordered_set<std::string>{
      "SELECT", "FROM",   "WHERE",  "GROUP",   "BY",      "HAVING", "ORDER",
      "LIMIT",  "OFFSET", "JOIN",   "INNER",   "LEFT",    "OUTER",  "NATURAL",
      "CROSS",  "ON",     "AS",     "AND",     "OR",      "NOT",    "IN",
      "IS",     "NULL",   "LIKE",   "BETWEEN", "CASE",    "WHEN",   "THEN",
      "ELSE",   "END",    "DISTINCT", "VALUES", "INSERT", "INTO",   "UPDATE",
      "SET",    "DELETE", "CREATE", "TABLE",   "DROP",    "ALTER",  "ADD",
      "COLUMN", "RENAME", "TO",     "PRIMARY", "KEY",     "DEFAULT", "IF",
      "EXISTS", "TRUE",   "FALSE",  "ASC",     "DESC",    "UNION",
      "BEGIN",  "COMMIT", "ROLLBACK", "ABORT", "TRANSACTION", "WORK",
      "LOCK",
  };
  return *kWords;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Statement> ParseStatement() {
    Result<Statement> out = ParseStatementInner();
    if (!out.ok()) return out;
    (void)MatchSymbol(";");
    if (!AtEnd()) {
      return Status::ParseError("unexpected trailing input at '" +
                                Peek().text + "'");
    }
    return out;
  }

 private:
  // ---- token helpers ----
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool AtEnd() const { return Peek().kind == TokenKind::kEnd; }

  bool IsKeyword(std::string_view kw, size_t ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.kind == TokenKind::kIdent && EqualsIgnoreCase(t.text, kw);
  }
  bool MatchKeyword(std::string_view kw) {
    if (IsKeyword(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status ExpectKeyword(std::string_view kw) {
    if (MatchKeyword(kw)) return Status::OK();
    return Status::ParseError("expected " + std::string(kw) + " before '" +
                              Peek().text + "'");
  }
  bool MatchSymbol(std::string_view sym) {
    const Token& t = Peek();
    if (t.kind == TokenKind::kSymbol && t.text == sym) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status ExpectSymbol(std::string_view sym) {
    if (MatchSymbol(sym)) return Status::OK();
    return Status::ParseError("expected '" + std::string(sym) + "' before '" +
                              Peek().text + "'");
  }
  Result<std::string> ExpectIdent(std::string_view what) {
    const Token& t = Peek();
    if (t.kind != TokenKind::kIdent) {
      return Status::ParseError("expected " + std::string(what) + " before '" +
                                t.text + "'");
    }
    ++pos_;
    return t.text;
  }
  bool IsReserved(const Token& t) const {
    return t.kind == TokenKind::kIdent &&
           ReservedWords().count(ToUpper(t.text)) > 0;
  }

  // ---- statements ----
  Result<Statement> ParseStatementInner() {
    if (IsKeyword("SELECT")) {
      DS_ASSIGN_OR_RETURN(SelectStmt s, ParseSelect());
      return Statement(std::move(s));
    }
    if (IsKeyword("INSERT")) return ParseInsert();
    if (IsKeyword("UPDATE")) return ParseUpdate();
    if (IsKeyword("DELETE")) return ParseDelete();
    if (IsKeyword("CREATE")) return ParseCreateTable();
    if (IsKeyword("DROP")) return ParseDropTable();
    if (IsKeyword("ALTER")) return ParseAlterTable();
    if (IsKeyword("BEGIN"))
      return ParseTransaction(TransactionStmt::Kind::kBegin);
    if (IsKeyword("COMMIT"))
      return ParseTransaction(TransactionStmt::Kind::kCommit);
    if (IsKeyword("ROLLBACK") || IsKeyword("ABORT"))
      return ParseTransaction(TransactionStmt::Kind::kRollback);
    if (IsKeyword("LOCK")) return ParseLockTable();
    return Status::ParseError("expected a SQL statement, got '" + Peek().text +
                              "'");
  }

  Result<Statement> ParseLockTable() {
    Advance();  // LOCK
    (void)MatchKeyword("TABLE");
    DS_ASSIGN_OR_RETURN(std::string name, ExpectIdent("table name"));
    LockTableStmt stmt;
    stmt.table = std::move(name);
    return Statement(std::move(stmt));
  }

  Result<Statement> ParseTransaction(TransactionStmt::Kind kind) {
    Advance();  // BEGIN / COMMIT / ROLLBACK / ABORT
    // Optional noise words, Postgres-style.
    if (!MatchKeyword("TRANSACTION")) (void)MatchKeyword("WORK");
    TransactionStmt stmt;
    stmt.kind = kind;
    return Statement(stmt);
  }

  Result<SelectStmt> ParseSelect() {
    DS_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    SelectStmt stmt;
    stmt.distinct = MatchKeyword("DISTINCT");
    // select list
    while (true) {
      SelectItem item;
      if (MatchSymbol("*")) {
        item.star = true;
      } else if (Peek().kind == TokenKind::kIdent && !IsReserved(Peek()) &&
                 Peek(1).kind == TokenKind::kSymbol && Peek(1).text == "." &&
                 Peek(2).kind == TokenKind::kSymbol && Peek(2).text == "*") {
        item.star = true;
        item.star_qualifier = Advance().text;
        Advance();  // .
        Advance();  // *
      } else {
        DS_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (MatchKeyword("AS")) {
          DS_ASSIGN_OR_RETURN(item.alias, ExpectIdent("alias"));
        } else if (Peek().kind == TokenKind::kIdent && !IsReserved(Peek())) {
          item.alias = Advance().text;
        }
      }
      stmt.items.push_back(std::move(item));
      if (!MatchSymbol(",")) break;
    }
    // FROM
    if (MatchKeyword("FROM")) {
      DS_ASSIGN_OR_RETURN(TableRef first, ParseTableRef());
      stmt.from = std::move(first);
      while (true) {
        if (MatchSymbol(",")) {
          JoinClause j;
          j.type = JoinType::kCross;
          DS_ASSIGN_OR_RETURN(j.table, ParseTableRef());
          stmt.joins.push_back(std::move(j));
          continue;
        }
        JoinType type;
        if (MatchKeyword("NATURAL")) {
          DS_RETURN_IF_ERROR(ExpectKeyword("JOIN"));
          type = JoinType::kNatural;
        } else if (MatchKeyword("CROSS")) {
          DS_RETURN_IF_ERROR(ExpectKeyword("JOIN"));
          type = JoinType::kCross;
        } else if (MatchKeyword("LEFT")) {
          (void)MatchKeyword("OUTER");
          DS_RETURN_IF_ERROR(ExpectKeyword("JOIN"));
          type = JoinType::kLeft;
        } else if (MatchKeyword("INNER")) {
          DS_RETURN_IF_ERROR(ExpectKeyword("JOIN"));
          type = JoinType::kInner;
        } else if (MatchKeyword("JOIN")) {
          type = JoinType::kInner;
        } else {
          break;
        }
        JoinClause j;
        j.type = type;
        DS_ASSIGN_OR_RETURN(j.table, ParseTableRef());
        if (type == JoinType::kInner || type == JoinType::kLeft) {
          DS_RETURN_IF_ERROR(ExpectKeyword("ON"));
          DS_ASSIGN_OR_RETURN(j.on, ParseExpr());
        }
        stmt.joins.push_back(std::move(j));
      }
    }
    if (MatchKeyword("WHERE")) {
      DS_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
    }
    if (MatchKeyword("GROUP")) {
      DS_RETURN_IF_ERROR(ExpectKeyword("BY"));
      do {
        DS_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        stmt.group_by.push_back(std::move(e));
      } while (MatchSymbol(","));
    }
    if (MatchKeyword("HAVING")) {
      DS_ASSIGN_OR_RETURN(stmt.having, ParseExpr());
    }
    if (MatchKeyword("ORDER")) {
      DS_RETURN_IF_ERROR(ExpectKeyword("BY"));
      do {
        OrderItem item;
        DS_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (MatchKeyword("DESC")) {
          item.descending = true;
        } else {
          (void)MatchKeyword("ASC");
        }
        stmt.order_by.push_back(std::move(item));
      } while (MatchSymbol(","));
    }
    if (MatchKeyword("LIMIT")) {
      DS_ASSIGN_OR_RETURN(stmt.limit, ParseIntConstant("LIMIT"));
      if (MatchKeyword("OFFSET")) {
        DS_ASSIGN_OR_RETURN(stmt.offset, ParseIntConstant("OFFSET"));
      }
    } else if (MatchKeyword("OFFSET")) {
      DS_ASSIGN_OR_RETURN(stmt.offset, ParseIntConstant("OFFSET"));
    }
    return stmt;
  }

  Result<int64_t> ParseIntConstant(std::string_view what) {
    const Token& t = Peek();
    if (t.kind != TokenKind::kInt) {
      return Status::ParseError(std::string(what) +
                                " expects an integer constant");
    }
    ++pos_;
    return t.int_value;
  }

  Result<TableRef> ParseTableRef() {
    TableRef ref;
    if (IsKeyword("RANGETABLE")) {
      Advance();
      DS_RETURN_IF_ERROR(ExpectSymbol("("));
      DS_ASSIGN_OR_RETURN(ref.range_text, ParseCellRefText(/*allow_range=*/true));
      DS_RETURN_IF_ERROR(ExpectSymbol(")"));
      ref.kind = TableRef::Kind::kRangeTable;
    } else {
      DS_ASSIGN_OR_RETURN(ref.name, ExpectIdent("table name"));
      ref.kind = TableRef::Kind::kNamed;
    }
    if (MatchKeyword("AS")) {
      DS_ASSIGN_OR_RETURN(ref.alias, ExpectIdent("alias"));
    } else if (Peek().kind == TokenKind::kIdent && !IsReserved(Peek())) {
      ref.alias = Advance().text;
    }
    return ref;
  }

  /// Reads a cell or range reference: `A1`, `A1:D100`, `Sheet2!B3`,
  /// `Sheet2!A1:D100`, or any of those as a quoted string.
  Result<std::string> ParseCellRefText(bool allow_range) {
    const Token& t = Peek();
    if (t.kind == TokenKind::kString) {
      ++pos_;
      return t.text;
    }
    DS_ASSIGN_OR_RETURN(std::string first, ExpectIdent("cell reference"));
    std::string out = first;
    if (MatchSymbol("!")) {
      DS_ASSIGN_OR_RETURN(std::string cell, ExpectIdent("cell reference"));
      out += "!" + cell;
    }
    if (allow_range && MatchSymbol(":")) {
      DS_ASSIGN_OR_RETURN(std::string end, ExpectIdent("range end"));
      out += ":" + end;
    }
    return out;
  }

  Result<Statement> ParseInsert() {
    Advance();  // INSERT
    DS_RETURN_IF_ERROR(ExpectKeyword("INTO"));
    InsertStmt stmt;
    DS_ASSIGN_OR_RETURN(stmt.table, ExpectIdent("table name"));
    if (MatchSymbol("(")) {
      do {
        DS_ASSIGN_OR_RETURN(std::string col, ExpectIdent("column name"));
        stmt.columns.push_back(std::move(col));
      } while (MatchSymbol(","));
      DS_RETURN_IF_ERROR(ExpectSymbol(")"));
    }
    if (MatchKeyword("VALUES")) {
      do {
        DS_RETURN_IF_ERROR(ExpectSymbol("("));
        std::vector<ExprPtr> row;
        do {
          DS_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
          row.push_back(std::move(e));
        } while (MatchSymbol(","));
        DS_RETURN_IF_ERROR(ExpectSymbol(")"));
        stmt.values.push_back(std::move(row));
      } while (MatchSymbol(","));
    } else if (IsKeyword("SELECT")) {
      DS_ASSIGN_OR_RETURN(SelectStmt sel, ParseSelect());
      stmt.select = std::make_unique<SelectStmt>(std::move(sel));
    } else {
      return Status::ParseError("INSERT expects VALUES or SELECT");
    }
    return Statement(std::move(stmt));
  }

  Result<Statement> ParseUpdate() {
    Advance();  // UPDATE
    UpdateStmt stmt;
    DS_ASSIGN_OR_RETURN(stmt.table, ExpectIdent("table name"));
    DS_RETURN_IF_ERROR(ExpectKeyword("SET"));
    do {
      DS_ASSIGN_OR_RETURN(std::string col, ExpectIdent("column name"));
      DS_RETURN_IF_ERROR(ExpectSymbol("="));
      DS_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      stmt.assignments.emplace_back(std::move(col), std::move(e));
    } while (MatchSymbol(","));
    if (MatchKeyword("WHERE")) {
      DS_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
    }
    return Statement(std::move(stmt));
  }

  Result<Statement> ParseDelete() {
    Advance();  // DELETE
    DS_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    DeleteStmt stmt;
    DS_ASSIGN_OR_RETURN(stmt.table, ExpectIdent("table name"));
    if (MatchKeyword("WHERE")) {
      DS_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
    }
    return Statement(std::move(stmt));
  }

  Result<ColumnSpec> ParseColumnSpec() {
    ColumnSpec spec;
    DS_ASSIGN_OR_RETURN(spec.name, ExpectIdent("column name"));
    DS_ASSIGN_OR_RETURN(std::string type_name, ExpectIdent("type name"));
    auto type = DataTypeFromName(type_name);
    if (!type) {
      return Status::ParseError("unknown type '" + type_name + "'");
    }
    spec.type = *type;
    if (MatchKeyword("PRIMARY")) {
      DS_RETURN_IF_ERROR(ExpectKeyword("KEY"));
      spec.primary_key = true;
    }
    return spec;
  }

  Result<Statement> ParseCreateTable() {
    Advance();  // CREATE
    DS_RETURN_IF_ERROR(ExpectKeyword("TABLE"));
    CreateTableStmt stmt;
    if (MatchKeyword("IF")) {
      DS_RETURN_IF_ERROR(ExpectKeyword("NOT"));
      DS_RETURN_IF_ERROR(ExpectKeyword("EXISTS"));
      stmt.if_not_exists = true;
    }
    DS_ASSIGN_OR_RETURN(stmt.table, ExpectIdent("table name"));
    DS_RETURN_IF_ERROR(ExpectSymbol("("));
    do {
      DS_ASSIGN_OR_RETURN(ColumnSpec spec, ParseColumnSpec());
      stmt.columns.push_back(std::move(spec));
    } while (MatchSymbol(","));
    DS_RETURN_IF_ERROR(ExpectSymbol(")"));
    return Statement(std::move(stmt));
  }

  Result<Statement> ParseDropTable() {
    Advance();  // DROP
    DS_RETURN_IF_ERROR(ExpectKeyword("TABLE"));
    DropTableStmt stmt;
    if (MatchKeyword("IF")) {
      DS_RETURN_IF_ERROR(ExpectKeyword("EXISTS"));
      stmt.if_exists = true;
    }
    DS_ASSIGN_OR_RETURN(stmt.table, ExpectIdent("table name"));
    return Statement(std::move(stmt));
  }

  Result<Statement> ParseAlterTable() {
    Advance();  // ALTER
    DS_RETURN_IF_ERROR(ExpectKeyword("TABLE"));
    AlterTableStmt stmt;
    DS_ASSIGN_OR_RETURN(stmt.table, ExpectIdent("table name"));
    if (MatchKeyword("ADD")) {
      (void)MatchKeyword("COLUMN");
      stmt.action = AlterTableStmt::Action::kAddColumn;
      DS_ASSIGN_OR_RETURN(stmt.new_column, ParseColumnSpec());
      if (MatchKeyword("DEFAULT")) {
        DS_ASSIGN_OR_RETURN(stmt.default_value, ParseExpr());
      }
    } else if (MatchKeyword("DROP")) {
      (void)MatchKeyword("COLUMN");
      stmt.action = AlterTableStmt::Action::kDropColumn;
      DS_ASSIGN_OR_RETURN(stmt.column_name, ExpectIdent("column name"));
    } else if (MatchKeyword("RENAME")) {
      (void)MatchKeyword("COLUMN");
      stmt.action = AlterTableStmt::Action::kRenameColumn;
      DS_ASSIGN_OR_RETURN(stmt.column_name, ExpectIdent("column name"));
      DS_RETURN_IF_ERROR(ExpectKeyword("TO"));
      DS_ASSIGN_OR_RETURN(stmt.new_name, ExpectIdent("new column name"));
    } else {
      return Status::ParseError("ALTER TABLE expects ADD, DROP, or RENAME");
    }
    return Statement(std::move(stmt));
  }

  // ---- expressions (precedence climbing) ----
  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    DS_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (MatchKeyword("OR")) {
      DS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = MakeBinary("OR", std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    DS_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
    while (MatchKeyword("AND")) {
      DS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
      lhs = MakeBinary("AND", std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseNot() {
    if (MatchKeyword("NOT")) {
      DS_ASSIGN_OR_RETURN(ExprPtr arg, ParseNot());
      return MakeUnary("NOT", std::move(arg));
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    DS_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
    // IS [NOT] NULL
    if (MatchKeyword("IS")) {
      bool negated = MatchKeyword("NOT");
      DS_RETURN_IF_ERROR(ExpectKeyword("NULL"));
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kIsNull;
      e->negated = negated;
      e->args.push_back(std::move(lhs));
      return ExprPtr(std::move(e));
    }
    // [NOT] IN / [NOT] LIKE / [NOT] BETWEEN
    bool negated = false;
    if (IsKeyword("NOT") &&
        (IsKeyword("IN", 1) || IsKeyword("LIKE", 1) || IsKeyword("BETWEEN", 1))) {
      Advance();
      negated = true;
    }
    if (MatchKeyword("IN")) {
      DS_RETURN_IF_ERROR(ExpectSymbol("("));
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kInList;
      e->negated = negated;
      e->args.push_back(std::move(lhs));
      do {
        DS_ASSIGN_OR_RETURN(ExprPtr item, ParseExpr());
        e->args.push_back(std::move(item));
      } while (MatchSymbol(","));
      DS_RETURN_IF_ERROR(ExpectSymbol(")"));
      return ExprPtr(std::move(e));
    }
    if (MatchKeyword("LIKE")) {
      DS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
      ExprPtr like = MakeBinary("LIKE", std::move(lhs), std::move(rhs));
      if (negated) return MakeUnary("NOT", std::move(like));
      return like;
    }
    if (MatchKeyword("BETWEEN")) {
      DS_ASSIGN_OR_RETURN(ExprPtr lo, ParseAdditive());
      DS_RETURN_IF_ERROR(ExpectKeyword("AND"));
      DS_ASSIGN_OR_RETURN(ExprPtr hi, ParseAdditive());
      // Desugar: lhs BETWEEN lo AND hi  ==>  lhs >= lo AND lhs <= hi
      ExprPtr lhs2 = lhs->Clone();
      ExprPtr range = MakeBinary(
          "AND", MakeBinary(">=", std::move(lhs), std::move(lo)),
          MakeBinary("<=", std::move(lhs2), std::move(hi)));
      if (negated) return MakeUnary("NOT", std::move(range));
      return range;
    }
    const Token& t = Peek();
    if (t.kind == TokenKind::kSymbol &&
        (t.text == "=" || t.text == "<>" || t.text == "!=" || t.text == "<" ||
         t.text == "<=" || t.text == ">" || t.text == ">=")) {
      std::string op = t.text == "!=" ? "<>" : t.text;
      Advance();
      DS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
      return MakeBinary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAdditive() {
    DS_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
    while (true) {
      const Token& t = Peek();
      if (t.kind == TokenKind::kSymbol &&
          (t.text == "+" || t.text == "-" || t.text == "||")) {
        std::string op = t.text;
        Advance();
        DS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
        lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
        continue;
      }
      return lhs;
    }
  }

  Result<ExprPtr> ParseMultiplicative() {
    DS_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    while (true) {
      const Token& t = Peek();
      if (t.kind == TokenKind::kSymbol &&
          (t.text == "*" || t.text == "/" || t.text == "%")) {
        std::string op = t.text;
        Advance();
        DS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
        lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
        continue;
      }
      return lhs;
    }
  }

  Result<ExprPtr> ParseUnary() {
    if (MatchSymbol("-")) {
      DS_ASSIGN_OR_RETURN(ExprPtr arg, ParseUnary());
      return MakeUnary("-", std::move(arg));
    }
    if (MatchSymbol("+")) return ParseUnary();
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kInt:
        Advance();
        return MakeLiteral(Value::Int(t.int_value));
      case TokenKind::kReal:
        Advance();
        return MakeLiteral(Value::Real(t.real_value));
      case TokenKind::kString:
        Advance();
        return MakeLiteral(Value::Text(t.text));
      case TokenKind::kSymbol:
        if (t.text == "(") {
          Advance();
          DS_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
          DS_RETURN_IF_ERROR(ExpectSymbol(")"));
          return inner;
        }
        break;
      case TokenKind::kIdent:
        return ParseIdentExpr();
      case TokenKind::kEnd:
        break;
    }
    return Status::ParseError("expected an expression before '" + t.text + "'");
  }

  Result<ExprPtr> ParseIdentExpr() {
    if (MatchKeyword("NULL")) return MakeLiteral(Value::Null());
    if (MatchKeyword("TRUE")) return MakeLiteral(Value::Bool(true));
    if (MatchKeyword("FALSE")) return MakeLiteral(Value::Bool(false));
    if (IsKeyword("CASE")) return ParseCase();
    // Remaining reserved words cannot start an expression ("SELECT FROM t").
    if (IsReserved(Peek()) && !IsKeyword("RANGEVALUE") &&
        !IsKeyword("RANGETABLE")) {
      return Status::ParseError("expected an expression before '" +
                                Peek().text + "'");
    }
    if (IsKeyword("RANGEVALUE")) {
      Advance();
      DS_RETURN_IF_ERROR(ExpectSymbol("("));
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kRangeValue;
      DS_ASSIGN_OR_RETURN(e->ref_text, ParseCellRefText(/*allow_range=*/false));
      DS_RETURN_IF_ERROR(ExpectSymbol(")"));
      return ExprPtr(std::move(e));
    }
    if (IsKeyword("RANGETABLE")) {
      return Status::ParseError(
          "RANGETABLE is only valid as a FROM source, not as an expression");
    }
    std::string first = Advance().text;
    // Function call?
    if (MatchSymbol("(")) {
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kFunction;
      e->op = ToUpper(first);
      if (MatchSymbol("*")) {
        e->star = true;
        DS_RETURN_IF_ERROR(ExpectSymbol(")"));
        return ExprPtr(std::move(e));
      }
      if (!MatchSymbol(")")) {
        // DISTINCT inside aggregates is not supported; surface a clear error.
        if (IsKeyword("DISTINCT")) {
          return Status::Unimplemented("DISTINCT inside aggregate functions");
        }
        do {
          DS_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
          e->args.push_back(std::move(arg));
        } while (MatchSymbol(","));
        DS_RETURN_IF_ERROR(ExpectSymbol(")"));
      }
      return ExprPtr(std::move(e));
    }
    // Qualified column: t.c
    if (MatchSymbol(".")) {
      DS_ASSIGN_OR_RETURN(std::string col, ExpectIdent("column name"));
      return MakeColumnRef(first, std::move(col));
    }
    return MakeColumnRef("", std::move(first));
  }

  Result<ExprPtr> ParseCase() {
    Advance();  // CASE
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kCase;
    if (!IsKeyword("WHEN")) {
      return Status::Unimplemented("simple CASE <expr> WHEN form; use "
                                   "CASE WHEN <cond> THEN ... END");
    }
    while (MatchKeyword("WHEN")) {
      DS_ASSIGN_OR_RETURN(ExprPtr cond, ParseExpr());
      DS_RETURN_IF_ERROR(ExpectKeyword("THEN"));
      DS_ASSIGN_OR_RETURN(ExprPtr then, ParseExpr());
      e->args.push_back(std::move(cond));
      e->args.push_back(std::move(then));
    }
    if (MatchKeyword("ELSE")) {
      DS_ASSIGN_OR_RETURN(ExprPtr els, ParseExpr());
      e->args.push_back(std::move(els));
    }
    DS_RETURN_IF_ERROR(ExpectKeyword("END"));
    return ExprPtr(std::move(e));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Statement> Parse(std::string_view sql) {
  DS_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

}  // namespace dataspread::sql
