#ifndef DATASPREAD_SQL_AST_H_
#define DATASPREAD_SQL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "types/data_type.h"
#include "types/value.h"

namespace dataspread::sql {

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class ExprKind {
  kLiteral,     ///< `literal`
  kColumnRef,   ///< `qualifier`.`column_name` (qualifier may be empty)
  kUnary,       ///< op in {"-", "NOT"}; one arg
  kBinary,      ///< op in {OR AND = <> < <= > >= + - * / % || LIKE}; two args
  kFunction,    ///< op = upper-cased name; args; `star` for COUNT(*)
  kIsNull,      ///< one arg; `negated` for IS NOT NULL
  kInList,      ///< args[0] IN (args[1..]); `negated` for NOT IN
  kRangeValue,  ///< RANGEVALUE(ref_text): scalar cell reference (paper §2.2)
  kCase,        ///< CASE WHEN a THEN b [WHEN..]* [ELSE e] END; args alternate
};

/// One SQL expression node. A single struct (rather than a class hierarchy)
/// keeps the binder/evaluator switch-based and the ownership obvious.
struct Expr {
  ExprKind kind;
  Value literal;                  // kLiteral
  std::string qualifier;          // kColumnRef: table alias, may be empty
  std::string column_name;        // kColumnRef
  std::string op;                 // operator text or upper-case function name
  std::vector<ExprPtr> args;
  bool negated = false;           // IS NOT NULL / NOT IN
  bool star = false;              // COUNT(*)
  std::string ref_text;           // kRangeValue: e.g. "A1" or "Sheet2!B3"

  // ---- Binder annotations (filled by exec/binder) ----
  int bound_column = -1;          // kColumnRef: offset into the input row
  int aggregate_index = -1;       // kFunction aggregates: slot in agg buffer

  /// Deep copy (parse trees are cached by the shared-computation layer).
  ExprPtr Clone() const;
  /// Diagnostic rendering, approximately re-parsable.
  std::string ToString() const;
};

ExprPtr MakeLiteral(Value v);
ExprPtr MakeColumnRef(std::string qualifier, std::string column);
ExprPtr MakeUnary(std::string op, ExprPtr arg);
ExprPtr MakeBinary(std::string op, ExprPtr lhs, ExprPtr rhs);

/// True if `name` (upper-case) is an aggregate function.
bool IsAggregateFunction(std::string_view name);

/// True if the expression tree contains an aggregate function call.
bool ContainsAggregate(const Expr& e);

// ---------------------------------------------------------------------------
// Table references and SELECT structure
// ---------------------------------------------------------------------------

enum class JoinType { kCross, kInner, kLeft, kNatural };

struct TableRef {
  enum class Kind { kNamed, kRangeTable };
  Kind kind = Kind::kNamed;
  std::string name;        // kNamed: table name
  std::string range_text;  // kRangeTable: e.g. "A1:D100" or "Sheet2!A1:D100"
  std::string alias;       // optional
  /// Display name used for qualified column resolution.
  std::string EffectiveName() const;
};

struct SelectStmt;

struct JoinClause {
  JoinType type = JoinType::kCross;
  TableRef table;
  ExprPtr on;  // null for CROSS / NATURAL
};

struct SelectItem {
  ExprPtr expr;          // null when star
  std::string alias;
  bool star = false;
  std::string star_qualifier;  // "t.*"
};

struct OrderItem {
  ExprPtr expr;
  bool descending = false;
};

struct SelectStmt {
  bool distinct = false;
  std::vector<SelectItem> items;
  std::optional<TableRef> from;
  std::vector<JoinClause> joins;
  ExprPtr where;
  std::vector<ExprPtr> group_by;
  ExprPtr having;
  std::vector<OrderItem> order_by;
  std::optional<int64_t> limit;
  std::optional<int64_t> offset;
};

// ---------------------------------------------------------------------------
// DML / DDL
// ---------------------------------------------------------------------------

struct InsertStmt {
  std::string table;
  std::vector<std::string> columns;          // empty = schema order
  std::vector<std::vector<ExprPtr>> values;  // VALUES rows
  std::unique_ptr<SelectStmt> select;        // INSERT ... SELECT
};

struct UpdateStmt {
  std::string table;
  std::vector<std::pair<std::string, ExprPtr>> assignments;
  ExprPtr where;
};

struct DeleteStmt {
  std::string table;
  ExprPtr where;
};

struct ColumnSpec {
  std::string name;
  dataspread::DataType type = dataspread::DataType::kText;
  bool primary_key = false;
};

struct CreateTableStmt {
  std::string table;
  std::vector<ColumnSpec> columns;
  bool if_not_exists = false;
};

struct DropTableStmt {
  std::string table;
  bool if_exists = false;
};

struct AlterTableStmt {
  enum class Action { kAddColumn, kDropColumn, kRenameColumn };
  std::string table;
  Action action = Action::kAddColumn;
  ColumnSpec new_column;    // kAddColumn
  ExprPtr default_value;    // kAddColumn, optional
  std::string column_name;  // kDropColumn / kRenameColumn (old name)
  std::string new_name;     // kRenameColumn
};

/// Transaction control: `BEGIN [TRANSACTION|WORK]`, `COMMIT [...]`,
/// `ROLLBACK [...]` (`ABORT` parses as kRollback). The statement carries no
/// payload — the Database layer owns the per-connection transaction state.
struct TransactionStmt {
  enum class Kind { kBegin, kCommit, kRollback };
  Kind kind = Kind::kBegin;
};

/// `LOCK TABLE <name>`: acquires the table's exclusive write latch for the
/// current transaction (error outside one) and installs the transaction's
/// undo journal, so subsequent direct Table-API writes are journaled and
/// ride the transaction's bracket. DML acquires latches implicitly; this
/// statement exists for callers that mix SQL transactions with direct
/// positional Table operations.
struct LockTableStmt {
  std::string table;
};

using Statement = std::variant<SelectStmt, InsertStmt, UpdateStmt, DeleteStmt,
                               CreateTableStmt, DropTableStmt, AlterTableStmt,
                               TransactionStmt, LockTableStmt>;

}  // namespace dataspread::sql

#endif  // DATASPREAD_SQL_AST_H_
