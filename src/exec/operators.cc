#include "exec/operators.h"

#include <algorithm>

#include "exec/expr_eval.h"

namespace dataspread {

// ---------------------------------------------------------------------------
// TableScanOp
// ---------------------------------------------------------------------------

TableScanOp::TableScanOp(const Table* table, size_t start, size_t count)
    : table_(table), start_(start), remaining_(count) {}

Status TableScanOp::Open() {
  next_pos_ = start_;
  batch_.clear();
  batch_index_ = 0;
  return Status::OK();
}

Result<bool> TableScanOp::Next(Row* out) {
  if (batch_index_ >= batch_.size()) {
    if (remaining_ == 0 || next_pos_ >= table_->num_rows()) return false;
    size_t want = std::min(kBatch, remaining_);
    batch_ = table_->GetWindow(next_pos_, want);
    if (batch_.empty()) return false;
    next_pos_ += batch_.size();
    remaining_ -= batch_.size();
    batch_index_ = 0;
  }
  *out = std::move(batch_[batch_index_++]);
  return true;
}

// ---------------------------------------------------------------------------
// FilterOp / ProjectOp
// ---------------------------------------------------------------------------

Result<bool> FilterOp::Next(Row* out) {
  while (true) {
    DS_ASSIGN_OR_RETURN(bool more, child_->Next(out));
    if (!more) return false;
    DS_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*predicate_, out));
    if (pass) return true;
  }
}

Result<bool> ProjectOp::Next(Row* out) {
  Row input;
  DS_ASSIGN_OR_RETURN(bool more, child_->Next(&input));
  if (!more) return false;
  out->clear();
  out->reserve(exprs_.size());
  for (const sql::Expr* e : exprs_) {
    DS_ASSIGN_OR_RETURN(Value v, EvalScalar(*e, &input));
    out->push_back(std::move(v));
  }
  return true;
}

// ---------------------------------------------------------------------------
// NestedLoopJoinOp
// ---------------------------------------------------------------------------

NestedLoopJoinOp::NestedLoopJoinOp(OperatorPtr left, OperatorPtr right,
                                   const sql::Expr* on, bool left_outer,
                                   size_t right_width)
    : left_(std::move(left)),
      right_(std::move(right)),
      on_(on),
      left_outer_(left_outer),
      right_width_(right_width) {}

Status NestedLoopJoinOp::Open() {
  DS_RETURN_IF_ERROR(left_->Open());
  DS_RETURN_IF_ERROR(right_->Open());
  right_rows_.clear();
  Row r;
  while (true) {
    auto more = right_->Next(&r);
    if (!more.ok()) return more.status();
    if (!more.value()) break;
    right_rows_.push_back(r);
  }
  have_left_ = false;
  return Status::OK();
}

Result<bool> NestedLoopJoinOp::Next(Row* out) {
  while (true) {
    if (!have_left_) {
      DS_ASSIGN_OR_RETURN(bool more, left_->Next(&left_row_));
      if (!more) return false;
      have_left_ = true;
      left_matched_ = false;
      right_index_ = 0;
    }
    while (right_index_ < right_rows_.size()) {
      const Row& r = right_rows_[right_index_++];
      Row combined = left_row_;
      combined.insert(combined.end(), r.begin(), r.end());
      if (on_ != nullptr) {
        DS_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*on_, &combined));
        if (!pass) continue;
      }
      left_matched_ = true;
      *out = std::move(combined);
      return true;
    }
    // Right side exhausted for this left row.
    have_left_ = false;
    if (left_outer_ && !left_matched_) {
      *out = left_row_;
      out->resize(out->size() + right_width_, Value::Null());
      return true;
    }
  }
}

// ---------------------------------------------------------------------------
// HashJoinOp
// ---------------------------------------------------------------------------

HashJoinOp::HashJoinOp(OperatorPtr left, OperatorPtr right,
                       std::vector<int> left_keys, std::vector<int> right_keys,
                       bool left_outer, size_t right_width)
    : left_(std::move(left)),
      right_(std::move(right)),
      left_keys_(std::move(left_keys)),
      right_keys_(std::move(right_keys)),
      left_outer_(left_outer),
      right_width_(right_width) {}

Status HashJoinOp::Open() {
  DS_RETURN_IF_ERROR(left_->Open());
  DS_RETURN_IF_ERROR(right_->Open());
  build_.clear();
  Row r;
  while (true) {
    auto more = right_->Next(&r);
    if (!more.ok()) return more.status();
    if (!more.value()) break;
    Row key;
    key.reserve(right_keys_.size());
    bool has_null = false;
    for (int k : right_keys_) {
      // Right-side key offsets are relative to the right input row.
      const Value& v = r[static_cast<size_t>(k)];
      if (v.is_null()) has_null = true;
      key.push_back(v);
    }
    if (has_null) continue;  // NULL keys never match
    build_[std::move(key)].push_back(r);
  }
  have_left_ = false;
  matches_ = nullptr;
  return Status::OK();
}

Result<bool> HashJoinOp::Next(Row* out) {
  while (true) {
    if (!have_left_) {
      DS_ASSIGN_OR_RETURN(bool more, left_->Next(&left_row_));
      if (!more) return false;
      have_left_ = true;
      left_matched_ = false;
      match_index_ = 0;
      Row key;
      key.reserve(left_keys_.size());
      bool has_null = false;
      for (int k : left_keys_) {
        const Value& v = left_row_[static_cast<size_t>(k)];
        if (v.is_null()) has_null = true;
        key.push_back(v);
      }
      if (has_null) {
        matches_ = nullptr;
      } else {
        auto it = build_.find(key);
        matches_ = it == build_.end() ? nullptr : &it->second;
      }
    }
    if (matches_ != nullptr && match_index_ < matches_->size()) {
      const Row& r = (*matches_)[match_index_++];
      *out = left_row_;
      out->insert(out->end(), r.begin(), r.end());
      left_matched_ = true;
      return true;
    }
    have_left_ = false;
    if (left_outer_ && !left_matched_) {
      *out = left_row_;
      out->resize(out->size() + right_width_, Value::Null());
      return true;
    }
  }
}

// ---------------------------------------------------------------------------
// HashAggregateOp
// ---------------------------------------------------------------------------

HashAggregateOp::HashAggregateOp(OperatorPtr child,
                                 std::vector<const sql::Expr*> group_exprs,
                                 std::vector<sql::Expr*> agg_calls,
                                 std::vector<const sql::Expr*> output_exprs,
                                 const sql::Expr* having)
    : child_(std::move(child)),
      group_exprs_(std::move(group_exprs)),
      agg_calls_(std::move(agg_calls)),
      output_exprs_(std::move(output_exprs)),
      having_(having) {}

Status HashAggregateOp::Open() {
  DS_RETURN_IF_ERROR(child_->Open());
  results_.clear();
  index_ = 0;

  struct Group {
    Row first_row;
    std::vector<AggState> states;
  };
  std::unordered_map<Row, Group, RowHash, RowEq> groups;
  std::vector<Row> group_order;  // deterministic output: first-seen order

  Row input;
  while (true) {
    auto more = child_->Next(&input);
    if (!more.ok()) return more.status();
    if (!more.value()) break;
    Row key;
    key.reserve(group_exprs_.size());
    for (const sql::Expr* g : group_exprs_) {
      auto v = EvalScalar(*g, &input);
      if (!v.ok()) return v.status();
      key.push_back(std::move(v).value());
    }
    auto it = groups.find(key);
    if (it == groups.end()) {
      Group g;
      g.first_row = input;
      g.states.reserve(agg_calls_.size());
      for (sql::Expr* call : agg_calls_) g.states.emplace_back(call);
      it = groups.emplace(key, std::move(g)).first;
      group_order.push_back(key);
    }
    for (AggState& s : it->second.states) {
      DS_RETURN_IF_ERROR(s.Update(input));
    }
  }

  // Global aggregate over empty input still yields one group.
  if (groups.empty() && group_exprs_.empty()) {
    Group g;
    for (sql::Expr* call : agg_calls_) g.states.emplace_back(call);
    groups.emplace(Row{}, std::move(g));
    group_order.push_back(Row{});
  }

  for (const Row& key : group_order) {
    Group& g = groups.at(key);
    std::vector<Value> agg_values;
    agg_values.reserve(g.states.size());
    for (const AggState& s : g.states) agg_values.push_back(s.Finalize());
    const Row* first = g.first_row.empty() ? nullptr : &g.first_row;
    if (having_ != nullptr) {
      auto pass = EvalPredicate(*having_, first, &agg_values);
      if (!pass.ok()) return pass.status();
      if (!pass.value()) continue;
    }
    Row out;
    out.reserve(output_exprs_.size());
    for (const sql::Expr* e : output_exprs_) {
      auto v = EvalScalar(*e, first, &agg_values);
      if (!v.ok()) return v.status();
      out.push_back(std::move(v).value());
    }
    results_.push_back(std::move(out));
  }
  return Status::OK();
}

Result<bool> HashAggregateOp::Next(Row* out) {
  if (index_ >= results_.size()) return false;
  *out = std::move(results_[index_++]);
  return true;
}

// ---------------------------------------------------------------------------
// SortOp
// ---------------------------------------------------------------------------

Status SortOp::Open() {
  DS_RETURN_IF_ERROR(child_->Open());
  rows_.clear();
  index_ = 0;
  Row r;
  while (true) {
    auto more = child_->Next(&r);
    if (!more.ok()) return more.status();
    if (!more.value()) break;
    rows_.push_back(std::move(r));
  }
  // Precompute key tuples, then sort indices for stability and cheap swaps.
  std::vector<Row> keys(rows_.size());
  for (size_t i = 0; i < rows_.size(); ++i) {
    keys[i].reserve(keys_.size());
    for (const Key& k : keys_) {
      auto v = EvalScalar(*k.expr, &rows_[i]);
      if (!v.ok()) return v.status();
      keys[i].push_back(std::move(v).value());
    }
  }
  std::vector<size_t> order(rows_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    for (size_t k = 0; k < keys_.size(); ++k) {
      int c = Value::Compare(keys[a][k], keys[b][k]);
      if (c != 0) return keys_[k].descending ? c > 0 : c < 0;
    }
    return false;
  });
  std::vector<Row> sorted;
  sorted.reserve(rows_.size());
  for (size_t i : order) sorted.push_back(std::move(rows_[i]));
  rows_ = std::move(sorted);
  return Status::OK();
}

Result<bool> SortOp::Next(Row* out) {
  if (index_ >= rows_.size()) return false;
  *out = std::move(rows_[index_++]);
  return true;
}

// ---------------------------------------------------------------------------
// LimitOp / DistinctOp
// ---------------------------------------------------------------------------

Status LimitOp::Open() {
  emitted_ = 0;
  DS_RETURN_IF_ERROR(child_->Open());
  Row scratch;
  for (int64_t i = 0; i < offset_; ++i) {
    auto more = child_->Next(&scratch);
    if (!more.ok()) return more.status();
    if (!more.value()) break;
  }
  return Status::OK();
}

Result<bool> LimitOp::Next(Row* out) {
  if (limit_ >= 0 && emitted_ >= limit_) return false;
  DS_ASSIGN_OR_RETURN(bool more, child_->Next(out));
  if (!more) return false;
  ++emitted_;
  return true;
}

Result<bool> DistinctOp::Next(Row* out) {
  while (true) {
    DS_ASSIGN_OR_RETURN(bool more, child_->Next(out));
    if (!more) return false;
    auto [it, inserted] = seen_.emplace(*out, true);
    (void)it;
    if (inserted) return true;
  }
}

// ---------------------------------------------------------------------------

Result<std::vector<Row>> Materialize(Operator* op) {
  DS_RETURN_IF_ERROR(op->Open());
  std::vector<Row> out;
  Row r;
  while (true) {
    DS_ASSIGN_OR_RETURN(bool more, op->Next(&r));
    if (!more) break;
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace dataspread
