#include "exec/operators.h"

#include <algorithm>

#include "exec/expr_eval.h"

namespace dataspread {

namespace {

/// Appends one row-major tuple plus `right` (or NULL padding) to `out`
/// column-wise — the join emit path.
void AppendJoined(RowBatch* out, const Row& left, const Row* right,
                  size_t right_width) {
  size_t lw = left.size();
  for (size_t c = 0; c < lw; ++c) out->column(c).push_back(left[c]);
  if (right != nullptr) {
    for (size_t c = 0; c < right_width; ++c) {
      out->column(lw + c).push_back((*right)[c]);
    }
  } else {
    for (size_t c = 0; c < right_width; ++c) {
      out->column(lw + c).push_back(Value::Null());
    }
  }
  out->set_size(out->size() + 1);
}

}  // namespace

// ---------------------------------------------------------------------------
// TableScanOp
// ---------------------------------------------------------------------------

TableScanOp::TableScanOp(const Table* table, size_t start, size_t count,
                         size_t row_batch_hint)
    : table_(table),
      start_(start),
      remaining_(count),
      row_batch_hint_(row_batch_hint == 0 ? kDefaultExecBatchSize
                                          : row_batch_hint) {}

Status TableScanOp::Open() {
  next_pos_ = start_;
  batch_.clear();
  batch_index_ = 0;
  return Status::OK();
}

void TableScanOp::SetWindow(size_t start, size_t count) {
  start_ = start;
  remaining_ = count;
  next_pos_ = start;
  batch_.clear();
  batch_index_ = 0;
}

Result<bool> TableScanOp::Next(Row* out) {
  if (batch_index_ >= batch_.size()) {
    if (remaining_ == 0 || next_pos_ >= table_->num_rows()) return false;
    size_t want = std::min(row_batch_hint_, remaining_);
    batch_ = table_->GetWindow(next_pos_, want);
    if (batch_.empty()) return false;
    next_pos_ += batch_.size();
    remaining_ -= batch_.size();
    batch_index_ = 0;
  }
  *out = std::move(batch_[batch_index_++]);
  return true;
}

Result<bool> TableScanOp::Next(RowBatch* out) {
  size_t ncols = table_->schema().num_columns();
  out->Reset(ncols);
  if (remaining_ == 0 || next_pos_ >= table_->num_rows()) return false;
  size_t want = std::min({out->capacity(), remaining_,
                          table_->num_rows() - next_pos_});
  size_t filled = 0;
  DS_RETURN_IF_ERROR(table_->VisitWindow(
      next_pos_, want, [&](size_t, const Value* values) {
        for (size_t c = 0; c < ncols; ++c) {
          out->column(c).push_back(values[c]);
        }
        ++filled;
      }));
  out->set_size(filled);
  next_pos_ += filled;
  remaining_ -= filled;
  return filled > 0;
}

// ---------------------------------------------------------------------------
// RowsScanOp
// ---------------------------------------------------------------------------

Result<bool> RowsScanOp::Next(RowBatch* out) {
  if (index_ >= rows_->size()) {
    out->Reset(0);
    return false;
  }
  out->Reset((*rows_)[index_].size());
  while (index_ < rows_->size() && !out->full()) {
    out->AppendRowMove(std::move((*rows_)[index_++]));
  }
  return out->size() > 0;
}

// ---------------------------------------------------------------------------
// FilterOp / ProjectOp
// ---------------------------------------------------------------------------

Result<bool> FilterOp::Next(Row* out) {
  while (true) {
    DS_ASSIGN_OR_RETURN(bool more, child_->Next(out));
    if (!more) return false;
    DS_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*predicate_, out));
    if (pass) return true;
  }
}

Result<bool> FilterOp::Next(RowBatch* out) {
  while (true) {
    DS_ASSIGN_OR_RETURN(bool more, child_->Next(out));
    if (!more) return false;
    const std::vector<uint32_t>& active =
        out->ActivePositions(&scratch_positions_);
    std::vector<uint32_t> passing;
    DS_RETURN_IF_ERROR(EvalPredicateBatch(*predicate_, *out, active, &passing));
    out->SetSelection(std::move(passing));
    if (out->ActiveSize() > 0) return true;
  }
}

Result<bool> ProjectOp::Next(Row* out) {
  Row input;
  DS_ASSIGN_OR_RETURN(bool more, child_->Next(&input));
  if (!more) return false;
  out->clear();
  out->reserve(exprs_.size());
  for (const sql::Expr* e : exprs_) {
    DS_ASSIGN_OR_RETURN(Value v, EvalScalar(*e, &input));
    out->push_back(std::move(v));
  }
  return true;
}

Result<bool> ProjectOp::Next(RowBatch* out) {
  input_.set_capacity(out->capacity());
  DS_ASSIGN_OR_RETURN(bool more, child_->Next(&input_));
  if (!more) return false;
  const std::vector<uint32_t>& active =
      input_.ActivePositions(&scratch_positions_);
  out->Reset(exprs_.size());
  for (size_t c = 0; c < exprs_.size(); ++c) {
    DS_RETURN_IF_ERROR(EvalScalarBatch(*exprs_[c], input_, active,
                                       &out->column(c)));
  }
  out->set_size(input_.size());
  if (input_.has_selection()) out->SetSelection(input_.selection());
  return true;
}

// ---------------------------------------------------------------------------
// NestedLoopJoinOp
// ---------------------------------------------------------------------------

NestedLoopJoinOp::NestedLoopJoinOp(OperatorPtr left, OperatorPtr right,
                                   const sql::Expr* on, bool left_outer,
                                   size_t right_width)
    : left_(std::move(left)),
      right_(std::move(right)),
      on_(on),
      left_outer_(left_outer),
      right_width_(right_width) {}

Status NestedLoopJoinOp::Open() {
  DS_RETURN_IF_ERROR(left_->Open());
  DS_RETURN_IF_ERROR(right_->Open());
  right_built_ = false;
  right_rows_.clear();
  have_left_ = false;
  left_positions_.clear();
  left_cursor_ = 0;
  return Status::OK();
}

Status NestedLoopJoinOp::BuildRightRows() {
  Row r;
  while (true) {
    auto more = right_->Next(&r);
    if (!more.ok()) return more.status();
    if (!more.value()) break;
    right_rows_.push_back(r);
  }
  return Status::OK();
}

Status NestedLoopJoinOp::BuildRightBatched(size_t batch_size) {
  RowBatch b(batch_size);
  std::vector<uint32_t> scratch;
  while (true) {
    auto more = right_->Next(&b);
    if (!more.ok()) return more.status();
    if (!more.value()) break;
    const std::vector<uint32_t>& active = b.ActivePositions(&scratch);
    for (uint32_t p : active) right_rows_.push_back(b.MoveRow(p));
  }
  return Status::OK();
}

Result<bool> NestedLoopJoinOp::Next(Row* out) {
  if (!right_built_) {
    DS_RETURN_IF_ERROR(BuildRightRows());
    right_built_ = true;
  }
  while (true) {
    if (!have_left_) {
      DS_ASSIGN_OR_RETURN(bool more, left_->Next(&left_row_));
      if (!more) return false;
      have_left_ = true;
      left_matched_ = false;
      right_index_ = 0;
    }
    while (right_index_ < right_rows_.size()) {
      const Row& r = right_rows_[right_index_++];
      Row combined = left_row_;
      combined.insert(combined.end(), r.begin(), r.end());
      if (on_ != nullptr) {
        DS_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*on_, &combined));
        if (!pass) continue;
      }
      left_matched_ = true;
      *out = std::move(combined);
      return true;
    }
    // Right side exhausted for this left row.
    have_left_ = false;
    if (left_outer_ && !left_matched_) {
      *out = left_row_;
      out->resize(out->size() + right_width_, Value::Null());
      return true;
    }
  }
}

Result<bool> NestedLoopJoinOp::AdvanceLeftBatched() {
  while (left_cursor_ >= left_positions_.size()) {
    DS_ASSIGN_OR_RETURN(bool more, left_->Next(&left_batch_));
    if (!more) return false;
    std::vector<uint32_t> scratch;
    const std::vector<uint32_t>& active = left_batch_.ActivePositions(&scratch);
    left_positions_.assign(active.begin(), active.end());
    left_cursor_ = 0;
  }
  left_row_ = left_batch_.MaterializeRow(left_positions_[left_cursor_++]);
  have_left_ = true;
  left_matched_ = false;
  right_index_ = 0;
  return true;
}

Result<bool> NestedLoopJoinOp::Next(RowBatch* out) {
  if (!right_built_) {
    left_batch_.set_capacity(out->capacity());
    DS_RETURN_IF_ERROR(BuildRightBatched(out->capacity()));
    right_built_ = true;
  }
  bool shaped = false;
  if (have_left_) {  // resuming mid-left-row from a previous full batch
    out->Reset(left_row_.size() + right_width_);
    shaped = true;
  }
  while (true) {
    if (!have_left_) {
      DS_ASSIGN_OR_RETURN(bool more, AdvanceLeftBatched());
      if (!more) break;
      if (!shaped) {
        out->Reset(left_row_.size() + right_width_);
        shaped = true;
      }
    }
    size_t lw = left_row_.size();
    while (right_index_ < right_rows_.size()) {
      // A previous left row may have left the batch partially (or exactly)
      // full — size the chunk to the space that remains, never the whole
      // capacity, so the batch cannot overshoot mid-match-list.
      if (out->full()) return true;
      size_t chunk = std::min(right_rows_.size() - right_index_,
                              std::max<size_t>(out->capacity() - out->size(), 1));
      if (on_ != nullptr) {
        // Broadcast the left tuple against a chunk of right tuples and
        // filter the combined batch with one vectorized predicate pass.
        combined_.set_capacity(chunk);
        combined_.Reset(lw + right_width_);
        for (size_t i = 0; i < chunk; ++i) {
          const Row& r = right_rows_[right_index_ + i];
          for (size_t c = 0; c < lw; ++c) {
            combined_.column(c).push_back(left_row_[c]);
          }
          for (size_t c = 0; c < right_width_; ++c) {
            combined_.column(lw + c).push_back(r[c]);
          }
        }
        combined_.set_size(chunk);
        combined_positions_.resize(chunk);
        for (size_t i = 0; i < chunk; ++i) {
          combined_positions_[i] = static_cast<uint32_t>(i);
        }
        passing_.clear();
        DS_RETURN_IF_ERROR(EvalPredicateBatch(*on_, combined_,
                                              combined_positions_, &passing_));
        for (uint32_t p : passing_) {
          left_matched_ = true;
          for (size_t c = 0; c < lw + right_width_; ++c) {
            out->column(c).push_back(std::move(combined_.column(c)[p]));
          }
          out->set_size(out->size() + 1);
        }
      } else {
        for (size_t i = 0; i < chunk; ++i) {
          left_matched_ = true;
          AppendJoined(out, left_row_, &right_rows_[right_index_ + i],
                       right_width_);
        }
      }
      right_index_ += chunk;
      if (out->full()) return true;
    }
    have_left_ = false;
    if (left_outer_ && !left_matched_) {
      AppendJoined(out, left_row_, nullptr, right_width_);
      if (out->full()) return true;
    }
  }
  if (!shaped) out->Reset(0);
  return out->size() > 0;
}

// ---------------------------------------------------------------------------
// HashJoinOp
// ---------------------------------------------------------------------------

HashJoinOp::HashJoinOp(OperatorPtr left, OperatorPtr right,
                       std::vector<int> left_keys, std::vector<int> right_keys,
                       bool left_outer, size_t right_width)
    : left_(std::move(left)),
      right_(std::move(right)),
      left_keys_(std::move(left_keys)),
      right_keys_(std::move(right_keys)),
      left_outer_(left_outer),
      right_width_(right_width) {}

Status HashJoinOp::Open() {
  DS_RETURN_IF_ERROR(left_->Open());
  DS_RETURN_IF_ERROR(right_->Open());
  built_ = false;
  build_.clear();
  have_left_ = false;
  matches_ = nullptr;
  left_positions_.clear();
  left_cursor_ = 0;
  return Status::OK();
}

namespace {

/// Extracts the key tuple at `offsets` from `row`; false if any key is NULL
/// (NULL keys never join).
bool ExtractKey(const Row& row, const std::vector<int>& offsets, Row* key) {
  key->clear();
  key->reserve(offsets.size());
  for (int k : offsets) {
    const Value& v = row[static_cast<size_t>(k)];
    if (v.is_null()) return false;
    key->push_back(v);
  }
  return true;
}

}  // namespace

Status HashJoinOp::BuildRows() {
  Row r, key;
  while (true) {
    auto more = right_->Next(&r);
    if (!more.ok()) return more.status();
    if (!more.value()) break;
    if (!ExtractKey(r, right_keys_, &key)) continue;
    build_[key].push_back(r);
  }
  return Status::OK();
}

Status HashJoinOp::BuildBatched(size_t batch_size) {
  RowBatch b(batch_size);
  std::vector<uint32_t> scratch;
  Row key;
  while (true) {
    auto more = right_->Next(&b);
    if (!more.ok()) return more.status();
    if (!more.value()) break;
    const std::vector<uint32_t>& active = b.ActivePositions(&scratch);
    for (uint32_t p : active) {
      Row r = b.MoveRow(p);
      if (!ExtractKey(r, right_keys_, &key)) continue;
      build_[key].push_back(std::move(r));
    }
  }
  return Status::OK();
}

Result<bool> HashJoinOp::Next(Row* out) {
  if (!built_) {
    DS_RETURN_IF_ERROR(BuildRows());
    built_ = true;
  }
  while (true) {
    if (!have_left_) {
      DS_ASSIGN_OR_RETURN(bool more, left_->Next(&left_row_));
      if (!more) return false;
      have_left_ = true;
      left_matched_ = false;
      match_index_ = 0;
      Row key;
      if (!ExtractKey(left_row_, left_keys_, &key)) {
        matches_ = nullptr;
      } else {
        auto it = build_.find(key);
        matches_ = it == build_.end() ? nullptr : &it->second;
      }
    }
    if (matches_ != nullptr && match_index_ < matches_->size()) {
      const Row& r = (*matches_)[match_index_++];
      *out = left_row_;
      out->insert(out->end(), r.begin(), r.end());
      left_matched_ = true;
      return true;
    }
    have_left_ = false;
    if (left_outer_ && !left_matched_) {
      *out = left_row_;
      out->resize(out->size() + right_width_, Value::Null());
      return true;
    }
  }
}

Result<bool> HashJoinOp::AdvanceLeftBatched() {
  while (left_cursor_ >= left_positions_.size()) {
    DS_ASSIGN_OR_RETURN(bool more, left_->Next(&left_batch_));
    if (!more) return false;
    std::vector<uint32_t> scratch;
    const std::vector<uint32_t>& active = left_batch_.ActivePositions(&scratch);
    left_positions_.assign(active.begin(), active.end());
    left_cursor_ = 0;
  }
  left_row_ = left_batch_.MaterializeRow(left_positions_[left_cursor_++]);
  have_left_ = true;
  left_matched_ = false;
  match_index_ = 0;
  Row key;
  if (!ExtractKey(left_row_, left_keys_, &key)) {
    matches_ = nullptr;
  } else {
    auto it = build_.find(key);
    matches_ = it == build_.end() ? nullptr : &it->second;
  }
  return true;
}

Result<bool> HashJoinOp::Next(RowBatch* out) {
  if (!built_) {
    left_batch_.set_capacity(out->capacity());
    DS_RETURN_IF_ERROR(BuildBatched(out->capacity()));
    built_ = true;
  }
  bool shaped = false;
  if (have_left_) {
    out->Reset(left_row_.size() + right_width_);
    shaped = true;
  }
  while (true) {
    if (!have_left_) {
      DS_ASSIGN_OR_RETURN(bool more, AdvanceLeftBatched());
      if (!more) break;
      if (!shaped) {
        out->Reset(left_row_.size() + right_width_);
        shaped = true;
      }
    }
    while (matches_ != nullptr && match_index_ < matches_->size()) {
      AppendJoined(out, left_row_, &(*matches_)[match_index_++], right_width_);
      left_matched_ = true;
      if (out->full()) return true;
    }
    have_left_ = false;
    if (left_outer_ && !left_matched_) {
      AppendJoined(out, left_row_, nullptr, right_width_);
      if (out->full()) return true;
    }
  }
  if (!shaped) out->Reset(0);
  return out->size() > 0;
}

// ---------------------------------------------------------------------------
// HashAggregateOp
// ---------------------------------------------------------------------------

HashAggregateOp::HashAggregateOp(OperatorPtr child,
                                 std::vector<const sql::Expr*> group_exprs,
                                 std::vector<sql::Expr*> agg_calls,
                                 std::vector<const sql::Expr*> output_exprs,
                                 const sql::Expr* having)
    : child_(std::move(child)),
      group_exprs_(std::move(group_exprs)),
      agg_calls_(std::move(agg_calls)),
      output_exprs_(std::move(output_exprs)),
      having_(having) {}

Status HashAggregateOp::Open() {
  DS_RETURN_IF_ERROR(child_->Open());
  built_ = false;
  results_.clear();
  index_ = 0;
  return Status::OK();
}

Status HashAggregateOp::BuildRows() {
  GroupMap groups;
  std::vector<Row> group_order;  // deterministic output: first-seen order

  Row input;
  while (true) {
    auto more = child_->Next(&input);
    if (!more.ok()) return more.status();
    if (!more.value()) break;
    Row key;
    key.reserve(group_exprs_.size());
    for (const sql::Expr* g : group_exprs_) {
      auto v = EvalScalar(*g, &input);
      if (!v.ok()) return v.status();
      key.push_back(std::move(v).value());
    }
    auto it = groups.find(key);
    if (it == groups.end()) {
      Group g;
      g.first_row = input;
      g.states.reserve(agg_calls_.size());
      for (sql::Expr* call : agg_calls_) g.states.emplace_back(call);
      it = groups.emplace(key, std::move(g)).first;
      group_order.push_back(key);
    }
    for (AggState& s : it->second.states) {
      DS_RETURN_IF_ERROR(s.Update(input));
    }
  }
  return ExtractResults(&groups, &group_order);
}

Status HashAggregateOp::BuildBatched(size_t batch_size) {
  GroupMap groups;
  std::vector<Row> group_order;

  input_.set_capacity(batch_size);
  std::vector<uint32_t> scratch;
  std::vector<std::vector<Value>> group_vals(group_exprs_.size());
  std::vector<std::vector<Value>> arg_vals(agg_calls_.size());
  while (true) {
    auto more = child_->Next(&input_);
    if (!more.ok()) return more.status();
    if (!more.value()) break;
    const std::vector<uint32_t>& active = input_.ActivePositions(&scratch);
    // One vectorized pass per group key and per aggregate argument.
    for (size_t g = 0; g < group_exprs_.size(); ++g) {
      DS_RETURN_IF_ERROR(EvalScalarBatch(*group_exprs_[g], input_, active,
                                         &group_vals[g]));
    }
    for (size_t a = 0; a < agg_calls_.size(); ++a) {
      const sql::Expr* call = agg_calls_[a];
      if (call->op == "COUNT" && call->star) continue;  // COUNT(*): no arg
      DS_RETURN_IF_ERROR(EvalScalarBatch(*call->args[0], input_, active,
                                         &arg_vals[a]));
    }
    Row key;
    for (uint32_t p : active) {
      key.clear();
      key.reserve(group_exprs_.size());
      for (const auto& gv : group_vals) key.push_back(gv[p]);
      auto it = groups.find(key);
      if (it == groups.end()) {
        Group g;
        g.first_row = input_.MaterializeRow(p);
        g.states.reserve(agg_calls_.size());
        for (sql::Expr* call : agg_calls_) g.states.emplace_back(call);
        it = groups.emplace(key, std::move(g)).first;
        group_order.push_back(it->first);
      }
      for (size_t a = 0; a < agg_calls_.size(); ++a) {
        AggState& s = it->second.states[a];
        if (s.needs_arg()) {
          DS_RETURN_IF_ERROR(s.UpdateValue(arg_vals[a][p]));
        } else {
          s.UpdateStar();
        }
      }
    }
  }
  return ExtractResults(&groups, &group_order);
}

Status FinalizeAggregateGroups(
    const std::vector<const sql::Expr*>& output_exprs, const sql::Expr* having,
    const std::vector<AggGroup*>& groups, std::vector<Row>* results) {
  for (AggGroup* g : groups) {
    std::vector<Value> agg_values;
    agg_values.reserve(g->states.size());
    for (const AggState& s : g->states) agg_values.push_back(s.Finalize());
    const Row* first = g->first_row.empty() ? nullptr : &g->first_row;
    if (having != nullptr) {
      auto pass = EvalPredicate(*having, first, &agg_values);
      if (!pass.ok()) return pass.status();
      if (!pass.value()) continue;
    }
    Row out;
    out.reserve(output_exprs.size());
    for (const sql::Expr* e : output_exprs) {
      auto v = EvalScalar(*e, first, &agg_values);
      if (!v.ok()) return v.status();
      out.push_back(std::move(v).value());
    }
    results->push_back(std::move(out));
  }
  return Status::OK();
}

Status HashAggregateOp::ExtractResults(GroupMap* groups,
                                       std::vector<Row>* group_order) {
  // Global aggregate over empty input still yields one group.
  if (groups->empty() && group_exprs_.empty()) {
    Group g;
    for (sql::Expr* call : agg_calls_) g.states.emplace_back(call);
    groups->emplace(Row{}, std::move(g));
    group_order->push_back(Row{});
  }
  std::vector<AggGroup*> ordered;
  ordered.reserve(group_order->size());
  for (const Row& key : *group_order) ordered.push_back(&groups->at(key));
  return FinalizeAggregateGroups(output_exprs_, having_, ordered, &results_);
}

Result<bool> HashAggregateOp::Next(Row* out) {
  if (!built_) {
    DS_RETURN_IF_ERROR(BuildRows());
    built_ = true;
  }
  if (index_ >= results_.size()) return false;
  *out = std::move(results_[index_++]);
  return true;
}

Result<bool> HashAggregateOp::Next(RowBatch* out) {
  if (!built_) {
    DS_RETURN_IF_ERROR(BuildBatched(out->capacity()));
    built_ = true;
  }
  out->Reset(output_exprs_.size());
  while (index_ < results_.size() && !out->full()) {
    out->AppendRowMove(std::move(results_[index_++]));
  }
  return out->size() > 0;
}

// ---------------------------------------------------------------------------
// SortOp
// ---------------------------------------------------------------------------

Status SortOp::Open() {
  DS_RETURN_IF_ERROR(child_->Open());
  built_ = false;
  rows_.clear();
  index_ = 0;
  return Status::OK();
}

Status SortOp::BuildRows() {
  Row r;
  while (true) {
    auto more = child_->Next(&r);
    if (!more.ok()) return more.status();
    if (!more.value()) break;
    rows_.push_back(std::move(r));
  }
  std::vector<Row> keys(rows_.size());
  for (size_t i = 0; i < rows_.size(); ++i) {
    keys[i].reserve(keys_.size());
    for (const Key& k : keys_) {
      auto v = EvalScalar(*k.expr, &rows_[i]);
      if (!v.ok()) return v.status();
      keys[i].push_back(std::move(v).value());
    }
  }
  return SortCollected(std::move(keys));
}

Status SortOp::BuildBatched(size_t batch_size) {
  input_.set_capacity(batch_size);
  std::vector<Row> keys;
  std::vector<uint32_t> scratch;
  std::vector<std::vector<Value>> key_vals(keys_.size());
  while (true) {
    auto more = child_->Next(&input_);
    if (!more.ok()) return more.status();
    if (!more.value()) break;
    const std::vector<uint32_t>& active = input_.ActivePositions(&scratch);
    for (size_t k = 0; k < keys_.size(); ++k) {
      DS_RETURN_IF_ERROR(EvalScalarBatch(*keys_[k].expr, input_, active,
                                         &key_vals[k]));
    }
    for (uint32_t p : active) {
      Row kt;
      kt.reserve(keys_.size());
      for (auto& kv : key_vals) kt.push_back(std::move(kv[p]));
      keys.push_back(std::move(kt));
      rows_.push_back(input_.MoveRow(p));
    }
  }
  return SortCollected(std::move(keys));
}

Status SortOp::SortCollected(std::vector<Row> keys) {
  // Sort indices for stability and cheap swaps, then apply the permutation.
  std::vector<size_t> order(rows_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    for (size_t k = 0; k < keys_.size(); ++k) {
      int c = Value::Compare(keys[a][k], keys[b][k]);
      if (c != 0) return keys_[k].descending ? c > 0 : c < 0;
    }
    return false;
  });
  std::vector<Row> sorted;
  sorted.reserve(rows_.size());
  for (size_t i : order) sorted.push_back(std::move(rows_[i]));
  rows_ = std::move(sorted);
  return Status::OK();
}

Result<bool> SortOp::Next(Row* out) {
  if (!built_) {
    DS_RETURN_IF_ERROR(BuildRows());
    built_ = true;
  }
  if (index_ >= rows_.size()) return false;
  *out = std::move(rows_[index_++]);
  return true;
}

Result<bool> SortOp::Next(RowBatch* out) {
  if (!built_) {
    DS_RETURN_IF_ERROR(BuildBatched(out->capacity()));
    built_ = true;
  }
  if (index_ >= rows_.size()) {
    out->Reset(0);
    return false;
  }
  out->Reset(rows_[index_].size());
  while (index_ < rows_.size() && !out->full()) {
    out->AppendRowMove(std::move(rows_[index_++]));
  }
  return out->size() > 0;
}

// ---------------------------------------------------------------------------
// LimitOp / DistinctOp
// ---------------------------------------------------------------------------

Status LimitOp::Open() {
  emitted_ = 0;
  to_skip_ = offset_;
  skipped_ = offset_ <= 0;
  return child_->Open();
}

Result<bool> LimitOp::Next(Row* out) {
  if (!skipped_) {
    skipped_ = true;
    Row scratch;
    for (int64_t i = 0; i < to_skip_; ++i) {
      DS_ASSIGN_OR_RETURN(bool more, child_->Next(&scratch));
      if (!more) break;
    }
    to_skip_ = 0;
  }
  if (limit_ >= 0 && emitted_ >= limit_) return false;
  DS_ASSIGN_OR_RETURN(bool more, child_->Next(out));
  if (!more) return false;
  ++emitted_;
  return true;
}

Result<bool> LimitOp::Next(RowBatch* out) {
  std::vector<uint32_t> scratch;
  while (true) {
    if (limit_ >= 0 && emitted_ >= limit_) {
      out->Reset(out->num_columns());
      return false;
    }
    DS_ASSIGN_OR_RETURN(bool more, child_->Next(out));
    if (!more) return false;
    const std::vector<uint32_t>& active = out->ActivePositions(&scratch);
    size_t n = active.size();
    size_t drop = 0;
    if (!skipped_) {
      drop = std::min<size_t>(static_cast<size_t>(to_skip_), n);
      to_skip_ -= static_cast<int64_t>(drop);
      if (to_skip_ == 0) skipped_ = true;
    }
    size_t take = n - drop;
    if (limit_ >= 0) {
      take = std::min<size_t>(take, static_cast<size_t>(limit_ - emitted_));
    }
    if (take == 0) continue;  // whole batch consumed by the offset
    emitted_ += static_cast<int64_t>(take);
    if (drop == 0 && take == n) return true;  // pass through untouched
    std::vector<uint32_t> sel(active.begin() + static_cast<ptrdiff_t>(drop),
                              active.begin() + static_cast<ptrdiff_t>(drop) +
                                  static_cast<ptrdiff_t>(take));
    out->SetSelection(std::move(sel));
    return true;
  }
}

Result<bool> DistinctOp::Next(Row* out) {
  while (true) {
    DS_ASSIGN_OR_RETURN(bool more, child_->Next(out));
    if (!more) return false;
    auto [it, inserted] = seen_.emplace(*out, true);
    (void)it;
    if (inserted) return true;
  }
}

Result<bool> DistinctOp::Next(RowBatch* out) {
  while (true) {
    DS_ASSIGN_OR_RETURN(bool more, child_->Next(out));
    if (!more) return false;
    const std::vector<uint32_t>& active =
        out->ActivePositions(&scratch_positions_);
    std::vector<uint32_t> keep;
    for (uint32_t p : active) {
      auto [it, inserted] = seen_.emplace(out->MaterializeRow(p), true);
      (void)it;
      if (inserted) keep.push_back(p);
    }
    out->SetSelection(std::move(keep));
    if (out->ActiveSize() > 0) return true;
  }
}

// ---------------------------------------------------------------------------

Result<std::vector<Row>> Materialize(Operator* op) {
  DS_RETURN_IF_ERROR(op->Open());
  std::vector<Row> out;
  Row r;
  while (true) {
    DS_ASSIGN_OR_RETURN(bool more, op->Next(&r));
    if (!more) break;
    out.push_back(std::move(r));
  }
  return out;
}

Result<std::vector<Row>> MaterializeBatched(Operator* op, size_t batch_size) {
  DS_RETURN_IF_ERROR(op->Open());
  std::vector<Row> out;
  RowBatch batch(batch_size);
  std::vector<uint32_t> scratch;
  while (true) {
    DS_ASSIGN_OR_RETURN(bool more, op->Next(&batch));
    if (!more) break;
    const std::vector<uint32_t>& active = batch.ActivePositions(&scratch);
    for (uint32_t p : active) out.push_back(batch.MoveRow(p));
  }
  return out;
}

}  // namespace dataspread
