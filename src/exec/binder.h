#ifndef DATASPREAD_EXEC_BINDER_H_
#define DATASPREAD_EXEC_BINDER_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "exec/resolver.h"
#include "sql/ast.h"

namespace dataspread {

/// One relation participating in a query after source resolution: either a
/// catalog table or a materialized sheet range (`RANGETABLE`).
struct BoundSource {
  std::string display_name;            // alias or table name, original case
  std::vector<std::string> columns;    // attribute names
  const Table* table = nullptr;        // catalog table, or
  std::shared_ptr<RangeTableData> range;  // materialized range
  size_t num_columns() const { return columns.size(); }
};

/// Name-resolution scope: the concatenated columns of all bound sources.
/// `visible` is cleared on the right-hand duplicates of NATURAL JOIN shared
/// columns so `SELECT *` emits each shared attribute once.
struct Scope {
  struct Column {
    std::string qualifier;  // source display name
    std::string name;
    bool visible = true;
  };
  std::vector<Column> columns;

  /// Resolves `[qualifier.]name` to a global column offset.
  /// Unqualified lookups consider only visible columns; ambiguity is an error.
  Result<int> Resolve(std::string_view qualifier, std::string_view name) const;
};

/// Resolves a FROM source against the catalog / the sheet resolver.
Result<BoundSource> BindTableRef(const sql::TableRef& ref, Catalog& catalog,
                                 ExternalResolver* resolver);

/// Appends `source`'s columns to `scope`.
void AppendToScope(const BoundSource& source, Scope* scope);

/// Binds expression `e` in place against `scope`:
///  - column refs get `bound_column` global offsets,
///  - RANGEVALUE nodes are resolved through `resolver` and replaced by
///    literals (a query sees a consistent snapshot of referenced cells),
///  - function names are validated.
/// `allow_aggregates` rejects aggregate calls when false (e.g. WHERE).
Status BindExpr(sql::Expr* e, const Scope& scope, ExternalResolver* resolver,
                bool allow_aggregates);

}  // namespace dataspread

#endif  // DATASPREAD_EXEC_BINDER_H_
