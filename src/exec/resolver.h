#ifndef DATASPREAD_EXEC_RESOLVER_H_
#define DATASPREAD_EXEC_RESOLVER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "types/value.h"

namespace dataspread {

/// Materialized contents of a sheet range used as a relation
/// (`RANGETABLE(A1:D100)`).
struct RangeTableData {
  std::vector<std::string> columns;  ///< attribute names (inferred or headers)
  std::vector<Row> rows;
};

/// Bridges the query processor to the interface layer: resolves the paper's
/// positional-addressing constructs against the spreadsheet. The embedded
/// database itself knows nothing about sheets; the Interface Manager passes an
/// implementation whose reference frame is the cell containing the query
/// (relative addressing, Figure 2a).
class ExternalResolver {
 public:
  virtual ~ExternalResolver() = default;

  /// Scalar value of the cell named by `ref` (e.g. "B1", "Sheet2!C4").
  virtual Result<Value> ResolveRangeValue(const std::string& ref) = 0;

  /// Relation view of the range named by `ref` (e.g. "A1:D100").
  virtual Result<RangeTableData> ResolveRangeTable(const std::string& ref) = 0;
};

}  // namespace dataspread

#endif  // DATASPREAD_EXEC_RESOLVER_H_
