#include "exec/expr_eval.h"

#include <cmath>

#include "common/str_util.h"

namespace dataspread {

namespace {

using sql::Expr;
using sql::ExprKind;

/// Numeric addition/subtraction/multiplication preserving INT when both sides
/// are INT (with wrap-around like typical engines), REAL otherwise.
Result<Value> Arith(const std::string& op, const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  if (op == "||") {
    // String concatenation coerces displayable operands.
    return Value::Text(a.ToDisplayString() + b.ToDisplayString());
  }
  if (a.type() == DataType::kInt && b.type() == DataType::kInt) {
    int64_t x = a.int_value();
    int64_t y = b.int_value();
    if (op == "+") return Value::Int(x + y);
    if (op == "-") return Value::Int(x - y);
    if (op == "*") return Value::Int(x * y);
    if (op == "%") {
      if (y == 0) return Status::InvalidArgument("division by zero");
      return Value::Int(x % y);
    }
    if (op == "/") {
      if (y == 0) return Status::InvalidArgument("division by zero");
      if (x % y == 0) return Value::Int(x / y);
      return Value::Real(static_cast<double>(x) / static_cast<double>(y));
    }
  }
  DS_ASSIGN_OR_RETURN(double x, a.AsReal());
  DS_ASSIGN_OR_RETURN(double y, b.AsReal());
  if (op == "+") return Value::Real(x + y);
  if (op == "-") return Value::Real(x - y);
  if (op == "*") return Value::Real(x * y);
  if (op == "/") {
    if (y == 0.0) return Status::InvalidArgument("division by zero");
    return Value::Real(x / y);
  }
  if (op == "%") {
    if (y == 0.0) return Status::InvalidArgument("division by zero");
    return Value::Real(std::fmod(x, y));
  }
  return Status::Internal("unknown arithmetic operator " + op);
}

Result<Value> Compare(const std::string& op, const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  // Numeric-vs-text comparisons are type errors rather than silent falsity.
  bool numeric_mix = (a.is_numeric() && b.type() == DataType::kText) ||
                     (b.is_numeric() && a.type() == DataType::kText);
  if (numeric_mix) {
    return Status::TypeError("cannot compare " +
                             std::string(DataTypeName(a.type())) + " with " +
                             DataTypeName(b.type()));
  }
  int c = Value::Compare(a, b);
  if (op == "=") return Value::Bool(c == 0);
  if (op == "<>") return Value::Bool(c != 0);
  if (op == "<") return Value::Bool(c < 0);
  if (op == "<=") return Value::Bool(c <= 0);
  if (op == ">") return Value::Bool(c > 0);
  if (op == ">=") return Value::Bool(c >= 0);
  return Status::Internal("unknown comparison operator " + op);
}

Result<Value> EvalFunction(const Expr& e, const Row* input,
                           const std::vector<Value>* agg_values);

}  // namespace

bool LikeMatch(std::string_view text, std::string_view pattern) {
  // Iterative two-pointer match with backtracking on the last '%'.
  size_t t = 0, p = 0;
  size_t star_p = std::string_view::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

Result<Value> EvalScalar(const sql::Expr& e, const Row* input,
                         const std::vector<Value>* agg_values) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      return e.literal;
    case ExprKind::kColumnRef: {
      if (input == nullptr || e.bound_column < 0 ||
          static_cast<size_t>(e.bound_column) >= input->size()) {
        return Status::Internal("unbound column reference " + e.ToString());
      }
      return (*input)[static_cast<size_t>(e.bound_column)];
    }
    case ExprKind::kRangeValue:
      return Status::Internal("RANGEVALUE survived binding: " + e.ToString());
    case ExprKind::kUnary: {
      DS_ASSIGN_OR_RETURN(Value a, EvalScalar(*e.args[0], input, agg_values));
      if (e.op == "NOT") {
        if (a.is_null()) return Value::Null();
        DS_ASSIGN_OR_RETURN(bool b, a.AsBool());
        return Value::Bool(!b);
      }
      if (e.op == "-") {
        if (a.is_null()) return Value::Null();
        if (a.type() == DataType::kInt) return Value::Int(-a.int_value());
        DS_ASSIGN_OR_RETURN(double d, a.AsReal());
        return Value::Real(-d);
      }
      return Status::Internal("unknown unary operator " + e.op);
    }
    case ExprKind::kBinary: {
      // Three-valued AND/OR must not evaluate eagerly into errors when the
      // other side decides the result, so handle them with short-circuiting.
      if (e.op == "AND" || e.op == "OR") {
        DS_ASSIGN_OR_RETURN(Value a, EvalScalar(*e.args[0], input, agg_values));
        bool is_and = e.op == "AND";
        if (!a.is_null()) {
          DS_ASSIGN_OR_RETURN(bool av, a.AsBool());
          if (is_and && !av) return Value::Bool(false);
          if (!is_and && av) return Value::Bool(true);
        }
        DS_ASSIGN_OR_RETURN(Value b, EvalScalar(*e.args[1], input, agg_values));
        if (!b.is_null()) {
          DS_ASSIGN_OR_RETURN(bool bv, b.AsBool());
          if (is_and && !bv) return Value::Bool(false);
          if (!is_and && bv) return Value::Bool(true);
        }
        if (a.is_null() || b.is_null()) return Value::Null();
        return Value::Bool(is_and);
      }
      DS_ASSIGN_OR_RETURN(Value a, EvalScalar(*e.args[0], input, agg_values));
      DS_ASSIGN_OR_RETURN(Value b, EvalScalar(*e.args[1], input, agg_values));
      if (e.op == "+" || e.op == "-" || e.op == "*" || e.op == "/" ||
          e.op == "%" || e.op == "||") {
        return Arith(e.op, a, b);
      }
      if (e.op == "LIKE") {
        if (a.is_null() || b.is_null()) return Value::Null();
        if (a.type() != DataType::kText || b.type() != DataType::kText) {
          return Status::TypeError("LIKE expects TEXT operands");
        }
        return Value::Bool(LikeMatch(a.text_value(), b.text_value()));
      }
      return Compare(e.op, a, b);
    }
    case ExprKind::kIsNull: {
      DS_ASSIGN_OR_RETURN(Value a, EvalScalar(*e.args[0], input, agg_values));
      return Value::Bool(e.negated ? !a.is_null() : a.is_null());
    }
    case ExprKind::kInList: {
      DS_ASSIGN_OR_RETURN(Value needle, EvalScalar(*e.args[0], input, agg_values));
      if (needle.is_null()) return Value::Null();
      bool saw_null = false;
      for (size_t i = 1; i < e.args.size(); ++i) {
        DS_ASSIGN_OR_RETURN(Value item, EvalScalar(*e.args[i], input, agg_values));
        if (item.is_null()) {
          saw_null = true;
          continue;
        }
        if (item == needle) return Value::Bool(!e.negated);
      }
      if (saw_null) return Value::Null();
      return Value::Bool(e.negated);
    }
    case ExprKind::kCase: {
      size_t i = 0;
      for (; i + 1 < e.args.size(); i += 2) {
        DS_ASSIGN_OR_RETURN(Value cond, EvalScalar(*e.args[i], input, agg_values));
        if (!cond.is_null()) {
          DS_ASSIGN_OR_RETURN(bool b, cond.AsBool());
          if (b) return EvalScalar(*e.args[i + 1], input, agg_values);
        }
      }
      if (i < e.args.size()) return EvalScalar(*e.args[i], input, agg_values);
      return Value::Null();
    }
    case ExprKind::kFunction: {
      if (sql::IsAggregateFunction(e.op)) {
        if (agg_values == nullptr || e.aggregate_index < 0 ||
            static_cast<size_t>(e.aggregate_index) >= agg_values->size()) {
          return Status::Internal("aggregate " + e.op +
                                  " evaluated outside GROUP BY context");
        }
        return (*agg_values)[static_cast<size_t>(e.aggregate_index)];
      }
      return EvalFunction(e, input, agg_values);
    }
  }
  return Status::Internal("unhandled expression kind");
}

namespace {

Result<Value> EvalFunction(const Expr& e, const Row* input,
                           const std::vector<Value>* agg_values) {
  std::vector<Value> args;
  args.reserve(e.args.size());
  for (const sql::ExprPtr& a : e.args) {
    DS_ASSIGN_OR_RETURN(Value v, EvalScalar(*a, input, agg_values));
    args.push_back(std::move(v));
  }
  auto arity = [&](size_t lo, size_t hi) -> Status {
    if (args.size() < lo || args.size() > hi) {
      return Status::InvalidArgument(e.op + " expects " + std::to_string(lo) +
                                     (hi > lo ? ".." + std::to_string(hi) : "") +
                                     " arguments");
    }
    return Status::OK();
  };
  if (e.op == "ABS") {
    DS_RETURN_IF_ERROR(arity(1, 1));
    if (args[0].is_null()) return Value::Null();
    if (args[0].type() == DataType::kInt) {
      int64_t v = args[0].int_value();
      return Value::Int(v < 0 ? -v : v);
    }
    DS_ASSIGN_OR_RETURN(double d, args[0].AsReal());
    return Value::Real(std::fabs(d));
  }
  if (e.op == "ROUND") {
    DS_RETURN_IF_ERROR(arity(1, 2));
    if (args[0].is_null()) return Value::Null();
    DS_ASSIGN_OR_RETURN(double d, args[0].AsReal());
    int64_t digits = 0;
    if (args.size() == 2 && !args[1].is_null()) {
      DS_ASSIGN_OR_RETURN(digits, args[1].AsInt());
    }
    double scale = std::pow(10.0, static_cast<double>(digits));
    return Value::Real(std::round(d * scale) / scale);
  }
  if (e.op == "FLOOR" || e.op == "CEIL") {
    DS_RETURN_IF_ERROR(arity(1, 1));
    if (args[0].is_null()) return Value::Null();
    DS_ASSIGN_OR_RETURN(double d, args[0].AsReal());
    double r = e.op == "FLOOR" ? std::floor(d) : std::ceil(d);
    return Value::Int(static_cast<int64_t>(r));
  }
  if (e.op == "LOWER" || e.op == "UPPER") {
    DS_RETURN_IF_ERROR(arity(1, 1));
    if (args[0].is_null()) return Value::Null();
    std::string s = args[0].ToDisplayString();
    return Value::Text(e.op == "LOWER" ? ToLower(s) : ToUpper(s));
  }
  if (e.op == "LENGTH") {
    DS_RETURN_IF_ERROR(arity(1, 1));
    if (args[0].is_null()) return Value::Null();
    return Value::Int(static_cast<int64_t>(args[0].ToDisplayString().size()));
  }
  if (e.op == "SUBSTR") {
    DS_RETURN_IF_ERROR(arity(2, 3));
    if (args[0].is_null()) return Value::Null();
    std::string s = args[0].ToDisplayString();
    DS_ASSIGN_OR_RETURN(int64_t start, args[1].AsInt());  // 1-based
    int64_t len = static_cast<int64_t>(s.size());
    if (args.size() == 3 && !args[2].is_null()) {
      DS_ASSIGN_OR_RETURN(len, args[2].AsInt());
    }
    if (start < 1) start = 1;
    if (static_cast<size_t>(start) > s.size() || len <= 0) return Value::Text("");
    return Value::Text(s.substr(static_cast<size_t>(start - 1),
                                static_cast<size_t>(len)));
  }
  if (e.op == "TRIM") {
    DS_RETURN_IF_ERROR(arity(1, 1));
    if (args[0].is_null()) return Value::Null();
    return Value::Text(Trim(args[0].ToDisplayString()));
  }
  if (e.op == "COALESCE") {
    for (const Value& v : args) {
      if (!v.is_null()) return v;
    }
    return Value::Null();
  }
  if (e.op == "NULLIF") {
    DS_RETURN_IF_ERROR(arity(2, 2));
    if (!args[0].is_null() && !args[1].is_null() && args[0] == args[1]) {
      return Value::Null();
    }
    return args[0];
  }
  if (e.op == "CONCAT") {
    std::string out;
    for (const Value& v : args) out += v.ToDisplayString();
    return Value::Text(std::move(out));
  }
  return Status::NotFound("unknown function " + e.op);
}

}  // namespace

Result<bool> EvalPredicate(const sql::Expr& e, const Row* input,
                           const std::vector<Value>* agg_values) {
  DS_ASSIGN_OR_RETURN(Value v, EvalScalar(e, input, agg_values));
  if (v.is_null()) return false;
  return v.AsBool();
}

}  // namespace dataspread
