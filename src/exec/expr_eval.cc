#include "exec/expr_eval.h"

#include <cmath>

#include "common/str_util.h"

namespace dataspread {

namespace {

using sql::Expr;
using sql::ExprKind;

/// Binary operators as a dense code so the batch evaluator can resolve the
/// string once per node per batch; the scalar path resolves per call (the
/// same string compares it always did).
enum class BinOpCode {
  kAdd, kSub, kMul, kDiv, kMod, kConcat,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kLike, kAnd, kOr, kUnknown,
};

BinOpCode ResolveBinOp(const std::string& op) {
  if (op == "+") return BinOpCode::kAdd;
  if (op == "-") return BinOpCode::kSub;
  if (op == "*") return BinOpCode::kMul;
  if (op == "/") return BinOpCode::kDiv;
  if (op == "%") return BinOpCode::kMod;
  if (op == "||") return BinOpCode::kConcat;
  if (op == "=") return BinOpCode::kEq;
  if (op == "<>") return BinOpCode::kNe;
  if (op == "<") return BinOpCode::kLt;
  if (op == "<=") return BinOpCode::kLe;
  if (op == ">") return BinOpCode::kGt;
  if (op == ">=") return BinOpCode::kGe;
  if (op == "LIKE") return BinOpCode::kLike;
  if (op == "AND") return BinOpCode::kAnd;
  if (op == "OR") return BinOpCode::kOr;
  return BinOpCode::kUnknown;
}

bool IsArithCode(BinOpCode c) {
  return c == BinOpCode::kAdd || c == BinOpCode::kSub ||
         c == BinOpCode::kMul || c == BinOpCode::kDiv ||
         c == BinOpCode::kMod || c == BinOpCode::kConcat;
}

bool IsCompareCode(BinOpCode c) {
  return c == BinOpCode::kEq || c == BinOpCode::kNe || c == BinOpCode::kLt ||
         c == BinOpCode::kLe || c == BinOpCode::kGt || c == BinOpCode::kGe;
}

/// Numeric addition/subtraction/multiplication preserving INT when both sides
/// are INT (with wrap-around like typical engines), REAL otherwise. The one
/// per-value kernel behind both the scalar and the batch evaluator.
Result<Value> ArithCode(BinOpCode op, const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  if (op == BinOpCode::kConcat) {
    // String concatenation coerces displayable operands.
    return Value::Text(a.ToDisplayString() + b.ToDisplayString());
  }
  if (a.type() == DataType::kInt && b.type() == DataType::kInt) {
    int64_t x = a.int_value();
    int64_t y = b.int_value();
    switch (op) {
      case BinOpCode::kAdd: return Value::Int(x + y);
      case BinOpCode::kSub: return Value::Int(x - y);
      case BinOpCode::kMul: return Value::Int(x * y);
      case BinOpCode::kMod:
        if (y == 0) return Status::InvalidArgument("division by zero");
        return Value::Int(x % y);
      case BinOpCode::kDiv:
        if (y == 0) return Status::InvalidArgument("division by zero");
        if (x % y == 0) return Value::Int(x / y);
        return Value::Real(static_cast<double>(x) / static_cast<double>(y));
      default: break;
    }
  }
  DS_ASSIGN_OR_RETURN(double x, a.AsReal());
  DS_ASSIGN_OR_RETURN(double y, b.AsReal());
  switch (op) {
    case BinOpCode::kAdd: return Value::Real(x + y);
    case BinOpCode::kSub: return Value::Real(x - y);
    case BinOpCode::kMul: return Value::Real(x * y);
    case BinOpCode::kDiv:
      if (y == 0.0) return Status::InvalidArgument("division by zero");
      return Value::Real(x / y);
    case BinOpCode::kMod:
      if (y == 0.0) return Status::InvalidArgument("division by zero");
      return Value::Real(std::fmod(x, y));
    default: break;
  }
  return Status::Internal("unknown arithmetic operator");
}

Result<Value> CompareCode(BinOpCode op, const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  // Numeric-vs-text comparisons are type errors rather than silent falsity.
  bool numeric_mix = (a.is_numeric() && b.type() == DataType::kText) ||
                     (b.is_numeric() && a.type() == DataType::kText);
  if (numeric_mix) {
    return Status::TypeError("cannot compare " +
                             std::string(DataTypeName(a.type())) + " with " +
                             DataTypeName(b.type()));
  }
  int c = Value::Compare(a, b);
  switch (op) {
    case BinOpCode::kEq: return Value::Bool(c == 0);
    case BinOpCode::kNe: return Value::Bool(c != 0);
    case BinOpCode::kLt: return Value::Bool(c < 0);
    case BinOpCode::kLe: return Value::Bool(c <= 0);
    case BinOpCode::kGt: return Value::Bool(c > 0);
    case BinOpCode::kGe: return Value::Bool(c >= 0);
    default: break;
  }
  return Status::Internal("unknown comparison operator");
}

Result<Value> LikeKernel(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  if (a.type() != DataType::kText || b.type() != DataType::kText) {
    return Status::TypeError("LIKE expects TEXT operands");
  }
  return Value::Bool(LikeMatch(a.text_value(), b.text_value()));
}

Result<Value> UnaryKernel(const Expr& e, const Value& a) {
  if (e.op == "NOT") {
    if (a.is_null()) return Value::Null();
    DS_ASSIGN_OR_RETURN(bool b, a.AsBool());
    return Value::Bool(!b);
  }
  if (e.op == "-") {
    if (a.is_null()) return Value::Null();
    if (a.type() == DataType::kInt) return Value::Int(-a.int_value());
    DS_ASSIGN_OR_RETURN(double d, a.AsReal());
    return Value::Real(-d);
  }
  return Status::Internal("unknown unary operator " + e.op);
}

/// The scalar-function kernel over already-evaluated arguments — shared by
/// the per-row and the per-batch driver so the function library has exactly
/// one semantics.
Result<Value> ApplyScalarFunction(const Expr& e, std::vector<Value> args) {
  auto arity = [&](size_t lo, size_t hi) -> Status {
    if (args.size() < lo || args.size() > hi) {
      return Status::InvalidArgument(e.op + " expects " + std::to_string(lo) +
                                     (hi > lo ? ".." + std::to_string(hi) : "") +
                                     " arguments");
    }
    return Status::OK();
  };
  if (e.op == "ABS") {
    DS_RETURN_IF_ERROR(arity(1, 1));
    if (args[0].is_null()) return Value::Null();
    if (args[0].type() == DataType::kInt) {
      int64_t v = args[0].int_value();
      return Value::Int(v < 0 ? -v : v);
    }
    DS_ASSIGN_OR_RETURN(double d, args[0].AsReal());
    return Value::Real(std::fabs(d));
  }
  if (e.op == "ROUND") {
    DS_RETURN_IF_ERROR(arity(1, 2));
    if (args[0].is_null()) return Value::Null();
    DS_ASSIGN_OR_RETURN(double d, args[0].AsReal());
    int64_t digits = 0;
    if (args.size() == 2 && !args[1].is_null()) {
      DS_ASSIGN_OR_RETURN(digits, args[1].AsInt());
    }
    double scale = std::pow(10.0, static_cast<double>(digits));
    return Value::Real(std::round(d * scale) / scale);
  }
  if (e.op == "FLOOR" || e.op == "CEIL") {
    DS_RETURN_IF_ERROR(arity(1, 1));
    if (args[0].is_null()) return Value::Null();
    DS_ASSIGN_OR_RETURN(double d, args[0].AsReal());
    double r = e.op == "FLOOR" ? std::floor(d) : std::ceil(d);
    return Value::Int(static_cast<int64_t>(r));
  }
  if (e.op == "LOWER" || e.op == "UPPER") {
    DS_RETURN_IF_ERROR(arity(1, 1));
    if (args[0].is_null()) return Value::Null();
    std::string s = args[0].ToDisplayString();
    return Value::Text(e.op == "LOWER" ? ToLower(s) : ToUpper(s));
  }
  if (e.op == "LENGTH") {
    DS_RETURN_IF_ERROR(arity(1, 1));
    if (args[0].is_null()) return Value::Null();
    return Value::Int(static_cast<int64_t>(args[0].ToDisplayString().size()));
  }
  if (e.op == "SUBSTR") {
    DS_RETURN_IF_ERROR(arity(2, 3));
    if (args[0].is_null()) return Value::Null();
    std::string s = args[0].ToDisplayString();
    DS_ASSIGN_OR_RETURN(int64_t start, args[1].AsInt());  // 1-based
    int64_t len = static_cast<int64_t>(s.size());
    if (args.size() == 3 && !args[2].is_null()) {
      DS_ASSIGN_OR_RETURN(len, args[2].AsInt());
    }
    if (start < 1) start = 1;
    if (static_cast<size_t>(start) > s.size() || len <= 0) return Value::Text("");
    return Value::Text(s.substr(static_cast<size_t>(start - 1),
                                static_cast<size_t>(len)));
  }
  if (e.op == "TRIM") {
    DS_RETURN_IF_ERROR(arity(1, 1));
    if (args[0].is_null()) return Value::Null();
    return Value::Text(Trim(args[0].ToDisplayString()));
  }
  if (e.op == "COALESCE") {
    for (Value& v : args) {
      if (!v.is_null()) return std::move(v);
    }
    return Value::Null();
  }
  if (e.op == "NULLIF") {
    DS_RETURN_IF_ERROR(arity(2, 2));
    if (!args[0].is_null() && !args[1].is_null() && args[0] == args[1]) {
      return Value::Null();
    }
    return std::move(args[0]);
  }
  if (e.op == "CONCAT") {
    std::string out;
    for (const Value& v : args) out += v.ToDisplayString();
    return Value::Text(std::move(out));
  }
  return Status::NotFound("unknown function " + e.op);
}

}  // namespace

bool LikeMatch(std::string_view text, std::string_view pattern) {
  // Iterative two-pointer match with backtracking on the last '%'.
  size_t t = 0, p = 0;
  size_t star_p = std::string_view::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

// ---------------------------------------------------------------------------
// Scalar (row-at-a-time) driver
// ---------------------------------------------------------------------------

Result<Value> EvalScalar(const sql::Expr& e, const Row* input,
                         const std::vector<Value>* agg_values) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      return e.literal;
    case ExprKind::kColumnRef: {
      if (input == nullptr || e.bound_column < 0 ||
          static_cast<size_t>(e.bound_column) >= input->size()) {
        return Status::Internal("unbound column reference " + e.ToString());
      }
      return (*input)[static_cast<size_t>(e.bound_column)];
    }
    case ExprKind::kRangeValue:
      return Status::Internal("RANGEVALUE survived binding: " + e.ToString());
    case ExprKind::kUnary: {
      DS_ASSIGN_OR_RETURN(Value a, EvalScalar(*e.args[0], input, agg_values));
      return UnaryKernel(e, a);
    }
    case ExprKind::kBinary: {
      BinOpCode code = ResolveBinOp(e.op);
      // Three-valued AND/OR must not evaluate eagerly into errors when the
      // other side decides the result, so handle them with short-circuiting.
      if (code == BinOpCode::kAnd || code == BinOpCode::kOr) {
        DS_ASSIGN_OR_RETURN(Value a, EvalScalar(*e.args[0], input, agg_values));
        bool is_and = code == BinOpCode::kAnd;
        if (!a.is_null()) {
          DS_ASSIGN_OR_RETURN(bool av, a.AsBool());
          if (is_and && !av) return Value::Bool(false);
          if (!is_and && av) return Value::Bool(true);
        }
        DS_ASSIGN_OR_RETURN(Value b, EvalScalar(*e.args[1], input, agg_values));
        if (!b.is_null()) {
          DS_ASSIGN_OR_RETURN(bool bv, b.AsBool());
          if (is_and && !bv) return Value::Bool(false);
          if (!is_and && bv) return Value::Bool(true);
        }
        if (a.is_null() || b.is_null()) return Value::Null();
        return Value::Bool(is_and);
      }
      DS_ASSIGN_OR_RETURN(Value a, EvalScalar(*e.args[0], input, agg_values));
      DS_ASSIGN_OR_RETURN(Value b, EvalScalar(*e.args[1], input, agg_values));
      if (IsArithCode(code)) return ArithCode(code, a, b);
      if (code == BinOpCode::kLike) return LikeKernel(a, b);
      if (IsCompareCode(code)) return CompareCode(code, a, b);
      return Status::Internal("unknown binary operator " + e.op);
    }
    case ExprKind::kIsNull: {
      DS_ASSIGN_OR_RETURN(Value a, EvalScalar(*e.args[0], input, agg_values));
      return Value::Bool(e.negated ? !a.is_null() : a.is_null());
    }
    case ExprKind::kInList: {
      DS_ASSIGN_OR_RETURN(Value needle, EvalScalar(*e.args[0], input, agg_values));
      if (needle.is_null()) return Value::Null();
      bool saw_null = false;
      for (size_t i = 1; i < e.args.size(); ++i) {
        DS_ASSIGN_OR_RETURN(Value item, EvalScalar(*e.args[i], input, agg_values));
        if (item.is_null()) {
          saw_null = true;
          continue;
        }
        if (item == needle) return Value::Bool(!e.negated);
      }
      if (saw_null) return Value::Null();
      return Value::Bool(e.negated);
    }
    case ExprKind::kCase: {
      size_t i = 0;
      for (; i + 1 < e.args.size(); i += 2) {
        DS_ASSIGN_OR_RETURN(Value cond, EvalScalar(*e.args[i], input, agg_values));
        if (!cond.is_null()) {
          DS_ASSIGN_OR_RETURN(bool b, cond.AsBool());
          if (b) return EvalScalar(*e.args[i + 1], input, agg_values);
        }
      }
      if (i < e.args.size()) return EvalScalar(*e.args[i], input, agg_values);
      return Value::Null();
    }
    case ExprKind::kFunction: {
      if (sql::IsAggregateFunction(e.op)) {
        if (agg_values == nullptr || e.aggregate_index < 0 ||
            static_cast<size_t>(e.aggregate_index) >= agg_values->size()) {
          return Status::Internal("aggregate " + e.op +
                                  " evaluated outside GROUP BY context");
        }
        return (*agg_values)[static_cast<size_t>(e.aggregate_index)];
      }
      std::vector<Value> args;
      args.reserve(e.args.size());
      for (const sql::ExprPtr& a : e.args) {
        DS_ASSIGN_OR_RETURN(Value v, EvalScalar(*a, input, agg_values));
        args.push_back(std::move(v));
      }
      return ApplyScalarFunction(e, std::move(args));
    }
  }
  return Status::Internal("unhandled expression kind");
}

Result<bool> EvalPredicate(const sql::Expr& e, const Row* input,
                           const std::vector<Value>* agg_values) {
  DS_ASSIGN_OR_RETURN(Value v, EvalScalar(e, input, agg_values));
  if (v.is_null()) return false;
  return v.AsBool();
}

// ---------------------------------------------------------------------------
// Batch (vectorized) driver
// ---------------------------------------------------------------------------

namespace {

/// Recursive worker: computes `e` at `active` positions into `(*out)[pos]`.
/// `out` is pre-sized to batch.size() by the entry point; children get their
/// own temporaries so sibling results never alias.
Status EvalBatchInto(const Expr& e, const RowBatch& batch,
                     const std::vector<uint32_t>& active,
                     std::vector<Value>* out) {
  switch (e.kind) {
    case ExprKind::kLiteral: {
      for (uint32_t pos : active) (*out)[pos] = e.literal;
      return Status::OK();
    }
    case ExprKind::kColumnRef: {
      if (e.bound_column < 0 ||
          static_cast<size_t>(e.bound_column) >= batch.num_columns()) {
        return Status::Internal("unbound column reference " + e.ToString());
      }
      const std::vector<Value>& col =
          batch.column(static_cast<size_t>(e.bound_column));
      for (uint32_t pos : active) (*out)[pos] = col[pos];
      return Status::OK();
    }
    case ExprKind::kRangeValue:
      return Status::Internal("RANGEVALUE survived binding: " + e.ToString());
    case ExprKind::kUnary: {
      std::vector<Value> a(batch.size());
      DS_RETURN_IF_ERROR(EvalBatchInto(*e.args[0], batch, active, &a));
      for (uint32_t pos : active) {
        DS_ASSIGN_OR_RETURN((*out)[pos], UnaryKernel(e, a[pos]));
      }
      return Status::OK();
    }
    case ExprKind::kBinary: {
      BinOpCode code = ResolveBinOp(e.op);
      if (code == BinOpCode::kAnd || code == BinOpCode::kOr) {
        // Lazy right side: evaluate args[1] only at positions the left side
        // did not decide — exactly the rows the scalar driver reaches it.
        bool is_and = code == BinOpCode::kAnd;
        std::vector<Value> a(batch.size());
        DS_RETURN_IF_ERROR(EvalBatchInto(*e.args[0], batch, active, &a));
        std::vector<uint32_t> undecided;
        undecided.reserve(active.size());
        for (uint32_t pos : active) {
          if (!a[pos].is_null()) {
            DS_ASSIGN_OR_RETURN(bool av, a[pos].AsBool());
            if (is_and && !av) {
              (*out)[pos] = Value::Bool(false);
              continue;
            }
            if (!is_and && av) {
              (*out)[pos] = Value::Bool(true);
              continue;
            }
          }
          undecided.push_back(pos);
        }
        if (undecided.empty()) return Status::OK();
        std::vector<Value> b(batch.size());
        DS_RETURN_IF_ERROR(EvalBatchInto(*e.args[1], batch, undecided, &b));
        for (uint32_t pos : undecided) {
          if (!b[pos].is_null()) {
            DS_ASSIGN_OR_RETURN(bool bv, b[pos].AsBool());
            if (is_and && !bv) {
              (*out)[pos] = Value::Bool(false);
              continue;
            }
            if (!is_and && bv) {
              (*out)[pos] = Value::Bool(true);
              continue;
            }
          }
          (*out)[pos] = a[pos].is_null() || b[pos].is_null()
                            ? Value::Null()
                            : Value::Bool(is_and);
        }
        return Status::OK();
      }
      std::vector<Value> a(batch.size()), b(batch.size());
      DS_RETURN_IF_ERROR(EvalBatchInto(*e.args[0], batch, active, &a));
      DS_RETURN_IF_ERROR(EvalBatchInto(*e.args[1], batch, active, &b));
      if (IsArithCode(code)) {
        for (uint32_t pos : active) {
          DS_ASSIGN_OR_RETURN((*out)[pos], ArithCode(code, a[pos], b[pos]));
        }
        return Status::OK();
      }
      if (code == BinOpCode::kLike) {
        for (uint32_t pos : active) {
          DS_ASSIGN_OR_RETURN((*out)[pos], LikeKernel(a[pos], b[pos]));
        }
        return Status::OK();
      }
      if (IsCompareCode(code)) {
        for (uint32_t pos : active) {
          DS_ASSIGN_OR_RETURN((*out)[pos], CompareCode(code, a[pos], b[pos]));
        }
        return Status::OK();
      }
      return Status::Internal("unknown binary operator " + e.op);
    }
    case ExprKind::kIsNull: {
      std::vector<Value> a(batch.size());
      DS_RETURN_IF_ERROR(EvalBatchInto(*e.args[0], batch, active, &a));
      for (uint32_t pos : active) {
        (*out)[pos] =
            Value::Bool(e.negated ? !a[pos].is_null() : a[pos].is_null());
      }
      return Status::OK();
    }
    case ExprKind::kInList: {
      std::vector<Value> needle(batch.size());
      DS_RETURN_IF_ERROR(EvalBatchInto(*e.args[0], batch, active, &needle));
      // Positions still hunting for a match; list items are evaluated only
      // at these, preserving the scalar driver's stop-at-first-match errors.
      std::vector<uint32_t> undecided;
      undecided.reserve(active.size());
      for (uint32_t pos : active) {
        if (needle[pos].is_null()) {
          (*out)[pos] = Value::Null();
        } else {
          undecided.push_back(pos);
        }
      }
      std::vector<bool> saw_null(batch.size(), false);
      std::vector<Value> item(batch.size());
      for (size_t i = 1; i < e.args.size() && !undecided.empty(); ++i) {
        DS_RETURN_IF_ERROR(EvalBatchInto(*e.args[i], batch, undecided, &item));
        std::vector<uint32_t> still;
        still.reserve(undecided.size());
        for (uint32_t pos : undecided) {
          if (item[pos].is_null()) {
            saw_null[pos] = true;
            still.push_back(pos);
            continue;
          }
          if (item[pos] == needle[pos]) {
            (*out)[pos] = Value::Bool(!e.negated);
          } else {
            still.push_back(pos);
          }
        }
        undecided = std::move(still);
      }
      for (uint32_t pos : undecided) {
        (*out)[pos] = saw_null[pos] ? Value::Null() : Value::Bool(e.negated);
      }
      return Status::OK();
    }
    case ExprKind::kCase: {
      std::vector<uint32_t> remaining = active;
      std::vector<Value> cond(batch.size());
      size_t i = 0;
      for (; i + 1 < e.args.size() && !remaining.empty(); i += 2) {
        DS_RETURN_IF_ERROR(EvalBatchInto(*e.args[i], batch, remaining, &cond));
        std::vector<uint32_t> taken, rest;
        for (uint32_t pos : remaining) {
          bool b = false;
          if (!cond[pos].is_null()) {
            DS_ASSIGN_OR_RETURN(b, cond[pos].AsBool());
          }
          (b ? taken : rest).push_back(pos);
        }
        if (!taken.empty()) {
          DS_RETURN_IF_ERROR(EvalBatchInto(*e.args[i + 1], batch, taken, out));
        }
        remaining = std::move(rest);
      }
      // Skip unreached WHEN/THEN pairs so `i` lands on the ELSE arm if any.
      while (i + 1 < e.args.size()) i += 2;
      if (!remaining.empty()) {
        if (i < e.args.size()) {
          DS_RETURN_IF_ERROR(EvalBatchInto(*e.args[i], batch, remaining, out));
        } else {
          for (uint32_t pos : remaining) (*out)[pos] = Value::Null();
        }
      }
      return Status::OK();
    }
    case ExprKind::kFunction: {
      if (sql::IsAggregateFunction(e.op)) {
        return Status::Internal("aggregate " + e.op +
                                " evaluated outside GROUP BY context");
      }
      std::vector<std::vector<Value>> args(e.args.size());
      for (size_t i = 0; i < e.args.size(); ++i) {
        args[i].resize(batch.size());
        DS_RETURN_IF_ERROR(EvalBatchInto(*e.args[i], batch, active, &args[i]));
      }
      std::vector<Value> call_args(e.args.size());
      for (uint32_t pos : active) {
        for (size_t i = 0; i < e.args.size(); ++i) {
          call_args[i] = std::move(args[i][pos]);
        }
        DS_ASSIGN_OR_RETURN((*out)[pos],
                            ApplyScalarFunction(e, std::move(call_args)));
        call_args.assign(e.args.size(), Value::Null());
      }
      return Status::OK();
    }
  }
  return Status::Internal("unhandled expression kind");
}

}  // namespace

Status EvalScalarBatch(const sql::Expr& e, const RowBatch& batch,
                       const std::vector<uint32_t>& active,
                       std::vector<Value>* out) {
  out->clear();
  out->resize(batch.size());
  if (active.empty()) return Status::OK();
  return EvalBatchInto(e, batch, active, out);
}

Status EvalPredicateBatch(const sql::Expr& e, const RowBatch& batch,
                          const std::vector<uint32_t>& active,
                          std::vector<uint32_t>* passing) {
  std::vector<Value> vals;
  DS_RETURN_IF_ERROR(EvalScalarBatch(e, batch, active, &vals));
  for (uint32_t pos : active) {
    if (vals[pos].is_null()) continue;
    DS_ASSIGN_OR_RETURN(bool b, vals[pos].AsBool());
    if (b) passing->push_back(pos);
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Constant folding
// ---------------------------------------------------------------------------

namespace {

bool IsPure(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kColumnRef:
    case ExprKind::kRangeValue:
      return false;
    case ExprKind::kFunction:
      if (sql::IsAggregateFunction(e.op)) return false;
      break;
    default:
      break;
  }
  for (const sql::ExprPtr& a : e.args) {
    if (a != nullptr && !IsPure(*a)) return false;
  }
  return true;
}

}  // namespace

void FoldConstants(sql::Expr* e) {
  if (e == nullptr || e->kind == ExprKind::kLiteral) return;
  for (sql::ExprPtr& a : e->args) FoldConstants(a.get());
  if (!IsPure(*e)) return;
  // Children folded where possible; fold this node only when all of them
  // reduced to literals (a pure subtree whose evaluation errored stays
  // unfolded, and so does everything above it).
  for (const sql::ExprPtr& a : e->args) {
    if (a != nullptr && a->kind != ExprKind::kLiteral) return;
  }
  auto v = EvalScalar(*e, nullptr);
  if (!v.ok()) return;  // runtime surfaces the error in its true context
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v).value();
  e->args.clear();
}

}  // namespace dataspread
