#include "exec/binder.h"

#include <unordered_set>

#include "common/str_util.h"

namespace dataspread {

namespace {

const std::unordered_set<std::string>& KnownScalarFunctions() {
  static const auto* kFns = new std::unordered_set<std::string>{
      "ABS",    "ROUND",  "FLOOR", "CEIL",   "LOWER",    "UPPER",
      "LENGTH", "SUBSTR", "TRIM",  "COALESCE", "NULLIF", "CONCAT",
  };
  return *kFns;
}

}  // namespace

Result<int> Scope::Resolve(std::string_view qualifier,
                           std::string_view name) const {
  int found = -1;
  for (size_t i = 0; i < columns.size(); ++i) {
    const Column& c = columns[i];
    if (!qualifier.empty()) {
      if (!EqualsIgnoreCase(c.qualifier, qualifier)) continue;
    } else if (!c.visible) {
      continue;
    }
    if (!EqualsIgnoreCase(c.name, name)) continue;
    if (found >= 0) {
      return Status::InvalidArgument("ambiguous column reference '" +
                                     std::string(name) + "'");
    }
    found = static_cast<int>(i);
  }
  if (found < 0) {
    std::string full = qualifier.empty()
                           ? std::string(name)
                           : std::string(qualifier) + "." + std::string(name);
    return Status::NotFound("unknown column '" + full + "'");
  }
  return found;
}

Result<BoundSource> BindTableRef(const sql::TableRef& ref, Catalog& catalog,
                                 ExternalResolver* resolver) {
  BoundSource out;
  out.display_name = ref.EffectiveName();
  if (ref.kind == sql::TableRef::Kind::kNamed) {
    DS_ASSIGN_OR_RETURN(Table * table, catalog.GetTable(ref.name));
    out.table = table;
    for (const ColumnDef& c : table->schema().columns()) {
      out.columns.push_back(c.name);
    }
    return out;
  }
  // RANGETABLE: materialize the sheet range through the interface layer.
  if (resolver == nullptr) {
    return Status::InvalidArgument(
        "RANGETABLE(" + ref.range_text +
        ") requires a spreadsheet context (issue the query through DataSpread)");
  }
  DS_ASSIGN_OR_RETURN(RangeTableData data,
                      resolver->ResolveRangeTable(ref.range_text));
  out.range = std::make_shared<RangeTableData>(std::move(data));
  out.columns = out.range->columns;
  if (out.display_name == ref.range_text) {
    // Give anonymous ranges a stable qualifier.
    out.display_name = "range";
  }
  return out;
}

void AppendToScope(const BoundSource& source, Scope* scope) {
  for (const std::string& col : source.columns) {
    scope->columns.push_back(Scope::Column{source.display_name, col, true});
  }
}

Status BindExpr(sql::Expr* e, const Scope& scope, ExternalResolver* resolver,
                bool allow_aggregates) {
  if (e == nullptr) return Status::OK();
  switch (e->kind) {
    case sql::ExprKind::kLiteral:
      return Status::OK();
    case sql::ExprKind::kColumnRef: {
      DS_ASSIGN_OR_RETURN(e->bound_column,
                          scope.Resolve(e->qualifier, e->column_name));
      return Status::OK();
    }
    case sql::ExprKind::kRangeValue: {
      if (resolver == nullptr) {
        return Status::InvalidArgument(
            "RANGEVALUE(" + e->ref_text +
            ") requires a spreadsheet context (issue the query through "
            "DataSpread)");
      }
      DS_ASSIGN_OR_RETURN(Value v, resolver->ResolveRangeValue(e->ref_text));
      if (v.is_error()) {
        return Status::TypeError("referenced cell " + e->ref_text +
                                 " holds error value " + v.error_code());
      }
      // Snapshot semantics: the reference becomes a constant of this query.
      e->kind = sql::ExprKind::kLiteral;
      e->literal = std::move(v);
      return Status::OK();
    }
    case sql::ExprKind::kFunction: {
      if (sql::IsAggregateFunction(e->op)) {
        if (!allow_aggregates) {
          return Status::InvalidArgument("aggregate " + e->op +
                                         " is not allowed in this clause");
        }
        if (e->op == "COUNT" && e->star) {
          return Status::OK();  // COUNT(*) has no argument to bind
        }
        if (e->args.size() != 1) {
          return Status::InvalidArgument(e->op + " expects exactly 1 argument");
        }
        // Aggregate inputs may not nest aggregates.
        return BindExpr(e->args[0].get(), scope, resolver,
                        /*allow_aggregates=*/false);
      }
      if (KnownScalarFunctions().count(e->op) == 0) {
        return Status::NotFound("unknown function " + e->op);
      }
      for (sql::ExprPtr& a : e->args) {
        DS_RETURN_IF_ERROR(BindExpr(a.get(), scope, resolver, allow_aggregates));
      }
      return Status::OK();
    }
    case sql::ExprKind::kUnary:
    case sql::ExprKind::kBinary:
    case sql::ExprKind::kIsNull:
    case sql::ExprKind::kInList:
    case sql::ExprKind::kCase: {
      for (sql::ExprPtr& a : e->args) {
        DS_RETURN_IF_ERROR(BindExpr(a.get(), scope, resolver, allow_aggregates));
      }
      return Status::OK();
    }
  }
  return Status::Internal("unhandled expression kind in binder");
}

}  // namespace dataspread
