#ifndef DATASPREAD_EXEC_ROW_BATCH_H_
#define DATASPREAD_EXEC_ROW_BATCH_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "types/value.h"

namespace dataspread {

/// Execution-pipeline configuration, plumbed from DatabaseOptions down to the
/// planner. Two knob pairs: the batch size every batched operator fills to
/// plus the row-at-a-time escape hatch that drives the same operator tree
/// through the legacy Volcano `Next(Row*)` contract (the A/B baseline of
/// `bench_exec_pipeline` and the transparency property tests), and the
/// morsel-parallel pair below (DESIGN.md §6b).
struct ExecOptions {
  /// Tuples per RowBatch (0 = kDefaultExecBatchSize). Benches sweep this via
  /// the DS_EXEC_BATCH environment variable (bench/workloads.h).
  size_t batch_size = 0;
  /// When true the plan is pulled one Row at a time — the pre-vectorization
  /// behavior, kept as the measurable baseline.
  bool row_at_a_time = false;
  /// Morsel-parallel leaf: 0 disables (serial pipeline, the default); N >= 1
  /// runs eligible scan→filter[→aggregate] leaves across N worker threads
  /// pulling morsels from a shared dispenser (src/exec/morsel.h). 1 is the
  /// dispenser-overhead baseline, not a synonym for 0. Benches sweep this
  /// via DS_EXEC_THREADS (bench/workloads.h).
  size_t num_threads = 0;
  /// Display-order rows per morsel (0 = kDefaultMorselBatches batches).
  /// Tests shrink this to force morsel-boundary edge cases.
  size_t morsel_size = 0;
};

inline constexpr size_t kDefaultExecBatchSize = 1024;
/// Default morsel span, in units of the effective batch size: a morsel is a
/// few batches so dispensing stays off the per-batch hot path while work
/// still spreads evenly across workers.
inline constexpr size_t kDefaultMorselBatches = 4;

inline size_t EffectiveBatchSize(const ExecOptions& exec) {
  return exec.batch_size == 0 ? kDefaultExecBatchSize : exec.batch_size;
}

inline size_t EffectiveMorselSize(const ExecOptions& exec) {
  return exec.morsel_size == 0 ? kDefaultMorselBatches * EffectiveBatchSize(exec)
                               : exec.morsel_size;
}

/// A batch of tuples in column-major layout plus an optional selection
/// vector — the unit of exchange of the vectorized operator pipeline.
///
/// Physical rows live at positions [0, size()). When a selection is set,
/// only the positions it lists (strictly increasing) are live; everything
/// else is dead weight a later Compact() or consumer-side gather drops.
/// Filters refine batches by *narrowing the selection in place* — no value
/// is copied or moved on the filter path.
///
/// Capacity is a hard target: producers fill until size() reaches capacity()
/// and then stop, resuming from the same position on the next Next() call —
/// a join mid-match-list sizes its emit chunk to the space remaining, so
/// batches never exceed capacity(). (The predicate path can still land a
/// batch *under* capacity; only full() is load-bearing for producers.)
class RowBatch {
 public:
  explicit RowBatch(size_t capacity = kDefaultExecBatchSize)
      : capacity_(capacity == 0 ? kDefaultExecBatchSize : capacity) {}

  size_t capacity() const { return capacity_; }
  void set_capacity(size_t capacity) {
    capacity_ = capacity == 0 ? kDefaultExecBatchSize : capacity;
  }

  /// Clears all rows and the selection, shaping the batch to `num_columns`
  /// columns. Column storage is reused across calls.
  void Reset(size_t num_columns) {
    columns_.resize(num_columns);
    for (auto& col : columns_) col.clear();
    num_rows_ = 0;
    has_selection_ = false;
    selection_.clear();
  }

  size_t num_columns() const { return columns_.size(); }
  /// Physical row count (including unselected positions).
  size_t size() const { return num_rows_; }
  bool full() const { return num_rows_ >= capacity_; }

  std::vector<Value>& column(size_t c) { return columns_[c]; }
  const std::vector<Value>& column(size_t c) const { return columns_[c]; }
  const Value& at(size_t row, size_t col) const { return columns_[col][row]; }

  /// Producers must call this after appending values column-wise so the row
  /// count matches the column vectors.
  void set_size(size_t n) { num_rows_ = n; }

  // ---- Selection ----------------------------------------------------------

  bool has_selection() const { return has_selection_; }
  const std::vector<uint32_t>& selection() const { return selection_; }
  void SetSelection(std::vector<uint32_t> sel) {
    selection_ = std::move(sel);
    has_selection_ = true;
  }
  void ClearSelection() {
    has_selection_ = false;
    selection_.clear();
  }

  /// Live row count: selection size when set, physical size otherwise.
  size_t ActiveSize() const {
    return has_selection_ ? selection_.size() : num_rows_;
  }

  /// The live positions as an explicit vector (the form the vectorized
  /// expression evaluator consumes). When no selection is set this
  /// materializes [0, size()) into `scratch` and returns it.
  const std::vector<uint32_t>& ActivePositions(
      std::vector<uint32_t>* scratch) const {
    if (has_selection_) return selection_;
    scratch->resize(num_rows_);
    for (size_t i = 0; i < num_rows_; ++i) {
      (*scratch)[i] = static_cast<uint32_t>(i);
    }
    return *scratch;
  }

  // ---- Row bridging -------------------------------------------------------

  /// Appends one row-major tuple (copying). The batch must be shaped
  /// (Reset) to `row.size()` columns.
  void AppendRow(const Row& row) {
    for (size_t c = 0; c < columns_.size(); ++c) columns_[c].push_back(row[c]);
    ++num_rows_;
  }
  /// Appends one tuple, moving the values out of `row`.
  void AppendRowMove(Row&& row) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      columns_[c].push_back(std::move(row[c]));
    }
    ++num_rows_;
  }

  /// Dense Row copy of physical position `pos`.
  Row MaterializeRow(size_t pos) const {
    Row out;
    out.reserve(columns_.size());
    for (const auto& col : columns_) out.push_back(col[pos]);
    return out;
  }
  /// Dense Row moving the values out of physical position `pos` (the
  /// position must not be read again).
  Row MoveRow(size_t pos) {
    Row out;
    out.reserve(columns_.size());
    for (auto& col : columns_) out.push_back(std::move(col[pos]));
    return out;
  }

 private:
  std::vector<std::vector<Value>> columns_;
  size_t num_rows_ = 0;
  size_t capacity_;
  std::vector<uint32_t> selection_;
  bool has_selection_ = false;
};

}  // namespace dataspread

#endif  // DATASPREAD_EXEC_ROW_BATCH_H_
