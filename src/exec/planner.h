#ifndef DATASPREAD_EXEC_PLANNER_H_
#define DATASPREAD_EXEC_PLANNER_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "exec/operators.h"
#include "exec/resolver.h"
#include "exec/result_set.h"
#include "sql/ast.h"

namespace dataspread {

/// An executable SELECT: the operator tree plus output metadata. Operators
/// reference expression nodes owned either by the statement AST (which must
/// outlive execution) or by `owned_exprs` (expressions the planner
/// synthesized, e.g. star expansions).
struct PlannedQuery {
  OperatorPtr root;
  std::vector<std::string> columns;
  std::vector<sql::ExprPtr> owned_exprs;
};

/// Plans a SELECT. Binds expressions in place (mutating `stmt`) and folds
/// constant subexpressions once at plan time (after ORDER BY resolution, so
/// textual output-column matching sees the original spelling).
///
/// Planner decisions:
///  - equi-join conditions on column references become hash joins; everything
///    else runs as (left-outer) nested loops;
///  - NATURAL JOIN hash-joins on the shared column names and hides the
///    right-hand duplicates from `SELECT *`;
///  - a bare `SELECT ... FROM t LIMIT n OFFSET k` (no predicates or ordering)
///    pushes the window straight into the positional-index scan — the
///    interface-aware pane fetch of paper §2.2 ("the burden of supplying or
///    refreshing the current window is placed on the relational database").
///
/// `exec` shapes execution: batch size for the vectorized pipeline (also the
/// table scan's fetch granularity) and the row-at-a-time fallback switch.
Result<PlannedQuery> PlanSelect(sql::SelectStmt* stmt, Catalog& catalog,
                                ExternalResolver* resolver,
                                const ExecOptions& exec = {});

/// Plans, executes, and materializes a SELECT into a ResultSet. Drives the
/// plan through the vectorized batch pipeline unless `exec.row_at_a_time`
/// asks for the Volcano baseline; both produce identical results.
Result<ResultSet> RunSelect(sql::SelectStmt* stmt, Catalog& catalog,
                            ExternalResolver* resolver,
                            const ExecOptions& exec = {});

}  // namespace dataspread

#endif  // DATASPREAD_EXEC_PLANNER_H_
