#include "exec/morsel.h"

#include <algorithm>
#include <functional>
#include <thread>
#include <utility>

#include "exec/expr_eval.h"

namespace dataspread {

std::vector<Morsel> BuildMorsels(const Table& table, size_t start,
                                 size_t count, size_t morsel_size) {
  std::vector<Morsel> out;
  if (morsel_size == 0) morsel_size = 1;
  size_t cur_start = 0;
  size_t cur = 0;
  auto emit = [&]() {
    out.push_back(Morsel{out.size(), cur_start, cur});
    cur = 0;
  };
  table.VisitSlotRuns(start, count, [&](size_t pos, size_t, size_t len) {
    while (len > 0) {
      if (cur == 0) cur_start = pos;
      size_t take = std::min(len, morsel_size - cur);
      cur += take;
      pos += take;
      len -= take;
      if (cur == morsel_size) {
        if (len > 0 && len < morsel_size) {
          // Absorb the sub-morsel run tail so the next morsel starts at a
          // run boundary (morsels stay below 2·morsel_size).
          cur += len;
          pos += len;
          len = 0;
        }
        emit();
      }
    }
  });
  if (cur > 0) emit();
  return out;
}

namespace {

/// Fans `work(worker, morsel)` out over min(num_threads, |morsels|) threads
/// (the calling thread is worker 0). On the first failure the dispenser is
/// closed and the status recorded in `morsel_status[m.index]`; after the
/// join, the smallest-index failure is returned — the same error a serial
/// left-to-right scan would have surfaced first. `morsel_status` must be
/// pre-sized to the morsel count; each slot is written by at most one
/// worker, and the thread join orders all writes before the final sweep.
Status DriveMorsels(
    MorselDispenser* dispenser, size_t num_threads,
    std::vector<Status>* morsel_status,
    const std::function<Status(size_t worker, const Morsel& m)>& work) {
  size_t workers = std::max<size_t>(1, std::min(num_threads, dispenser->size()));
  std::atomic<bool> failed{false};
  auto loop = [&](size_t w) {
    Morsel m;
    while (!failed.load(std::memory_order_relaxed) && dispenser->Next(&m)) {
      Status s = work(w, m);
      if (!s.ok()) {
        (*morsel_status)[m.index] = std::move(s);
        failed.store(true, std::memory_order_relaxed);
        dispenser->Close();
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (size_t w = 1; w < workers; ++w) pool.emplace_back(loop, w);
  loop(0);
  for (std::thread& t : pool) t.join();
  for (const Status& s : *morsel_status) {
    if (!s.ok()) return s;
  }
  return Status::OK();
}

/// One worker's private scan(→filter) pipeline, re-aimed per morsel.
struct WorkerPipeline {
  OperatorPtr chain;
  TableScanOp* scan = nullptr;  // owned by `chain`
  RowBatch batch;
  std::vector<uint32_t> scratch;

  void Init(const Table* table, const sql::Expr* where, size_t batch_size) {
    if (chain != nullptr) return;
    auto s = std::make_unique<TableScanOp>(table, 0, 0, batch_size);
    scan = s.get();
    chain = std::move(s);
    if (where != nullptr) {
      chain = std::make_unique<FilterOp>(std::move(chain), where);
    }
    batch.set_capacity(batch_size);
  }

  Status OpenAt(const Morsel& m) {
    scan->SetWindow(m.start, m.count);
    return chain->Open();
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// ParallelScanOp
// ---------------------------------------------------------------------------

ParallelScanOp::ParallelScanOp(const Table* table, size_t start, size_t count,
                               const sql::Expr* where, const ExecOptions& exec,
                               size_t limit_hint)
    : table_(table),
      start_(start),
      count_(count),
      where_(where),
      exec_(exec),
      limit_hint_(limit_hint),
      num_columns_(table->schema().num_columns()) {}

Status ParallelScanOp::Open() {
  built_ = false;
  rows_.clear();
  index_ = 0;
  return Status::OK();
}

Status ParallelScanOp::Build() {
  MorselDispenser dispenser(
      BuildMorsels(*table_, start_, count_, EffectiveMorselSize(exec_)));
  if (limit_hint_ == 0) dispenser.Close();
  const size_t n = dispenser.size();
  const size_t batch_size = EffectiveBatchSize(exec_);
  std::vector<std::vector<Row>> per_morsel(n);
  std::vector<Status> morsel_status(n);
  std::vector<WorkerPipeline> pipelines(std::max<size_t>(1, exec_.num_threads));
  std::atomic<size_t> rows_found{0};

  DS_RETURN_IF_ERROR(DriveMorsels(
      &dispenser, exec_.num_threads, &morsel_status,
      [&](size_t w, const Morsel& m) -> Status {
        WorkerPipeline& p = pipelines[w];
        p.Init(table_, where_, batch_size);
        DS_RETURN_IF_ERROR(p.OpenAt(m));
        std::vector<Row>& out = per_morsel[m.index];
        while (true) {
          DS_ASSIGN_OR_RETURN(bool more, p.chain->Next(&p.batch));
          if (!more) break;
          const std::vector<uint32_t>& active =
              p.batch.ActivePositions(&p.scratch);
          out.reserve(out.size() + active.size());
          for (uint32_t pos : active) out.push_back(p.batch.MoveRow(pos));
        }
        // LIMIT early stop: dispensed morsels form a contiguous prefix, so
        // once the completed work holds `limit_hint_` rows the prefix that
        // will be concatenated is guaranteed to cover the limit.
        if (limit_hint_ != kNoLimitHint &&
            rows_found.fetch_add(out.size(), std::memory_order_relaxed) +
                    out.size() >=
                limit_hint_) {
          dispenser.Close();
        }
        return Status::OK();
      }));

  size_t total = 0;
  for (const std::vector<Row>& rows : per_morsel) total += rows.size();
  rows_.reserve(total);
  for (std::vector<Row>& rows : per_morsel) {
    for (Row& r : rows) rows_.push_back(std::move(r));
  }
  return Status::OK();
}

Result<bool> ParallelScanOp::Next(Row* out) {
  if (!built_) {
    DS_RETURN_IF_ERROR(Build());
    built_ = true;
  }
  if (index_ >= rows_.size()) return false;
  *out = std::move(rows_[index_++]);
  return true;
}

Result<bool> ParallelScanOp::Next(RowBatch* out) {
  if (!built_) {
    DS_RETURN_IF_ERROR(Build());
    built_ = true;
  }
  out->Reset(num_columns_);
  while (index_ < rows_.size() && !out->full()) {
    out->AppendRowMove(std::move(rows_[index_++]));
  }
  return out->size() > 0;
}

// ---------------------------------------------------------------------------
// ParallelAggregateOp
// ---------------------------------------------------------------------------

ParallelAggregateOp::ParallelAggregateOp(
    const Table* table, size_t start, size_t count, const sql::Expr* where,
    std::vector<const sql::Expr*> group_exprs,
    std::vector<sql::Expr*> agg_calls,
    std::vector<const sql::Expr*> output_exprs, const sql::Expr* having,
    const ExecOptions& exec)
    : table_(table),
      start_(start),
      count_(count),
      where_(where),
      group_exprs_(std::move(group_exprs)),
      agg_calls_(std::move(agg_calls)),
      output_exprs_(std::move(output_exprs)),
      having_(having),
      exec_(exec) {}

Status ParallelAggregateOp::Open() {
  built_ = false;
  results_.clear();
  index_ = 0;
  return Status::OK();
}

Status ParallelAggregateOp::Build() {
  MorselDispenser dispenser(
      BuildMorsels(*table_, start_, count_, EffectiveMorselSize(exec_)));
  const size_t batch_size = EffectiveBatchSize(exec_);
  const size_t slots = std::max<size_t>(1, exec_.num_threads);
  std::vector<Status> morsel_status(dispenser.size());
  std::vector<WorkerPipeline> pipelines(slots);
  std::vector<PartialMap> partials(slots);
  std::vector<std::vector<std::vector<Value>>> group_vals(slots);
  std::vector<std::vector<std::vector<Value>>> arg_vals(slots);

  DS_RETURN_IF_ERROR(DriveMorsels(
      &dispenser, exec_.num_threads, &morsel_status,
      [&](size_t w, const Morsel& m) -> Status {
        WorkerPipeline& p = pipelines[w];
        p.Init(table_, where_, batch_size);
        group_vals[w].resize(group_exprs_.size());
        arg_vals[w].resize(agg_calls_.size());
        DS_RETURN_IF_ERROR(p.OpenAt(m));
        PartialMap& groups = partials[w];
        // Rows processed so far in this morsel: the low half of the
        // first-seen order key. A worker's morsel indices are increasing
        // (the dispenser hands them out in order), so a group's key in one
        // worker's map is its earliest sighting by that worker, and the
        // cross-worker minimum is the global serial first-seen position.
        uint64_t seq = 0;
        while (true) {
          DS_ASSIGN_OR_RETURN(bool more, p.chain->Next(&p.batch));
          if (!more) break;
          const std::vector<uint32_t>& active =
              p.batch.ActivePositions(&p.scratch);
          // One vectorized pass per group key and aggregate argument — the
          // same build loop as HashAggregateOp::BuildBatched, privatized.
          for (size_t g = 0; g < group_exprs_.size(); ++g) {
            DS_RETURN_IF_ERROR(EvalScalarBatch(*group_exprs_[g], p.batch,
                                               active, &group_vals[w][g]));
          }
          for (size_t a = 0; a < agg_calls_.size(); ++a) {
            const sql::Expr* call = agg_calls_[a];
            if (call->op == "COUNT" && call->star) continue;
            DS_RETURN_IF_ERROR(EvalScalarBatch(*call->args[0], p.batch,
                                               active, &arg_vals[w][a]));
          }
          Row key;
          for (uint32_t pos : active) {
            key.clear();
            key.reserve(group_exprs_.size());
            for (const auto& gv : group_vals[w]) key.push_back(gv[pos]);
            auto it = groups.find(key);
            if (it == groups.end()) {
              Partial partial;
              partial.order_key = (static_cast<uint64_t>(m.index) << 32) |
                                  (seq & 0xffffffffu);
              partial.group.first_row = p.batch.MaterializeRow(pos);
              partial.group.states.reserve(agg_calls_.size());
              for (sql::Expr* call : agg_calls_) {
                partial.group.states.emplace_back(call);
              }
              it = groups.emplace(key, std::move(partial)).first;
            }
            for (size_t a = 0; a < agg_calls_.size(); ++a) {
              AggState& s = it->second.group.states[a];
              if (s.needs_arg()) {
                DS_RETURN_IF_ERROR(s.UpdateValue(arg_vals[w][a][pos]));
              } else {
                s.UpdateStar();
              }
            }
            ++seq;
          }
        }
        return Status::OK();
      }));

  // Single-threaded merge: fold every worker's partials into one map,
  // keeping the smallest order key's first_row and letting the earlier
  // partial win MIN/MAX ties (AggState::Merge's contract).
  PartialMap merged;
  for (PartialMap& pm : partials) {
    for (auto& kv : pm) {
      auto it = merged.find(kv.first);
      if (it == merged.end()) {
        merged.emplace(kv.first, std::move(kv.second));
        continue;
      }
      Partial& have = it->second;
      Partial& incoming = kv.second;
      if (incoming.order_key < have.order_key) {
        for (size_t a = 0; a < agg_calls_.size(); ++a) {
          incoming.group.states[a].Merge(have.group.states[a]);
        }
        have = std::move(incoming);
      } else {
        for (size_t a = 0; a < agg_calls_.size(); ++a) {
          have.group.states[a].Merge(incoming.group.states[a]);
        }
      }
    }
  }

  std::vector<Partial*> ordered;
  ordered.reserve(merged.size());
  for (auto& kv : merged) ordered.push_back(&kv.second);
  std::sort(ordered.begin(), ordered.end(),
            [](const Partial* a, const Partial* b) {
              return a->order_key < b->order_key;
            });
  std::vector<AggGroup*> groups;
  groups.reserve(ordered.size());
  for (Partial* p : ordered) groups.push_back(&p->group);
  // Global aggregate over empty input still yields one group.
  AggGroup empty_global;
  if (groups.empty() && group_exprs_.empty()) {
    empty_global.states.reserve(agg_calls_.size());
    for (sql::Expr* call : agg_calls_) empty_global.states.emplace_back(call);
    groups.push_back(&empty_global);
  }
  return FinalizeAggregateGroups(output_exprs_, having_, groups, &results_);
}

Result<bool> ParallelAggregateOp::Next(Row* out) {
  if (!built_) {
    DS_RETURN_IF_ERROR(Build());
    built_ = true;
  }
  if (index_ >= results_.size()) return false;
  *out = std::move(results_[index_++]);
  return true;
}

Result<bool> ParallelAggregateOp::Next(RowBatch* out) {
  if (!built_) {
    DS_RETURN_IF_ERROR(Build());
    built_ = true;
  }
  out->Reset(output_exprs_.size());
  while (index_ < results_.size() && !out->full()) {
    out->AppendRowMove(std::move(results_[index_++]));
  }
  return out->size() > 0;
}

}  // namespace dataspread
