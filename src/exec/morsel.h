#ifndef DATASPREAD_EXEC_MORSEL_H_
#define DATASPREAD_EXEC_MORSEL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <unordered_map>
#include <vector>

#include "catalog/table.h"
#include "common/result.h"
#include "exec/operators.h"
#include "exec/row_batch.h"
#include "sql/ast.h"
#include "types/value.h"

namespace dataspread {

/// Morsel-driven parallel execution for the leaf of the batch pipeline
/// (DESIGN.md §6b).
///
/// A table's display-order window is partitioned into *morsels* — spans of a
/// few batches each, cut along the table's storage slot runs so every morsel
/// is a bulk page-cursor sweep. A pool of worker threads pulls morsels from a
/// shared atomic dispenser; each worker drives its own serial
/// TableScanOp → FilterOp [→ partial aggregation] pipeline over its own
/// RowBatch and PageCursors (the pager is reader-safe per DESIGN.md §7, and
/// bound expression trees are immutable during evaluation). Workers share no
/// mutable execution state — the only cross-thread traffic is the dispenser
/// counter and per-morsel result slots each written by exactly one worker.
///
/// Determinism: morsels are dispensed in display order and results are
/// stitched back together by morsel index, so non-aggregate output order
/// equals the serial scan's. Partial aggregates carry first-seen order keys
/// and are merged smallest-key-first, reproducing the serial group order
/// (see ParallelAggregateOp).

/// One unit of parallel work: display positions [start, start+count).
struct Morsel {
  size_t index;  ///< Position in the global dispense order (determinism key).
  size_t start;  ///< First display position.
  size_t count;  ///< Rows in the morsel.
};

/// No LIMIT pushdown: scan the whole window.
inline constexpr size_t kNoLimitHint = std::numeric_limits<size_t>::max();

/// Partitions display window [start, start+count) (clipped to the table)
/// into morsels of `morsel_size` rows, aligned to the table's storage slot
/// runs: runs longer than a morsel are split at morsel_size multiples; short
/// runs accumulate until a run boundary at/after morsel_size. A sub-morsel
/// tail is absorbed into the previous morsel, so every morsel holds
/// [morsel_size, 2·morsel_size) rows except a possibly-smaller first-and-only
/// one. Morsels tile the window exactly, in display order.
std::vector<Morsel> BuildMorsels(const Table& table, size_t start,
                                 size_t count, size_t morsel_size);

/// The shared work queue: hands out morsels in index order, one atomic
/// fetch-add per claim. Close() makes all subsequent claims fail, so the
/// dispensed set is always a contiguous prefix of the morsel list — the
/// property the deterministic-concatenation and LIMIT early-stop arguments
/// rest on.
class MorselDispenser {
 public:
  explicit MorselDispenser(std::vector<Morsel> morsels)
      : morsels_(std::move(morsels)) {}

  /// Claims the next morsel; false when exhausted or closed.
  bool Next(Morsel* out) {
    size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= morsels_.size()) return false;
    *out = morsels_[i];
    return true;
  }

  /// Stops dispensing (already-claimed morsels still complete). Used for
  /// LIMIT early stop and first-error abort.
  void Close() { next_.store(morsels_.size(), std::memory_order_relaxed); }

  size_t size() const { return morsels_.size(); }

 private:
  std::vector<Morsel> morsels_;
  std::atomic<size_t> next_{0};
};

/// Morsel-parallel scan→filter leaf: materializes the (filtered) window
/// across `exec.num_threads` workers and serves it in morsel order, so the
/// output row order is byte-identical to the serial scan's. Blocking: the
/// fan-out/join runs at the first Next(). `limit_hint` (kNoLimitHint = none)
/// lets a bare LIMIT/OFFSET above stop dispensing once the completed prefix
/// holds enough rows.
class ParallelScanOp : public Operator {
 public:
  ParallelScanOp(const Table* table, size_t start, size_t count,
                 const sql::Expr* where, const ExecOptions& exec,
                 size_t limit_hint);
  Status Open() override;
  Result<bool> Next(Row* out) override;
  Result<bool> Next(RowBatch* out) override;

 private:
  Status Build();

  const Table* table_;
  size_t start_, count_;
  const sql::Expr* where_;  // may be null (no filter)
  ExecOptions exec_;
  size_t limit_hint_;
  size_t num_columns_;
  bool built_ = false;
  std::vector<Row> rows_;  // morsel-order concatenation
  size_t index_ = 0;
};

/// Morsel-parallel scan→filter→aggregate leaf: each worker builds partial
/// aggregate states over its morsels (the vectorized group-build of
/// HashAggregateOp::BuildBatched, privatized per worker), then partials are
/// merged single-threaded and finalized through the shared
/// FinalizeAggregateGroups tail. Every group carries a first-seen order key
/// (morsel index, row-within-morsel); merging keeps the smallest key's
/// first_row and lets the earlier partial win MIN/MAX compare-equal ties, so
/// the merged group order and contents match the serial operator's.
class ParallelAggregateOp : public Operator {
 public:
  ParallelAggregateOp(const Table* table, size_t start, size_t count,
                      const sql::Expr* where,
                      std::vector<const sql::Expr*> group_exprs,
                      std::vector<sql::Expr*> agg_calls,
                      std::vector<const sql::Expr*> output_exprs,
                      const sql::Expr* having, const ExecOptions& exec);
  Status Open() override;
  Result<bool> Next(Row* out) override;
  Result<bool> Next(RowBatch* out) override;

 private:
  /// One group's partial state plus its first-seen order key.
  struct Partial {
    AggGroup group;
    uint64_t order_key;
  };
  using PartialMap = std::unordered_map<Row, Partial, RowHash, RowEq>;

  Status Build();

  const Table* table_;
  size_t start_, count_;
  const sql::Expr* where_;  // may be null
  std::vector<const sql::Expr*> group_exprs_;
  std::vector<sql::Expr*> agg_calls_;
  std::vector<const sql::Expr*> output_exprs_;
  const sql::Expr* having_;
  ExecOptions exec_;
  bool built_ = false;
  std::vector<Row> results_;
  size_t index_ = 0;
};

}  // namespace dataspread

#endif  // DATASPREAD_EXEC_MORSEL_H_
