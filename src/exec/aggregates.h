#ifndef DATASPREAD_EXEC_AGGREGATES_H_
#define DATASPREAD_EXEC_AGGREGATES_H_

#include <vector>

#include "common/result.h"
#include "sql/ast.h"
#include "types/value.h"

namespace dataspread {

/// Finds every aggregate call site in `e` (depth-first), assigns each a dense
/// `aggregate_index`, and appends the node pointers to `calls`. Call sites
/// that already carry an index (shared subtrees) keep it.
void CollectAggregates(sql::Expr* e, std::vector<sql::Expr*>* calls);

/// Running state of one aggregate call over one group.
class AggState {
 public:
  /// `call` must outlive the state (it lives in the statement AST).
  explicit AggState(const sql::Expr* call) : call_(call) {}

  /// Folds one input row into the state (evaluates the call's argument).
  Status Update(const Row& input);

  /// True when the call consumes an argument value per row; false only for
  /// COUNT(*), which counts rows without evaluating anything.
  bool needs_arg() const { return !(call_->op == "COUNT" && call_->star); }

  /// Folds one precomputed argument value into the state — the batch
  /// pipeline's path: the argument expression is evaluated once per batch
  /// (vectorized), then folded value-by-value. For COUNT(*) (needs_arg()
  /// false) call UpdateStar() instead.
  Status UpdateValue(const Value& v);
  void UpdateStar() { ++count_; }

  /// Folds another partial state for the same call into this one — the
  /// morsel-parallel merge (DESIGN.md §6b). `this` must cover the earlier
  /// display-order rows: ties (MIN/MAX compare-equal extremes) keep this
  /// state's value, matching what serial row-order folding would have kept.
  void Merge(const AggState& other);

  /// Final value: COUNT → INT; SUM → INT/REAL (NULL on empty); AVG → REAL
  /// (NULL on empty); MIN/MAX → input type (NULL on empty).
  Value Finalize() const;

 private:
  const sql::Expr* call_;
  int64_t count_ = 0;        // non-null inputs (or all rows for COUNT(*))
  bool is_real_ = false;
  int64_t sum_int_ = 0;
  double sum_real_ = 0.0;
  bool has_extreme_ = false;
  Value extreme_;            // running MIN or MAX
};

}  // namespace dataspread

#endif  // DATASPREAD_EXEC_AGGREGATES_H_
