#include "exec/aggregates.h"

#include "exec/expr_eval.h"

namespace dataspread {

void CollectAggregates(sql::Expr* e, std::vector<sql::Expr*>* calls) {
  if (e == nullptr) return;
  if (e->kind == sql::ExprKind::kFunction && sql::IsAggregateFunction(e->op)) {
    if (e->aggregate_index < 0) {
      e->aggregate_index = static_cast<int>(calls->size());
      calls->push_back(e);
    }
    return;  // aggregate arguments are evaluated per input row, not nested
  }
  for (sql::ExprPtr& a : e->args) CollectAggregates(a.get(), calls);
}

Status AggState::Update(const Row& input) {
  if (!needs_arg()) {
    UpdateStar();
    return Status::OK();
  }
  DS_ASSIGN_OR_RETURN(Value v, EvalScalar(*call_->args[0], &input));
  return UpdateValue(v);
}

Status AggState::UpdateValue(const Value& v) {
  if (v.is_null()) return Status::OK();  // SQL aggregates skip NULLs
  ++count_;
  if (call_->op == "COUNT") return Status::OK();
  if (call_->op == "SUM" || call_->op == "AVG") {
    if (v.type() == DataType::kInt && !is_real_) {
      sum_int_ += v.int_value();
    } else {
      DS_ASSIGN_OR_RETURN(double d, v.AsReal());
      if (!is_real_) {
        sum_real_ = static_cast<double>(sum_int_);
        is_real_ = true;
      }
      sum_real_ += d;
    }
    return Status::OK();
  }
  if (call_->op == "MIN" || call_->op == "MAX") {
    if (!has_extreme_) {
      extreme_ = v;
      has_extreme_ = true;
    } else {
      int c = Value::Compare(v, extreme_);
      if ((call_->op == "MIN" && c < 0) || (call_->op == "MAX" && c > 0)) {
        extreme_ = v;
      }
    }
    return Status::OK();
  }
  return Status::Internal("unknown aggregate " + call_->op);
}

void AggState::Merge(const AggState& other) {
  count_ += other.count_;
  if (is_real_ || other.is_real_) {
    double incoming =
        other.is_real_ ? other.sum_real_ : static_cast<double>(other.sum_int_);
    if (!is_real_) {
      sum_real_ = static_cast<double>(sum_int_);
      is_real_ = true;
    }
    sum_real_ += incoming;
  } else {
    sum_int_ += other.sum_int_;
  }
  if (other.has_extreme_) {
    if (!has_extreme_) {
      extreme_ = other.extreme_;
      has_extreme_ = true;
    } else {
      // Strict comparison, like UpdateValue: the later partial only wins on a
      // genuine improvement, so compare-equal ties keep the earlier extreme.
      int c = Value::Compare(other.extreme_, extreme_);
      if ((call_->op == "MIN" && c < 0) || (call_->op == "MAX" && c > 0)) {
        extreme_ = other.extreme_;
      }
    }
  }
}

Value AggState::Finalize() const {
  if (call_->op == "COUNT") return Value::Int(count_);
  if (count_ == 0) return Value::Null();
  if (call_->op == "SUM") {
    return is_real_ ? Value::Real(sum_real_) : Value::Int(sum_int_);
  }
  if (call_->op == "AVG") {
    double total = is_real_ ? sum_real_ : static_cast<double>(sum_int_);
    return Value::Real(total / static_cast<double>(count_));
  }
  return extreme_;  // MIN / MAX
}

}  // namespace dataspread
