#ifndef DATASPREAD_EXEC_RESULT_SET_H_
#define DATASPREAD_EXEC_RESULT_SET_H_

#include <cstddef>
#include <string>
#include <vector>

#include "types/value.h"

namespace dataspread {

/// Outcome of executing one SQL statement.
///
/// SELECT fills `columns` + `rows`; DML fills `affected_rows`; DDL fills
/// `message` ("created table t", ...).
struct ResultSet {
  std::vector<std::string> columns;
  std::vector<Row> rows;
  size_t affected_rows = 0;
  std::string message;

  size_t num_rows() const { return rows.size(); }
  size_t num_columns() const { return columns.size(); }

  /// Tab-separated rendering with a header line; for examples and debugging.
  std::string ToString(size_t max_rows = 20) const;
};

}  // namespace dataspread

#endif  // DATASPREAD_EXEC_RESULT_SET_H_
